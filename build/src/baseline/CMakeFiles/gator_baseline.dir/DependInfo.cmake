
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/Baseline.cpp" "src/baseline/CMakeFiles/gator_baseline.dir/Baseline.cpp.o" "gcc" "src/baseline/CMakeFiles/gator_baseline.dir/Baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gator_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gator_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gator_android.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/gator_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gator_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
