//===- GuiAnalysis.cpp - Analysis facade ------------------------*- C++ -*-===//

#include "analysis/GuiAnalysis.h"

#include "analysis/GraphBuilder.h"
#include "hier/ClassHierarchy.h"
#include "support/Timer.h"

using namespace gator;
using namespace gator::analysis;

std::unique_ptr<AnalysisResult>
GuiAnalysis::run(const ir::Program &P, layout::LayoutRegistry &Layouts,
                 const android::AndroidModel &AM,
                 const AnalysisOptions &Options, DiagnosticEngine &Diags) {
  auto Result = std::make_unique<AnalysisResult>();
  Result->Options = Options;
  Result->Graph = std::make_unique<graph::ConstraintGraph>();
  Result->Sol = std::make_unique<Solution>(*Result->Graph, AM);

  unsigned CheckFailuresBefore = Diags.checkFailureCount();

  Timer BuildTimer;
  Result->Graph->setDiagnostics(&Diags);
  hier::ClassHierarchy CH(P, &Diags);
  GraphBuilder Builder(P, Layouts, AM, CH, Diags);
  if (!Builder.build(*Result->Graph, Result->Sol->opSites()))
    Result->Sol->markDegraded();
  Result->BuildSeconds = BuildTimer.seconds();

  Timer SolveTimer;
  Solver S(*Result->Graph, *Result->Sol, Layouts, AM, Options, Diags);
  Result->Stats = S.solve();
  Result->SolveSeconds = SolveTimer.seconds();

  // Any recoverable-invariant failure during this run (graph edge drops,
  // hierarchy degradations) means facts may have been discarded.
  if (Diags.checkFailureCount() != CheckFailuresBefore)
    Result->Sol->markDegraded();
  return Result;
}
