//===- Verifier.cpp - ALite IR well-formedness checks ----------*- C++ -*-===//

#include "ir/Verifier.h"

using namespace gator;
using namespace gator::ir;

namespace {

class MethodVerifier {
public:
  MethodVerifier(const Program &P, const MethodDecl &M, DiagnosticEngine &Diags)
      : P(P), M(M), Diags(Diags) {}

  bool run() {
    for (const Stmt &S : M.body())
      verifyStmt(S);
    return Ok;
  }

private:
  void error(const Stmt &S, const std::string &Message) {
    Diags.error(S.Loc, "in " + M.qualifiedName() + ": " + Message);
    Ok = false;
  }

  void warn(const Stmt &S, const std::string &Message) {
    Diags.warning(S.Loc, "in " + M.qualifiedName() + ": " + Message);
  }

  bool checkVar(const Stmt &S, VarId Id, const char *Role) {
    if (Id >= 0 && static_cast<size_t>(Id) < M.vars().size())
      return true;
    error(S, std::string("dangling ") + Role + " variable index");
    return false;
  }

  const ClassDecl *declaredClass(VarId Id) const {
    const std::string &TypeName = M.var(Id).TypeName;
    if (TypeName.empty() || isPrimitiveTypeName(TypeName))
      return nullptr;
    return P.findClass(TypeName);
  }

  void verifyStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::AssignVar:
      checkVar(S, S.Lhs, "destination");
      checkVar(S, S.Base, "source");
      break;
    case StmtKind::AssignNew: {
      checkVar(S, S.Lhs, "destination");
      const ClassDecl *C = P.findClass(S.ClassName);
      if (!C)
        error(S, "new of unknown class '" + S.ClassName + "'");
      else if (C->isInterface())
        error(S, "new of interface '" + S.ClassName + "'");
      break;
    }
    case StmtKind::AssignNull:
      checkVar(S, S.Lhs, "destination");
      break;
    case StmtKind::LoadField: {
      if (!checkVar(S, S.Lhs, "destination") ||
          !checkVar(S, S.Base, "base"))
        break;
      const ClassDecl *C = declaredClass(S.Base);
      if (C && !C->findField(S.FieldName))
        warn(S, "field '" + S.FieldName + "' not found on type '" +
                    C->name() + "'");
      break;
    }
    case StmtKind::StoreField: {
      if (!checkVar(S, S.Base, "base") || !checkVar(S, S.Rhs, "value"))
        break;
      const ClassDecl *C = declaredClass(S.Base);
      if (C && !C->findField(S.FieldName))
        warn(S, "field '" + S.FieldName + "' not found on type '" +
                    C->name() + "'");
      break;
    }
    case StmtKind::LoadStaticField:
    case StmtKind::StoreStaticField: {
      if (S.Kind == StmtKind::LoadStaticField)
        checkVar(S, S.Lhs, "destination");
      else
        checkVar(S, S.Rhs, "value");
      const ClassDecl *C = P.findClass(S.ClassName);
      if (!C) {
        error(S, "static field access on unknown class '" + S.ClassName + "'");
        break;
      }
      if (!C->findField(S.FieldName))
        warn(S, "static field '" + S.FieldName + "' not found on class '" +
                    C->name() + "'");
      break;
    }
    case StmtKind::AssignLayoutId:
    case StmtKind::AssignViewId:
      checkVar(S, S.Lhs, "destination");
      if (S.ResourceName.empty())
        error(S, "empty resource name");
      break;
    case StmtKind::AssignClassConst: {
      checkVar(S, S.Lhs, "destination");
      if (!P.findClass(S.ClassName))
        error(S, "classof unknown class '" + S.ClassName + "'");
      break;
    }
    case StmtKind::Invoke: {
      if (S.Lhs != InvalidVar)
        checkVar(S, S.Lhs, "destination");
      if (!checkVar(S, S.Base, "receiver"))
        break;
      for (VarId Arg : S.Args)
        checkVar(S, Arg, "argument");
      const ClassDecl *C = declaredClass(S.Base);
      if (C && !C->findMethod(S.MethodName,
                              static_cast<unsigned>(S.Args.size())))
        warn(S, "method '" + S.MethodName + "/" +
                    std::to_string(S.Args.size()) + "' not found on type '" +
                    C->name() + "'");
      break;
    }
    case StmtKind::Return:
      if (S.Lhs != InvalidVar) {
        checkVar(S, S.Lhs, "return value");
        if (M.returnTypeName() == VoidTypeName)
          warn(S, "return with value in void method");
      }
      break;
    }
  }

  const Program &P;
  const MethodDecl &M;
  DiagnosticEngine &Diags;
  bool Ok = true;
};

} // namespace

bool gator::ir::verifyMethod(const Program &P, const MethodDecl &M,
                             DiagnosticEngine &Diags) {
  return MethodVerifier(P, M, Diags).run();
}

bool gator::ir::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  if (!P.isResolved()) {
    Diags.error("program must be resolved before verification");
    return false;
  }
  bool Ok = true;
  for (const auto &C : P.classes())
    for (const auto &M : C->methods())
      if (!M->isAbstract())
        Ok &= verifyMethod(P, *M, Diags);
  return Ok;
}
