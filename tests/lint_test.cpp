//===- lint_test.cpp - Static GUI error checker tests -----------*- C++ -*-===//

#include "corpus/ConnectBot.h"
#include "guimodel/Lint.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::guimodel;
using namespace gator::test;

namespace {

std::vector<LintFinding> lint(corpus::AppBundle &App) {
  auto R = runAnalysis(App);
  return runLint(*R, *App.Layouts);
}

unsigned countKind(const std::vector<LintFinding> &Findings, LintKind Kind) {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (F.Kind == Kind)
      ++N;
  return N;
}

const char *CleanLayout = R"(
<LinearLayout android:id="@+id/root">
  <Button android:id="@+id/ok" />
</LinearLayout>
)";

TEST(LintTest, CleanAppHasNoFindings) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    var l: L;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/ok;
    b := this.findViewById(bid);
    l := new L;
    b.setOnClickListener(l);
  }
}
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
)",
                        {{"main", CleanLayout}});
  auto Findings = lint(*App);
  // `root` id is declared-but-unused; everything else is clean.
  EXPECT_EQ(countKind(Findings, LintKind::UnresolvedFind), 0u);
  EXPECT_EQ(countKind(Findings, LintKind::BadCast), 0u);
  EXPECT_EQ(countKind(Findings, LintKind::DeadListener), 0u);
  EXPECT_EQ(countKind(Findings, LintKind::OrphanView), 0u);
  EXPECT_EQ(countKind(Findings, LintKind::UnusedLayout), 0u);
  EXPECT_EQ(countKind(Findings, LintKind::UnusedViewId), 1u);
}

TEST(LintTest, ConnectBotOnlyDeclaredButUnusedIds) {
  // Figure 1 declares keyboard_group and terminal_overlay in the XML but
  // never touches them from code — lint reports exactly those, and no
  // behavioural findings.
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  auto Findings = lint(*App);
  std::ostringstream OS;
  printLintFindings(OS, Findings);
  EXPECT_EQ(Findings.size(), 2u) << OS.str();
  EXPECT_EQ(countKind(Findings, LintKind::UnusedViewId), 2u) << OS.str();
  EXPECT_NE(OS.str().find("keyboard_group"), std::string::npos);
  EXPECT_NE(OS.str().find("terminal_overlay"), std::string::npos);
}

TEST(LintTest, DetectsUnresolvedFind) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var ghost: int;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    ghost := @id/no_such_widget;
    v := this.findViewById(ghost);
  }
}
)",
                        {{"main", CleanLayout}});
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::UnresolvedFind), 1u);
}

TEST(LintTest, DetectsBadCast) {
  // The find resolves to a Button, but the destination is ImageView-typed:
  // the cast can never succeed.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var img: android.widget.ImageView;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/ok;
    img := this.findViewById(bid);
  }
}
)",
                        {{"main", CleanLayout}});
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::BadCast), 1u);
}

TEST(LintTest, CompatibleDowncastNotFlagged) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.widget.Button;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/ok;
    b := this.findViewById(bid);
  }
}
)",
                        {{"main", CleanLayout}});
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::BadCast), 0u);
}

TEST(LintTest, DetectsDeadListener) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var l: L;
    l := new L;
  }
}
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
)");
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::DeadListener), 1u);
}

TEST(LintTest, DetectsOrphanView) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    v := new android.widget.Button;
  }
}
)");
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::OrphanView), 1u);
}

TEST(LintTest, DetectsUnusedLayoutButNotIncludeTargets) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
}
)",
                        {{"main",
                          "<LinearLayout>"
                          "<include layout=\"@layout/bar\"/></LinearLayout>"},
                         {"bar", "<TextView/>"},
                         {"never_used", "<TextView/>"}});
  auto Findings = lint(*App);
  EXPECT_EQ(countKind(Findings, LintKind::UnusedLayout), 1u);
  bool MentionsNeverUsed = false;
  for (const LintFinding &F : Findings)
    if (F.Message.find("never_used") != std::string::npos)
      MentionsNeverUsed = true;
  EXPECT_TRUE(MentionsNeverUsed);
}

TEST(LintTest, PrintedFindingsIncludeKindAndLocation) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    v := new android.widget.Button;
  }
}
)");
  auto Findings = lint(*App);
  std::ostringstream OS;
  printLintFindings(OS, Findings);
  EXPECT_NE(OS.str().find("orphan-view"), std::string::npos);
  EXPECT_NE(OS.str().find("test.alite:"), std::string::npos);
}

} // namespace
