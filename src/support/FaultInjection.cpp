//===- FaultInjection.cpp - Deterministic fault injection -------*- C++ -*-===//

#include "support/FaultInjection.h"

#include <atomic>

using namespace gator;
using namespace gator::support;

std::string gator::support::truncateInput(std::string_view Input,
                                          uint64_t Seed) {
  SplitMix64 Rng(Seed);
  size_t Keep = static_cast<size_t>(Rng.below(Input.size() + 1));
  return std::string(Input.substr(0, Keep));
}

std::string gator::support::corruptInput(std::string_view Input,
                                         uint64_t Seed, unsigned Flips) {
  std::string Out(Input);
  if (Out.empty())
    return Out;
  SplitMix64 Rng(Seed);
  for (unsigned I = 0; I < Flips; ++I) {
    size_t Pos = static_cast<size_t>(Rng.below(Out.size()));
    unsigned Bit = static_cast<unsigned>(Rng.below(8));
    Out[Pos] = static_cast<char>(static_cast<unsigned char>(Out[Pos]) ^
                                 (1u << Bit));
  }
  return Out;
}

namespace {
/// 0 = disarmed; otherwise the armed step + 1 (so step 0 is expressible).
std::atomic<unsigned long> ForcedTripPlusOne{0};
} // namespace

void gator::support::armForcedBudgetTrip(unsigned long StepN) {
  ForcedTripPlusOne.store(StepN + 1, std::memory_order_relaxed);
}

void gator::support::disarmForcedBudgetTrip() {
  ForcedTripPlusOne.store(0, std::memory_order_relaxed);
}

std::optional<unsigned long> gator::support::forcedBudgetTripStep() {
  unsigned long V = ForcedTripPlusOne.load(std::memory_order_relaxed);
  if (V == 0)
    return std::nullopt;
  return V - 1;
}
