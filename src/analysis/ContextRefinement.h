//===- ContextRefinement.h - Call-site cloning of helpers -------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context-sensitivity refinement the paper's case study motivates
/// (Section 5): the XBMC outlier's imprecision "is due to the
/// calling-context-insensitive nature of the analysis; applying existing
/// techniques for context sensitivity would lead to an even more precise
/// solution". This pass implements the lightest such technique: per
/// call-site cloning of small view-returning helper methods (the
/// `findViewById` wrapper pattern of Figure 1, lines 3-7). After cloning,
/// each call site has a private copy of the helper's variables, so views
/// flowing through one site no longer pollute the others.
///
/// The pass mutates the Program in place (adds clone methods, rewrites
/// call sites); run it before building the constraint graph.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_CONTEXTREFINEMENT_H
#define GATOR_ANALYSIS_CONTEXTREFINEMENT_H

#include "android/AndroidModel.h"
#include "ir/Ir.h"

namespace gator {
namespace analysis {

struct ContextRefinementStats {
  unsigned HelpersCloned = 0;
  unsigned CallSitesRewritten = 0;
};

/// Clones every eligible helper per call site. A method is eligible when
/// it (1) is a concrete application method, (2) has at most
/// \p MaxHelperStmts statements, (3) returns a view type, (4) is the
/// unique CHA target at each rewritten call site, and (5) is called from
/// more than one site. Requires \p P resolved and \p AM bound;
/// re-resolves \p P before returning.
ContextRefinementStats applyContextRefinement(ir::Program &P,
                                              const android::AndroidModel &AM,
                                              unsigned MaxHelperStmts,
                                              DiagnosticEngine &Diags);

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_CONTEXTREFINEMENT_H
