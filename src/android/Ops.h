//===- Ops.h - Android operation kinds --------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The categories of Android operations whose semantics Section 3.2 of the
/// paper defines. Each occurrence of such an operation in application code
/// becomes one operation node in the constraint graph (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANDROID_OPS_H
#define GATOR_ANDROID_OPS_H

#include <cstddef>

namespace gator {
namespace android {

/// Operation-node kinds, named after the paper's semantic rules.
enum class OpKind {
  /// Rule INFLATE1: `x := inflater.inflate(layoutId)` — inflate a layout,
  /// return the root view.
  Inflate1,
  /// Rule INFLATE2: `activity.setContentView(layoutId)` — inflate a layout
  /// and associate its root with the activity (or dialog).
  Inflate2,
  /// Rule ADDVIEW1: `activity.setContentView(view)` — associate an
  /// existing view with the activity as its hierarchy root.
  AddView1,
  /// Rule ADDVIEW2: `parent.addView(child)` — make one view a child of
  /// another.
  AddView2,
  /// Rule SETID: `view.setId(intId)`.
  SetId,
  /// Rule SETLISTENER: `view.setOnXListener(listener)`.
  SetListener,
  /// Rule FINDVIEW1: `z := view.findViewById(intId)` — search the
  /// hierarchy rooted at the receiver view.
  FindView1,
  /// Rule FINDVIEW2: `z := activity.findViewById(intId)` — search the
  /// activity's whole hierarchy.
  FindView2,
  /// Rule FINDVIEW3: `z := view.m()` for operations retrieving some
  /// descendant with a run-time property (e.g. findFocus(),
  /// getCurrentView()). A child-only refinement restricts the result to
  /// direct children (the paper mentions this refinement for
  /// getCurrentView()).
  FindView3,
  /// Extension (the paper lists fragments as unhandled future work):
  /// `transaction.add(containerId, fragment)` / `.replace(...)` — the
  /// fragment's onCreateView result becomes a child of the container view
  /// with the given id.
  FragmentAdd,
  /// Extension (GATOR-family list modeling): `listView.setAdapter(a)` —
  /// the views returned by the adapter's getView factory become children
  /// of the AdapterView.
  SetAdapter,
  /// Client extension (Section 6): `ctx.startActivity(intent)` — used by
  /// the activity-transition-graph client, not by the core analysis.
  StartActivity,
  /// Client extension: `intent.setClass(ctx, classConst)`.
  SetIntentClass,
};

/// Number of OpKind enumerators; sizes per-kind stat arrays.
inline constexpr size_t NumOpKinds =
    static_cast<size_t>(OpKind::SetIntentClass) + 1;

/// Printable rule name ("Inflate1", "FindView2", ...).
const char *opKindName(OpKind Kind);

/// GUI event categories for listener registration.
enum class EventKind {
  Click,
  LongClick,
  Touch,
  Key,
  FocusChange,
  ItemClick,
  ItemSelected,
  SeekBarChange,
  CheckedChange,
  TextChange,
};

/// Printable event name ("click", "long-click", ...).
const char *eventKindName(EventKind Kind);

} // namespace android
} // namespace gator

#endif // GATOR_ANDROID_OPS_H
