//===- bench_casestudy.cpp - Section 5 case study ---------------*- C++ -*-===//
//
// Reproduces the paper's Section 5 case study:
//
//  1. APV, BarcodeScanner, and SuperGenPass: comparing the computed
//     solution against ground truth. The paper reports perfect precision
//     for APV and BarcodeScanner; SuperGenPass routes lookups through a
//     shared helper, and the paper's discussion attributes all observed
//     imprecision to calling-context insensitivity.
//  2. XBMC: the outlier (receivers 8.81 in the paper; "the
//     perfectly-precise measurements would be 3.59 for receivers, 1.63
//     for results"), whose imprecision "is due to the calling-context-
//     insensitive nature of the analysis; applying existing techniques
//     for context sensitivity would lead to an even more precise
//     solution". We run XBMC twice — stock, and with the call-site
//     cloning refinement — showing the metric collapsing back toward the
//     ground truth.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextRefinement.h"
#include "analysis/GuiAnalysis.h"
#include "corpus/Corpus.h"

#include <cstdio>
#include <iostream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;

namespace {

const AppSpec *findSpec(const char *Name) {
  for (const AppSpec &Spec : paperCorpus())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

/// Checks every ground-truth find-view expectation against the solution.
/// Returns {exactly-matched, sound-but-larger, unsound} counts.
struct TruthCheck {
  unsigned Exact = 0;
  unsigned Superset = 0;
  unsigned Unsound = 0;
};

TruthCheck checkTruth(const GeneratedApp &App, const AnalysisResult &Result) {
  TruthCheck Check;
  for (const FindViewExpectation &E : App.Finds) {
    const ir::ClassDecl *C = App.Bundle->Program.findClass(E.ClassName);
    const ir::MethodDecl *M = C ? C->findOwnMethod(E.MethodName, 0) : nullptr;
    ir::VarId V = M ? M->findVar(E.OutVar) : ir::InvalidVar;
    if (V == ir::InvalidVar) {
      ++Check.Unsound;
      continue;
    }
    NodeId Node = Result.Graph->getVarNode(M, V);
    bool FoundExpected = false;
    size_t ViewCount = 0;
    for (NodeId Val : Result.Sol->viewsAt(Node)) {
      ++ViewCount;
      const graph::Node &N = Result.Graph->node(Val);
      if (N.Kind == NodeKind::ViewInfl && N.LNode &&
          N.LNode->viewIdName() == E.ViewIdName)
        FoundExpected = true;
    }
    if (!FoundExpected)
      ++Check.Unsound;
    else if (ViewCount == E.ExpectedMatches)
      ++Check.Exact;
    else
      ++Check.Superset;
  }
  return Check;
}

void runApp(const char *Name, bool WithRefinement) {
  const AppSpec *Spec = findSpec(Name);
  if (!Spec) {
    std::cerr << "unknown app " << Name << "\n";
    std::exit(1);
  }
  GeneratedApp App = generateApp(*Spec);

  AnalysisOptions Options;
  ContextRefinementStats RefStats;
  if (WithRefinement)
    RefStats = applyContextRefinement(App.Bundle->Program, App.Bundle->Android,
                                      Options.ContextHelperMaxStmts,
                                      App.Bundle->Diags);

  auto Result =
      GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                       App.Bundle->Android, Options, App.Bundle->Diags);
  if (!Result) {
    std::cerr << "analysis failed for " << Name << "\n";
    std::exit(1);
  }

  auto M = Result->metrics();
  TruthCheck Check = checkTruth(App, *Result);
  std::printf("%-14s%-22s receivers=%-6.2f results=%-6.2f "
              "truth: exact=%u superset=%u unsound=%u",
              Name, WithRefinement ? " (context-refined)" : " (stock)",
              M.AvgReceivers, M.AvgResults.value_or(0.0), Check.Exact,
              Check.Superset, Check.Unsound);
  if (WithRefinement)
    std::printf("  [cloned %u helpers, %u call sites]",
                RefStats.HelpersCloned, RefStats.CallSitesRewritten);
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Section 5 case study\n");
  std::printf("--------------------\n");
  std::printf("paper: perfect precision for APV and BarcodeScanner; all\n");
  std::printf("observed imprecision caused by context insensitivity, cured\n");
  std::printf("by context-sensitive techniques (demonstrated below via\n");
  std::printf("call-site cloning of view-returning helpers).\n\n");

  runApp("APV", false);
  runApp("BarcodeScanner", false);
  runApp("SuperGenPass", false);
  runApp("SuperGenPass", true);
  std::printf("\nXBMC outlier (paper: receivers 8.81 measured vs 3.59 "
              "perfectly-precise):\n");
  runApp("XBMC", false);
  runApp("XBMC", true);
  return 0;
}
