//===- corpus_test.cpp - Synthetic corpus generator tests -------*- C++ -*-===//

#include "analysis/AppStats.h"
#include "corpus/Corpus.h"
#include "ir/Verifier.h"
#include "layout/LayoutWriter.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::test;

namespace {

AppSpec smallSpec() {
  AppSpec Spec;
  Spec.Name = "Mini";
  Spec.Seed = 3;
  Spec.Activities = 2;
  Spec.FillerClasses = 4;
  Spec.MethodsPerFillerClass = 3;
  Spec.ViewsPerLayout = 6;
  Spec.IdsPerLayout = 4;
  Spec.DirectFindsPerActivity = 2;
  Spec.ListenersPerActivity = 1;
  Spec.ProgViewsPerActivity = 1;
  Spec.InflateItemsPerActivity = 1;
  Spec.UseFlipper = true;
  return Spec;
}

TEST(CorpusTest, GeneratesWellFormedPrograms) {
  GeneratedApp App = generateApp(smallSpec());
  ASSERT_FALSE(App.Bundle->Diags.hasErrors());
  DiagnosticEngine VDiags;
  EXPECT_TRUE(ir::verifyProgram(App.Bundle->Program, VDiags));
  EXPECT_EQ(VDiags.errorCount(), 0u);
}

TEST(CorpusTest, DeterministicForSameSeed) {
  GeneratedApp A = generateApp(smallSpec());
  GeneratedApp B = generateApp(smallSpec());
  auto RA = runAnalysis(*A.Bundle);
  auto RB = runAnalysis(*B.Bundle);
  EXPECT_EQ(RA->Graph->size(), RB->Graph->size());
  EXPECT_EQ(RA->Graph->flowEdgeCount(), RB->Graph->flowEdgeCount());
  auto MA = RA->metrics();
  auto MB = RB->metrics();
  EXPECT_DOUBLE_EQ(MA.AvgReceivers, MB.AvgReceivers);
  EXPECT_EQ(A.Finds.size(), B.Finds.size());
}

TEST(CorpusTest, DifferentSeedsChangeLayoutShapes) {
  AppSpec S1 = smallSpec();
  AppSpec S2 = smallSpec();
  S2.Seed = 99;
  GeneratedApp A = generateApp(S1);
  GeneratedApp B = generateApp(S2);
  // Same scale either way.
  EXPECT_EQ(A.Bundle->Program.appClassCount(),
            B.Bundle->Program.appClassCount());
}

TEST(CorpusTest, GroundTruthFindsAreSoundAndPreciseWhenDirect) {
  GeneratedApp App = generateApp(smallSpec());
  auto R = runAnalysis(*App.Bundle);
  ASSERT_FALSE(App.Finds.empty());
  for (const FindViewExpectation &E : App.Finds) {
    NodeId N = varNode(*App.Bundle, *R, E.ClassName, E.MethodName, 0,
                       E.OutVar);
    auto Views = R->Sol->viewsAt(N);
    bool Found = false;
    for (NodeId V : Views) {
      const Node &Info = R->Graph->node(V);
      if (Info.Kind == NodeKind::ViewInfl && Info.LNode &&
          Info.LNode->viewIdName() == E.ViewIdName)
        Found = true;
      if (Info.Kind == NodeKind::ViewAlloc)
        Found = Found || E.ViewIdName.empty();
    }
    EXPECT_TRUE(Found) << "expected view with id '" << E.ViewIdName
                       << "' at " << E.ClassName << "." << E.MethodName
                       << "::" << E.OutVar;
    if (!E.ViaSharedHelper) {
      EXPECT_EQ(Views.size(), E.ExpectedMatches)
          << E.ClassName << "::" << E.OutVar;
    }
  }
}

TEST(CorpusTest, ListenerGroundTruthHolds) {
  GeneratedApp App = generateApp(smallSpec());
  auto R = runAnalysis(*App.Bundle);
  ASSERT_FALSE(App.Listeners.empty());
  for (const ListenerExpectation &E : App.Listeners) {
    // Find the view with the expected id inside the expected activity's
    // hierarchy and check its listener set.
    NodeId Act = R->Graph->getActivityNode(
        App.Bundle->Program.findClass(E.ActivityClass));
    bool Satisfied = false;
    for (NodeId Root : R->Graph->roots(Act))
      for (NodeId V : R->Graph->descendantsOf(Root)) {
        const Node &Info = R->Graph->node(V);
        if (Info.Kind != NodeKind::ViewInfl || !Info.LNode ||
            Info.LNode->viewIdName() != E.ViewIdName)
          continue;
        for (NodeId L : R->Graph->listeners(V))
          if (R->Graph->node(L).Klass &&
              R->Graph->node(L).Klass->name() == E.ListenerClass)
            Satisfied = true;
      }
    EXPECT_TRUE(Satisfied) << E.ActivityClass << " view id " << E.ViewIdName
                           << " should have listener " << E.ListenerClass;
  }
}

TEST(CorpusTest, PaperCorpusHasTwentyAppsInPaperOrder) {
  const auto &Corpus = paperCorpus();
  ASSERT_EQ(Corpus.size(), 20u);
  EXPECT_EQ(Corpus.front().Name, "APV");
  EXPECT_EQ(Corpus[4].Name, "ConnectBot");
  EXPECT_EQ(Corpus.back().Name, "XBMC");
}

TEST(CorpusTest, ClassAndMethodCountsTrackTable1) {
  // Spot-check a small and a large app: generated class counts match
  // Table 1 exactly; methods within 10% (filler rounding).
  struct Expectation {
    size_t Index;
    unsigned Classes;
    unsigned Methods;
  };
  for (const Expectation &E :
       {Expectation{0, 68, 415}, Expectation{1, 1228, 5782},
        Expectation{19, 568, 3012}}) {
    GeneratedApp App = generateApp(paperCorpus()[E.Index]);
    EXPECT_EQ(App.Bundle->Program.appClassCount(), E.Classes);
    double Ratio =
        double(App.Bundle->Program.appMethodCount()) / E.Methods;
    EXPECT_GT(Ratio, 0.9) << paperCorpus()[E.Index].Name;
    EXPECT_LT(Ratio, 1.15) << paperCorpus()[E.Index].Name;
  }
}

TEST(CorpusTest, SharedHelperCreatesImprecisionAndOnlyThere) {
  AppSpec Spec = smallSpec();
  Spec.SharedFindsPerActivity = 2;
  Spec.SharedHelperUsers = 2;
  GeneratedApp App = generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  unsigned SharedChecked = 0;
  for (const FindViewExpectation &E : App.Finds) {
    if (!E.ViaSharedHelper)
      continue;
    ++SharedChecked;
    NodeId N = varNode(*App.Bundle, *R, E.ClassName, E.MethodName, 0,
                       E.OutVar);
    // Every shared lookup sees the union of all shared lookups (4 here).
    EXPECT_EQ(R->Sol->viewsAt(N).size(), 4u);
  }
  EXPECT_EQ(SharedChecked, 4u);
}

TEST(CorpusTest, StatsReflectSpecKnobs) {
  AppSpec Spec = smallSpec();
  GeneratedApp App = generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  AppStats Stats = collectAppStats(Spec.Name, App.Bundle->Program, *R);
  // Layouts: 1 main + 1 item per activity.
  EXPECT_EQ(Stats.LayoutIds, Spec.Activities * 2);
  // setContentView + inflate items.
  EXPECT_EQ(Stats.OpInflate, Spec.Activities * 2);
  // One explicit view allocation per activity.
  EXPECT_EQ(Stats.AllocViews, Spec.Activities * Spec.ProgViewsPerActivity);
  EXPECT_EQ(Stats.Listeners, Spec.Activities * Spec.ListenersPerActivity);
  EXPECT_GT(Stats.InflViews, 0u);
  EXPECT_GT(Stats.OpFindView, 0u);
  EXPECT_EQ(Stats.OpSetListener, Spec.Activities * 1u);
}

TEST(CorpusTest, FullTextualRoundTripPreservesMetrics) {
  // Serialize a generated app to ALite text + layout XML, re-import both
  // through the real frontends, re-analyze, and compare the precision
  // metrics — the strongest end-to-end check of both serializers.
  AppSpec Spec = smallSpec();
  Spec.SharedFindsPerActivity = 1;
  Spec.SharedHelperUsers = 2;
  GeneratedApp Original = generateApp(Spec);
  auto ROrig = runAnalysis(*Original.Bundle);

  std::string AliteText = parser::programToString(Original.Bundle->Program);

  auto Reimported = std::make_unique<corpus::AppBundle>();
  Reimported->Android.install(Reimported->Program);
  ASSERT_TRUE(parser::parseAlite(AliteText, "roundtrip.alite",
                                 Reimported->Program, Reimported->Diags));
  for (const auto &Def : Original.Bundle->Layouts->layouts())
    ASSERT_NE(layout::readLayoutXml(*Reimported->Layouts, Def->name(),
                                    layout::layoutToXml(*Def),
                                    Reimported->Diags),
              nullptr);
  ASSERT_TRUE(Reimported->finalize());
  auto RNew = runAnalysis(*Reimported);

  auto MOrig = ROrig->metrics();
  auto MNew = RNew->metrics();
  EXPECT_DOUBLE_EQ(MOrig.AvgReceivers, MNew.AvgReceivers);
  EXPECT_DOUBLE_EQ(*MOrig.AvgResults, *MNew.AvgResults);
  EXPECT_EQ(ROrig->Graph->parentChildEdgeCount(),
            RNew->Graph->parentChildEdgeCount());
}

//===----------------------------------------------------------------------===//
// makeFleet: 10k-scale synthetic fleets (docs/MEMORY.md corpus engine)
//===----------------------------------------------------------------------===//

bool sameSpec(const AppSpec &A, const AppSpec &B) {
  return A.Name == B.Name && A.Seed == B.Seed &&
         A.Activities == B.Activities && A.FillerClasses == B.FillerClasses &&
         A.ViewsPerLayout == B.ViewsPerLayout &&
         A.IdsPerLayout == B.IdsPerLayout &&
         A.DirectFindsPerActivity == B.DirectFindsPerActivity &&
         A.SharedFindsPerActivity == B.SharedFindsPerActivity &&
         A.SharedHelperUsers == B.SharedHelperUsers &&
         A.ListenersPerActivity == B.ListenersPerActivity &&
         A.ProgViewsPerActivity == B.ProgViewsPerActivity &&
         A.InflateItemsPerActivity == B.InflateItemsPerActivity &&
         A.UseFlipper == B.UseFlipper && A.UseDialog == B.UseDialog;
}

TEST(FleetTest, DeterministicForSameSpec) {
  FleetSpec FS;
  FS.Apps = 200;
  FS.Seed = 11;
  std::vector<AppSpec> A = makeFleet(FS);
  std::vector<AppSpec> B = makeFleet(FS);
  ASSERT_EQ(A.size(), 200u);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(sameSpec(A[I], B[I])) << I;
}

TEST(FleetTest, SpecIsAPureFunctionOfSeedAndIndex) {
  // Per-index SplitMix64 streams: growing the fleet never perturbs the
  // specs already generated, so shards of a 10k fleet can be produced
  // independently and still agree.
  FleetSpec Small, Large;
  Small.Apps = 50;
  Large.Apps = 500;
  Small.Seed = Large.Seed = 42;
  std::vector<AppSpec> A = makeFleet(Small);
  std::vector<AppSpec> B = makeFleet(Large);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(sameSpec(A[I], B[I])) << I;
}

TEST(FleetTest, ShapeKnobsControlTheDistribution) {
  FleetSpec FS;
  FS.Apps = 400;
  FS.Seed = 9;
  unsigned Deep = 0, Wide = 0, Aliased = 0;
  for (const AppSpec &S : makeFleet(FS)) {
    if (S.ViewsPerLayout >= 24)
      ++Deep;
    else if (S.ListenersPerActivity >= 4)
      ++Wide;
    else if (S.SharedHelperUsers > 0)
      ++Aliased;
  }
  // 15% buckets over 400 draws: each shape should land well inside
  // [5%, 30%] unless the stream is badly skewed.
  EXPECT_GT(Deep, 20u);
  EXPECT_LT(Deep, 120u);
  EXPECT_GT(Wide, 20u);
  EXPECT_LT(Wide, 120u);
  EXPECT_GT(Aliased, 20u);
  EXPECT_LT(Aliased, 120u);

  // All-baseline fleet: turning the percentages off removes the shapes.
  FS.DeepTreePercent = FS.WideListenerPercent = FS.SharedHelperPercent = 0;
  for (const AppSpec &S : makeFleet(FS)) {
    EXPECT_LT(S.ViewsPerLayout, 24u);
    EXPECT_LT(S.ListenersPerActivity, 4u);
    EXPECT_EQ(S.SharedHelperUsers, 0u);
  }
}

TEST(FleetTest, FleetAppsGenerateAndVerify) {
  FleetSpec FS;
  FS.Apps = 8;
  FS.Seed = 123;
  for (const AppSpec &Spec : makeFleet(FS)) {
    GeneratedApp App = generateApp(Spec);
    ASSERT_NE(App.Bundle, nullptr) << Spec.Name;
    EXPECT_FALSE(App.Bundle->Diags.hasErrors()) << Spec.Name;
    EXPECT_TRUE(ir::verifyProgram(App.Bundle->Program, App.Bundle->Diags))
        << Spec.Name;
  }
}

TEST(CorpusTest, AppsWithoutAddViewExist) {
  // Table 1: four apps have no add-child operations at all.
  unsigned NoAddView = 0;
  for (const AppSpec &Spec : paperCorpus())
    if (Spec.ProgViewsPerActivity == 0 && Spec.InflateItemsPerActivity == 0)
      ++NoAddView;
  EXPECT_EQ(NoAddView, 4u);
}

} // namespace
