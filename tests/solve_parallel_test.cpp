//===- solve_parallel_test.cpp - Intra-solve parallel engine tests --------===//
//
// The topology-aware parallel solve (docs/PARALLEL.md, "Inside one
// solve") must be an *exact* replay of the serial schedule: for every
// SolveJobs value the committed solution, its digest, every flowsTo set's
// insertion order, and every scheduling-independent solver counter are
// identical to SolveJobs=1. Covered here:
//  - parallelForGrained units (chunking, serial fallback, exceptions);
//  - SccIndex units (condensation, strata, incremental edge admission);
//  - the descendants-cache FlatIdMap rewrite (hit/miss counters, the
//    probe/compute/seed split the prewarm path relies on);
//  - differential runs: semantic options matrix x SolveJobs {1,2,4,8} on
//    fixture and corpus apps (hostile shapes included), plus the
//    incremental-edit re-solve, all asserting solutionDigest equality
//    and exact per-node set equality with the serial engine.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "corpus/Corpus.h"
#include "graph/SccIndex.h"
#include "ir/ProgramBuilder.h"
#include "support/ThreadPool.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using gator::test::makeBundle;
using gator::test::runAnalysis;

namespace {

//===----------------------------------------------------------------------===//
// parallelForGrained
//===----------------------------------------------------------------------===//

TEST(ParallelForGrainedTest, CoversEveryIndexExactlyOnce) {
  for (unsigned Jobs : {1u, 2u, 4u}) {
    for (size_t Grain : {size_t(1), size_t(3), size_t(16), size_t(1000)}) {
      std::vector<std::atomic<int>> Hits(257);
      support::parallelForGrained(Jobs, Hits.size(), Grain,
                                  [&](size_t I) { Hits[I].fetch_add(1); });
      for (size_t I = 0; I < Hits.size(); ++I)
        ASSERT_EQ(Hits[I].load(), 1) << "jobs " << Jobs << " grain " << Grain
                                     << " index " << I;
    }
  }
}

TEST(ParallelForGrainedTest, SerialFallbackRunsInIndexOrder) {
  // Jobs=1 and N<=Grain are both the inline path: strict index order.
  for (auto [Jobs, N, Grain] : {std::tuple<unsigned, size_t, size_t>{1, 64, 4},
                                {8, 5, 16}}) {
    std::vector<size_t> Order;
    support::parallelForGrained(Jobs, N, Grain,
                                [&](size_t I) { Order.push_back(I); });
    std::vector<size_t> Expect(N);
    std::iota(Expect.begin(), Expect.end(), 0);
    EXPECT_EQ(Order, Expect);
  }
}

TEST(ParallelForGrainedTest, LowestChunkExceptionWins) {
  for (unsigned Jobs : {1u, 4u}) {
    try {
      support::parallelForGrained(Jobs, 40, 4, [&](size_t I) {
        if (I == 7 || I == 23)
          throw std::runtime_error("boom " + std::to_string(I));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "boom 7") << "jobs " << Jobs;
    }
  }
}

TEST(ParallelForGrainedTest, PoolOverloadIsABarrier) {
  support::ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(100);
  support::parallelForGrained(Pool, Hits.size(), 8,
                              [&](size_t B, size_t E) {
                                for (size_t I = B; I < E; ++I)
                                  Hits[I].fetch_add(1);
                              });
  // The call returned, so every chunk must have completed.
  for (size_t I = 0; I < Hits.size(); ++I)
    ASSERT_EQ(Hits[I].load(), 1) << I;

  // N <= Grain runs inline without touching the pool.
  auto TotalTasks = [&Pool] {
    unsigned long Sum = 0;
    for (unsigned long T : Pool.tasksExecuted())
      Sum += T;
    return Sum;
  };
  unsigned long Before = TotalTasks();
  std::vector<size_t> Small;
  support::parallelForGrained(Pool, 3, 8, [&](size_t B, size_t E) {
    for (size_t I = B; I < E; ++I)
      Small.push_back(I);
  });
  EXPECT_EQ(Small, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(TotalTasks(), Before);
}

//===----------------------------------------------------------------------===//
// SccIndex
//===----------------------------------------------------------------------===//

/// A graph with Var nodes 0..N-1 minted up front, for direct edge wiring.
struct SccFixture : ::testing::Test {
  void SetUp() override {
    ir::ProgramBuilder Builder(P, Diags);
    ir::ClassBuilder A = Builder.makeClass("A");
    ir::MethodBuilder MB = A.method("m", "void");
    MB.local("x", "A");
    MB.assignNull("x");
    ASSERT_TRUE(Builder.finish());
    M = P.findClass("A")->findOwnMethod("m", 0);
  }
  NodeId var(unsigned V) { return G.getVarNode(M, V); }
  NodeId view(unsigned I) {
    return G.getAllocNode(M, I, P.findClass("A"), /*IsView=*/true, {});
  }

  ir::Program P;
  DiagnosticEngine Diags;
  const ir::MethodDecl *M = nullptr;
  ConstraintGraph G;
};

TEST_F(SccFixture, CondensesCyclesAndLayersTheDag) {
  // 0 -> 1 <-> 2 -> 3 -> 4, 0 -> 3: SCCs {0}, {1,2}, {3}, {4} in strata
  // 0, 1, 2, 3.
  for (auto [F, T] : {std::pair<unsigned, unsigned>{0, 1},
                      {1, 2}, {2, 1}, {2, 3}, {3, 4}, {0, 3}})
    G.addFlowEdge(var(F), var(T));
  SccIndex Scc;
  EXPECT_FALSE(Scc.built());
  Scc.build(G);
  EXPECT_TRUE(Scc.built());
  EXPECT_EQ(Scc.maxSccSize(), 2u);
  EXPECT_EQ(Scc.sccOf(var(1)), Scc.sccOf(var(2)));
  EXPECT_NE(Scc.sccOf(var(0)), Scc.sccOf(var(1)));
  EXPECT_EQ(Scc.stratumOf(var(0)), 0u);
  EXPECT_EQ(Scc.stratumOf(var(1)), 1u);
  EXPECT_EQ(Scc.stratumOf(var(2)), 1u);
  EXPECT_EQ(Scc.stratumOf(var(3)), 2u);
  EXPECT_EQ(Scc.stratumOf(var(4)), 3u);
  EXPECT_GE(Scc.strataCount(), 4u);
  // Every cross-SCC edge must point to a strictly higher stratum — the
  // property wave scheduling relies on.
  for (NodeId N = 0; N < G.size(); ++N)
    for (NodeId S : G.flowSuccessors(N))
      if (Scc.sccOf(N) != Scc.sccOf(S))
        EXPECT_LT(Scc.stratumOf(N), Scc.stratumOf(S));
}

TEST_F(SccFixture, OpNodesAreSingletonStratumZero) {
  NodeId V = var(0);
  NodeId Op = G.makeOpNode(android::OpKind::FindView1, SourceLocation());
  G.addFlowEdge(V, Op);
  SccIndex Scc;
  Scc.build(G);
  EXPECT_EQ(Scc.stratumOf(Op), 0u);
  EXPECT_NE(Scc.sccOf(Op), Scc.sccOf(V));
}

TEST_F(SccFixture, NoteEdgeAcceptsTopologyPreservingEdges) {
  for (auto [F, T] : {std::pair<unsigned, unsigned>{0, 1}, {1, 2}})
    G.addFlowEdge(var(F), var(T));
  SccIndex Scc;
  Scc.build(G);

  // Forward edge (stratum 0 -> 2): accepted, stays clean.
  G.addFlowEdge(var(0), var(2));
  EXPECT_TRUE(Scc.noteEdge(var(0), var(2)));
  EXPECT_FALSE(Scc.dirty());

  // Edge into a fresh post-build sink: lifted above its source.
  NodeId Fresh = var(9);
  Scc.ensure(G.size());
  G.addFlowEdge(var(2), Fresh);
  EXPECT_TRUE(Scc.noteEdge(var(2), Fresh));
  EXPECT_FALSE(Scc.dirty());
  EXPECT_GT(Scc.stratumOf(Fresh), Scc.stratumOf(var(2)));

  // Back edge (stratum 2 -> 0): breaks stratification, marks dirty.
  G.addFlowEdge(var(2), var(0));
  EXPECT_FALSE(Scc.noteEdge(var(2), var(0)));
  EXPECT_TRUE(Scc.dirty());
  EXPECT_TRUE(Scc.needsRebuild(G.flowEdgeCount()));

  Scc.build(G);
  EXPECT_FALSE(Scc.dirty());
  EXPECT_EQ(Scc.recondensations(), 1u);
  // 0 -> 1 -> 2 -> 0 collapsed into one SCC.
  EXPECT_EQ(Scc.sccOf(var(0)), Scc.sccOf(var(2)));
  EXPECT_EQ(Scc.maxSccSize(), 3u);
}

TEST_F(SccFixture, EnsureGrowsWithSingletonStrataZero) {
  G.addFlowEdge(var(0), var(1));
  SccIndex Scc;
  Scc.build(G);
  size_t SccsAtBuild = Scc.sccCount();
  NodeId Late = var(7); // minted after the build
  Scc.ensure(G.size());
  EXPECT_EQ(Scc.stratumOf(Late), 0u);
  EXPECT_GT(Scc.sccCount(), SccsAtBuild);
  EXPECT_FALSE(Scc.dirty());
}

//===----------------------------------------------------------------------===//
// Descendants cache (FlatIdMap rewrite + the prewarm split)
//===----------------------------------------------------------------------===//

TEST_F(SccFixture, DescendantsCacheCountsHitsAndMisses) {
  // A small view tree: 0 -> {1, 2}, 1 -> {3}.
  NodeId V[4];
  for (unsigned I = 0; I < 4; ++I)
    V[I] = view(I);
  G.addParentChildEdge(V[0], V[1]);
  G.addParentChildEdge(V[0], V[2]);
  G.addParentChildEdge(V[1], V[3]);

  EXPECT_EQ(G.descendantsCacheMisses(), 0u);
  const std::vector<NodeId> &First = G.descendantsOf(V[0]);
  EXPECT_EQ(First.size(), 4u); // root + 3 descendants
  EXPECT_EQ(G.descendantsCacheMisses(), 1u);
  EXPECT_EQ(G.descendantsCacheHits(), 0u);

  std::vector<NodeId> Snapshot = First;
  EXPECT_EQ(G.descendantsOf(V[0]), Snapshot); // warm: same list, a hit
  EXPECT_EQ(G.descendantsCacheHits(), 1u);
  EXPECT_EQ(G.descendantsCacheMisses(), 1u);

  // A structural edit bumps HierarchyRev: next query is a miss again.
  G.addParentChildEdge(V[2], view(5));
  EXPECT_EQ(G.descendantsOf(V[0]).size(), 5u);
  EXPECT_EQ(G.descendantsCacheMisses(), 2u);
}

TEST_F(SccFixture, DescendantsProbeComputeSeedBypassCounters) {
  NodeId Root = view(0);
  G.addParentChildEdge(Root, view(1));
  G.addParentChildEdge(Root, view(2));

  // Probe on a cold cache: null, no counter movement.
  EXPECT_EQ(G.descendantsCurrent(Root), nullptr);
  EXPECT_EQ(G.descendantsCacheHits(), 0u);
  EXPECT_EQ(G.descendantsCacheMisses(), 0u);

  // Cache-free compute matches the caching walk's exact order.
  std::vector<NodeId> Out;
  std::vector<uint32_t> Seen;
  uint32_t Gen = 0;
  G.computeDescendantsInto(Root, Out, Seen, Gen);
  EXPECT_EQ(G.descendantsCacheMisses(), 0u);

  // Seeding installs the list: the probe now returns it, and the caching
  // entry point serves it as a hit without recomputing.
  std::vector<NodeId> Copy = Out;
  G.seedDescendants(Root, std::move(Copy));
  const std::vector<NodeId> *Cur = G.descendantsCurrent(Root);
  ASSERT_NE(Cur, nullptr);
  EXPECT_EQ(*Cur, Out);
  EXPECT_EQ(G.descendantsOf(Root), Out);
  EXPECT_EQ(G.descendantsCacheHits(), 1u);
  EXPECT_EQ(G.descendantsCacheMisses(), 0u);
}

//===----------------------------------------------------------------------===//
// Differential: parallel solve == serial solve, byte for byte
//===----------------------------------------------------------------------===//

/// Asserts R(Par) is an exact replay of R(Ser): same graph, same
/// per-node flowsTo contents *in insertion order* (node-mint and
/// value-commit order alike), and the same scheduling-independent
/// counters. Node ids are comparable because both runs analyze *fresh*
/// bundles generated from one spec — generation and the serial schedule
/// the parallel engine replays are both deterministic. (solutionDigest
/// is in-process-only — layout identity is by address — so the CLI
/// matrix harness covers digest/dump byte-identity; this comparison is
/// strictly stronger on the set contents.)
void expectExactReplay(const AnalysisResult &Ser, const AnalysisResult &Par,
                       const std::string &Context) {
  ASSERT_EQ(Ser.Graph->size(), Par.Graph->size()) << Context;
  EXPECT_EQ(Ser.Graph->flowEdgeCount(), Par.Graph->flowEdgeCount()) << Context;
  for (NodeId N = 0; N < Ser.Graph->size(); ++N) {
    const FlowSet &A = Ser.Sol->flowsToSets()[N];
    const FlowSet &B = Par.Sol->flowsToSets()[N];
    ASSERT_EQ(A.size(), B.size()) << Context << " node " << N;
    for (size_t I = 0; I < A.size(); ++I)
      ASSERT_EQ(A.begin()[I], B.begin()[I])
          << Context << " node " << N << " slot " << I;
  }
  EXPECT_EQ(Ser.Stats.Propagations, Par.Stats.Propagations) << Context;
  EXPECT_EQ(Ser.Stats.OpFirings, Par.Stats.OpFirings) << Context;
  EXPECT_EQ(Ser.Stats.ValuesPushed, Par.Stats.ValuesPushed) << Context;
  EXPECT_EQ(Ser.Stats.DedupHits, Par.Stats.DedupHits) << Context;
  EXPECT_EQ(Ser.Stats.DeltaCommits, Par.Stats.DeltaCommits) << Context;
  EXPECT_EQ(Ser.Stats.StructureRounds, Par.Stats.StructureRounds) << Context;
  EXPECT_EQ(Ser.Stats.PeakVarWorklist, Par.Stats.PeakVarWorklist) << Context;
  EXPECT_EQ(Ser.Stats.PeakOpWorklist, Par.Stats.PeakOpWorklist) << Context;
  EXPECT_EQ(Ser.Stats.WorkCharged, Par.Stats.WorkCharged) << Context;
  EXPECT_EQ(Ser.Sol->fidelity(), Par.Sol->fidelity()) << Context;
}

/// A corpus app big enough that the value worklist crosses the snapshot
/// threshold and the engine genuinely classifies off-thread.
corpus::AppSpec bigSpec() {
  corpus::AppSpec Spec;
  Spec.Name = "parwide";
  Spec.Activities = 8;
  Spec.ViewsPerLayout = 14;
  Spec.IdsPerLayout = 8;
  Spec.DirectFindsPerActivity = 3;
  Spec.SharedFindsPerActivity = 2;
  Spec.SharedHelperUsers = 6;
  Spec.ListenersPerActivity = 3;
  Spec.ProgViewsPerActivity = 2;
  Spec.InflateItemsPerActivity = 2;
  Spec.UseDialog = true;
  Spec.UseFragment = true;
  Spec.UseFlipper = true;
  return Spec;
}

/// Generates a fresh bundle from \p Spec and analyzes it: analyzing
/// mutates shared registry state, so comparable runs each get their own
/// identical bundle.
std::unique_ptr<AnalysisResult> runFresh(const corpus::AppSpec &Spec,
                                         const AnalysisOptions &Options) {
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  EXPECT_FALSE(App.Bundle->Diags.hasErrors());
  return runAnalysis(*App.Bundle, Options);
}

TEST(SolveParallelTest, JobsSweepMatchesSerialOnCorpusApp) {
  AnalysisOptions Ser;
  auto Serial = runFresh(bigSpec(), Ser);
  ASSERT_TRUE(Serial);
  EXPECT_EQ(Serial->Stats.ParallelRounds, 0u);

  bool Engaged = false;
  for (unsigned Jobs : {2u, 4u, 8u}) {
    AnalysisOptions Par;
    Par.SolveJobs = Jobs;
    auto Parallel = runFresh(bigSpec(), Par);
    ASSERT_TRUE(Parallel);
    expectExactReplay(*Serial, *Parallel,
                      "solve-jobs " + std::to_string(Jobs));
    Engaged |= Parallel->Stats.ParallelRounds > 0;
    if (Parallel->Stats.ParallelRounds) {
      EXPECT_GT(Parallel->Stats.SccCount, 0u);
      EXPECT_GT(Parallel->Stats.BarrierWaves, 0u);
      EXPECT_GT(Parallel->Stats.TrustedAppends + Parallel->Stats.TrustedDups,
                0u);
    }
  }
  // The sweep must not pass vacuously with the engine never engaging.
  EXPECT_TRUE(Engaged);
}

TEST(SolveParallelTest, OptionsMatrixMatchesSerial) {
  corpus::AppSpec Spec = bigSpec();
  Spec.Activities = 4; // keep the 16-mask sweep quick
  for (unsigned Mask = 0; Mask < 16; ++Mask) {
    AnalysisOptions Ser;
    Ser.TrackViewIds = (Mask & 1) != 0;
    Ser.TrackHierarchy = (Mask & 2) != 0;
    Ser.FindView3ChildOnly = (Mask & 4) != 0;
    Ser.ModelListenerCallbacks = (Mask & 8) != 0;
    auto Serial = runFresh(Spec, Ser);
    ASSERT_TRUE(Serial);
    AnalysisOptions Par = Ser;
    Par.SolveJobs = 4;
    auto Parallel = runFresh(Spec, Par);
    ASSERT_TRUE(Parallel);
    expectExactReplay(*Serial, *Parallel, "mask " + std::to_string(Mask));
  }
}

TEST(SolveParallelTest, SerialFallbackModesNeverEngage) {
  // Naive propagation and declared-type filtering stay on the serial
  // reference engines; results still match their own serial runs.
  for (int Mode = 0; Mode < 2; ++Mode) {
    AnalysisOptions Ser;
    if (Mode == 0)
      Ser.DeltaPropagation = false;
    else
      Ser.DeclaredTypeFilter = true;
    auto Serial = runFresh(bigSpec(), Ser);
    ASSERT_TRUE(Serial);
    AnalysisOptions Par = Ser;
    Par.SolveJobs = 4;
    auto Parallel = runFresh(bigSpec(), Par);
    ASSERT_TRUE(Parallel);
    EXPECT_EQ(Parallel->Stats.ParallelRounds, 0u) << "mode " << Mode;
    expectExactReplay(*Serial, *Parallel, "fallback mode " +
                                              std::to_string(Mode));
  }
}

TEST(SolveParallelTest, HostileAppsMatchSerial) {
  corpus::AppSpec Spec = bigSpec();
  Spec.Name = "parhostile";
  Spec.ReflectiveViewsPerActivity = 2;
  Spec.DynamicFindsPerActivity = 2;
  Spec.MissingLayoutRefsPerActivity = 1;
  AnalysisOptions Ser;
  auto Serial = runFresh(Spec, Ser);
  ASSERT_TRUE(Serial);
  EXPECT_EQ(Serial->Sol->fidelity(), Fidelity::DegradedInput);
  for (unsigned Jobs : {2u, 8u}) {
    AnalysisOptions Par;
    Par.SolveJobs = Jobs;
    auto Parallel = runFresh(Spec, Par);
    ASSERT_TRUE(Parallel);
    expectExactReplay(*Serial, *Parallel,
                      "hostile solve-jobs " + std::to_string(Jobs));
  }
}

TEST(SolveParallelTest, BudgetTruncationMatchesSerial) {
  // A budget trip mid-solve must land on the same partial solution: the
  // charge points are identical in both engines.
  for (unsigned long Cap : {200ul, 1000ul}) {
    AnalysisOptions Ser;
    Ser.Budget.MaxWorkItems = Cap;
    auto Serial = runFresh(bigSpec(), Ser);
    ASSERT_TRUE(Serial);
    AnalysisOptions Par = Ser;
    Par.SolveJobs = 4;
    auto Parallel = runFresh(bigSpec(), Par);
    ASSERT_TRUE(Parallel);
    expectExactReplay(*Serial, *Parallel,
                      "work cap " + std::to_string(Cap));
  }
}

//===----------------------------------------------------------------------===//
// Incremental-edit re-solve under SolveJobs > 1
//===----------------------------------------------------------------------===//

const char *IncBaseSource = R"(
class MainActivity extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    var l: TapListener;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/action_button;
    b := this.findViewById(bid);
    l := new TapListener(this);
    b.setOnClickListener(l);
  }
}
class TapListener implements android.view.View.OnClickListener {
  field owner: MainActivity;
  method TapListener(a: MainActivity) {
    this.owner := a;
  }
  method onClick(v: android.view.View) {
  }
}
)";

const char *IncEditedSource = R"(
class MainActivity extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var tid: int;
    var t: android.view.View;
    var l: TapListener;
    lid := @layout/main;
    this.setContentView(lid);
    tid := @id/title_text;
    t := this.findViewById(tid);
    l := new TapListener(this);
    t.setOnClickListener(l);
  }
}
class TapListener implements android.view.View.OnClickListener {
  field owner: MainActivity;
  method TapListener(a: MainActivity) {
    this.owner := a;
  }
  method onClick(v: android.view.View) {
  }
}
)";

const char *IncMain = R"(<LinearLayout>
  <Button android:id="@+id/action_button" />
  <TextView android:id="@+id/title_text" />
</LinearLayout>)";

TEST(SolveParallelTest, IncrementalEditMatchesSerialScratch) {
  auto Base = makeBundle(IncBaseSource, {{"main", IncMain}});
  auto Edited = makeBundle(IncEditedSource, {{"main", IncMain}});
  EditDiff Diff = diffBundles(Base->Program, Edited->Program, *Base->Layouts,
                              *Edited->Layouts);
  ASSERT_TRUE(Diff.Unsupported.empty());
  ASSERT_FALSE(Diff.Methods.empty());

  AnalysisOptions Options;
  Options.SolveJobs = 4; // the whole session runs with the parallel engine
  IncrementalAnalysis Inc(Base->Program, *Base->Layouts, Base->Android,
                          Options, Base->Diags,
                          IncrementalAnalysis::Engine::Fused);
  Inc.solveInitial();
  for (auto &[BaseMethod, EditMethod] : Diff.Methods) {
    ASSERT_TRUE(graftMethodBody(*BaseMethod, *EditMethod));
    ASSERT_TRUE(Inc.reanalyzeMethod(*BaseMethod));
  }

  // The incremental fixed point must equal a from-scratch *serial* solve
  // over the grafted program: cross-engine and cross-jobs at once.
  AnalysisOptions Scratch;
  Scratch.RecordProvenance = false;
  auto Ser = GuiAnalysis::run(Base->Program, *Base->Layouts, Base->Android,
                              Scratch, Base->Diags);
  ASSERT_TRUE(Ser);
  EXPECT_EQ(solutionDigest(Inc.solution()), solutionDigest(*Ser->Sol));
}

} // namespace
