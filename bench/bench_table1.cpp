//===- bench_table1.cpp - Reproduce Table 1 ---------------------*- C++ -*-===//
//
// Regenerates Table 1 of the paper: per-app application size (classes,
// methods) and the constraint-graph node inventory — layout/view id nodes,
// inflated vs. explicitly-allocated view nodes, listener allocation nodes,
// and operation nodes per category. The class/method columns are spec
// inputs (taken from the paper); the remaining columns are *measured* from
// the constraint graph the analysis builds, demonstrating the same
// structural claims the paper draws from this table: XML layouts are
// pervasive, view ids are numerous, most views are inflated but explicit
// allocation occurs in most apps, and add-child/set-listener operations
// are common.
//
//===----------------------------------------------------------------------===//

#include "analysis/AppStats.h"
#include "analysis/GuiAnalysis.h"
#include "corpus/Corpus.h"

#include <iostream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

int main() {
  std::cout << "Table 1: analyzed applications and relevant constraint "
               "graph nodes\n\n";
  printAppStatsHeader(std::cout);

  unsigned AppsWithAllocViews = 0;
  unsigned AppsWithAddView = 0;

  for (const AppSpec &Spec : paperCorpus()) {
    GeneratedApp App = generateApp(Spec);
    if (App.Bundle->Diags.hasErrors()) {
      std::cerr << "generation failed for " << Spec.Name << "\n";
      App.Bundle->Diags.print(std::cerr);
      return 1;
    }
    auto Result =
        GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                         App.Bundle->Android, AnalysisOptions(),
                         App.Bundle->Diags);
    if (!Result) {
      std::cerr << "analysis failed for " << Spec.Name << "\n";
      return 1;
    }
    AppStats Stats = collectAppStats(Spec.Name, App.Bundle->Program, *Result);
    printAppStatsRow(std::cout, Stats);
    if (Stats.AllocViews > 0)
      ++AppsWithAllocViews;
    if (Stats.OpAddView > 0)
      ++AppsWithAddView;
  }

  // The paper's structural observations over this table.
  std::cout << "\npaper: \"explicitly allocated views are also present in "
               "15 out of the 20 applications\"  -> measured: "
            << AppsWithAllocViews << "/20\n";
  std::cout << "paper: \"explicit manipulation of the view hierarchy via "
               "add-child operations occurs in all but four applications\" "
               "-> measured: "
            << AppsWithAddView << "/20\n";
  return 0;
}
