//===- bench_parallel.cpp - Strong-scaling sweep of the batch engine ------===//
//
// Measures the parallel batch-analysis engine (docs/PARALLEL.md) end to
// end: the 20-app paper corpus and a synthetic 200-app batch, each swept
// over 1/2/4/8 workers. Reports wall time, speedup vs -j 1, parallel
// efficiency, and the per-worker task split, and cross-checks that the
// aggregate solver counters are identical at every job count (the
// determinism contract — parallelism must never change a result).
//
// Results are recorded in bench/BENCH_parallel.json. On a single-core
// container the sweep degenerates to an overhead measurement: every job
// count should take about the -j 1 time (the scheduler just interleaves),
// and the counter cross-check is the meaningful signal.
//
//===----------------------------------------------------------------------===//

#include "corpus/BatchRunner.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::support;

namespace {

/// The synthetic 200-app batch: small apps (a few activities each) whose
/// per-app solve is quick, so scheduling overhead is a visible fraction —
/// the stress case for the task queue rather than the solver.
std::vector<AppSpec> syntheticBatch(unsigned Count) {
  std::vector<AppSpec> Specs;
  Specs.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    AppSpec Spec;
    Spec.Name = "Synth" + std::to_string(I);
    Spec.Seed = 1000 + I;
    Spec.Activities = 2 + I % 3;
    Spec.FillerClasses = 4;
    Spec.ViewsPerLayout = 6;
    Spec.IdsPerLayout = 4;
    Spec.DirectFindsPerActivity = 2;
    Spec.ListenersPerActivity = 1;
    Spec.ProgViewsPerActivity = 1;
    Specs.push_back(Spec);
  }
  return Specs;
}

/// One counter line summing the whole batch; any divergence across job
/// counts is a determinism bug.
std::string aggregateLine(const std::vector<BatchAppResult> &Batch) {
  std::vector<AppStats> PerApp;
  for (const BatchAppResult &R : Batch)
    if (!R.GenerationFailed)
      PerApp.push_back(R.Stats);
  AppStats A = aggregateAppStats("TOTAL", PerApp);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "apps=%zu propagate=%lu opFire=%lu pushed=%lu work=%lu "
                "unresolved=%lu",
                PerApp.size(), A.Propagations, A.OpFirings, A.ValuesPushed,
                A.WorkCharged, A.UnresolvedOps);
  return Buf;
}

struct SweepPoint {
  unsigned Jobs = 1;
  double Seconds = 0.0;
  unsigned long long PeakRssBytes = 0; ///< process high-water after the point
  std::vector<unsigned long> TasksPerWorker;
  std::string Counters;
};

std::vector<SweepPoint> sweep(const char *Label,
                              const std::vector<AppSpec> &Specs,
                              const std::vector<unsigned> &JobValues) {
  std::printf("%s (%zu apps)\n", Label, Specs.size());
  std::printf("%6s %10s %9s %11s  %s\n", "jobs", "time(s)", "speedup",
              "efficiency", "tasks/worker");
  std::vector<SweepPoint> Points;
  double Baseline = 0.0;
  for (unsigned Jobs : JobValues) {
    AnalysisOptions Options;
    Options.Jobs = Jobs;
    ParallelForStats Stats;
    Timer T;
    std::vector<BatchAppResult> Batch =
        analyzeCorpus(Specs, Options, &Stats, /*KeepArtifacts=*/false);
    SweepPoint P;
    P.Jobs = Jobs;
    P.Seconds = T.seconds();
    P.PeakRssBytes = currentPeakRssBytes();
    P.TasksPerWorker = Stats.TasksPerWorker;
    P.Counters = aggregateLine(Batch);
    if (Points.empty())
      Baseline = P.Seconds;
    double Speedup = Baseline / P.Seconds;
    std::string Split;
    for (unsigned long C : P.TasksPerWorker)
      Split += (Split.empty() ? "" : "/") + std::to_string(C);
    std::printf("%6u %10.3f %8.2fx %10.0f%%  %s\n", Jobs, P.Seconds, Speedup,
                100.0 * Speedup / Stats.WorkersUsed, Split.c_str());
    Points.push_back(std::move(P));
  }
  bool CountersAgree = true;
  for (const SweepPoint &P : Points)
    CountersAgree &= P.Counters == Points.front().Counters;
  std::printf("counters: %s -> %s\n\n", Points.front().Counters.c_str(),
              CountersAgree ? "identical at every job count"
                            : "DIVERGED (determinism bug!)");
  return Points;
}

} // namespace

int main(int Argc, char **Argv) {
  // --fleet N      size of the generated fleet sweep (0 disables; default
  //                10000 — the memory-bound regime of docs/MEMORY.md)
  // --fleet-only   skip the corpus/synthetic sweeps (fresh-process fleet
  //                numbers: peak RSS is attributable to the fleet alone)
  // --jobs A,B,..  job counts to sweep (default 1,2,4,8)
  // --hostile [P]  hostile-shape rates for the fleet (docs/ROBUSTNESS.md):
  //                P percent of apps (default 20) draw reflective
  //                construction, dynamic find ids, and missing-layout
  //                references each; such apps analyze as DegradedInput
  unsigned FleetApps = 10000;
  bool FleetOnly = false;
  unsigned HostilePercent = 0;
  std::vector<unsigned> JobValues = {1, 2, 4, 8};
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--fleet") && I + 1 < Argc)
      FleetApps = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--fleet-only"))
      FleetOnly = true;
    else if (!std::strcmp(Argv[I], "--hostile"))
      HostilePercent = (I + 1 < Argc &&
                        std::isdigit(static_cast<unsigned char>(*Argv[I + 1])))
                           ? static_cast<unsigned>(std::atoi(Argv[++I]))
                           : 20;
    else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      JobValues.clear();
      for (const char *P = Argv[++I]; *P;) {
        JobValues.push_back(static_cast<unsigned>(std::strtoul(P, nullptr, 10)));
        while (*P && *P != ',')
          ++P;
        if (*P == ',')
          ++P;
      }
    }
  }

  std::printf("Strong-scaling sweep of the parallel batch engine "
              "(docs/PARALLEL.md)\n");
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  std::vector<SweepPoint> Corpus, Synthetic, Fleet;
  if (!FleetOnly) {
    Corpus = sweep("paper corpus", paperCorpus(), JobValues);
    Synthetic = sweep("synthetic batch", syntheticBatch(200), JobValues);
  }
  if (FleetApps) {
    FleetSpec FS;
    FS.Apps = FleetApps;
    FS.ReflectivePercent = HostilePercent;
    FS.DynamicIdPercent = HostilePercent;
    FS.MissingLayoutPercent = HostilePercent;
    Fleet = sweep(HostilePercent ? "generated fleet (hostile)"
                                 : "generated fleet",
                  makeFleet(FS), JobValues);
    const SweepPoint &P0 = Fleet.front();
    std::printf("fleet throughput at -j%u: %.1f apps/s, peak RSS %.1f MiB "
                "(%.1f KiB/app)\n\n",
                P0.Jobs, FleetApps / P0.Seconds,
                P0.PeakRssBytes / (1024.0 * 1024.0),
                P0.PeakRssBytes / 1024.0 / FleetApps);
  }

  // Machine-readable tail for bench/BENCH_parallel.json and
  // bench/BENCH_arena.json.
  std::printf("json: {");
  const char *Sep = "";
  struct Series {
    const char *Name;
    const std::vector<SweepPoint> *Points;
  };
  for (const Series &S : {Series{"corpus20", &Corpus},
                          Series{"synthetic200", &Synthetic},
                          Series{"fleet", &Fleet}}) {
    if (S.Points->empty())
      continue;
    std::printf("%s\"%s\": {", Sep, S.Name);
    const char *Inner = "";
    for (const SweepPoint &P : *S.Points) {
      std::printf("%s\"j%u\": %.4f", Inner, P.Jobs, P.Seconds);
      Inner = ", ";
    }
    std::printf("%s\"peak_rss_bytes\": %llu", Inner,
                S.Points->front().PeakRssBytes);
    if (S.Points == &Fleet)
      std::printf(", \"apps\": %u", FleetApps);
    std::printf("}");
    Sep = ", ";
  }
  std::printf("}\n");
  return 0;
}
