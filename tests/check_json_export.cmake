# Runs gator_cli --json and validates the output with python3 -m json.tool.
execute_process(COMMAND ${CLI} ${APP} --json json_export_test.json
                RESULT_VARIABLE CliResult OUTPUT_QUIET)
if(NOT CliResult EQUAL 0)
  message(FATAL_ERROR "gator_cli failed: ${CliResult}")
endif()
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(COMMAND ${PYTHON3} -m json.tool json_export_test.json
                  RESULT_VARIABLE JsonResult OUTPUT_QUIET)
  if(NOT JsonResult EQUAL 0)
    message(FATAL_ERROR "exported JSON is invalid")
  endif()
endif()
