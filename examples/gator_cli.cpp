//===- gator_cli.cpp - Command-line analysis driver -------------*- C++ -*-===//
//
// A real tool over the library: analyze an application given as files on
// disk. Every `*.alite` file in the input directory is parsed as ALite
// source; every `*.dexlite` file as DexLite bytecode; every `*.xml` file
// is registered as a layout under its base name (so `res/act_console.xml`
// defines `@layout/act_console`).
//
// Usage:
//   gator_cli <dir> [--dot <file>] [--tuples] [--hierarchy] [--atg]
//             [--solution] [--sequences <ActivityClass>] [--reach] [--json <file>] [--lint]
//
// Prints Table 2-style precision metrics by default; the flags add the
// Section 6 client outputs.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "android/Manifest.h"
#include "corpus/AppBundle.h"
#include "dex/DexLite.h"
#include "guimodel/GuiModel.h"
#include "guimodel/JsonExport.h"
#include "guimodel/Lint.h"
#include "layout/Layout.h"
#include "parser/Parser.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
namespace fs = std::filesystem;

namespace {

bool readFile(const fs::path &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage() {
  std::cerr << "usage: gator_cli <dir> [--dot <file>] [--tuples] "
               "[--hierarchy] [--atg] [--solution] "
               "[--sequences <ActivityClass>] [--reach] [--json <file>] [--lint]\n";
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string InputDir;
  std::string DotFile;
  bool WantTuples = false, WantHierarchy = false, WantAtg = false;
  bool WantSolution = false;
  bool WantReach = false;
  std::string SequencesFrom;
  std::string JsonFile;
  bool WantLint = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dot") {
      if (++I >= argc)
        return usage();
      DotFile = argv[I];
    } else if (Arg == "--tuples") {
      WantTuples = true;
    } else if (Arg == "--hierarchy") {
      WantHierarchy = true;
    } else if (Arg == "--atg") {
      WantAtg = true;
    } else if (Arg == "--solution") {
      WantSolution = true;
    } else if (Arg == "--sequences") {
      if (++I >= argc)
        return usage();
      SequencesFrom = argv[I];
    } else if (Arg == "--reach") {
      WantReach = true;
    } else if (Arg == "--json") {
      if (++I >= argc)
        return usage();
      JsonFile = argv[I];
    } else if (Arg == "--lint") {
      WantLint = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      InputDir = Arg;
    }
  }
  if (InputDir.empty())
    return usage();

  corpus::AppBundle App;
  App.Android.install(App.Program);

  // Gather inputs in sorted order for deterministic diagnostics.
  std::vector<fs::path> AliteFiles, DexFiles, XmlFiles;
  fs::path ManifestFile;
  std::error_code EC;
  for (const auto &Entry : fs::recursive_directory_iterator(InputDir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".alite")
      AliteFiles.push_back(Entry.path());
    else if (Entry.path().extension() == ".dexlite")
      DexFiles.push_back(Entry.path());
    else if (Entry.path().filename() == "AndroidManifest.xml")
      ManifestFile = Entry.path();
    else if (Entry.path().extension() == ".xml")
      XmlFiles.push_back(Entry.path());
  }
  if (EC) {
    std::cerr << "error: cannot read directory '" << InputDir
              << "': " << EC.message() << "\n";
    return 1;
  }
  std::sort(AliteFiles.begin(), AliteFiles.end());
  std::sort(DexFiles.begin(), DexFiles.end());
  std::sort(XmlFiles.begin(), XmlFiles.end());
  if (AliteFiles.empty() && DexFiles.empty()) {
    std::cerr << "error: no .alite or .dexlite files under '" << InputDir
              << "'\n";
    return 1;
  }

  bool Ok = true;
  for (const fs::path &Path : AliteFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= parser::parseAlite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : DexFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= dex::parseDexLite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : XmlFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= layout::readLayoutXml(*App.Layouts, Path.stem().string(), Text,
                                App.Diags) != nullptr;
  }
  Ok &= App.finalize();

  // Manifest (optional): validates declared activities and provides the
  // default start point for --sequences.
  std::optional<android::Manifest> Manifest;
  if (!ManifestFile.empty()) {
    std::string Text;
    if (!readFile(ManifestFile, Text)) {
      std::cerr << "error: cannot read " << ManifestFile << "\n";
      return 1;
    }
    Manifest = android::parseManifest(Text, ManifestFile.string(), App.Diags);
    if (Manifest)
      for (const android::ManifestActivity &A : Manifest->Activities)
        if (!App.Program.findClass(A.ClassName))
          App.Diags.warning("manifest declares unknown activity '" +
                            A.ClassName + "'");
  }

  App.Diags.print(std::cerr);
  if (!Ok || App.Diags.hasErrors())
    return 1;

  auto Result = analysis::GuiAnalysis::run(
      App.Program, *App.Layouts, App.Android, analysis::AnalysisOptions(),
      App.Diags);
  if (!Result) {
    App.Diags.print(std::cerr);
    return 1;
  }

  std::cout << "classes: " << App.Program.appClassCount()
            << "  methods: " << App.Program.appMethodCount()
            << "  layouts: " << App.Resources.layoutCount()
            << "  view ids: " << App.Resources.viewIdCount() << "\n";
  Result->Graph->dumpStats(std::cout);
  auto M = Result->metrics();
  std::cout << "precision: receivers=" << M.AvgReceivers;
  if (M.AvgParameters)
    std::cout << " parameters=" << *M.AvgParameters;
  if (M.AvgResults)
    std::cout << " results=" << *M.AvgResults;
  if (M.AvgListeners)
    std::cout << " listeners=" << *M.AvgListeners;
  std::cout << "\ntime: build=" << Result->BuildSeconds * 1000
            << "ms solve=" << Result->SolveSeconds * 1000 << "ms\n";

  if (WantSolution) {
    std::cout << "\nper-operation solution:\n";
    Result->Sol->dump(std::cout);
  }
  if (WantTuples) {
    std::cout << "\n(activity, view, event, handler) tuples:\n";
    guimodel::printHandlerTuples(std::cout, *Result,
                                 guimodel::extractHandlerTuples(*Result));
  }
  if (WantHierarchy) {
    std::cout << "\nview hierarchies:\n";
    guimodel::printViewHierarchies(std::cout, *Result);
  }
  if (WantAtg) {
    std::cout << "\nactivity transition graph:\n";
    guimodel::printTransitionsDot(
        std::cout, guimodel::buildActivityTransitionGraph(*Result));
  }
  if (Manifest) {
    std::cout << "manifest: package=" << Manifest->Package;
    if (auto Launcher = Manifest->launcherActivity())
      std::cout << " launcher=" << *Launcher;
    std::cout << "\n";
    if (SequencesFrom.empty())
      if (auto Launcher = Manifest->launcherActivity())
        SequencesFrom = *Launcher;
  }

  if (!SequencesFrom.empty()) {
    const ir::ClassDecl *Start = App.Program.findClass(SequencesFrom);
    if (!Start) {
      std::cerr << "error: unknown activity class '" << SequencesFrom
                << "'\n";
      return 1;
    }
    std::cout << "\nevent sequences from " << SequencesFrom
              << " (length <= 5):\n";
    guimodel::printEventSequences(
        std::cout, *Result,
        guimodel::enumerateEventSequences(*Result, Start, 5, 64));
  }
  if (WantReach) {
    std::cout << "\nEditText view-reach report:\n";
    guimodel::printViewReach(std::cout, *Result,
                             guimodel::computeViewReach(*Result));
  }
  if (WantLint) {
    std::cout << "\nlint findings:\n";
    guimodel::printLintFindings(std::cout,
                                guimodel::runLint(*Result, *App.Layouts));
  }
  if (!JsonFile.empty()) {
    std::ofstream Json(JsonFile);
    if (!Json) {
      std::cerr << "error: cannot write " << JsonFile << "\n";
      return 1;
    }
    guimodel::writeAnalysisJson(Json, *Result);
    std::cout << "analysis JSON written to " << JsonFile << "\n";
  }
  if (!DotFile.empty()) {
    std::ofstream Dot(DotFile);
    if (!Dot) {
      std::cerr << "error: cannot write " << DotFile << "\n";
      return 1;
    }
    Result->Graph->dumpDot(Dot);
    std::cout << "constraint graph written to " << DotFile << "\n";
  }
  return 0;
}
