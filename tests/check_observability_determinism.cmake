# Telemetry determinism harness (docs/OBSERVABILITY.md): a batch run's
# trace and metrics exports must be byte-identical at every -j value —
# the trace after normalizing the only nondeterministic fields (the
# "ts"/"dur" timestamps), the metrics exactly (exported under --no-times,
# which suppresses the wall-clock instruments). Invoked by ctest with
# -DCLI=<gator_cli> -DDIR=<batch input dir> -DWORK=<scratch dir>.

file(MAKE_DIRECTORY "${WORK}")

set(jobs_values 1 4)
foreach(jobs ${jobs_values})
  execute_process(
    COMMAND ${CLI} --batch --no-times -j ${jobs} ${DIR}
            --trace-out=${WORK}/trace_j${jobs}.json
            --metrics-out=${WORK}/metrics_j${jobs}.json
    RESULT_VARIABLE run_code
    OUTPUT_QUIET)
  if(NOT run_code EQUAL 0)
    message(FATAL_ERROR "gator_cli --batch -j ${jobs} failed: ${run_code}")
  endif()

  # Normalize the timestamps: every "ts":N and "dur":N becomes 0. What
  # remains — event names, phases, lanes, args, and their order — must
  # not depend on scheduling.
  file(READ "${WORK}/trace_j${jobs}.json" trace_text)
  string(REGEX REPLACE "\"ts\":[0-9]+" "\"ts\":0" trace_text "${trace_text}")
  string(REGEX REPLACE "\"dur\":[0-9]+" "\"dur\":0" trace_text "${trace_text}")
  file(WRITE "${WORK}/trace_j${jobs}.normalized.json" "${trace_text}")
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/trace_j1.normalized.json ${WORK}/trace_j4.normalized.json
  RESULT_VARIABLE trace_same)
if(NOT trace_same EQUAL 0)
  message(FATAL_ERROR
    "normalized trace differs between -j 1 and -j 4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/metrics_j1.json ${WORK}/metrics_j4.json
  RESULT_VARIABLE metrics_same)
if(NOT metrics_same EQUAL 0)
  message(FATAL_ERROR "metrics export differs between -j 1 and -j 4")
endif()

message(STATUS "telemetry byte-identical at -j ${jobs_values} "
               "(after timestamp normalization)")
