# Empty compiler generated dependencies file for gator_corpus.
# This may be replaced when dependencies are built.
