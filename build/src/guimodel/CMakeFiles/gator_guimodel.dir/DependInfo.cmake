
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guimodel/GuiModel.cpp" "src/guimodel/CMakeFiles/gator_guimodel.dir/GuiModel.cpp.o" "gcc" "src/guimodel/CMakeFiles/gator_guimodel.dir/GuiModel.cpp.o.d"
  "/root/repo/src/guimodel/JsonExport.cpp" "src/guimodel/CMakeFiles/gator_guimodel.dir/JsonExport.cpp.o" "gcc" "src/guimodel/CMakeFiles/gator_guimodel.dir/JsonExport.cpp.o.d"
  "/root/repo/src/guimodel/Lint.cpp" "src/guimodel/CMakeFiles/gator_guimodel.dir/Lint.cpp.o" "gcc" "src/guimodel/CMakeFiles/gator_guimodel.dir/Lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gator_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/gator_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gator_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/gator_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gator_android.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gator_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gator_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
