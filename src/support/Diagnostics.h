//===- Diagnostics.h - Error and warning reporting --------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine shared by all frontends (ALite parser, XML
/// parser, layout reader) and by the IR verifier. Diagnostics accumulate in
/// the engine; library code never writes to stderr directly.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_DIAGNOSTICS_H
#define GATOR_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <ostream>
#include <string>
#include <vector>

namespace gator {

enum class DiagSeverity { Note, Warning, Error };

/// Returns a human-readable label ("error", "warning", "note").
const char *severityLabel(DiagSeverity Severity);

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLocation Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one input set.
///
/// Messages follow the convention of starting with a lowercase letter and
/// carrying no trailing period.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLocation Loc, std::string Message);

  void error(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Error, std::move(Loc), std::move(Message));
  }
  void error(std::string Message) { error(SourceLocation(), std::move(Message)); }
  void warning(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Warning, std::move(Loc), std::move(Message));
  }
  void warning(std::string Message) {
    warning(SourceLocation(), std::move(Message));
  }
  void note(SourceLocation Loc, std::string Message) {
    report(DiagSeverity::Note, std::move(Loc), std::move(Message));
  }

  /// Records one failed recoverable invariant (GATOR_CHECK): a warning
  /// plus a dedicated counter so fidelity marking can distinguish
  /// degraded-input runs from merely chatty ones.
  void noteCheckFailure(std::string Message) {
    ++CheckFailures;
    warning(std::move(Message));
  }

  bool hasErrors() const { return ErrorCount != 0; }
  unsigned errorCount() const { return ErrorCount; }
  unsigned warningCount() const { return WarningCount; }
  unsigned checkFailureCount() const { return CheckFailures; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Writes every accumulated diagnostic to \p OS, one per line.
  void print(std::ostream &OS) const;

  /// Writes every accumulated diagnostic as one JSON document:
  /// {"diagnostics":[{severity, file?, line?, column?, message}...],
  ///  "errors": N, "warnings": N}. Selected by `--diag-format=json`.
  void printJson(std::ostream &OS) const;

  /// Drops all accumulated diagnostics and resets the counters.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned ErrorCount = 0;
  unsigned WarningCount = 0;
  unsigned CheckFailures = 0;
};

} // namespace gator

#endif // GATOR_SUPPORT_DIAGNOSTICS_H
