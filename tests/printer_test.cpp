//===- printer_test.cpp - ALite printer and round-trip ----------*- C++ -*-===//

#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::ir;
using namespace gator::parser;

namespace {

std::unique_ptr<Program> parse(const std::string &Source) {
  auto P = std::make_unique<Program>();
  DiagnosticEngine Diags;
  EXPECT_TRUE(parseAlite(Source, "t.alite", *P, Diags));
  EXPECT_FALSE(Diags.hasErrors());
  return P;
}

/// Structural equality: the application classes of \p A against all
/// classes of \p B (names, members, statement shapes).
void expectSameStructure(const Program &A, const Program &B) {
  std::vector<const ClassDecl *> AppClasses;
  for (const auto &C : A.classes())
    if (!C->isPlatform())
      AppClasses.push_back(C);
  ASSERT_EQ(AppClasses.size(), B.classes().size());
  for (size_t I = 0; I < AppClasses.size(); ++I) {
    const ClassDecl &CA = *AppClasses[I];
    const ClassDecl &CB = *B.classes()[I];
    EXPECT_EQ(CA.name(), CB.name());
    EXPECT_EQ(CA.isInterface(), CB.isInterface());
    EXPECT_EQ(CA.superName(), CB.superName());
    EXPECT_EQ(CA.interfaceNames(), CB.interfaceNames());
    ASSERT_EQ(CA.fields().size(), CB.fields().size());
    for (size_t J = 0; J < CA.fields().size(); ++J) {
      EXPECT_EQ(CA.fields()[J]->name(), CB.fields()[J]->name());
      EXPECT_EQ(CA.fields()[J]->typeName(), CB.fields()[J]->typeName());
      EXPECT_EQ(CA.fields()[J]->isStatic(), CB.fields()[J]->isStatic());
    }
    ASSERT_EQ(CA.methods().size(), CB.methods().size());
    for (size_t J = 0; J < CA.methods().size(); ++J) {
      const MethodDecl &MA = *CA.methods()[J];
      const MethodDecl &MB = *CB.methods()[J];
      EXPECT_EQ(MA.name(), MB.name());
      EXPECT_EQ(MA.paramCount(), MB.paramCount());
      EXPECT_EQ(MA.returnTypeName(), MB.returnTypeName());
      EXPECT_EQ(MA.isAbstract(), MB.isAbstract());
      ASSERT_EQ(MA.body().size(), MB.body().size())
          << MA.qualifiedName();
      for (size_t K = 0; K < MA.body().size(); ++K) {
        const Stmt &SA = MA.body()[K];
        const Stmt &SB = MB.body()[K];
        EXPECT_EQ(SA.Kind, SB.Kind) << MA.qualifiedName() << " stmt " << K;
        EXPECT_EQ(SA.Lhs, SB.Lhs);
        EXPECT_EQ(SA.Base, SB.Base);
        EXPECT_EQ(SA.Rhs, SB.Rhs);
        EXPECT_EQ(SA.FieldName, SB.FieldName);
        EXPECT_EQ(SA.ClassName, SB.ClassName);
        EXPECT_EQ(SA.ResourceName, SB.ResourceName);
        EXPECT_EQ(SA.MethodName, SB.MethodName);
        EXPECT_EQ(SA.Args, SB.Args);
      }
    }
  }
}

void expectRoundTrip(const Program &P) {
  std::string Text = programToString(P);
  Program P2;
  DiagnosticEngine Diags;
  ASSERT_TRUE(parseAlite(Text, "roundtrip.alite", P2, Diags))
      << "printed program failed to re-parse:\n"
      << Text;
  // The printer skips platform classes by default, so P2 contains exactly
  // the application classes.
  expectSameStructure(P, P2);
  std::string Text2 = programToString(P2);
  EXPECT_EQ(Text, Text2) << "print -> parse -> print not a fixed point";
}

TEST(PrinterTest, PrintsSimpleClass) {
  auto P = parse("class A extends B.C implements I { field f: A; }");
  std::string Text = programToString(*P);
  EXPECT_NE(Text.find("class A extends B.C implements I {"),
            std::string::npos);
  EXPECT_NE(Text.find("field f: A;"), std::string::npos);
}

TEST(PrinterTest, PrintsAllStatementForms) {
  auto P = parse(R"(
class A {
  field f: A;
  field static s: A;
  method m(p: A): A {
    var x: A;
    var i: int;
    x := p;
    x := new A;
    x := null;
    x := this.f;
    this.f := x;
    x := static A.s;
    static A.s := x;
    i := @layout/main;
    i := @id/button;
    x := classof A;
    x := p.m(x);
    return x;
  }
}
)");
  std::string Text = programToString(*P);
  EXPECT_NE(Text.find("x := new A;"), std::string::npos);
  EXPECT_NE(Text.find("x := null;"), std::string::npos);
  EXPECT_NE(Text.find("x := this.f;"), std::string::npos);
  EXPECT_NE(Text.find("this.f := x;"), std::string::npos);
  EXPECT_NE(Text.find("x := static A.s;"), std::string::npos);
  EXPECT_NE(Text.find("static A.s := x;"), std::string::npos);
  EXPECT_NE(Text.find("i := @layout/main;"), std::string::npos);
  EXPECT_NE(Text.find("i := @id/button;"), std::string::npos);
  EXPECT_NE(Text.find("x := classof A;"), std::string::npos);
  EXPECT_NE(Text.find("x := p.m(x);"), std::string::npos);
  EXPECT_NE(Text.find("return x;"), std::string::npos);
}

TEST(PrinterTest, RoundTripSimple) {
  auto P = parse(R"(
interface I { method h(v: I); }
class A implements I {
  field f: A;
  method h(v: I) { }
  method m(p: A): A {
    var x: A;
    x := p;
    return x;
  }
}
)");
  expectRoundTrip(*P);
}

TEST(PrinterTest, RoundTripConnectBot) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  expectRoundTrip(App->Program);
}

TEST(PrinterTest, PlatformClassesSkippedByDefault) {
  auto App = corpus::buildConnectBotExample();
  std::string Text = programToString(App->Program);
  EXPECT_EQ(Text.find("platform "), std::string::npos);
  PrintOptions WithPlatform;
  WithPlatform.IncludePlatformClasses = true;
  std::string Full = programToString(App->Program, WithPlatform);
  EXPECT_NE(Full.find("platform class android.app.Activity"),
            std::string::npos);
}

/// Property: every generated corpus app survives print -> parse -> print
/// as a fixed point (exercises printer/parser against thousands of
/// statements of machine-generated code).
class CorpusRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusRoundTrip, PrintParsePrintFixedPoint) {
  const corpus::AppSpec &Spec = corpus::paperCorpus()[GetParam()];
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  ASSERT_FALSE(App.Bundle->Diags.hasErrors());
  expectRoundTrip(App.Bundle->Program);
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, CorpusRoundTrip,
                         ::testing::Range<size_t>(0, 20),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return corpus::paperCorpus()[Info.param].Name;
                         });

} // namespace
