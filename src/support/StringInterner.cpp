//===- StringInterner.cpp -------------------------------------*- C++ -*-===//

#include "support/StringInterner.h"

using namespace gator;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Indices.find(Text);
  if (It != Indices.end())
    return Symbol(It->second);

  Spellings.push_back(std::make_unique<std::string>(Text));
  uint32_t Index = static_cast<uint32_t>(Spellings.size() - 1);
  Indices.emplace(std::string_view(*Spellings.back()), Index);
  return Symbol(Index);
}

Symbol StringInterner::lookup(std::string_view Text) const {
  auto It = Indices.find(Text);
  if (It == Indices.end())
    return Symbol();
  return Symbol(It->second);
}
