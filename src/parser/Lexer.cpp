//===- Lexer.cpp - ALite token stream --------------------------*- C++ -*-===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace gator;
using namespace gator::parser;

const char *gator::parser::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::LayoutRef:
    return "@layout reference";
  case TokenKind::IdRef:
    return "@id reference";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwInterface:
    return "'interface'";
  case TokenKind::KwExtends:
    return "'extends'";
  case TokenKind::KwImplements:
    return "'implements'";
  case TokenKind::KwField:
    return "'field'";
  case TokenKind::KwMethod:
    return "'method'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwClassof:
    return "'classof'";
  case TokenKind::KwPlatform:
    return "'platform'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown";
}

Lexer::Lexer(std::string_view Input, std::string FileName,
             DiagnosticEngine &Diags)
    : Input(Input), FileName(std::move(FileName)), Diags(Diags) {}

char Lexer::advance() {
  char C = Input[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  for (;;) {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '/' && peekAt(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (peek() == '/' && peekAt(1) == '*') {
      SourceLocation Start = here();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peekAt(1) == '/'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text,
                       SourceLocation Loc) const {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Loc = std::move(Loc);
  return T;
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$' ||
         C == '<'; // allow `<init>`-style names
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '$' ||
         C == '<' || C == '>';
}

Token Lexer::next() {
  skipTrivia();
  SourceLocation Loc = here();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, "", Loc);

  char C = peek();

  // Resource references: @layout/NAME and @id/NAME.
  if (C == '@') {
    advance();
    std::string Kind;
    while (!atEnd() && isIdentChar(peek()))
      Kind.push_back(advance());
    if (peek() != '/') {
      Diags.error(Loc, "expected '/' in resource reference '@" + Kind + "'");
      return makeToken(TokenKind::Error, Kind, Loc);
    }
    advance();
    std::string Name;
    while (!atEnd() && isIdentChar(peek()))
      Name.push_back(advance());
    if (Name.empty()) {
      Diags.error(Loc, "empty resource name in '@" + Kind + "/'");
      return makeToken(TokenKind::Error, Name, Loc);
    }
    if (Kind == "layout")
      return makeToken(TokenKind::LayoutRef, Name, Loc);
    if (Kind == "id")
      return makeToken(TokenKind::IdRef, Name, Loc);
    Diags.error(Loc, "unknown resource kind '@" + Kind + "/'");
    return makeToken(TokenKind::Error, Name, Loc);
  }

  if (isIdentStart(C)) {
    std::string Text;
    while (!atEnd() && isIdentChar(peek()))
      Text.push_back(advance());

    static const std::unordered_map<std::string, TokenKind> Keywords = {
        {"class", TokenKind::KwClass},
        {"interface", TokenKind::KwInterface},
        {"extends", TokenKind::KwExtends},
        {"implements", TokenKind::KwImplements},
        {"field", TokenKind::KwField},
        {"method", TokenKind::KwMethod},
        {"var", TokenKind::KwVar},
        {"return", TokenKind::KwReturn},
        {"new", TokenKind::KwNew},
        {"null", TokenKind::KwNull},
        {"static", TokenKind::KwStatic},
        {"classof", TokenKind::KwClassof},
        {"platform", TokenKind::KwPlatform},
    };
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return makeToken(It->second, Text, Loc);
    return makeToken(TokenKind::Identifier, std::move(Text), Loc);
  }

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, "{", Loc);
  case '}':
    return makeToken(TokenKind::RBrace, "}", Loc);
  case '(':
    return makeToken(TokenKind::LParen, "(", Loc);
  case ')':
    return makeToken(TokenKind::RParen, ")", Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, ";", Loc);
  case ',':
    return makeToken(TokenKind::Comma, ",", Loc);
  case '.':
    return makeToken(TokenKind::Dot, ".", Loc);
  case ':':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::Assign, ":=", Loc);
    }
    return makeToken(TokenKind::Colon, ":", Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Error, std::string(1, C), Loc);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}
