//===- ContextRefinement.cpp - Call-site cloning of helpers -----*- C++ -*-===//

#include "analysis/ContextRefinement.h"

#include "hier/ClassHierarchy.h"

#include <map>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::ir;

namespace {

/// A rewritable call site.
struct CallSite {
  MethodDecl *Caller;
  size_t StmtIndex;
};

bool isViewTypeName(const ir::Program &P, const android::AndroidModel &AM,
                    const std::string &TypeName) {
  if (TypeName.empty() || isPrimitiveTypeName(TypeName))
    return false;
  return AM.isViewClass(P.findClass(TypeName));
}

bool isEligibleHelper(const ir::Program &P, const android::AndroidModel &AM,
                      const MethodDecl *T, unsigned MaxHelperStmts) {
  if (T->isAbstract() || T->owner()->isPlatform())
    return false;
  if (T->body().size() > MaxHelperStmts)
    return false;
  if (T->name() == "init" ||
      android::AndroidModel::isLifecycleCallbackName(T->name()))
    return false;
  return isViewTypeName(P, AM, T->returnTypeName());
}

/// Deep-copies \p T into its owner under \p CloneName.
MethodDecl *cloneMethod(const MethodDecl *T, const std::string &CloneName) {
  ClassDecl *Owner = const_cast<ClassDecl *>(T->owner());
  MethodDecl *Clone =
      Owner->addMethod(CloneName, T->returnTypeName(), T->isStatic());
  for (unsigned I = 0; I < T->paramCount(); ++I) {
    const Variable &Prm = T->var(T->paramVar(I));
    Clone->addParam(Prm.Name, Prm.TypeName);
  }
  for (size_t I = (T->isStatic() ? 0 : 1) + T->paramCount();
       I < T->vars().size(); ++I) {
    const Variable &V = T->vars()[I];
    Clone->addLocal(V.Name, V.TypeName);
  }
  Clone->body() = T->body();
  return Clone;
}

} // namespace

ContextRefinementStats gator::analysis::applyContextRefinement(
    Program &P, const android::AndroidModel &AM, unsigned MaxHelperStmts,
    DiagnosticEngine &Diags) {
  ContextRefinementStats Stats;
  hier::ClassHierarchy CH(P);

  // Map each eligible helper to its monomorphic call sites. std::map keyed
  // by qualified name keeps iteration deterministic.
  std::map<std::string, std::pair<const MethodDecl *, std::vector<CallSite>>>
      Sites;

  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods()) {
      if (M->isAbstract())
        continue;
      for (size_t I = 0; I < M->body().size(); ++I) {
        const Stmt &S = M->body()[I];
        if (S.Kind != StmtKind::Invoke)
          continue;
        const Variable &BaseVar = M->var(S.Base);
        const ClassDecl *Recv =
            BaseVar.TypeName.empty() ? nullptr : P.findClass(BaseVar.TypeName);
        if (!Recv)
          continue;
        std::vector<const MethodDecl *> Targets = CH.resolveVirtualCall(
            Recv, S.MethodName, static_cast<unsigned>(S.Args.size()));
        if (Targets.size() != 1)
          continue; // polymorphic: cloning would change dispatch
        const MethodDecl *T = Targets.front();
        if (T == M)
          continue; // self-recursive site: keep in the original
        if (!isEligibleHelper(P, AM, T, MaxHelperStmts))
          continue;
        auto &Entry = Sites[T->qualifiedName()];
        Entry.first = T;
        Entry.second.push_back(CallSite{M, I});
      }
    }
  }

  unsigned Counter = 0;
  for (auto &[Name, Entry] : Sites) {
    const MethodDecl *T = Entry.first;
    std::vector<CallSite> &CallSites = Entry.second;
    if (CallSites.size() < 2)
      continue; // a single caller already has a private context
    ++Stats.HelpersCloned;
    // The first call site keeps the original; each further site gets a
    // fresh clone with private variable nodes.
    for (size_t I = 1; I < CallSites.size(); ++I) {
      std::string CloneName =
          T->name() + "$cs" + std::to_string(++Counter);
      cloneMethod(T, CloneName);
      CallSite &Site = CallSites[I];
      Site.Caller->body()[Site.StmtIndex].MethodName = CloneName;
      ++Stats.CallSitesRewritten;
    }
  }

  P.resolve(Diags);
  return Stats;
}
