file(REMOVE_RECURSE
  "libgator_guimodel.a"
)
