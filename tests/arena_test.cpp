//===- arena_test.cpp - Arena / ArenaVector / FlatIdMap tests -------------===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
// Lifecycle coverage for the per-app allocation layer (docs/MEMORY.md):
// bump allocation, destructor registration, reuse-after-reset, the
// ArenaVector growth policy, ArenaString, and the FlatIdMap probe/rehash
// behaviour that backs the interned-id lookup tables.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/FlatMap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace gator::support;

namespace {

TEST(ArenaTest, AllocationIsAlignedAndDistinct) {
  Arena A;
  void *P1 = A.allocate(1, 1);
  void *P2 = A.allocate(8, 8);
  void *P3 = A.allocate(16, 16);
  EXPECT_NE(P1, nullptr);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P3) % 16, 0u);
  EXPECT_GE(A.bytesAllocated(), 25u);
  EXPECT_GE(A.bytesReserved(), Arena::DefaultSlabBytes);
}

TEST(ArenaTest, CreateRunsDestructorsInReverseOrder) {
  std::vector<int> Order;
  struct Tracked {
    std::vector<int> *Order;
    int Id;
    ~Tracked() { Order->push_back(Id); }
  };
  {
    Arena A;
    A.create<Tracked>(&Order, 1);
    A.create<Tracked>(&Order, 2);
    A.create<Tracked>(&Order, 3);
  }
  EXPECT_EQ(Order, (std::vector<int>{3, 2, 1}));
}

TEST(ArenaTest, TriviallyDestructibleCreateRegistersNoDtor) {
  struct Pod {
    int X;
    double Y;
  };
  Arena A;
  Pod *P = A.create<Pod>(Pod{7, 2.5});
  EXPECT_EQ(P->X, 7);
  EXPECT_EQ(P->Y, 2.5);
}

TEST(ArenaTest, ResetRunsDtorsAndRetainsLargestSlab) {
  std::vector<int> Order;
  struct Tracked {
    std::vector<int> *Order;
    int Id;
    ~Tracked() { Order->push_back(Id); }
  };
  Arena A;
  A.create<Tracked>(&Order, 1);
  // Force several slabs: allocations bigger than the default slab.
  A.allocate(Arena::DefaultSlabBytes * 2);
  A.allocate(Arena::DefaultSlabBytes * 3);
  size_t Reserved = A.bytesReserved();
  EXPECT_GE(A.slabCount(), 3u);

  A.reset();
  EXPECT_EQ(Order, (std::vector<int>{1}));
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.slabCount(), 1u);
  EXPECT_LT(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.bytesReserved(), A.bytesRetained());
}

TEST(ArenaTest, ReuseAfterResetAllocatesNoNewSlabs) {
  Arena A;
  for (int I = 0; I < 1000; ++I)
    A.allocate(32, 8);
  A.reset();
  size_t Reserved = A.bytesReserved();
  size_t Slabs = A.slabCount();
  // Steady state: the retained slab absorbs an identical workload.
  for (int I = 0; I < 1000; ++I)
    A.allocate(32, 8);
  EXPECT_EQ(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.slabCount(), Slabs);
}

TEST(ArenaTest, CopyStringIsNulTerminated) {
  Arena A;
  const char *S = A.copyString("hello");
  EXPECT_STREQ(S, "hello");
  const char *Empty = A.copyString("");
  EXPECT_STREQ(Empty, "");
}

TEST(ArenaVectorTest, PushGrowAndIndex) {
  Arena A;
  ArenaVector<int> V;
  EXPECT_TRUE(V.empty());
  for (int I = 0; I < 100; ++I)
    V.push_back(A, I * 3);
  ASSERT_EQ(V.size(), 100u);
  EXPECT_EQ(V.front(), 0);
  EXPECT_EQ(V.back(), 297);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I * 3);
  int Sum = 0;
  for (int X : V)
    Sum += X;
  EXPECT_EQ(Sum, 3 * 99 * 100 / 2);
}

TEST(ArenaVectorTest, ResizeFillsAndShrinkKeepsCapacity) {
  Arena A;
  ArenaVector<uint32_t> V;
  V.resize(A, 8, 42u);
  ASSERT_EQ(V.size(), 8u);
  for (uint32_t X : V)
    EXPECT_EQ(X, 42u);
  V.resize(A, 2, 0u);
  EXPECT_EQ(V.size(), 2u);
  size_t Live = A.bytesAllocated();
  V.resize(A, 8, 7u); // back within capacity: no new arena bytes
  EXPECT_EQ(A.bytesAllocated(), Live);
  EXPECT_EQ(V[7], 7u);
  EXPECT_EQ(V[1], 42u); // surviving prefix untouched
}

TEST(ArenaVectorTest, MoveTransfersOwnership) {
  Arena A;
  ArenaVector<int> V;
  V.push_back(A, 5);
  ArenaVector<int> W = std::move(V);
  EXPECT_TRUE(V.empty());
  ASSERT_EQ(W.size(), 1u);
  EXPECT_EQ(W[0], 5);
}

TEST(ArenaStringTest, ViewAndCompare) {
  Arena A;
  ArenaString S(A, "onCreate");
  EXPECT_EQ(S.view(), "onCreate");
  EXPECT_EQ(S.size(), 8u);
  EXPECT_TRUE(S == "onCreate");
  ArenaString T(A, "onCreate");
  EXPECT_TRUE(S == T);
  ArenaString Empty;
  EXPECT_TRUE(Empty.empty());
  EXPECT_STREQ(Empty.c_str(), "");
}

TEST(FlatIdMapTest, SetGetOverwrite) {
  FlatIdMap<int> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.get(7), nullptr);
  M.set(7, 70);
  M.set(9, 90);
  ASSERT_NE(M.get(7), nullptr);
  EXPECT_EQ(*M.get(7), 70);
  M.set(7, 71);
  EXPECT_EQ(*M.get(7), 71);
  EXPECT_EQ(M.size(), 2u);
  EXPECT_FALSE(M.contains(8));
}

TEST(FlatIdMapTest, RehashPreservesAllEntries) {
  FlatIdMap<uint64_t> M;
  // Packed-symbol-style keys sharing low-bit structure.
  for (uint32_t Sym = 0; Sym < 500; ++Sym)
    M.set(packSymbolKey(Sym, Sym % 5), Sym);
  EXPECT_EQ(M.size(), 500u);
  for (uint32_t Sym = 0; Sym < 500; ++Sym) {
    const uint64_t *V = M.get(packSymbolKey(Sym, Sym % 5));
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, Sym);
  }
  EXPECT_EQ(M.get(packSymbolKey(1, 2)), nullptr); // wrong arity misses
}

TEST(FlatIdMapTest, GetOrInsertDefaultsOnce) {
  FlatIdMap<int> M;
  int &Slot = M.getOrInsert(3, -1);
  EXPECT_EQ(Slot, -1);
  Slot = 12;
  EXPECT_EQ(M.getOrInsert(3, -1), 12);
  M.clear();
  EXPECT_EQ(M.get(3), nullptr);
  EXPECT_EQ(M.size(), 0u);
}

} // namespace
