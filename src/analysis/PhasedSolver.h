//===- PhasedSolver.h - The paper's literal 3-phase pipeline ----*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second, independently written solver that follows Section 4.3's
/// phase structure literally:
///
///   Phase R ("reachability"): "uses graph reachability to compute
///   relationships that do not depend on operation nodes" — ids,
///   activities, listeners, and other non-view values propagate along the
///   statically-built flow edges.
///
///   Phase I ("inflation"): "Inflate nodes are processed (based on
///   reaching layout ids) to create inflated view nodes and the
///   parent-child edges for them", including the INFLATE2 association
///   between activities and root views.
///
///   Phase P ("propagation"): "a fixed-point computation propagates views
///   through the constraint graph", firing the Section 4.2 rules;
///   callback modeling adds edges mid-phase exactly as the paper
///   describes ("the analysis simply adds constraint graph nodes and
///   edges to simulate the corresponding semantic effects"), so phase P
///   also re-propagates the non-view values those edges carry.
///
/// The fused Solver (Solver.h) merges the phases into one monotone
/// worklist; both must compute identical solutions. The differential
/// tests run both over the whole corpus and compare every flowsTo set and
/// every relationship edge — a two-implementation check of the fixpoint
/// engine.
///
/// This solver intentionally stays single-threaded and ignores
/// AnalysisOptions::SolveJobs: it is the differential-testing oracle for
/// the fused engine (including its parallel intra-solve mode, which must
/// replay the serial schedule exactly — docs/PARALLEL.md, "Inside one
/// solve"), so its value lies in staying simple and independently
/// convincing, not fast.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_PHASEDSOLVER_H
#define GATOR_ANALYSIS_PHASEDSOLVER_H

#include "analysis/GuiAnalysis.h"
#include "analysis/Options.h"
#include "analysis/Provenance.h"
#include "analysis/Solution.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "layout/Layout.h"

#include <memory>

namespace gator {
namespace analysis {

/// Per-phase statistics.
struct PhasedStats {
  unsigned long ReachabilitySteps = 0;
  unsigned long Inflations = 0;
  unsigned long PropagationRounds = 0;
};

/// Runs the 3-phase pipeline over an already-built graph, filling \p Sol.
/// When \p Prov is non-null, every committed fact is stamped with its
/// derivation (docs/OBSERVABILITY.md), same contract as
/// Solver::setProvenance.
PhasedStats solvePhased(graph::ConstraintGraph &G, Solution &Sol,
                        const layout::LayoutRegistry &Layouts,
                        const android::AndroidModel &AM,
                        const AnalysisOptions &Options,
                        DiagnosticEngine &Diags,
                        ProvenanceRecorder *Prov = nullptr);

/// Convenience facade mirroring GuiAnalysis::run but using the phased
/// solver. Fail-soft: graph-construction errors yield a result whose
/// solution is marked DegradedInput rather than a null pointer.
std::unique_ptr<AnalysisResult>
runPhasedAnalysis(const ir::Program &P, layout::LayoutRegistry &Layouts,
                  const android::AndroidModel &AM,
                  const AnalysisOptions &Options, DiagnosticEngine &Diags);

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_PHASEDSOLVER_H
