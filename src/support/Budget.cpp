//===- Budget.cpp - Resource budgets for fail-soft analysis -----*- C++ -*-===//

#include "support/Budget.h"

#include "support/FaultInjection.h"

#include <algorithm>

using namespace gator;
using namespace gator::support;

const char *gator::support::budgetReasonName(BudgetReason Reason) {
  switch (Reason) {
  case BudgetReason::None:
    return "none";
  case BudgetReason::WorkItems:
    return "work-items";
  case BudgetReason::Deadline:
    return "deadline";
  case BudgetReason::GraphNodes:
    return "graph-nodes";
  case BudgetReason::GraphEdges:
    return "graph-edges";
  case BudgetReason::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

BudgetTracker::BudgetTracker(const BudgetPolicy &Policy) : Policy(Policy) {
  // Fault injection: a forced trip at step N behaves exactly like a
  // work-item budget of N, deterministically.
  if (auto Forced = forcedBudgetTripStep()) {
    if (*Forced == 0)
      trip(BudgetReason::WorkItems); // step 0: no work at all
    else
      this->Policy.MaxWorkItems =
          this->Policy.MaxWorkItems == 0
              ? *Forced
              : std::min(this->Policy.MaxWorkItems, *Forced);
  }
  if (Policy.SharedDeadline) {
    // Batch-wide deadline: absolute, computed by the driver before the
    // fan-out, identical for every task in the batch.
    HasDeadline = true;
    Deadline = *Policy.SharedDeadline;
  } else if (Policy.MaxWallSeconds > 0.0) {
    HasDeadline = true;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(Policy.MaxWallSeconds));
  }
}

std::optional<std::chrono::steady_clock::time_point>
gator::support::makeSharedDeadline(double MaxWallSeconds) {
  if (MaxWallSeconds <= 0.0)
    return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(MaxWallSeconds));
}

bool BudgetTracker::overDeadlineOrCancelled() {
  if (Policy.CancelFlag &&
      Policy.CancelFlag->load(std::memory_order_relaxed)) {
    trip(BudgetReason::Cancelled);
    return true;
  }
  if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
    trip(BudgetReason::Deadline);
    return true;
  }
  return false;
}

bool BudgetTracker::refillSlice() {
  if (exhausted())
    return false;
  Committed += SliceSize;
  SliceSize = 0;
  if (overDeadlineOrCancelled())
    return false;
  unsigned long Slice = SliceInterval;
  if (Policy.MaxWorkItems != 0) {
    if (Committed >= Policy.MaxWorkItems) {
      trip(BudgetReason::WorkItems);
      return false;
    }
    Slice = std::min(Slice, Policy.MaxWorkItems - Committed);
  }
  // The charge that triggered the refill consumes the slice's first item.
  SliceSize = Slice;
  FastRemaining = Slice - 1;
  return true;
}

bool BudgetTracker::checkpoint(size_t GraphNodes, size_t GraphEdges) {
  if (exhausted())
    return false;
  if (Policy.MaxGraphNodes != 0 && GraphNodes > Policy.MaxGraphNodes) {
    trip(BudgetReason::GraphNodes);
    return false;
  }
  if (Policy.MaxGraphEdges != 0 && GraphEdges > Policy.MaxGraphEdges) {
    trip(BudgetReason::GraphEdges);
    return false;
  }
  return !overDeadlineOrCancelled();
}
