//===- ir_test.cpp - ALite IR unit tests ------------------------*- C++ -*-===//

#include "ir/Ir.h"
#include "ir/ProgramBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::ir;

namespace {

TEST(IrTest, AddAndFindClass) {
  Program P;
  ClassDecl *C = P.addClass("com.example.Foo");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(P.findClass("com.example.Foo"), C);
  EXPECT_EQ(P.findClass("com.example.Bar"), nullptr);
}

TEST(IrTest, DuplicateClassRejected) {
  Program P;
  DiagnosticEngine Diags;
  EXPECT_NE(P.addClass("A", false, false, &Diags), nullptr);
  EXPECT_EQ(P.addClass("A", false, false, &Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(IrTest, ResolveLinksSuperAndInterfaces) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *I = P.addClass("I", /*IsInterface=*/true);
  ClassDecl *A = P.addClass("A");
  ClassDecl *B = P.addClass("B");
  B->setSuperName("A");
  B->addInterfaceName("I");
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(B->superClass(), A);
  ASSERT_EQ(B->interfaces().size(), 1u);
  EXPECT_EQ(B->interfaces()[0], I);
  EXPECT_TRUE(P.isSubtypeOf(B, A));
  EXPECT_TRUE(P.isSubtypeOf(B, I));
  EXPECT_FALSE(P.isSubtypeOf(A, B));
}

TEST(IrTest, ImplicitObjectSuperclass) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *Obj = P.addClass(ObjectClassName);
  ClassDecl *A = P.addClass("A");
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(A->superClass(), Obj);
  EXPECT_EQ(Obj->superClass(), nullptr);
}

TEST(IrTest, UnknownSuperclassIsError) {
  Program P;
  DiagnosticEngine Diags;
  P.addClass("A")->setSuperName("Missing");
  EXPECT_FALSE(P.resolve(Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(IrTest, ImplementsNonInterfaceIsError) {
  Program P;
  DiagnosticEngine Diags;
  P.addClass("NotIface");
  P.addClass("A")->addInterfaceName("NotIface");
  EXPECT_FALSE(P.resolve(Diags));
}

TEST(IrTest, InheritanceCycleIsError) {
  Program P;
  DiagnosticEngine Diags;
  P.addClass("A")->setSuperName("B");
  P.addClass("B")->setSuperName("A");
  EXPECT_FALSE(P.resolve(Diags));
}

TEST(IrTest, FieldLookupWalksSupers) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *A = P.addClass("A");
  A->addField("f", "A");
  ClassDecl *B = P.addClass("B");
  B->setSuperName("A");
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(B->findOwnField("f"), nullptr);
  ASSERT_NE(B->findField("f"), nullptr);
  EXPECT_EQ(B->findField("f")->owner(), A);
  EXPECT_EQ(B->findField("f")->qualifiedName(), "A.f");
}

TEST(IrTest, MethodLookupRespectsArityAndOverride) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *A = P.addClass("A");
  MethodDecl *M1 = A->addMethod("m", "void");
  M1->addParam("x", "A");
  ClassDecl *B = P.addClass("B");
  B->setSuperName("A");
  MethodDecl *M2 = B->addMethod("m", "void"); // m/0 overload on B
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(B->findMethod("m", 1), M1); // inherited m/1
  EXPECT_EQ(B->findMethod("m", 0), M2);
  EXPECT_EQ(A->findMethod("m", 0), nullptr);
}

TEST(IrTest, MethodLookupThroughInterfaces) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *I = P.addClass("I", /*IsInterface=*/true);
  MethodDecl *Decl = I->addMethod("h", "void");
  Decl->addParam("v", "I");
  ClassDecl *A = P.addClass("A");
  A->addInterfaceName("I");
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(A->findMethod("h", 1), Decl);
  EXPECT_TRUE(Decl->isAbstract()); // interface methods are abstract
}

TEST(IrTest, ThisAndParamVariableLayout) {
  Program P;
  ClassDecl *A = P.addClass("A");
  MethodDecl *M = A->addMethod("m", "void");
  VarId Px = M->addParam("x", "int");
  VarId Py = M->addParam("y", "A");
  VarId L = M->addLocal("tmp", "A");
  EXPECT_EQ(M->thisVar(), 0);
  EXPECT_EQ(M->paramVar(0), Px);
  EXPECT_EQ(M->paramVar(1), Py);
  EXPECT_EQ(M->paramCount(), 2u);
  EXPECT_EQ(M->var(M->thisVar()).TypeName, "A");
  EXPECT_TRUE(M->var(M->thisVar()).IsThis);
  EXPECT_TRUE(M->var(Px).IsParam);
  EXPECT_FALSE(M->var(L).IsParam);
  EXPECT_EQ(M->findVar("tmp"), L);
  EXPECT_EQ(M->findVar("nope"), InvalidVar);
  EXPECT_EQ(M->qualifiedName(), "A.m/2");
}

TEST(IrTest, StaticMethodHasNoThis) {
  Program P;
  ClassDecl *A = P.addClass("A");
  MethodDecl *M = A->addMethod("s", "void", /*IsStatic=*/true);
  VarId Px = M->addParam("x", "int");
  EXPECT_EQ(Px, 0); // parameters start at 0 without `this`
  EXPECT_TRUE(M->isStatic());
}

TEST(IrTest, AppCountsExcludePlatform) {
  Program P;
  DiagnosticEngine Diags;
  P.addClass("android.x.Y", false, /*IsPlatform=*/true)
      ->addMethod("stub", "void")
      ->setAbstract(true);
  ClassDecl *A = P.addClass("A");
  A->addMethod("m", "void");
  A->addMethod("n", "void");
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(P.appClassCount(), 1u);
  EXPECT_EQ(P.appMethodCount(), 2u);
}

TEST(IrTest, PrimitiveTypeNames) {
  EXPECT_TRUE(isPrimitiveTypeName("int"));
  EXPECT_TRUE(isPrimitiveTypeName("void"));
  EXPECT_FALSE(isPrimitiveTypeName("java.lang.Object"));
}

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

TEST(ProgramBuilderTest, BuildsStatements) {
  Program P;
  DiagnosticEngine Diags;
  ProgramBuilder B(P, Diags);
  ClassBuilder CB = B.makeClass("A");
  CB.field("f", "A");
  MethodBuilder MB = CB.method("m", "A");
  MB.param("p", "A");
  MB.local("x", "A");
  MB.assign("x", "p");
  MB.assignNew("x", "A");
  MB.loadField("x", "this", "f");
  MB.storeField("this", "f", "x");
  MB.ret(std::string("x"));
  ASSERT_TRUE(B.finish());

  const MethodDecl *M = P.findClass("A")->findOwnMethod("m", 1);
  ASSERT_NE(M, nullptr);
  ASSERT_EQ(M->body().size(), 5u);
  EXPECT_EQ(M->body()[0].Kind, StmtKind::AssignVar);
  EXPECT_EQ(M->body()[1].Kind, StmtKind::AssignNew);
  EXPECT_EQ(M->body()[1].ClassName, "A");
  EXPECT_EQ(M->body()[2].Kind, StmtKind::LoadField);
  EXPECT_EQ(M->body()[3].Kind, StmtKind::StoreField);
  EXPECT_EQ(M->body()[4].Kind, StmtKind::Return);
}

TEST(ProgramBuilderTest, LocalIsIdempotent) {
  Program P;
  DiagnosticEngine Diags;
  ProgramBuilder B(P, Diags);
  MethodBuilder MB = B.makeClass("A").method("m");
  VarId X1 = MB.local("x", "A");
  VarId X2 = MB.local("x", "A");
  EXPECT_EQ(X1, X2);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, AcceptsWellFormedProgram) {
  Program P;
  DiagnosticEngine Diags;
  ProgramBuilder B(P, Diags);
  MethodBuilder MB = B.makeClass("A").method("m");
  MB.local("x", "A");
  MB.assignNew("x", "A");
  ASSERT_TRUE(B.finish());
  EXPECT_TRUE(verifyProgram(P, Diags));
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(VerifierTest, RejectsNewOfUnknownClass) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *A = P.addClass("A");
  MethodDecl *M = A->addMethod("m", "void");
  VarId X = M->addLocal("x", "A");
  Stmt S;
  S.Kind = StmtKind::AssignNew;
  S.Lhs = X;
  S.ClassName = "Ghost";
  M->body().push_back(S);
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_FALSE(verifyProgram(P, Diags));
}

TEST(VerifierTest, RejectsNewOfInterface) {
  Program P;
  DiagnosticEngine Diags;
  P.addClass("I", /*IsInterface=*/true);
  ClassDecl *A = P.addClass("A");
  MethodDecl *M = A->addMethod("m", "void");
  VarId X = M->addLocal("x", "I");
  Stmt S;
  S.Kind = StmtKind::AssignNew;
  S.Lhs = X;
  S.ClassName = "I";
  M->body().push_back(S);
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_FALSE(verifyProgram(P, Diags));
}

TEST(VerifierTest, RejectsDanglingVarIndex) {
  Program P;
  DiagnosticEngine Diags;
  ClassDecl *A = P.addClass("A");
  MethodDecl *M = A->addMethod("m", "void");
  Stmt S;
  S.Kind = StmtKind::AssignNull;
  S.Lhs = 99;
  M->body().push_back(S);
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_FALSE(verifyProgram(P, Diags));
}

TEST(VerifierTest, WarnsOnUnknownFieldAndMethod) {
  Program P;
  DiagnosticEngine Diags;
  ProgramBuilder B(P, Diags);
  MethodBuilder MB = B.makeClass("A").method("m");
  MB.local("x", "A");
  MB.assignNew("x", "A");
  MB.loadField("x", "x", "ghostField");
  MB.call("x", "ghostMethod", {});
  ASSERT_TRUE(B.finish());
  EXPECT_TRUE(verifyProgram(P, Diags)); // warnings, not errors
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.warningCount(), 2u);
}

TEST(VerifierTest, WarnsOnReturnValueInVoidMethod) {
  Program P;
  DiagnosticEngine Diags;
  ProgramBuilder B(P, Diags);
  MethodBuilder MB = B.makeClass("A").method("m", VoidTypeName);
  MB.local("x", "A");
  MB.assignNew("x", "A");
  MB.ret(std::string("x"));
  ASSERT_TRUE(B.finish());
  EXPECT_TRUE(verifyProgram(P, Diags));
  EXPECT_EQ(Diags.warningCount(), 1u);
}

} // namespace
