//===- Provenance.cpp - Derivation recording for solver facts -------------===//

#include "analysis/Provenance.h"

#include <unordered_set>

using namespace gator;
using namespace gator::analysis;

const char *gator::analysis::derivRuleName(DerivRule Rule) {
  switch (Rule) {
  case DerivRule::Seed:
    return "Seed";
  case DerivRule::FlowEdge:
    return "FlowEdge";
  case DerivRule::Inflate:
    return "Inflate";
  case DerivRule::InflateAttach:
    return "InflateAttach";
  case DerivRule::AddView1:
    return "AddView1";
  case DerivRule::AddView2:
    return "AddView2";
  case DerivRule::SetId:
    return "SetId";
  case DerivRule::SetListener:
    return "SetListener";
  case DerivRule::ListenerCallback:
    return "ListenerCallback";
  case DerivRule::XmlOnClick:
    return "XmlOnClick";
  case DerivRule::FindView:
    return "FindView";
  case DerivRule::FragmentAdd:
    return "FragmentAdd";
  case DerivRule::SetAdapter:
    return "SetAdapter";
  case DerivRule::External:
    return "External";
  case DerivRule::UnknownSource:
    return "UnknownSource";
  }
  return "Unknown";
}

const char *gator::analysis::factKindName(FactKind Kind) {
  switch (Kind) {
  case FactKind::Flow:
    return "flowsTo";
  case FactKind::ParentChild:
    return "parentOf";
  case FactKind::HasId:
    return "hasId";
  case FactKind::Root:
    return "rootOf";
  case FactKind::Listener:
    return "listens";
  case FactKind::RootsLayout:
    return "rootsLayout";
  case FactKind::FlowLink:
    return "flowLink";
  }
  return "fact";
}

namespace {

bool isUnknownNode(const graph::ConstraintGraph *G, graph::NodeId Id) {
  if (!G || Id == graph::InvalidNode || Id >= G->size())
    return false;
  graph::NodeKind Kind = G->node(Id).Kind;
  return Kind == graph::NodeKind::UnknownView ||
         Kind == graph::NodeKind::UnknownId;
}

} // namespace

void ProvenanceRecorder::record(FactKind Kind, graph::NodeId A,
                                graph::NodeId B, DerivRule Rule, FactId P0,
                                FactId P1, FactId P2) {
  Derivation D;
  D.Rule = Rule;
  D.Premises = {P0, P1, P2};
  D.Depth = 1;
  D.Approx = Rule == DerivRule::UnknownSource || isUnknownNode(G, A) ||
             isUnknownNode(G, B);
  for (FactId P : D.Premises)
    if (P != NoFact) {
      if (Derivs[P].Depth + 1 > D.Depth)
        D.Depth = Derivs[P].Depth + 1;
      D.Approx |= Derivs[P].Approx;
    }

  auto &Map = IndexByKind[static_cast<size_t>(Kind)];
  auto [It, Inserted] =
      Map.try_emplace(key(A, B), static_cast<FactId>(Facts.size()));
  if (Inserted) {
    Facts.push_back(Fact{Kind, A, B});
    Derivs.push_back(D);
    if (D.Approx)
      ++ApproxFacts;
  } else if (D.Depth < Derivs[It->second].Depth) {
    // A shallower re-derivation wins: --explain reports the shortest
    // route the solve found to this fact.
    if (D.Approx && !Derivs[It->second].Approx)
      ++ApproxFacts;
    else if (!D.Approx && Derivs[It->second].Approx)
      --ApproxFacts;
    Derivs[It->second] = D;
  }
  if (D.Depth > MaxDepth)
    MaxDepth = D.Depth;
}

ProvenanceRecorder::FactId ProvenanceRecorder::find(FactKind Kind,
                                                    graph::NodeId A,
                                                    graph::NodeId B) const {
  const auto &Map = IndexByKind[static_cast<size_t>(Kind)];
  auto It = Map.find(key(A, B));
  return It == Map.end() ? NoFact : It->second;
}

namespace {

/// The `approx: <reason> at <site>` note for a fact resting directly on
/// an unknown-source node (docs/ROBUSTNESS.md degradation taxonomy).
void printApproxNote(std::ostream &OS, const graph::ConstraintGraph &G,
                     const ProvenanceRecorder::Fact &F) {
  for (graph::NodeId End : {F.A, F.B}) {
    if (End == graph::InvalidNode || End >= G.size())
      continue;
    const graph::Node &N = G.node(End);
    if (N.Kind != graph::NodeKind::UnknownView &&
        N.Kind != graph::NodeKind::UnknownId)
      continue;
    OS << "  approx: " << graph::unknownReasonPhrase(N.Unknown);
    if (N.Method)
      OS << " at " << N.Method->qualifiedName();
    if (N.Loc.isValid())
      OS << ":" << N.Loc.line();
    return;
  }
}

void printOne(std::ostream &OS, const ProvenanceRecorder &Prov,
              ProvenanceRecorder::FactId Id, const graph::ConstraintGraph &G,
              unsigned Indent, unsigned MaxPrintDepth,
              std::unordered_set<ProvenanceRecorder::FactId> &Printed) {
  const auto &F = Prov.fact(Id);
  const auto &D = Prov.derivation(Id);
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  OS << factKindName(F.Kind) << '(' << G.label(F.A);
  if (F.B != graph::InvalidNode)
    OS << ", " << G.label(F.B);
  OS << ")  [" << derivRuleName(D.Rule) << ']';
  if (D.Approx) {
    OS << " [approx]";
    printApproxNote(OS, G, F);
  }
  bool HasPremise = false;
  for (auto P : D.Premises)
    HasPremise |= P != ProvenanceRecorder::NoFact;
  if (!HasPremise) {
    OS << '\n';
    return;
  }
  if (!Printed.insert(Id).second) {
    OS << "  (see above)\n";
    return;
  }
  if (Indent >= MaxPrintDepth) {
    OS << "  (...)\n";
    return;
  }
  OS << '\n';
  for (auto P : D.Premises)
    if (P != ProvenanceRecorder::NoFact)
      printOne(OS, Prov, P, G, Indent + 1, MaxPrintDepth, Printed);
}

} // namespace

void ProvenanceRecorder::printDerivation(std::ostream &OS, FactId Id,
                                         const graph::ConstraintGraph &G,
                                         unsigned MaxPrintDepth) const {
  if (Id == NoFact || Id >= Facts.size()) {
    OS << "(no derivation recorded)\n";
    return;
  }
  std::unordered_set<FactId> Printed;
  printOne(OS, *this, Id, G, 0, MaxPrintDepth, Printed);
}
