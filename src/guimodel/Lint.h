//===- Lint.h - Static GUI error checking -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static error checker built on the GUI solution — the "static error
/// checking" client family Section 6 discusses (citing GUI error checkers
/// that the paper's analysis would make more general and precise).
/// Checks:
///
///  - unresolved-find: a find-view operation whose result set is empty —
///    the id never names a view in any hierarchy the receiver can hold
///    (typical cause: wrong id, or looking up before attaching);
///  - bad-cast: every view a find-view resolves to is cast-incompatible
///    with the destination variable's declared type (guaranteed
///    ClassCastException if the lookup succeeds at run time);
///  - dead-listener: a listener-class allocation never associated with
///    any view (handler code that can never run);
///  - orphan-view: an explicitly allocated view neither attached to any
///    window hierarchy nor set as content (UI that is never shown);
///  - unused-layout: a registered layout whose id reaches no inflation
///    point;
///  - unused-view-id: a layout-declared view id that no find-view, setId,
///    or code reference ever uses.
///
/// All findings are heuristics in the usual lint sense: sound analysis
/// facts interpreted as likely mistakes.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_GUIMODEL_LINT_H
#define GATOR_GUIMODEL_LINT_H

#include "analysis/GuiAnalysis.h"
#include "layout/Layout.h"

#include <ostream>
#include <string>
#include <vector>

namespace gator {
namespace guimodel {

enum class LintKind {
  UnresolvedFind,
  BadCast,
  DeadListener,
  OrphanView,
  UnusedLayout,
  UnusedViewId,
};

const char *lintKindName(LintKind Kind);

struct LintFinding {
  LintKind Kind;
  SourceLocation Loc; ///< best-effort location (op/alloc site)
  std::string Message;
};

/// Runs all checks. \p Layouts is the registry the analysis ran with.
std::vector<LintFinding> runLint(const analysis::AnalysisResult &Result,
                                 const layout::LayoutRegistry &Layouts);

/// Prints findings one per line ("loc: kind: message").
void printLintFindings(std::ostream &OS,
                       const std::vector<LintFinding> &Findings);

} // namespace guimodel
} // namespace gator

#endif // GATOR_GUIMODEL_LINT_H
