//===- FleetReport.h - Corpus health reports from run ledgers ---*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregation side of the run ledger (docs/OBSERVABILITY.md, "Run
/// ledger & reports"): fold a JSONL ledger of per-app wide events into a
/// versioned corpus health report — count/sum/p50/p90/p99/max per numeric
/// field, breakdowns by fidelity, exit code, and unknown-source reason,
/// and top-K outlier apps per dimension (slowest, most propagations,
/// widest fanout) with deterministic tie-breaking — and diff two ledgers
/// of the same run configuration into a per-app regression report
/// (newly-degraded, newly-cache-missed, counter deltas beyond a
/// threshold), keyed by content key.
///
/// Determinism: every aggregate walks events in ledger order, percentiles
/// are nearest-rank over a stable sort, and outlier ties break toward the
/// lower input index — two reads of the same ledger render byte-identical
/// reports. Diffs consider only deterministic fields (wall-clock seconds,
/// peak RSS, and scheduling-engagement counters never appear in deltas),
/// so a run diffed against its own re-run is empty, and refuse ledgers
/// whose options digests differ — counters measured under different
/// analysis semantics are not comparable.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_CORPUS_FLEETREPORT_H
#define GATOR_CORPUS_FLEETREPORT_H

#include "corpus/BatchRunner.h"
#include "support/WideEvent.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gator {
namespace corpus {

/// How many outlier apps each dimension lists.
inline constexpr size_t ReportTopK = 5;

/// count/sum/percentiles/max of one numeric ledger field.
struct FieldSummary {
  std::string Field;
  bool Volatile = false; ///< absent under --no-times ledgers
  uint64_t Count = 0;    ///< events contributing (== apps)
  double Sum = 0, P50 = 0, P90 = 0, P99 = 0, Max = 0;
};

/// One outlier row: the app and its value on the ranked dimension.
struct OutlierApp {
  uint64_t Index = 0;
  std::string App, ContentKey;
  double Value = 0;
};

/// The versioned report artifact.
struct FleetReport {
  /// Bumped on any change to the report's JSON shape.
  static constexpr uint32_t FormatVersion = 1;

  support::LedgerHeader Header; ///< the folded ledger's header
  uint64_t Apps = 0;
  uint64_t Degraded = 0; ///< fidelity != "complete"
  uint64_t GenerationFailures = 0;
  uint64_t CacheHits = 0, CacheMisses = 0, CacheOff = 0;
  /// (key, count) breakdowns, sorted by key for stable rendering.
  std::vector<std::pair<std::string, uint64_t>> ByFidelity;
  std::vector<std::pair<std::string, uint64_t>> ByExitCode;
  std::vector<std::pair<std::string, uint64_t>> UnknownByReason;
  /// Per-field summaries in canonical field order; volatile fields are
  /// skipped when the ledger was written with --no-times.
  std::vector<FieldSummary> Fields;
  /// Ranked dimensions: highest value first, ties toward the lower input
  /// index. "solve_seconds" appears only on with-times ledgers.
  struct Dimension {
    std::string Name;
    std::vector<OutlierApp> Top;
  };
  std::vector<Dimension> Outliers;
};

/// Folds a parsed ledger into a report.
FleetReport buildFleetReport(const support::Ledger &L);

/// Renders the report. JSON carries report_format/ledger header stamps;
/// text is the human summary. Both deterministic for a given ledger.
void writeFleetReportJson(std::ostream &OS, const FleetReport &R);
void writeFleetReportText(std::ostream &OS, const FleetReport &R);

/// One changed counter of one app.
struct FieldDelta {
  std::string Field;
  double Old = 0, New = 0;
};

/// Per-app regression record; emitted only for apps with at least one
/// flagged change.
struct AppDelta {
  std::string ContentKey, App;
  bool NewlyDegraded = false;    ///< complete -> anything worse
  bool NewlyCacheMissed = false; ///< hit -> miss
  std::string OldFidelity, NewFidelity;
  std::vector<FieldDelta> Counters; ///< deterministic fields past threshold
};

/// The diff of two ledgers. When \p Incomparable is nonempty, the inputs
/// could not be compared (format/options skew) and nothing else is
/// populated.
struct LedgerDiff {
  std::string Incomparable;
  double ThresholdPct = 0;
  /// Apps present in exactly one ledger, as "app (content_key)" strings
  /// in their ledger's input order.
  std::vector<std::string> OnlyInOld, OnlyInNew;
  std::vector<AppDelta> Apps; ///< in the new ledger's input order
  bool empty() const {
    return Incomparable.empty() && OnlyInOld.empty() && OnlyInNew.empty() &&
           Apps.empty();
  }
};

/// Diffs \p Old against \p New, keyed by content key (first occurrence
/// wins on duplicates). A deterministic counter flags when
/// |new - old| > ThresholdPct/100 * max(|old|, 1); the default 0 flags
/// any change.
LedgerDiff diffLedgers(const support::Ledger &Old,
                       const support::Ledger &New,
                       double ThresholdPct = 0);

void writeLedgerDiffJson(std::ostream &OS, const LedgerDiff &D);
void writeLedgerDiffText(std::ostream &OS, const LedgerDiff &D);

/// Builds the ledger of a corpus batch run: one wide event per record in
/// input order, content keys from hashAppSpec, the options digest from
/// hashAnalysisOptions. \p CacheEnabled distinguishes "miss" from "off"
/// in the per-app cache field; \p NoTimes marks the header so writers
/// suppress volatile fields.
support::Ledger fleetLedger(const std::vector<AppSpec> &Specs,
                            const analysis::AnalysisOptions &Options,
                            const std::vector<BatchAppResult> &Records,
                            bool CacheEnabled, bool NoTimes);

} // namespace corpus
} // namespace gator

#endif // GATOR_CORPUS_FLEETREPORT_H
