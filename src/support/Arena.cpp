//===- Arena.cpp - Monotonic bump allocator ---------------------*- C++ -*-===//

#include "support/Arena.h"

#include <algorithm>
#include <cstdlib>

namespace gator {
namespace support {

Arena::~Arena() {
  runDtors();
  for (const Slab &S : Slabs) {
    unpoison(S.Base, S.Size);
    std::free(S.Base);
  }
}

Arena &Arena::operator=(Arena &&Other) noexcept {
  if (this == &Other)
    return *this;
  runDtors();
  for (const Slab &S : Slabs) {
    unpoison(S.Base, S.Size);
    std::free(S.Base);
  }
  Cur = Other.Cur;
  End = Other.End;
  Slabs = std::move(Other.Slabs);
  Dtors = std::move(Other.Dtors);
  LiveBytes = Other.LiveBytes;
  ReservedBytes = Other.ReservedBytes;
  NextSlabBytes = Other.NextSlabBytes;
  Other.Slabs.clear();
  Other.Dtors.clear();
  Other.Cur = Other.End = 0;
  Other.LiveBytes = Other.ReservedBytes = 0;
  Other.NextSlabBytes = DefaultSlabBytes;
  return *this;
}

void Arena::runDtors() {
  // Reverse construction order, like stack unwinding.
  for (auto It = Dtors.rbegin(); It != Dtors.rend(); ++It)
    It->Run(It->Obj);
  Dtors.clear();
}

void *Arena::allocateSlow(size_t Bytes, size_t Align) {
  // The new slab must fit the request plus worst-case alignment slack.
  size_t Need = Bytes + Align;
  size_t SlabBytes = std::max(NextSlabBytes, Need);
  if (NextSlabBytes < MaxSlabBytes)
    NextSlabBytes = std::min(NextSlabBytes * 2, MaxSlabBytes);

  char *Base = static_cast<char *>(std::malloc(SlabBytes));
  if (!Base)
    throw std::bad_alloc();
  Slabs.push_back({Base, SlabBytes});
  ReservedBytes += SlabBytes;
  poison(Base, SlabBytes);

  Cur = reinterpret_cast<uintptr_t>(Base);
  End = Cur + SlabBytes;

  uintptr_t P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
  Cur = P + Bytes;
  LiveBytes += Bytes;
  unpoison(reinterpret_cast<void *>(P), Bytes);
  return reinterpret_cast<void *>(P);
}

void Arena::reset() {
  runDtors();

  // Keep the largest slab: steady-state reuse allocates nothing.
  size_t Largest = ~size_t(0);
  for (size_t I = 0; I < Slabs.size(); ++I)
    if (Largest == ~size_t(0) || Slabs[I].Size > Slabs[Largest].Size)
      Largest = I;

  size_t Kept = 0;
  for (size_t I = 0; I < Slabs.size(); ++I) {
    if (I == Largest) {
      Kept = Slabs[I].Size;
      poison(Slabs[I].Base, Slabs[I].Size);
      Slabs[0] = Slabs[I];
      continue;
    }
    unpoison(Slabs[I].Base, Slabs[I].Size);
    std::free(Slabs[I].Base);
  }
  Slabs.resize(Largest == ~size_t(0) ? 0 : 1);
  ReservedBytes = Kept;
  LiveBytes = 0;
  if (!Slabs.empty()) {
    Cur = reinterpret_cast<uintptr_t>(Slabs[0].Base);
    End = Cur + Slabs[0].Size;
  } else {
    Cur = End = 0;
  }
}

size_t Arena::bytesRetained() const {
  size_t Largest = 0;
  for (const Slab &S : Slabs)
    Largest = std::max(Largest, S.Size);
  return Largest;
}

} // namespace support
} // namespace gator
