file(REMOVE_RECURSE
  "CMakeFiles/alite_fmt.dir/alite_fmt.cpp.o"
  "CMakeFiles/alite_fmt.dir/alite_fmt.cpp.o.d"
  "alite_fmt"
  "alite_fmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alite_fmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
