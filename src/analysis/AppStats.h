//===- AppStats.h - Table 1 style application statistics --------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects the per-application measurements reported in Table 1 of the
/// paper: application classes and methods, layout/view id counts, inflated
/// and explicitly-allocated view nodes, listener allocation nodes, and the
/// number of constraint-graph operation nodes per category.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_APPSTATS_H
#define GATOR_ANALYSIS_APPSTATS_H

#include "analysis/GuiAnalysis.h"
#include "android/Ops.h"

#include <ostream>
#include <string>
#include <vector>

namespace gator {
namespace support {
class MetricsRegistry;
struct WideEvent;
} // namespace support

namespace analysis {

/// One row of Table 1.
struct AppStats {
  std::string Name;
  unsigned Classes = 0;
  unsigned Methods = 0;
  unsigned LayoutIds = 0;   ///< column "ids" (L)
  unsigned ViewIds = 0;     ///< column "ids" (V)
  unsigned InflViews = 0;   ///< column "views" (I)
  unsigned AllocViews = 0;  ///< column "views" (A)
  unsigned Listeners = 0;   ///< listener allocation nodes
  unsigned OpInflate = 0;
  unsigned OpFindView = 0;  ///< FindView1 + FindView2 + FindView3
  unsigned OpAddView = 0;   ///< AddView1 + AddView2
  unsigned OpSetListener = 0;
  unsigned OpSetId = 0;

  /// Solver telemetry (difference propagation; docs/DELTA_SOLVER.md),
  /// copied from the run's SolverStats.
  unsigned long Propagations = 0;
  unsigned long OpFirings = 0;
  unsigned long ValuesPushed = 0;
  unsigned long DedupHits = 0;
  unsigned long PeakSetSize = 0;
  unsigned long PromotedSets = 0;
  unsigned long DescCacheHits = 0;
  unsigned long DescCacheMisses = 0;
  unsigned long HierarchyRevisions = 0;

  /// Parallel intra-solve telemetry (docs/PARALLEL.md, "Inside one
  /// solve"): SCC condensation shape of the flow graph and barrier
  /// counts of the stratified classification waves. All zero when the
  /// run was serial (SolveJobs <= 1).
  unsigned long SccCount = 0;       ///< point measurement: max-merged
  unsigned long SccMaxSize = 0;     ///< point measurement: max-merged
  unsigned long SccStrata = 0;      ///< point measurement: max-merged
  unsigned long SccRecondensations = 0;
  unsigned long ParallelRounds = 0;
  unsigned long BarrierWaves = 0;
  unsigned long BarrierStalls = 0;

  /// Fail-soft telemetry (docs/ROBUSTNESS.md): the solution's fidelity
  /// marker, number of op sites left unresolved, and budget work charged.
  Fidelity SolutionFidelity = Fidelity::Complete;
  unsigned long UnresolvedOps = 0;
  unsigned long WorkCharged = 0;

  /// Unknown-source telemetry (docs/ROBUSTNESS.md): tagged UnknownView /
  /// UnknownId node counts, plus a per-reason breakdown (indexed by
  /// graph::UnknownReason; slot 0/None stays zero).
  unsigned long UnknownViews = 0;
  unsigned long UnknownIds = 0;
  unsigned long UnknownByReason[graph::NumUnknownReasons] = {};

  // Observability telemetry (docs/OBSERVABILITY.md).

  /// Final constraint-graph shape.
  unsigned long GraphNodes = 0;
  unsigned long FlowEdges = 0;
  unsigned long ParentChildEdges = 0;

  /// Peak worklist depths. Peaks are point measurements, NOT volumes:
  /// aggregateAppStats merges them with max (like PeakSetSize), never by
  /// addition — summing would report a depth no run ever reached.
  unsigned long PeakVarWorklist = 0;
  unsigned long PeakOpWorklist = 0;

  /// Rule evaluations, op sites, and resolved op sites per operation
  /// kind (indexed by android::OpKind). A site counts as resolved when
  /// its result variable received at least one value (ops with an Out
  /// role) or its receiver did (structural ops).
  unsigned long FiringsByKind[android::NumOpKinds] = {};
  unsigned long SitesByKind[android::NumOpKinds] = {};
  unsigned long ResolvedSitesByKind[android::NumOpKinds] = {};

  /// Phase wall-clock, copied from the run (suppressed from exports under
  /// --no-times).
  double BuildSeconds = 0.0;
  double SolveSeconds = 0.0;

  // Memory telemetry (docs/MEMORY.md).

  /// Bytes bump-allocated from this app's arenas: IR declarations
  /// (Program::declArena), constraint-graph adjacency
  /// (ConstraintGraph::edgeArena), and solver flow sets
  /// (Solution::setArena). Aggregated with max — the largest single-app
  /// arena footprint — because per-app slabs are dropped between apps,
  /// so a sum would describe traffic, not footprint.
  unsigned long long ArenaBytes = 0;

  /// Process peak RSS (support::currentPeakRssBytes) sampled when the
  /// app's stats were collected. A high-water mark: max-merged, never
  /// summed.
  unsigned long long PeakRssBytes = 0;
};

/// Collects statistics from a completed analysis run.
AppStats collectAppStats(const std::string &Name, const ir::Program &P,
                         const AnalysisResult &Result);

/// Sums every counter over a batch (Name becomes \p Name, PeakSetSize is
/// the maximum, SolutionFidelity the worst across apps). Order-invariant,
/// so the aggregate of a parallel run equals the serial one — the
/// determinism test and the batch drivers compare/report this.
AppStats aggregateAppStats(const std::string &Name,
                           const std::vector<AppStats> &PerApp);

/// Prints the Table 1 header / one row in the paper's layout.
void printAppStatsHeader(std::ostream &OS);
void printAppStatsRow(std::ostream &OS, const AppStats &Stats);

/// Prints the solver-telemetry header / one row (delta-propagation
/// counters; consumed by bench_table2).
void printSolverStatsHeader(std::ostream &OS);
void printSolverStatsRow(std::ostream &OS, const AppStats &Stats);

/// Records \p Stats into the metrics registry (docs/OBSERVABILITY.md):
/// gator_* counters, peak gauges, per-op-kind labeled series, and phase
/// timing gauges. When \p Sol is non-null, also observes every flowsTo
/// set size into the gator_flowset_size histogram. Idempotent naming:
/// recording several apps into one registry accumulates, and batch
/// drivers may instead record into per-task registries and mergeFrom()
/// them — both yield the same document.
void recordAppMetrics(support::MetricsRegistry &Metrics, const AppStats &Stats,
                      const Solution *Sol = nullptr);

/// Copies \p Stats into a run-ledger wide event (docs/OBSERVABILITY.md,
/// "Run ledger & reports"): counters verbatim, the fidelity as its
/// fidelityName() slug, and the unknown-source breakdown as (reason slug,
/// count) pairs for nonzero reasons. Identity and outcome fields the
/// stats row does not know (content key, exit code, cache state) are the
/// caller's to fill. The support-layer WideEvent stays free of analysis
/// types; this is the one conversion point.
void fillWideEvent(support::WideEvent &Event, const AppStats &Stats);

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_APPSTATS_H
