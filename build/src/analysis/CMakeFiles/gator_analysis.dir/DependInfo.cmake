
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AppStats.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/AppStats.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/AppStats.cpp.o.d"
  "/root/repo/src/analysis/ContextRefinement.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/ContextRefinement.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/ContextRefinement.cpp.o.d"
  "/root/repo/src/analysis/GraphBuilder.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/GraphBuilder.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/GraphBuilder.cpp.o.d"
  "/root/repo/src/analysis/GuiAnalysis.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/GuiAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/GuiAnalysis.cpp.o.d"
  "/root/repo/src/analysis/PhasedSolver.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/PhasedSolver.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/PhasedSolver.cpp.o.d"
  "/root/repo/src/analysis/Solution.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/Solution.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/Solution.cpp.o.d"
  "/root/repo/src/analysis/SolutionChecker.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/SolutionChecker.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/SolutionChecker.cpp.o.d"
  "/root/repo/src/analysis/Solver.cpp" "src/analysis/CMakeFiles/gator_analysis.dir/Solver.cpp.o" "gcc" "src/analysis/CMakeFiles/gator_analysis.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gator_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gator_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/gator_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gator_android.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/gator_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gator_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gator_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
