# Empty dependencies file for dex_test.
# This may be replaced when dependencies are built.
