//===- cache_test.cpp - Content-addressed solution cache tests ------------===//
//
// The GSC1 codec, the two cache tiers, key sensitivity, cache-served
// batch determinism across job counts, and the poisoning contract
// (docs/INCREMENTAL.md): corrupt, truncated, or version-skewed cache
// entries degrade to a full solve — counted, never crashing, never
// changing results.
//
//===----------------------------------------------------------------------===//

#include "analysis/SolutionCache.h"
#include "corpus/BatchRunner.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
using namespace gator::analysis;
namespace fs = std::filesystem;

namespace {

support::Hash128 keyOf(uint64_t Hi, uint64_t Lo) {
  support::Hash128 K;
  K.Hi = Hi;
  K.Lo = Lo;
  return K;
}

CachedAnalysis sampleEntry() {
  CachedAnalysis E;
  E.ExitCode = 1;
  E.OutText = "app Sample: 3 activities\n";
  E.ErrText = "warning: something degraded\n";
  E.Stats.Name = "Sample";
  E.Stats.SolutionFidelity = Fidelity::DegradedInput;
  E.Stats.GraphNodes = 123;
  E.Stats.FlowEdges = 456;
  E.Stats.BuildSeconds = 0.25;
  E.Stats.SolveSeconds = 1.5;
  E.Precision.AvgReceivers = 1.75;
  E.Precision.AvgListeners = 2.5;
  // 11 bounds + overflow slot, matching the gator_flowset_size histogram.
  E.FlowHistCounts.assign(12, 0);
  E.FlowHistCounts[0] = 7;
  E.FlowHistCounts[11] = 2;
  E.FlowHistSum = 42;
  E.FlowHistCount = 9;
  return E;
}

/// A scratch directory unique to the current test, cleaned on entry.
std::string scratchDir(const std::string &Leaf) {
  fs::path P = fs::temp_directory_path() / ("gator_cache_test_" + Leaf);
  fs::remove_all(P);
  return P.string();
}

//===----------------------------------------------------------------------===//
// GSC1 codec
//===----------------------------------------------------------------------===//

TEST(CacheCodecTest, RoundTripPreservesEveryField) {
  CachedAnalysis E = sampleEntry();
  std::string Bytes;
  SolutionCache::serialize(E, Bytes);

  CachedAnalysis Out;
  ASSERT_TRUE(SolutionCache::deserialize(Bytes, Out));
  EXPECT_EQ(Out.ExitCode, E.ExitCode);
  EXPECT_EQ(Out.OutText, E.OutText);
  EXPECT_EQ(Out.ErrText, E.ErrText);
  EXPECT_EQ(Out.Stats.Name, E.Stats.Name);
  EXPECT_EQ(Out.Stats.SolutionFidelity, E.Stats.SolutionFidelity);
  EXPECT_EQ(Out.Stats.GraphNodes, E.Stats.GraphNodes);
  EXPECT_EQ(Out.Stats.FlowEdges, E.Stats.FlowEdges);
  EXPECT_DOUBLE_EQ(Out.Stats.BuildSeconds, E.Stats.BuildSeconds);
  EXPECT_DOUBLE_EQ(Out.Stats.SolveSeconds, E.Stats.SolveSeconds);
  EXPECT_DOUBLE_EQ(Out.Precision.AvgReceivers, E.Precision.AvgReceivers);
  ASSERT_TRUE(Out.Precision.AvgListeners.has_value());
  EXPECT_DOUBLE_EQ(*Out.Precision.AvgListeners, *E.Precision.AvgListeners);
  EXPECT_FALSE(Out.Precision.AvgParameters.has_value());
  EXPECT_EQ(Out.FlowHistCounts, E.FlowHistCounts);
  EXPECT_EQ(Out.FlowHistSum, E.FlowHistSum);
  EXPECT_EQ(Out.FlowHistCount, E.FlowHistCount);
}

TEST(CacheCodecTest, RejectsTruncationAtEveryLength) {
  std::string Bytes;
  SolutionCache::serialize(sampleEntry(), Bytes);
  CachedAnalysis Out;
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    EXPECT_FALSE(
        SolutionCache::deserialize(std::string_view(Bytes).substr(0, Len),
                                   Out))
        << "accepted a prefix of length " << Len;
}

TEST(CacheCodecTest, RejectsSingleBitFlips) {
  std::string Bytes;
  SolutionCache::serialize(sampleEntry(), Bytes);
  // Flipping any single bit must fail magic, version, size, or checksum
  // validation — or at worst produce a structurally invalid payload.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Mutated = Bytes;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0x40);
    CachedAnalysis Out;
    EXPECT_FALSE(SolutionCache::deserialize(Mutated, Out))
        << "accepted a bit flip at byte " << I;
  }
}

TEST(CacheCodecTest, RejectsVersionSkewAndTrailingGarbage) {
  std::string Bytes;
  SolutionCache::serialize(sampleEntry(), Bytes);
  CachedAnalysis Out;

  std::string Skewed = Bytes;
  Skewed[4] = static_cast<char>(SolutionCache::FormatVersion + 1);
  EXPECT_FALSE(SolutionCache::deserialize(Skewed, Out));

  EXPECT_FALSE(SolutionCache::deserialize(Bytes + "extra", Out));
}

//===----------------------------------------------------------------------===//
// Tiers
//===----------------------------------------------------------------------===//

TEST(CacheTierTest, MemoryTierHitsAndEvictsFifo) {
  SolutionCache Cache("", /*MemCapacity=*/2);
  CachedAnalysis E = sampleEntry(), Out;

  EXPECT_EQ(Cache.lookup(keyOf(1, 1), Out), SolutionCache::Outcome::Miss);
  Cache.store(keyOf(1, 1), E);
  Cache.store(keyOf(2, 2), E);
  EXPECT_EQ(Cache.lookup(keyOf(1, 1), Out), SolutionCache::Outcome::Hit);
  EXPECT_EQ(Out.OutText, E.OutText);

  // Third insert evicts the FIFO head (key 1); no disk tier backs it up.
  Cache.store(keyOf(3, 3), E);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_EQ(Cache.lookup(keyOf(1, 1), Out), SolutionCache::Outcome::Miss);
  EXPECT_EQ(Cache.lookup(keyOf(2, 2), Out), SolutionCache::Outcome::Hit);
  EXPECT_EQ(Cache.lookup(keyOf(3, 3), Out), SolutionCache::Outcome::Hit);
  EXPECT_EQ(Cache.hits(), 3u);
  EXPECT_EQ(Cache.misses(), 2u);
}

TEST(CacheTierTest, DiskTierSharedAcrossInstances) {
  std::string Dir = scratchDir("disk");
  CachedAnalysis E = sampleEntry(), Out;
  {
    SolutionCache Writer(Dir);
    Writer.store(keyOf(7, 7), E);
    ASSERT_TRUE(fs::exists(fs::path(Dir) / (keyOf(7, 7).hex() + ".gsc")));
  }
  SolutionCache Reader(Dir);
  EXPECT_EQ(Reader.lookup(keyOf(7, 7), Out), SolutionCache::Outcome::Hit);
  EXPECT_EQ(Out.OutText, E.OutText);
  EXPECT_EQ(Out.ExitCode, E.ExitCode);
  fs::remove_all(Dir);
}

TEST(CacheTierTest, PoisonedDiskEntriesDegradeToMiss) {
  std::string Dir = scratchDir("poison");
  CachedAnalysis E = sampleEntry(), Out;
  SolutionCache Writer(Dir);
  Writer.store(keyOf(9, 9), E);

  fs::path File = fs::path(Dir) / (keyOf(9, 9).hex() + ".gsc");
  std::string Bytes;
  {
    std::ifstream In(File, std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    Bytes = SS.str();
  }
  ASSERT_FALSE(Bytes.empty());

  auto Rewrite = [&](const std::string &Content) {
    std::ofstream OutF(File, std::ios::binary | std::ios::trunc);
    OutF.write(Content.data(), static_cast<std::streamsize>(Content.size()));
  };

  // Truncated, bit-flipped, version-skewed, empty: each reads as Corrupt
  // (a counted miss), never throws, never yields a bogus entry.
  std::string Truncated = Bytes.substr(0, Bytes.size() / 2);
  std::string Flipped = Bytes;
  Flipped[Flipped.size() / 2] =
      static_cast<char>(Flipped[Flipped.size() / 2] ^ 0x01);
  std::string Skewed = Bytes;
  Skewed[4] = static_cast<char>(SolutionCache::FormatVersion + 1);
  for (const std::string &Poison :
       {Truncated, Flipped, Skewed, std::string()}) {
    Rewrite(Poison);
    SolutionCache Reader(Dir); // fresh instance: no memory-tier copy
    EXPECT_EQ(Reader.lookup(keyOf(9, 9), Out), SolutionCache::Outcome::Corrupt);
    EXPECT_EQ(Reader.corruptEntries(), 1u);
    EXPECT_EQ(Reader.misses(), 1u);
    EXPECT_EQ(Reader.hits(), 0u);
  }
  fs::remove_all(Dir);
}

TEST(CacheTierTest, MetricsExportCounters) {
  SolutionCache Cache("", 2);
  CachedAnalysis E = sampleEntry(), Out;
  Cache.lookup(keyOf(1, 1), Out);
  Cache.store(keyOf(1, 1), E);
  Cache.lookup(keyOf(1, 1), Out);

  support::MetricsRegistry Metrics;
  Cache.recordMetrics(Metrics);
  std::ostringstream Text;
  Metrics.writePrometheus(Text);
  EXPECT_NE(Text.str().find("gator_cache_hits_total 1"), std::string::npos)
      << Text.str();
  EXPECT_NE(Text.str().find("gator_cache_misses_total 1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, AppDirHashTracksContent) {
  std::string Base = std::string(GATOR_SOURCE_DIR) +
                     "/tests/fixtures/incremental_base";
  std::string Edit = std::string(GATOR_SOURCE_DIR) +
                     "/tests/fixtures/incremental_edit";
  support::Hash128 A = hashAppDir(Base);
  support::Hash128 B = hashAppDir(Base);
  support::Hash128 C = hashAppDir(Edit);
  EXPECT_EQ(A.hex(), B.hex());
  EXPECT_NE(A.hex(), C.hex());
}

TEST(CacheKeyTest, OptionsHashTracksSemanticKnobsOnly) {
  AnalysisOptions Base;
  support::Hash128 H0 = hashAnalysisOptions(Base);

  AnalysisOptions Semantic = Base;
  Semantic.TrackViewIds = false;
  EXPECT_NE(H0.hex(), hashAnalysisOptions(Semantic).hex());

  AnalysisOptions Budgeted = Base;
  Budgeted.Budget.MaxWorkItems = 1000;
  EXPECT_NE(H0.hex(), hashAnalysisOptions(Budgeted).hex());

  // Scheduling knobs change how the batch runs, not what it computes.
  AnalysisOptions Jobs = Base;
  Jobs.Jobs = 8;
  EXPECT_EQ(H0.hex(), hashAnalysisOptions(Jobs).hex());
}

TEST(CacheKeyTest, AppSpecHashTracksEveryKnob) {
  corpus::AppSpec A;
  A.Name = "App";
  corpus::AppSpec B = A;
  EXPECT_EQ(corpus::hashAppSpec(A).hex(), corpus::hashAppSpec(B).hex());
  B.Seed += 1;
  EXPECT_NE(corpus::hashAppSpec(A).hex(), corpus::hashAppSpec(B).hex());
  corpus::AppSpec C = A;
  C.DynamicFindsPerActivity = 1;
  EXPECT_NE(corpus::hashAppSpec(A).hex(), corpus::hashAppSpec(C).hex());
  corpus::AppSpec D = A;
  D.UseFlipper = !D.UseFlipper;
  EXPECT_NE(corpus::hashAppSpec(A).hex(), corpus::hashAppSpec(D).hex());
}

TEST(CacheKeyTest, EligibilityExcludesTimingDependentRuns) {
  AnalysisOptions Base;
  EXPECT_TRUE(cacheEligible(Base));

  AnalysisOptions Wall = Base;
  Wall.Budget.MaxWallSeconds = 5.0;
  EXPECT_FALSE(cacheEligible(Wall));

  AnalysisOptions Deadline = Base;
  Deadline.Budget.SharedDeadline = std::chrono::steady_clock::now();
  EXPECT_FALSE(cacheEligible(Deadline));

  std::atomic<bool> Cancel{false};
  AnalysisOptions Cancellable = Base;
  Cancellable.Budget.CancelFlag = &Cancel;
  EXPECT_FALSE(cacheEligible(Cancellable));

  // Deterministic work budgets stay eligible: they are part of the key.
  AnalysisOptions Work = Base;
  Work.Budget.MaxWorkItems = 10;
  EXPECT_TRUE(cacheEligible(Work));
}

//===----------------------------------------------------------------------===//
// Batch integration: warm runs replay cold results at every job count
//===----------------------------------------------------------------------===//

TEST(CacheBatchTest, WarmSweepReplaysColdResultsAtEveryJobCount) {
  corpus::FleetSpec Fleet;
  Fleet.Apps = 12;
  Fleet.Seed = 7;
  std::vector<corpus::AppSpec> Specs = corpus::makeFleet(Fleet);

  AnalysisOptions Options;
  Options.Jobs = 1;
  SolutionCache Cache;

  auto Cold = corpus::analyzeCorpus(Specs, Options, nullptr,
                                    /*KeepArtifacts=*/false, &Cache);
  ASSERT_EQ(Cold.size(), Specs.size());
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), Specs.size());

  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    AnalysisOptions WarmOptions = Options;
    WarmOptions.Jobs = Jobs;
    uint64_t HitsBefore = Cache.hits();
    auto Warm = corpus::analyzeCorpus(Specs, WarmOptions, nullptr,
                                      /*KeepArtifacts=*/false, &Cache);
    ASSERT_EQ(Warm.size(), Cold.size());
    EXPECT_EQ(Cache.hits() - HitsBefore, Specs.size()) << "-j " << Jobs;
    for (size_t I = 0; I < Warm.size(); ++I) {
      EXPECT_EQ(Warm[I].Name, Cold[I].Name);
      EXPECT_EQ(Warm[I].Stats.Name, Cold[I].Stats.Name);
      EXPECT_EQ(Warm[I].Stats.SolutionFidelity, Cold[I].Stats.SolutionFidelity);
      EXPECT_EQ(Warm[I].Stats.GraphNodes, Cold[I].Stats.GraphNodes);
      EXPECT_EQ(Warm[I].Stats.FlowEdges, Cold[I].Stats.FlowEdges);
      EXPECT_EQ(Warm[I].Stats.UnknownViews, Cold[I].Stats.UnknownViews);
      EXPECT_DOUBLE_EQ(Warm[I].Metrics.AvgReceivers,
                       Cold[I].Metrics.AvgReceivers);
      EXPECT_DOUBLE_EQ(Warm[I].BuildSeconds, Cold[I].BuildSeconds);
      EXPECT_DOUBLE_EQ(Warm[I].SolveSeconds, Cold[I].SolveSeconds);
      EXPECT_EQ(Warm[I].Result, nullptr);
    }
  }
}

TEST(CacheBatchTest, KeepArtifactsBypassesCache) {
  corpus::FleetSpec Fleet;
  Fleet.Apps = 3;
  std::vector<corpus::AppSpec> Specs = corpus::makeFleet(Fleet);
  AnalysisOptions Options;
  SolutionCache Cache;
  auto R = corpus::analyzeCorpus(Specs, Options, nullptr,
                                 /*KeepArtifacts=*/true, &Cache);
  ASSERT_EQ(R.size(), Specs.size());
  // Artifacts were requested, so the cache saw no traffic at all.
  EXPECT_EQ(Cache.hits() + Cache.misses(), 0u);
  for (const auto &App : R)
    EXPECT_NE(App.Result, nullptr);
}

//===----------------------------------------------------------------------===//
// makeFleet hostile-knob independence (regression for the hoisted draws)
//===----------------------------------------------------------------------===//

TEST(FleetHostileTest, HostileKnobsNeverPerturbShapeOrEachOther) {
  corpus::FleetSpec Clean;
  Clean.Apps = 200;
  Clean.Seed = 11;

  corpus::FleetSpec DynamicOnly = Clean;
  DynamicOnly.DynamicIdPercent = 50;

  corpus::FleetSpec AllHostile = Clean;
  AllHostile.ReflectivePercent = 50;
  AllHostile.DynamicIdPercent = 50;
  AllHostile.MissingLayoutPercent = 50;

  auto CleanSpecs = corpus::makeFleet(Clean);
  auto DynSpecs = corpus::makeFleet(DynamicOnly);
  auto AllSpecs = corpus::makeFleet(AllHostile);
  ASSERT_EQ(CleanSpecs.size(), DynSpecs.size());
  ASSERT_EQ(CleanSpecs.size(), AllSpecs.size());

  size_t DynApps = 0;
  for (size_t I = 0; I < CleanSpecs.size(); ++I) {
    // Shape fields are identical across all three fleets: hostile rates
    // draw from their own stream.
    auto ShapeKey = [](corpus::AppSpec S) {
      S.ReflectiveViewsPerActivity = 0;
      S.DynamicFindsPerActivity = 0;
      S.MissingLayoutRefsPerActivity = 0;
      return corpus::hashAppSpec(S).hex();
    };
    EXPECT_EQ(ShapeKey(CleanSpecs[I]), ShapeKey(DynSpecs[I])) << I;
    EXPECT_EQ(ShapeKey(CleanSpecs[I]), ShapeKey(AllSpecs[I])) << I;

    // A clean fleet draws no hostile shapes at all.
    EXPECT_EQ(CleanSpecs[I].ReflectiveViewsPerActivity, 0u);
    EXPECT_EQ(CleanSpecs[I].DynamicFindsPerActivity, 0u);
    EXPECT_EQ(CleanSpecs[I].MissingLayoutRefsPerActivity, 0u);

    // Enabling the other hostile rates must not re-roll the dynamic-id
    // draw: the same apps carry the same dynamic-find counts.
    EXPECT_EQ(DynSpecs[I].DynamicFindsPerActivity,
              AllSpecs[I].DynamicFindsPerActivity)
        << I;
    EXPECT_EQ(DynSpecs[I].ReflectiveViewsPerActivity, 0u);
    EXPECT_EQ(DynSpecs[I].MissingLayoutRefsPerActivity, 0u);
    DynApps += DynSpecs[I].DynamicFindsPerActivity > 0;
  }
  // ~50% of 200 apps should have drawn the shape; allow generous slack.
  EXPECT_GT(DynApps, 60u);
  EXPECT_LT(DynApps, 140u);
}

} // namespace
