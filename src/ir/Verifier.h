//===- Verifier.h - ALite IR well-formedness checks -------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks over a resolved Program. Errors are conditions the
/// analysis cannot tolerate (dangling variable indices, unknown classes in
/// `new`); unresolvable fields/methods are warnings because the analysis
/// treats them conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_IR_VERIFIER_H
#define GATOR_IR_VERIFIER_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

namespace gator {
namespace ir {

/// Verifies \p P, reporting problems to \p Diags. Returns true when no
/// errors (warnings allowed) were found. Requires P.resolve() to have run.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

/// Verifies one method body.
bool verifyMethod(const Program &P, const MethodDecl &M,
                  DiagnosticEngine &Diags);

} // namespace ir
} // namespace gator

#endif // GATOR_IR_VERIFIER_H
