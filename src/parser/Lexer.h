//===- Lexer.h - ALite token stream -----------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual ALite syntax. See parser/Parser.h for the
/// grammar. Resource references are lexed as single tokens:
/// `@layout/name` and `@id/name` (the concrete spellings of the paper's
/// `x := R.layout.f` / `x := R.id.f` statement forms).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_PARSER_LEXER_H
#define GATOR_PARSER_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace gator {
namespace parser {

enum class TokenKind {
  // Literals and names.
  Identifier,   ///< e.g. `flip`, `ConsoleActivity`
  LayoutRef,    ///< `@layout/name` (text() is the name)
  IdRef,        ///< `@id/name` (text() is the name)

  // Keywords.
  KwClass,
  KwInterface,
  KwExtends,
  KwImplements,
  KwField,
  KwMethod,
  KwVar,
  KwReturn,
  KwNew,
  KwNull,
  KwStatic,
  KwClassof,
  KwPlatform,

  // Punctuation.
  LBrace,       ///< {
  RBrace,       ///< }
  LParen,       ///< (
  RParen,       ///< )
  Colon,        ///< :
  Semicolon,    ///< ;
  Comma,        ///< ,
  Dot,          ///< .
  Assign,       ///< :=

  EndOfFile,
  Error,
};

/// Returns a printable name for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text; ///< Identifier spelling or resource name.
  SourceLocation Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Produces the token stream for one ALite source buffer. `//` comments
/// run to end of line; `/* */` comments nest one level deep (no nesting).
class Lexer {
public:
  Lexer(std::string_view Input, std::string FileName, DiagnosticEngine &Diags);

  /// Lexes the whole input. The final token is always EndOfFile.
  std::vector<Token> lexAll();

private:
  Token next();
  Token makeToken(TokenKind Kind, std::string Text, SourceLocation Loc) const;

  bool atEnd() const { return Pos >= Input.size(); }
  char peek() const { return atEnd() ? '\0' : Input[Pos]; }
  char peekAt(size_t Offset) const {
    return Pos + Offset >= Input.size() ? '\0' : Input[Pos + Offset];
  }
  char advance();
  void skipTrivia();
  SourceLocation here() const { return SourceLocation(FileName, Line, Col); }

  std::string_view Input;
  std::string FileName;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace parser
} // namespace gator

#endif // GATOR_PARSER_LEXER_H
