//===- GraphBuilder.h - Constraint graph construction -----------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of Section 4.3: "the analysis creates the constraint graph edges
/// that can be directly inferred from program statements". All application
/// methods are considered executable; polymorphic calls are resolved with
/// class-hierarchy information; calls to application methods contribute
/// parameter/return edges; occurrences of Android APIs become operation
/// nodes; activity lifecycle callbacks seed activity nodes into `this`
/// variables.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_GRAPHBUILDER_H
#define GATOR_ANALYSIS_GRAPHBUILDER_H

#include "analysis/Options.h"
#include "analysis/Solution.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "hier/ClassHierarchy.h"
#include "layout/Layout.h"

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gator {
namespace support {
class TraceSink;
} // namespace support

namespace analysis {

/// Builds the statement-derived part of the constraint graph.
class GraphBuilder {
public:
  /// \p Layouts is mutable because view ids referenced only from code
  /// (e.g. used with setId on programmatic views) are interned on demand.
  GraphBuilder(const ir::Program &P, layout::LayoutRegistry &Layouts,
               const android::AndroidModel &AM,
               const hier::ClassHierarchy &CH, DiagnosticEngine &Diags)
      : P(P), Layouts(Layouts), AM(AM), CH(CH), Diags(Diags) {}

  /// Populates \p G and \p Ops. Returns false on (non-fatal) errors.
  bool build(graph::ConstraintGraph &G, std::vector<OpSite> &Ops);

  /// Attaches a span sink for build sub-phases (docs/OBSERVABILITY.md);
  /// null disables tracing. Must outlive build().
  void setTrace(support::TraceSink *Sink) { Trace = Sink; }

  /// Enables/disables unknown-source modeling (docs/ROBUSTNESS.md): when on,
  /// reflective construction, non-constant ids, and missing layout resources
  /// become tagged UnknownView/UnknownId nodes instead of dropped facts.
  void setModelUnknownSources(bool On) { ModelUnknown = On; }

  //===--------------------------------------------------------------------===//
  // Edit-scale rebuild support (docs/INCREMENTAL.md)
  //===--------------------------------------------------------------------===//

  /// build() composes exactly these three passes; an incremental session
  /// drives them one unit at a time against an edge journal.
  void buildResources(graph::ConstraintGraph &G) { buildResourceNodes(G); }
  void buildActivities(graph::ConstraintGraph &G) { buildActivityNodes(G); }
  void buildOneMethod(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                      const ir::MethodDecl &M) {
    buildMethod(G, Ops, M);
  }

  /// When set, every flow edge this builder newly adds is appended to
  /// \p J — the EDB footprint an edit-scale retraction later removes.
  void setEdgeJournal(std::vector<std::pair<graph::NodeId, graph::NodeId>> *J) {
    Journal = J;
  }

  /// When set, buildOpSite offers each new site (roles resolved, OpNode
  /// not yet minted) to this callback, which may return the index of a
  /// resurrectable dead op with the same kind and roles; the site then
  /// reuses that slot and its OpNode, keeping op indices stable as memo
  /// keys. Return ~0u to mint fresh.
  using OpReuseFn = std::function<uint32_t(const OpSite &)>;
  void setOpReuse(OpReuseFn Fn) { OpReuse = std::move(Fn); }

private:
  void buildResourceNodes(graph::ConstraintGraph &G);
  void buildActivityNodes(graph::ConstraintGraph &G);
  void buildMethod(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M);
  void buildInvoke(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M, const ir::Stmt &S);
  void buildOpSite(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M, const ir::Stmt &S,
                   const android::OpSpec &Spec);
  void buildCallEdges(graph::ConstraintGraph &G, const ir::MethodDecl &M,
                      const ir::Stmt &S,
                      const std::vector<const ir::MethodDecl *> &Targets);

  /// Program::findClass memoized by the *address* of the queried name —
  /// every caller passes a string stored in the IR (Stmt::ClassName,
  /// Variable::TypeName), stable for the builder's lifetime, so a pointer
  /// hash replaces a string hash on the per-statement hot path. Negative
  /// lookups are cached too.
  const ir::ClassDecl *findClassCached(const std::string &Name);

  /// All builder-contributed flow edges funnel through here so the edit
  /// journal sees exactly the EDB this builder *contributes* — including
  /// re-adds of edges already present. An edit-scale rebuild runs against
  /// a graph that still holds the old body's edges; an identical
  /// contribution (say, the shared common-id edge into a same-named
  /// local) dedups in the graph but must still land in the footprint, or
  /// the diff would count it as removed and retract live facts.
  void addFlow(graph::ConstraintGraph &G, graph::NodeId From,
               graph::NodeId To) {
    G.addFlowEdge(From, To);
    if (Journal)
      Journal->emplace_back(From, To);
  }

  const ir::Program &P;
  layout::LayoutRegistry &Layouts;
  const android::AndroidModel &AM;
  const hier::ClassHierarchy &CH;
  DiagnosticEngine &Diags;

  std::unordered_map<const std::string *, const ir::ClassDecl *> ClassCache;

  support::TraceSink *Trace = nullptr;
  bool ModelUnknown = true;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> *Journal = nullptr;
  OpReuseFn OpReuse;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_GRAPHBUILDER_H
