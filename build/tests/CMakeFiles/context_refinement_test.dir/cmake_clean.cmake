file(REMOVE_RECURSE
  "CMakeFiles/context_refinement_test.dir/context_refinement_test.cpp.o"
  "CMakeFiles/context_refinement_test.dir/context_refinement_test.cpp.o.d"
  "context_refinement_test"
  "context_refinement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
