# Empty compiler generated dependencies file for alite_fmt.
# This may be replaced when dependencies are built.
