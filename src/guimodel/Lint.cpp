//===- Lint.cpp - Static GUI error checking ---------------------*- C++ -*-===//

#include "guimodel/Lint.h"

#include <unordered_set>

using namespace gator;
using namespace gator::guimodel;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;
using namespace gator::ir;

const char *gator::guimodel::lintKindName(LintKind Kind) {
  switch (Kind) {
  case LintKind::UnresolvedFind:
    return "unresolved-find";
  case LintKind::BadCast:
    return "bad-cast";
  case LintKind::DeadListener:
    return "dead-listener";
  case LintKind::OrphanView:
    return "orphan-view";
  case LintKind::UnusedLayout:
    return "unused-layout";
  case LintKind::UnusedViewId:
    return "unused-view-id";
  }
  return "unknown";
}

std::vector<LintFinding>
gator::guimodel::runLint(const AnalysisResult &Result,
                         const layout::LayoutRegistry &Layouts) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;
  const ir::Program &P = Sol.androidModel().program();
  std::vector<LintFinding> Findings;

  auto report = [&](LintKind Kind, SourceLocation Loc, std::string Message) {
    Findings.push_back(LintFinding{Kind, std::move(Loc), std::move(Message)});
  };

  //===------------------------------------------------------------------===//
  // Find-view checks: unresolved lookups and guaranteed-bad casts.
  //===------------------------------------------------------------------===//

  for (const OpSite &Op : Sol.ops()) {
    bool IsFind = Op.Spec.Kind == OpKind::FindView1 ||
                  Op.Spec.Kind == OpKind::FindView2 ||
                  Op.Spec.Kind == OpKind::FindView3;
    if (!IsFind || Op.Out == InvalidNode)
      continue;
    if (Sol.valuesAt(Op.Recv).empty())
      continue; // the call itself is unreached; nothing to diagnose

    std::vector<NodeId> Results =
        Sol.resultsOf(Op, Result.Options.TrackViewIds,
                      Result.Options.TrackHierarchy,
                      Result.Options.FindView3ChildOnly);
    SourceLocation Loc = G.node(Op.OpNode).Loc;

    if (Results.empty()) {
      report(LintKind::UnresolvedFind, Loc,
             std::string(opKindName(Op.Spec.Kind)) + " in " +
                 Op.Method->qualifiedName() +
                 " never resolves to any view (wrong id, or the view is "
                 "never attached)");
      continue;
    }

    // Destination type compatibility.
    const Node &OutNode = G.node(Op.Out);
    if (OutNode.Kind != NodeKind::Var)
      continue;
    const std::string &DeclName =
        OutNode.Method->var(OutNode.Var).TypeName;
    if (DeclName.empty() || isPrimitiveTypeName(DeclName))
      continue;
    const ClassDecl *DeclType = P.findClass(DeclName);
    if (!DeclType || DeclType->name() == ObjectClassName)
      continue;
    bool AnyCompatible = false;
    for (NodeId V : Results) {
      const ClassDecl *VC = G.node(V).Klass;
      if (!VC || P.isSubtypeOf(VC, DeclType) || P.isSubtypeOf(DeclType, VC))
        AnyCompatible = true;
    }
    if (!AnyCompatible)
      report(LintKind::BadCast, Loc,
             "every view this " + std::string(opKindName(Op.Spec.Kind)) +
                 " resolves to is incompatible with declared type '" +
                 DeclName + "' in " + Op.Method->qualifiedName());
  }

  //===------------------------------------------------------------------===//
  // Dead listeners: allocated, never associated with any view.
  //===------------------------------------------------------------------===//

  std::unordered_set<NodeId> AssociatedListeners;
  std::unordered_set<NodeId> AttachedViews;
  for (NodeId V = 0; V < G.size(); ++V) {
    if (isViewNodeKind(G.node(V).Kind)) {
      for (NodeId L : G.listeners(V))
        AssociatedListeners.insert(L);
      for (NodeId C : G.children(V))
        AttachedViews.insert(C);
    } else {
      for (NodeId R : G.roots(V))
        AttachedViews.insert(R);
    }
  }

  const AndroidModel &AM = Sol.androidModel();
  for (NodeId A : G.nodesOfKind(NodeKind::Alloc)) {
    const ClassDecl *C = G.node(A).Klass;
    if (!C || !AM.isListenerClass(C))
      continue;
    if (!AssociatedListeners.count(A))
      report(LintKind::DeadListener, G.node(A).Loc,
             "listener '" + C->name() +
                 "' allocated but never registered on any view");
  }

  //===------------------------------------------------------------------===//
  // Orphan views: allocated, never attached, never a window root.
  //===------------------------------------------------------------------===//

  for (NodeId V : G.nodesOfKind(NodeKind::ViewAlloc)) {
    if (AttachedViews.count(V))
      continue;
    report(LintKind::OrphanView, G.node(V).Loc,
           "view '" + G.node(V).Klass->name() +
               "' allocated but never attached to any hierarchy");
  }

  //===------------------------------------------------------------------===//
  // Unused layouts and view ids.
  //===------------------------------------------------------------------===//

  std::unordered_set<NodeId> InflatedLayoutIds;
  std::unordered_set<NodeId> UsedViewIds;
  for (const OpSite &Op : Sol.ops()) {
    if (Op.Spec.Kind == OpKind::Inflate1 ||
        Op.Spec.Kind == OpKind::Inflate2) {
      for (NodeId V : Sol.valuesAt(Op.IdArg))
        if (G.node(V).Kind == NodeKind::LayoutId)
          InflatedLayoutIds.insert(V);
    }
    if (Op.IdArg != InvalidNode)
      for (NodeId V : Sol.valuesAt(Op.IdArg))
        if (G.node(V).Kind == NodeKind::ViewId)
          UsedViewIds.insert(V);
  }

  const layout::ResourceTable &Res = Layouts.resources();
  for (const auto &Def : Layouts.layouts()) {
    NodeId IdNode = InvalidNode;
    for (NodeId N : G.nodesOfKind(NodeKind::LayoutId))
      if (G.node(N).Res == Def->id())
        IdNode = N;
    if (Layouts.includedLayouts().count(Def->name()))
      continue; // consumed through <include>
    if (IdNode == InvalidNode || !InflatedLayoutIds.count(IdNode))
      report(LintKind::UnusedLayout, SourceLocation(),
             "layout '" + Def->name() + "' is never inflated");
  }

  for (NodeId N : G.nodesOfKind(NodeKind::ViewId)) {
    if (UsedViewIds.count(N))
      continue;
    // Also used when code merely references it (flow successors exist).
    if (!G.flowSuccessors(N).empty())
      continue;
    auto Name = Res.viewIdName(G.node(N).Res);
    report(LintKind::UnusedViewId, SourceLocation(),
           "view id '" + (Name ? *Name : std::string("?")) +
               "' is declared but never used by any operation");
  }

  return Findings;
}

void gator::guimodel::printLintFindings(
    std::ostream &OS, const std::vector<LintFinding> &Findings) {
  for (const LintFinding &F : Findings) {
    if (F.Loc.isValid())
      OS << F.Loc << ": ";
    OS << lintKindName(F.Kind) << ": " << F.Message << '\n';
  }
  if (Findings.empty())
    OS << "no findings\n";
}
