//===- observability_test.cpp - Telemetry subsystem tests -------*- C++ -*-===//
//
// Tests for docs/OBSERVABILITY.md: the trace sink and its ordered merge,
// the metrics registry (merge policies, export formats, --no-times
// suppression), fact provenance in both solver engines, the max-merge
// semantics of peak counters in aggregateAppStats, and the JSON
// diagnostics printer.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "analysis/AppStats.h"
#include "analysis/PhasedSolver.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::support;
using namespace gator::test;

namespace {

//===----------------------------------------------------------------------===//
// TraceSink / TraceSpan
//===----------------------------------------------------------------------===//

TEST(TraceTest, SinkRecordsSpansCountersAndInstants) {
  TraceSink Sink;
  {
    TraceSpan Span(&Sink, "phase");
    Span.arg("items", 42);
  }
  Sink.counter("worklist", 7);
  Sink.instant("round");
  ASSERT_EQ(Sink.eventCount(), 3u);

  const TraceSink::Event &Span = Sink.events()[0];
  EXPECT_EQ(Span.Name, "phase");
  EXPECT_EQ(Span.Ph, 'X');
  ASSERT_EQ(Span.Args.size(), 1u);
  EXPECT_EQ(Span.Args[0].first, "items");
  EXPECT_EQ(Span.Args[0].second, 42u);

  EXPECT_EQ(Sink.events()[1].Ph, 'C');
  EXPECT_EQ(Sink.events()[2].Ph, 'i');
}

TEST(TraceTest, SpanIsNoopWithoutSink) {
  TraceSpan Span(nullptr, "nothing");
  Span.arg("ignored", 1); // must not crash
}

TEST(TraceTest, WriteJsonEmitsChromeTraceFields) {
  TraceSink Sink;
  { TraceSpan Span(&Sink, "solve"); }
  Sink.instant("tick");
  std::ostringstream OS;
  Sink.writeJson(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(Json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(Json.find("\"tid\":"), std::string::npos);
}

TEST(TraceTest, AppendMergesInOrderAndRetagsTid) {
  TraceSink Merged;
  TraceSink A, B;
  A.instant("a1");
  A.instant("a2");
  B.instant("b1");
  Merged.append(std::move(A), 1);
  Merged.append(std::move(B), 2);
  ASSERT_EQ(Merged.eventCount(), 3u);
  EXPECT_EQ(Merged.events()[0].Name, "a1");
  EXPECT_EQ(Merged.events()[0].Tid, 1u);
  EXPECT_EQ(Merged.events()[1].Name, "a2");
  EXPECT_EQ(Merged.events()[1].Tid, 1u);
  EXPECT_EQ(Merged.events()[2].Name, "b1");
  EXPECT_EQ(Merged.events()[2].Tid, 2u);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CountersAddAndGaugesFollowMergePolicy) {
  MetricsRegistry A, B;
  A.counter("apps_total", "apps").add(2);
  B.counter("apps_total", "apps").add(3);
  A.gauge("peak", "peak", Gauge::Merge::Max).setMax(10);
  B.gauge("peak", "peak", Gauge::Merge::Max).setMax(4);
  A.gauge("seconds", "t", Gauge::Merge::Sum).add(1.5);
  B.gauge("seconds", "t", Gauge::Merge::Sum).add(2.5);
  A.gauge("last", "l", Gauge::Merge::Last).set(1);
  B.gauge("last", "l", Gauge::Merge::Last).set(9);

  A.mergeFrom(B);
  EXPECT_EQ(A.counter("apps_total", "apps").value(), 5u);
  EXPECT_EQ(A.gauge("peak", "peak", Gauge::Merge::Max).value(), 10.0);
  EXPECT_EQ(A.gauge("seconds", "t", Gauge::Merge::Sum).value(), 4.0);
  EXPECT_EQ(A.gauge("last", "l", Gauge::Merge::Last).value(), 9.0);
}

TEST(MetricsTest, LabeledCountersAreDistinctInstruments) {
  MetricsRegistry M;
  M.counter("ops_total", "ops", MetricUnit::None, "kind", "Inflate1").add(1);
  M.counter("ops_total", "ops", MetricUnit::None, "kind", "FindView1").add(2);
  EXPECT_EQ(M.instrumentCount(), 2u);
  EXPECT_EQ(
      M.counter("ops_total", "ops", MetricUnit::None, "kind", "FindView1")
          .value(),
      2u);
}

TEST(MetricsTest, HistogramBucketsObserveAndMerge) {
  MetricsRegistry A, B;
  Histogram &HA = A.histogram("sizes", "set sizes", {1, 4, 16});
  HA.observe(1);  // bucket le=1
  HA.observe(3);  // bucket le=4
  HA.observe(99); // overflow (+Inf)
  Histogram &HB = B.histogram("sizes", "set sizes", {1, 4, 16});
  HB.observe(4); // bucket le=4

  A.mergeFrom(B);
  ASSERT_EQ(HA.bucketCounts().size(), 4u);
  EXPECT_EQ(HA.bucketCounts()[0], 1u);
  EXPECT_EQ(HA.bucketCounts()[1], 2u);
  EXPECT_EQ(HA.bucketCounts()[2], 0u);
  EXPECT_EQ(HA.bucketCounts()[3], 1u);
  EXPECT_EQ(HA.count(), 4u);
  EXPECT_EQ(HA.sum(), 1u + 3u + 99u + 4u);
}

TEST(MetricsTest, NoTimesSuppressesSecondsInstruments) {
  MetricsRegistry M;
  M.counter("apps_total", "apps").inc();
  M.gauge("phase_solve_seconds", "solve time", Gauge::Merge::Sum,
          MetricUnit::Seconds)
      .add(1.25);

  std::ostringstream WithTimes, NoTimes;
  M.writeJson(WithTimes, /*IncludeTimes=*/true);
  M.writeJson(NoTimes, /*IncludeTimes=*/false);
  EXPECT_NE(WithTimes.str().find("phase_solve_seconds"), std::string::npos);
  EXPECT_EQ(NoTimes.str().find("phase_solve_seconds"), std::string::npos);
  EXPECT_NE(NoTimes.str().find("apps_total"), std::string::npos);

  std::ostringstream Prom;
  M.writePrometheus(Prom, /*IncludeTimes=*/false);
  EXPECT_EQ(Prom.str().find("phase_solve_seconds"), std::string::npos);
}

TEST(MetricsTest, PrometheusExportIsWellFormed) {
  MetricsRegistry M;
  M.counter("ops_total", "op firings", MetricUnit::None, "kind", "Inflate1")
      .add(3);
  Histogram &H = M.histogram("sizes", "set sizes", {1, 4});
  H.observe(1);
  H.observe(2);
  H.observe(9);

  std::ostringstream OS;
  M.writePrometheus(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("# HELP ops_total op firings"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(Text.find("ops_total{kind=\"Inflate1\"} 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE sizes histogram"), std::string::npos);
  // Buckets are cumulative on export: le="4" counts the le="1" bucket too.
  EXPECT_NE(Text.find("sizes_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(Text.find("sizes_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(Text.find("sizes_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(Text.find("sizes_count 3"), std::string::npos);
}

/// Pins the full rendered text of a histogram export, quantile series
/// included — the exposition-format conformance contract for
/// gator_flowset_size and friends (docs/OBSERVABILITY.md): cumulative
/// _bucket series ending at +Inf, _sum/_count, then derived _p50/_p90/_p99
/// gauges interpolated from the fixed buckets.
TEST(MetricsTest, PrometheusHistogramQuantileSeriesPinned) {
  MetricsRegistry M;
  Histogram &H =
      M.histogram("gator_flowset_size", "flow-set sizes", {1, 4, 16});
  H.observe(1);
  H.observe(2);
  H.observe(3);
  H.observe(9);

  std::ostringstream OS;
  M.writePrometheus(OS);
  EXPECT_EQ(OS.str(),
            "# HELP gator_flowset_size flow-set sizes\n"
            "# TYPE gator_flowset_size histogram\n"
            "gator_flowset_size_bucket{le=\"1\"} 1\n"
            "gator_flowset_size_bucket{le=\"4\"} 3\n"
            "gator_flowset_size_bucket{le=\"16\"} 4\n"
            "gator_flowset_size_bucket{le=\"+Inf\"} 4\n"
            "gator_flowset_size_sum 15\n"
            "gator_flowset_size_count 4\n"
            "# HELP gator_flowset_size_p50 flow-set sizes "
            "(quantile estimate from fixed buckets)\n"
            "# TYPE gator_flowset_size_p50 gauge\n"
            "gator_flowset_size_p50 2.500000\n"
            "# HELP gator_flowset_size_p90 flow-set sizes "
            "(quantile estimate from fixed buckets)\n"
            "# TYPE gator_flowset_size_p90 gauge\n"
            "gator_flowset_size_p90 11.200000\n"
            "# HELP gator_flowset_size_p99 flow-set sizes "
            "(quantile estimate from fixed buckets)\n"
            "# TYPE gator_flowset_size_p99 gauge\n"
            "gator_flowset_size_p99 15.520000\n");

  // An idle histogram exports no quantile series — its document keeps the
  // historical shape.
  MetricsRegistry Idle;
  Idle.histogram("gator_flowset_size", "flow-set sizes", {1, 4, 16});
  std::ostringstream IdleOS;
  Idle.writePrometheus(IdleOS);
  EXPECT_EQ(IdleOS.str().find("_p50"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Provenance
//===----------------------------------------------------------------------===//

const char *ProvLayout = R"(
<LinearLayout android:id="@+id/root">
  <Button android:id="@+id/ok" />
</LinearLayout>
)";

const char *ProvSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/ok;
    b := this.findViewById(bid);
  }
}
)";

/// The derivation of `b`'s FindView fact must bottom out in seeds, with
/// the view's minted self-flow among the premises.
void expectFindViewDerivation(corpus::AppBundle &App, AnalysisResult &R) {
  ASSERT_NE(R.Provenance, nullptr);
  EXPECT_GT(R.Provenance->factCount(), 0u);
  EXPECT_GE(R.Provenance->maxDepth(), 2u);

  NodeId B = varNode(App, R, "A", "onCreate", 0, "b");
  ASSERT_EQ(R.Sol->valuesAt(B).size(), 1u);
  NodeId View = *R.Sol->valuesAt(B).begin();

  ProvenanceRecorder::FactId F = R.Provenance->flowFact(B, View);
  ASSERT_NE(F, ProvenanceRecorder::NoFact);
  const ProvenanceRecorder::Derivation &D = R.Provenance->derivation(F);
  EXPECT_EQ(D.Rule, DerivRule::FindView);
  ASSERT_NE(D.Premises[0], ProvenanceRecorder::NoFact);
  const ProvenanceRecorder::Fact &P0 = R.Provenance->fact(D.Premises[0]);
  EXPECT_EQ(P0.Kind, FactKind::Flow);
  EXPECT_EQ(P0.A, View); // the view's self-flow from inflation

  std::ostringstream OS;
  R.Provenance->printDerivation(OS, F, *R.Graph);
  EXPECT_NE(OS.str().find("[FindView]"), std::string::npos);
  EXPECT_NE(OS.str().find("[Seed]"), std::string::npos);
}

TEST(ProvenanceTest, FusedSolverRecordsFindViewDerivation) {
  auto App = makeBundle(ProvSource, {{"main", ProvLayout}});
  AnalysisOptions Options;
  Options.RecordProvenance = true;
  auto R = runAnalysis(*App, Options);
  expectFindViewDerivation(*App, *R);
}

TEST(ProvenanceTest, PhasedSolverRecordsFindViewDerivation) {
  auto App = makeBundle(ProvSource, {{"main", ProvLayout}});
  AnalysisOptions Options;
  Options.RecordProvenance = true;
  auto R = runPhasedAnalysis(App->Program, *App->Layouts, App->Android,
                             Options, App->Diags);
  ASSERT_TRUE(R);
  expectFindViewDerivation(*App, *R);
}

TEST(ProvenanceTest, OffByDefault) {
  auto App = makeBundle(ProvSource, {{"main", ProvLayout}});
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Provenance, nullptr);
}

TEST(ProvenanceTest, ShallowerDerivationReplacesDeeper) {
  ProvenanceRecorder Prov;
  Prov.recordFlow(1, 2, DerivRule::Seed);
  ProvenanceRecorder::FactId Seed = Prov.flowFact(1, 2);
  Prov.recordFlow(3, 2, DerivRule::FlowEdge, Seed);
  ProvenanceRecorder::FactId Deep = Prov.flowFact(3, 2);
  EXPECT_EQ(Prov.derivation(Deep).Depth, 2u);
  // Re-deriving the same fact as an axiom must shallow it to depth 1.
  Prov.recordFlow(3, 2, DerivRule::Seed);
  EXPECT_EQ(Prov.derivation(Deep).Depth, 1u);
  EXPECT_EQ(Prov.derivation(Deep).Rule, DerivRule::Seed);
  EXPECT_EQ(Prov.factCount(), 2u);
}

//===----------------------------------------------------------------------===//
// aggregateAppStats merge semantics (the peak-counter audit)
//===----------------------------------------------------------------------===//

TEST(AppStatsTest, AggregateSumsVolumesButMaxMergesPeaks) {
  AppStats A, B;
  A.Name = "a";
  A.Propagations = 100;
  A.PeakSetSize = 5;
  A.PeakVarWorklist = 10;
  A.PeakOpWorklist = 2;
  A.GraphNodes = 40;
  A.FiringsByKind[0] = 3;
  A.BuildSeconds = 0.5;
  B.Name = "b";
  B.Propagations = 50;
  B.PeakSetSize = 9;
  B.PeakVarWorklist = 3;
  B.PeakOpWorklist = 7;
  B.GraphNodes = 60;
  B.FiringsByKind[0] = 4;
  B.BuildSeconds = 0.25;

  AppStats Total = aggregateAppStats("TOTAL", {A, B});
  // Volumes add.
  EXPECT_EQ(Total.Propagations, 150u);
  EXPECT_EQ(Total.GraphNodes, 100u);
  EXPECT_EQ(Total.FiringsByKind[0], 7u);
  EXPECT_DOUBLE_EQ(Total.BuildSeconds, 0.75);
  // Peaks are point measurements: the aggregate is the max over apps —
  // summing would report a worklist depth / set size no run ever reached.
  EXPECT_EQ(Total.PeakSetSize, 9u);
  EXPECT_EQ(Total.PeakVarWorklist, 10u);
  EXPECT_EQ(Total.PeakOpWorklist, 7u);
}

TEST(AppStatsTest, AggregateMaxMergesMemoryFootprints) {
  // ArenaBytes / PeakRssBytes are footprints, not volumes: per-app slabs
  // are dropped between apps, so the batch-wide number is the largest
  // single-app footprint — summing would describe allocation traffic.
  AppStats A, B, C;
  A.ArenaBytes = 64 * 1024;
  A.PeakRssBytes = 10 * 1024 * 1024;
  B.ArenaBytes = 256 * 1024;
  B.PeakRssBytes = 8 * 1024 * 1024;
  C.ArenaBytes = 128 * 1024;
  C.PeakRssBytes = 12 * 1024 * 1024;

  AppStats Total = aggregateAppStats("TOTAL", {A, B, C});
  EXPECT_EQ(Total.ArenaBytes, 256u * 1024);
  EXPECT_EQ(Total.PeakRssBytes, 12u * 1024 * 1024);

  AppStats Rev = aggregateAppStats("TOTAL", {C, B, A});
  EXPECT_EQ(Rev.ArenaBytes, Total.ArenaBytes);
  EXPECT_EQ(Rev.PeakRssBytes, Total.PeakRssBytes);
}

TEST(AppStatsTest, CollectAppStatsHarvestsArenaBytes) {
  auto App = makeBundle(ProvSource, {{"main", ProvLayout}});
  auto R = runAnalysis(*App);
  AppStats Stats = collectAppStats("test", App->Program, *R);
  // Every layer owns arena storage by now: IR decls, graph adjacency,
  // and at least one nonempty flow set.
  EXPECT_GT(Stats.ArenaBytes, 0u);
  EXPECT_GE(Stats.ArenaBytes, App->Program.declArena().bytesAllocated());
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(Stats.PeakRssBytes, 0u);
#endif

  MetricsRegistry M;
  recordAppMetrics(M, Stats, R->Sol.get());
  EXPECT_EQ(static_cast<unsigned long long>(
                M.gauge("gator_arena_bytes_per_app", "").value()),
            Stats.ArenaBytes);
}

TEST(AppStatsTest, AggregateIsOrderInvariant) {
  AppStats A, B;
  A.PeakVarWorklist = 10;
  A.Propagations = 1;
  B.PeakVarWorklist = 3;
  B.Propagations = 2;
  AppStats AB = aggregateAppStats("T", {A, B});
  AppStats BA = aggregateAppStats("T", {B, A});
  EXPECT_EQ(AB.PeakVarWorklist, BA.PeakVarWorklist);
  EXPECT_EQ(AB.Propagations, BA.Propagations);
}

TEST(AppStatsTest, RecordAppMetricsPopulatesRegistry) {
  auto App = makeBundle(ProvSource, {{"main", ProvLayout}});
  auto R = runAnalysis(*App);
  AppStats Stats = collectAppStats("test", App->Program, *R);
  EXPECT_GT(Stats.GraphNodes, 0u);
  EXPECT_GT(Stats.FlowEdges, 0u);

  MetricsRegistry M;
  recordAppMetrics(M, Stats, R->Sol.get());
  EXPECT_EQ(M.counter("gator_apps_total", "").value(), 1u);
  EXPECT_EQ(M.counter("gator_graph_nodes_total", "").value(),
            Stats.GraphNodes);
  EXPECT_GT(M.histogram("gator_flowset_size", "", {}).count(), 0u);
}

//===----------------------------------------------------------------------===//
// Diagnostics JSON
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, PrintJsonEmitsOneDocument) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation("a.alite", 3, 7), "unexpected token");
  Diags.warning("no location here");

  std::ostringstream OS;
  Diags.printJson(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(Json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(Json.find("\"file\":\"a.alite\""), std::string::npos);
  EXPECT_NE(Json.find("\"line\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"column\":7"), std::string::npos);
  EXPECT_NE(Json.find("\"severity\":\"warning\""), std::string::npos);
  EXPECT_NE(Json.find("\"message\":\"no location here\""), std::string::npos);
  EXPECT_NE(Json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"warnings\":1"), std::string::npos);
  // The locationless warning must carry no file field.
  size_t Warn = Json.find("\"severity\":\"warning\"");
  EXPECT_EQ(Json.find("\"file\"", Warn), std::string::npos);
}

} // namespace
