//===- JsonExport.h - Machine-readable analysis results ---------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a completed analysis as one JSON document, so the Section 6
/// client analyses (profilers, checkers, test generators) can consume the
/// solution out of process. Schema (informal):
///
/// {
///   "stats":   { nodes, flowEdges, parentChildEdges, ... },
///   "metrics": { receivers, parameters?, results?, listeners? },
///   "views":   [ { id, label, class, viewIds: [..], listeners: [..],
///                  children: [..] } ],
///   "activities": [ { class, roots: [viewId..] } ],
///   "ops":     [ { kind, method, receivers: [..], results: [..] } ],
///   "tuples":  [ { activity?, view, event, handler? } ],
///   "transitions": [ { from, event?, to } ]
/// }
///
/// View references use the node id of this run (stable within the file).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_GUIMODEL_JSONEXPORT_H
#define GATOR_GUIMODEL_JSONEXPORT_H

#include "analysis/GuiAnalysis.h"

#include <ostream>

namespace gator {
namespace guimodel {

/// Writes the full analysis result as a JSON document to \p OS.
void writeAnalysisJson(std::ostream &OS,
                       const analysis::AnalysisResult &Result);

} // namespace guimodel
} // namespace gator

#endif // GATOR_GUIMODEL_JSONEXPORT_H
