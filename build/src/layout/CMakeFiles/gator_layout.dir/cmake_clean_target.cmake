file(REMOVE_RECURSE
  "libgator_layout.a"
)
