//===- ResourceTable.cpp --------------------------------------*- C++ -*-===//

#include "layout/ResourceTable.h"

using namespace gator;
using namespace gator::layout;

ResourceId ResourceTable::internLayoutId(const std::string &Name) {
  auto It = LayoutByName.find(Name);
  if (It != LayoutByName.end())
    return It->second;
  ResourceId Id = LayoutIdBase + static_cast<ResourceId>(LayoutNames.size());
  LayoutNames.push_back(Name);
  LayoutByName.emplace(Name, Id);
  return Id;
}

ResourceId ResourceTable::internViewId(const std::string &Name) {
  auto It = ViewIdByName.find(Name);
  if (It != ViewIdByName.end())
    return It->second;
  ResourceId Id = ViewIdBase + static_cast<ResourceId>(ViewIdNames.size());
  ViewIdNames.push_back(Name);
  ViewIdByName.emplace(Name, Id);
  return Id;
}

ResourceId ResourceTable::lookupLayoutId(const std::string &Name) const {
  auto It = LayoutByName.find(Name);
  return It == LayoutByName.end() ? InvalidResourceId : It->second;
}

ResourceId ResourceTable::lookupViewId(const std::string &Name) const {
  auto It = ViewIdByName.find(Name);
  return It == ViewIdByName.end() ? InvalidResourceId : It->second;
}

std::optional<std::string> ResourceTable::layoutName(ResourceId Id) const {
  if (!isLayoutId(Id))
    return std::nullopt;
  return LayoutNames[Id - LayoutIdBase];
}

std::optional<std::string> ResourceTable::viewIdName(ResourceId Id) const {
  if (!isViewId(Id))
    return std::nullopt;
  return ViewIdNames[Id - ViewIdBase];
}
