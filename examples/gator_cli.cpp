//===- gator_cli.cpp - Command-line analysis driver -------------*- C++ -*-===//
//
// A real tool over the library: analyze an application given as files on
// disk. Every `*.alite` file in the input directory is parsed as ALite
// source; every `*.dexlite` file as DexLite bytecode; every `*.xml` file
// is registered as a layout under its base name (so `res/act_console.xml`
// defines `@layout/act_console`).
//
// Usage:
//   gator_cli <dir> [--dot <file>] [--tuples] [--hierarchy] [--atg]
//             [--solution] [--sequences <ActivityClass>] [--reach]
//             [--json <file>] [--lint] [--batch]
//             [--max-seconds <s>] [--max-work <n>]
//             [--max-nodes <n>] [--max-edges <n>]
//
// Prints Table 2-style precision metrics by default; the flags add the
// Section 6 client outputs. `--batch` treats every immediate subdirectory
// of <dir> as one app and analyzes each in crash isolation. The --max-*
// flags set resource budgets (docs/ROBUSTNESS.md); a tripped budget yields
// a partial solution marked truncated, not a failure.
//
// Exit codes: 0 = clean run, 1 = input diagnostics (parse/resolve errors),
// 2 = internal error (and usage errors). In batch mode the exit code is
// the maximum over the per-app codes.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "android/Manifest.h"
#include "corpus/AppBundle.h"
#include "dex/DexLite.h"
#include "guimodel/GuiModel.h"
#include "guimodel/JsonExport.h"
#include "guimodel/Lint.h"
#include "layout/Layout.h"
#include "parser/Parser.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
namespace fs = std::filesystem;

namespace {

bool readFile(const fs::path &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int usage() {
  std::cerr << "usage: gator_cli <dir> [--dot <file>] [--tuples] "
               "[--hierarchy] [--atg] [--solution] "
               "[--sequences <ActivityClass>] [--reach] [--json <file>] "
               "[--lint] [--batch] [--max-seconds <s>] [--max-work <n>] "
               "[--max-nodes <n>] [--max-edges <n>]\n";
  return 2;
}

struct CliConfig {
  std::string DotFile;
  bool WantTuples = false, WantHierarchy = false, WantAtg = false;
  bool WantSolution = false;
  bool WantReach = false;
  std::string SequencesFrom;
  std::string JsonFile;
  bool WantLint = false;
  bool Batch = false;
  analysis::AnalysisOptions Options;
};

/// Analyzes one application directory end to end. Fail-soft: parse
/// diagnostics do not abort the run — the analysis still executes and its
/// solution carries a fidelity marker. Returns 0 (clean), 1 (input
/// diagnostics), or 2 (internal error).
int runOneAppUnguarded(const std::string &InputDir, const CliConfig &Cfg) {
  corpus::AppBundle App;
  App.Android.install(App.Program);

  // Gather inputs in sorted order for deterministic diagnostics.
  std::vector<fs::path> AliteFiles, DexFiles, XmlFiles;
  fs::path ManifestFile;
  std::error_code EC;
  for (const auto &Entry : fs::recursive_directory_iterator(InputDir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".alite")
      AliteFiles.push_back(Entry.path());
    else if (Entry.path().extension() == ".dexlite")
      DexFiles.push_back(Entry.path());
    else if (Entry.path().filename() == "AndroidManifest.xml")
      ManifestFile = Entry.path();
    else if (Entry.path().extension() == ".xml")
      XmlFiles.push_back(Entry.path());
  }
  if (EC) {
    std::cerr << "error: cannot read directory '" << InputDir
              << "': " << EC.message() << "\n";
    return 1;
  }
  std::sort(AliteFiles.begin(), AliteFiles.end());
  std::sort(DexFiles.begin(), DexFiles.end());
  std::sort(XmlFiles.begin(), XmlFiles.end());
  if (AliteFiles.empty() && DexFiles.empty()) {
    std::cerr << "error: no .alite or .dexlite files under '" << InputDir
              << "'\n";
    return 1;
  }

  bool Ok = true;
  for (const fs::path &Path : AliteFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= parser::parseAlite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : DexFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= dex::parseDexLite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : XmlFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      std::cerr << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= layout::readLayoutXml(*App.Layouts, Path.stem().string(), Text,
                                App.Diags) != nullptr;
  }
  bool Finalized = App.finalize();
  Ok &= Finalized;

  // Manifest (optional): validates declared activities and provides the
  // default start point for --sequences.
  std::optional<android::Manifest> Manifest;
  if (!ManifestFile.empty()) {
    std::string Text;
    if (!readFile(ManifestFile, Text)) {
      std::cerr << "error: cannot read " << ManifestFile << "\n";
      return 1;
    }
    Manifest = android::parseManifest(Text, ManifestFile.string(), App.Diags);
    if (Manifest)
      for (const android::ManifestActivity &A : Manifest->Activities)
        if (!App.Program.findClass(A.ClassName))
          App.Diags.warning("manifest declares unknown activity '" +
                            A.ClassName + "'");
  }

  App.Diags.print(std::cerr);
  // An unresolved program has no coherent hierarchy to analyze; anything
  // short of that proceeds fail-soft, with diagnostics reflected in the
  // exit code and the fidelity marker.
  if (!Finalized)
    return 1;
  bool HadInputErrors = !Ok || App.Diags.hasErrors();

  auto Result = analysis::GuiAnalysis::run(App.Program, *App.Layouts,
                                           App.Android, Cfg.Options,
                                           App.Diags);
  if (!Result) {
    App.Diags.print(std::cerr);
    return 2; // the facade contract is "always a result"
  }

  std::cout << "classes: " << App.Program.appClassCount()
            << "  methods: " << App.Program.appMethodCount()
            << "  layouts: " << App.Resources.layoutCount()
            << "  view ids: " << App.Resources.viewIdCount() << "\n";
  Result->Graph->dumpStats(std::cout);
  auto M = Result->metrics();
  std::cout << "precision: receivers=" << M.AvgReceivers;
  if (M.AvgParameters)
    std::cout << " parameters=" << *M.AvgParameters;
  if (M.AvgResults)
    std::cout << " results=" << *M.AvgResults;
  if (M.AvgListeners)
    std::cout << " listeners=" << *M.AvgListeners;
  std::cout << "\ntime: build=" << Result->BuildSeconds * 1000
            << "ms solve=" << Result->SolveSeconds * 1000 << "ms\n";
  std::cout << "fidelity: " << analysis::fidelityName(Result->Sol->fidelity());
  if (Result->Sol->fidelity() == analysis::Fidelity::TruncatedBudget)
    std::cout << " (budget: "
              << support::budgetReasonName(Result->Sol->truncationReason())
              << ")";
  if (!Result->Sol->unresolvedOps().empty())
    std::cout << " unresolved-ops=" << Result->Sol->unresolvedOps().size();
  std::cout << "\n";

  if (Cfg.WantSolution) {
    std::cout << "\nper-operation solution:\n";
    Result->Sol->dump(std::cout);
  }
  if (Cfg.WantTuples) {
    std::cout << "\n(activity, view, event, handler) tuples:\n";
    guimodel::printHandlerTuples(std::cout, *Result,
                                 guimodel::extractHandlerTuples(*Result));
  }
  if (Cfg.WantHierarchy) {
    std::cout << "\nview hierarchies:\n";
    guimodel::printViewHierarchies(std::cout, *Result);
  }
  if (Cfg.WantAtg) {
    std::cout << "\nactivity transition graph:\n";
    guimodel::printTransitionsDot(
        std::cout, guimodel::buildActivityTransitionGraph(*Result));
  }
  std::string SequencesFrom = Cfg.SequencesFrom;
  if (Manifest) {
    std::cout << "manifest: package=" << Manifest->Package;
    if (auto Launcher = Manifest->launcherActivity())
      std::cout << " launcher=" << *Launcher;
    std::cout << "\n";
    if (SequencesFrom.empty())
      if (auto Launcher = Manifest->launcherActivity())
        SequencesFrom = *Launcher;
  }

  if (!SequencesFrom.empty()) {
    const ir::ClassDecl *Start = App.Program.findClass(SequencesFrom);
    if (!Start) {
      std::cerr << "error: unknown activity class '" << SequencesFrom
                << "'\n";
      return 1;
    }
    std::cout << "\nevent sequences from " << SequencesFrom
              << " (length <= 5):\n";
    guimodel::printEventSequences(
        std::cout, *Result,
        guimodel::enumerateEventSequences(*Result, Start, 5, 64));
  }
  if (Cfg.WantReach) {
    std::cout << "\nEditText view-reach report:\n";
    guimodel::printViewReach(std::cout, *Result,
                             guimodel::computeViewReach(*Result));
  }
  if (Cfg.WantLint) {
    std::cout << "\nlint findings:\n";
    guimodel::printLintFindings(std::cout,
                                guimodel::runLint(*Result, *App.Layouts));
  }
  if (!Cfg.JsonFile.empty()) {
    std::ofstream Json(Cfg.JsonFile);
    if (!Json) {
      std::cerr << "error: cannot write " << Cfg.JsonFile << "\n";
      return 1;
    }
    guimodel::writeAnalysisJson(Json, *Result);
    std::cout << "analysis JSON written to " << Cfg.JsonFile << "\n";
  }
  if (!Cfg.DotFile.empty()) {
    std::ofstream Dot(Cfg.DotFile);
    if (!Dot) {
      std::cerr << "error: cannot write " << Cfg.DotFile << "\n";
      return 1;
    }
    Result->Graph->dumpDot(Dot);
    std::cout << "constraint graph written to " << Cfg.DotFile << "\n";
  }
  return HadInputErrors ? 1 : 0;
}

/// Crash isolation: a C++ exception escaping one app's analysis is an
/// internal error (exit 2) for that app, not a process abort — in batch
/// mode the remaining apps still run.
int runOneApp(const std::string &InputDir, const CliConfig &Cfg) {
  try {
    return runOneAppUnguarded(InputDir, Cfg);
  } catch (const std::exception &E) {
    std::cerr << "internal error analyzing '" << InputDir
              << "': " << E.what() << "\n";
    return 2;
  } catch (...) {
    std::cerr << "internal error analyzing '" << InputDir << "'\n";
    return 2;
  }
}

/// Parses a non-negative number for a --max-* flag; false on garbage.
bool parseCount(const std::string &Text, unsigned long &Out) {
  if (Text.empty() ||
      !std::all_of(Text.begin(), Text.end(), [](unsigned char C) {
        return std::isdigit(C);
      }))
    return false;
  try {
    Out = std::stoul(Text);
  } catch (const std::exception &) {
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  std::string InputDir;
  CliConfig Cfg;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--dot") {
      if (++I >= argc)
        return usage();
      Cfg.DotFile = argv[I];
    } else if (Arg == "--tuples") {
      Cfg.WantTuples = true;
    } else if (Arg == "--hierarchy") {
      Cfg.WantHierarchy = true;
    } else if (Arg == "--atg") {
      Cfg.WantAtg = true;
    } else if (Arg == "--solution") {
      Cfg.WantSolution = true;
    } else if (Arg == "--sequences") {
      if (++I >= argc)
        return usage();
      Cfg.SequencesFrom = argv[I];
    } else if (Arg == "--reach") {
      Cfg.WantReach = true;
    } else if (Arg == "--json") {
      if (++I >= argc)
        return usage();
      Cfg.JsonFile = argv[I];
    } else if (Arg == "--lint") {
      Cfg.WantLint = true;
    } else if (Arg == "--batch") {
      Cfg.Batch = true;
    } else if (Arg == "--max-seconds") {
      if (++I >= argc)
        return usage();
      try {
        Cfg.Options.Budget.MaxWallSeconds = std::stod(argv[I]);
      } catch (const std::exception &) {
        return usage();
      }
      if (Cfg.Options.Budget.MaxWallSeconds < 0)
        return usage();
    } else if (Arg == "--max-work") {
      if (++I >= argc || !parseCount(argv[I], Cfg.Options.Budget.MaxWorkItems))
        return usage();
    } else if (Arg == "--max-nodes") {
      unsigned long N = 0;
      if (++I >= argc || !parseCount(argv[I], N))
        return usage();
      Cfg.Options.Budget.MaxGraphNodes = N;
    } else if (Arg == "--max-edges") {
      unsigned long N = 0;
      if (++I >= argc || !parseCount(argv[I], N))
        return usage();
      Cfg.Options.Budget.MaxGraphEdges = N;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      InputDir = Arg;
    }
  }
  if (InputDir.empty())
    return usage();

  if (!Cfg.Batch)
    return runOneApp(InputDir, Cfg);

  // Batch mode: every immediate subdirectory is one app; the process exit
  // code is the worst per-app code.
  std::vector<fs::path> AppDirs;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(InputDir, EC))
    if (Entry.is_directory())
      AppDirs.push_back(Entry.path());
  if (EC) {
    std::cerr << "error: cannot read directory '" << InputDir
              << "': " << EC.message() << "\n";
    return 1;
  }
  if (AppDirs.empty()) {
    std::cerr << "error: no app subdirectories under '" << InputDir << "'\n";
    return 1;
  }
  std::sort(AppDirs.begin(), AppDirs.end());
  int Worst = 0;
  for (const fs::path &Dir : AppDirs) {
    std::cout << "=== app: " << Dir.filename().string() << " ===\n";
    int Code = runOneApp(Dir.string(), Cfg);
    std::cout << "=== exit: " << Code << " ===\n";
    Worst = std::max(Worst, Code);
  }
  return Worst;
}
