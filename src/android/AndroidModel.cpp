//===- AndroidModel.cpp - Android platform model ----------------*- C++ -*-===//

#include "android/AndroidModel.h"

#include <array>
#include <cassert>
#include <cctype>

using namespace gator;
using namespace gator::android;
using namespace gator::ir;

const char *gator::android::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Inflate1:
    return "Inflate1";
  case OpKind::Inflate2:
    return "Inflate2";
  case OpKind::AddView1:
    return "AddView1";
  case OpKind::AddView2:
    return "AddView2";
  case OpKind::SetId:
    return "SetId";
  case OpKind::SetListener:
    return "SetListener";
  case OpKind::FindView1:
    return "FindView1";
  case OpKind::FindView2:
    return "FindView2";
  case OpKind::FindView3:
    return "FindView3";
  case OpKind::FragmentAdd:
    return "FragmentAdd";
  case OpKind::SetAdapter:
    return "SetAdapter";
  case OpKind::StartActivity:
    return "StartActivity";
  case OpKind::SetIntentClass:
    return "SetIntentClass";
  }
  return "unknown";
}

const char *gator::android::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Click:
    return "click";
  case EventKind::LongClick:
    return "long-click";
  case EventKind::Touch:
    return "touch";
  case EventKind::Key:
    return "key";
  case EventKind::FocusChange:
    return "focus-change";
  case EventKind::ItemClick:
    return "item-click";
  case EventKind::ItemSelected:
    return "item-selected";
  case EventKind::SeekBarChange:
    return "seekbar-change";
  case EventKind::CheckedChange:
    return "checked-change";
  case EventKind::TextChange:
    return "text-change";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Platform installation
//===----------------------------------------------------------------------===//

namespace {

/// Adds a platform class unless it already exists; returns it either way.
ClassDecl *ensureClass(Program &P, const std::string &Name,
                       const std::string &Super, bool IsInterface = false) {
  if (ClassDecl *Existing = P.findClass(Name))
    return Existing;
  ClassDecl *C = P.addClass(Name, IsInterface, /*IsPlatform=*/true);
  assert(C && "platform class creation cannot collide");
  if (!Super.empty())
    C->setSuperName(Super);
  return C;
}

/// Adds a bodiless platform method stub unless already declared.
MethodDecl *ensureMethod(ClassDecl *C, const std::string &Name,
                         const std::string &RetType,
                         const std::vector<std::pair<std::string, std::string>>
                             &Params) {
  if (MethodDecl *Existing = C->findOwnMethod(
          Name, static_cast<unsigned>(Params.size())))
    return Existing;
  MethodDecl *M = C->addMethod(Name, RetType);
  for (const auto &[PName, PType] : Params)
    M->addParam(PName, PType);
  M->setAbstract(true);
  return M;
}

} // namespace

void AndroidModel::buildSpecs() {
  if (!Specs.empty())
    return;

  auto add = [&](const char *Iface, const char *Register, EventKind Event,
                 std::vector<HandlerSig> Handlers) {
    Specs.push_back(ListenerSpec{Iface, Register, Event, std::move(Handlers)});
  };

  add("android.view.View.OnClickListener", "setOnClickListener",
      EventKind::Click, {{"onClick", 1, 0}});
  add("android.view.View.OnLongClickListener", "setOnLongClickListener",
      EventKind::LongClick, {{"onLongClick", 1, 0}});
  add("android.view.View.OnTouchListener", "setOnTouchListener",
      EventKind::Touch, {{"onTouch", 1, 0}});
  add("android.view.View.OnKeyListener", "setOnKeyListener", EventKind::Key,
      {{"onKey", 1, 0}});
  add("android.view.View.OnFocusChangeListener", "setOnFocusChangeListener",
      EventKind::FocusChange, {{"onFocusChange", 1, 0}});
  add("android.widget.AdapterView.OnItemClickListener", "setOnItemClickListener",
      EventKind::ItemClick, {{"onItemClick", 1, 0}});
  // Multi-callback interfaces: every handler participates in the implicit
  // callback modeling (each receives the view the event fired on).
  add("android.widget.AdapterView.OnItemSelectedListener",
      "setOnItemSelectedListener", EventKind::ItemSelected,
      {{"onItemSelected", 1, 0}, {"onNothingSelected", 1, 0}});
  add("android.widget.SeekBar.OnSeekBarChangeListener",
      "setOnSeekBarChangeListener", EventKind::SeekBarChange,
      {{"onProgressChanged", 1, 0},
       {"onStartTrackingTouch", 1, 0},
       {"onStopTrackingTouch", 1, 0}});
  add("android.widget.CompoundButton.OnCheckedChangeListener",
      "setOnCheckedChangeListener", EventKind::CheckedChange,
      {{"onCheckedChanged", 1, 0}});
  // RadioGroup's checked-change listener has its own interface type.
  add("android.widget.RadioGroup.OnCheckedChangeListener",
      "setOnCheckedChangeListener", EventKind::CheckedChange,
      {{"onCheckedChanged", 1, 0}});
  // TextWatcher callbacks carry no view parameter (ViewParamIndex -1):
  // the handlers still become reachable, but no view flows in.
  add("android.text.TextWatcher", "addTextChangedListener",
      EventKind::TextChange,
      {{"beforeTextChanged", 0, -1},
       {"onTextChanged", 0, -1},
       {"afterTextChanged", 0, -1}});

  for (const ListenerSpec &Spec : Specs) {
    SpecByRegister.emplace(Spec.RegisterMethod, &Spec);
    SpecByInterface.emplace(Spec.InterfaceName, &Spec);
  }
}

void AndroidModel::install(Program &P) {
  buildSpecs();

  using namespace names;

  ClassDecl *Obj = ensureClass(P, Object, "");
  (void)Obj;
  ensureClass(P, ClassClass, Object);
  ClassDecl *Ctx = ensureClass(P, Context, Object);
  ensureMethod(Ctx, "startActivity", "void", {{"intent", Intent}});

  ClassDecl *Act = ensureClass(P, Activity, Context);
  ensureMethod(Act, "setContentView", "void", {{"layoutId", "int"}});
  ensureMethod(Act, "setContentView", "void", {{"view", View}});
  ensureMethod(Act, "findViewById", View, {{"id", "int"}});
  ensureMethod(Act, "getLayoutInflater", LayoutInflater, {});
  ensureMethod(Act, "onCreate", "void", {});
  ensureMethod(Act, "onStart", "void", {});
  ensureMethod(Act, "onResume", "void", {});
  ensureMethod(Act, "onPause", "void", {});
  ensureMethod(Act, "onStop", "void", {});
  ensureMethod(Act, "onRestart", "void", {});
  ensureMethod(Act, "onDestroy", "void", {});
  ensureMethod(Act, "onBackPressed", "void", {});
  ensureMethod(Act, "finish", "void", {});

  ClassDecl *Dlg = ensureClass(P, Dialog, Object);
  ensureMethod(Dlg, "setContentView", "void", {{"layoutId", "int"}});
  ensureMethod(Dlg, "setContentView", "void", {{"view", View}});
  ensureMethod(Dlg, "findViewById", View, {{"id", "int"}});
  ensureMethod(Dlg, "show", "void", {});

  ClassDecl *Vw = ensureClass(P, View, Object);
  ensureMethod(Vw, "findViewById", View, {{"id", "int"}});
  ensureMethod(Vw, "setId", "void", {{"id", "int"}});
  ensureMethod(Vw, "findFocus", View, {});
  for (const ListenerSpec &Spec : Specs)
    if (Spec.Event == EventKind::Click || Spec.Event == EventKind::LongClick ||
        Spec.Event == EventKind::Touch || Spec.Event == EventKind::Key ||
        Spec.Event == EventKind::FocusChange)
      ensureMethod(Vw, Spec.RegisterMethod, "void",
                   {{"listener", Spec.InterfaceName}});

  ClassDecl *Vg = ensureClass(P, ViewGroup, View);
  ensureMethod(Vg, "addView", "void", {{"child", View}});
  ensureMethod(Vg, "getChildAt", View, {{"index", "int"}});

  ClassDecl *Inflater = ensureClass(P, LayoutInflater, Object);
  ensureMethod(Inflater, "inflate", View, {{"layoutId", "int"}});
  ensureMethod(Inflater, "inflate", View,
               {{"layoutId", "int"}, {"parent", ViewGroup}});

  ClassDecl *Int = ensureClass(P, Intent, Object);
  ensureMethod(Int, "setClass", "void",
               {{"ctx", Context}, {"cls", ClassClass}});

  // Fragments (extension; the paper lists them as unhandled): a Fragment
  // provides its GUI through the onCreateView callback; a transaction
  // attaches that view under the container with the given id.
  ClassDecl *Frag = ensureClass(P, Fragment, Object);
  ensureMethod(Frag, "onCreateView", View, {{"inflater", LayoutInflater}});
  ClassDecl *FragMgr = ensureClass(P, FragmentManager, Object);
  ensureMethod(FragMgr, "beginTransaction", FragmentTransaction, {});
  ClassDecl *FragTx = ensureClass(P, FragmentTransaction, Object);
  ensureMethod(FragTx, "add", "void",
               {{"containerId", "int"}, {"fragment", Fragment}});
  ensureMethod(FragTx, "replace", "void",
               {{"containerId", "int"}, {"fragment", Fragment}});
  ensureMethod(FragTx, "commit", "void", {});
  ensureMethod(Act, "getFragmentManager", FragmentManager, {});

  // Collections: views stored in lists are tracked field-based through an
  // artificial `elements` field on java.util.List (see GraphBuilder).
  ClassDecl *ListIface = ensureClass(P, List, "", /*IsInterface=*/true);
  ensureMethod(ListIface, "add", "void", {{"e", Object}});
  ensureMethod(ListIface, "get", Object, {{"index", "int"}});
  ensureMethod(ListIface, "remove", Object, {{"index", "int"}});
  ensureMethod(ListIface, "size", "int", {});
  if (!ListIface->findOwnField("elements"))
    ListIface->addField("elements", Object);
  for (const char *Impl :
       {"java.util.ArrayList", "java.util.LinkedList", "java.util.Vector"}) {
    ClassDecl *C = ensureClass(P, Impl, Object);
    if (C->interfaceNames().empty())
      C->addInterfaceName(List);
  }

  // Widget hierarchy (a representative subset of android.widget).
  ClassDecl *Text = ensureClass(P, "android.widget.TextView", View);
  ensureMethod(Text, "addTextChangedListener", "void",
               {{"watcher", "android.text.TextWatcher"}});
  ensureClass(P, "android.widget.EditText", "android.widget.TextView");
  ensureClass(P, "android.widget.Button", "android.widget.TextView");
  ClassDecl *Compound =
      ensureClass(P, "android.widget.CompoundButton", "android.widget.Button");
  ensureMethod(Compound, "setOnCheckedChangeListener", "void",
               {{"listener", "android.widget.CompoundButton.OnCheckedChangeListener"}});
  ensureClass(P, "android.widget.CheckBox", "android.widget.CompoundButton");
  ensureClass(P, "android.widget.RadioButton",
              "android.widget.CompoundButton");
  ensureClass(P, "android.widget.ToggleButton",
              "android.widget.CompoundButton");
  ensureClass(P, "android.widget.ImageView", View);
  ensureClass(P, "android.widget.ImageButton", "android.widget.ImageView");
  ClassDecl *Progress = ensureClass(P, "android.widget.ProgressBar", View);
  (void)Progress;
  ClassDecl *Seek =
      ensureClass(P, "android.widget.SeekBar", "android.widget.ProgressBar");
  ensureMethod(Seek, "setOnSeekBarChangeListener", "void",
               {{"listener", "android.widget.SeekBar.OnSeekBarChangeListener"}});

  ClassDecl *RadioGroup =
      ensureClass(P, "android.widget.RadioGroup", ViewGroup);
  ensureMethod(RadioGroup, "setOnCheckedChangeListener", "void",
               {{"listener",
                 "android.widget.RadioGroup.OnCheckedChangeListener"}});

  ensureClass(P, "android.widget.LinearLayout", ViewGroup);
  ensureClass(P, "android.widget.RelativeLayout", ViewGroup);
  ClassDecl *Frame = ensureClass(P, "android.widget.FrameLayout", ViewGroup);
  (void)Frame;
  ensureClass(P, "android.widget.TableLayout", "android.widget.LinearLayout");
  ensureClass(P, "android.widget.TableRow", "android.widget.LinearLayout");
  ensureClass(P, "android.widget.ScrollView", "android.widget.FrameLayout");
  ClassDecl *Animator =
      ensureClass(P, "android.widget.ViewAnimator", "android.widget.FrameLayout");
  ensureMethod(Animator, "getCurrentView", View, {});
  ensureClass(P, "android.widget.ViewFlipper", "android.widget.ViewAnimator");
  ensureClass(P, "android.widget.ViewSwitcher", "android.widget.ViewAnimator");

  // Adapters (extension): item views come from the adapter's getView
  // factory, invoked by the framework for each list row.
  ClassDecl *BaseAdapter = ensureClass(P, "android.widget.BaseAdapter", Object);
  ensureMethod(BaseAdapter, "getView", View, {{"inflater", LayoutInflater}});

  ClassDecl *Adapter = ensureClass(P, "android.widget.AdapterView", ViewGroup);
  ensureMethod(Adapter, "setAdapter", "void",
               {{"adapter", "android.widget.BaseAdapter"}});
  ensureMethod(Adapter, "setOnItemClickListener", "void",
               {{"listener", "android.widget.AdapterView.OnItemClickListener"}});
  ensureMethod(
      Adapter, "setOnItemSelectedListener", "void",
      {{"listener", "android.widget.AdapterView.OnItemSelectedListener"}});
  ensureClass(P, "android.widget.ListView", "android.widget.AdapterView");
  ensureClass(P, "android.widget.GridView", "android.widget.AdapterView");
  ensureClass(P, "android.widget.Spinner", "android.widget.AdapterView");
  ensureClass(P, "android.webkit.WebView", ViewGroup);

  // Listener interfaces with their handler signatures.
  for (const ListenerSpec &Spec : Specs) {
    ClassDecl *Iface =
        ensureClass(P, Spec.InterfaceName, "", /*IsInterface=*/true);
    for (const HandlerSig &Sig : Spec.Handlers) {
      std::vector<std::pair<std::string, std::string>> Params;
      for (unsigned I = 0; I < Sig.Arity; ++I)
        Params.push_back(
            {"p" + std::to_string(I),
             static_cast<int>(I) == Sig.ViewParamIndex ? View : Object});
      ensureMethod(Iface, Sig.MethodName, "void", Params);
    }
  }
}

//===----------------------------------------------------------------------===//
// Binding and queries
//===----------------------------------------------------------------------===//

const ClassDecl *AndroidModel::anchor(const char *Name) const {
  assert(P && "AndroidModel::bind() must run first");
  return P->findClass(Name);
}

bool AndroidModel::bind(const Program &Prog, DiagnosticEngine &Diags) {
  buildSpecs();
  P = &Prog;
  if (!Prog.isResolved()) {
    Diags.error("AndroidModel::bind requires a resolved program");
    return false;
  }
  ActivityClass = anchor(names::Activity);
  DialogClass = anchor(names::Dialog);
  ViewClass = anchor(names::View);
  ViewGroupClass = anchor(names::ViewGroup);
  InflaterClass = anchor(names::LayoutInflater);
  ContextClass = anchor(names::Context);
  IntentClass = anchor(names::Intent);
  ListClass = anchor(names::List);
  FragmentTxClass = anchor(names::FragmentTransaction);
  if (!ActivityClass || !ViewClass || !ViewGroupClass || !InflaterClass) {
    Diags.error("platform classes missing: call AndroidModel::install before "
                "building the application");
    return false;
  }
  return true;
}

bool AndroidModel::isActivityClass(const ClassDecl *C) const {
  return C && P->isSubtypeOf(C, ActivityClass);
}

bool AndroidModel::isWindowClass(const ClassDecl *C) const {
  if (!C)
    return false;
  return P->isSubtypeOf(C, ActivityClass) ||
         (DialogClass && P->isSubtypeOf(C, DialogClass));
}

bool AndroidModel::isViewClass(const ClassDecl *C) const {
  return C && P->isSubtypeOf(C, ViewClass);
}

bool AndroidModel::isViewGroupClass(const ClassDecl *C) const {
  return C && P->isSubtypeOf(C, ViewGroupClass);
}

bool AndroidModel::isListenerClass(const ClassDecl *C) const {
  return C && !listenerSpecsOf(C).empty();
}

std::vector<const ClassDecl *> AndroidModel::appActivityClasses() const {
  std::vector<const ClassDecl *> Result;
  for (const auto &C : P->classes())
    if (!C->isPlatform() && !C->isInterface() && isActivityClass(C))
      Result.push_back(C);
  return Result;
}

const ListenerSpec *
AndroidModel::findListenerSpec(const std::string &InterfaceName) const {
  auto It = SpecByInterface.find(InterfaceName);
  return It == SpecByInterface.end() ? nullptr : It->second;
}

std::vector<const ListenerSpec *>
AndroidModel::listenerSpecsOf(const ClassDecl *C) const {
  std::vector<const ListenerSpec *> Result;
  for (const ListenerSpec &Spec : Specs) {
    const ClassDecl *Iface = P->findClass(Spec.InterfaceName);
    if (Iface && P->isSubtypeOf(C, Iface))
      Result.push_back(&Spec);
  }
  return Result;
}

bool AndroidModel::isLifecycleCallbackName(const std::string &Name) {
  static const std::array<const char *, 14> Known = {
      "onCreate",          "onStart",       "onResume",
      "onPause",           "onStop",        "onRestart",
      "onDestroy",         "onBackPressed", "onCreateOptionsMenu",
      "onOptionsItemSelected", "onActivityResult", "onNewIntent",
      "onSaveInstanceState", "onRestoreInstanceState"};
  for (const char *K : Known)
    if (Name == K)
      return true;
  // Conservative convention: the framework only ever calls into the
  // application through on* callbacks.
  return Name.size() > 2 && Name[0] == 'o' && Name[1] == 'n' &&
         std::isupper(static_cast<unsigned char>(Name[2]));
}

std::optional<OpSpec>
AndroidModel::classifyInvoke(const MethodDecl &Enclosing,
                             const Stmt &S) const {
  assert(S.Kind == StmtKind::Invoke && "not an invoke");
  const Variable &BaseVar = Enclosing.var(S.Base);
  const ClassDecl *Recv = BaseVar.TypeName.empty()
                              ? nullptr
                              : P->findClass(BaseVar.TypeName);
  if (!Recv)
    return std::nullopt;

  auto argIsInt = [&](unsigned I) {
    return Enclosing.var(S.Args[I]).TypeName == IntTypeName;
  };

  const std::string &Name = S.MethodName;

  if (Name == "setContentView" && S.Args.size() == 1 && isWindowClass(Recv)) {
    OpSpec Spec;
    Spec.Kind = argIsInt(0) ? OpKind::Inflate2 : OpKind::AddView1;
    return Spec;
  }

  if (Name == "inflate" && InflaterClass &&
      P->isSubtypeOf(Recv, InflaterClass) &&
      (S.Args.size() == 1 || S.Args.size() == 2) && argIsInt(0)) {
    OpSpec Spec;
    Spec.Kind = OpKind::Inflate1;
    if (S.Args.size() == 2)
      Spec.AttachParentArgIndex = 1;
    return Spec;
  }

  if (Name == "findViewById" && S.Args.size() == 1 && argIsInt(0)) {
    if (isWindowClass(Recv)) {
      OpSpec Spec;
      Spec.Kind = OpKind::FindView2;
      return Spec;
    }
    if (isViewClass(Recv)) {
      OpSpec Spec;
      Spec.Kind = OpKind::FindView1;
      return Spec;
    }
  }

  if (Name == "addView" && S.Args.size() == 1 && isViewGroupClass(Recv)) {
    OpSpec Spec;
    Spec.Kind = OpKind::AddView2;
    return Spec;
  }

  if (Name == "setId" && S.Args.size() == 1 && argIsInt(0) &&
      isViewClass(Recv)) {
    OpSpec Spec;
    Spec.Kind = OpKind::SetId;
    return Spec;
  }

  if (S.Args.size() == 1 && isViewClass(Recv)) {
    auto [Begin, End] = SpecByRegister.equal_range(Name);
    const ListenerSpec *Match = nullptr;
    for (auto It = Begin; It != End; ++It) {
      if (!Match)
        Match = It->second; // fallback: first registered spec
      // Disambiguate same-named registrations (e.g. CompoundButton vs
      // RadioGroup setOnCheckedChangeListener) by the argument's declared
      // type.
      const ClassDecl *ArgType =
          P->findClass(Enclosing.var(S.Args[0]).TypeName);
      const ClassDecl *Iface = P->findClass(It->second->InterfaceName);
      if (ArgType && Iface && P->isSubtypeOf(ArgType, Iface)) {
        Match = It->second;
        break;
      }
    }
    if (Match) {
      OpSpec Spec;
      Spec.Kind = OpKind::SetListener;
      Spec.Listener = Match;
      return Spec;
    }
  }

  if (Name == "findFocus" && S.Args.empty() && isViewClass(Recv)) {
    OpSpec Spec;
    Spec.Kind = OpKind::FindView3;
    return Spec;
  }

  if ((Name == "getCurrentView" && S.Args.empty()) ||
      (Name == "getChildAt" && S.Args.size() == 1)) {
    if (isViewGroupClass(Recv)) {
      OpSpec Spec;
      Spec.Kind = OpKind::FindView3;
      Spec.ChildOnly = true;
      return Spec;
    }
  }

  if (Name == "setAdapter" && S.Args.size() == 1 &&
      isViewGroupClass(Recv)) {
    OpSpec Spec;
    Spec.Kind = OpKind::SetAdapter;
    return Spec;
  }

  if ((Name == "add" || Name == "replace") && S.Args.size() == 2 &&
      argIsInt(0) && FragmentTxClass &&
      P->isSubtypeOf(Recv, FragmentTxClass)) {
    OpSpec Spec;
    Spec.Kind = OpKind::FragmentAdd;
    return Spec;
  }

  if (Name == "startActivity" && S.Args.size() == 1 && ContextClass &&
      P->isSubtypeOf(Recv, ContextClass)) {
    OpSpec Spec;
    Spec.Kind = OpKind::StartActivity;
    return Spec;
  }

  if (Name == "setClass" && S.Args.size() == 2 && IntentClass &&
      P->isSubtypeOf(Recv, IntentClass)) {
    OpSpec Spec;
    Spec.Kind = OpKind::SetIntentClass;
    return Spec;
  }

  return std::nullopt;
}

const FieldDecl *AndroidModel::listElementsField() const {
  return ListClass ? ListClass->findOwnField("elements") : nullptr;
}

const ClassDecl *
AndroidModel::resolveLayoutClassName(const std::string &Name) const {
  auto [It, Inserted] = LayoutClassCache.try_emplace(Name, nullptr);
  if (!Inserted)
    return It->second;
  if (const ClassDecl *C = P->findClass(Name)) {
    It->second = C;
    return C;
  }
  static const std::array<const char *, 3> Prefixes = {
      "android.widget.", "android.view.", "android.webkit."};
  for (const char *Prefix : Prefixes)
    if (const ClassDecl *C = P->findClass(std::string(Prefix) + Name)) {
      It->second = C;
      return C;
    }
  return nullptr;
}
