file(REMOVE_RECURSE
  "CMakeFiles/gator_parser.dir/Lexer.cpp.o"
  "CMakeFiles/gator_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/gator_parser.dir/Parser.cpp.o"
  "CMakeFiles/gator_parser.dir/Parser.cpp.o.d"
  "CMakeFiles/gator_parser.dir/Printer.cpp.o"
  "CMakeFiles/gator_parser.dir/Printer.cpp.o.d"
  "libgator_parser.a"
  "libgator_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
