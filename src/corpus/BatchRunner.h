//===- BatchRunner.h - Parallel corpus-wide analysis ------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one corpus-wide driver behind the Table 1/Table 2 benches, the
/// strong-scaling bench, and the determinism tests: generate and analyze
/// every app of a spec list, fanning whole-app tasks over the parallel
/// execution layer (docs/PARALLEL.md). Each task is thread-confined — its
/// own AppBundle (program, layouts, diagnostics) and its own
/// BudgetTracker — so results are independent of the job count; records
/// come back in spec order regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_CORPUS_BATCHRUNNER_H
#define GATOR_CORPUS_BATCHRUNNER_H

#include "analysis/AppStats.h"
#include "analysis/GuiAnalysis.h"
#include "analysis/SolutionCache.h"
#include "corpus/Corpus.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <memory>
#include <vector>

namespace gator {
namespace corpus {

/// One ordered record of a corpus-wide run. The lightweight summaries
/// (Stats, Metrics, phase times) are always harvested inside the task;
/// the heavyweight artifacts (App bundle, full AnalysisResult) are kept
/// only when the caller asks for them — see analyzeCorpus().
struct BatchAppResult {
  size_t Index = 0;  ///< position in the input spec list
  std::string Name;
  GeneratedApp App;  ///< bundle + ground truth; empty if !KeepArtifacts
  /// Null if generation produced errors (the analysis itself is fail-soft
  /// and always yields a result) or if the run dropped artifacts.
  std::unique_ptr<analysis::AnalysisResult> Result;
  analysis::AppStats Stats; ///< collected unless GenerationFailed
  analysis::Solution::PrecisionMetrics Metrics; ///< Table 2 averages
  double BuildSeconds = 0.0; ///< graph-construction time of the analysis
  double SolveSeconds = 0.0; ///< fixed-point time of the analysis
  bool GenerationFailed = false;
  /// True when the record replayed from the solution cache instead of a
  /// full solve. Feeds the run ledger's per-app cache flag
  /// (corpus::fleetLedger); field-identical to a cold record otherwise.
  bool CacheHit = false;
  /// Thread-confined trace of this task (an "analyze-app" span wrapping
  /// the per-phase spans), recorded only when the batch options carry a
  /// trace sink. The driver appends these into its sink in spec order —
  /// tagged with the app ordinal as tid — so the merged trace is
  /// byte-identical across job counts (after timestamp normalization).
  std::unique_ptr<support::TraceSink> Trace;
};

/// Generates and analyzes every spec with Options.Jobs workers (0 =
/// hardware concurrency, 1 = exact serial). A positive
/// Options.Budget.MaxWallSeconds becomes a shared batch-wide deadline
/// (computed once before the fan-out) unless the caller already set
/// Budget.SharedDeadline; work-item and graph caps stay per-task.
/// \p Stats, when non-null, receives the fan-out's worker/task counts.
///
/// With \p KeepArtifacts false, each task releases its app bundle and
/// AnalysisResult as soon as Stats/Metrics are harvested, so at most one
/// app per worker is resident at a time — the same memory profile as a
/// destroy-per-iteration serial loop, and measurably faster for
/// stats-only consumers (see bench/BENCH_parallel.json). Callers that
/// read Result or App afterwards (solution JSON, differential tests)
/// need the default KeepArtifacts = true.
///
/// \p Cache, when non-null, is the content-addressed solution cache
/// (docs/INCREMENTAL.md): each task keys its spec + options, serves hits
/// without generating or solving, and stores misses. Served only when
/// KeepArtifacts is false (a hit has no bundle or AnalysisResult to keep)
/// and the options are cache-eligible (no wall-clock deadline); otherwise
/// the cache is ignored. Hit records are field-identical to cold ones —
/// Stats, Metrics, and phase times replay from the entry — so a warm
/// sweep's summary output is byte-identical to a cold one at every job
/// count.
std::vector<BatchAppResult>
analyzeCorpus(const std::vector<AppSpec> &Specs,
              const analysis::AnalysisOptions &Options,
              support::ParallelForStats *Stats = nullptr,
              bool KeepArtifacts = true,
              analysis::SolutionCache *Cache = nullptr);

} // namespace corpus
} // namespace gator

#endif // GATOR_CORPUS_BATCHRUNNER_H
