//===- export_corpus.cpp - Write the 20-app corpus to disk ------*- C++ -*-===//
//
// Serializes every corpus application to ALite text plus layout XML under
// an output directory, one subdirectory per app:
//
//   export_corpus <outdir>
//   gator_cli <outdir>/XBMC --solution    # analyze any exported app
//
// Exercises both serialization directions of the frontend (the printer
// round-trips with the parser; the layout writer with the layout reader).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "layout/LayoutWriter.h"
#include "parser/Printer.h"

#include <filesystem>
#include <fstream>
#include <iostream>

using namespace gator;
namespace fs = std::filesystem;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::cerr << "usage: export_corpus <outdir>\n";
    return 2;
  }
  fs::path OutDir = argv[1];

  for (const corpus::AppSpec &Spec : corpus::paperCorpus()) {
    corpus::GeneratedApp App = corpus::generateApp(Spec);
    if (App.Bundle->Diags.hasErrors()) {
      App.Bundle->Diags.print(std::cerr);
      return 1;
    }

    fs::path AppDir = OutDir / Spec.Name;
    std::error_code EC;
    fs::create_directories(AppDir, EC);
    if (EC) {
      std::cerr << "error: cannot create " << AppDir << ": " << EC.message()
                << "\n";
      return 1;
    }

    {
      std::ofstream Out(AppDir / "app.alite");
      if (!Out) {
        std::cerr << "error: cannot write app.alite for " << Spec.Name
                  << "\n";
        return 1;
      }
      parser::printProgram(App.Bundle->Program, Out);
    }
    for (const auto &Def : App.Bundle->Layouts->layouts()) {
      std::ofstream Out(AppDir / (Def->name() + ".xml"));
      Out << layout::layoutToXml(*Def);
    }
    {
      // Manifest: every activity declared, Activity0 as the launcher.
      std::ofstream Out(AppDir / "AndroidManifest.xml");
      Out << "<manifest package=\"corpus." << Spec.Name << "\">\n"
          << "  <application>\n";
      for (unsigned I = 0; I < Spec.Activities; ++I) {
        Out << "    <activity android:name=\"" << Spec.Name << "Activity"
            << I << "\"";
        if (I == 0)
          Out << ">\n"
              << "      <intent-filter>\n"
              << "        <action android:name=\"android.intent.action."
                 "MAIN\" />\n"
              << "        <category android:name=\"android.intent.category."
                 "LAUNCHER\" />\n"
              << "      </intent-filter>\n"
              << "    </activity>\n";
        else
          Out << " />\n";
      }
      Out << "  </application>\n</manifest>\n";
    }
    std::cout << Spec.Name << ": "
              << App.Bundle->Program.appClassCount() << " classes, "
              << App.Bundle->Layouts->layouts().size() << " layouts -> "
              << AppDir.string() << "\n";
  }
  return 0;
}
