//===- Printer.h - ALite serializer -----------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an ir::Program back to the textual ALite syntax accepted by
/// parser/Parser.h. Printing then re-parsing yields a structurally
/// identical program (see the round-trip property tests).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_PARSER_PRINTER_H
#define GATOR_PARSER_PRINTER_H

#include "ir/Ir.h"

#include <ostream>
#include <string>

namespace gator {
namespace parser {

struct PrintOptions {
  /// Include platform classes (printed with the `platform` modifier).
  bool IncludePlatformClasses = false;
};

/// Prints \p Program as ALite text to \p OS.
void printProgram(const ir::Program &Program, std::ostream &OS,
                  const PrintOptions &Options = PrintOptions());

/// Prints one class declaration.
void printClass(const ir::ClassDecl &Klass, std::ostream &OS);

/// Prints one statement (no trailing newline).
void printStmt(const ir::MethodDecl &Method, const ir::Stmt &S,
               std::ostream &OS);

/// Convenience: returns the program text as a string.
std::string programToString(const ir::Program &Program,
                            const PrintOptions &Options = PrintOptions());

} // namespace parser
} // namespace gator

#endif // GATOR_PARSER_PRINTER_H
