file(REMOVE_RECURSE
  "CMakeFiles/options_matrix_test.dir/options_matrix_test.cpp.o"
  "CMakeFiles/options_matrix_test.dir/options_matrix_test.cpp.o.d"
  "options_matrix_test"
  "options_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
