//===- parallel_test.cpp - Parallel batch engine tests ----------*- C++ -*-===//
//
// The determinism and thread-safety contract of the parallel execution
// layer (docs/PARALLEL.md):
//
//  - ThreadPool runs every task, survives task exceptions, and reports
//    per-worker task counts;
//  - parallelFor is an exact inline serial loop at Jobs=1 and rethrows
//    the lowest-index exception deterministically at any job count;
//  - a corpus batch produces byte-identical per-app JSON, identical
//    per-app and aggregate AppStats, and identical fidelity markers at
//    -j 1/2/4/8 — including under injected faults and forced budget
//    trips;
//  - the batch wall-clock deadline is shared (a slow early app starves
//    later apps, which report TruncatedBudget/deadline) while work-item
//    caps stay per-task;
//  - BudgetTracker cancellation is safe to trip from another thread.
//
//===----------------------------------------------------------------------===//

#include "corpus/BatchRunner.h"
#include "guimodel/JsonExport.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::support;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Sum{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Sum] { Sum.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 100);

  std::vector<unsigned long> Counts = Pool.tasksExecuted();
  EXPECT_EQ(Counts.size(), 4u);
  EXPECT_EQ(std::accumulate(Counts.begin(), Counts.end(), 0ul), 100ul);
}

TEST(ThreadPoolTest, SurvivesTaskExceptions) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.submit([] { throw std::runtime_error("task failed"); });
  Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 1);

  std::vector<std::exception_ptr> Errors = Pool.takeExceptions();
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_THROW(std::rethrow_exception(Errors[0]), std::runtime_error);
  // Drained: a second take returns nothing.
  EXPECT_TRUE(Pool.takeExceptions().empty());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> Sum{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Sum] { Sum.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): destruction itself must finish the queue.
  }
  EXPECT_EQ(Sum.load(), 64);
}

TEST(ResolveJobsTest, ZeroMeansHardwareAndNeverZero) {
  EXPECT_GE(resolveJobs(0), 1u);
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(7), 7u);
}

//===----------------------------------------------------------------------===//
// parallelFor / parallelMap
//===----------------------------------------------------------------------===//

TEST(ParallelForTest, SingleJobRunsInlineInOrder) {
  std::vector<size_t> Order;
  std::thread::id Caller = std::this_thread::get_id();
  ParallelForStats Stats = parallelFor(1, 10, [&](size_t I) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    Order.push_back(I);
  });
  std::vector<size_t> Expected(10);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(Order, Expected);
  EXPECT_EQ(Stats.WorkersUsed, 1u);
  ASSERT_EQ(Stats.TasksPerWorker.size(), 1u);
  EXPECT_EQ(Stats.TasksPerWorker[0], 10ul);
}

TEST(ParallelForTest, CoversEveryIndexAtAnyJobCount) {
  for (unsigned Jobs : {2u, 4u, 8u}) {
    std::vector<std::atomic<int>> Hits(50);
    ParallelForStats Stats =
        parallelFor(Jobs, Hits.size(), [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I < Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " jobs " << Jobs;
    EXPECT_EQ(std::accumulate(Stats.TasksPerWorker.begin(),
                              Stats.TasksPerWorker.end(), 0ul),
              50ul);
  }
}

TEST(ParallelForTest, NeverMoreWorkersThanItems) {
  ParallelForStats Stats = parallelFor(8, 3, [](size_t) {});
  EXPECT_LE(Stats.WorkersUsed, 3u);
}

TEST(ParallelForTest, RethrowsLowestIndexException) {
  // Whatever the scheduling, attribution must be deterministic: the
  // lowest failing index wins.
  for (unsigned Jobs : {2u, 4u}) {
    try {
      parallelFor(Jobs, 16, [](size_t I) {
        if (I == 3 || I == 11)
          throw std::runtime_error("index " + std::to_string(I));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "index 3");
    }
  }
}

TEST(ParallelForTest, ZeroItemsIsANoOp) {
  int Calls = 0;
  parallelFor(4, 0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
}

TEST(ParallelMapTest, ResultsComeBackInIndexOrder) {
  std::vector<int> Out = parallelMap<int>(
      4, 32, [](size_t I) { return static_cast<int>(I * I); });
  ASSERT_EQ(Out.size(), 32u);
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], static_cast<int>(I * I));
}

//===----------------------------------------------------------------------===//
// Corpus batch determinism across job counts
//===----------------------------------------------------------------------===//

/// Everything about one batch run that must not depend on the job count.
struct BatchFingerprint {
  std::vector<std::string> AppJson;      ///< per-app full JSON export
  std::vector<std::string> AppStatsRows; ///< per-app Table 1 + solver rows
  std::string AggregateRow;              ///< summed AppStats
  std::vector<Fidelity> Fidelities;
  std::vector<support::BudgetReason> TruncReasons;
};

BatchFingerprint fingerprintCorpus(const AnalysisOptions &Options) {
  BatchFingerprint F;
  std::vector<BatchAppResult> Batch = analyzeCorpus(paperCorpus(), Options);
  std::vector<AppStats> PerApp;
  for (const BatchAppResult &R : Batch) {
    EXPECT_FALSE(R.GenerationFailed) << R.Name;
    if (!R.Result)
      continue;
    std::ostringstream Json;
    guimodel::writeAnalysisJson(Json, *R.Result);
    F.AppJson.push_back(Json.str());
    std::ostringstream Rows;
    printAppStatsRow(Rows, R.Stats);
    printSolverStatsRow(Rows, R.Stats);
    Rows << " workCharged=" << R.Stats.WorkCharged;
    F.AppStatsRows.push_back(Rows.str());
    F.Fidelities.push_back(R.Result->Sol->fidelity());
    F.TruncReasons.push_back(R.Result->Sol->truncationReason());
    PerApp.push_back(R.Stats);
  }
  std::ostringstream Agg;
  printSolverStatsRow(Agg, aggregateAppStats("TOTAL", PerApp));
  F.AggregateRow = Agg.str();
  return F;
}

void expectSameFingerprint(const BatchFingerprint &A,
                           const BatchFingerprint &B, const char *Label) {
  ASSERT_EQ(A.AppJson.size(), B.AppJson.size()) << Label;
  for (size_t I = 0; I < A.AppJson.size(); ++I) {
    EXPECT_EQ(A.AppJson[I], B.AppJson[I]) << Label << " app " << I;
    EXPECT_EQ(A.AppStatsRows[I], B.AppStatsRows[I]) << Label << " app " << I;
    EXPECT_EQ(A.Fidelities[I], B.Fidelities[I]) << Label << " app " << I;
    EXPECT_EQ(A.TruncReasons[I], B.TruncReasons[I]) << Label << " app " << I;
  }
  EXPECT_EQ(A.AggregateRow, B.AggregateRow) << Label;
}

TEST(BatchDeterminismTest, IdenticalResultsAtEveryJobCount) {
  AnalysisOptions Options;
  Options.Jobs = 1;
  BatchFingerprint Serial = fingerprintCorpus(Options);
  ASSERT_EQ(Serial.AppJson.size(), paperCorpus().size());
  for (unsigned Jobs : {2u, 4u, 8u}) {
    Options.Jobs = Jobs;
    BatchFingerprint Parallel = fingerprintCorpus(Options);
    expectSameFingerprint(Serial, Parallel,
                          ("jobs=" + std::to_string(Jobs)).c_str());
  }
}

TEST(BatchDeterminismTest, IdenticalUnderForcedBudgetTrips) {
  // The fault-injection forced trip (docs/ROBUSTNESS.md) caps every
  // tracker's work budget — including every parallel task's — so each
  // app truncates at the same deterministic cut point at any -j.
  // Corpus apps charge 77..1435 work items: step 50 truncates every app,
  // step 500 truncates only the large ones — both cut points must be
  // identical at any -j.
  for (unsigned long Step : {50ul, 500ul}) {
    ScopedForcedBudgetTrip Trip(Step);
    AnalysisOptions Options;
    Options.Jobs = 1;
    BatchFingerprint Serial = fingerprintCorpus(Options);
    bool AnyTruncated = false;
    for (Fidelity F : Serial.Fidelities)
      AnyTruncated |= F == Fidelity::TruncatedBudget;
    EXPECT_TRUE(AnyTruncated) << "step " << Step
                              << ": forced trip should truncate some app";
    Options.Jobs = 4;
    BatchFingerprint Parallel = fingerprintCorpus(Options);
    expectSameFingerprint(Serial, Parallel,
                          ("trip=" + std::to_string(Step)).c_str());
  }
}

TEST(BatchDeterminismTest, IdenticalUnderPerTaskWorkCaps) {
  AnalysisOptions Options;
  Options.Budget.MaxWorkItems = 50; // below the smallest app's 77 items
  Options.Jobs = 1;
  BatchFingerprint Serial = fingerprintCorpus(Options);
  // The cap is per task: every app charges at most its own 50 items and
  // reports its own truncation, not only the first app in the batch.
  for (size_t I = 0; I < Serial.Fidelities.size(); ++I)
    EXPECT_EQ(Serial.Fidelities[I], Fidelity::TruncatedBudget) << "app " << I;
  Options.Jobs = 8;
  expectSameFingerprint(Serial, fingerprintCorpus(Options), "work caps");
}

//===----------------------------------------------------------------------===//
// Shared batch deadline and cross-thread cancellation
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Arena-backed artifact lifecycle (docs/MEMORY.md)
//===----------------------------------------------------------------------===//

TEST(BatchArtifactsTest, KeepArtifactsFalseIsAPureArenaDrop) {
  // With KeepArtifacts=false every per-app owner (bundle, graph,
  // solution) is destroyed inside the task, which releases the app's
  // arena slabs wholesale — nothing object-shaped survives into the
  // merged results, only the harvested stats row.
  std::vector<AppSpec> Specs(paperCorpus().begin(),
                             paperCorpus().begin() + 4);
  AnalysisOptions Options;
  Options.Jobs = 2;
  std::vector<BatchAppResult> Dropped =
      analyzeCorpus(Specs, Options, nullptr, /*KeepArtifacts=*/false);
  ASSERT_EQ(Dropped.size(), Specs.size());
  for (const BatchAppResult &R : Dropped) {
    EXPECT_EQ(R.Result, nullptr) << R.Name;
    EXPECT_EQ(R.App.Bundle, nullptr) << R.Name;
    // The stats were harvested before the drop, arenas included.
    EXPECT_GT(R.Stats.Classes, 0u) << R.Name;
    EXPECT_GT(R.Stats.ArenaBytes, 0u) << R.Name;
  }

  // Dropping artifacts must not change what was measured.
  std::vector<BatchAppResult> Kept =
      analyzeCorpus(Specs, Options, nullptr, /*KeepArtifacts=*/true);
  for (size_t I = 0; I < Specs.size(); ++I) {
    ASSERT_NE(Kept[I].Result, nullptr);
    std::ostringstream A, B;
    printAppStatsRow(A, Dropped[I].Stats);
    printSolverStatsRow(A, Dropped[I].Stats);
    printAppStatsRow(B, Kept[I].Stats);
    printSolverStatsRow(B, Kept[I].Stats);
    EXPECT_EQ(A.str(), B.str()) << Specs[I].Name;
    EXPECT_EQ(Dropped[I].Stats.ArenaBytes, Kept[I].Stats.ArenaBytes)
        << Specs[I].Name;
  }
}

TEST(BatchArtifactsTest, ArenaBytesAreDeterministicAcrossJobCounts) {
  // Arena byte counts are allocation-order accounting, and per-app
  // solves are thread-confined — so unlike peak RSS they must not
  // depend on the job count.
  FleetSpec FS;
  FS.Apps = 12;
  FS.Seed = 7;
  std::vector<AppSpec> Specs = makeFleet(FS);
  AnalysisOptions Options;
  Options.Jobs = 1;
  std::vector<BatchAppResult> Serial =
      analyzeCorpus(Specs, Options, nullptr, /*KeepArtifacts=*/false);
  for (unsigned Jobs : {4u, 8u}) {
    Options.Jobs = Jobs;
    std::vector<BatchAppResult> Parallel =
        analyzeCorpus(Specs, Options, nullptr, /*KeepArtifacts=*/false);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I < Serial.size(); ++I)
      EXPECT_EQ(Parallel[I].Stats.ArenaBytes, Serial[I].Stats.ArenaBytes)
          << "jobs=" << Jobs << " app " << I;
  }
}

TEST(BatchDeadlineTest, DeadlineIsSharedAcrossTheBatch) {
  // The deadline is computed once for the whole batch. Emulate a slow
  // early app by exhausting the deadline before the fan-out: every app
  // must then report TruncatedBudget/deadline, even though each would
  // easily finish under a fresh per-app allowance.
  AnalysisOptions Options;
  Options.Jobs = 2;
  Options.Budget.SharedDeadline = makeSharedDeadline(0.02);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::vector<BatchAppResult> Batch =
      analyzeCorpus({paperCorpus()[0], paperCorpus()[1], paperCorpus()[2]},
                    Options);
  for (const BatchAppResult &R : Batch) {
    ASSERT_TRUE(R.Result) << R.Name;
    EXPECT_EQ(R.Result->Sol->fidelity(), Fidelity::TruncatedBudget)
        << R.Name;
    EXPECT_EQ(R.Result->Sol->truncationReason(),
              support::BudgetReason::Deadline)
        << R.Name;
  }
}

TEST(BatchDeadlineTest, SharedDeadlineOverridesRelativeSeconds) {
  // With only MaxWallSeconds, each tracker would start its own generous
  // clock; the already-expired shared deadline must win.
  BudgetPolicy Policy;
  Policy.MaxWallSeconds = 3600.0;
  Policy.SharedDeadline = std::chrono::steady_clock::now() -
                          std::chrono::milliseconds(1);
  BudgetTracker Tracker(Policy);
  EXPECT_FALSE(Tracker.checkpoint(0, 0));
  EXPECT_EQ(Tracker.reason(), BudgetReason::Deadline);
}

TEST(BatchDeadlineTest, PerTaskCapsAreNotShared) {
  // Two trackers under one policy: each gets its own work allowance
  // (only the wall clock is shared batch-wide).
  BudgetPolicy Policy;
  Policy.MaxWorkItems = 5;
  BudgetTracker A(Policy), B(Policy);
  for (int I = 0; I < 5; ++I) {
    EXPECT_TRUE(A.charge());
    EXPECT_TRUE(B.charge());
  }
  EXPECT_FALSE(A.charge());
  EXPECT_FALSE(B.charge());
  EXPECT_EQ(A.workCharged(), 5ul);
  EXPECT_EQ(B.workCharged(), 5ul);
}

TEST(BudgetCancelTest, TripFromAnotherThreadIsSafe) {
  BudgetPolicy Policy;
  BudgetTracker Tracker(Policy);
  std::thread Other(
      [&Tracker] { Tracker.trip(BudgetReason::Cancelled); });
  Other.join();
  EXPECT_TRUE(Tracker.exhausted());
  EXPECT_EQ(Tracker.reason(), BudgetReason::Cancelled);
  // First reason wins; a later trip does not overwrite it.
  Tracker.trip(BudgetReason::Deadline);
  EXPECT_EQ(Tracker.reason(), BudgetReason::Cancelled);
}

TEST(BudgetCancelTest, CancelFlagStopsEveryTaskInTheBatch) {
  std::atomic<bool> Cancel{true};
  AnalysisOptions Options;
  Options.Jobs = 4;
  Options.Budget.CancelFlag = &Cancel;
  std::vector<BatchAppResult> Batch =
      analyzeCorpus({paperCorpus()[0], paperCorpus()[1]}, Options);
  for (const BatchAppResult &R : Batch) {
    ASSERT_TRUE(R.Result) << R.Name;
    EXPECT_EQ(R.Result->Sol->fidelity(), Fidelity::TruncatedBudget)
        << R.Name;
    EXPECT_EQ(R.Result->Sol->truncationReason(),
              support::BudgetReason::Cancelled)
        << R.Name;
  }
}

} // namespace
