//===- Arena.h - Monotonic bump allocator -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-app arena allocation (docs/MEMORY.md). One analysis task owns one
/// Arena; IR declarations, constraint-graph adjacency, and solver side
/// tables bump-allocate from it and are released as whole slabs when the
/// task's artifacts are dropped — no per-node delete, no free-list walks.
///
///  - Arena: chunked monotonic allocator. create<T>() registers a
///    destructor only when T is not trivially destructible, so plain
///    decl/adjacency data costs nothing to tear down. reset() runs pending
///    destructors, keeps the largest slab for reuse, and (under ASan)
///    re-poisons the retained slab so stale pointers fault immediately.
///  - ArenaVector<T>: a 16-byte {ptr,size,cap} vector of trivially
///    copyable elements whose storage lives in an Arena. The arena is
///    passed at mutation time, so readers need no back-pointer and the
///    element type stays as small as a raw slice.
///  - ArenaString: an immutable NUL-terminated string copied into an
///    arena; 12 bytes instead of sizeof(std::string), no destructor.
///
/// Thread confinement: an Arena is NOT thread-safe. The batch engine gives
/// each worker task its own arena (docs/PARALLEL.md), which is also what
/// makes KeepArtifacts=false a pure slab drop.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_ARENA_H
#define GATOR_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define GATOR_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GATOR_ARENA_ASAN 1
#endif
#endif

#if defined(GATOR_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace gator {
namespace support {

/// A chunked monotonic bump allocator.
class Arena {
public:
  /// First slab size; subsequent slabs double up to MaxSlabBytes.
  static constexpr size_t DefaultSlabBytes = 64 * 1024;
  static constexpr size_t MaxSlabBytes = 1024 * 1024;

  Arena() = default;
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Movable: slab ownership transfers wholesale, so pointers handed out
  /// by the source stay valid — the owning object (graph, program) can be
  /// moved without touching a single allocation.
  Arena(Arena &&Other) noexcept
      : Cur(Other.Cur), End(Other.End), Slabs(std::move(Other.Slabs)),
        Dtors(std::move(Other.Dtors)), LiveBytes(Other.LiveBytes),
        ReservedBytes(Other.ReservedBytes),
        NextSlabBytes(Other.NextSlabBytes) {
    Other.Slabs.clear();
    Other.Dtors.clear();
    Other.Cur = Other.End = 0;
    Other.LiveBytes = Other.ReservedBytes = 0;
    Other.NextSlabBytes = DefaultSlabBytes;
  }
  Arena &operator=(Arena &&Other) noexcept;

  /// Returns \p Bytes of storage aligned to \p Align. Never returns null
  /// (allocation failure throws std::bad_alloc like operator new).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    assert(Align > 0 && (Align & (Align - 1)) == 0 && "non-power-of-2 align");
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (P + Bytes <= End) {
      Cur = P + Bytes;
      LiveBytes += Bytes;
      unpoison(reinterpret_cast<void *>(P), Bytes);
      return reinterpret_cast<void *>(P);
    }
    return allocateSlow(Bytes, Align);
  }

  /// Allocates and constructs a T. Destructors are registered only for
  /// non-trivially-destructible types and run (in reverse construction
  /// order) at reset() or arena destruction.
  template <typename T, typename... Args> T *create(Args &&...Vals) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = ::new (Mem) T(std::forward<Args>(Vals)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  /// Uninitialized array of \p N trivially-destructible elements.
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "array elements are never destroyed");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies \p S into the arena, NUL-terminated.
  const char *copyString(std::string_view S) {
    char *Mem = allocateArray<char>(S.size() + 1);
    std::memcpy(Mem, S.data(), S.size());
    Mem[S.size()] = '\0';
    return Mem;
  }

  /// Runs pending destructors, frees all slabs but the largest, and makes
  /// the retained slab available for reuse. Under ASan the retained slab
  /// is re-poisoned, so any pointer that survived the reset faults.
  void reset();

  /// Live bytes handed out since construction or the last reset()
  /// (alignment padding and the waste from ArenaVector regrowth excluded).
  size_t bytesAllocated() const { return LiveBytes; }
  /// Total slab bytes currently malloc'd from the system.
  size_t bytesReserved() const { return ReservedBytes; }
  /// Slab bytes that survive reset() (the retained-slab footprint).
  size_t bytesRetained() const;
  size_t slabCount() const { return Slabs.size(); }

private:
  struct Slab {
    char *Base;
    size_t Size;
  };
  struct DtorRec {
    void *Obj;
    void (*Run)(void *);
  };

  void *allocateSlow(size_t Bytes, size_t Align);
  void runDtors();

  static void poison(void *P, size_t Bytes) {
#if defined(GATOR_ARENA_ASAN)
    __asan_poison_memory_region(P, Bytes);
#else
    (void)P;
    (void)Bytes;
#endif
  }
  static void unpoison(void *P, size_t Bytes) {
#if defined(GATOR_ARENA_ASAN)
    __asan_unpoison_memory_region(P, Bytes);
#else
    (void)P;
    (void)Bytes;
#endif
  }

  uintptr_t Cur = 0;
  uintptr_t End = 0;
  std::vector<Slab> Slabs;
  std::vector<DtorRec> Dtors;
  size_t LiveBytes = 0;
  size_t ReservedBytes = 0;
  size_t NextSlabBytes = DefaultSlabBytes;
};

/// A minimal vector whose storage lives in an Arena. 16 bytes, move-only
/// (two ArenaVectors must never alias one backing block), elements must be
/// trivially copyable and destructible. Mutators take the arena explicitly;
/// readers are self-contained, so adjacency tables can hand out
/// `const ArenaVector<NodeId> &` without exposing the allocator.
///
/// Growth allocates a fresh block and abandons the old one inside the
/// slab — monotone waste bounded by the doubling policy (< the live size).
template <typename T> class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVector elements are memcpy'd and never destroyed");

public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  ArenaVector() = default;
  ArenaVector(ArenaVector &&Other) noexcept
      : Data(Other.Data), Count(Other.Count), Cap(Other.Cap) {
    Other.Data = nullptr;
    Other.Count = Other.Cap = 0;
  }
  ArenaVector &operator=(ArenaVector &&Other) noexcept {
    Data = Other.Data;
    Count = Other.Count;
    Cap = Other.Cap;
    Other.Data = nullptr;
    Other.Count = Other.Cap = 0;
    return *this;
  }
  ArenaVector(const ArenaVector &) = delete;
  ArenaVector &operator=(const ArenaVector &) = delete;

  T *begin() { return Data; }
  T *end() { return Data + Count; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](size_t I) {
    assert(I < Count);
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Count);
    return Data[I];
  }
  T &front() {
    assert(Count);
    return Data[0];
  }
  const T &front() const {
    assert(Count);
    return Data[0];
  }
  T &back() {
    assert(Count);
    return Data[Count - 1];
  }
  const T &back() const {
    assert(Count);
    return Data[Count - 1];
  }

  void push_back(Arena &A, const T &V) {
    if (Count == Cap)
      grow(A, Count + 1);
    Data[Count++] = V;
  }

  void pop_back() {
    assert(Count);
    --Count;
  }

  /// Drops the elements, keeping capacity.
  void clear() { Count = 0; }

  /// Drops elements past \p N; no-op when N >= size(). Capacity is kept.
  void truncate(size_t N) {
    if (N < Count)
      Count = static_cast<uint32_t>(N);
  }

  void reserve(Arena &A, size_t NewCap) {
    if (NewCap > Cap)
      grow(A, NewCap);
  }

  /// Grows to \p N elements, filling new slots with \p Fill. Never shrinks
  /// capacity; shrinking just drops the tail.
  void resize(Arena &A, size_t N, const T &Fill) {
    if (N > Cap)
      grow(A, N);
    for (size_t I = Count; I < N; ++I)
      Data[I] = Fill;
    Count = static_cast<uint32_t>(N);
  }

private:
  void grow(Arena &A, size_t MinCap) {
    size_t NewCap = Cap ? Cap * 2 : 4;
    if (NewCap < MinCap)
      NewCap = MinCap;
    T *NewData = A.allocateArray<T>(NewCap);
    if (Count)
      std::memcpy(NewData, Data, Count * sizeof(T));
    Data = NewData;
    Cap = static_cast<uint32_t>(NewCap);
  }

  T *Data = nullptr;
  uint32_t Count = 0;
  uint32_t Cap = 0;
};

/// An immutable string whose characters live in an Arena. NUL-terminated,
/// 12 bytes, trivially destructible.
class ArenaString {
public:
  ArenaString() = default;
  ArenaString(Arena &A, std::string_view S)
      : Data(A.copyString(S)), Len(static_cast<uint32_t>(S.size())) {}

  std::string_view view() const {
    return Data ? std::string_view(Data, Len) : std::string_view();
  }
  operator std::string_view() const { return view(); }
  const char *c_str() const { return Data ? Data : ""; }

  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }

  bool operator==(std::string_view Other) const { return view() == Other; }
  bool operator==(const ArenaString &Other) const {
    return view() == Other.view();
  }

private:
  const char *Data = nullptr;
  uint32_t Len = 0;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_ARENA_H
