//===- xml_test.cpp - XML parser unit tests ---------------------*- C++ -*-===//

#include "xml/Xml.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::xml;

namespace {

std::unique_ptr<XmlNode> parseOk(const std::string &Input) {
  DiagnosticEngine Diags;
  auto Doc = parseXml(Input, "t.xml", Diags);
  if (!Doc || Diags.hasErrors()) {
    std::ostringstream OS;
    Diags.print(OS);
    ADD_FAILURE() << "xml parse failed:\n" << OS.str();
  }
  return Doc;
}

void parseBad(const std::string &Input) {
  DiagnosticEngine Diags;
  auto Doc = parseXml(Input, "t.xml", Diags);
  EXPECT_TRUE(!Doc || Diags.hasErrors());
}

TEST(XmlTest, SelfClosingElement) {
  auto Doc = parseOk("<Button/>");
  EXPECT_EQ(Doc->tag(), "Button");
  EXPECT_TRUE(Doc->children().empty());
  EXPECT_TRUE(Doc->attrs().empty());
}

TEST(XmlTest, AttributesDoubleAndSingleQuoted) {
  auto Doc = parseOk("<View android:id=\"@+id/a\" style='big'/>");
  ASSERT_EQ(Doc->attrs().size(), 2u);
  ASSERT_NE(Doc->findAttr("android:id"), nullptr);
  EXPECT_EQ(*Doc->findAttr("android:id"), "@+id/a");
  EXPECT_EQ(*Doc->findAttr("style"), "big");
  EXPECT_EQ(Doc->findAttr("missing"), nullptr);
}

TEST(XmlTest, NestedElements) {
  auto Doc = parseOk("<A><B><C/></B><D/></A>");
  ASSERT_EQ(Doc->children().size(), 2u);
  EXPECT_EQ(Doc->children()[0]->tag(), "B");
  ASSERT_EQ(Doc->children()[0]->children().size(), 1u);
  EXPECT_EQ(Doc->children()[0]->children()[0]->tag(), "C");
  EXPECT_EQ(Doc->children()[1]->tag(), "D");
}

TEST(XmlTest, PrologAndComments) {
  auto Doc = parseOk("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
                     "<!-- top comment -->\n"
                     "<A><!-- inner --><B/></A>\n"
                     "<!-- trailing -->");
  EXPECT_EQ(Doc->tag(), "A");
  ASSERT_EQ(Doc->children().size(), 1u);
}

TEST(XmlTest, CharacterDataPreserved) {
  auto Doc = parseOk("<A>hello <B/>world</A>");
  EXPECT_EQ(Doc->text(), "hello world");
}

TEST(XmlTest, MismatchedClosingTagIsError) { parseBad("<A><B></A></B>"); }

TEST(XmlTest, UnterminatedElementIsError) { parseBad("<A><B/>"); }

TEST(XmlTest, EmptyDocumentIsError) { parseBad("   \n  "); }

TEST(XmlTest, TrailingContentIsError) { parseBad("<A/><B/>"); }

TEST(XmlTest, MissingAttrValueIsError) { parseBad("<A id/>"); }

TEST(XmlTest, UnquotedAttrValueIsError) { parseBad("<A id=x/>"); }

TEST(XmlTest, UnterminatedCommentIsError) { parseBad("<!-- never closed"); }

TEST(XmlTest, LocationsTracked) {
  auto Doc = parseOk("<A>\n  <B/>\n</A>");
  EXPECT_EQ(Doc->loc().line(), 1u);
  EXPECT_EQ(Doc->children()[0]->loc().line(), 2u);
  EXPECT_EQ(Doc->children()[0]->loc().column(), 3u);
}

TEST(XmlTest, NamespacedTagsAndDotsInNames) {
  auto Doc = parseOk("<android.support.v4.widget.DrawerLayout "
                     "app:layout_behavior=\"x\"/>");
  EXPECT_EQ(Doc->tag(), "android.support.v4.widget.DrawerLayout");
  EXPECT_NE(Doc->findAttr("app:layout_behavior"), nullptr);
}

} // namespace
