//===- guimodel_test.cpp - Section 6 client analyses tests ------*- C++ -*-===//

#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"
#include "guimodel/GuiModel.h"
#include "guimodel/JsonExport.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::guimodel;
using namespace gator::test;

namespace {

TEST(GuiModelTest, ConnectBotHandlerTuple) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  auto R = runAnalysis(*App);
  auto Tuples = extractHandlerTuples(*R);
  ASSERT_EQ(Tuples.size(), 1u);
  const HandlerTuple &T = Tuples.front();
  ASSERT_NE(T.Activity, nullptr);
  EXPECT_EQ(T.Activity->name(), "ConsoleActivity");
  EXPECT_EQ(T.Event, android::EventKind::Click);
  ASSERT_NE(T.Handler, nullptr);
  EXPECT_EQ(T.Handler->qualifiedName(), "EscapeButtonListener.onClick/1");
  EXPECT_EQ(R->Graph->node(T.View).Klass->name(),
            "android.widget.ImageView");
}

TEST(GuiModelTest, UnattachedViewsReported) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    var l: L;
    v := new android.widget.Button;
    l := new L;
    v.setOnClickListener(l);
  }
}
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
)");
  auto R = runAnalysis(*App);
  auto Tuples = extractHandlerTuples(*R);
  ASSERT_EQ(Tuples.size(), 1u);
  // The button was never attached to any activity hierarchy.
  EXPECT_EQ(Tuples.front().Activity, nullptr);
}

TEST(GuiModelTest, HierarchyPrintShowsTree) {
  auto App = corpus::buildConnectBotExample();
  auto R = runAnalysis(*App);
  std::ostringstream OS;
  printViewHierarchies(OS, *R);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("activity ConsoleActivity:"), std::string::npos);
  EXPECT_NE(Out.find("button_esc"), std::string::npos);
  EXPECT_NE(Out.find("console_flip"), std::string::npos);
  // Indentation reflects depth: the ESC button sits two levels down.
  EXPECT_NE(Out.find("      ImageView"), std::string::npos);
}

TEST(GuiModelTest, TransitionGraphFollowsHandlersAndCalls) {
  // A1's click handler starts A2 through a helper method; A2's onCreate
  // starts A3 directly (lifecycle edge).
  auto App = makeBundle(R"(
class A1 extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    var l: L1;
    v := new android.widget.Button;
    this.setContentView(v);
    l := new L1;
    l.init(this);
    v.setOnClickListener(l);
  }
}
class L1 implements android.view.View.OnClickListener {
  field owner: A1;
  method init(q: A1) { this.owner := q; }
  method onClick(v: android.view.View) {
    this.go();
  }
  method go() {
    var s: A1;
    var it: android.content.Intent;
    var cc: java.lang.Class;
    s := this.owner;
    it := new android.content.Intent;
    cc := classof A2;
    it.setClass(s, cc);
    s.startActivity(it);
  }
}
class A2 extends android.app.Activity {
  method onCreate() {
    var it: android.content.Intent;
    var cc: java.lang.Class;
    it := new android.content.Intent;
    cc := classof A3;
    it.setClass(this, cc);
    this.startActivity(it);
  }
}
class A3 extends android.app.Activity {
  method onCreate() { }
}
)");
  auto R = runAnalysis(*App);
  auto Transitions = buildActivityTransitionGraph(*R);

  bool FoundClickEdge = false, FoundLifecycleEdge = false;
  for (const Transition &T : Transitions) {
    if (T.From->name() == "A1" && T.To->name() == "A2" && T.Event &&
        *T.Event == android::EventKind::Click)
      FoundClickEdge = true;
    if (T.From->name() == "A2" && T.To->name() == "A3" && !T.Event)
      FoundLifecycleEdge = true;
  }
  EXPECT_TRUE(FoundClickEdge)
      << "A1 --click--> A2 through the handler call chain";
  EXPECT_TRUE(FoundLifecycleEdge) << "A2 --lifecycle--> A3";

  std::ostringstream OS;
  printTransitionsDot(OS, Transitions);
  EXPECT_NE(OS.str().find("digraph atg"), std::string::npos);
  EXPECT_NE(OS.str().find("label=\"click\""), std::string::npos);
}

TEST(GuiModelTest, XmlOnClickHandlersAppearInTuples) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
  method onHelp(v: android.view.View) { }
}
)",
                        {{"main",
                          "<LinearLayout><Button android:id=\"@+id/help\" "
                          "android:onClick=\"onHelp\"/></LinearLayout>"}});
  auto R = runAnalysis(*App);
  auto Tuples = extractHandlerTuples(*R);
  ASSERT_EQ(Tuples.size(), 1u);
  EXPECT_EQ(Tuples.front().Activity->name(), "A");
  EXPECT_EQ(Tuples.front().Event, android::EventKind::Click);
  ASSERT_NE(Tuples.front().Handler, nullptr);
  EXPECT_EQ(Tuples.front().Handler->qualifiedName(), "A.onHelp/1");
}

TEST(GuiModelTest, CorpusTransitionsFormChain) {
  // The generator emits transitions A[i] -> A[i+1] in each first click
  // handler; the ATG client must recover the full cycle.
  corpus::AppSpec Spec;
  Spec.Name = "Chain";
  Spec.Seed = 5;
  Spec.Activities = 4;
  Spec.FillerClasses = 0;
  Spec.ListenersPerActivity = 1;
  Spec.DirectFindsPerActivity = 1;
  Spec.ProgViewsPerActivity = 0;
  Spec.EmitTransitions = true;
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  auto Transitions = buildActivityTransitionGraph(*R);
  unsigned ChainEdges = 0;
  for (const Transition &T : Transitions)
    if (T.Event && *T.Event == android::EventKind::Click)
      ++ChainEdges;
  EXPECT_EQ(ChainEdges, 4u); // 0->1, 1->2, 2->3, 3->0
}

TEST(GuiModelTest, EventSequencesFollowTransitions) {
  // Chain of 3 activities; sequences from A0 of length <= 3 are exactly
  // the prefixes of the click chain 0->1->2->0 (cyclic).
  corpus::AppSpec Spec;
  Spec.Name = "Seq";
  Spec.Seed = 8;
  Spec.Activities = 3;
  Spec.FillerClasses = 0;
  Spec.ListenersPerActivity = 1;
  Spec.DirectFindsPerActivity = 1;
  Spec.ProgViewsPerActivity = 0;
  Spec.EmitTransitions = true;
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);

  const ir::ClassDecl *A0 = App.Bundle->Program.findClass("SeqActivity0");
  auto Sequences = enumerateEventSequences(*R, A0, 3);
  // Lengths 1, 2, 3 — one chain, one sequence per length.
  ASSERT_EQ(Sequences.size(), 3u);
  EXPECT_EQ(Sequences[0].size(), 1u);
  EXPECT_EQ(Sequences[2].size(), 3u);
  EXPECT_EQ(Sequences[2][0].From->name(), "SeqActivity0");
  EXPECT_EQ(Sequences[2][0].To->name(), "SeqActivity1");
  EXPECT_EQ(Sequences[2][2].To->name(), "SeqActivity0"); // wraps around
  for (const EventSequence &Seq : Sequences)
    for (size_t I = 1; I < Seq.size(); ++I)
      EXPECT_EQ(Seq[I - 1].To, Seq[I].From) << "steps must chain";

  std::ostringstream OS;
  printEventSequences(OS, *R, Sequences);
  EXPECT_NE(OS.str().find("--click["), std::string::npos);
}

TEST(GuiModelTest, EventSequencesRespectCaps) {
  corpus::AppSpec Spec;
  Spec.Name = "Cap";
  Spec.Seed = 8;
  Spec.Activities = 2;
  Spec.FillerClasses = 0;
  Spec.ListenersPerActivity = 2;
  Spec.DirectFindsPerActivity = 2;
  Spec.EmitTransitions = true;
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  const ir::ClassDecl *A0 = App.Bundle->Program.findClass("CapActivity0");
  auto Sequences =
      enumerateEventSequences(*R, A0, /*MaxLength=*/50, /*MaxSequences=*/10);
  EXPECT_LE(Sequences.size(), 10u);
}

TEST(GuiModelTest, ViewReachReportsObservingMethods) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  field input: android.view.View;
  method onCreate() {
    var lid: int;
    var eid: int;
    var e: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    eid := @id/password;
    e := this.findViewById(eid);
    this.input := e;
    this.submit(e);
  }
  method submit(v: android.view.View) {
    var x: android.view.View;
    x := v;
  }
  method unrelated() {
    var y: java.lang.Object;
    y := null;
  }
}
)",
                        {{"main",
                          "<LinearLayout><EditText android:id=\"@+id/password\"/>"
                          "</LinearLayout>"}});
  auto R = runAnalysis(*App);
  auto Report = computeViewReach(*R);
  ASSERT_EQ(Report.size(), 1u);
  std::vector<std::string> Names;
  for (const ir::MethodDecl *M : Report.front().Methods)
    Names.push_back(M->qualifiedName());
  EXPECT_EQ(Names,
            (std::vector<std::string>{"A.onCreate/0", "A.submit/1"}));

  std::ostringstream OS;
  printViewReach(OS, *R, Report);
  EXPECT_NE(OS.str().find("A.submit/1"), std::string::npos);
}

TEST(GuiModelTest, ViewReachUnknownWidgetClassIsEmpty) {
  auto App = corpus::buildConnectBotExample();
  auto R = runAnalysis(*App);
  EXPECT_TRUE(computeViewReach(*R, "no.such.Widget").empty());
}

TEST(GuiModelTest, JsonExportContainsAllSections) {
  auto App = corpus::buildConnectBotExample();
  auto R = runAnalysis(*App);
  std::ostringstream OS;
  writeAnalysisJson(OS, *R);
  std::string Json = OS.str();
  for (const char *Key :
       {"\"stats\"", "\"metrics\"", "\"views\"", "\"activities\"",
        "\"ops\"", "\"tuples\"", "\"transitions\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
  EXPECT_NE(Json.find("EscapeButtonListener.onClick/1"), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"FindView2\""), std::string::npos);
}

TEST(GuiModelTest, TuplesCoverAllRegistrations) {
  corpus::AppSpec Spec;
  Spec.Name = "Cover";
  Spec.Seed = 11;
  Spec.Activities = 3;
  Spec.FillerClasses = 0;
  Spec.ListenersPerActivity = 2;
  Spec.DirectFindsPerActivity = 2;
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  auto Tuples = extractHandlerTuples(*R);
  // Each listener expectation surfaces as at least one tuple.
  for (const corpus::ListenerExpectation &E : App.Listeners) {
    bool Found = false;
    for (const HandlerTuple &T : Tuples)
      if (T.Activity && T.Activity->name() == E.ActivityClass &&
          T.Handler &&
          T.Handler->owner()->name() == E.ListenerClass)
        Found = true;
    EXPECT_TRUE(Found) << E.ActivityClass << " / " << E.ListenerClass;
  }
}

} // namespace
