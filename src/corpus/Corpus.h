//===- Corpus.h - Synthetic 20-app evaluation corpus ------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of synthetic Android applications standing in
/// for the paper's 20-app corpus (DESIGN.md, substitution table). Each
/// generated app exercises every construct the analysis models — layout
/// inflation (setContentView and LayoutInflater.inflate), find-view by id,
/// programmatic view allocation with setId/addView, listener registration,
/// and view flow through helpers, fields, and callbacks — and carries
/// ground truth for its find-view resolutions and listener associations.
///
/// The paper's precision outlier mechanism is reproduced faithfully: XBMC's
/// imprecision stems from calling-context-insensitive flow through shared
/// helper methods (Section 5). The generator routes a configurable number
/// of lookups through a shared `lookup(int): View` helper on a base
/// activity class; the helper's return variable merges all callers'
/// results, inflating receiver/result sets at downstream operations while
/// the per-caller ground truth stays singleton.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_CORPUS_CORPUS_H
#define GATOR_CORPUS_CORPUS_H

#include "android/Ops.h"
#include "corpus/AppBundle.h"
#include "support/Hash.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gator {
namespace corpus {

/// Generation parameters for one synthetic application.
struct AppSpec {
  std::string Name;
  uint32_t Seed = 1;

  /// Number of activity classes, each with its own main layout.
  unsigned Activities = 3;
  /// Plain (non-GUI) classes providing realistic program bulk.
  unsigned FillerClasses = 20;
  unsigned MethodsPerFillerClass = 4;

  /// Nodes per activity main layout (>= 3) and how many carry view ids.
  unsigned ViewsPerLayout = 10;
  unsigned IdsPerLayout = 6;

  /// Precise findViewById calls per activity (searching its own layout).
  unsigned DirectFindsPerActivity = 2;
  /// Lookups routed through the shared base-class helper (imprecision
  /// source); only the first SharedHelperUsers activities use the helper.
  unsigned SharedFindsPerActivity = 0;
  unsigned SharedHelperUsers = 0;

  /// Listener registrations per activity (each with its own listener
  /// class, registered on a found view).
  unsigned ListenersPerActivity = 1;
  /// Programmatic views per activity (new widget + setId + addView).
  unsigned ProgViewsPerActivity = 1;
  /// Item layouts inflated via LayoutInflater.inflate + addView.
  unsigned InflateItemsPerActivity = 0;

  // Hostile-input shapes (docs/ROBUSTNESS.md): sites no static analysis
  // can resolve exactly. Each mints a tagged unknown source, so any
  // nonzero knob makes the generated app analyze as DegradedInput.

  /// Views built reflectively (`classof(C).newInstance()`) and attached
  /// under the root container per activity.
  unsigned ReflectiveViewsPerActivity = 0;
  /// findViewById calls whose id comes from `getIdentifier(...)` — a
  /// run-time resource lookup the analysis models as an unknown id.
  unsigned DynamicFindsPerActivity = 0;
  /// setContentView references to layout resources that do not exist.
  unsigned MissingLayoutRefsPerActivity = 0;

  /// Register the activity itself as a click listener on one view.
  bool ActivityAsListener = false;
  /// Give every main layout a node with the app-wide shared id
  /// "common_title" and target it from the first direct find. Hierarchy
  /// tracking keeps such finds singleton; the no-hierarchy ablation makes
  /// them resolve across all activities (realistic id reuse).
  bool UseCommonIds = true;
  /// Declare an `android:onClick="onXmlTap"` handler on the common-title
  /// node of every main layout (requires UseCommonIds), handled by an
  /// activity method — the layout-declared handler mechanism.
  bool UseXmlOnClick = true;
  /// Give the app an info dialog (Dialog subclass with its own inflated
  /// layout, shown from every activity's onCreate) — exercises the dialog
  /// extension at corpus scale.
  bool UseDialog = false;
  /// Give the app a header fragment added into every activity's root
  /// container via FragmentTransaction.add — exercises the fragment
  /// extension at corpus scale.
  bool UseFragment = false;
  /// Add a ViewFlipper with two structurally identical pages to each main
  /// layout, navigated via getCurrentView() + findViewById — the
  /// ConnectBot pattern of Section 2. The page-content find legitimately
  /// resolves to both pages' views (ExpectedMatches = 2).
  bool UseFlipper = false;
  /// Emit startActivity transitions A[i] -> A[i+1] inside click handlers
  /// (exercises the activity-transition-graph client).
  bool EmitTransitions = true;
};

/// Ground truth for one find-view call site.
struct FindViewExpectation {
  std::string ClassName;  ///< class declaring the method
  std::string MethodName; ///< method containing the call
  std::string OutVar;     ///< variable receiving the result
  std::string ViewIdName; ///< the unique view the call returns at run time
  /// True when the call flows through the shared helper: the static
  /// solution is allowed (expected) to be a superset of the ground truth.
  bool ViaSharedHelper = false;
  /// Number of views the perfectly-precise solution contains (2 for the
  /// flipper page-content find, whose pages share a view id; 1 otherwise).
  unsigned ExpectedMatches = 1;
};

/// Ground truth for one listener registration.
struct ListenerExpectation {
  std::string ActivityClass;
  std::string ViewIdName;
  std::string ListenerClass;
  android::EventKind Event = android::EventKind::Click;
};

/// A generated app with its ground truth.
struct GeneratedApp {
  AppSpec Spec;
  std::unique_ptr<AppBundle> Bundle;
  std::vector<FindViewExpectation> Finds;
  std::vector<ListenerExpectation> Listeners;
};

/// Generates one application from \p Spec. The result is finalized (ready
/// to analyze); generation is deterministic in Spec (including Seed).
GeneratedApp generateApp(const AppSpec &Spec);

/// The 20 specs standing in for Table 1's corpus, in the paper's order
/// (APV ... XBMC). Class/method counts approximate the published Table 1
/// values; shared-helper knobs are tuned so the receiver-precision column
/// reproduces the shape of Table 2 (mostly < 2, XBMC an outlier near 9).
const std::vector<AppSpec> &paperCorpus();

/// Shape distribution for a synthetic fleet at 10k+-app scale. The fleet
/// mixes four app shapes so both scheduler-bound (many tiny apps) and
/// memory-bound (deep trees, wide fan-out, heavy aliasing) regimes are
/// exercised in one batch:
///  - deep: deep/wide view trees with inflated item layouts (big graphs,
///    big flow sets — the memory-bound solve);
///  - wide: wide listener fan-out (many listener classes and
///    registrations per activity);
///  - aliased: shared-helper lookups from every activity (the XBMC-style
///    context-insensitive merge, fattening receiver sets);
///  - the remainder: small baseline apps (the scheduler stress case).
/// Percentages are of the whole fleet; they must sum to <= 100.
struct FleetSpec {
  unsigned Apps = 10000;
  uint64_t Seed = 42;
  std::string NamePrefix = "Fleet";
  unsigned DeepTreePercent = 15;
  unsigned WideListenerPercent = 15;
  unsigned SharedHelperPercent = 15;

  /// Hostile-shape rates (docs/ROBUSTNESS.md), drawn independently of the
  /// shape bucket: the percentage of apps carrying reflective view
  /// construction, dynamic (getIdentifier) find ids, and missing-layout
  /// references respectively. Apps that draw a hostile shape analyze as
  /// DegradedInput. The rolls come from a dedicated per-app stream, drawn
  /// unconditionally: the knobs never perturb the shape stream or each
  /// other, and a clean fleet (all rates 0) is byte-identical to earlier
  /// releases.
  unsigned ReflectivePercent = 0;
  unsigned DynamicIdPercent = 0;
  unsigned MissingLayoutPercent = 0;
};

/// Expands a FleetSpec into per-app generation specs. Every app's knobs
/// are drawn from its own SplitMix64 stream keyed by (Fleet.Seed, index),
/// so the spec at index i is a pure function of (Fleet, i): generation is
/// deterministic and order-independent, and a parallel batch produces the
/// same fleet at every -j value (docs/PARALLEL.md determinism contract).
std::vector<AppSpec> makeFleet(const FleetSpec &Fleet);

/// Content hash over every generation parameter of \p Spec. Since
/// generateApp is a pure function of the spec, this key identifies the
/// generated app's entire input — the corpus-side analogue of
/// analysis::hashAppDir for on-disk apps, and the key the batch drivers
/// use for the content-addressed solution cache (docs/INCREMENTAL.md).
support::Hash128 hashAppSpec(const AppSpec &Spec);

} // namespace corpus
} // namespace gator

#endif // GATOR_CORPUS_CORPUS_H
