# Empty dependencies file for gator_support.
# This may be replaced when dependencies are built.
