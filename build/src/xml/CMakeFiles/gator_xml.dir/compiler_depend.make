# Empty compiler generated dependencies file for gator_xml.
# This may be replaced when dependencies are built.
