# Empty compiler generated dependencies file for gator_graph.
# This may be replaced when dependencies are built.
