//===- SourceLocation.h - Positions in input text --------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source positions used by the ALite parser, the XML parser,
/// and the diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_SOURCELOCATION_H
#define GATOR_SUPPORT_SOURCELOCATION_H

#include <ostream>
#include <string>

namespace gator {

/// A (file, line, column) position. Lines and columns are 1-based; a value
/// of 0 means "unknown".
class SourceLocation {
public:
  SourceLocation() = default;
  SourceLocation(std::string File, unsigned Line, unsigned Column)
      : File(std::move(File)), Line(Line), Column(Column) {}

  const std::string &file() const { return File; }
  unsigned line() const { return Line; }
  unsigned column() const { return Column; }

  bool isValid() const { return Line != 0; }

  /// Renders as "file:line:col" (or "<unknown>" when invalid).
  std::string str() const;

  bool operator==(const SourceLocation &Other) const {
    return File == Other.File && Line == Other.Line && Column == Other.Column;
  }

private:
  std::string File;
  unsigned Line = 0;
  unsigned Column = 0;
};

std::ostream &operator<<(std::ostream &OS, const SourceLocation &Loc);

} // namespace gator

#endif // GATOR_SUPPORT_SOURCELOCATION_H
