//===- JsonExport.cpp - Machine-readable analysis results -------*- C++ -*-===//

#include "guimodel/JsonExport.h"

#include "guimodel/GuiModel.h"
#include "support/Json.h"

using namespace gator;
using namespace gator::guimodel;
using namespace gator::analysis;
using namespace gator::graph;

void gator::guimodel::writeAnalysisJson(std::ostream &OS,
                                        const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;
  JsonWriter J(OS);

  J.beginObject();

  J.key("stats");
  J.beginObject();
  J.field("nodes", G.size());
  J.field("flowEdges", G.flowEdgeCount());
  J.field("parentChildEdges", G.parentChildEdgeCount());
  J.field("inflatedViews", G.nodesOfKind(NodeKind::ViewInfl).size());
  J.field("allocatedViews", G.nodesOfKind(NodeKind::ViewAlloc).size());
  J.field("ops", Sol.ops().size());
  J.endObject();

  auto M = Result.metrics();
  J.key("metrics");
  J.beginObject();
  J.field("receivers", M.AvgReceivers);
  if (M.AvgParameters)
    J.field("parameters", *M.AvgParameters);
  if (M.AvgResults)
    J.field("results", *M.AvgResults);
  if (M.AvgListeners)
    J.field("listeners", *M.AvgListeners);
  J.endObject();

  J.key("views");
  J.beginArray();
  for (NodeId V = 0; V < G.size(); ++V) {
    if (!isViewNodeKind(G.node(V).Kind))
      continue;
    J.beginObject();
    J.field("id", static_cast<unsigned long long>(V));
    J.field("label", G.label(V));
    J.field("class", G.node(V).Klass ? G.node(V).Klass->name() : "");
    J.field("inflated", G.node(V).Kind == NodeKind::ViewInfl);
    J.key("viewIds");
    J.beginArray();
    for (NodeId IdNode : G.viewIds(V))
      J.value(G.label(IdNode));
    J.endArray();
    J.key("listeners");
    J.beginArray();
    for (NodeId L : G.listeners(V))
      J.value(G.label(L));
    J.endArray();
    J.key("children");
    J.beginArray();
    for (NodeId C : G.children(V))
      J.value(static_cast<unsigned long long>(C));
    J.endArray();
    J.endObject();
  }
  J.endArray();

  J.key("activities");
  J.beginArray();
  for (NodeId Act : G.nodesOfKind(NodeKind::Activity)) {
    J.beginObject();
    J.field("class", G.node(Act).Klass->name());
    J.key("roots");
    J.beginArray();
    for (NodeId Root : G.roots(Act))
      J.value(static_cast<unsigned long long>(Root));
    J.endArray();
    J.endObject();
  }
  J.endArray();

  J.key("ops");
  J.beginArray();
  for (const OpSite &Op : Sol.ops()) {
    J.beginObject();
    J.field("kind", android::opKindName(Op.Spec.Kind));
    J.field("method", Op.Method ? Op.Method->qualifiedName() : "");
    J.key("receivers");
    J.beginArray();
    for (NodeId V : Sol.receiversOf(Op))
      J.value(static_cast<unsigned long long>(V));
    J.endArray();
    J.key("results");
    J.beginArray();
    for (NodeId V :
         Sol.resultsOf(Op, Result.Options.TrackViewIds,
                       Result.Options.TrackHierarchy,
                       Result.Options.FindView3ChildOnly))
      J.value(static_cast<unsigned long long>(V));
    J.endArray();
    J.endObject();
  }
  J.endArray();

  J.key("tuples");
  J.beginArray();
  for (const HandlerTuple &T : extractHandlerTuples(Result)) {
    J.beginObject();
    if (T.Activity)
      J.field("activity", T.Activity->name());
    J.field("view", static_cast<unsigned long long>(T.View));
    J.field("event", android::eventKindName(T.Event));
    if (T.Handler)
      J.field("handler", T.Handler->qualifiedName());
    J.endObject();
  }
  J.endArray();

  J.key("transitions");
  J.beginArray();
  for (const Transition &T : buildActivityTransitionGraph(Result)) {
    J.beginObject();
    J.field("from", T.From->name());
    if (T.Event)
      J.field("event", android::eventKindName(*T.Event));
    J.field("to", T.To->name());
    J.endObject();
  }
  J.endArray();

  J.endObject();
  OS << '\n';
}
