file(REMOVE_RECURSE
  "CMakeFiles/android_test.dir/android_test.cpp.o"
  "CMakeFiles/android_test.dir/android_test.cpp.o.d"
  "android_test"
  "android_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
