//===- bench_ablation.cpp - What each analysis ingredient buys --*- C++ -*-===//
//
// Ablation study over the design choices DESIGN.md calls out. The paper
// motivates each ingredient qualitatively (Section 1: implicit creation,
// hierarchical structure, id tracking, listener association); this bench
// quantifies them by disabling one ingredient at a time and re-measuring
// the Table 2 precision metrics, and by running the plain-Java baseline
// ("existing reference analyses cannot be applied directly to Android").
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "baseline/Baseline.h"
#include "corpus/Corpus.h"

#include <cstdio>
#include <iostream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::baseline;
using namespace gator::corpus;

namespace {

const AppSpec *findSpec(const char *Name) {
  for (const AppSpec &Spec : paperCorpus())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

void runVariant(const char *AppName, const char *Label,
                const AnalysisOptions &Options) {
  GeneratedApp App = generateApp(*findSpec(AppName));
  auto Result =
      GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                       App.Bundle->Android, Options, App.Bundle->Diags);
  if (!Result) {
    std::cerr << "analysis failed\n";
    std::exit(1);
  }
  auto M = Result->metrics();
  std::printf("  %-28s receivers=%-8.2f results=%-8.2f listeners=%-6.2f\n",
              Label, M.AvgReceivers, M.AvgResults.value_or(0.0),
              M.AvgListeners.value_or(0.0));
}

void runBaselineVariant(const char *AppName, PlatformCallTreatment Treatment,
                        const char *Label) {
  GeneratedApp App = generateApp(*findSpec(AppName));
  BaselineOptions Options;
  Options.Treatment = Treatment;
  BaselineResult R = runBaseline(App.Bundle->Program, App.Bundle->Android,
                                 Options, App.Bundle->Diags);
  std::printf("  %-28s findView resolved-to-layout-views %u/%u, "
              "handlers reached %u/%u\n",
              Label, R.FindViewSitesResolvedToLayoutViews, R.FindViewSites,
              R.HandlersReached, R.HandlersTotal);
}

void runApp(const char *AppName) {
  std::printf("%s:\n", AppName);

  AnalysisOptions Full;
  runVariant(AppName, "full analysis", Full);

  AnalysisOptions NoIds;
  NoIds.TrackViewIds = false;
  runVariant(AppName, "- without id tracking", NoIds);

  AnalysisOptions NoHier;
  NoHier.TrackHierarchy = false;
  runVariant(AppName, "- without hierarchy", NoHier);

  AnalysisOptions NoChildOnly;
  NoChildOnly.FindView3ChildOnly = false;
  runVariant(AppName, "- without child-only FindView3", NoChildOnly);

  AnalysisOptions TypeFilter;
  TypeFilter.DeclaredTypeFilter = true;
  runVariant(AppName, "+ declared-type filtering", TypeFilter);

  runBaselineVariant(AppName, PlatformCallTreatment::Unmodeled,
                     "plain-Java baseline");
  runBaselineVariant(AppName, PlatformCallTreatment::SummaryObjects,
                     "baseline + opaque summaries");
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Ablation: contribution of each analysis ingredient\n");
  std::printf("(higher receivers/results = less precise; the baseline "
              "resolves no find-view\n to layout views and reaches no "
              "event handlers at all)\n\n");
  runApp("ConnectBot");
  runApp("K9");
  runApp("XBMC");
  return 0;
}
