file(REMOVE_RECURSE
  "CMakeFiles/gator_corpus.dir/ConnectBot.cpp.o"
  "CMakeFiles/gator_corpus.dir/ConnectBot.cpp.o.d"
  "CMakeFiles/gator_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/gator_corpus.dir/Corpus.cpp.o.d"
  "libgator_corpus.a"
  "libgator_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
