//===- Xml.cpp - Minimal XML parser ----------------------------*- C++ -*-===//

#include "xml/Xml.h"

#include <cctype>

using namespace gator;
using namespace gator::xml;

const std::string *XmlNode::findAttr(std::string_view Name) const {
  for (const XmlAttr &A : Attrs)
    if (A.Name == Name)
      return &A.Value;
  return nullptr;
}

namespace {

/// Recursive-descent XML reader over a flat character buffer.
class Parser {
public:
  Parser(std::string_view Input, std::string FileName, DiagnosticEngine &Diags)
      : Input(Input), FileName(std::move(FileName)), Diags(Diags) {}

  std::unique_ptr<XmlNode> parseDocument() {
    skipMisc();
    if (atEnd()) {
      error("empty document");
      return nullptr;
    }
    std::unique_ptr<XmlNode> Root = parseElement();
    if (!Root)
      return nullptr;
    skipMisc();
    if (!atEnd())
      error("trailing content after root element");
    return Root;
  }

private:
  bool atEnd() const { return Pos >= Input.size(); }
  char peek() const { return atEnd() ? '\0' : Input[Pos]; }
  char peekAt(size_t Offset) const {
    return Pos + Offset >= Input.size() ? '\0' : Input[Pos + Offset];
  }

  char advance() {
    char C = Input[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLocation here() const { return SourceLocation(FileName, Line, Col); }

  void error(const std::string &Message) { Diags.error(here(), Message); }

  bool startsWith(std::string_view Prefix) const {
    return Input.substr(Pos, Prefix.size()) == Prefix;
  }

  void skipN(size_t N) {
    for (size_t I = 0; I < N && !atEnd(); ++I)
      advance();
  }

  void skipWhitespace() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
      advance();
  }

  /// Skips whitespace, comments, and processing instructions / prolog.
  void skipMisc() {
    for (;;) {
      skipWhitespace();
      if (startsWith("<!--")) {
        skipN(4);
        while (!atEnd() && !startsWith("-->"))
          advance();
        if (atEnd()) {
          error("unterminated comment");
          return;
        }
        skipN(3);
        continue;
      }
      if (startsWith("<?")) {
        skipN(2);
        while (!atEnd() && !startsWith("?>"))
          advance();
        if (atEnd()) {
          error("unterminated processing instruction");
          return;
        }
        skipN(2);
        continue;
      }
      return;
    }
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '-' || C == '.' || C == ':';
  }

  std::string parseName() {
    std::string Name;
    while (!atEnd() && isNameChar(peek()))
      Name.push_back(advance());
    return Name;
  }

  /// Parses `name="value"` or `name='value'`; true on success.
  bool parseAttr(XmlNode &Node) {
    std::string Name = parseName();
    if (Name.empty()) {
      error("expected attribute name");
      return false;
    }
    skipWhitespace();
    if (peek() != '=') {
      error("expected '=' after attribute name '" + Name + "'");
      return false;
    }
    advance();
    skipWhitespace();
    char Quote = peek();
    if (Quote != '"' && Quote != '\'') {
      error("expected quoted value for attribute '" + Name + "'");
      return false;
    }
    advance();
    std::string Value;
    while (!atEnd() && peek() != Quote)
      Value.push_back(advance());
    if (atEnd()) {
      error("unterminated value for attribute '" + Name + "'");
      return false;
    }
    advance(); // closing quote
    Node.addAttr(std::move(Name), std::move(Value));
    return true;
  }

  std::unique_ptr<XmlNode> parseElement() {
    SourceLocation Loc = here();
    if (peek() != '<') {
      error("expected '<'");
      return nullptr;
    }
    advance();
    std::string Tag = parseName();
    if (Tag.empty()) {
      error("expected element name");
      return nullptr;
    }
    auto Node = std::make_unique<XmlNode>(Tag, Loc);

    for (;;) {
      skipWhitespace();
      if (atEnd()) {
        error("unterminated start tag for <" + Tag + ">");
        return nullptr;
      }
      if (startsWith("/>")) {
        skipN(2);
        return Node; // self-closing
      }
      if (peek() == '>') {
        advance();
        break;
      }
      if (!parseAttr(*Node))
        return nullptr;
    }

    // Content: children, character data, comments; until </Tag>.
    for (;;) {
      if (atEnd()) {
        error("missing closing tag for <" + Tag + ">");
        return nullptr;
      }
      if (startsWith("<!--")) {
        skipMisc();
        continue;
      }
      if (startsWith("</")) {
        skipN(2);
        std::string CloseTag = parseName();
        skipWhitespace();
        if (peek() != '>') {
          error("malformed closing tag");
          return nullptr;
        }
        advance();
        if (CloseTag != Tag) {
          error("mismatched closing tag: expected </" + Tag + ">, found </" +
                CloseTag + ">");
          return nullptr;
        }
        return Node;
      }
      if (peek() == '<') {
        std::unique_ptr<XmlNode> Child = parseElement();
        if (!Child)
          return nullptr;
        Node->addChild(std::move(Child));
        continue;
      }
      // Character data.
      std::string Chunk;
      while (!atEnd() && peek() != '<')
        Chunk.push_back(advance());
      Node->appendText(Chunk);
    }
  }

  std::string_view Input;
  std::string FileName;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

std::unique_ptr<XmlNode> gator::xml::parseXml(std::string_view Input,
                                              const std::string &FileName,
                                              DiagnosticEngine &Diags) {
  return Parser(Input, FileName, Diags).parseDocument();
}
