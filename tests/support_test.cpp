//===- support_test.cpp - Diagnostics / interner / locations ----*- C++ -*-===//

#include "support/Diagnostics.h"
#include "support/SourceLocation.h"
#include "support/StringInterner.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;

TEST(SourceLocationTest, DefaultIsInvalid) {
  SourceLocation Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocationTest, FormatsFileLineColumn) {
  SourceLocation Loc("foo.alite", 12, 5);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "foo.alite:12:5");
  std::ostringstream OS;
  OS << Loc;
  EXPECT_EQ(OS.str(), "foo.alite:12:5");
}

TEST(SourceLocationTest, EmptyFileNameRendersAsInput) {
  SourceLocation Loc("", 3, 1);
  EXPECT_EQ(Loc.str(), "<input>:3:1");
}

TEST(SourceLocationTest, Equality) {
  SourceLocation A("f", 1, 2), B("f", 1, 2), C("f", 1, 3);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
}

TEST(DiagnosticsTest, CountsBySeverity) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning("w1");
  Diags.note(SourceLocation(), "n1");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error("e1");
  Diags.error(SourceLocation("f", 1, 1), "e2");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 4u);
}

TEST(DiagnosticsTest, PrintIncludesLocationAndSeverity) {
  DiagnosticEngine Diags;
  Diags.error(SourceLocation("m.alite", 7, 3), "bad thing");
  Diags.warning("loose end");
  std::ostringstream OS;
  Diags.print(OS);
  EXPECT_EQ(OS.str(), "m.alite:7:3: error: bad thing\nwarning: loose end\n");
}

TEST(DiagnosticsTest, ClearResetsEverything) {
  DiagnosticEngine Diags;
  Diags.error("e");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
  EXPECT_EQ(Diags.warningCount(), 0u);
}

TEST(DiagnosticsTest, SeverityLabels) {
  EXPECT_STREQ(severityLabel(DiagSeverity::Error), "error");
  EXPECT_STREQ(severityLabel(DiagSeverity::Warning), "warning");
  EXPECT_STREQ(severityLabel(DiagSeverity::Note), "note");
}

TEST(StringInternerTest, InterningIsIdempotent) {
  StringInterner Interner;
  Symbol A = Interner.intern("hello");
  Symbol B = Interner.intern("hello");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Interner.size(), 1u);
  EXPECT_EQ(Interner.text(A), "hello");
}

TEST(StringInternerTest, DistinctStringsDistinctSymbols) {
  StringInterner Interner;
  Symbol A = Interner.intern("a");
  Symbol B = Interner.intern("b");
  EXPECT_NE(A, B);
  EXPECT_EQ(Interner.text(A), "a");
  EXPECT_EQ(Interner.text(B), "b");
}

TEST(StringInternerTest, LookupWithoutInterning) {
  StringInterner Interner;
  EXPECT_FALSE(Interner.lookup("missing").isValid());
  Interner.intern("present");
  EXPECT_TRUE(Interner.lookup("present").isValid());
}

TEST(StringInternerTest, SurvivesGrowth) {
  // The string_view keys must stay valid across vector reallocation.
  StringInterner Interner;
  std::vector<Symbol> Symbols;
  for (int I = 0; I < 1000; ++I)
    Symbols.push_back(Interner.intern("sym" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Interner.text(Symbols[I]), "sym" + std::to_string(I));
    EXPECT_EQ(Interner.lookup("sym" + std::to_string(I)), Symbols[I]);
  }
}

TEST(StringInternerTest, DefaultSymbolIsInvalid) {
  Symbol S;
  EXPECT_FALSE(S.isValid());
}

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  std::ostringstream OS;
  {
    JsonWriter J(OS);
    J.beginObject();
    J.field("name", "gator");
    J.field("count", 3);
    J.field("ok", true);
    J.key("list");
    J.beginArray();
    J.value(1);
    J.value(2);
    J.endArray();
    J.key("nested");
    J.beginObject();
    J.key("none");
    J.nullValue();
    J.endObject();
    J.endObject();
  }
  EXPECT_EQ(OS.str(), "{\"name\":\"gator\",\"count\":3,\"ok\":true,"
                      "\"list\":[1,2],\"nested\":{\"none\":null}}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  std::ostringstream OS;
  {
    JsonWriter J(OS);
    J.beginObject();
    J.field("s", "a\"b\\c\nd\te");
    J.endObject();
  }
  EXPECT_EQ(OS.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream OS;
  {
    JsonWriter J(OS);
    J.beginArray();
    J.beginObject();
    J.endObject();
    J.beginArray();
    J.endArray();
    J.endArray();
  }
  EXPECT_EQ(OS.str(), "[{},[]]");
}

TEST(TimerTest, MeasuresNonNegativeMonotonicTime) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.millis(), 0.0);
}
