//===- solution_test.cpp - Solution query API unit tests --------*- C++ -*-===//

#include "corpus/ConnectBot.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::test;

namespace {

class SolutionTest : public ::testing::Test {
protected:
  void SetUp() override {
    App = corpus::buildConnectBotExample();
    ASSERT_TRUE(App && !App->Diags.hasErrors());
    Result = runAnalysis(*App);
    ASSERT_TRUE(Result);
  }

  std::unique_ptr<corpus::AppBundle> App;
  std::unique_ptr<AnalysisResult> Result;
};

TEST_F(SolutionTest, ValuesAtInvalidNodeIsEmpty) {
  EXPECT_TRUE(Result->Sol->valuesAt(InvalidNode).empty());
  EXPECT_TRUE(
      Result->Sol->valuesAt(static_cast<NodeId>(1'000'000)).empty());
}

TEST_F(SolutionTest, OpsOfKindPartitionsAllOps) {
  size_t Sum = 0;
  for (android::OpKind K :
       {android::OpKind::Inflate1, android::OpKind::Inflate2,
        android::OpKind::AddView1, android::OpKind::AddView2,
        android::OpKind::SetId, android::OpKind::SetListener,
        android::OpKind::FindView1, android::OpKind::FindView2,
        android::OpKind::FindView3, android::OpKind::StartActivity,
        android::OpKind::SetIntentClass})
    Sum += Result->Sol->opsOfKind(K).size();
  EXPECT_EQ(Sum, Result->Sol->ops().size());
}

TEST_F(SolutionTest, Inflate1ResultsAreTheMintedRoots) {
  auto Inflates = Result->Sol->opsOfKind(android::OpKind::Inflate1);
  ASSERT_EQ(Inflates.size(), 1u);
  auto Roots = Result->Sol->resultsOf(*Inflates.front(), true, true, true);
  ASSERT_EQ(Roots.size(), 1u);
  const Node &N = Result->Graph->node(Roots.front());
  EXPECT_EQ(N.Kind, NodeKind::ViewInfl);
  EXPECT_EQ(N.Klass->name(), "android.widget.RelativeLayout");
  EXPECT_EQ(N.InflateSite, Inflates.front()->OpNode);
}

TEST_F(SolutionTest, ReceiversParametersListenersOfOps) {
  auto SetListeners = Result->Sol->opsOfKind(android::OpKind::SetListener);
  ASSERT_EQ(SetListeners.size(), 1u);
  const OpSite &Op = *SetListeners.front();
  ASSERT_EQ(Result->Sol->receiversOf(Op).size(), 1u);
  ASSERT_EQ(Result->Sol->listenersAtOp(Op).size(), 1u);

  auto AddViews = Result->Sol->opsOfKind(android::OpKind::AddView2);
  ASSERT_EQ(AddViews.size(), 2u);
  for (const OpSite *AV : AddViews)
    EXPECT_EQ(Result->Sol->parametersOf(*AV).size(), 1u);
}

TEST_F(SolutionTest, OpSitesRecordEnclosingMethod) {
  for (const OpSite &Op : Result->Sol->ops()) {
    ASSERT_NE(Op.Method, nullptr);
    EXPECT_FALSE(Op.Method->owner()->isPlatform());
  }
}

TEST_F(SolutionTest, DumpMentionsEveryOp) {
  std::ostringstream OS;
  Result->Sol->dump(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("SetListener"), std::string::npos);
  EXPECT_NE(Text.find("FindView2"), std::string::npos);
  EXPECT_NE(Text.find("Inflate2"), std::string::npos);
  EXPECT_NE(Text.find("ConsoleActivity.onCreate/0"), std::string::npos);
  EXPECT_NE(Text.find("TerminalView"), std::string::npos);
  // One line per op.
  EXPECT_EQ(static_cast<size_t>(
                std::count(Text.begin(), Text.end(), '\n')),
            Result->Sol->ops().size());
}

TEST_F(SolutionTest, MetricsMatchHandComputation) {
  // ConnectBot example: receiver ops are FindView1, FindView3, SetId,
  // SetListener, 2x AddView2 — all singleton => 1.0; results over 2x
  // FindView2 + FindView1 + FindView3, all singleton => 1.0.
  auto M = Result->Sol->computeMetrics();
  EXPECT_DOUBLE_EQ(M.AvgReceivers, 1.0);
  EXPECT_DOUBLE_EQ(*M.AvgResults, 1.0);
  EXPECT_DOUBLE_EQ(*M.AvgParameters, 1.0);
  EXPECT_DOUBLE_EQ(*M.AvgListeners, 1.0);
}

TEST_F(SolutionTest, AblatedMetricQueriesUseTheFlags) {
  // Re-querying the same solved state without id tracking inflates the
  // results metric (FindView ignores the id filter).
  auto Loose = Result->Sol->computeMetrics(/*TrackViewIds=*/false,
                                           /*TrackHierarchy=*/true,
                                           /*ChildOnlyRefinement=*/true);
  auto Tight = Result->Sol->computeMetrics();
  EXPECT_GT(*Loose.AvgResults, *Tight.AvgResults);
}

} // namespace
