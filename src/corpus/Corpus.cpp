//===- Corpus.cpp - Synthetic 20-app evaluation corpus ----------*- C++ -*-===//

#include "corpus/Corpus.h"

#include "ir/ProgramBuilder.h"
#include "layout/Layout.h"

#include <random>
#include <sstream>

using namespace gator;
using namespace gator::corpus;
using namespace gator::ir;

namespace {

constexpr const char *ViewT = "android.view.View";
constexpr const char *LinearT = "android.widget.LinearLayout";
constexpr const char *ButtonT = "android.widget.Button";
constexpr const char *InflaterT = "android.view.LayoutInflater";
constexpr const char *IntentT = "android.content.Intent";
constexpr const char *ClassT = "java.lang.Class";
constexpr const char *ClickIfaceT = "android.view.View.OnClickListener";

/// Generates one application per AppSpec.
class AppGenerator {
public:
  AppGenerator(const AppSpec &Spec, GeneratedApp &Out)
      : Spec(Spec), Out(Out), App(*Out.Bundle), Rng(Spec.Seed) {}

  void run() {
    App.Name = Spec.Name;
    App.Android.install(App.Program);
    makeSharedHelper();
    makeDialogClass();
    makeFragmentClass();
    for (unsigned I = 0; I < Spec.Activities; ++I)
      makeActivity(I);
    makeFillerClasses();
    App.finalize();
  }

private:
  //===--------------------------------------------------------------------===//
  // Naming helpers
  //===--------------------------------------------------------------------===//

  std::string actClass(unsigned I) const {
    return Spec.Name + "Activity" + std::to_string(I);
  }
  std::string baseClass() const { return Spec.Name + "BaseActivity"; }
  std::string listenerClass(unsigned Act, unsigned J) const {
    return Spec.Name + "Listener" + std::to_string(Act) + "_" +
           std::to_string(J);
  }
  std::string mainLayout(unsigned I) const {
    return "main_" + std::to_string(I);
  }
  std::string itemLayout(unsigned I, unsigned J) const {
    return "item_" + std::to_string(I) + "_" + std::to_string(J);
  }
  std::string widgetId(unsigned Act, unsigned K) const {
    return "w" + std::to_string(Act) + "_" + std::to_string(K);
  }
  std::string rootId(unsigned Act) const {
    return "root_" + std::to_string(Act);
  }
  std::string flipId(unsigned Act) const {
    return "flip_" + std::to_string(Act);
  }
  std::string pageTextId(unsigned Act) const {
    return "page_text_" + std::to_string(Act);
  }

  unsigned pick(unsigned Bound) {
    return std::uniform_int_distribution<unsigned>(0, Bound - 1)(Rng);
  }

  bool usesSharedHelper(unsigned Act) const {
    return Spec.SharedFindsPerActivity > 0 && Act < Spec.SharedHelperUsers;
  }

  //===--------------------------------------------------------------------===//
  // Layout generation
  //===--------------------------------------------------------------------===//

  /// Builds the main layout for activity \p Act: a LinearLayout root with
  /// id root_<Act> and ViewsPerLayout-1 further nodes; the first
  /// IdsPerLayout of them carry ids w<Act>_<k>.
  void makeMainLayout(unsigned Act) {
    static const char *Containers[] = {"LinearLayout", "RelativeLayout",
                                       "FrameLayout"};
    static const char *Leaves[] = {"Button", "TextView", "ImageView",
                                   "EditText", "CheckBox"};

    std::vector<layout::LayoutNode *> Parents;
    auto Root =
        std::make_unique<layout::LayoutNode>("LinearLayout", rootId(Act));
    Parents.push_back(Root.get());

    // App-wide shared id: every activity's layout has a "common_title"
    // (realistic id reuse across screens; precise only with hierarchy
    // tracking).
    if (Spec.UseCommonIds) {
      auto Title =
          std::make_unique<layout::LayoutNode>("TextView", "common_title");
      if (Spec.UseXmlOnClick)
        Title->setOnClickHandlerName("onXmlTap");
      Root->addChild(std::move(Title));
    }

    // ViewFlipper with two structurally identical pages (the ConnectBot
    // pattern): both pages' TextViews share the page-content id.
    if (Spec.UseFlipper) {
      auto Flipper = std::make_unique<layout::LayoutNode>("ViewFlipper",
                                                          flipId(Act));
      for (unsigned Pg = 0; Pg < 2; ++Pg) {
        auto Page = std::make_unique<layout::LayoutNode>("LinearLayout", "");
        Page->addChild(std::make_unique<layout::LayoutNode>(
            "TextView", pageTextId(Act)));
        Flipper->addChild(std::move(Page));
      }
      Root->addChild(std::move(Flipper));
    }

    unsigned Total = std::max(3u, Spec.ViewsPerLayout);
    unsigned Ids = std::min(Spec.IdsPerLayout, Total - 1);
    for (unsigned K = 1; K < Total; ++K) {
      bool Container = pick(100) < 30;
      std::string Klass = Container ? Containers[pick(3)] : Leaves[pick(5)];
      std::string Id = (K <= Ids) ? widgetId(Act, K) : std::string();
      auto Node = std::make_unique<layout::LayoutNode>(Klass, Id);
      layout::LayoutNode *Raw = Node.get();
      Parents[pick(static_cast<unsigned>(Parents.size()))]->addChild(
          std::move(Node));
      if (Container)
        Parents.push_back(Raw);
    }
    App.Layouts->add(mainLayout(Act), std::move(Root), App.Diags);
  }

  void makeItemLayout(unsigned Act, unsigned J) {
    auto Root = std::make_unique<layout::LayoutNode>("RelativeLayout", "");
    Root->addChild(std::make_unique<layout::LayoutNode>(
        "TextView", "item_" + std::to_string(Act) + "_" + std::to_string(J) +
                        "_text"));
    App.Layouts->add(itemLayout(Act, J), std::move(Root), App.Diags);
  }

  //===--------------------------------------------------------------------===//
  // Shared helper (imprecision source, Section 5 / XBMC mechanism)
  //===--------------------------------------------------------------------===//

  void makeSharedHelper() {
    if (Spec.SharedHelperUsers == 0 || Spec.SharedFindsPerActivity == 0)
      return;
    ClassDecl *C = App.Program.addClass(baseClass());
    C->setSuperName(android::names::Activity);
    MethodBuilder M(C->addMethod("lookup", ViewT));
    M.param("a", IntTypeName);
    M.local("r", ViewT);
    M.invoke(std::string("r"), "this", "findViewById", {"a"});
    M.ret(std::string("r"));
  }

  //===--------------------------------------------------------------------===//
  // Dialog / fragment patterns (extensions exercised at corpus scale)
  //===--------------------------------------------------------------------===//

  std::string dialogClass() const { return Spec.Name + "InfoDialog"; }
  std::string fragmentClass() const { return Spec.Name + "HeaderFragment"; }

  void makeDialogClass() {
    if (!Spec.UseDialog)
      return;
    auto Root = std::make_unique<layout::LayoutNode>("LinearLayout", "");
    Root->addChild(
        std::make_unique<layout::LayoutNode>("TextView", "dialog_text"));
    App.Layouts->add("dialog_info", std::move(Root), App.Diags);

    ClassDecl *C = App.Program.addClass(dialogClass());
    C->setSuperName(android::names::Dialog);
    MethodBuilder M(C->addMethod("onCreate", VoidTypeName));
    M.local("lid", IntTypeName);
    M.local("tid", IntTypeName);
    M.local("t", ViewT);
    M.layoutId("lid", "dialog_info");
    M.call("this", "setContentView", {"lid"});
    M.viewId("tid", "dialog_text");
    M.invoke(std::string("t"), "this", "findViewById", {"tid"});
    Out.Finds.push_back(FindViewExpectation{dialogClass(), "onCreate", "t",
                                            "dialog_text", false, 1});
  }

  void makeFragmentClass() {
    if (!Spec.UseFragment)
      return;
    auto Root = std::make_unique<layout::LayoutNode>("RelativeLayout", "");
    Root->addChild(
        std::make_unique<layout::LayoutNode>("TextView", "frag_title"));
    App.Layouts->add("frag_header", std::move(Root), App.Diags);

    ClassDecl *C = App.Program.addClass(fragmentClass());
    C->setSuperName(android::names::Fragment);
    MethodBuilder M(C->addMethod("onCreateView", ViewT));
    M.param("inflater", InflaterT);
    M.local("lid", IntTypeName);
    M.local("v", ViewT);
    M.layoutId("lid", "frag_header");
    M.invoke(std::string("v"), "inflater", "inflate", {"lid"});
    M.ret(std::string("v"));
  }

  //===--------------------------------------------------------------------===//
  // Activities
  //===--------------------------------------------------------------------===//

  void makeActivity(unsigned Act) {
    makeMainLayout(Act);
    for (unsigned J = 0; J < Spec.InflateItemsPerActivity; ++J)
      makeItemLayout(Act, J);

    ClassDecl *C = App.Program.addClass(actClass(Act));
    C->setSuperName(usesSharedHelper(Act) ? baseClass()
                                          : android::names::Activity);
    if (Spec.ActivityAsListener)
      C->addInterfaceName(ClickIfaceT);

    unsigned Ids = std::min(Spec.IdsPerLayout,
                            std::max(3u, Spec.ViewsPerLayout) - 1);

    // Listener classes (created up front so onCreate can allocate them).
    for (unsigned J = 0; J < Spec.ListenersPerActivity; ++J)
      makeListenerClass(Act, J);

    MethodBuilder OnCreate(C->addMethod("onCreate", VoidTypeName));
    OnCreate.local("lid", IntTypeName);
    OnCreate.layoutId("lid", mainLayout(Act));
    OnCreate.call("this", "setContentView", {"lid"});

    // Direct (precise) finds.
    std::vector<std::string> FoundVars;
    size_t FirstFindIndex = Out.Finds.size();
    for (unsigned K = 0; K < Spec.DirectFindsPerActivity; ++K) {
      std::string IdName = Ids ? widgetId(Act, 1 + (K % Ids)) : rootId(Act);
      if (K == 0 && Spec.UseCommonIds)
        IdName = "common_title";
      std::string IdVar = "fid" + std::to_string(K);
      std::string OutVar = "fv" + std::to_string(K);
      OnCreate.local(IdVar, IntTypeName);
      OnCreate.local(OutVar, ViewT);
      OnCreate.viewId(IdVar, IdName);
      OnCreate.invoke(OutVar, "this", "findViewById", {IdVar});
      FoundVars.push_back(OutVar);
      Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                              OutVar, IdName, false});
    }

    // Listener registrations on found views.
    for (unsigned J = 0; J < Spec.ListenersPerActivity; ++J) {
      std::string LVar = "lsn" + std::to_string(J);
      OnCreate.local(LVar, listenerClass(Act, J));
      OnCreate.assignNew(LVar, listenerClass(Act, J));
      OnCreate.invoke(std::nullopt, LVar, "init", {"this"});
      if (!FoundVars.empty()) {
        size_t Sel = J % FoundVars.size();
        OnCreate.call(FoundVars[Sel], "setOnClickListener", {LVar});
        Out.Listeners.push_back(ListenerExpectation{
            actClass(Act), Out.Finds[FirstFindIndex + Sel].ViewIdName,
            listenerClass(Act, J), android::EventKind::Click});
      }
    }

    // Activity-as-listener registration.
    if (Spec.ActivityAsListener && !FoundVars.empty()) {
      OnCreate.local("me", actClass(Act));
      OnCreate.assign("me", "this");
      OnCreate.call(FoundVars.front(), "setOnClickListener", {"me"});
      Out.Listeners.push_back(ListenerExpectation{
          actClass(Act), Out.Finds[FirstFindIndex].ViewIdName, actClass(Act),
          android::EventKind::Click});
    }

    // Programmatic views: allocate, set id, attach under the root.
    if (Spec.ProgViewsPerActivity > 0) {
      OnCreate.local("rid", IntTypeName);
      OnCreate.local("cont", LinearT);
      OnCreate.viewId("rid", rootId(Act));
      OnCreate.invoke(std::string("cont"), "this", "findViewById", {"rid"});
      Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                              "cont", rootId(Act), false});
      for (unsigned J = 0; J < Spec.ProgViewsPerActivity; ++J) {
        std::string PV = "pv" + std::to_string(J);
        std::string PId = "pvid" + std::to_string(J);
        OnCreate.local(PV, ButtonT);
        OnCreate.local(PId, IntTypeName);
        OnCreate.assignNew(PV, ButtonT);
        OnCreate.viewId(PId, "prog_" + std::to_string(Act) + "_" +
                                 std::to_string(J));
        OnCreate.call(PV, "setId", {PId});
        OnCreate.call("cont", "addView", {PV});
      }
    }

    // Shared-helper lookups (imprecise path) + consumer registrations.
    if (usesSharedHelper(Act)) {
      for (unsigned K = 0; K < Spec.SharedFindsPerActivity; ++K) {
        std::string IdName =
            Ids ? widgetId(Act, 1 + ((K + 1) % Ids)) : rootId(Act);
        std::string IdVar = "sid" + std::to_string(K);
        std::string OutVar = "sv" + std::to_string(K);
        OnCreate.local(IdVar, IntTypeName);
        OnCreate.local(OutVar, ViewT);
        OnCreate.viewId(IdVar, IdName);
        OnCreate.invoke(OutVar, "this", "lookup", {IdVar});
        Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                                OutVar, IdName, true});
        if (Spec.ListenersPerActivity > 0)
          OnCreate.call(OutVar, "setOnClickListener", {"lsn0"});
      }
    }

    // Hostile shapes (docs/ROBUSTNESS.md): each site below is statically
    // unresolvable and mints a tagged unknown source in the analysis, so
    // any of them degrades the app's solution to DegradedInput. No ground
    // truth is recorded — there is none to record.
    if (Spec.ReflectiveViewsPerActivity > 0) {
      // Fetch the root container once, then per view:
      //   v := classof(Button).newInstance(); root.addView(v)
      OnCreate.local("hrid", IntTypeName);
      OnCreate.local("hcont", LinearT);
      OnCreate.viewId("hrid", rootId(Act));
      OnCreate.invoke(std::string("hcont"), "this", "findViewById",
                      {"hrid"});
      Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                              "hcont", rootId(Act), false});
      for (unsigned J = 0; J < Spec.ReflectiveViewsPerActivity; ++J) {
        std::string CV = "rcls" + std::to_string(J);
        std::string RV = "rnew" + std::to_string(J);
        OnCreate.local(CV, ClassT);
        OnCreate.local(RV, ViewT);
        OnCreate.classConst(CV, ButtonT);
        OnCreate.invoke(std::string(RV), CV, "newInstance", {});
        OnCreate.call("hcont", "addView", {RV});
      }
    }
    for (unsigned J = 0; J < Spec.DynamicFindsPerActivity; ++J) {
      // id := getIdentifier(...); v := findViewById(id)
      std::string IV = "did" + std::to_string(J);
      std::string OV = "dv" + std::to_string(J);
      OnCreate.local(IV, IntTypeName);
      OnCreate.local(OV, ViewT);
      OnCreate.invoke(std::string(IV), "this", "getIdentifier", {});
      OnCreate.invoke(std::string(OV), "this", "findViewById", {IV});
    }
    for (unsigned J = 0; J < Spec.MissingLayoutRefsPerActivity; ++J) {
      // lid := @layout/<nonexistent>; setContentView(lid)
      std::string LV = "mlid" + std::to_string(J);
      OnCreate.local(LV, IntTypeName);
      OnCreate.layoutId(LV, "missing_" + std::to_string(Act) + "_" +
                                std::to_string(J));
      OnCreate.call("this", "setContentView", {LV});
    }

    // Show the app's info dialog (dialog extension).
    if (Spec.UseDialog) {
      OnCreate.local("dlg", dialogClass());
      OnCreate.assignNew("dlg", dialogClass());
      OnCreate.call("dlg", "show", {});
    }

    // Add the header fragment into this activity's root container
    // (fragment extension).
    if (Spec.UseFragment) {
      OnCreate.local("fm", "android.app.FragmentManager");
      OnCreate.local("tx", "android.app.FragmentTransaction");
      OnCreate.local("fg", fragmentClass());
      OnCreate.local("fcid", IntTypeName);
      OnCreate.invoke(std::string("fm"), "this", "getFragmentManager", {});
      OnCreate.invoke(std::string("tx"), "fm", "beginTransaction", {});
      OnCreate.assignNew("fg", fragmentClass());
      OnCreate.viewId("fcid", rootId(Act));
      OnCreate.call("tx", "add", {"fcid", "fg"});
      OnCreate.call("tx", "commit", {});
    }

    // Flipper navigation (the Section 2 ConnectBot pattern): find the
    // flipper, ask for the current page, find the page content by id.
    if (Spec.UseFlipper) {
      OnCreate.local("flid", IntTypeName);
      OnCreate.local("fl", "android.widget.ViewFlipper");
      OnCreate.local("cur", ViewT);
      OnCreate.local("ptid", IntTypeName);
      OnCreate.local("pt", ViewT);
      OnCreate.viewId("flid", flipId(Act));
      OnCreate.invoke(std::string("fl"), "this", "findViewById", {"flid"});
      Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                              "fl", flipId(Act), false, 1});
      OnCreate.invoke(std::string("cur"), "fl", "getCurrentView", {});
      OnCreate.viewId("ptid", pageTextId(Act));
      OnCreate.invoke(std::string("pt"), "cur", "findViewById", {"ptid"});
      // Both pages carry the id: the perfectly-precise solution has 2.
      Out.Finds.push_back(FindViewExpectation{actClass(Act), "onCreate",
                                              "pt", pageTextId(Act), false,
                                              2});
    }

    // Inflate-item methods, called from onCreate.
    for (unsigned J = 0; J < Spec.InflateItemsPerActivity; ++J) {
      std::string MName = "populate" + std::to_string(J);
      MethodBuilder Pop(C->addMethod(MName, VoidTypeName));
      Pop.local("infl", InflaterT);
      Pop.local("ilid", IntTypeName);
      Pop.local("iv", ViewT);
      Pop.local("rid", IntTypeName);
      Pop.local("cont", LinearT);
      Pop.invoke(std::string("infl"), "this", "getLayoutInflater", {});
      Pop.layoutId("ilid", itemLayout(Act, J));
      Pop.invoke(std::string("iv"), "infl", "inflate", {"ilid"});
      Pop.viewId("rid", rootId(Act));
      Pop.invoke(std::string("cont"), "this", "findViewById", {"rid"});
      Pop.call("cont", "addView", {"iv"});
      OnCreate.call("this", MName, {});
    }

    // Activity-as-listener handler.
    if (Spec.ActivityAsListener) {
      MethodBuilder OnClick(C->addMethod("onClick", VoidTypeName));
      OnClick.param("r", ViewT);
      OnClick.local("x", ViewT);
      OnClick.assign("x", "r");
    }

    // Layout-declared handler for the common-title android:onClick.
    if (Spec.UseCommonIds && Spec.UseXmlOnClick) {
      MethodBuilder Tap(C->addMethod("onXmlTap", VoidTypeName));
      Tap.param("v", ViewT);
      Tap.local("x", ViewT);
      Tap.assign("x", "v");
    }
  }

  void makeListenerClass(unsigned Act, unsigned J) {
    ClassDecl *C = App.Program.addClass(listenerClass(Act, J));
    C->addInterfaceName(ClickIfaceT);
    C->addField("owner", actClass(Act));

    MethodBuilder Init(C->addMethod("init", VoidTypeName));
    Init.param("q", actClass(Act));
    Init.storeField("this", "owner", "q");

    MethodBuilder OnClick(C->addMethod("onClick", VoidTypeName));
    OnClick.param("r", ViewT);
    OnClick.local("x", ViewT);
    OnClick.assign("x", "r");

    // Transition to the next activity from the first listener's handler.
    if (Spec.EmitTransitions && J == 0 && Spec.Activities > 1) {
      unsigned Next = (Act + 1) % Spec.Activities;
      OnClick.local("s", actClass(Act));
      OnClick.local("it", IntentT);
      OnClick.local("cc", ClassT);
      OnClick.loadField("s", "this", "owner");
      OnClick.assignNew("it", IntentT);
      OnClick.classConst("cc", actClass(Next));
      OnClick.call("it", "setClass", {"s", "cc"});
      OnClick.call("s", "startActivity", {"it"});
    }
  }

  //===--------------------------------------------------------------------===//
  // Filler bulk
  //===--------------------------------------------------------------------===//

  void makeFillerClasses() {
    for (unsigned K = 0; K < Spec.FillerClasses; ++K) {
      std::string Name = Spec.Name + "Data" + std::to_string(K);
      ClassDecl *C = App.Program.addClass(Name);
      std::string NextName =
          Spec.Name + "Data" +
          std::to_string((K + 1) % std::max(1u, Spec.FillerClasses));
      C->addField("next", NextName);
      C->addField("payload", ObjectClassName);

      for (unsigned J = 0; J < Spec.MethodsPerFillerClass; ++J) {
        MethodBuilder M(
            C->addMethod("m" + std::to_string(J), ObjectClassName));
        M.param("p", ObjectClassName);
        M.local("x", ObjectClassName);
        M.storeField("this", "payload", "p");
        M.loadField("x", "this", "payload");
        if (J > 0) {
          // Call the previous sibling method: realistic call-graph bulk.
          M.local("y", ObjectClassName);
          M.invoke(std::string("y"), "this", "m" + std::to_string(J - 1),
                   {"x"});
          M.ret(std::string("y"));
        } else if (K > 0 && pick(2) == 0) {
          M.local("d", NextName);
          M.local("y", ObjectClassName);
          M.loadField("d", "this", "next");
          M.invoke(std::string("y"), "d", "m0", {"x"});
          M.ret(std::string("y"));
        } else {
          M.ret(std::string("x"));
        }
      }
    }
  }

  const AppSpec &Spec;
  GeneratedApp &Out;
  AppBundle &App;
  std::mt19937 Rng;
};

} // namespace

GeneratedApp gator::corpus::generateApp(const AppSpec &Spec) {
  GeneratedApp Out;
  Out.Spec = Spec;
  Out.Bundle = std::make_unique<AppBundle>();
  AppGenerator(Spec, Out).run();
  return Out;
}

//===----------------------------------------------------------------------===//
// The 20-app corpus
//===----------------------------------------------------------------------===//

namespace {

/// Derives a full spec from Table 1 scale numbers plus precision knobs.
AppSpec makeSpec(const char *Name, unsigned TableClasses,
                 unsigned TableMethods, unsigned Activities,
                 unsigned ViewsPerLayout, unsigned IdsPerLayout,
                 unsigned DirectFinds, unsigned Listeners, unsigned ProgViews,
                 unsigned InflateItems, unsigned SharedFinds,
                 unsigned SharedUsers, bool Flipper, uint32_t Seed) {
  AppSpec Spec;
  Spec.Name = Name;
  Spec.Seed = Seed;
  Spec.Activities = Activities;
  Spec.ViewsPerLayout = ViewsPerLayout;
  Spec.IdsPerLayout = IdsPerLayout;
  Spec.DirectFindsPerActivity = DirectFinds;
  Spec.ListenersPerActivity = Listeners;
  Spec.ProgViewsPerActivity = ProgViews;
  Spec.InflateItemsPerActivity = InflateItems;
  Spec.SharedFindsPerActivity = SharedFinds;
  Spec.SharedHelperUsers = SharedUsers;
  Spec.UseFlipper = Flipper;

  // GUI classes generated: activities + listener classes (+ shared base).
  unsigned GuiClasses = Activities * (1 + Listeners) +
                        (SharedUsers && SharedFinds ? 1 : 0);
  Spec.FillerClasses =
      TableClasses > GuiClasses ? TableClasses - GuiClasses : 0;

  // GUI methods generated per activity: onCreate + populate* + onXmlTap;
  // per listener: init + onClick; shared base: lookup.
  unsigned GuiMethods = Activities * (2 + InflateItems) +
                        Activities * Listeners * 2 +
                        (SharedUsers && SharedFinds ? 1 : 0);
  if (Spec.FillerClasses > 0 && TableMethods > GuiMethods)
    Spec.MethodsPerFillerClass = std::max<unsigned>(
        1, (TableMethods - GuiMethods + Spec.FillerClasses / 2) /
               Spec.FillerClasses);
  else
    Spec.MethodsPerFillerClass = 1;
  return Spec;
}

} // namespace

const std::vector<AppSpec> &gator::corpus::paperCorpus() {
  // Class/method counts follow Table 1 of the paper. The remaining knobs
  // are chosen to reproduce the *structure* Table 1 reports (layout/view
  // id volume; explicitly-allocated views in 15 of 20 apps; AddView in all
  // but four) and the precision *shape* of Table 2: receivers around 1.0
  // for most apps, mild imprecision for a few, and the XBMC outlier
  // (around 9) driven by context-insensitive flow through shared helpers.
  static const std::vector<AppSpec> Corpus = [] {
    std::vector<AppSpec> Specs = {
      //       name            cls   mth  act vpl ids df ls pv inf sf su flip seed
      makeSpec("APV",            68,  415,  2, 10,  6, 3, 1, 0, 0, 0, 0, 0, 101),
      makeSpec("Astrid",       1228, 5782, 14, 14,  8, 3, 2, 1, 1, 3, 5, 1, 102),
      makeSpec("BarcodeScanner",126, 1224,  3, 11,  7, 4, 1, 0, 0, 0, 0, 0, 103),
      makeSpec("Beem",          284, 1883,  6, 12,  7, 3, 2, 1, 0, 1, 2, 0, 104),
      makeSpec("ConnectBot",    371, 2366,  5, 13,  8, 4, 2, 1, 1, 0, 0, 0, 105),
      makeSpec("FBReader",      954, 5452, 10, 13,  8, 3, 1, 1, 1, 1, 6, 1, 106),
      makeSpec("K9",            815, 5311, 12, 14,  9, 4, 2, 1, 1, 1, 3, 0, 107),
      makeSpec("KeePassDroid",  465, 2784,  8, 12,  7, 3, 2, 1, 0, 2, 3, 1, 108),
      makeSpec("Mileage",       221, 1223,  7, 11,  6, 2, 1, 1, 1, 3, 3, 1, 109),
      makeSpec("MyTracks",      485, 2680,  8, 12,  7, 3, 2, 1, 0, 1, 2, 0, 110),
      makeSpec("NPR",           249, 1359,  5, 12,  7, 2, 1, 1, 1, 2, 3, 1, 111),
      makeSpec("NotePad",        89,  394,  3, 10,  5, 2, 1, 0, 0, 0, 0, 0, 112),
      makeSpec("OpenManager",    60,  252,  3, 11,  6, 3, 2, 1, 0, 1, 2, 1, 113),
      makeSpec("OpenSudoku",    140,  728,  4, 11,  6, 3, 1, 1, 0, 1, 3, 1, 114),
      makeSpec("SipDroid",      351, 2683,  5, 12,  7, 2, 1, 1, 0, 0, 0, 0, 115),
      makeSpec("SuperGenPass",   65,  268,  2, 10,  6, 2, 1, 1, 0, 2, 2, 1, 116),
      makeSpec("TippyTipper",    57,  241,  4, 12,  8, 4, 2, 1, 0, 1, 2, 0, 117),
      makeSpec("VLC",           242, 1374,  6, 12,  7, 3, 2, 1, 1, 1, 2, 0, 118),
      makeSpec("VuDroid",        69,  385,  2, 10,  5, 2, 1, 0, 0, 0, 0, 0, 119),
      makeSpec("XBMC",          568, 3012, 12, 14,  9, 3, 2, 1, 1, 3,10, 1, 120),
    };

    // Dialog/fragment usage (the extensions) for a few larger apps —
    // realistic and irrelevant to the Table 2 metrics (dialog finds are
    // activity-style FindView2; fragment ops carry no metric).
    for (AppSpec &Spec : Specs) {
      if (Spec.Name == "K9" || Spec.Name == "Astrid" ||
          Spec.Name == "FBReader" || Spec.Name == "VLC") {
        Spec.UseDialog = true;
        --Spec.FillerClasses; // keep the Table 1 class count
      }
      if (Spec.Name == "K9" || Spec.Name == "XBMC" ||
          Spec.Name == "Astrid" || Spec.Name == "MyTracks") {
        Spec.UseFragment = true;
        --Spec.FillerClasses;
      }
    }
    return Specs;
  }();
  return Corpus;
}

//===----------------------------------------------------------------------===//
// Synthetic fleets (10k+ apps)
//===----------------------------------------------------------------------===//

namespace {

/// SplitMix64 step (Steele et al., "Fast splittable pseudorandom number
/// generators"). Small state, full-period, and cheap to seed per index —
/// exactly what an order-independent per-app stream needs.
uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Uniform draw in [Lo, Hi] from a per-app stream.
unsigned drawIn(uint64_t &State, unsigned Lo, unsigned Hi) {
  return Lo + static_cast<unsigned>(splitMix64(State) % (Hi - Lo + 1));
}

} // namespace

std::vector<AppSpec> gator::corpus::makeFleet(const FleetSpec &Fleet) {
  std::vector<AppSpec> Specs;
  Specs.reserve(Fleet.Apps);
  for (unsigned I = 0; I < Fleet.Apps; ++I) {
    // One explicit stream per index: the spec is a pure function of
    // (Fleet.Seed, I), never of generation order.
    uint64_t State = Fleet.Seed ^ (uint64_t(I) * 0x2545f4914f6cdd1dULL);

    AppSpec Spec;
    Spec.Name = Fleet.NamePrefix + std::to_string(I);
    Spec.Seed = static_cast<uint32_t>(splitMix64(State) | 1u);

    unsigned Bucket = drawIn(State, 0, 99);
    if (Bucket < Fleet.DeepTreePercent) {
      // Deep view trees: big layouts and inflated item layouts dominate
      // graph size and flow-set volume (the memory-bound solve).
      Spec.Activities = drawIn(State, 2, 4);
      Spec.ViewsPerLayout = drawIn(State, 24, 40);
      Spec.IdsPerLayout = Spec.ViewsPerLayout / 2;
      Spec.DirectFindsPerActivity = drawIn(State, 3, 6);
      Spec.InflateItemsPerActivity = drawIn(State, 1, 2);
      Spec.ListenersPerActivity = 1;
      Spec.FillerClasses = drawIn(State, 4, 8);
    } else if (Bucket < Fleet.DeepTreePercent + Fleet.WideListenerPercent) {
      // Wide listener fan-out: many listener classes and registrations.
      Spec.Activities = drawIn(State, 3, 6);
      Spec.ViewsPerLayout = drawIn(State, 10, 16);
      Spec.IdsPerLayout = drawIn(State, 6, 10);
      Spec.ListenersPerActivity = drawIn(State, 4, 8);
      Spec.ProgViewsPerActivity = drawIn(State, 1, 2);
      Spec.FillerClasses = drawIn(State, 4, 8);
    } else if (Bucket < Fleet.DeepTreePercent + Fleet.WideListenerPercent +
                            Fleet.SharedHelperPercent) {
      // Shared-helper aliasing: every activity routes lookups through the
      // shared base helper, merging results across callers (Section 5).
      Spec.Activities = drawIn(State, 4, 8);
      Spec.ViewsPerLayout = drawIn(State, 10, 14);
      Spec.IdsPerLayout = drawIn(State, 6, 9);
      Spec.SharedFindsPerActivity = drawIn(State, 2, 4);
      Spec.SharedHelperUsers = Spec.Activities;
      Spec.ListenersPerActivity = drawIn(State, 1, 2);
      Spec.FillerClasses = drawIn(State, 4, 8);
    } else {
      // Baseline: small quick apps; at fleet scale these stress the task
      // queue rather than the solver.
      Spec.Activities = drawIn(State, 2, 3);
      Spec.ViewsPerLayout = drawIn(State, 6, 10);
      Spec.IdsPerLayout = drawIn(State, 4, 6);
      Spec.DirectFindsPerActivity = 2;
      Spec.ListenersPerActivity = 1;
      Spec.ProgViewsPerActivity = 1;
      Spec.FillerClasses = drawIn(State, 2, 6);
    }
    Spec.UseFlipper = (splitMix64(State) & 7) == 0;
    Spec.UseDialog = (splitMix64(State) & 7) == 1;

    // Hostile-shape draws (docs/ROBUSTNESS.md) come from their own
    // unconditional per-app stream: every roll happens whether or not a
    // rate is set, so the knobs never perturb the shape stream or each
    // other. Clean fleets stay byte-identical to earlier releases (the
    // shape stream above is untouched), and enabling one hostile rate no
    // longer re-rolls the others — one code path for clean and hostile.
    uint64_t HostileState = Fleet.Seed ^ 0xd1b54a32d192ed03ULL ^
                            (uint64_t(I) * 0x9e3779b97f4a7c15ULL);
    const unsigned ReflectiveRoll = drawIn(HostileState, 0, 99);
    const unsigned ReflectiveCount = drawIn(HostileState, 1, 2);
    const unsigned DynamicRoll = drawIn(HostileState, 0, 99);
    const unsigned DynamicCount = drawIn(HostileState, 1, 2);
    const unsigned MissingRoll = drawIn(HostileState, 0, 99);
    if (ReflectiveRoll < Fleet.ReflectivePercent)
      Spec.ReflectiveViewsPerActivity = ReflectiveCount;
    if (DynamicRoll < Fleet.DynamicIdPercent)
      Spec.DynamicFindsPerActivity = DynamicCount;
    if (MissingRoll < Fleet.MissingLayoutPercent)
      Spec.MissingLayoutRefsPerActivity = 1;
    Specs.push_back(std::move(Spec));
  }
  return Specs;
}

support::Hash128 gator::corpus::hashAppSpec(const AppSpec &Spec) {
  support::ContentHasher H;
  H.field("gator-app-spec", "v1");
  H.field("Name", Spec.Name);
  H.u64("Seed", Spec.Seed);
  H.u64("Activities", Spec.Activities);
  H.u64("FillerClasses", Spec.FillerClasses);
  H.u64("MethodsPerFillerClass", Spec.MethodsPerFillerClass);
  H.u64("ViewsPerLayout", Spec.ViewsPerLayout);
  H.u64("IdsPerLayout", Spec.IdsPerLayout);
  H.u64("DirectFindsPerActivity", Spec.DirectFindsPerActivity);
  H.u64("SharedFindsPerActivity", Spec.SharedFindsPerActivity);
  H.u64("SharedHelperUsers", Spec.SharedHelperUsers);
  H.u64("ListenersPerActivity", Spec.ListenersPerActivity);
  H.u64("ProgViewsPerActivity", Spec.ProgViewsPerActivity);
  H.u64("InflateItemsPerActivity", Spec.InflateItemsPerActivity);
  H.u64("ReflectiveViewsPerActivity", Spec.ReflectiveViewsPerActivity);
  H.u64("DynamicFindsPerActivity", Spec.DynamicFindsPerActivity);
  H.u64("MissingLayoutRefsPerActivity", Spec.MissingLayoutRefsPerActivity);
  H.boolean("ActivityAsListener", Spec.ActivityAsListener);
  H.boolean("UseCommonIds", Spec.UseCommonIds);
  H.boolean("UseXmlOnClick", Spec.UseXmlOnClick);
  H.boolean("UseDialog", Spec.UseDialog);
  H.boolean("UseFragment", Spec.UseFragment);
  H.boolean("UseFlipper", Spec.UseFlipper);
  H.boolean("EmitTransitions", Spec.EmitTransitions);
  return H.digest();
}
