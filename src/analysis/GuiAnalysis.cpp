//===- GuiAnalysis.cpp - Analysis facade ------------------------*- C++ -*-===//

#include "analysis/GuiAnalysis.h"

#include "analysis/GraphBuilder.h"
#include "hier/ClassHierarchy.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace gator;
using namespace gator::analysis;

std::unique_ptr<AnalysisResult>
GuiAnalysis::run(const ir::Program &P, layout::LayoutRegistry &Layouts,
                 const android::AndroidModel &AM,
                 const AnalysisOptions &Options, DiagnosticEngine &Diags) {
  auto Result = std::make_unique<AnalysisResult>();
  Result->Options = Options;
  Result->Graph = std::make_unique<graph::ConstraintGraph>();
  Result->Sol = std::make_unique<Solution>(*Result->Graph, AM);

  unsigned CheckFailuresBefore = Diags.checkFailureCount();

  Timer BuildTimer;
  Result->Graph->setDiagnostics(&Diags);
  {
    support::TraceSpan BuildSpan(Options.Trace, "graph-build");
    hier::ClassHierarchy CH(P, &Diags);
    GraphBuilder Builder(P, Layouts, AM, CH, Diags);
    Builder.setTrace(Options.Trace);
    Builder.setModelUnknownSources(Options.ModelUnknownSources);
    if (!Builder.build(*Result->Graph, Result->Sol->opSites()))
      Result->Sol->markDegraded();
    BuildSpan.arg("nodes", Result->Graph->size());
    BuildSpan.arg("ops", Result->Sol->opSites().size());
  }
  Result->BuildSeconds = BuildTimer.seconds();

  if (Options.RecordProvenance) {
    Result->Provenance = std::make_unique<ProvenanceRecorder>();
    // Endpoint-kind checks let the recorder flag facts involving unknown
    // nodes as approximate (docs/ROBUSTNESS.md).
    Result->Provenance->bindGraph(Result->Graph.get());
  }

  Timer SolveTimer;
  {
    support::TraceSpan SolveSpan(Options.Trace, "solve");
    Solver S(*Result->Graph, *Result->Sol, Layouts, AM, Options, Diags);
    S.setProvenance(Result->Provenance.get());
    Result->Stats = S.solve();
    SolveSpan.arg("propagations", Result->Stats.Propagations);
  }
  Result->SolveSeconds = SolveTimer.seconds();

  // Any recoverable-invariant failure during this run (graph edge drops,
  // hierarchy degradations) means facts may have been discarded.
  if (Diags.checkFailureCount() != CheckFailuresBefore)
    Result->Sol->markDegraded();
  // Unknown-source nodes mean some facts are conservative approximations
  // of hostile input (reflection, dynamic ids, missing resources): the
  // solution is usable but must not claim completeness.
  if (!Result->Graph->nodesOfKind(graph::NodeKind::UnknownView).empty() ||
      !Result->Graph->nodesOfKind(graph::NodeKind::UnknownId).empty())
    Result->Sol->markDegraded();
  return Result;
}
