//===- LayoutWriter.h - Layout tree to XML serialization --------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes layout trees back to the XML syntax accepted by
/// layout::readLayoutXml (write -> read round-trips; see the layout
/// tests). Used by the corpus export tool so generated applications can
/// be analyzed from disk with `gator_cli`.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_LAYOUT_LAYOUTWRITER_H
#define GATOR_LAYOUT_LAYOUTWRITER_H

#include "layout/Layout.h"

#include <ostream>
#include <string>

namespace gator {
namespace layout {

/// Writes \p Node as an XML element tree to \p OS. \p Indent is the
/// current indentation depth (two spaces per level).
void writeLayoutXml(const LayoutNode &Node, std::ostream &OS,
                    unsigned Indent = 0);

/// Convenience: the XML document text for a layout definition.
std::string layoutToXml(const LayoutDef &Def);

} // namespace layout
} // namespace gator

#endif // GATOR_LAYOUT_LAYOUTWRITER_H
