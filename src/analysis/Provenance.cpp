//===- Provenance.cpp - Derivation recording for solver facts -------------===//

#include "analysis/Provenance.h"

#include <unordered_set>

using namespace gator;
using namespace gator::analysis;

const char *gator::analysis::derivRuleName(DerivRule Rule) {
  switch (Rule) {
  case DerivRule::Seed:
    return "Seed";
  case DerivRule::FlowEdge:
    return "FlowEdge";
  case DerivRule::Inflate:
    return "Inflate";
  case DerivRule::InflateAttach:
    return "InflateAttach";
  case DerivRule::AddView1:
    return "AddView1";
  case DerivRule::AddView2:
    return "AddView2";
  case DerivRule::SetId:
    return "SetId";
  case DerivRule::SetListener:
    return "SetListener";
  case DerivRule::ListenerCallback:
    return "ListenerCallback";
  case DerivRule::XmlOnClick:
    return "XmlOnClick";
  case DerivRule::FindView:
    return "FindView";
  case DerivRule::FragmentAdd:
    return "FragmentAdd";
  case DerivRule::SetAdapter:
    return "SetAdapter";
  case DerivRule::External:
    return "External";
  }
  return "Unknown";
}

const char *gator::analysis::factKindName(FactKind Kind) {
  switch (Kind) {
  case FactKind::Flow:
    return "flowsTo";
  case FactKind::ParentChild:
    return "parentOf";
  case FactKind::HasId:
    return "hasId";
  case FactKind::Root:
    return "rootOf";
  case FactKind::Listener:
    return "listens";
  case FactKind::RootsLayout:
    return "rootsLayout";
  }
  return "fact";
}

void ProvenanceRecorder::record(FactKind Kind, graph::NodeId A,
                                graph::NodeId B, DerivRule Rule, FactId P0,
                                FactId P1, FactId P2) {
  Derivation D;
  D.Rule = Rule;
  D.Premises = {P0, P1, P2};
  D.Depth = 1;
  for (FactId P : D.Premises)
    if (P != NoFact && Derivs[P].Depth + 1 > D.Depth)
      D.Depth = Derivs[P].Depth + 1;

  auto &Map = IndexByKind[static_cast<size_t>(Kind)];
  auto [It, Inserted] =
      Map.try_emplace(key(A, B), static_cast<FactId>(Facts.size()));
  if (Inserted) {
    Facts.push_back(Fact{Kind, A, B});
    Derivs.push_back(D);
  } else if (D.Depth < Derivs[It->second].Depth) {
    // A shallower re-derivation wins: --explain reports the shortest
    // route the solve found to this fact.
    Derivs[It->second] = D;
  }
  if (D.Depth > MaxDepth)
    MaxDepth = D.Depth;
}

ProvenanceRecorder::FactId ProvenanceRecorder::find(FactKind Kind,
                                                    graph::NodeId A,
                                                    graph::NodeId B) const {
  const auto &Map = IndexByKind[static_cast<size_t>(Kind)];
  auto It = Map.find(key(A, B));
  return It == Map.end() ? NoFact : It->second;
}

namespace {

void printOne(std::ostream &OS, const ProvenanceRecorder &Prov,
              ProvenanceRecorder::FactId Id, const graph::ConstraintGraph &G,
              unsigned Indent, unsigned MaxPrintDepth,
              std::unordered_set<ProvenanceRecorder::FactId> &Printed) {
  const auto &F = Prov.fact(Id);
  const auto &D = Prov.derivation(Id);
  for (unsigned I = 0; I < Indent; ++I)
    OS << "  ";
  OS << factKindName(F.Kind) << '(' << G.label(F.A);
  if (F.B != graph::InvalidNode)
    OS << ", " << G.label(F.B);
  OS << ")  [" << derivRuleName(D.Rule) << ']';
  bool HasPremise = false;
  for (auto P : D.Premises)
    HasPremise |= P != ProvenanceRecorder::NoFact;
  if (!HasPremise) {
    OS << '\n';
    return;
  }
  if (!Printed.insert(Id).second) {
    OS << "  (see above)\n";
    return;
  }
  if (Indent >= MaxPrintDepth) {
    OS << "  (...)\n";
    return;
  }
  OS << '\n';
  for (auto P : D.Premises)
    if (P != ProvenanceRecorder::NoFact)
      printOne(OS, Prov, P, G, Indent + 1, MaxPrintDepth, Printed);
}

} // namespace

void ProvenanceRecorder::printDerivation(std::ostream &OS, FactId Id,
                                         const graph::ConstraintGraph &G,
                                         unsigned MaxPrintDepth) const {
  if (Id == NoFact || Id >= Facts.size()) {
    OS << "(no derivation recorded)\n";
    return;
  }
  std::unordered_set<FactId> Printed;
  printOne(OS, *this, Id, G, 0, MaxPrintDepth, Printed);
}
