//===- dex_test.cpp - DexLite bytecode frontend tests -----------*- C++ -*-===//

#include "dex/DexLite.h"
#include "parser/Printer.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::ir;
using namespace gator::test;

namespace {

/// Builds a bundle from DexLite text plus layouts.
std::unique_ptr<corpus::AppBundle>
makeDexBundle(const std::string &Source,
              const std::vector<std::pair<std::string, std::string>>
                  &Layouts = {}) {
  auto App = std::make_unique<corpus::AppBundle>();
  App->Android.install(App->Program);
  bool Ok = dex::parseDexLite(Source, "test.dexlite", App->Program,
                              App->Diags);
  for (const auto &[Name, Xml] : Layouts)
    Ok &= layout::readLayoutXml(*App->Layouts, Name, Xml, App->Diags) !=
          nullptr;
  Ok &= App->finalize();
  if (!Ok || App->Diags.hasErrors()) {
    std::ostringstream OS;
    App->Diags.print(OS);
    ADD_FAILURE() << "dex bundle build failed:\n" << OS.str();
  }
  return App;
}

const char *SimpleLayout = R"(
<LinearLayout android:id="@+id/root">
  <Button android:id="@+id/ok" />
  <TextView android:id="@+id/title" />
</LinearLayout>
)";

TEST(DexLiteTest, ParsesClassStructure) {
  auto App = makeDexBundle(R"(
# A listener and its activity.
.interface Clickable
.end class

.class A extends android.app.Activity implements Clickable, java.util.List
  .field count int
  .field static shared java.lang.Object
  .method onCreate() void
    return-void
  .end method
  .method static helper(int) int
  .end method
.end class
)");
  const ClassDecl *A = App->Program.findClass("A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->superName(), "android.app.Activity");
  ASSERT_EQ(A->interfaceNames().size(), 2u);
  EXPECT_TRUE(App->Program.findClass("Clickable")->isInterface());
  EXPECT_FALSE(A->findOwnField("count")->isStatic());
  EXPECT_TRUE(A->findOwnField("shared")->isStatic());
  // A bodiless method becomes abstract.
  EXPECT_TRUE(A->findOwnMethod("helper", 1)->isAbstract());
  EXPECT_FALSE(A->findOwnMethod("onCreate", 0)->isAbstract());
}

TEST(DexLiteTest, EndToEndAnalysisMatchesAliteEquivalent) {
  // The quickstart app, written as bytecode: find a button, register a
  // listener.
  auto App = makeDexBundle(R"(
.class MainActivity extends android.app.Activity
  .method onCreate() void
    .registers 4
    const-layout v0, main
    invoke {p0, v0}, setContentView
    const-id v1, ok
    invoke {p0, v1}, findViewById
    move-result v2
    new-instance v3, Greet
    invoke {v2, v3}, setOnClickListener
    return-void
  .end method
.end class

.class Greet implements android.view.View.OnClickListener
  .method onClick(android.view.View) void
    .registers 1
    return-void
  .end method
.end class
)",
                           {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);

  // v2 was typed android.view.View via findViewById's return type, so the
  // call classified as FindView2 and resolved to the Button.
  NodeId V2 = varNode(*App, *R, "MainActivity", "onCreate", 0, "v2");
  EXPECT_EQ(viewClassesAt(*R, V2),
            std::vector<std::string>{"android.widget.Button"});
  // The listener callback fired: onClick's parameter holds the button.
  NodeId Param = varNode(*App, *R, "Greet", "onClick", 1, "p1");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"android.widget.Button"});
  auto M = R->metrics();
  EXPECT_DOUBLE_EQ(M.AvgReceivers, 1.0);
}

TEST(DexLiteTest, RegisterRetypingSplitsVariables) {
  // v0 is reused at three different types; each rebinding must become a
  // fresh typed IR variable, keeping the operation classification sound.
  auto App = makeDexBundle(R"(
.class A extends android.app.Activity
  .method onCreate() void
    .registers 2
    const-layout v0, main
    invoke {p0, v0}, setContentView
    new-instance v0, android.widget.Button
    const-id v1, prog
    invoke {v0, v1}, setId
    move v0, v1
    return-void
  .end method
.end class
)",
                           {{"main", SimpleLayout}});
  const MethodDecl *M =
      App->Program.findClass("A")->findOwnMethod("onCreate", 0);
  // v0 bound as int, then Button, then int again: three IR variables.
  EXPECT_NE(M->findVar("v0"), InvalidVar);
  EXPECT_NE(M->findVar("v0$1"), InvalidVar);
  EXPECT_NE(M->findVar("v0$2"), InvalidVar);
  EXPECT_EQ(M->var(M->findVar("v0")).TypeName, IntTypeName);
  EXPECT_EQ(M->var(M->findVar("v0$1")).TypeName, "android.widget.Button");
  EXPECT_EQ(M->var(M->findVar("v0$2")).TypeName, IntTypeName);

  // The setId op still classified (receiver Button, arg int).
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->opsOfKind(android::OpKind::SetId).size(), 1u);
}

TEST(DexLiteTest, FieldTypesInferredThroughIGet) {
  auto App = makeDexBundle(R"(
.class Holder
  .field view android.widget.ViewFlipper
.end class

.class A extends android.app.Activity
  .method onCreate() void
    .registers 3
    new-instance v0, Holder
    iget v1, v0, view
    invoke {v1}, getCurrentView
    move-result v2
    return-void
  .end method
.end class
)");
  const MethodDecl *M =
      App->Program.findClass("A")->findOwnMethod("onCreate", 0);
  EXPECT_EQ(M->var(M->findVar("v1")).TypeName, "android.widget.ViewFlipper");
  // getCurrentView classified because v1's inferred type is ViewFlipper.
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->opsOfKind(android::OpKind::FindView3).size(), 1u);
}

TEST(DexLiteTest, StaticFieldsAndClassConstants) {
  auto App = makeDexBundle(R"(
.class Registry
  .field static current java.lang.Class
.end class

.class A extends android.app.Activity
  .method onCreate() void
    .registers 2
    const-class v0, A
    sput v0, Registry.current
    sget v1, Registry.current
    return-void
  .end method
.end class
)");
  const MethodDecl *M =
      App->Program.findClass("A")->findOwnMethod("onCreate", 0);
  ASSERT_EQ(M->body().size(), 4u);
  EXPECT_EQ(M->body()[0].Kind, StmtKind::AssignClassConst);
  EXPECT_EQ(M->body()[1].Kind, StmtKind::StoreStaticField);
  EXPECT_EQ(M->body()[1].ClassName, "Registry");
  EXPECT_EQ(M->body()[2].Kind, StmtKind::LoadStaticField);
  EXPECT_EQ(M->var(M->findVar("v1")).TypeName, "java.lang.Class");
}

TEST(DexLiteTest, ReturnFlowsInterprocedurally) {
  auto App = makeDexBundle(R"(
.class A extends android.app.Activity
  .method onCreate() void
    .registers 2
    new-instance v0, android.widget.Button
    invoke {p0, v0}, pass
    move-result v1
    return-void
  .end method
  .method pass(android.view.View) android.view.View
    .registers 1
    return p1
  .end method
.end class
)");
  auto R = runAnalysis(*App);
  NodeId V1 = varNode(*App, *R, "A", "onCreate", 0, "v1");
  EXPECT_EQ(viewClassesAt(*R, V1),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(DexLiteTest, LoweredProgramPrintsAsAlite) {
  // The bytecode frontend and the ALite frontend share the IR; a lowered
  // dex program serializes to valid ALite.
  auto App = makeDexBundle(R"(
.class A extends android.app.Activity
  .method onCreate() void
    .registers 2
    const-layout v0, main
    invoke {p0, v0}, setContentView
    return-void
  .end method
.end class
)",
                           {{"main", SimpleLayout}});
  std::string Text = parser::programToString(App->Program);
  EXPECT_NE(Text.find("v0 := @layout/main;"), std::string::npos);
  EXPECT_NE(Text.find("this.setContentView(v0);"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Error handling
//===----------------------------------------------------------------------===//

void expectDexError(const std::string &Source) {
  Program P;
  DiagnosticEngine Diags;
  android::AndroidModel AM;
  AM.install(P);
  bool Ok = dex::parseDexLite(Source, "bad.dexlite", P, Diags);
  EXPECT_TRUE(!Ok || Diags.hasErrors()) << "expected an error";
}

TEST(DexLiteTest, UseOfUnassignedRegisterIsError) {
  expectDexError(R"(
.class A
  .method m() void
    move v0, v1
  .end method
.end class
)");
}

TEST(DexLiteTest, MoveResultWithoutInvokeIsError) {
  expectDexError(R"(
.class A
  .method m() void
    .registers 1
    move-result v0
  .end method
.end class
)");
}

TEST(DexLiteTest, UnknownInstructionIsError) {
  expectDexError(".class A\n.method m() void\n  frobnicate v0\n"
                 ".end method\n.end class\n");
}

TEST(DexLiteTest, InstructionOutsideMethodIsError) {
  expectDexError(".class A\n  const-null v0\n.end class\n");
}

TEST(DexLiteTest, MissingEndMethodIsError) {
  expectDexError(".class A\n.method m() void\n  return-void\n");
}

TEST(DexLiteTest, DuplicateClassIsError) {
  expectDexError(".class A\n.end class\n.class A\n.end class\n");
}

//===----------------------------------------------------------------------===//
// Register-bounds and truncation hardening (docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//

TEST(DexLiteTest, RegistersDirectiveOutsideMethodIsError) {
  expectDexError(".class A\n  .registers 4\n.end class\n");
}

TEST(DexLiteTest, RegistersDirectiveMissingCountIsError) {
  expectDexError(".class A\n.method m() void\n  .registers\n"
                 ".end method\n.end class\n");
}

TEST(DexLiteTest, RegistersDirectiveNonNumericCountIsError) {
  expectDexError(".class A\n.method m() void\n  .registers lots\n"
                 ".end method\n.end class\n");
}

TEST(DexLiteTest, RegistersDirectiveOversizedCountIsError) {
  // The dex format caps a method at 65535 registers; a length field above
  // that (or wildly above, overflowing a naive parse) must be rejected.
  expectDexError(".class A\n.method m() void\n  .registers 65536\n"
                 ".end method\n.end class\n");
  expectDexError(".class A\n.method m() void\n"
                 "  .registers 99999999999999999999\n"
                 ".end method\n.end class\n");
}

TEST(DexLiteTest, DuplicateRegistersDirectiveIsError) {
  expectDexError(".class A\n.method m() void\n  .registers 2\n"
                 "  .registers 2\n.end method\n.end class\n");
}

TEST(DexLiteTest, RegisterIndexOverDexLimitIsError) {
  expectDexError(".class A\n.method m() void\n  const-null v70000\n"
                 ".end method\n.end class\n");
  expectDexError(".class A\n.method m() void\n"
                 "  const-null v99999999999999999999\n"
                 ".end method\n.end class\n");
}

TEST(DexLiteTest, RegisterOutsideDeclaredRangeIsError) {
  expectDexError(".class A\n.method m() void\n  .registers 2\n"
                 "  const-null v2\n.end method\n.end class\n");
}

TEST(DexLiteTest, RegistersWithinDeclaredRangeParse) {
  auto App = makeDexBundle(R"(
.class A extends android.app.Activity
  .method onCreate() void
    .registers 2
    const-null v0
    move v1, v0
    return-void
  .end method
.end class
)");
  EXPECT_NE(App->Program.findClass("A"), nullptr);
}

TEST(DexLiteTest, MalformedFixturesDiagnoseNotCrash) {
  // Every fixture is a distinct early-exit path of the reader; each must
  // produce an error diagnostic, never UB or a crash.
  const char *Fixtures[] = {
      "truncated_method.dexlite",   "truncated_class.dexlite",
      "oversized_registers.dexlite", "register_out_of_range.dexlite",
      "duplicate_registers.dexlite",
  };
  for (const char *Name : Fixtures) {
    SCOPED_TRACE(Name);
    std::ifstream In(std::string(GATOR_SOURCE_DIR) + "/tests/fixtures/" +
                     Name);
    ASSERT_TRUE(In.good()) << "missing fixture " << Name;
    std::ostringstream OS;
    OS << In.rdbuf();
    expectDexError(OS.str());
  }
}

} // namespace
