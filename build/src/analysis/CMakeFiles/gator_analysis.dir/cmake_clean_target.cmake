file(REMOVE_RECURSE
  "libgator_analysis.a"
)
