//===- Options.h - Analysis configuration -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Knobs for the GUI reference analysis. The defaults reproduce the paper's
/// configuration; the ablation benches flip individual knobs to measure
/// what each ingredient of the analysis buys.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_OPTIONS_H
#define GATOR_ANALYSIS_OPTIONS_H

#include "support/Budget.h"

namespace gator {
namespace support {
class TraceSink;
} // namespace support

namespace analysis {

struct AnalysisOptions {
  /// Track view ids and use them to resolve find-view operations. When
  /// off, FindView1/2 behave like FindView3 (any descendant matches) —
  /// ablation for the paper's id-tracking ingredient.
  bool TrackViewIds = true;

  /// Track the parent-child hierarchy. When off, find-view operations
  /// resolve to *every* view reaching the analysis — ablation showing why
  /// hierarchical structure must be modeled statically.
  bool TrackHierarchy = true;

  /// Apply the child-only refinement for FindView3 operations such as
  /// getCurrentView() (Section 4.2: "sometimes more restricted semantics
  /// applies ... employed by our implementation").
  bool FindView3ChildOnly = true;

  /// Model the implicit callback `y.n(x)` injected by a resolved
  /// set-listener call (Section 3.2, "Effects of callbacks").
  bool ModelListenerCallbacks = true;

  /// Model layout-declared handlers (`android:onClick="name"`): a clicked
  /// view with the attribute invokes the named one-argument method on the
  /// activity (or dialog) owning its hierarchy. A GATOR-tool feature on
  /// top of the paper's core analysis.
  bool ModelXmlOnClickHandlers = true;

  /// Declared-type filtering: drop a class-bearing value from a variable
  /// or field whose declared type is cast-incompatible with the value's
  /// class (neither is a subtype of the other). Downcasts in the source
  /// (`f := (ViewFlipper) e`) then act as filters, a refinement the GATOR
  /// tool family applies on top of the paper's analysis. Off by default
  /// (the paper's configuration).
  bool DeclaredTypeFilter = false;

  /// Pre-pass cloning small view-returning helper methods per call site —
  /// the context-sensitivity refinement the paper names as the cure for
  /// the XBMC outlier (Section 5). Off by default (the paper's analysis
  /// is calling-context-insensitive).
  bool ContextSensitiveHelpers = false;

  /// Maximum statement count for a method to be considered a cloneable
  /// helper by the context refinement.
  unsigned ContextHelperMaxStmts = 12;

  /// Difference propagation (docs/DELTA_SOLVER.md): each worklist visit
  /// pushes only the values that arrived since the node was last
  /// propagated, and structure-sensitive ops re-fire once per quiescent
  /// round instead of once per structure edge. Off = the naive reference
  /// mode (full-set re-propagation, eager op re-enqueue, full-graph
  /// container scans) retained for differential testing; both modes
  /// compute the identical least fixed point.
  bool DeltaPropagation = true;

  /// Worker threads for multi-app drivers (docs/PARALLEL.md): batch CLI
  /// runs, corpus-wide analyses, and the benches fan one whole-app
  /// analysis per task over a support::ThreadPool. 0 = hardware
  /// concurrency, 1 = exact serial execution (the default; no pool is
  /// constructed). A single solve stays thread-confined under this knob —
  /// it never parallelizes inside one app's analysis (SolveJobs below
  /// does that), so results are identical for every value.
  unsigned Jobs = 1;

  /// Worker threads *inside* one solve (docs/PARALLEL.md): the delta
  /// solver condenses the flow graph into SCC strata and offloads push
  /// classification to a pool, then replays the exact serial commit
  /// schedule, so dumps, digests, and provenance are byte-identical to
  /// SolveJobs=1 at every value. 0 = hardware concurrency, 1 = the exact
  /// current serial path (the default; no pool, no SCC index). Only the
  /// delta engine parallelizes; the naive reference mode and runs with
  /// DeclaredTypeFilter (whose class-hierarchy probes touch shared memo
  /// tables) fall back to serial. Batch drivers clamp this to 1 when Jobs
  /// > 1 so nested pools never oversubscribe the machine.
  unsigned SolveJobs = 1;

  /// Resource budgets (docs/ROBUSTNESS.md): work items (the historical
  /// MaxWorkItems safety valve), wall-clock deadline, graph size caps,
  /// cooperative cancellation. Exhaustion yields a consistent partial
  /// Solution marked TruncatedBudget rather than an aborted run.
  support::BudgetPolicy Budget;

  /// Span/event sink for this analysis (docs/OBSERVABILITY.md). Null (the
  /// default) disables tracing; every instrumentation hook is a single
  /// null check. The sink must outlive the analysis and is thread-confined
  /// — parallel drivers give each task its own sink.
  support::TraceSink *Trace = nullptr;

  /// Record the producing rule and premise facts of every committed
  /// flowsTo fact and relationship edge (docs/OBSERVABILITY.md), making
  /// `gator_cli --explain` able to print derivation trees. Off by default:
  /// recording costs one hash insert per committed fact.
  bool RecordProvenance = false;

  /// Incomplete-information modeling (docs/ROBUSTNESS.md): reflective
  /// view construction, non-constant find/set ids, and missing layout
  /// resources become tagged UnknownView/UnknownId graph nodes with
  /// conservative flow rules instead of being dropped. Solutions touched
  /// by an unknown source are marked DegradedInput, and each unknown node
  /// carries the reason `--explain` prints. Clean inputs mint no unknown
  /// nodes, so results there are bit-identical with the knob on or off.
  bool ModelUnknownSources = true;

  /// Cap on how many views a single unknown-id find/inflate site may
  /// yield (the receiver's full view set is the sound answer; this bounds
  /// hostile inputs from blowing up the solve). 0 = uncapped.
  unsigned UnknownFanoutBudget = 64;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_OPTIONS_H
