//===- Incremental.cpp - Edit-scale incremental re-solve --------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "analysis/GraphBuilder.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace gator;
using namespace gator::analysis;
using graph::ConstraintGraph;
using graph::InvalidNode;
using graph::Node;
using graph::NodeId;
using graph::NodeKind;
using ir::MethodDecl;
using ir::Stmt;
using ir::StmtKind;

//===----------------------------------------------------------------------===//
// Retraction closure
//===----------------------------------------------------------------------===//

namespace {

using FactId = ProvenanceRecorder::FactId;
using Fact = ProvenanceRecorder::Fact;
using Derivation = ProvenanceRecorder::Derivation;
constexpr FactId NoFact = ProvenanceRecorder::NoFact;

uint64_t edgeKey(NodeId From, NodeId To) {
  return (static_cast<uint64_t>(From) << 32) | To;
}

} // namespace

RetractionResult analysis::retractAndClose(ConstraintGraph &G, Solution &Sol,
                                           ProvenanceRecorder &Prov,
                                           const RetractionInputs &In) {
  RetractionResult Out;
  const size_t F = Prov.factCount();

  // One pass over the fact table builds the two deletion indexes:
  //  - Dependents: premise fact -> facts whose recorded derivation cites it
  //  - EdgeUse: flow edge (From,To) -> facts derived by propagating across
  //    it (rule FlowEdge; premise 0 is the source-side flow fact).
  std::vector<std::vector<FactId>> Dependents(F);
  std::unordered_map<uint64_t, std::vector<FactId>> EdgeUse;
  for (FactId I = 0; I < F; ++I) {
    if (Prov.isDead(I))
      continue;
    const Derivation &D = Prov.derivation(I);
    for (FactId Prem : D.Premises)
      if (Prem != NoFact && Prem < F)
        Dependents[Prem].push_back(I);
    if (D.Rule == DerivRule::FlowEdge && D.Premises[0] != NoFact &&
        D.Premises[0] < F) {
      const Fact &Ft = Prov.fact(I);
      const Fact &Src = Prov.fact(D.Premises[0]);
      if (Ft.Kind == FactKind::Flow && Src.Kind == FactKind::Flow)
        EdgeUse[edgeKey(Src.A, Ft.A)].push_back(I);
    }
  }

  std::vector<FactId> Work;
  std::vector<bool> Marked(F, false);
  auto kill = [&](FactId I) {
    if (I < F && !Marked[I] && !Prov.isDead(I)) {
      Marked[I] = true;
      Work.push_back(I);
    }
  };

  // Seed 1: facts carried across removed EDB edges.
  for (const auto &[From, To] : In.RemovedEdges)
    if (auto It = EdgeUse.find(edgeKey(From, To)); It != EdgeUse.end())
      for (FactId I : It->second)
        kill(I);

  // Seed 2 and 3 need one sweep: facts touching a retired node, and the
  // over-approximate consequence set of dead ops — flow facts into their
  // Out nodes plus relationship facts whose recorded premises sit at one
  // of their role nodes. Over-deletion is fine: a live role-sharing op
  // re-derives its facts in the re-derive pass.
  std::unordered_set<NodeId> Retired(In.RetireNodes.begin(),
                                     In.RetireNodes.end());
  std::unordered_set<NodeId> DeadOuts, DeadRoles;
  for (uint32_t OpI : In.DeadOps) {
    const OpSite &Op = Sol.opSites()[OpI];
    if (Op.Out != InvalidNode)
      DeadOuts.insert(Op.Out);
    for (NodeId Role : {Op.Recv, Op.IdArg, Op.ValArg, Op.AttachParent})
      if (Role != InvalidNode)
        DeadRoles.insert(Role);
  }
  auto sweepSeeds = [&](const std::unordered_set<NodeId> &Nodes) {
    for (FactId I = 0; I < F; ++I) {
      if (Marked[I] || Prov.isDead(I))
        continue;
      const Fact &Ft = Prov.fact(I);
      if (Nodes.count(Ft.A) || Nodes.count(Ft.B)) {
        kill(I);
        continue;
      }
      if (&Nodes != &Retired)
        continue;
      if (Ft.Kind == FactKind::Flow) {
        if (DeadOuts.count(Ft.A))
          kill(I);
        continue;
      }
      if (DeadRoles.empty())
        continue;
      const Derivation &D = Prov.derivation(I);
      for (FactId Prem : D.Premises) {
        if (Prem == NoFact || Prem >= F)
          continue;
        const Fact &PF = Prov.fact(Prem);
        if (PF.Kind == FactKind::Flow && DeadRoles.count(PF.A)) {
          kill(I);
          break;
        }
      }
    }
  };
  sweepSeeds(Retired);

  // The closure proper. Killing a minted view's self-seed means its whole
  // subtree is gone (all subtree seeds share the inflation's id-fact
  // premise); those nodes retire in a follow-up wave so every fact
  // touching them dies too.
  std::unordered_map<NodeId, std::vector<NodeId>> ToErase;
  std::unordered_set<NodeId> TouchedSet;
  std::unordered_set<NodeId> NewlyDead;
  std::vector<std::pair<NodeId, NodeId>> RootsLayoutKilled;
  auto drain = [&] {
    while (!Work.empty()) {
      FactId I = Work.back();
      Work.pop_back();
      const Fact Ft = Prov.fact(I);
      Prov.retract(I);
      ++Out.FactsRetracted;
      switch (Ft.Kind) {
      case FactKind::Flow:
        ToErase[Ft.A].push_back(Ft.B);
        TouchedSet.insert(Ft.A);
        if (Ft.A == Ft.B) {
          const Node &N = G.node(Ft.A);
          if (N.InflateSite != InvalidNode && !N.Retired && !Retired.count(Ft.A))
            NewlyDead.insert(Ft.A);
        }
        break;
      case FactKind::FlowLink:
        // IDB graph structure (listener/xml/fragment/adapter wiring):
        // remove the edge and everything that crossed it.
        if (G.removeFlowEdge(Ft.A, Ft.B)) {
          Out.WiredValuesForgotten.push_back(Ft.A);
          if (auto It = EdgeUse.find(edgeKey(Ft.A, Ft.B)); It != EdgeUse.end())
            for (FactId Dep : It->second)
              kill(Dep);
        }
        break;
      case FactKind::ParentChild:
        G.removeParentChildEdge(Ft.A, Ft.B);
        break;
      case FactKind::HasId:
        G.removeHasIdEdge(Ft.A, Ft.B);
        break;
      case FactKind::Root:
        G.removeRootEdge(Ft.A, Ft.B);
        break;
      case FactKind::Listener:
        G.removeListenerEdge(Ft.A, Ft.B);
        break;
      case FactKind::RootsLayout:
        G.removeRootsLayoutEdge(Ft.A, Ft.B);
        RootsLayoutKilled.emplace_back(Ft.A, Ft.B);
        break;
      }
      for (FactId Dep : Dependents[I])
        kill(Dep);
    }
  };
  drain();
  while (!NewlyDead.empty()) {
    std::unordered_set<NodeId> Wave;
    Wave.swap(NewlyDead);
    Retired.insert(Wave.begin(), Wave.end());
    sweepSeeds(Wave);
    drain();
  }

  // Apply: erase dead values from surviving sets (marking survivors
  // all-delta), clear and retire dead nodes.
  auto &Sets = Sol.flowsToSets();
  for (auto &[N, Vals] : ToErase) {
    if (N >= Sets.size() || Retired.count(N))
      continue;
    std::unordered_set<NodeId> Del(Vals.begin(), Vals.end());
    if (Sets[N].eraseValues([&](NodeId V) { return Del.count(V) != 0; }))
      Out.Touched.push_back(N);
  }
  for (NodeId R : Retired) {
    if (R < Sets.size())
      Sets[R].eraseValues([](NodeId) { return true; });
    G.retireNode(R);
    Out.RetiredNodes.push_back(R);
  }

  // Exact inflation-memo keys whose minted subtree died: the root's
  // retracted RootsLayout fact names the (site, layout/unknown-id) pair.
  for (const auto &[Root, Low] : RootsLayoutKilled)
    if (Retired.count(Root)) {
      const Node &N = G.node(Root);
      if (N.InflateSite != InvalidNode)
        Out.MintsRetired.emplace_back(N.InflateSite, Low);
    }

  std::sort(Out.Touched.begin(), Out.Touched.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Solution digest
//===----------------------------------------------------------------------===//

namespace {

/// Stable name for a var/field node (role nodes and set owners).
std::string refName(const ConstraintGraph &G, NodeId Id) {
  const Node &N = G.node(Id);
  switch (N.Kind) {
  case NodeKind::Var:
    return N.Method->qualifiedName() + "#" + N.Method->var(N.Var).Name;
  case NodeKind::Field:
    return "field:" + N.Field->qualifiedName();
  default:
    return "node" + std::to_string(Id); // not expected for roles
  }
}

/// Stable identity of an op site across two graphs over the same program:
/// kind + method + role names. Two sites with identical keys are
/// semantically interchangeable, which is exactly what the digest wants.
std::string opIdentity(const ConstraintGraph &G, const OpSite &Op) {
  std::string K = android::opKindName(Op.Spec.Kind);
  K += "@";
  K += Op.Method->qualifiedName();
  K += " recv=" + refName(G, Op.Recv);
  if (Op.IdArg != InvalidNode)
    K += " id=" + refName(G, Op.IdArg);
  if (Op.ValArg != InvalidNode)
    K += " val=" + refName(G, Op.ValArg);
  if (Op.AttachParent != InvalidNode)
    K += " attach=" + refName(G, Op.AttachParent);
  if (Op.Out != InvalidNode)
    K += " out=" + refName(G, Op.Out);
  if (Op.Spec.Listener)
    K += " lis=" + Op.Spec.Listener->InterfaceName;
  if (Op.Spec.ChildOnly)
    K += " childonly";
  return K;
}

struct DigestContext {
  const ConstraintGraph &G;
  /// OpNode id -> op identity string (for inflate-site keys).
  std::unordered_map<NodeId, std::string> SiteKeys;
  std::vector<std::string> Memo; // per-node value keys

  const std::string &valueKey(NodeId Id) {
    if (Id >= Memo.size())
      Memo.resize(Id + 1);
    std::string &K = Memo[Id];
    if (!K.empty())
      return K;
    const Node &N = G.node(Id);
    std::ostringstream SS;
    switch (N.Kind) {
    case NodeKind::Alloc:
    case NodeKind::ViewAlloc:
      SS << "new " << (N.Klass ? N.Klass->name() : "?") << "@"
         << (N.Method ? N.Method->qualifiedName() : "?") << ":" << N.StmtIndex;
      break;
    case NodeKind::Activity:
      SS << "act " << (N.Klass ? N.Klass->name() : "?");
      break;
    case NodeKind::LayoutId:
      SS << "layout:" << N.Res;
      break;
    case NodeKind::ViewId:
      SS << "id:" << N.Res;
      break;
    case NodeKind::ClassConst:
      SS << "classof " << (N.Klass ? N.Klass->name() : "?");
      break;
    case NodeKind::ViewInfl:
      // Layout-node identity is by address: valid only for comparing two
      // solutions over the same layout registry in one process, which is
      // the digest's contract.
      SS << "infl " << (N.Klass ? N.Klass->name() : "?") << " ln="
         << static_cast<const void *>(N.LNode) << " @" << siteKey(N);
      break;
    case NodeKind::UnknownView:
      SS << "unkview r" << static_cast<int>(N.Unknown) << " m="
         << (N.Method ? N.Method->qualifiedName() : "") << " loc="
         << N.Loc.str();
      if (N.InflateSite != InvalidNode)
        SS << " @" << siteKey(N);
      break;
    case NodeKind::UnknownId:
      SS << "unkid r" << static_cast<int>(N.Unknown) << " m="
         << (N.Method ? N.Method->qualifiedName() : "") << " loc="
         << N.Loc.str();
      break;
    case NodeKind::Var:
    case NodeKind::Field:
      SS << refName(G, Id);
      break;
    case NodeKind::Op:
      SS << "op " << (SiteKeys.count(Id) ? SiteKeys[Id] : "?");
      break;
    }
    K = SS.str();
    return K;
  }

  std::string siteKey(const Node &N) {
    auto It = SiteKeys.find(N.InflateSite);
    return It != SiteKeys.end() ? It->second : std::string("site?");
  }
};

} // namespace

std::string analysis::solutionDigest(const Solution &Sol) {
  const ConstraintGraph &G = Sol.constraintGraph();
  DigestContext Ctx{G, {}, {}};
  Ctx.Memo.resize(G.size());

  // Op identities first: inflate-site keys feed minted-view value keys.
  for (const OpSite &Op : Sol.opSites())
    if (!Op.Dead)
      Ctx.SiteKeys.emplace(Op.OpNode, opIdentity(G, Op));

  std::vector<std::string> Lines;

  // Live op sites.
  for (const OpSite &Op : Sol.opSites())
    if (!Op.Dead)
      Lines.push_back("op " + opIdentity(G, Op));

  // Flow sets of every live node (op nodes hold no values; empty sets add
  // nothing and retired debris is skipped).
  const auto &Sets = Sol.flowsToSets();
  for (NodeId N = 0; N < G.size() && N < Sets.size(); ++N) {
    if (G.node(N).Retired || G.node(N).Kind == NodeKind::Op)
      continue;
    std::vector<std::string> Vals;
    for (NodeId V : Sets[N]) {
      if (V < G.size() && G.node(V).Retired)
        continue;
      Vals.push_back(Ctx.valueKey(V));
    }
    if (Vals.empty())
      continue;
    std::sort(Vals.begin(), Vals.end());
    std::string L = "set " + Ctx.valueKey(N) + " = {";
    for (size_t I = 0; I < Vals.size(); ++I) {
      if (I)
        L += ", ";
      L += Vals[I];
    }
    L += "}";
    Lines.push_back(std::move(L));
  }

  // Relationship edges between live nodes.
  auto liveEdge = [&](NodeId A, NodeId B) {
    return !G.node(A).Retired && !G.node(B).Retired;
  };
  for (NodeId N = 0; N < G.size(); ++N) {
    if (G.node(N).Retired)
      continue;
    for (NodeId C : G.children(N))
      if (liveEdge(N, C))
        Lines.push_back("pc " + Ctx.valueKey(N) + " -> " + Ctx.valueKey(C));
    for (NodeId I : G.viewIds(N))
      if (liveEdge(N, I))
        Lines.push_back("hasid " + Ctx.valueKey(N) + " " + Ctx.valueKey(I));
    for (NodeId L : G.listeners(N))
      if (liveEdge(N, L))
        Lines.push_back("lis " + Ctx.valueKey(N) + " " + Ctx.valueKey(L));
    for (NodeId L : G.rootsOfLayouts(N))
      if (liveEdge(N, L))
        Lines.push_back("rootslayout " + Ctx.valueKey(N) + " " +
                        Ctx.valueKey(L));
  }
  for (NodeId H : G.rootHolders())
    if (!G.node(H).Retired)
      for (NodeId R : G.roots(H))
        if (liveEdge(H, R))
          Lines.push_back("root " + Ctx.valueKey(H) + " " + Ctx.valueKey(R));

  // Unresolved-op markers (fidelity itself is deliberately excluded: it is
  // sticky-conservative across incremental re-solves).
  for (uint32_t I : Sol.unresolvedOps())
    if (I < Sol.opSites().size() && !Sol.opSites()[I].Dead)
      Lines.push_back("unresolved " + opIdentity(G, Sol.opSites()[I]));

  std::sort(Lines.begin(), Lines.end());
  std::string Digest;
  for (const std::string &L : Lines) {
    Digest += L;
    Digest += '\n';
  }
  return Digest;
}

//===----------------------------------------------------------------------===//
// Diffing and grafting
//===----------------------------------------------------------------------===//

namespace {

bool sameStmt(const Stmt &A, const Stmt &B) {
  return A.Kind == B.Kind && A.Lhs == B.Lhs && A.Base == B.Base &&
         A.Rhs == B.Rhs && A.FieldName == B.FieldName &&
         A.ClassName == B.ClassName && A.ResourceName == B.ResourceName &&
         A.MethodName == B.MethodName && A.Args == B.Args;
}

bool sameBody(const MethodDecl &A, const MethodDecl &B) {
  if (A.body().size() != B.body().size())
    return false;
  for (size_t I = 0; I < A.body().size(); ++I)
    if (!sameStmt(A.body()[I], B.body()[I]))
      return false;
  // Locals matter too: declared types feed the type filter, and var-id
  // equality above is only meaningful under the same declaration order.
  if (A.vars().size() != B.vars().size())
    return false;
  for (size_t I = 0; I < A.vars().size(); ++I) {
    const ir::Variable &VA = A.vars()[I];
    const ir::Variable &VB = B.vars()[I];
    if (VA.Name != VB.Name || VA.TypeName != VB.TypeName ||
        VA.IsParam != VB.IsParam || VA.IsThis != VB.IsThis)
      return false;
  }
  return true;
}

bool sameLayoutTree(const layout::LayoutNode &A, const layout::LayoutNode &B) {
  if (A.viewClassName() != B.viewClassName() ||
      A.viewIdName() != B.viewIdName() ||
      A.onClickHandlerName() != B.onClickHandlerName() ||
      A.includeLayoutName() != B.includeLayoutName() ||
      A.isMerge() != B.isMerge() || A.children().size() != B.children().size())
    return false;
  for (size_t I = 0; I < A.children().size(); ++I)
    if (!sameLayoutTree(*A.children()[I], *B.children()[I]))
      return false;
  return true;
}

std::string methodSig(const MethodDecl &M) {
  return M.name() + "/" + std::to_string(M.paramCount()) +
         (M.isStatic() ? "/s" : "");
}

} // namespace

EditDiff analysis::diffBundles(ir::Program &Base, const ir::Program &Edited,
                               const layout::LayoutRegistry &BaseLayouts,
                               const layout::LayoutRegistry &EditedLayouts) {
  EditDiff D;

  // Class sets must match exactly (by name, for non-platform classes).
  std::unordered_map<std::string, ir::ClassDecl *> BaseClasses;
  for (ir::ClassDecl *C : Base.classes())
    if (!C->isPlatform())
      BaseClasses.emplace(C->name(), C);
  size_t EditedCount = 0;
  for (const ir::ClassDecl *EC : Edited.classes()) {
    if (EC->isPlatform())
      continue;
    ++EditedCount;
    auto It = BaseClasses.find(EC->name());
    if (It == BaseClasses.end()) {
      D.Unsupported.push_back("class added: " + EC->name());
      continue;
    }
    ir::ClassDecl *BC = It->second;
    if (BC->superName() != EC->superName() ||
        BC->interfaceNames() != EC->interfaceNames() ||
        BC->isInterface() != EC->isInterface()) {
      D.Unsupported.push_back("class structure changed: " + EC->name());
      continue;
    }
    if (BC->fields().size() != EC->fields().size()) {
      D.Unsupported.push_back("field set changed: " + EC->name());
      continue;
    }
    for (size_t I = 0; I < BC->fields().size(); ++I) {
      const ir::FieldDecl *BF = BC->fields()[I];
      const ir::FieldDecl *EF = EC->fields()[I];
      if (BF->name() != EF->name() || BF->typeName() != EF->typeName() ||
          BF->isStatic() != EF->isStatic()) {
        D.Unsupported.push_back("field set changed: " + EC->name());
        break;
      }
    }

    // Methods match by (name, arity, staticness); duplicates make the
    // pairing ambiguous, so bail to a full solve.
    std::unordered_map<std::string, MethodDecl *> BaseMethods;
    bool Ambiguous = false;
    for (MethodDecl *BM : BC->methods())
      if (!BaseMethods.emplace(methodSig(*BM), BM).second)
        Ambiguous = true;
    if (Ambiguous) {
      D.Unsupported.push_back("overload signature ambiguity in " + EC->name());
      continue;
    }
    size_t Matched = 0;
    for (const MethodDecl *EM : EC->methods()) {
      auto MIt = BaseMethods.find(methodSig(*EM));
      if (MIt == BaseMethods.end()) {
        D.Unsupported.push_back("method added: " + EC->name() +
                                "." + EM->name());
        continue;
      }
      ++Matched;
      MethodDecl *BM = MIt->second;
      if (BM->returnTypeName() != EM->returnTypeName() ||
          BM->isAbstract() != EM->isAbstract()) {
        D.Unsupported.push_back("method signature changed: " + EC->name() +
                                "." + EM->name());
        continue;
      }
      if (!sameBody(*BM, *EM))
        D.Methods.emplace_back(BM, EM);
    }
    if (Matched != BC->methods().size())
      D.Unsupported.push_back("method removed from " + EC->name());
  }
  if (EditedCount != BaseClasses.size())
    D.Unsupported.push_back("class removed");

  // Layouts: same name set; differing trees are edit candidates unless
  // the layout is an <include> target (splicing into includers is beyond
  // edit scale).
  std::unordered_map<std::string, const layout::LayoutDef *> EditedDefs;
  for (const auto &Def : EditedLayouts.layouts())
    EditedDefs.emplace(Def->name(), Def.get());
  for (const auto &Def : BaseLayouts.layouts()) {
    auto It = EditedDefs.find(Def->name());
    if (It == EditedDefs.end()) {
      D.Unsupported.push_back("layout removed: " + Def->name());
      continue;
    }
    if (!Def->root() || !It->second->root()) {
      if (Def->root() != It->second->root())
        D.Unsupported.push_back("layout emptied: " + Def->name());
      continue;
    }
    if (!sameLayoutTree(*Def->root(), *It->second->root())) {
      if (BaseLayouts.includedLayouts().count(Def->name()))
        D.Unsupported.push_back("included layout edited: " + Def->name());
      else
        D.Layouts.push_back(Def->name());
    }
  }
  if (EditedDefs.size() != BaseLayouts.layouts().size())
    D.Unsupported.push_back("layout added");

  return D;
}

bool analysis::graftMethodBody(MethodDecl &Dst, const MethodDecl &Src) {
  if (Dst.isStatic() != Src.isStatic() ||
      Dst.paramCount() != Src.paramCount())
    return false;

  // Variable map: this/params by position, locals by name (appending new
  // ones). Old locals linger unreferenced; the analysis never visits a
  // variable no statement names.
  std::vector<ir::VarId> Map(Src.vars().size(), ir::InvalidVar);
  for (size_t I = 0; I < Src.vars().size(); ++I) {
    const ir::Variable &V = Src.vars()[I];
    ir::VarId SrcId = static_cast<ir::VarId>(I);
    if (V.IsThis) {
      Map[I] = Dst.thisVar();
    } else if (V.IsParam) {
      // Parameters occupy the same positional slots in both methods.
      Map[I] = SrcId;
    } else {
      ir::VarId Existing = Dst.findVar(V.Name);
      Map[I] = Existing != ir::InvalidVar ? Existing
                                          : Dst.addLocal(V.Name, V.TypeName);
    }
  }
  auto remap = [&](ir::VarId Id) {
    return Id == ir::InvalidVar ? ir::InvalidVar : Map[Id];
  };

  std::vector<Stmt> NewBody;
  NewBody.reserve(Src.body().size());
  for (const Stmt &S : Src.body()) {
    Stmt N = S;
    N.Lhs = remap(S.Lhs);
    N.Base = remap(S.Base);
    N.Rhs = remap(S.Rhs);
    for (ir::VarId &A : N.Args)
      A = remap(A);
    NewBody.push_back(std::move(N));
  }
  Dst.body() = std::move(NewBody);
  return true;
}

//===----------------------------------------------------------------------===//
// IncrementalAnalysis
//===----------------------------------------------------------------------===//

IncrementalAnalysis::IncrementalAnalysis(ir::Program &P,
                                         layout::LayoutRegistry &Layouts,
                                         const android::AndroidModel &AM,
                                         const AnalysisOptions &Options,
                                         DiagnosticEngine &Diags, Engine E)
    : P(P), Layouts(Layouts), AM(AM), Options(Options), Diags(Diags), Eng(E) {
  // The closure is a provenance consumer; there is no incremental mode
  // without recording.
  this->Options.RecordProvenance = true;
}

IncrementalAnalysis::~IncrementalAnalysis() = default;

void IncrementalAnalysis::indexRetLinks(const ir::MethodDecl &M,
                                        const MethodFootprint &FP) {
  for (const auto &[From, To] : FP.Edges) {
    const Node &N = G->node(From);
    if (N.Kind == NodeKind::Var && N.Method && N.Method != &M)
      RetLinksByCallee[N.Method].emplace_back(From, To);
  }
}

void IncrementalAnalysis::unindexRetLinks(const ir::MethodDecl &M,
                                          const MethodFootprint &FP) {
  for (const auto &[From, To] : FP.Edges) {
    const Node &N = G->node(From);
    if (N.Kind != NodeKind::Var || !N.Method || N.Method == &M)
      continue;
    auto It = RetLinksByCallee.find(N.Method);
    if (It == RetLinksByCallee.end())
      continue;
    auto &Links = It->second;
    for (size_t I = 0; I < Links.size(); ++I)
      if (Links[I].first == From && Links[I].second == To) {
        Links[I] = Links.back();
        Links.pop_back();
        break;
      }
  }
}

void IncrementalAnalysis::buildAndJournal(GraphBuilder &B,
                                          const ir::MethodDecl &M) {
  std::vector<std::pair<NodeId, NodeId>> J;
  B.setEdgeJournal(&J);
  size_t OpsBefore = Sol->opSites().size();
  B.buildOneMethod(*G, Sol->opSites(), M);
  B.setEdgeJournal(nullptr);
  MethodFootprint FP;
  FP.Edges = std::move(J);
  for (size_t I = OpsBefore; I < Sol->opSites().size(); ++I)
    FP.OpIndices.push_back(static_cast<uint32_t>(I));
  indexRetLinks(M, FP);
  Footprints[&M] = std::move(FP);
}

void IncrementalAnalysis::solveInitial() {
  G = std::make_unique<ConstraintGraph>();
  G->setDiagnostics(&Diags);
  Sol = std::make_unique<Solution>(*G, AM);
  Prov = std::make_unique<ProvenanceRecorder>();
  Prov->bindGraph(G.get());
  CH = std::make_unique<hier::ClassHierarchy>(P, &Diags);

  GraphBuilder B(P, Layouts, AM, *CH, Diags);
  B.setModelUnknownSources(Options.ModelUnknownSources);
  B.buildResources(*G);
  B.buildActivities(*G);
  // Same method order as GraphBuilder::build(), but one journaled unit at
  // a time.
  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods())
      if (!M->isAbstract())
        buildAndJournal(B, *M);
  }

  if (Eng == Engine::Fused) {
    S = std::make_unique<Solver>(*G, *Sol, Layouts, AM, Options, Diags);
    S->setProvenance(Prov.get());
    LastStats = S->solve();
  } else {
    solvePhased(*G, *Sol, Layouts, AM, Options, Diags, Prov.get());
  }
  if (!G->nodesOfKind(NodeKind::UnknownView).empty() ||
      !G->nodesOfKind(NodeKind::UnknownId).empty())
    Sol->markDegraded();
}

void IncrementalAnalysis::rederive(const RetractionResult &R,
                                   const std::vector<NodeId> &ExtraTouched,
                                   const std::vector<uint32_t> &DeadOps,
                                   const std::vector<NodeId> &DirtyLayoutNodes) {
  support::TraceSpan Span(Options.Trace, "incremental.rederive");
  LastRetracted = R.FactsRetracted;
  Sol->pruneUnresolvedDeadOps();

  std::vector<NodeId> Touched = R.Touched;
  Touched.insert(Touched.end(), ExtraTouched.begin(), ExtraTouched.end());
  std::sort(Touched.begin(), Touched.end());
  Touched.erase(std::unique(Touched.begin(), Touched.end()), Touched.end());
  LastTouched = Touched.size();
  Span.arg("touched", LastTouched);
  Span.arg("facts_retracted", LastRetracted);

  if (Eng == Engine::Fused) {
    // Memo hygiene before re-deriving (docs/INCREMENTAL.md).
    for (uint32_t OpI : DeadOps)
      S->forgetOpMemos(OpI);
    for (NodeId L : DirtyLayoutNodes)
      S->forgetLayoutMemos(L);
    std::unordered_map<NodeId, uint32_t> OpIndexOfNode;
    for (size_t I = 0; I < Sol->opSites().size(); ++I)
      OpIndexOfNode.emplace(Sol->opSites()[I].OpNode,
                            static_cast<uint32_t>(I));
    for (const auto &[Site, Low] : R.MintsRetired)
      if (auto It = OpIndexOfNode.find(Site); It != OpIndexOfNode.end())
        S->forgetInflation(It->second, Low);
    for (NodeId V : R.WiredValuesForgotten)
      S->forgetWiredValue(V);
    for (NodeId Dead : R.RetiredNodes)
      if (G->node(Dead).Kind == NodeKind::UnknownId)
        S->forgetLayoutMemos(Dead);
    LastStats = S->resolveIncremental(Touched);
  } else {
    // The phased engine reconstructs its inflation memo from graph state
    // (retired roots drop out), so a warm full run over the surviving
    // facts is the re-derive pass.
    solvePhased(*G, *Sol, Layouts, AM, Options, Diags, Prov.get());
    LastStats = SolverStats();
  }
  if (!G->nodesOfKind(NodeKind::UnknownView).empty() ||
      !G->nodesOfKind(NodeKind::UnknownId).empty())
    Sol->markDegraded();
}

bool IncrementalAnalysis::reanalyzeMethod(ir::MethodDecl &M) {
  auto FpIt = Footprints.find(&M);
  if (FpIt == Footprints.end() || !G)
    return false;
  MethodFootprint Old = std::move(FpIt->second);
  auto &Ops = Sol->opSites();

  // Tombstone the old sites; the rebuild resurrects role-identical ones.
  for (uint32_t I : Old.OpIndices)
    Ops[I].Dead = true;
  unindexRetLinks(M, Old);

  GraphBuilder B(P, Layouts, AM, *CH, Diags);
  B.setModelUnknownSources(Options.ModelUnknownSources);
  std::vector<std::pair<NodeId, NodeId>> J;
  B.setEdgeJournal(&J);
  std::vector<uint32_t> Resurrected;
  B.setOpReuse([&](const OpSite &Site) -> uint32_t {
    for (uint32_t I : Old.OpIndices) {
      const OpSite &O = Ops[I];
      if (!O.Dead || O.Spec.Kind != Site.Spec.Kind ||
          O.Spec.Listener != Site.Spec.Listener ||
          O.Spec.ChildOnly != Site.Spec.ChildOnly || O.Recv != Site.Recv ||
          O.IdArg != Site.IdArg || O.ValArg != Site.ValArg ||
          O.AttachParent != Site.AttachParent || O.Out != Site.Out)
        continue;
      Resurrected.push_back(I);
      return I;
    }
    return ~0u;
  });
  size_t OpsBefore = Ops.size();
  B.buildOneMethod(*G, Ops, M);
  B.setEdgeJournal(nullptr);

  MethodFootprint New;
  New.Edges = std::move(J);
  New.OpIndices = std::move(Resurrected);
  for (size_t I = OpsBefore; I < Ops.size(); ++I)
    New.OpIndices.push_back(static_cast<uint32_t>(I));

  // Footprint diff: edges the new body no longer contributes get removed;
  // edges it newly contributes need their targets re-pulled (a committed
  // predecessor set never re-propagates on its own).
  std::unordered_set<uint64_t> NewEdges, OldEdges;
  for (const auto &[From, To] : New.Edges)
    NewEdges.insert(edgeKey(From, To));
  for (const auto &[From, To] : Old.Edges)
    OldEdges.insert(edgeKey(From, To));
  RetractionInputs In;
  std::vector<NodeId> ExtraTouched;
  for (const auto &[From, To] : Old.Edges)
    if (!NewEdges.count(edgeKey(From, To)))
      In.RemovedEdges.emplace_back(From, To);
  for (const auto &[From, To] : New.Edges)
    if (!OldEdges.count(edgeKey(From, To)))
      ExtraTouched.push_back(To);

  // Return-link fixup for M as a *callee*: callers' result edges must
  // track M's new return statements. (Self-recursive links were already
  // rebuilt with M's own footprint.)
  if (auto RlIt = RetLinksByCallee.find(&M); RlIt != RetLinksByCallee.end()) {
    std::unordered_set<NodeId> NewRet;
    for (const Stmt &St : M.body())
      if (St.Kind == StmtKind::Return && St.Lhs != ir::InvalidVar)
        NewRet.insert(G->getVarNode(&M, St.Lhs));
    auto Links = RlIt->second; // copy: we rewrite the index below
    std::vector<std::pair<NodeId, NodeId>> Kept;
    std::unordered_set<NodeId> CallerLhs;
    std::unordered_set<uint64_t> Present;
    for (const auto &[From, To] : Links) {
      const Node &ToN = G->node(To);
      if (ToN.Method == &M) {
        Kept.emplace_back(From, To); // self-link, owned by M's footprint
        continue;
      }
      CallerLhs.insert(To);
      if (NewRet.count(From)) {
        Kept.emplace_back(From, To);
        Present.insert(edgeKey(From, To));
        continue;
      }
      // Stale: the old return var no longer returns.
      In.RemovedEdges.emplace_back(From, To);
      auto OwnIt = Footprints.find(ToN.Method);
      if (OwnIt != Footprints.end()) {
        auto &E = OwnIt->second.Edges;
        for (size_t K = 0; K < E.size(); ++K)
          if (E[K].first == From && E[K].second == To) {
            E[K] = E.back();
            E.pop_back();
            break;
          }
      }
    }
    for (NodeId To : CallerLhs)
      for (NodeId From : NewRet)
        if (!Present.count(edgeKey(From, To))) {
          if (G->addFlowEdge(From, To)) {
            Kept.emplace_back(From, To);
            ExtraTouched.push_back(To);
            const Node &ToN = G->node(To);
            auto OwnIt = Footprints.find(ToN.Method);
            if (OwnIt != Footprints.end())
              OwnIt->second.Edges.emplace_back(From, To);
          }
        }
    RlIt->second = std::move(Kept);
  }

  // Physically remove the stale EDB (each journaled edge has a unique
  // contributing method, so nothing else still claims it).
  for (const auto &[From, To] : In.RemovedEdges)
    G->removeFlowEdge(From, To);

  // Unresurrected ops die; their minted view subtrees die with them.
  for (uint32_t I : Old.OpIndices)
    if (Ops[I].Dead)
      In.DeadOps.push_back(I);
  if (!In.DeadOps.empty()) {
    std::unordered_set<NodeId> DeadSites;
    for (uint32_t I : In.DeadOps)
      DeadSites.insert(Ops[I].OpNode);
    for (NodeKind K : {NodeKind::ViewInfl, NodeKind::UnknownView})
      for (NodeId V : G->nodesOfKind(K)) {
        const Node &N = G->node(V);
        if (!N.Retired && N.InflateSite != InvalidNode &&
            DeadSites.count(N.InflateSite))
          In.RetireNodes.push_back(V);
      }
  }
  // Builder-minted unknown sources of the old body are gone: the rebuild
  // minted fresh ones for surviving hostile statements.
  for (const auto &[From, To] : Old.Edges) {
    const Node &N = G->node(From);
    if ((N.Kind == NodeKind::UnknownView || N.Kind == NodeKind::UnknownId) &&
        N.Method == &M && !N.Retired && N.InflateSite == InvalidNode &&
        !NewEdges.count(edgeKey(From, To)))
      In.RetireNodes.push_back(From);
  }
  // Allocation nodes of the old body the rebuild no longer produces —
  // deleted statements, or a `new` re-lowered with a different class (the
  // graph minted a fresh node for it). Retiring kills the stale seed
  // value; an alloc still minted by the new body appears as a new-edge
  // source and survives.
  {
    std::unordered_set<NodeId> NewSources, Listed;
    for (const auto &[From, To] : New.Edges)
      NewSources.insert(From);
    for (NodeId V : In.RetireNodes)
      Listed.insert(V);
    for (const auto &[From, To] : Old.Edges) {
      const Node &N = G->node(From);
      if ((N.Kind == NodeKind::Alloc || N.Kind == NodeKind::ViewAlloc) &&
          N.Method == &M && !N.Retired && !NewSources.count(From) &&
          Listed.insert(From).second)
        In.RetireNodes.push_back(From);
    }
  }

  indexRetLinks(M, New);
  Footprints[&M] = std::move(New);

  RetractionResult R;
  {
    support::TraceSpan Span(Options.Trace, "incremental.retract");
    R = retractAndClose(*G, *Sol, *Prov, In);
    Span.arg("facts_retracted", R.FactsRetracted);
    Span.arg("retired_nodes", R.RetiredNodes.size());
  }
  rederive(R, ExtraTouched, In.DeadOps, {});
  return true;
}

bool IncrementalAnalysis::reanalyzeLayout(
    const std::string &Name, std::unique_ptr<layout::LayoutNode> NewRoot) {
  if (!G || !NewRoot)
    return false;
  layout::LayoutDef *Def = Layouts.findByName(Name);
  if (!Def || !Def->root())
    return false;
  // Splicing an edited tree into includers is beyond edit scale.
  if (Layouts.includedLayouts().count(Name))
    return false;

  // Views minted from the old tree: collect by layout-node membership.
  std::unordered_set<const layout::LayoutNode *> OldNodes;
  std::vector<const layout::LayoutNode *> Stack{Def->root()};
  while (!Stack.empty()) {
    const layout::LayoutNode *N = Stack.back();
    Stack.pop_back();
    OldNodes.insert(N);
    for (const auto &C : N->children())
      Stack.push_back(C.get());
  }
  RetractionInputs In;
  for (NodeId V : G->nodesOfKind(NodeKind::ViewInfl)) {
    const Node &N = G->node(V);
    if (!N.Retired && N.LNode && OldNodes.count(N.LNode))
      In.RetireNodes.push_back(V);
  }

  // View ids the edited tree introduces intern into the session's table
  // (append-only, so existing ids keep their numbers).
  std::vector<const layout::LayoutNode *> NewStack{NewRoot.get()};
  while (!NewStack.empty()) {
    const layout::LayoutNode *N = NewStack.back();
    NewStack.pop_back();
    if (N->hasViewId())
      Layouts.resources().internViewId(N->viewIdName());
    for (const auto &C : N->children())
      NewStack.push_back(C.get());
  }

  RetractionResult R;
  {
    support::TraceSpan Span(Options.Trace, "incremental.retract");
    R = retractAndClose(*G, *Sol, *Prov, In);
    Span.arg("facts_retracted", R.FactsRetracted);
    Span.arg("retired_nodes", R.RetiredNodes.size());
  }

  // Null dangling layout-node pointers before the old tree is freed.
  for (NodeId V : R.RetiredNodes)
    if (G->node(V).Kind == NodeKind::ViewInfl)
      G->neutralizeViewInflNode(V);
  Def->setRoot(std::move(NewRoot));

  NodeId LayoutIdNode = G->getLayoutIdNode(Def->id());
  rederive(R, {}, {}, {LayoutIdNode});
  return true;
}
