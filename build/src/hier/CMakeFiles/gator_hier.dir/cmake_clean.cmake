file(REMOVE_RECURSE
  "CMakeFiles/gator_hier.dir/ClassHierarchy.cpp.o"
  "CMakeFiles/gator_hier.dir/ClassHierarchy.cpp.o.d"
  "libgator_hier.a"
  "libgator_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
