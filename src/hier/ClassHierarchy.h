//===- ClassHierarchy.h - CHA over ALite classes ----------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Class-hierarchy analysis. Section 4.3: "Polymorphic calls are resolved
/// using class hierarchy information" — a virtual call x.m() with static
/// receiver type S may dispatch to the implementation of m inherited by any
/// subtype of S.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_HIER_CLASSHIERARCHY_H
#define GATOR_HIER_CLASSHIERARCHY_H

#include "ir/Ir.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace gator {

class DiagnosticEngine;

namespace hier {

/// Precomputed subtype sets and CHA call resolution.
class ClassHierarchy {
public:
  /// Builds the hierarchy index. \p P must be resolved; an unresolved
  /// program is a recoverable invariant failure (reported through \p Diags
  /// when non-null) that yields an empty hierarchy — every query then
  /// returns the conservative empty answer instead of invoking UB.
  explicit ClassHierarchy(const ir::Program &P,
                          DiagnosticEngine *Diags = nullptr);

  const ir::Program &program() const { return P; }

  /// All (transitive) subtypes of \p C, including \p C itself. Interfaces
  /// yield their implementors plus sub-interfaces.
  const std::vector<const ir::ClassDecl *> &
  subtypesOf(const ir::ClassDecl *C) const;

  /// CHA resolution of a virtual call through a receiver of declared type
  /// \p StaticType: the set of concrete (non-abstract) method bodies any
  /// subtype would dispatch to for name/arity. Deduplicated, in
  /// deterministic program order. Memoized per (type, name, arity) — the
  /// hierarchy is immutable once constructed, so entries never go stale.
  const std::vector<const ir::MethodDecl *> &
  resolveVirtualCall(const ir::ClassDecl *StaticType, const std::string &Name,
                     unsigned Arity) const;

  /// The single concrete dispatch target for an exact receiver type (used
  /// when the allocation class is known), or null.
  static const ir::MethodDecl *dispatch(const ir::ClassDecl *ExactType,
                                        const std::string &Name,
                                        unsigned Arity);

private:
  const ir::Program &P;
  /// Subtype lists indexed by ClassDecl::globalId() — the ids of one
  /// program's classes are dense enough that a flat table beats hashing
  /// on both construction and lookup.
  std::vector<std::vector<const ir::ClassDecl *>> Subtypes;
  std::vector<const ir::ClassDecl *> Empty;

  /// resolveVirtualCall memo, indexed by receiver ClassDecl::globalId(),
  /// then keyed by "name/arity".
  mutable std::vector<std::unordered_map<
      std::string, std::vector<const ir::MethodDecl *>>>
      CallCache;
};

} // namespace hier
} // namespace gator

#endif // GATOR_HIER_CLASSHIERARCHY_H
