//===- FlowSet.h - Hybrid flowsTo set with a delta span ---------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-node flowsTo set used by the solvers. Two properties drive the
/// design (docs/DELTA_SOLVER.md):
///
///  1. *Hybrid representation.* Most flowsTo sets in real apps stay tiny
///     (a handful of views), so elements live in an insertion-ordered
///     vector and membership is a linear scan. Once a set outgrows
///     `SmallLimit`, a hash index is built beside the vector and takes
///     over membership queries; the vector remains the canonical element
///     storage, so iteration is always cache-friendly and deterministic
///     (insertion order) in both regimes.
///
///  2. *Committed/delta split.* The sets are monotone (the solvers only
///     add), so "the values that arrived since this node was last
///     propagated" is exactly the vector suffix `[deltaBegin(), size())`.
///     Difference propagation reads that suffix and calls `commit()`;
///     nothing is ever copied or removed.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_FLOWSET_H
#define GATOR_ANALYSIS_FLOWSET_H

#include "graph/ConstraintGraph.h"
#include "support/Arena.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

namespace gator {
namespace analysis {

class FlowSet {
public:
  using value_type = graph::NodeId;
  using const_iterator = const graph::NodeId *;

  /// Largest size served by the linear-scan small representation.
  static constexpr size_t SmallLimit = 16;

  /// Move-only: element storage lives in the owning Solution's set arena
  /// (docs/MEMORY.md), so a copy would alias the backing block. The
  /// mutator takes the arena explicitly; every read is self-contained.
  FlowSet() = default;
  FlowSet(FlowSet &&) = default;
  FlowSet &operator=(FlowSet &&) = default;
  FlowSet(const FlowSet &) = delete;
  FlowSet &operator=(const FlowSet &) = delete;

  /// Deep copy into \p A (element storage; a promoted index is cloned on
  /// the heap as usual). For tests and snapshot consumers.
  FlowSet clone(support::Arena &A) const {
    FlowSet S;
    S.Elements.reserve(A, Elements.size());
    for (graph::NodeId V : Elements)
      S.Elements.push_back(A, V);
    S.DeltaStart = DeltaStart;
    if (Index)
      S.Index = std::make_unique<std::unordered_set<graph::NodeId>>(*Index);
    return S;
  }

  /// Adds \p V, allocating element storage from \p A; returns true when
  /// the set grew.
  bool insert(support::Arena &A, graph::NodeId V) {
    if (Index) {
      if (!Index->insert(V).second)
        return false;
      Elements.push_back(A, V);
      return true;
    }
    if (std::find(Elements.begin(), Elements.end(), V) != Elements.end())
      return false;
    Elements.push_back(A, V);
    if (Elements.size() > SmallLimit) {
      Index = std::make_unique<std::unordered_set<graph::NodeId>>(
          Elements.begin(), Elements.end());
    }
    return true;
  }

  /// Adds \p V that the caller has already proven absent — the parallel
  /// engine's verified-new path (docs/PARALLEL.md): membership was decided
  /// against this exact set state during classification, so the replay can
  /// append blindly instead of re-scanning. Keeps the representation
  /// invariants (index updated, promotion at the same threshold), so a set
  /// grown through insertNew is indistinguishable from one grown through
  /// insert.
  void insertNew(support::Arena &A, graph::NodeId V) {
    assert(!contains(V) && "insertNew caller promised V was absent");
    Elements.push_back(A, V);
    if (Index) {
      Index->insert(V);
    } else if (Elements.size() > SmallLimit) {
      Index = std::make_unique<std::unordered_set<graph::NodeId>>(
          Elements.begin(), Elements.end());
    }
  }

  bool contains(graph::NodeId V) const {
    if (Index)
      return Index->count(V) != 0;
    return std::find(Elements.begin(), Elements.end(), V) != Elements.end();
  }

  /// std::unordered_set-compatible membership query (0 or 1).
  size_t count(graph::NodeId V) const { return contains(V) ? 1 : 0; }

  size_t size() const { return Elements.size(); }
  bool empty() const { return Elements.empty(); }

  /// Iteration covers all elements in insertion order.
  const_iterator begin() const { return Elements.begin(); }
  const_iterator end() const { return Elements.end(); }
  const support::ArenaVector<graph::NodeId> &values() const {
    return Elements;
  }

  //===--------------------------------------------------------------------===//
  // Delta protocol (difference propagation)
  //===--------------------------------------------------------------------===//

  /// First index of the uncommitted suffix: elements in
  /// [deltaBegin(), size()) arrived since the last commit().
  size_t deltaBegin() const { return DeltaStart; }

  /// True when uncommitted elements exist.
  bool hasDelta() const { return DeltaStart < Elements.size(); }

  /// Marks elements below \p UpTo as committed (already pushed to all
  /// current flow successors).
  void commit(size_t UpTo) { DeltaStart = static_cast<uint32_t>(UpTo); }

  /// True once the set left the small linear-scan representation.
  bool promoted() const { return Index != nullptr; }

  //===--------------------------------------------------------------------===//
  // Retraction (edit-scale incremental re-solve, docs/INCREMENTAL.md)
  //===--------------------------------------------------------------------===//

  /// Removes every element for which \p IsDead returns true, compacting the
  /// survivors in their original insertion order. Returns the number of
  /// elements removed.
  ///
  /// This is the one non-monotone entry point, used only between solver
  /// runs by the delete-and-rederive closure. The committed/delta split is
  /// reset to "everything is delta" so the next solve re-propagates the
  /// whole surviving set — retraction may have removed values downstream,
  /// and re-pushing survivors is exactly the DRed re-derive step.
  template <typename Pred> size_t eraseValues(Pred IsDead) {
    size_t W = 0;
    for (size_t R = 0; R < Elements.size(); ++R) {
      if (!IsDead(Elements[R]))
        Elements[W++] = Elements[R];
    }
    size_t Removed = Elements.size() - W;
    if (Removed) {
      Elements.truncate(W);
      if (Index) {
        if (Elements.size() <= SmallLimit) {
          // Back to the small representation; a later insert re-promotes.
          Index.reset();
        } else {
          Index = std::make_unique<std::unordered_set<graph::NodeId>>(
              Elements.begin(), Elements.end());
        }
      }
    }
    DeltaStart = 0;
    return Removed;
  }

private:
  /// All elements in insertion order (monotone: never shrinks); storage
  /// bump-allocated from the owning Solution's arena.
  support::ArenaVector<graph::NodeId> Elements;
  /// Membership index, allocated lazily once the set outgrows SmallLimit.
  /// Behind a pointer so unpromoted sets (the common case) stay at 32
  /// bytes: the per-node table is value-initialized on every solve.
  std::unique_ptr<std::unordered_set<graph::NodeId>> Index;
  /// Start of the uncommitted suffix of Elements.
  uint32_t DeltaStart = 0;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_FLOWSET_H
