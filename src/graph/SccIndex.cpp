//===- SccIndex.cpp - Flow-graph SCC condensation ---------------*- C++ -*-===//

#include "graph/SccIndex.h"

#include <algorithm>
#include <vector>

using namespace gator;
using namespace gator::graph;

namespace {

/// One frame of the iterative Tarjan walk: a node and a cursor into its
/// flow-successor list (so re-entry resumes after the edge just explored).
struct TarjanFrame {
  NodeId Node;
  uint32_t SuccIdx;
};

constexpr uint32_t Unvisited = ~0u;

} // namespace

void SccIndex::build(const ConstraintGraph &G) {
  if (EverBuilt)
    ++Recondensations;
  EverBuilt = true;
  Dirty = false;
  EdgesAtBuild = G.flowEdgeCount();

  size_t N = G.size();
  Mem.reset();
  NodeScc = support::ArenaVector<uint32_t>();
  NodeStratum = support::ArenaVector<uint32_t>();
  NodeHasSucc = support::ArenaVector<uint8_t>();
  NodeScc.resize(Mem, N, Unvisited);
  NodeStratum.resize(Mem, N, 0);
  NodeHasSucc.resize(Mem, N, 0);
  StableNodeCount = N;

  // Iterative Tarjan. Scratch lives on the heap, not the arena: it is dead
  // the moment build() returns, while the arena holds the long-lived
  // tables. Index doubles as the visit mark; OnStack marks membership in
  // the Tarjan stack.
  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> Lowlink(N, 0);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<NodeId> Stack;
  std::vector<TarjanFrame> Frames;
  // SCC ids are assigned in completion (pop) order, which for Tarjan is a
  // reverse topological order of the condensation — so one sweep from the
  // highest SCC id downwards visits sources before sinks.
  std::vector<uint32_t> SccSize;
  uint32_t NextIndex = 0;

  // Op nodes carry no propagated values (the delta drain skips them as
  // flow successors), so they are excluded from the walk entirely and
  // assigned trivial singleton SCCs afterwards.
  auto isValueNode = [&](NodeId Id) {
    return G.node(Id).Kind != NodeKind::Op;
  };

  for (NodeId Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited || !isValueNode(Root))
      continue;
    Frames.push_back({Root, 0});
    Index[Root] = Lowlink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    while (!Frames.empty()) {
      TarjanFrame &F = Frames.back();
      const NodeList &Succ = G.flowSuccessors(F.Node);
      if (F.SuccIdx < Succ.size()) {
        NodeId Next = Succ[F.SuccIdx++];
        if (!isValueNode(Next))
          continue;
        if (Index[Next] == Unvisited) {
          Frames.push_back({Next, 0});
          Index[Next] = Lowlink[Next] = NextIndex++;
          Stack.push_back(Next);
          OnStack[Next] = 1;
        } else if (OnStack[Next]) {
          Lowlink[F.Node] = std::min(Lowlink[F.Node], Index[Next]);
        }
        continue;
      }
      // Node exhausted: close its SCC if it is a root, then fold the
      // lowlink into the parent frame.
      NodeId Done = F.Node;
      Frames.pop_back();
      if (Lowlink[Done] == Index[Done]) {
        uint32_t Scc = static_cast<uint32_t>(SccSize.size());
        uint32_t Size = 0;
        for (;;) {
          NodeId Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = 0;
          NodeScc[Member] = Scc;
          ++Size;
          if (Member == Done)
            break;
        }
        SccSize.push_back(Size);
      }
      if (!Frames.empty()) {
        NodeId Parent = Frames.back().Node;
        Lowlink[Parent] = std::min(Lowlink[Parent], Lowlink[Done]);
      }
    }
  }

  // Op nodes: trivial singletons, stratum 0 (never scheduled as targets).
  for (NodeId Id = 0; Id < N; ++Id)
    if (!isValueNode(Id)) {
      NodeScc[Id] = static_cast<uint32_t>(SccSize.size());
      SccSize.push_back(1);
    }

  // Longest-path layering of the condensation. Bucket nodes by SCC with a
  // counting sort (O(N + E)), then sweep SCC ids from highest to lowest —
  // condensation topo order — relaxing each cross-SCC edge after its
  // source SCC's stratum is final.
  std::vector<uint32_t> SccStratum(SccSize.size(), 0);
  {
    std::vector<uint32_t> Offsets(SccSize.size() + 1, 0);
    for (NodeId Id = 0; Id < N; ++Id)
      ++Offsets[NodeScc[Id] + 1];
    for (size_t S = 1; S < Offsets.size(); ++S)
      Offsets[S] += Offsets[S - 1];
    std::vector<NodeId> ByScc(N);
    {
      std::vector<uint32_t> Cursor(Offsets.begin(), Offsets.end() - 1);
      for (NodeId Id = 0; Id < N; ++Id)
        ByScc[Cursor[NodeScc[Id]]++] = Id;
    }
    for (uint32_t Scc = static_cast<uint32_t>(SccSize.size()); Scc-- > 0;) {
      uint32_t Base = SccStratum[Scc];
      for (uint32_t Pos = Offsets[Scc]; Pos < Offsets[Scc + 1]; ++Pos) {
        NodeId From = ByScc[Pos];
        if (!isValueNode(From))
          continue;
        for (NodeId To : G.flowSuccessors(From)) {
          if (!isValueNode(To))
            continue;
          uint32_t ToScc = NodeScc[To];
          if (ToScc != Scc && SccStratum[ToScc] < Base + 1)
            SccStratum[ToScc] = Base + 1;
        }
      }
    }
  }

  NumSccs = static_cast<uint32_t>(SccSize.size());
  NumStrata = 0;
  Singletons = Small = Large = MaxSize = 0;
  for (uint32_t Size : SccSize) {
    if (Size == 1)
      ++Singletons;
    else if (Size <= 8)
      ++Small;
    else
      ++Large;
    MaxSize = std::max(MaxSize, Size);
  }
  for (NodeId Id = 0; Id < N; ++Id) {
    NodeStratum[Id] = SccStratum[NodeScc[Id]];
    NumStrata = std::max(NumStrata, NodeStratum[Id] + 1);
  }
}

void SccIndex::ensure(size_t NodeCount) {
  while (NodeScc.size() < NodeCount) {
    // Fresh node: its own singleton SCC, provisionally at stratum 0. The
    // first noteEdge targeting it lifts it below its source instead.
    NodeScc.push_back(Mem, NumSccs++);
    NodeStratum.push_back(Mem, 0);
    NodeHasSucc.push_back(Mem, 0);
    ++Singletons;
    MaxSize = std::max(MaxSize, 1u);
    NumStrata = std::max(NumStrata, 1u);
  }
}

bool SccIndex::noteEdge(NodeId From, NodeId To) {
  ensure(static_cast<size_t>(std::max(From, To)) + 1);
  if (Dirty)
    return false;
  if (NodeScc[From] == NodeScc[To]) {
    ++IncrementalAccepts;
    NodeHasSucc[From] = 1;
    return true;
  }
  if (NodeStratum[From] < NodeStratum[To]) {
    ++IncrementalAccepts;
    NodeHasSucc[From] = 1;
    return true;
  }
  // A fresh post-build singleton with no outgoing edges can be lifted just
  // below its source without disturbing any other ordering the layering
  // already promised — raising a sink-so-far target preserves every
  // accepted `stratum(from) < stratum(to)`. That keeps pure fan-out growth
  // (listener wiring into freshly minted callback nodes) incremental. A
  // pre-build node at stratum 0 is a topological source that may have
  // build-time successors also at low strata, so lifting it is unsound;
  // anything but the fresh-sink case marks the index dirty.
  if (To >= StableNodeCount && NodeStratum[To] == 0 && !NodeHasSucc[To]) {
    NodeStratum[To] = NodeStratum[From] + 1;
    NumStrata = std::max(NumStrata, NodeStratum[To] + 1);
    ++IncrementalAccepts;
    NodeHasSucc[From] = 1;
    return true;
  }
  Dirty = true;
  return false;
}
