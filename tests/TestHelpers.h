//===- TestHelpers.h - Shared fixtures for gator tests ----------*- C++ -*-===//

#ifndef GATOR_TESTS_TESTHELPERS_H
#define GATOR_TESTS_TESTHELPERS_H

#include "analysis/GuiAnalysis.h"
#include "corpus/AppBundle.h"
#include "layout/Layout.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace gator {
namespace test {

/// Builds a finalized AppBundle from ALite source text plus named layout
/// XML documents. Fails the current test on any diagnostic error.
inline std::unique_ptr<corpus::AppBundle>
makeBundle(const std::string &Source,
           const std::vector<std::pair<std::string, std::string>> &Layouts =
               {}) {
  auto App = std::make_unique<corpus::AppBundle>();
  App->Android.install(App->Program);
  bool Ok = parser::parseAlite(Source, "test.alite", App->Program, App->Diags);
  for (const auto &[Name, Xml] : Layouts)
    Ok &= layout::readLayoutXml(*App->Layouts, Name, Xml, App->Diags) !=
          nullptr;
  Ok &= App->finalize();
  if (!Ok || App->Diags.hasErrors()) {
    std::ostringstream OS;
    App->Diags.print(OS);
    ADD_FAILURE() << "bundle build failed:\n" << OS.str();
  }
  return App;
}

/// Runs the GUI analysis over a bundle.
inline std::unique_ptr<analysis::AnalysisResult>
runAnalysis(corpus::AppBundle &App,
            const analysis::AnalysisOptions &Options = {}) {
  auto Result = analysis::GuiAnalysis::run(App.Program, *App.Layouts,
                                           App.Android, Options, App.Diags);
  if (!Result)
    ADD_FAILURE() << "analysis failed";
  return Result;
}

/// Variable node lookup by (class, method/arity, var).
inline graph::NodeId varNode(corpus::AppBundle &App,
                             analysis::AnalysisResult &Result,
                             const std::string &ClassName,
                             const std::string &Method, unsigned Arity,
                             const std::string &Var) {
  const ir::ClassDecl *C = App.Program.findClass(ClassName);
  EXPECT_NE(C, nullptr) << ClassName;
  const ir::MethodDecl *M = C->findOwnMethod(Method, Arity);
  EXPECT_NE(M, nullptr) << Method;
  ir::VarId V = M->findVar(Var);
  EXPECT_NE(V, ir::InvalidVar) << Var;
  return Result.Graph->getVarNode(M, V);
}

/// Class names of the views reaching a node, sorted.
inline std::vector<std::string> viewClassesAt(analysis::AnalysisResult &Result,
                                              graph::NodeId N) {
  std::vector<std::string> Names;
  for (graph::NodeId V : Result.Sol->viewsAt(N))
    Names.push_back(Result.Graph->node(V).Klass->name());
  std::sort(Names.begin(), Names.end());
  return Names;
}

} // namespace test
} // namespace gator

#endif // GATOR_TESTS_TESTHELPERS_H
