//===- FaultInjection.h - Deterministic fault injection ---------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic fault points for the robustness harness
/// (tests/fault_injection_test.cpp, docs/ROBUSTNESS.md):
///
///  - input truncation and byte/bit corruption derived from a SplitMix64
///    stream, so every fault is reproducible from (input, seed) alone —
///    no wall-clock or global-RNG nondeterminism;
///  - a forced budget trip at work-item N, which BudgetTracker folds into
///    its work budget at construction, exercising the solver's
///    partial-solution paths at arbitrary cut points.
///
/// All fault points are inert unless explicitly armed; production code
/// pays one relaxed atomic load per BudgetTracker construction.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_FAULTINJECTION_H
#define GATOR_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gator {
namespace support {

/// SplitMix64: tiny, high-quality, deterministic PRNG (public domain
/// constants from Steele et al.). Used instead of std::mt19937 where the
/// exact stream must be stable across standard libraries.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound); Bound 0 yields 0.
  uint64_t below(uint64_t Bound) { return Bound == 0 ? 0 : next() % Bound; }

private:
  uint64_t State;
};

//===----------------------------------------------------------------------===//
// Input mutators
//===----------------------------------------------------------------------===//

/// Returns a prefix of \p Input whose length is drawn from \p Seed
/// (anywhere in [0, size]), modeling a truncated read.
std::string truncateInput(std::string_view Input, uint64_t Seed);

/// Returns \p Input with \p Flips single-bit corruptions at positions
/// drawn from \p Seed. Empty input is returned unchanged.
std::string corruptInput(std::string_view Input, uint64_t Seed,
                         unsigned Flips = 8);

//===----------------------------------------------------------------------===//
// Forced budget exhaustion
//===----------------------------------------------------------------------===//

/// Arms a forced budget trip: every BudgetTracker constructed while armed
/// behaves as if its work budget were at most \p StepN. Deterministic and
/// process-global; tests arm/disarm around one run.
void armForcedBudgetTrip(unsigned long StepN);
void disarmForcedBudgetTrip();

/// The armed step, or nullopt when disarmed.
std::optional<unsigned long> forcedBudgetTripStep();

/// RAII arm/disarm for one scope.
class ScopedForcedBudgetTrip {
public:
  explicit ScopedForcedBudgetTrip(unsigned long StepN) {
    armForcedBudgetTrip(StepN);
  }
  ~ScopedForcedBudgetTrip() { disarmForcedBudgetTrip(); }
  ScopedForcedBudgetTrip(const ScopedForcedBudgetTrip &) = delete;
  ScopedForcedBudgetTrip &operator=(const ScopedForcedBudgetTrip &) = delete;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_FAULTINJECTION_H
