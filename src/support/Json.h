//===- Json.h - Minimal JSON writer -----------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to export analysis results for
/// downstream tools (Section 6 clients live outside this process in the
/// real world). Handles escaping and comma placement; the caller is
/// responsible for balanced begin/end calls (asserted).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_JSON_H
#define GATOR_SUPPORT_JSON_H

#include <cassert>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gator {

/// Streaming JSON writer with automatic comma handling.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}
  ~JsonWriter() { assert(Stack.empty() && "unbalanced JSON structure"); }

  void beginObject() {
    comma();
    OS << '{';
    Stack.push_back(Frame{false, true});
  }
  void endObject() {
    assert(!Stack.empty() && Stack.back().IsObject && "not in an object");
    Stack.pop_back();
    OS << '}';
  }
  void beginArray() {
    comma();
    OS << '[';
    Stack.push_back(Frame{false, false});
  }
  void endArray() {
    assert(!Stack.empty() && !Stack.back().IsObject && "not in an array");
    Stack.pop_back();
    OS << ']';
  }

  /// Writes `"key":` inside an object; the next value call completes it.
  void key(std::string_view Key) {
    assert(!Stack.empty() && Stack.back().IsObject && "key outside object");
    comma();
    writeString(Key);
    OS << ':';
    PendingValue = true;
  }

  void value(std::string_view Str) {
    comma();
    writeString(Str);
  }
  void value(const char *Str) { value(std::string_view(Str)); }
  void value(bool B) {
    comma();
    OS << (B ? "true" : "false");
  }
  void value(long long N) {
    comma();
    OS << N;
  }
  void value(unsigned long long N) {
    comma();
    OS << N;
  }
  void value(double D) {
    comma();
    OS << D;
  }
  void value(int N) { value(static_cast<long long>(N)); }
  void value(unsigned N) { value(static_cast<unsigned long long>(N)); }
  void value(size_t N) { value(static_cast<unsigned long long>(N)); }
  void nullValue() {
    comma();
    OS << "null";
  }

  /// Emits \p Token verbatim as a value — for callers that pre-format
  /// numbers (fixed-precision doubles) but must keep the writer's
  /// comma/state tracking intact. The token must be a valid JSON value.
  void rawNumber(std::string_view Token) {
    comma();
    OS << Token;
  }

  /// key + value in one call.
  template <typename T> void field(std::string_view Key, T &&Value) {
    key(Key);
    value(std::forward<T>(Value));
  }

private:
  struct Frame {
    bool HasElement;
    bool IsObject;
  };

  void comma() {
    if (PendingValue) {
      PendingValue = false; // completing a keyed value: no comma
      return;
    }
    if (!Stack.empty()) {
      if (Stack.back().HasElement)
        OS << ',';
      Stack.back().HasElement = true;
    }
  }

  void writeString(std::string_view Str) {
    OS << '"';
    for (char C : Str) {
      switch (C) {
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\r':
        OS << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          OS << Buf;
        } else {
          OS << C;
        }
      }
    }
    OS << '"';
  }

  std::ostream &OS;
  std::vector<Frame> Stack;
  bool PendingValue = false;
};

} // namespace gator

#endif // GATOR_SUPPORT_JSON_H
