//===- SolutionChecker.cpp - A-posteriori fixed-point validation *- C++ -*-===//

#include "analysis/SolutionChecker.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;

namespace {

class Checker {
public:
  explicit Checker(const AnalysisResult &Result)
      : Result(Result), G(*Result.Graph), Sol(*Result.Sol),
        P(Sol.androidModel().program()) {}

  std::vector<std::string> run() {
    checkFlowClosure();
    for (const OpSite &Op : Sol.ops())
      checkOp(Op);
    return std::move(Violations);
  }

private:
  void violation(const std::string &Message) {
    if (Violations.size() < 50) // cap the report; one failure is enough
      Violations.push_back(Message);
  }

  /// Re-implements the solver's declared-type filter for checking.
  bool typeCompatible(NodeId N, NodeId Value) const {
    if (!Result.Options.DeclaredTypeFilter)
      return true;
    const Node &Target = G.node(N);
    const ir::ClassDecl *DeclType = nullptr;
    if (Target.Kind == NodeKind::Var) {
      const std::string &T = Target.Method->var(Target.Var).TypeName;
      if (T.empty() || ir::isPrimitiveTypeName(T))
        return true;
      DeclType = P.findClass(T);
    } else if (Target.Kind == NodeKind::Field) {
      const std::string &T = Target.Field->typeName();
      if (T.empty() || ir::isPrimitiveTypeName(T))
        return true;
      DeclType = P.findClass(T);
    } else {
      return true;
    }
    if (!DeclType || DeclType->name() == ir::ObjectClassName)
      return true;
    const Node &Val = G.node(Value);
    switch (Val.Kind) {
    case NodeKind::Alloc:
    case NodeKind::ViewAlloc:
    case NodeKind::ViewInfl:
    case NodeKind::Activity:
      break;
    default:
      return true;
    }
    if (!Val.Klass)
      return true;
    return P.isSubtypeOf(Val.Klass, DeclType) ||
           P.isSubtypeOf(DeclType, Val.Klass);
  }

  void checkFlowClosure() {
    for (NodeId N = 0; N < G.size(); ++N) {
      if (G.node(N).Kind == NodeKind::Op)
        continue;
      const auto &SrcSet = Sol.valuesAt(N);
      if (SrcSet.empty())
        continue;
      for (NodeId Succ : G.flowSuccessors(N)) {
        if (G.node(Succ).Kind == NodeKind::Op)
          continue; // ops consume role variables, not edge targets
        const auto &DstSet = Sol.valuesAt(Succ);
        for (NodeId V : SrcSet) {
          if (!typeCompatible(Succ, V))
            continue;
          if (!DstSet.count(V))
            violation("flow closure: " + G.label(V) + " in " + G.label(N) +
                      " missing from successor " + G.label(Succ));
        }
      }
    }
  }

  void checkOp(const OpSite &Op) {
    switch (Op.Spec.Kind) {
    case OpKind::AddView2: {
      for (NodeId Parent : Sol.viewsAt(Op.Recv))
        for (NodeId Child : Sol.viewsAt(Op.ValArg)) {
          if (Parent == Child)
            continue;
          const auto &Children = G.children(Parent);
          if (std::find(Children.begin(), Children.end(), Child) ==
              Children.end())
            violation("AddView2 closure: missing parent-child " +
                      G.label(Parent) + " => " + G.label(Child));
        }
      break;
    }
    case OpKind::SetId: {
      for (NodeId View : Sol.viewsAt(Op.Recv))
        for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
          if (G.node(IdVal).Kind != NodeKind::ViewId)
            continue;
          const auto &Ids = G.viewIds(View);
          if (std::find(Ids.begin(), Ids.end(), IdVal) == Ids.end())
            violation("SetId closure: missing has-id " + G.label(View) +
                      " => " + G.label(IdVal));
        }
      break;
    }
    case OpKind::SetListener: {
      for (NodeId View : Sol.viewsAt(Op.Recv))
        for (NodeId L : Sol.listenerValuesAt(Op.ValArg)) {
          const auto &Ls = G.listeners(View);
          if (std::find(Ls.begin(), Ls.end(), L) == Ls.end())
            violation("SetListener closure: missing association " +
                      G.label(View) + " => " + G.label(L));
        }
      break;
    }
    case OpKind::FindView1:
    case OpKind::FindView2:
    case OpKind::FindView3: {
      if (Op.Out == InvalidNode)
        break;
      const auto &OutSet = Sol.valuesAt(Op.Out);
      for (NodeId V : Sol.resultsOf(Op, Result.Options.TrackViewIds,
                                    Result.Options.TrackHierarchy,
                                    Result.Options.FindView3ChildOnly,
                                    Result.Options.UnknownFanoutBudget))
        if (!OutSet.count(V) && typeCompatible(Op.Out, V))
          violation("FindView closure: result " + G.label(V) +
                    " missing from output of " + G.label(Op.OpNode));
      break;
    }
    case OpKind::Inflate1:
    case OpKind::Inflate2: {
      // Every reaching layout id with a minted tree must have a root with
      // the roots-layout edge; Inflate2 roots must hang off every window
      // receiver.
      for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
        if (G.node(IdVal).Kind != NodeKind::LayoutId)
          continue;
        std::vector<NodeId> Roots;
        for (NodeId V : G.nodesOfKind(NodeKind::ViewInfl)) {
          if (G.node(V).InflateSite != Op.OpNode)
            continue;
          const auto &Layouts = G.rootsOfLayouts(V);
          if (std::find(Layouts.begin(), Layouts.end(), IdVal) !=
              Layouts.end())
            Roots.push_back(V);
        }
        if (Roots.empty()) {
          violation("Inflate closure: no minted root for " +
                    G.label(IdVal) + " at " + G.label(Op.OpNode));
          continue;
        }
        if (Op.Spec.Kind == OpKind::Inflate2) {
          for (NodeId W : Sol.valuesAt(Op.Recv)) {
            NodeKind K = G.node(W).Kind;
            if (K != NodeKind::Activity && K != NodeKind::Alloc)
              continue;
            for (NodeId Root : Roots) {
              const auto &WRoots = G.roots(W);
              if (std::find(WRoots.begin(), WRoots.end(), Root) ==
                  WRoots.end())
                violation("Inflate2 closure: missing root edge " +
                          G.label(W) + " => " + G.label(Root));
            }
          }
        } else if (Op.Out != InvalidNode) {
          const auto &OutSet = Sol.valuesAt(Op.Out);
          for (NodeId Root : Roots)
            if (!OutSet.count(Root) && typeCompatible(Op.Out, Root))
              violation("Inflate1 closure: root " + G.label(Root) +
                        " missing from output");
        }
      }
      break;
    }
    case OpKind::AddView1: {
      for (NodeId W : Sol.valuesAt(Op.Recv)) {
        NodeKind K = G.node(W).Kind;
        if (K != NodeKind::Activity && K != NodeKind::Alloc)
          continue;
        for (NodeId V : Sol.viewsAt(Op.ValArg)) {
          const auto &WRoots = G.roots(W);
          if (std::find(WRoots.begin(), WRoots.end(), V) == WRoots.end())
            violation("AddView1 closure: missing root edge " + G.label(W) +
                      " => " + G.label(V));
        }
      }
      break;
    }
    case OpKind::FragmentAdd:
    case OpKind::SetAdapter:
    case OpKind::StartActivity:
    case OpKind::SetIntentClass:
      break; // extension/client ops: no core closure obligations
    }
  }

  const AnalysisResult &Result;
  const ConstraintGraph &G;
  const Solution &Sol;
  const ir::Program &P;
  std::vector<std::string> Violations;
};

} // namespace

std::vector<std::string>
gator::analysis::checkSolutionConsistency(const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;
  std::vector<std::string> V;
  auto violation = [&](const std::string &Message) {
    if (V.size() < 50)
      V.push_back(Message);
  };

  for (NodeId N = 0; N < G.size(); ++N) {
    for (NodeId Val : Sol.valuesAt(N)) {
      if (Val >= G.size()) {
        violation("consistency: out-of-range value node in set of " +
                  G.label(N));
        continue;
      }
      if (!isValueNodeKind(G.node(Val).Kind))
        violation("consistency: non-value node " + G.label(Val) +
                  " in set of " + G.label(N));
    }
    for (NodeId C : G.children(N))
      if (C >= G.size() || !isViewNodeKind(G.node(C).Kind))
        violation("consistency: non-view child under " + G.label(N));
    // Unknown-source modeling (docs/ROBUSTNESS.md) lets a tagged UnknownId
    // stand in for a concrete view/layout id in both relations.
    for (NodeId Id : G.viewIds(N))
      if (Id >= G.size() || (G.node(Id).Kind != NodeKind::ViewId &&
                             G.node(Id).Kind != NodeKind::UnknownId))
        violation("consistency: has-id target of " + G.label(N) +
                  " is not a ViewId");
    for (NodeId R : G.roots(N))
      if (R >= G.size() || !isViewNodeKind(G.node(R).Kind))
        violation("consistency: non-view root under " + G.label(N));
    for (NodeId L : G.listeners(N))
      if (L >= G.size())
        violation("consistency: out-of-range listener under " + G.label(N));
    for (NodeId LId : G.rootsOfLayouts(N))
      if (LId >= G.size() || (G.node(LId).Kind != NodeKind::LayoutId &&
                              G.node(LId).Kind != NodeKind::UnknownId))
        violation("consistency: roots-layout target of " + G.label(N) +
                  " is not a LayoutId");
  }

  // Minted views are self-seeded at mint time regardless of where a budget
  // later stopped the run. Unknown roots minted by the solver follow the
  // same discipline.
  for (NodeId View : G.nodesOfKind(NodeKind::ViewInfl))
    if (!Sol.valuesAt(View).count(View))
      violation("consistency: minted view " + G.label(View) +
                " not in its own set");
  // Every unknown node must carry a reason tag — an untagged unknown would
  // print as approximate with no explanation in `gator_cli --explain`.
  for (NodeKind K : {NodeKind::UnknownView, NodeKind::UnknownId})
    for (NodeId U : G.nodesOfKind(K))
      if (G.node(U).Unknown == UnknownReason::None)
        violation("consistency: unknown node " + G.label(U) +
                  " without a degradation reason");

  for (uint32_t OpIndex : Sol.unresolvedOps())
    if (OpIndex >= Sol.ops().size())
      violation("consistency: unresolved op index " +
                std::to_string(OpIndex) + " out of range");
  if (Sol.isComplete() && !Sol.unresolvedOps().empty())
    violation("consistency: complete solution records unresolved ops");
  if (Sol.fidelity() == Fidelity::TruncatedBudget &&
      Sol.truncationReason() == support::BudgetReason::None)
    violation("consistency: truncated solution without a budget reason");
  if (Sol.fidelity() != Fidelity::TruncatedBudget &&
      Sol.truncationReason() != support::BudgetReason::None)
    violation("consistency: budget reason on a non-truncated solution");
  return V;
}

std::vector<std::string>
gator::analysis::checkSolutionClosure(const AnalysisResult &Result) {
  std::vector<std::string> V = checkSolutionConsistency(Result);
  // Partial solutions are deliberate under-approximations: the closure
  // properties quantify over the *final* state and do not hold mid-run, so
  // only Complete solutions are held to them.
  if (Result.Sol->isComplete()) {
    std::vector<std::string> Closure = Checker(Result).run();
    V.insert(V.end(), Closure.begin(), Closure.end());
  }
  return V;
}
