# End-to-end provenance check (docs/OBSERVABILITY.md): `gator_cli
# --explain` on the full sample app must print a derivation tree for the
# resolved FindView fact of the go button — the FindView conclusion, its
# inflation premise, and a Seed axiom at the bottom. Invoked by ctest
# with -DCLI=<gator_cli> -DAPP=<sample_full_app dir>.

execute_process(
  COMMAND ${CLI} ${APP} --explain go@HomeActivity
  OUTPUT_VARIABLE run_out
  RESULT_VARIABLE run_code)
if(NOT run_code EQUAL 0)
  message(FATAL_ERROR "gator_cli --explain failed: ${run_code}")
endif()

foreach(needle
    "explain 'go@HomeActivity':"
    "flowsTo(go@HomeActivity.onCreate/0, Button~infl"
    "[FindView]"
    "[Inflate]"
    "[Seed]"
    "hasId(Button~infl")
  string(FIND "${run_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "--explain output is missing \"${needle}\":\n${run_out}")
  endif()
endforeach()

message(STATUS "--explain printed the FindView derivation tree")

# Degradation-reason visibility (docs/ROBUSTNESS.md): on a hostile app
# whose find id comes from getIdentifier, --explain must flag the facts as
# approximate and name the reason and site. The run itself exits 1 — the
# degraded-input code — which is the expected outcome, not a failure.
if(DEFINED HOSTILE_APP)
  execute_process(
    COMMAND ${CLI} ${HOSTILE_APP} --explain v@DynActivity
    OUTPUT_VARIABLE hostile_out
    RESULT_VARIABLE hostile_code)
  if(NOT hostile_code EQUAL 1)
    message(FATAL_ERROR
      "hostile --explain run exited ${hostile_code}, expected 1 "
      "(degraded input):\n${hostile_out}")
  endif()
  foreach(needle
      "fidelity: degraded-input"
      "[UnknownSource] [approx]"
      "approx: non-constant id at DynActivity.onCreate")
    string(FIND "${hostile_out}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR
        "hostile --explain output is missing \"${needle}\":\n${hostile_out}")
    endif()
  endforeach()
  message(STATUS "--explain named the degradation reason on a hostile app")
endif()
