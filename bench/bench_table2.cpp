//===- bench_table2.cpp - Reproduce Table 2 ---------------------*- C++ -*-===//
//
// Regenerates Table 2 of the paper: per-app analysis running time and the
// four precision averages (receivers, parameters, results, listeners) over
// the 20-app corpus. Paper-reported reference values are printed alongside
// the measured ones (parameters/results/listeners reference values beyond
// the receivers column are not all recoverable from the paper text; where
// unavailable the reference is the qualitative bound the paper states:
// "less than 2 for all but one application").
//
//===----------------------------------------------------------------------===//

#include "analysis/AppStats.h"
#include "corpus/BatchRunner.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

namespace {

/// Paper Table 2: analysis time (s) and avg receivers, per app in corpus
/// order. Times are from the authors' 2013-era machine; only the shape
/// (all small, growing with app size) is expected to transfer.
struct PaperRow {
  double TimeSec;
  double Receivers;
};
constexpr PaperRow PaperTable2[20] = {
    {0.39, 1.00}, {4.92, 3.09}, {0.65, 1.00}, {1.17, 1.04}, {1.21, 1.00},
    {3.28, 1.54}, {4.30, 1.15}, {2.09, 1.80}, {0.41, 2.55}, {1.55, 1.12},
    {0.87, 1.89}, {0.63, 1.00}, {0.39, 1.31}, {0.66, 1.40}, {0.88, 1.00},
    {0.31, 2.07}, {0.18, 1.15}, {1.15, 1.13}, {0.30, 1.00}, {1.74, 8.81},
};

std::string fmtOpt(const std::optional<double> &V) {
  if (!V)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", *V);
  return Buf;
}

} // namespace

int main() {
  std::printf("Table 2: analysis running time and average solution sizes\n");
  std::printf("(paper values in brackets; paper times are on the authors' "
              "hardware)\n\n");
  std::printf("%-16s %14s %18s %12s %10s %11s\n", "app", "time(s)[paper]",
              "receivers[paper]", "parameters", "results", "listeners");

  // Corpus-wide run over the parallel batch layer (docs/PARALLEL.md):
  // GATOR_JOBS picks the worker count; the printed per-app time is the
  // analysis's own build+solve clock, so it stays meaningful (and the
  // precision columns stay identical) at every job count.
  AnalysisOptions Options;
  if (const char *Env = std::getenv("GATOR_JOBS"))
    Options.Jobs = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  // Stats/metrics-only consumer: drop each app's bundle and solution
  // inside the task (KeepArtifacts=false) so at most one app is resident
  // per worker, matching the memory profile of a serial loop.
  std::vector<BatchAppResult> Batch =
      analyzeCorpus(paperCorpus(), Options, nullptr, /*KeepArtifacts=*/false);

  std::vector<AppStats> Telemetry;
  for (size_t I = 0; I < Batch.size(); ++I) {
    const BatchAppResult &R = Batch[I];
    if (R.GenerationFailed) {
      std::fprintf(stderr, "generation failed for %s\n", R.Name.c_str());
      R.App.Bundle->Diags.print(std::cerr);
      return 1;
    }
    double Elapsed = R.BuildSeconds + R.SolveSeconds;
    const auto &M = R.Metrics;
    std::printf("%-16s %6.3f [%4.2f] %8.2f [%5.2f] %12s %10s %11s\n",
                R.Name.c_str(), Elapsed, PaperTable2[I].TimeSec,
                M.AvgReceivers, PaperTable2[I].Receivers,
                fmtOpt(M.AvgParameters).c_str(), fmtOpt(M.AvgResults).c_str(),
                fmtOpt(M.AvgListeners).c_str());
    Telemetry.push_back(R.Stats);
  }

  std::printf("\nSolver telemetry (difference propagation; "
              "docs/DELTA_SOLVER.md)\n");
  printSolverStatsHeader(std::cout);
  for (const AppStats &S : Telemetry)
    printSolverStatsRow(std::cout, S);
  return 0;
}
