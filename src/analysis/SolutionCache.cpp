//===- SolutionCache.cpp - Content-addressed analysis cache ---------------===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/SolutionCache.h"

#include "analysis/Solution.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace gator;
using namespace gator::analysis;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// GSC1 codec
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'G', 'S', 'C', '1'};

/// Canonical gator_flowset_size bounds — must match recordAppMetrics.
const std::vector<uint64_t> &flowsetBounds() {
  static const std::vector<uint64_t> Bounds{1,  2,   4,   8,   16,  32,
                                            64, 128, 256, 512, 1024};
  return Bounds;
}

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }

void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &B, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "IEEE double expected");
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(B, Bits);
}

void putStr(std::string &B, const std::string &S) {
  putU64(B, S.size());
  B.append(S);
}

void putU64Span(std::string &B, const unsigned long *V, size_t N) {
  putU64(B, N);
  for (size_t I = 0; I < N; ++I)
    putU64(B, V[I]);
}

void putU64Vec(std::string &B, const std::vector<uint64_t> &V) {
  putU64(B, V.size());
  for (uint64_t X : V)
    putU64(B, X);
}

/// Bounds-checked little-endian reader; any overrun latches Fail and
/// makes every subsequent read return zero.
struct Cursor {
  const unsigned char *P;
  const unsigned char *End;
  bool Fail = false;

  explicit Cursor(std::string_view Bytes)
      : P(reinterpret_cast<const unsigned char *>(Bytes.data())),
        End(P + Bytes.size()) {}

  bool need(size_t N) {
    if (Fail || static_cast<size_t>(End - P) < N) {
      Fail = true;
      return false;
    }
    return true;
  }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return *P++;
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return V;
  }

  double f64() {
    uint64_t Bits = u64();
    double V = 0;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  bool str(std::string &Out) {
    uint64_t N = u64();
    if (!need(N))
      return false;
    Out.assign(reinterpret_cast<const char *>(P), N);
    P += N;
    return true;
  }

  /// Reads a span whose length must equal \p Expect (fixed-size enum
  /// arrays: a length skew means a different enum layout, i.e. skew the
  /// version bump missed — reject).
  bool span(unsigned long *Out, size_t Expect) {
    uint64_t N = u64();
    if (N != Expect || !need(N * 8))
      return Fail = true, false;
    for (size_t I = 0; I < Expect; ++I)
      Out[I] = static_cast<unsigned long>(u64());
    return !Fail;
  }

  bool vec(std::vector<uint64_t> &Out) {
    uint64_t N = u64();
    if (!need(N * 8))
      return false;
    Out.resize(N);
    for (uint64_t I = 0; I < N; ++I)
      Out[I] = u64();
    return !Fail;
  }
};

void writeStats(std::string &B, const AppStats &S) {
  putStr(B, S.Name);
  putU32(B, S.Classes);
  putU32(B, S.Methods);
  putU32(B, S.LayoutIds);
  putU32(B, S.ViewIds);
  putU32(B, S.InflViews);
  putU32(B, S.AllocViews);
  putU32(B, S.Listeners);
  putU32(B, S.OpInflate);
  putU32(B, S.OpFindView);
  putU32(B, S.OpAddView);
  putU32(B, S.OpSetListener);
  putU32(B, S.OpSetId);
  putU64(B, S.Propagations);
  putU64(B, S.OpFirings);
  putU64(B, S.ValuesPushed);
  putU64(B, S.DedupHits);
  putU64(B, S.PeakSetSize);
  putU64(B, S.PromotedSets);
  putU64(B, S.DescCacheHits);
  putU64(B, S.DescCacheMisses);
  putU64(B, S.HierarchyRevisions);
  putU8(B, static_cast<uint8_t>(S.SolutionFidelity));
  putU64(B, S.UnresolvedOps);
  putU64(B, S.WorkCharged);
  putU64(B, S.UnknownViews);
  putU64(B, S.UnknownIds);
  putU64Span(B, S.UnknownByReason, graph::NumUnknownReasons);
  putU64(B, S.GraphNodes);
  putU64(B, S.FlowEdges);
  putU64(B, S.ParentChildEdges);
  putU64(B, S.PeakVarWorklist);
  putU64(B, S.PeakOpWorklist);
  putU64Span(B, S.FiringsByKind, android::NumOpKinds);
  putU64Span(B, S.SitesByKind, android::NumOpKinds);
  putU64Span(B, S.ResolvedSitesByKind, android::NumOpKinds);
  putF64(B, S.BuildSeconds);
  putF64(B, S.SolveSeconds);
  putU64(B, S.ArenaBytes);
  putU64(B, S.PeakRssBytes);
}

bool readStats(Cursor &C, AppStats &S) {
  if (!C.str(S.Name))
    return false;
  S.Classes = C.u32();
  S.Methods = C.u32();
  S.LayoutIds = C.u32();
  S.ViewIds = C.u32();
  S.InflViews = C.u32();
  S.AllocViews = C.u32();
  S.Listeners = C.u32();
  S.OpInflate = C.u32();
  S.OpFindView = C.u32();
  S.OpAddView = C.u32();
  S.OpSetListener = C.u32();
  S.OpSetId = C.u32();
  S.Propagations = C.u64();
  S.OpFirings = C.u64();
  S.ValuesPushed = C.u64();
  S.DedupHits = C.u64();
  S.PeakSetSize = C.u64();
  S.PromotedSets = C.u64();
  S.DescCacheHits = C.u64();
  S.DescCacheMisses = C.u64();
  S.HierarchyRevisions = C.u64();
  uint8_t Fid = C.u8();
  if (Fid > static_cast<uint8_t>(Fidelity::TruncatedBudget))
    return false;
  S.SolutionFidelity = static_cast<Fidelity>(Fid);
  S.UnresolvedOps = C.u64();
  S.WorkCharged = C.u64();
  S.UnknownViews = C.u64();
  S.UnknownIds = C.u64();
  if (!C.span(S.UnknownByReason, graph::NumUnknownReasons))
    return false;
  S.GraphNodes = C.u64();
  S.FlowEdges = C.u64();
  S.ParentChildEdges = C.u64();
  S.PeakVarWorklist = C.u64();
  S.PeakOpWorklist = C.u64();
  if (!C.span(S.FiringsByKind, android::NumOpKinds) ||
      !C.span(S.SitesByKind, android::NumOpKinds) ||
      !C.span(S.ResolvedSitesByKind, android::NumOpKinds))
    return false;
  S.BuildSeconds = C.f64();
  S.SolveSeconds = C.f64();
  S.ArenaBytes = C.u64();
  S.PeakRssBytes = C.u64();
  return !C.Fail;
}

} // namespace

void SolutionCache::serialize(const CachedAnalysis &Entry, std::string &Bytes) {
  std::string Payload;
  putU32(Payload, static_cast<uint32_t>(Entry.ExitCode));
  putStr(Payload, Entry.OutText);
  putStr(Payload, Entry.ErrText);
  writeStats(Payload, Entry.Stats);
  putF64(Payload, Entry.Precision.AvgReceivers);
  auto PutOpt = [&Payload](const std::optional<double> &V) {
    putU8(Payload, V.has_value());
    putF64(Payload, V.value_or(0.0));
  };
  PutOpt(Entry.Precision.AvgParameters);
  PutOpt(Entry.Precision.AvgResults);
  PutOpt(Entry.Precision.AvgListeners);
  putU64Vec(Payload, Entry.FlowHistCounts);
  putU64(Payload, Entry.FlowHistSum);
  putU64(Payload, Entry.FlowHistCount);

  Bytes.clear();
  Bytes.append(Magic, sizeof(Magic));
  putU32(Bytes, FormatVersion);
  putU64(Bytes, Payload.size());
  putU64(Bytes, support::fnv1a64(Payload));
  Bytes.append(Payload);
}

bool SolutionCache::deserialize(std::string_view Bytes, CachedAnalysis &Out) {
  constexpr size_t HeaderSize = sizeof(Magic) + 4 + 8 + 8;
  if (Bytes.size() < HeaderSize)
    return false;
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return false;
  Cursor H(Bytes.substr(sizeof(Magic)));
  uint32_t Version = H.u32();
  uint64_t PayloadSize = H.u64();
  uint64_t Checksum = H.u64();
  if (H.Fail || Version != FormatVersion)
    return false;
  std::string_view Payload = Bytes.substr(HeaderSize);
  if (Payload.size() != PayloadSize)
    return false;
  if (support::fnv1a64(Payload) != Checksum)
    return false;

  Cursor C(Payload);
  Out.ExitCode = static_cast<int32_t>(C.u32());
  if (!C.str(Out.OutText) || !C.str(Out.ErrText))
    return false;
  if (!readStats(C, Out.Stats))
    return false;
  Out.Precision.AvgReceivers = C.f64();
  auto GetOpt = [&C](std::optional<double> &V) {
    uint8_t Has = C.u8();
    double X = C.f64();
    if (Has > 1)
      C.Fail = true;
    V = Has ? std::optional<double>(X) : std::nullopt;
  };
  GetOpt(Out.Precision.AvgParameters);
  GetOpt(Out.Precision.AvgResults);
  GetOpt(Out.Precision.AvgListeners);
  if (C.Fail)
    return false;
  if (!C.vec(Out.FlowHistCounts))
    return false;
  Out.FlowHistSum = C.u64();
  Out.FlowHistCount = C.u64();
  if (C.Fail)
    return false;
  // Trailing garbage means the artifact was not produced by serialize().
  return C.P == C.End;
}

//===----------------------------------------------------------------------===//
// The two tiers
//===----------------------------------------------------------------------===//

SolutionCache::SolutionCache(std::string DiskDir, size_t MemCapacity)
    : Dir(std::move(DiskDir)), Capacity(MemCapacity) {
  if (!Dir.empty()) {
    std::error_code EC;
    fs::create_directories(Dir, EC); // failure degrades to memory-only
  }
}

void SolutionCache::insertMem(const std::string &Hex,
                              const CachedAnalysis &Entry) {
  // Caller holds Mu.
  if (Capacity == 0)
    return;
  if (Mem.find(Hex) != Mem.end())
    return;
  Mem.emplace(Hex, Entry);
  Order.push_back(Hex);
  while (Mem.size() > Capacity) {
    Mem.erase(Order.front());
    Order.pop_front();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

SolutionCache::Outcome SolutionCache::lookup(const support::Hash128 &Key,
                                             CachedAnalysis &Out,
                                             support::TraceSink *Trace) {
  support::TraceSpan Span(Trace, "cache.lookup");
  const std::string Hex = Key.hex();
  const Outcome R = [&] {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      auto It = Mem.find(Hex);
      if (It != Mem.end()) {
        Out = It->second;
        Hits.fetch_add(1, std::memory_order_relaxed);
        return Outcome::Hit;
      }
    }
    if (Dir.empty()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::Miss;
    }
    const fs::path File = fs::path(Dir) / (Hex + ".gsc");
    std::ifstream In(File, std::ios::binary);
    if (!In) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::Miss;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    const std::string Bytes = Buf.str();
    if (!deserialize(Bytes, Out)) {
      Corrupt.fetch_add(1, std::memory_order_relaxed);
      Misses.fetch_add(1, std::memory_order_relaxed);
      return Outcome::Corrupt;
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      insertMem(Hex, Out);
    }
    Hits.fetch_add(1, std::memory_order_relaxed);
    return Outcome::Hit;
  }();
  Span.arg("hit", R == Outcome::Hit ? 1 : 0);
  Span.arg("corrupt", R == Outcome::Corrupt ? 1 : 0);
  return R;
}

void SolutionCache::store(const support::Hash128 &Key,
                          const CachedAnalysis &Entry,
                          support::TraceSink *Trace) {
  support::TraceSpan Span(Trace, "cache.store");
  const std::string Hex = Key.hex();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    insertMem(Hex, Entry);
  }
  if (Dir.empty())
    return;
  std::string Bytes;
  serialize(Entry, Bytes);
  Span.arg("bytes", Bytes.size());
  // Atomic publish: concurrent writers of the same key write identical
  // bytes, so last-rename-wins is harmless; readers never see a partial
  // file. The tmp name is keyed so distinct keys never collide.
  const fs::path Final = fs::path(Dir) / (Hex + ".gsc");
  const fs::path Tmp = fs::path(Dir) / (Hex + ".tmp");
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return; // unwritable cache dir degrades to memory-only
    OutF.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!OutF)
      return;
  }
  std::error_code EC;
  fs::rename(Tmp, Final, EC);
  if (EC)
    fs::remove(Tmp, EC);
}

void SolutionCache::recordMetrics(support::MetricsRegistry &Metrics) const {
  Metrics
      .counter("gator_cache_hits_total",
               "Solution-cache lookups served from memory or disk")
      .add(hits());
  Metrics
      .counter("gator_cache_misses_total",
               "Solution-cache lookups that fell through to a full solve")
      .add(misses());
  Metrics
      .counter("gator_cache_evictions_total",
               "In-memory cache entries evicted by the FIFO bound")
      .add(evictions());
  Metrics
      .counter("gator_cache_corrupt_total",
               "On-disk cache entries rejected by validation")
      .add(corruptEntries());
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

support::Hash128 gator::analysis::hashAppDir(const std::string &Dir) {
  // Same file census as the CLI loader: sources, manifest, layouts.
  std::vector<std::pair<std::string, fs::path>> Files;
  std::error_code EC;
  const fs::path Root(Dir);
  for (fs::recursive_directory_iterator It(Root, EC), End; !EC && It != End;
       It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    const fs::path &Path = It->path();
    const std::string Ext = Path.extension().string();
    if (Ext != ".alite" && Ext != ".dexlite" && Ext != ".xml")
      continue;
    Files.emplace_back(Path.lexically_relative(Root).generic_string(), Path);
  }
  std::sort(Files.begin(), Files.end());

  support::ContentHasher H;
  H.field("gator-app-dir", "v1");
  H.u64("files", Files.size());
  for (const auto &[Rel, Path] : Files) {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    H.field(Rel, Buf.str());
  }
  return H.digest();
}

support::Hash128
gator::analysis::hashAnalysisOptions(const AnalysisOptions &O) {
  support::ContentHasher H;
  H.field("gator-options", "v1");
  H.boolean("TrackViewIds", O.TrackViewIds);
  H.boolean("TrackHierarchy", O.TrackHierarchy);
  H.boolean("FindView3ChildOnly", O.FindView3ChildOnly);
  H.boolean("ModelListenerCallbacks", O.ModelListenerCallbacks);
  H.boolean("ModelXmlOnClickHandlers", O.ModelXmlOnClickHandlers);
  H.boolean("DeclaredTypeFilter", O.DeclaredTypeFilter);
  H.boolean("ContextSensitiveHelpers", O.ContextSensitiveHelpers);
  H.u64("ContextHelperMaxStmts", O.ContextHelperMaxStmts);
  H.boolean("DeltaPropagation", O.DeltaPropagation);
  H.boolean("RecordProvenance", O.RecordProvenance);
  H.boolean("ModelUnknownSources", O.ModelUnknownSources);
  H.u64("UnknownFanoutBudget", O.UnknownFanoutBudget);
  // Deterministic budget limits shape the (possibly truncated) result;
  // wall-clock and cancellation do too, but non-reproducibly — those gate
  // eligibility instead (cacheEligible). Jobs, SolveJobs, and Trace never
  // change the per-app outcome (the parallel solve engine replays the
  // exact serial schedule — docs/PARALLEL.md), so a cache warmed serially
  // serves parallel runs and vice versa.
  H.u64("Budget.MaxWorkItems", O.Budget.MaxWorkItems);
  H.u64("Budget.MaxGraphNodes", O.Budget.MaxGraphNodes);
  H.u64("Budget.MaxGraphEdges", O.Budget.MaxGraphEdges);
  return H.digest();
}

support::Hash128
gator::analysis::combineCacheKey(const support::Hash128 &Inputs,
                                 const support::Hash128 &OptionsHash) {
  support::ContentHasher H;
  H.field("gator-cache-key", "v1");
  H.u64("app.hi", Inputs.Hi);
  H.u64("app.lo", Inputs.Lo);
  H.u64("opt.hi", OptionsHash.Hi);
  H.u64("opt.lo", OptionsHash.Lo);
  return H.digest();
}

support::Hash128 gator::analysis::cacheKeyFor(const std::string &Dir,
                                              const AnalysisOptions &Options) {
  return combineCacheKey(hashAppDir(Dir), hashAnalysisOptions(Options));
}

bool gator::analysis::cacheEligible(const AnalysisOptions &Options) {
  const support::BudgetPolicy &B = Options.Budget;
  return B.MaxWallSeconds <= 0 && !B.SharedDeadline.has_value() &&
         B.CancelFlag == nullptr;
}

//===----------------------------------------------------------------------===//
// Metrics capture / replay
//===----------------------------------------------------------------------===//

void gator::analysis::captureFlowsetHistogram(const Solution &Sol,
                                              std::vector<uint64_t> &Counts,
                                              uint64_t &Sum, uint64_t &Count) {
  support::Histogram H(flowsetBounds());
  for (const FlowSet &Set : Sol.flowsToSets())
    if (!Set.empty())
      H.observe(Set.size());
  Counts = H.bucketCounts();
  Sum = H.sum();
  Count = H.count();
}

void gator::analysis::replayAppMetrics(support::MetricsRegistry &Metrics,
                                       const CachedAnalysis &Entry) {
  recordAppMetrics(Metrics, Entry.Stats, nullptr);
  support::Histogram &H =
      Metrics.histogram("gator_flowset_size", "Sizes of nonempty flowsTo sets",
                        flowsetBounds());
  H.addRaw(Entry.FlowHistCounts, Entry.FlowHistSum, Entry.FlowHistCount);
}
