#!/usr/bin/env python3
"""Append one-line summaries of bench/BENCH_*.json to bench/TRAJECTORY.jsonl.

Each checked-in BENCH_*.json is a point-in-time measurement record for one
subsystem. This helper folds them into a single append-only trajectory file
so regressions are visible as a time series rather than as edits to
individual snapshots: one JSONL line per (file, content digest). Re-running
is idempotent — a file only gains a new line when its content changes, so
CI can run this on every build without growing the trajectory.

The BENCH files are heterogeneous (each records what its experiment needed),
so the summary extracts only the fields they share by convention: the
benchmark name, the measurement date, the first sentence of the description,
and the verdict when one is recorded. Everything else stays in the source
file, which the line points back to.
"""

import glob
import hashlib
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
TRAJECTORY = os.path.join(BENCH_DIR, "TRAJECTORY.jsonl")


def first_sentence(text):
    if not isinstance(text, str):
        return ""
    head = text.split(". ", 1)[0].strip()
    return head if len(head) <= 240 else head[:237] + "..."


def summarize(path):
    raw = open(path, "rb").read()
    digest = hashlib.sha256(raw).hexdigest()[:16]
    doc = json.loads(raw)
    env = doc.get("environment", {})
    line = {
        "file": os.path.basename(path),
        "digest": digest,
        "benchmark": doc.get("benchmark")
        or os.path.basename(path)[len("BENCH_"):-len(".json")],
        "date": env.get("date") or doc.get("date"),
        "summary": first_sentence(doc.get("description", "")),
    }
    if isinstance(doc.get("verdict"), str) and doc["verdict"]:
        line["verdict"] = first_sentence(doc["verdict"])
    return line


def main():
    existing = set()
    if os.path.exists(TRAJECTORY):
        for raw in open(TRAJECTORY):
            raw = raw.strip()
            if not raw:
                continue
            try:
                doc = json.loads(raw)
            except json.JSONDecodeError:
                sys.exit("corrupt trajectory line: %r" % raw)
            existing.add((doc.get("file"), doc.get("digest")))

    appended = 0
    with open(TRAJECTORY, "a") as out:
        for path in sorted(glob.glob(os.path.join(BENCH_DIR, "BENCH_*.json"))):
            line = summarize(path)
            if (line["file"], line["digest"]) in existing:
                continue
            out.write(json.dumps(line, sort_keys=True) + "\n")
            appended += 1

    print("trajectory: %d new line(s), %s" % (appended, TRAJECTORY))


if __name__ == "__main__":
    main()
