//===- Parser.h - ALite textual frontend ------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual ALite syntax, building directly
/// into an ir::Program (syntax-directed translation; ALite is simple enough
/// that no separate AST pays its way).
///
/// Grammar (EBNF; `//` and `/* */` comments are trivia):
///
///   program  := decl*
///   decl     := ["platform"] ("class" | "interface") qname
///               ["extends" qname] ["implements" qname ("," qname)*]
///               "{" member* "}"
///   member   := "field" ["static"] ident ":" type ";"
///             | "method" ["static"] ident "(" params ")" [":" type]
///               (block | ";")
///   params   := [ident ":" type ("," ident ":" type)*]
///   type     := qname                      // "int"/"void" are plain names
///   qname    := ident ("." ident)*
///   block    := "{" stmt* "}"
///   stmt     := "var" ident ":" type ";"
///             | "return" [ident] ";"
///             | "static" qname ":=" ident ";"      // static field store
///             | ident ":=" rhs ";"
///             | ident "." ident ":=" ident ";"     // instance field store
///             | ident "." ident "(" args ")" ";"   // call, result dropped
///   rhs      := "new" qname ["(" args ")"]         // non-empty args lower
///             |                                    //   to an `init` call
///               "null"
///             | "@layout/" name | "@id/" name
///             | "classof" qname
///             | "static" qname                     // static field load
///             | ident                              // copy
///             | ident "." ident                    // instance field load
///             | ident "." ident "(" args ")"       // call with result
///   args     := [ident ("," ident)*]
///
/// In `static` accesses the last `.`-separated component of the qname is
/// the field name and the prefix is the class name.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_PARSER_PARSER_H
#define GATOR_PARSER_PARSER_H

#include "ir/Ir.h"
#include "parser/Lexer.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace gator {
namespace parser {

/// Parses \p Input (one ALite source buffer) into \p Program, which may
/// already contain other classes (e.g. the platform model). Returns true
/// when no parse errors occurred. The caller still must run
/// Program::resolve() once all inputs are parsed.
bool parseAlite(std::string_view Input, const std::string &FileName,
                ir::Program &Program, DiagnosticEngine &Diags);

} // namespace parser
} // namespace gator

#endif // GATOR_PARSER_PARSER_H
