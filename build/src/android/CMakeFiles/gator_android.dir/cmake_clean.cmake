file(REMOVE_RECURSE
  "CMakeFiles/gator_android.dir/AndroidModel.cpp.o"
  "CMakeFiles/gator_android.dir/AndroidModel.cpp.o.d"
  "CMakeFiles/gator_android.dir/Manifest.cpp.o"
  "CMakeFiles/gator_android.dir/Manifest.cpp.o.d"
  "libgator_android.a"
  "libgator_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
