# Interaction matrix for intra-solve parallelism (docs/PARALLEL.md,
# "Inside one solve"): --solve-jobs must compose with every other driver
# feature without changing a byte of output. Invoked by ctest with
# -DCLI=<gator_cli> -DAPP=<single app dir> -DDIR=<batch dir>
# -DWORK=<scratch dir>. Compared against the all-serial reference:
#  1. single-app analysis at --solve-jobs 2/4/8;
#  2. a cache-dir cold+warm pair at --solve-jobs 4 (the warm hit replays
#     a serially-written entry; SolveJobs is excluded from the cache key);
#  3. batch -j 4 with --solve-jobs 4 (the driver clamps nested
#     parallelism to 1 per task, so this must equal plain batch -j 4).

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_cli out_var err_var code_var)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_code)
  set(${out_var} "${run_out}" PARENT_SCOPE)
  set(${err_var} "${run_err}" PARENT_SCOPE)
  set(${code_var} "${run_code}" PARENT_SCOPE)
endfunction()

function(expect_same label ref_out ref_err ref_code out err code)
  if(NOT out STREQUAL ref_out)
    message(FATAL_ERROR "${label}: stdout differs from the serial reference")
  endif()
  if(NOT err STREQUAL ref_err)
    message(FATAL_ERROR "${label}: stderr differs from the serial reference")
  endif()
  if(NOT code EQUAL ref_code)
    message(FATAL_ERROR
      "${label}: exit code ${code} differs from serial ${ref_code}")
  endif()
endfunction()

# --- 1. single-app sweep ----------------------------------------------------
set(single_args --no-times --tuples --hierarchy --solution --lint ${APP})
run_cli(ref_out ref_err ref_code ${single_args})
foreach(jobs 2 4 8)
  run_cli(out err code --solve-jobs ${jobs} ${single_args})
  expect_same("single-app --solve-jobs ${jobs}"
              "${ref_out}" "${ref_err}" "${ref_code}"
              "${out}" "${err}" "${code}")
endforeach()

# --- 2. cache warm under --solve-jobs ---------------------------------------
# Serial cold run writes the entry; a parallel run must hit it (SolveJobs
# is not part of the cache key) and replay identical output; a parallel
# cold run into a fresh cache must also write an entry a serial run hits.
set(cache_args --no-times --solution ${APP})
run_cli(cache_ref_out cache_ref_err cache_ref_code
        --cache-dir ${WORK}/cache ${cache_args})
run_cli(out err code --cache-dir ${WORK}/cache --solve-jobs 4 ${cache_args})
expect_same("warm cache hit at --solve-jobs 4"
            "${cache_ref_out}" "${cache_ref_err}" "${cache_ref_code}"
            "${out}" "${err}" "${code}")
run_cli(out err code --cache-dir ${WORK}/cache2 --solve-jobs 4 ${cache_args})
expect_same("cold parallel cache write"
            "${cache_ref_out}" "${cache_ref_err}" "${cache_ref_code}"
            "${out}" "${err}" "${code}")
run_cli(out err code --cache-dir ${WORK}/cache2 ${cache_args})
expect_same("serial hit on a parallel-written cache"
            "${cache_ref_out}" "${cache_ref_err}" "${cache_ref_code}"
            "${out}" "${err}" "${code}")

# --- 3. nested batch parallelism --------------------------------------------
run_cli(batch_ref_out batch_ref_err batch_ref_code
        --batch --no-times ${DIR})
run_cli(out err code --batch --no-times -j 4 --solve-jobs 4 ${DIR})
expect_same("batch -j 4 --solve-jobs 4"
            "${batch_ref_out}" "${batch_ref_err}" "${batch_ref_code}"
            "${out}" "${err}" "${code}")
run_cli(out err code --batch --no-times --solve-jobs 4 ${DIR})
expect_same("batch -j 1 --solve-jobs 4"
            "${batch_ref_out}" "${batch_ref_err}" "${batch_ref_code}"
            "${out}" "${err}" "${code}")

message(STATUS "solve-jobs interaction matrix byte-identical to serial")
