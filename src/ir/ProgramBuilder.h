//===- ProgramBuilder.h - Fluent ALite construction -------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience builders for constructing ALite programs in C++, used by the
/// synthetic corpus generator, the hand-written ConnectBot example, and the
/// unit tests. The ALite parser builds the same IR from text.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_IR_PROGRAMBUILDER_H
#define GATOR_IR_PROGRAMBUILDER_H

#include "ir/Ir.h"

#include <optional>
#include <string>
#include <vector>

namespace gator {
namespace ir {

/// Builds the body of one method statement by statement. Statement helpers
/// take variable *names*; locals must be declared (via param()/local())
/// before use.
class MethodBuilder {
public:
  explicit MethodBuilder(MethodDecl *Method) : M(Method) {
    assert(Method && "null method");
  }

  MethodDecl *method() { return M; }

  MethodBuilder &param(const std::string &Name, const std::string &TypeName) {
    M->addParam(Name, TypeName);
    return *this;
  }

  /// Declares a local, or returns the existing variable with this name.
  VarId local(const std::string &Name, const std::string &TypeName) {
    VarId Existing = M->findVar(Name);
    if (Existing != InvalidVar)
      return Existing;
    return M->addLocal(Name, TypeName);
  }

  /// Looks up a declared variable; asserts that it exists.
  VarId var(const std::string &Name) const {
    VarId Id = M->findVar(Name);
    assert(Id != InvalidVar && "use of undeclared variable in builder");
    return Id;
  }

  // Statement emitters. Each appends one Stmt to the body.

  /// x := y
  MethodBuilder &assign(const std::string &X, const std::string &Y) {
    Stmt S = make(StmtKind::AssignVar);
    S.Lhs = var(X);
    S.Base = var(Y);
    return push(S);
  }

  /// x := new C
  MethodBuilder &assignNew(const std::string &X, const std::string &Klass) {
    Stmt S = make(StmtKind::AssignNew);
    S.Lhs = var(X);
    S.ClassName = Klass;
    return push(S);
  }

  /// x := null
  MethodBuilder &assignNull(const std::string &X) {
    Stmt S = make(StmtKind::AssignNull);
    S.Lhs = var(X);
    return push(S);
  }

  /// x := y.f
  MethodBuilder &loadField(const std::string &X, const std::string &Y,
                           const std::string &Field) {
    Stmt S = make(StmtKind::LoadField);
    S.Lhs = var(X);
    S.Base = var(Y);
    S.FieldName = Field;
    return push(S);
  }

  /// x.f := y
  MethodBuilder &storeField(const std::string &X, const std::string &Field,
                            const std::string &Y) {
    Stmt S = make(StmtKind::StoreField);
    S.Base = var(X);
    S.FieldName = Field;
    S.Rhs = var(Y);
    return push(S);
  }

  /// x := C.f
  MethodBuilder &loadStatic(const std::string &X, const std::string &Klass,
                            const std::string &Field) {
    Stmt S = make(StmtKind::LoadStaticField);
    S.Lhs = var(X);
    S.ClassName = Klass;
    S.FieldName = Field;
    return push(S);
  }

  /// C.f := y
  MethodBuilder &storeStatic(const std::string &Klass,
                             const std::string &Field, const std::string &Y) {
    Stmt S = make(StmtKind::StoreStaticField);
    S.ClassName = Klass;
    S.FieldName = Field;
    S.Rhs = var(Y);
    return push(S);
  }

  /// x := @layout/name
  MethodBuilder &layoutId(const std::string &X, const std::string &Name) {
    Stmt S = make(StmtKind::AssignLayoutId);
    S.Lhs = var(X);
    S.ResourceName = Name;
    return push(S);
  }

  /// x := @id/name
  MethodBuilder &viewId(const std::string &X, const std::string &Name) {
    Stmt S = make(StmtKind::AssignViewId);
    S.Lhs = var(X);
    S.ResourceName = Name;
    return push(S);
  }

  /// x := classof C
  MethodBuilder &classConst(const std::string &X, const std::string &Klass) {
    Stmt S = make(StmtKind::AssignClassConst);
    S.Lhs = var(X);
    S.ClassName = Klass;
    return push(S);
  }

  /// [z :=] base.m(args)
  MethodBuilder &invoke(std::optional<std::string> Lhs,
                        const std::string &Base, const std::string &Method,
                        const std::vector<std::string> &Args = {}) {
    Stmt S = make(StmtKind::Invoke);
    if (Lhs)
      S.Lhs = var(*Lhs);
    S.Base = var(Base);
    S.MethodName = Method;
    for (const std::string &A : Args)
      S.Args.push_back(var(A));
    return push(S);
  }

  /// base.m(args) with no result.
  MethodBuilder &call(const std::string &Base, const std::string &Method,
                      const std::vector<std::string> &Args = {}) {
    return invoke(std::nullopt, Base, Method, Args);
  }

  /// return [x]
  MethodBuilder &ret(std::optional<std::string> X = std::nullopt) {
    Stmt S = make(StmtKind::Return);
    if (X)
      S.Lhs = var(*X);
    return push(S);
  }

  /// Sets the source location attached to subsequently emitted statements.
  MethodBuilder &at(SourceLocation Loc) {
    CurLoc = std::move(Loc);
    return *this;
  }

  /// Shorthand for at(): tags statements with a synthetic line number,
  /// mirroring the line subscripts used in the paper's Figures 3 and 4.
  MethodBuilder &atLine(unsigned Line) {
    return at(SourceLocation(M->owner()->name(), Line, 1));
  }

private:
  Stmt make(StmtKind Kind) const {
    Stmt S;
    S.Kind = Kind;
    S.Loc = CurLoc;
    return S;
  }

  MethodBuilder &push(Stmt &S) {
    M->body().push_back(std::move(S));
    return *this;
  }

  MethodDecl *M;
  SourceLocation CurLoc;
};

/// Builds one class.
class ClassBuilder {
public:
  ClassBuilder(Program &P, ClassDecl *Klass) : P(P), Klass(Klass) {
    assert(Klass && "null class");
  }

  ClassDecl *decl() { return Klass; }

  ClassBuilder &extends(const std::string &SuperName) {
    Klass->setSuperName(SuperName);
    return *this;
  }

  ClassBuilder &implements(const std::string &InterfaceName) {
    Klass->addInterfaceName(InterfaceName);
    return *this;
  }

  ClassBuilder &field(const std::string &Name, const std::string &TypeName,
                      bool IsStatic = false) {
    Klass->addField(Name, TypeName, IsStatic);
    return *this;
  }

  MethodBuilder method(const std::string &Name,
                       const std::string &ReturnTypeName = VoidTypeName,
                       bool IsStatic = false) {
    return MethodBuilder(Klass->addMethod(Name, ReturnTypeName, IsStatic));
  }

private:
  Program &P;
  ClassDecl *Klass;
};

/// Top-level builder over a Program.
class ProgramBuilder {
public:
  explicit ProgramBuilder(Program &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags) {}

  ClassBuilder makeClass(const std::string &Name) {
    return ClassBuilder(P, P.addClass(Name, /*IsInterface=*/false,
                                      /*IsPlatform=*/false, &Diags));
  }

  ClassBuilder makeInterface(const std::string &Name) {
    return ClassBuilder(P, P.addClass(Name, /*IsInterface=*/true,
                                      /*IsPlatform=*/false, &Diags));
  }

  /// Resolves cross-references; returns false on error.
  bool finish() { return P.resolve(Diags); }

  Program &program() { return P; }

private:
  Program &P;
  DiagnosticEngine &Diags;
};

} // namespace ir
} // namespace gator

#endif // GATOR_IR_PROGRAMBUILDER_H
