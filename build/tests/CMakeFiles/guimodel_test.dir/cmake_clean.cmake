file(REMOVE_RECURSE
  "CMakeFiles/guimodel_test.dir/guimodel_test.cpp.o"
  "CMakeFiles/guimodel_test.dir/guimodel_test.cpp.o.d"
  "guimodel_test"
  "guimodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guimodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
