//===- lexer_test.cpp - ALite lexer unit tests ------------------*- C++ -*-===//

#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::parser;

namespace {

std::vector<Token> lex(const std::string &Input, DiagnosticEngine &Diags) {
  Lexer L(Input, "test.alite", Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Result;
  for (const Token &T : Tokens)
    Result.push_back(T.Kind);
  return Result;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  DiagnosticEngine Diags;
  auto Tokens = lex("", Diags);
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  DiagnosticEngine Diags;
  auto Tokens = lex("class interface extends implements field method var "
                    "return new null static classof platform myName",
                    Diags);
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{
                TokenKind::KwClass, TokenKind::KwInterface,
                TokenKind::KwExtends, TokenKind::KwImplements,
                TokenKind::KwField, TokenKind::KwMethod, TokenKind::KwVar,
                TokenKind::KwReturn, TokenKind::KwNew, TokenKind::KwNull,
                TokenKind::KwStatic, TokenKind::KwClassof,
                TokenKind::KwPlatform, TokenKind::Identifier,
                TokenKind::EndOfFile}));
  EXPECT_EQ(Tokens[13].Text, "myName");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, PunctuationAndAssign) {
  DiagnosticEngine Diags;
  auto Tokens = lex("{ } ( ) : ; , . :=", Diags);
  EXPECT_EQ(kinds(Tokens),
            (std::vector<TokenKind>{
                TokenKind::LBrace, TokenKind::RBrace, TokenKind::LParen,
                TokenKind::RParen, TokenKind::Colon, TokenKind::Semicolon,
                TokenKind::Comma, TokenKind::Dot, TokenKind::Assign,
                TokenKind::EndOfFile}));
}

TEST(LexerTest, ColonVersusAssign) {
  DiagnosticEngine Diags;
  auto Tokens = lex("x := y; v: T", Diags);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Assign);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Colon);
}

TEST(LexerTest, ResourceReferences) {
  DiagnosticEngine Diags;
  auto Tokens = lex("@layout/act_console @id/button_esc", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::LayoutRef);
  EXPECT_EQ(Tokens[0].Text, "act_console");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::IdRef);
  EXPECT_EQ(Tokens[1].Text, "button_esc");
}

TEST(LexerTest, BadResourceKindIsError) {
  DiagnosticEngine Diags;
  auto Tokens = lex("@drawable/icon", Diags);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, MissingSlashInResourceIsError) {
  DiagnosticEngine Diags;
  lex("@layout act", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, LineCommentsSkipped) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a // comment to end of line\nb", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, BlockCommentsSkipped) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a /* multi\nline\ncomment */ b", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Loc.line(), 1u);
  EXPECT_EQ(Tokens[0].Loc.column(), 1u);
  EXPECT_EQ(Tokens[1].Loc.line(), 2u);
  EXPECT_EQ(Tokens[1].Loc.column(), 3u);
}

TEST(LexerTest, QualifiedNamePiecesAreSeparateTokens) {
  DiagnosticEngine Diags;
  auto Tokens = lex("android.app.Activity", Diags);
  ASSERT_EQ(Tokens.size(), 6u); // id . id . id EOF
  EXPECT_EQ(Tokens[0].Text, "android");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Tokens[4].Text, "Activity");
}

TEST(LexerTest, DollarAndAngleIdentifiers) {
  DiagnosticEngine Diags;
  auto Tokens = lex("lookup$cs1 <init>", Diags);
  EXPECT_EQ(Tokens[0].Text, "lookup$cs1");
  EXPECT_EQ(Tokens[1].Text, "<init>");
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

TEST(LexerTest, TokenKindNamesAreStable) {
  EXPECT_STREQ(tokenKindName(TokenKind::Assign), "':='");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::EndOfFile), "end of file");
}

} // namespace
