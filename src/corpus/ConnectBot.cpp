//===- ConnectBot.cpp - The paper's Figure 1 running example ----*- C++ -*-===//

#include "corpus/ConnectBot.h"

#include "layout/Layout.h"
#include "parser/Parser.h"

using namespace gator;
using namespace gator::corpus;

const char *gator::corpus::connectBotAliteSource() {
  return R"alite(
// Figure 1 of the paper, in ALite concrete syntax. Statement roles are
// annotated with the original figure line numbers.
class ConsoleActivity extends android.app.Activity {
  field flip: android.widget.ViewFlipper;

  // Figure lines 3-7: helper that queries the currently-visible terminal.
  method findTerminalView(a: int): android.view.View {
    var b: android.widget.ViewFlipper;
    var c: android.view.View;
    var d: android.view.View;
    b := this.flip;              // line 4
    c := b.getCurrentView();     // line 5, FindView3 (child-only)
    d := c.findViewById(a);      // line 6, FindView1
    return d;                    // line 7
  }

  // Figure lines 8-16.
  method onCreate() {
    var lid: int;
    var cfid: int;
    var beid: int;
    var e: android.view.View;
    var f: android.widget.ViewFlipper;
    var g: android.view.View;
    var h: android.widget.ImageView;
    var j: EscapeButtonListener;
    lid := @layout/act_console;
    this.setContentView(lid);    // line 9, Inflate2
    cfid := @id/console_flip;
    e := this.findViewById(cfid); // line 10, FindView2
    f := e;                       // line 11 (cast)
    this.flip := f;               // line 12
    beid := @id/button_esc;
    g := this.findViewById(beid); // line 13, FindView2
    h := g;                       // line 14 (cast)
    j := new EscapeButtonListener(this); // line 15
    h.setOnClickListener(j);      // line 16, SetListener
  }

  // Figure lines 17-25.
  method addNewTerminalView(bridge: TerminalBridge) {
    var inflater: android.view.LayoutInflater;
    var tlid: int;
    var k: android.view.View;
    var n: android.widget.RelativeLayout;
    var m: TerminalView;
    var tvid: int;
    var p: android.widget.ViewFlipper;
    inflater := this.getLayoutInflater(); // line 18 (helper object)
    tlid := @layout/item_terminal;
    k := inflater.inflate(tlid);  // line 19, Inflate1
    n := k;                       // line 20 (cast)
    m := new TerminalView(bridge); // line 21
    tvid := @id/terminal_view;
    m.setId(tvid);                // line 22, SetId
    n.addView(m);                 // line 23, AddView2 (m becomes child of n)
    p := this.flip;               // line 24
    p.addView(n);                 // line 25, AddView2
  }
}

// Figure lines 26-34.
class EscapeButtonListener implements android.view.View.OnClickListener {
  field cact: ConsoleActivity;

  method init(q: ConsoleActivity) {
    this.cact := q;               // line 29
  }

  method onClick(r: android.view.View) {
    var s: ConsoleActivity;
    var t: android.view.View;
    var v: TerminalView;
    var tvid: int;
    s := this.cact;               // line 31
    tvid := @id/terminal_view;
    t := s.findTerminalView(tvid); // line 32 (helper call)
    v := t;                        // line 33 (cast)
    // line 34: send ESC key to the terminal associated with v
  }
}

// Application view class for the SSH terminal window (Section 2).
class TerminalView extends android.view.View {
  field bridge: TerminalBridge;
  method init(b: TerminalBridge) {
    this.bridge := b;
  }
}

// Plain application class: the SSH connection state behind a terminal.
class TerminalBridge {
  field host: java.lang.Object;
}
)alite";
}

const char *gator::corpus::connectBotActConsoleXml() {
  return R"xml(
<RelativeLayout>
  <ViewFlipper android:id="@+id/console_flip" />
  <RelativeLayout android:id="@+id/keyboard_group">
    <ImageView android:id="@+id/button_esc" />
  </RelativeLayout>
</RelativeLayout>
)xml";
}

const char *gator::corpus::connectBotItemTerminalXml() {
  return R"xml(
<RelativeLayout>
  <TextView android:id="@+id/terminal_overlay" />
</RelativeLayout>
)xml";
}

std::unique_ptr<AppBundle> gator::corpus::buildConnectBotExample() {
  auto App = std::make_unique<AppBundle>();
  App->Name = "ConnectBot";
  App->Android.install(App->Program);

  if (!parser::parseAlite(connectBotAliteSource(), "connectbot.alite",
                          App->Program, App->Diags))
    return App; // diagnostics recorded; caller checks Diags

  if (!layout::readLayoutXml(*App->Layouts, "act_console",
                             connectBotActConsoleXml(), App->Diags))
    return App;
  if (!layout::readLayoutXml(*App->Layouts, "item_terminal",
                             connectBotItemTerminalXml(), App->Diags))
    return App;

  App->finalize();
  return App;
}
