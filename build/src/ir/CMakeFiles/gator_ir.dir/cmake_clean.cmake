file(REMOVE_RECURSE
  "CMakeFiles/gator_ir.dir/Ir.cpp.o"
  "CMakeFiles/gator_ir.dir/Ir.cpp.o.d"
  "CMakeFiles/gator_ir.dir/Verifier.cpp.o"
  "CMakeFiles/gator_ir.dir/Verifier.cpp.o.d"
  "libgator_ir.a"
  "libgator_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
