//===- StringInterner.h - Unique'd strings ----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner producing small integer Symbols. Class names, method
/// names, field names, and resource names are interned once so the IR and
/// the constraint graph can compare and hash them as integers.
///
/// Storage layout (docs/MEMORY.md): spellings are copied into an arena and
/// addressed by a flat {ptr,len} entry table indexed by Symbol; the lookup
/// structure is an open-addressed power-of-2 slot array probed linearly.
/// Interning is on every hot path of app generation and IR construction,
/// so there are no per-string heap nodes and no bucket chains.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_STRINGINTERNER_H
#define GATOR_SUPPORT_STRINGINTERNER_H

#include "support/Arena.h"
#include "support/Hash.h"

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

namespace gator {

/// An interned string handle. Symbols from the same interner compare equal
/// exactly when their spellings are equal. The default-constructed Symbol is
/// the invalid sentinel.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Index != ~0u; }
  uint32_t rawIndex() const { return Index; }

  bool operator==(const Symbol &Other) const { return Index == Other.Index; }
  bool operator!=(const Symbol &Other) const { return Index != Other.Index; }
  bool operator<(const Symbol &Other) const { return Index < Other.Index; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Index) : Index(Index) {}

  uint32_t Index = ~0u;
};

/// Owns the interned spellings and hands out Symbols.
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;
  StringInterner(StringInterner &&) = default;
  StringInterner &operator=(StringInterner &&) = default;

  /// Interns \p Text, returning the existing Symbol if already present.
  Symbol intern(std::string_view Text);

  /// Returns the Symbol for \p Text if interned, or the invalid Symbol.
  Symbol lookup(std::string_view Text) const {
    if (Slots.empty())
      return Symbol();
    uint64_t Hash = hashText(Text);
    size_t Mask = Slots.size() - 1;
    size_t I = slotIndex(Hash, Mask);
    while (true) {
      uint32_t S = Slots[I];
      if (S == EmptySlot)
        return Symbol();
      if (Hashes[S] == Hash && textOf(S) == Text)
        return Symbol(S);
      I = (I + 1) & Mask;
    }
  }

  /// Returns the spelling of a valid \p Sym. The view stays valid for the
  /// interner's lifetime (spellings live in the arena and never move).
  std::string_view text(Symbol Sym) const {
    assert(Sym.isValid() && Sym.rawIndex() < Spellings.size() &&
           "invalid symbol");
    return textOf(Sym.rawIndex());
  }

  size_t size() const { return Spellings.size(); }

private:
  struct Entry {
    const char *Ptr;
    uint32_t Len;
  };

  static constexpr uint32_t EmptySlot = ~0u;

  static uint64_t hashText(std::string_view Text) {
    return support::fnv1a64(Text);
  }

  static size_t slotIndex(uint64_t Hash, size_t Mask) {
    return support::fibonacciSlot(Hash, Mask);
  }

  std::string_view textOf(uint32_t Index) const {
    const Entry &E = Spellings[Index];
    return std::string_view(E.Ptr, E.Len);
  }

  void grow();

  /// Symbol -> spelling; chars live in Chars.
  std::vector<Entry> Spellings;
  /// Cached full hash per symbol, so probes compare 8 bytes before chars.
  std::vector<uint64_t> Hashes;
  /// Open-addressed slots holding spelling indices; power-of-2 sized.
  std::vector<uint32_t> Slots;
  support::Arena Chars;
};

} // namespace gator

namespace std {
template <> struct hash<gator::Symbol> {
  size_t operator()(const gator::Symbol &Sym) const {
    return std::hash<uint32_t>()(Sym.rawIndex());
  }
};
} // namespace std

#endif // GATOR_SUPPORT_STRINGINTERNER_H
