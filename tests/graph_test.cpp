//===- graph_test.cpp - Constraint graph unit tests -------------*- C++ -*-===//

#include "graph/ConstraintGraph.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::graph;
using namespace gator::ir;

namespace {

class GraphTest : public ::testing::Test {
protected:
  void SetUp() override {
    ProgramBuilder Builder(P, Diags);
    ClassBuilder A = Builder.makeClass("A");
    A.field("f", "A");
    MethodBuilder MB = A.method("m", "void");
    MB.local("x", "A");
    MB.assignNull("x");
    ASSERT_TRUE(Builder.finish());
    M = P.findClass("A")->findOwnMethod("m", 0);
    F = P.findClass("A")->findOwnField("f");
  }

  Program P;
  DiagnosticEngine Diags;
  const MethodDecl *M = nullptr;
  const FieldDecl *F = nullptr;
  ConstraintGraph G;
};

TEST_F(GraphTest, FactoriesAreMemoized) {
  NodeId V1 = G.getVarNode(M, 0);
  NodeId V2 = G.getVarNode(M, 0);
  EXPECT_EQ(V1, V2);
  EXPECT_NE(G.getVarNode(M, 1), V1);

  EXPECT_EQ(G.getFieldNode(F), G.getFieldNode(F));
  EXPECT_EQ(G.getActivityNode(P.findClass("A")),
            G.getActivityNode(P.findClass("A")));
  EXPECT_EQ(G.getLayoutIdNode(100), G.getLayoutIdNode(100));
  EXPECT_NE(G.getLayoutIdNode(100), G.getViewIdNode(100));
  EXPECT_EQ(G.getClassConstNode(P.findClass("A")),
            G.getClassConstNode(P.findClass("A")));
  EXPECT_EQ(G.getAllocNode(M, 3, P.findClass("A"), false, {}),
            G.getAllocNode(M, 3, P.findClass("A"), false, {}));
}

TEST_F(GraphTest, OpNodesAreNotMemoized) {
  NodeId Op1 = G.makeOpNode(android::OpKind::FindView1, SourceLocation());
  NodeId Op2 = G.makeOpNode(android::OpKind::FindView1, SourceLocation());
  EXPECT_NE(Op1, Op2);
}

TEST_F(GraphTest, FlowEdgesDeduplicate) {
  NodeId A = G.getVarNode(M, 0);
  NodeId B = G.getVarNode(M, 1);
  EXPECT_TRUE(G.addFlowEdge(A, B));
  EXPECT_FALSE(G.addFlowEdge(A, B));
  EXPECT_EQ(G.flowEdgeCount(), 1u);
  ASSERT_EQ(G.flowSuccessors(A).size(), 1u);
  EXPECT_EQ(G.flowSuccessors(A)[0], B);
}

TEST_F(GraphTest, RelationshipEdgesDeduplicate) {
  NodeId V1 = G.getAllocNode(M, 0, P.findClass("A"), /*IsView=*/true, {});
  NodeId V2 = G.getAllocNode(M, 1, P.findClass("A"), /*IsView=*/true, {});
  NodeId Id = G.getViewIdNode(7);
  EXPECT_TRUE(G.addParentChildEdge(V1, V2));
  EXPECT_FALSE(G.addParentChildEdge(V1, V2));
  EXPECT_EQ(G.parentChildEdgeCount(), 1u);
  EXPECT_TRUE(G.addHasIdEdge(V1, Id));
  EXPECT_FALSE(G.addHasIdEdge(V1, Id));
  ASSERT_EQ(G.viewIds(V1).size(), 1u);
  EXPECT_EQ(G.children(V2).size(), 0u);
}

TEST_F(GraphTest, DescendantsIncludeSelfAndHandleSharing) {
  auto View = [&](int I) {
    return G.getAllocNode(M, I, P.findClass("A"), /*IsView=*/true, {});
  };
  // Diamond: 0 -> {1, 2}, 1 -> 3, 2 -> 3.
  G.addParentChildEdge(View(0), View(1));
  G.addParentChildEdge(View(0), View(2));
  G.addParentChildEdge(View(1), View(3));
  G.addParentChildEdge(View(2), View(3));
  auto Desc = G.descendantsOf(View(0));
  EXPECT_EQ(Desc.size(), 4u); // each node once despite two paths to 3
  auto DescLeaf = G.descendantsOf(View(3));
  ASSERT_EQ(DescLeaf.size(), 1u);
  EXPECT_EQ(DescLeaf[0], View(3));
}

TEST_F(GraphTest, DescendantsTerminateOnCycle) {
  auto View = [&](int I) {
    return G.getAllocNode(M, I, P.findClass("A"), /*IsView=*/true, {});
  };
  G.addParentChildEdge(View(0), View(1));
  G.addParentChildEdge(View(1), View(0));
  EXPECT_EQ(G.descendantsOf(View(0)).size(), 2u);
}

TEST_F(GraphTest, LabelsAreInformative) {
  NodeId V = G.getVarNode(M, M->findVar("x"));
  EXPECT_EQ(G.label(V), "x@A.m/0");
  NodeId Field = G.getFieldNode(F);
  EXPECT_EQ(G.label(Field), "A.f");
  NodeId Act = G.getActivityNode(P.findClass("A"));
  EXPECT_EQ(G.label(Act), "act:A");
  NodeId Alloc = G.getAllocNode(M, 0, P.findClass("A"), true,
                                SourceLocation("t", 21, 1));
  EXPECT_EQ(G.label(Alloc), "new A_21");
  NodeId Op = G.makeOpNode(android::OpKind::SetListener,
                           SourceLocation("t", 16, 1));
  EXPECT_EQ(G.label(Op), "SetListener_16");
}

TEST_F(GraphTest, NodesOfKindFilters) {
  G.getVarNode(M, 0);
  G.getViewIdNode(1);
  G.getViewIdNode(2);
  EXPECT_EQ(G.nodesOfKind(NodeKind::ViewId).size(), 2u);
  EXPECT_EQ(G.nodesOfKind(NodeKind::Var).size(), 1u);
  EXPECT_EQ(G.nodesOfKind(NodeKind::Op).size(), 0u);
}

TEST_F(GraphTest, DotDumpContainsNodesAndEdges) {
  NodeId A = G.getVarNode(M, M->findVar("x"));
  NodeId V = G.getAllocNode(M, 0, P.findClass("A"), true, {});
  G.addFlowEdge(V, A);
  NodeId Id = G.getViewIdNode(3);
  G.addHasIdEdge(V, Id);
  std::ostringstream OS;
  G.dumpDot(OS);
  std::string Dot = OS.str();
  EXPECT_NE(Dot.find("digraph constraints"), std::string::npos);
  EXPECT_NE(Dot.find("x@A.m/0"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"id\""), std::string::npos);
  // Var nodes can be suppressed.
  std::ostringstream OS2;
  G.dumpDot(OS2, /*IncludeVarNodes=*/false);
  EXPECT_EQ(OS2.str().find("x@A.m/0"), std::string::npos);
}

TEST_F(GraphTest, ValueAndViewKindPredicates) {
  EXPECT_TRUE(isValueNodeKind(NodeKind::ViewInfl));
  EXPECT_TRUE(isValueNodeKind(NodeKind::Activity));
  EXPECT_TRUE(isValueNodeKind(NodeKind::LayoutId));
  EXPECT_FALSE(isValueNodeKind(NodeKind::Var));
  EXPECT_FALSE(isValueNodeKind(NodeKind::Op));
  EXPECT_TRUE(isViewNodeKind(NodeKind::ViewAlloc));
  EXPECT_TRUE(isViewNodeKind(NodeKind::ViewInfl));
  EXPECT_FALSE(isViewNodeKind(NodeKind::Alloc));
}

TEST_F(GraphTest, StatsLineMentionsCounts) {
  G.getVarNode(M, 0);
  G.getViewIdNode(9);
  std::ostringstream OS;
  G.dumpStats(OS);
  EXPECT_NE(OS.str().find("Var=1"), std::string::npos);
  EXPECT_NE(OS.str().find("ViewId=1"), std::string::npos);
}

} // namespace
