# Empty compiler generated dependencies file for gator_dex.
# This may be replaced when dependencies are built.
