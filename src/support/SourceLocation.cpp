//===- SourceLocation.cpp -------------------------------------*- C++ -*-===//

#include "support/SourceLocation.h"

#include <sstream>

using namespace gator;

std::string SourceLocation::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << (File.empty() ? "<input>" : File) << ':' << Line << ':' << Column;
  return OS.str();
}

std::ostream &gator::operator<<(std::ostream &OS, const SourceLocation &Loc) {
  return OS << Loc.str();
}
