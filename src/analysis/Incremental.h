//===- Incremental.h - Edit-scale incremental re-solve ----------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delete-and-rederive (DRed) incremental re-solving (docs/INCREMENTAL.md).
/// When an edit touches one method body or one layout file, an
/// IncrementalAnalysis session retracts exactly the facts whose recorded
/// derivations lost support, re-seeds the solver, and re-derives to the
/// same least fixed point a from-scratch solve over the edited program
/// would reach — without re-parsing or re-solving the untouched 99% of
/// the app.
///
/// Three layers:
///  - retractAndClose(): the engine-independent deletion closure over the
///    provenance fact table. Over-deletion is sound (the re-derive pass
///    restores anything still derivable); under-deletion is what the
///    closure rules out.
///  - IncrementalAnalysis: a long-lived session owning the graph,
///    solution, provenance, and per-method EDB footprints; supports
///    reanalyzeMethod() and reanalyzeLayout().
///  - solutionDigest() / diffBundles() / graftMethodBody(): the
///    differential-testing surface — digest two solutions for semantic
///    equality, diff two parses of an app, and graft an edited body onto
///    the base program in place.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_INCREMENTAL_H
#define GATOR_ANALYSIS_INCREMENTAL_H

#include "analysis/Options.h"
#include "analysis/PhasedSolver.h"
#include "analysis/Provenance.h"
#include "analysis/Solution.h"
#include "analysis/Solver.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "hier/ClassHierarchy.h"
#include "ir/Ir.h"
#include "layout/Layout.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gator {
namespace analysis {

class GraphBuilder;

//===----------------------------------------------------------------------===//
// Retraction closure
//===----------------------------------------------------------------------===//

/// What one edit invalidated, in graph terms. The session computes these
/// from footprint diffs; the closure derives everything downstream.
struct RetractionInputs {
  /// EDB flow edges the rebuild no longer contributes. Already physically
  /// removed from the graph by the caller; listed here so facts that
  /// propagated across them die.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> RemovedEdges;
  /// Tombstoned op sites the rebuild did not resurrect.
  std::vector<uint32_t> DeadOps;
  /// Nodes that no longer exist semantically (builder-minted unknown
  /// sources of the old body, view subtrees of a dead inflate site or an
  /// edited layout). The closure kills every fact touching them and
  /// retires them in the graph.
  std::vector<graph::NodeId> RetireNodes;
};

/// What the closure deleted; the inputs of the re-derive pass.
struct RetractionResult {
  /// Nodes whose flowsTo sets shrank (retired nodes excluded). The
  /// re-solve must pull their predecessors' full sets back through.
  std::vector<graph::NodeId> Touched;
  /// From-nodes of retracted FlowLink facts: Solver::forgetWiredValue
  /// targets, so fragment/adapter wiring re-fires.
  std::vector<graph::NodeId> WiredValuesForgotten;
  /// (inflate-site OpNode, layout-or-unknown-id node) pairs whose minted
  /// subtree was retired by the closure cascade; the solver must drop
  /// exactly these inflation memo entries so the site re-mints on demand
  /// (dropping more would duplicate surviving subtrees).
  std::vector<std::pair<graph::NodeId, graph::NodeId>> MintsRetired;
  /// Everything retired: the explicit RetireNodes plus minted view
  /// subtrees whose seed fact died in the cascade.
  std::vector<graph::NodeId> RetiredNodes;
  size_t FactsRetracted = 0;
};

/// Deletes the over-approximate consequence set of \p In from \p Sol's
/// flow sets, \p G's relationship edges, and \p Prov's fact table.
///
/// Soundness: a fact is kept only if its *recorded* derivation survives,
/// and recorded derivations are recursively grounded in EDB (seeds and
/// journaled edges), so every kept fact is still genuinely derivable.
/// Completeness: the subsequent re-derive pass (Solver::resolveIncremental
/// or a warm phased run) runs the normal monotone rules to quiescence, so
/// any over-deleted fact reappears. See docs/INCREMENTAL.md for the full
/// argument.
RetractionResult retractAndClose(graph::ConstraintGraph &G, Solution &Sol,
                                 ProvenanceRecorder &Prov,
                                 const RetractionInputs &In);

//===----------------------------------------------------------------------===//
// Differential-testing surface
//===----------------------------------------------------------------------===//

/// Canonical text rendering of the externally observable solution: live
/// op sites with their role sets, every non-retired node's flowsTo set,
/// relationship edges, and unresolved-op markers, all under semantic keys
/// (method-qualified variable names, resource ids, layout-node
/// identities) rather than node ids. Two solutions over the *same*
/// program and layout objects digest equal iff they are the same fixed
/// point; node numbering, op order, and retired debris do not matter.
/// In-process comparison only (layout-node identity is by address).
std::string solutionDigest(const Solution &Sol);

/// The difference between a base program and an edited re-parse of it.
struct EditDiff {
  /// (method in base, counterpart in edited) pairs whose bodies differ.
  std::vector<std::pair<ir::MethodDecl *, const ir::MethodDecl *>> Methods;
  /// Layout names whose view trees differ.
  std::vector<std::string> Layouts;
  /// Human-readable reasons the edit is beyond edit-scale re-solving
  /// (class/method/field set changed, signature changed, resource table
  /// changed, edited layout is an <include> target). Non-empty means the
  /// caller must fall back to a full solve.
  std::vector<std::string> Unsupported;
};

/// Structurally compares two parses of one app. \p Base is mutable so the
/// result can carry mutable method pointers for grafting.
EditDiff diffBundles(ir::Program &Base, const ir::Program &Edited,
                     const layout::LayoutRegistry &BaseLayouts,
                     const layout::LayoutRegistry &EditedLayouts);

/// Replaces \p Dst's body with \p Src's, remapping variable ids:
/// parameters by position, locals by name (new locals are appended; old
/// ones linger unreferenced, which the analysis ignores). Returns false
/// when the signatures are incompatible (arity/staticness mismatch).
bool graftMethodBody(ir::MethodDecl &Dst, const ir::MethodDecl &Src);

//===----------------------------------------------------------------------===//
// The session
//===----------------------------------------------------------------------===//

/// A long-lived analysis session over one (mutable) application.
/// solveInitial() journals each method's EDB footprint as it builds; a
/// reanalyze call then rebuilds just the edited unit against the old
/// footprint, retracts the difference, and re-derives.
class IncrementalAnalysis {
public:
  enum class Engine { Fused, Phased };

  /// Provenance recording is forced on regardless of
  /// \p Options.RecordProvenance — the retraction closure is the
  /// provenance consumer.
  IncrementalAnalysis(ir::Program &P, layout::LayoutRegistry &Layouts,
                      const android::AndroidModel &AM,
                      const AnalysisOptions &Options, DiagnosticEngine &Diags,
                      Engine E = Engine::Fused);
  ~IncrementalAnalysis();

  /// Full build + solve. Call exactly once, before any reanalyze.
  void solveInitial();

  /// Re-solves after \p M's body was edited in place (via
  /// graftMethodBody). Returns false when the method is outside the
  /// session's footprints (e.g. added after solveInitial) — the caller
  /// must fall back to a full solve.
  bool reanalyzeMethod(ir::MethodDecl &M);

  /// Re-solves after the layout named \p Name changed; \p NewRoot is the
  /// edited view tree (the old tree is neutralized, then replaced).
  /// Returns false (untouched state) when the layout is unknown or is an
  /// <include> target — splicing into includers is beyond edit scale.
  bool reanalyzeLayout(const std::string &Name,
                       std::unique_ptr<layout::LayoutNode> NewRoot);

  Solution &solution() { return *Sol; }
  const Solution &solution() const { return *Sol; }
  graph::ConstraintGraph &constraintGraph() { return *G; }
  const SolverStats &lastStats() const { return LastStats; }
  size_t lastFactsRetracted() const { return LastRetracted; }
  size_t lastTouchedNodes() const { return LastTouched; }

private:
  using NodeId = graph::NodeId;

  struct MethodFootprint {
    std::vector<std::pair<NodeId, NodeId>> Edges;
    std::vector<uint32_t> OpIndices;
  };

  /// Builds one method with the journal attached and installs its
  /// footprint (plus return-link index entries).
  void buildAndJournal(GraphBuilder &B, const ir::MethodDecl &M);
  /// Removes \p M's old footprint edges from the return-link index.
  void unindexRetLinks(const ir::MethodDecl &M, const MethodFootprint &FP);
  void indexRetLinks(const ir::MethodDecl &M, const MethodFootprint &FP);
  /// Runs the re-derive pass over the closure result.
  void rederive(const RetractionResult &R,
                const std::vector<NodeId> &ExtraTouched,
                const std::vector<uint32_t> &DeadOps,
                const std::vector<NodeId> &DirtyLayoutNodes);

  ir::Program &P;
  layout::LayoutRegistry &Layouts;
  const android::AndroidModel &AM;
  AnalysisOptions Options;
  DiagnosticEngine &Diags;
  Engine Eng;

  std::unique_ptr<hier::ClassHierarchy> CH;
  std::unique_ptr<graph::ConstraintGraph> G;
  std::unique_ptr<Solution> Sol;
  std::unique_ptr<ProvenanceRecorder> Prov;
  std::unique_ptr<Solver> S; ///< persistent fused engine (null when Phased)

  SolverStats LastStats;
  size_t LastRetracted = 0;
  size_t LastTouched = 0;

  std::unordered_map<const ir::MethodDecl *, MethodFootprint> Footprints;
  /// Callee method -> return-link edges (callee return var node, caller
  /// lhs node) living in *callers'* footprints. When the callee's return
  /// statements change, these are the cross-method edges to fix up.
  std::unordered_map<const ir::MethodDecl *,
                     std::vector<std::pair<NodeId, NodeId>>>
      RetLinksByCallee;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_INCREMENTAL_H
