//===- Solution.cpp - Analysis results and queries --------------*- C++ -*-===//

#include "analysis/Solution.h"

#include <algorithm>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;

const char *gator::analysis::fidelityName(Fidelity F) {
  switch (F) {
  case Fidelity::Complete:
    return "complete";
  case Fidelity::DegradedInput:
    return "degraded-input";
  case Fidelity::TruncatedBudget:
    return "truncated-budget";
  }
  return "unknown";
}

void Solution::noteUnresolvedOp(uint32_t OpIndex) {
  auto It = std::lower_bound(Unresolved.begin(), Unresolved.end(), OpIndex);
  if (It == Unresolved.end() || *It != OpIndex)
    Unresolved.insert(It, OpIndex);
}

void Solution::pruneUnresolvedDeadOps() {
  Unresolved.erase(std::remove_if(Unresolved.begin(), Unresolved.end(),
                                  [&](uint32_t I) { return Ops[I].Dead; }),
                   Unresolved.end());
}

const FlowSet &Solution::valuesAt(NodeId N) const {
  if (N == InvalidNode || N >= FlowsTo.size())
    return Empty;
  return FlowsTo[N];
}

std::vector<NodeId> Solution::viewsAt(NodeId N) const {
  std::vector<NodeId> Result;
  for (NodeId V : valuesAt(N))
    if (isViewNodeKind(G.node(V).Kind))
      Result.push_back(V);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<NodeId> Solution::listenerValuesAt(NodeId N) const {
  // Any object can serve as a listener (Section 4.1 notes the general
  // case); the registration call's declared parameter type already selects
  // candidates, so every non-id value reaching the position qualifies.
  std::vector<NodeId> Result;
  for (NodeId V : valuesAt(N)) {
    NodeKind Kind = G.node(V).Kind;
    if (Kind == NodeKind::Alloc || Kind == NodeKind::Activity ||
        isViewNodeKind(Kind) || Kind == NodeKind::ClassConst)
      Result.push_back(V);
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<const OpSite *> Solution::opsOfKind(OpKind Kind) const {
  std::vector<const OpSite *> Result;
  for (const OpSite &Op : Ops)
    if (!Op.Dead && Op.Spec.Kind == Kind)
      Result.push_back(&Op);
  return Result;
}

std::vector<NodeId> Solution::receiversOf(const OpSite &Op) const {
  return viewsAt(Op.Recv);
}

std::vector<NodeId> Solution::parametersOf(const OpSite &Op) const {
  return viewsAt(Op.ValArg);
}

std::vector<NodeId> Solution::listenersAtOp(const OpSite &Op) const {
  return listenerValuesAt(Op.ValArg);
}

std::vector<NodeId> Solution::resultsOf(const OpSite &Op, bool TrackViewIds,
                                        bool TrackHierarchy,
                                        bool ChildOnlyRefinement,
                                        unsigned UnknownFanoutBudget) const {
  std::unordered_set<NodeId> Result;

  // Unknown-source handling (docs/ROBUSTNESS.md) is gated on the graph
  // actually holding unknown nodes, so clean inputs pay nothing.
  bool HaveUnknown = !G.nodesOfKind(NodeKind::UnknownView).empty() ||
                     !G.nodesOfKind(NodeKind::UnknownId).empty();

  // The roots to search under.
  std::vector<NodeId> SearchRoots;
  switch (Op.Spec.Kind) {
  case OpKind::FindView1:
  case OpKind::FindView3:
    // Direct filter rather than viewsAt(): roots are only iterated, so
    // the sorted order viewsAt() guarantees is not needed here.
    for (NodeId V : valuesAt(Op.Recv))
      if (isViewNodeKind(G.node(V).Kind))
        SearchRoots.push_back(V);
    break;
  case OpKind::FindView2:
    // Activity-wide search: every root associated with a receiver value.
    for (NodeId W : valuesAt(Op.Recv))
      for (NodeId R : G.roots(W))
        SearchRoots.push_back(R);
    break;
  case OpKind::Inflate1: {
    // The inflated root(s) for the layout ids reaching this site.
    for (NodeId V : valuesAt(Op.IdArg)) {
      NodeKind VKind = G.node(V).Kind;
      if (VKind == NodeKind::LayoutId) {
        // Roots minted at this site carry a roots-layout edge to V and an
        // InflateSite of this op.
        for (NodeId ViewNode : G.nodesOfKind(NodeKind::ViewInfl))
          if (G.node(ViewNode).InflateSite == Op.OpNode &&
              !G.isRetired(ViewNode))
            for (NodeId L : G.rootsOfLayouts(ViewNode))
              if (L == V)
                Result.insert(ViewNode);
      } else if (VKind == NodeKind::UnknownId) {
        // Unknown layout id: the solver minted one unknown root per
        // (site, id) pair, linked the same way.
        for (NodeId ViewNode : G.nodesOfKind(NodeKind::UnknownView))
          if (G.node(ViewNode).InflateSite == Op.OpNode &&
              !G.isRetired(ViewNode))
            for (NodeId L : G.rootsOfLayouts(ViewNode))
              if (L == V)
                Result.insert(ViewNode);
      }
    }
    std::vector<NodeId> Sorted(Result.begin(), Result.end());
    std::sort(Sorted.begin(), Sorted.end());
    return Sorted;
  }
  default:
    return {};
  }

  // FindView1/2 filter by the view ids reaching the id argument.
  bool FilterByIds = TrackViewIds && (Op.Spec.Kind == OpKind::FindView1 ||
                                      Op.Spec.Kind == OpKind::FindView2);

  // A non-constant id at the argument makes every candidate a sound
  // match: drop the filter, capped by the per-app fanout budget.
  bool UnknownIdAtArg = false;
  if (HaveUnknown && FilterByIds)
    for (NodeId IdVal : valuesAt(Op.IdArg))
      if (G.node(IdVal).Kind == NodeKind::UnknownId) {
        UnknownIdAtArg = true;
        break;
      }

  // Gather into a plain vector and sort+unique at the end: fire sites run
  // this on every input growth, and the match lists are small, so the
  // vector pass beats building a hash set per call.
  std::vector<NodeId> Out;

  // Appends the first UnknownFanoutBudget of \p Universe (sorted, deduped
  // — the cap must be deterministic). 0 = uncapped.
  auto appendCapped = [&](std::vector<NodeId> Universe) {
    std::sort(Universe.begin(), Universe.end());
    Universe.erase(std::unique(Universe.begin(), Universe.end()),
                   Universe.end());
    size_t N = UnknownFanoutBudget
                   ? std::min<size_t>(Universe.size(), UnknownFanoutBudget)
                   : Universe.size();
    Out.insert(Out.end(), Universe.begin(), Universe.begin() + N);
  };

  if (!TrackHierarchy) {
    // Every view is a candidate; with an id filter the reverse
    // viewId -> views index yields the matches directly.
    if (FilterByIds) {
      for (NodeId IdVal : valuesAt(Op.IdArg))
        if (G.node(IdVal).Kind == NodeKind::ViewId)
          for (NodeId V : G.viewsWithId(IdVal))
            Out.push_back(V);
      if (UnknownIdAtArg) {
        std::vector<NodeId> Universe;
        for (NodeKind K : {NodeKind::ViewAlloc, NodeKind::ViewInfl,
                           NodeKind::UnknownView})
          for (NodeId V : G.nodesOfKind(K))
            if (!G.isRetired(V))
              Universe.push_back(V);
        appendCapped(std::move(Universe));
      } else if (HaveUnknown) {
        // A view whose id is unknown may carry *any* constant id, and an
        // unknown view matches any lookup it reaches.
        for (NodeId U : G.nodesOfKind(NodeKind::UnknownId))
          for (NodeId V : G.viewsWithId(U))
            Out.push_back(V);
        for (NodeId V : G.nodesOfKind(NodeKind::UnknownView))
          if (!G.isRetired(V))
            Out.push_back(V);
      }
    } else {
      for (NodeKind K : {NodeKind::ViewAlloc, NodeKind::ViewInfl})
        for (NodeId V : G.nodesOfKind(K))
          if (!G.isRetired(V))
            Out.push_back(V);
      if (HaveUnknown)
        for (NodeId V : G.nodesOfKind(NodeKind::UnknownView))
          if (!G.isRetired(V))
            Out.push_back(V);
    }
  } else {
    bool ChildOnly = Op.Spec.ChildOnly && ChildOnlyRefinement;
    std::vector<NodeId> Candidates;
    for (NodeId Root : SearchRoots) {
      if (ChildOnly) {
        for (NodeId C : G.children(Root))
          Candidates.push_back(C);
      } else {
        const auto &Desc = G.descendantsOf(Root);
        Candidates.insert(Candidates.end(), Desc.begin(), Desc.end());
      }
    }
    if (FilterByIds) {
      // Intersect the candidate set with the per-id view lists instead of
      // enumerating every candidate's ids.
      std::sort(Candidates.begin(), Candidates.end());
      for (NodeId IdVal : valuesAt(Op.IdArg))
        if (G.node(IdVal).Kind == NodeKind::ViewId)
          for (NodeId V : G.viewsWithId(IdVal))
            if (std::binary_search(Candidates.begin(), Candidates.end(), V))
              Out.push_back(V);
      if (UnknownIdAtArg) {
        appendCapped(Candidates);
      } else if (HaveUnknown) {
        for (NodeId U : G.nodesOfKind(NodeKind::UnknownId))
          for (NodeId V : G.viewsWithId(U))
            if (std::binary_search(Candidates.begin(), Candidates.end(), V))
              Out.push_back(V);
        for (NodeId V : G.nodesOfKind(NodeKind::UnknownView))
          if (!G.isRetired(V) &&
              std::binary_search(Candidates.begin(), Candidates.end(), V))
            Out.push_back(V);
      }
    } else {
      Out = std::move(Candidates);
    }
  }

  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

void Solution::dump(std::ostream &OS, bool TrackViewIds, bool TrackHierarchy,
                    bool ChildOnlyRefinement,
                    unsigned UnknownFanoutBudget) const {
  auto printSet = [&](const std::vector<NodeId> &Values) {
    OS << '{';
    for (size_t I = 0; I < Values.size(); ++I) {
      if (I)
        OS << ", ";
      OS << G.label(Values[I]);
    }
    OS << '}';
  };

  for (const OpSite &Op : Ops) {
    if (Op.Dead)
      continue;
    OS << G.label(Op.OpNode);
    if (Op.Method)
      OS << " @ " << Op.Method->qualifiedName();

    switch (Op.Spec.Kind) {
    case OpKind::FindView1:
    case OpKind::FindView3:
    case OpKind::AddView2:
    case OpKind::SetId:
    case OpKind::SetListener:
      OS << " recv";
      printSet(receiversOf(Op));
      break;
    default:
      break;
    }
    if (Op.Spec.Kind == OpKind::AddView1 ||
        Op.Spec.Kind == OpKind::AddView2) {
      OS << " child";
      printSet(parametersOf(Op));
    }
    if (Op.Spec.Kind == OpKind::SetListener) {
      OS << " listeners";
      printSet(listenersAtOp(Op));
    }
    if (Op.Spec.Kind == OpKind::FindView1 ||
        Op.Spec.Kind == OpKind::FindView2 ||
        Op.Spec.Kind == OpKind::FindView3 ||
        Op.Spec.Kind == OpKind::Inflate1) {
      OS << " -> ";
      printSet(resultsOf(Op, TrackViewIds, TrackHierarchy,
                         ChildOnlyRefinement, UnknownFanoutBudget));
    }
    OS << '\n';
  }
}

Solution::PrecisionMetrics
Solution::computeMetrics(bool TrackViewIds, bool TrackHierarchy,
                         bool ChildOnlyRefinement,
                         unsigned UnknownFanoutBudget) const {
  PrecisionMetrics M;

  // receivers: ops whose receiver role is a view.
  unsigned long ReceiverOps = 0, ReceiverSum = 0;
  // parameters: AddView nodes.
  unsigned long ParamOps = 0, ParamSum = 0;
  bool HasAddView = false;
  // results: FindView nodes.
  unsigned long ResultOps = 0, ResultSum = 0;
  bool HasFindView = false;
  // listeners: (SetListener op, view) pairs.
  unsigned long ListenerPairs = 0, ListenerSum = 0;
  bool HasSetListener = false;

  for (const OpSite &Op : Ops) {
    if (Op.Dead)
      continue;
    switch (Op.Spec.Kind) {
    case OpKind::FindView1:
    case OpKind::FindView3:
    case OpKind::AddView2:
    case OpKind::SetId:
    case OpKind::SetListener: {
      size_t N = receiversOf(Op).size();
      if (N > 0) {
        ++ReceiverOps;
        ReceiverSum += N;
      }
      break;
    }
    default:
      break;
    }

    if (Op.Spec.Kind == OpKind::AddView1 || Op.Spec.Kind == OpKind::AddView2) {
      HasAddView = true;
      size_t N = parametersOf(Op).size();
      if (N > 0) {
        ++ParamOps;
        ParamSum += N;
      }
    }

    if (Op.Spec.Kind == OpKind::FindView1 ||
        Op.Spec.Kind == OpKind::FindView2 ||
        Op.Spec.Kind == OpKind::FindView3) {
      HasFindView = true;
      size_t N = resultsOf(Op, TrackViewIds, TrackHierarchy,
                           ChildOnlyRefinement, UnknownFanoutBudget)
                     .size();
      if (N > 0) {
        ++ResultOps;
        ResultSum += N;
      }
    }

    if (Op.Spec.Kind == OpKind::SetListener) {
      HasSetListener = true;
      size_t Views = receiversOf(Op).size();
      size_t Ls = listenersAtOp(Op).size();
      if (Views > 0 && Ls > 0) {
        ListenerPairs += Views;
        ListenerSum += Views * Ls;
      }
    }
  }

  M.AvgReceivers = ReceiverOps ? double(ReceiverSum) / ReceiverOps : 0.0;
  if (HasAddView && ParamOps)
    M.AvgParameters = double(ParamSum) / ParamOps;
  if (HasFindView && ResultOps)
    M.AvgResults = double(ResultSum) / ResultOps;
  if (HasSetListener && ListenerPairs)
    M.AvgListeners = double(ListenerSum) / ListenerPairs;
  return M;
}
