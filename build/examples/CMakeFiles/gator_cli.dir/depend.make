# Empty dependencies file for gator_cli.
# This may be replaced when dependencies are built.
