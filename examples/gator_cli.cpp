//===- gator_cli.cpp - Command-line analysis driver -------------*- C++ -*-===//
//
// A real tool over the library: analyze an application given as files on
// disk. Every `*.alite` file in the input directory is parsed as ALite
// source; every `*.dexlite` file as DexLite bytecode; every `*.xml` file
// is registered as a layout under its base name (so `res/act_console.xml`
// defines `@layout/act_console`).
//
// Usage:
//   gator_cli <dir> [--dot <file>] [--tuples] [--hierarchy] [--atg]
//             [--solution] [--sequences <ActivityClass>] [--reach]
//             [--json <file>] [--lint] [--batch] [-j <n>]
//             [--max-seconds <s>] [--max-work <n>]
//             [--max-nodes <n>] [--max-edges <n>]
//             [--trace-out <file>] [--metrics-out <file>]
//             [--metrics-format json|prom] [--ledger-out <file>]
//             [--explain <substr>] [--diag-format text|json] [--help]
//   gator_cli report <ledger> [--report-format json|text]
//   gator_cli report --diff <old> <new> [--threshold <pct>]
//             [--report-format json|text]
//
// Value flags accept both `--flag value` and `--flag=value`.
//
// Prints Table 2-style precision metrics by default; the flags add the
// Section 6 client outputs. `--batch` treats every immediate subdirectory
// of <dir> as one app and analyzes each in crash isolation; `-j N` runs
// the batch on N worker threads (0 = hardware concurrency; default 1, or
// the GATOR_JOBS environment variable). Output is byte-identical for
// every job count: each app's output is captured and merged in input
// order (docs/PARALLEL.md). The --max-* flags set resource budgets
// (docs/ROBUSTNESS.md); a tripped budget yields a partial solution marked
// truncated, not a failure. In batch mode --max-seconds is a deadline
// shared by the whole batch, while --max-work/--max-nodes/--max-edges
// stay per-app.
//
// Observability (docs/OBSERVABILITY.md): `--trace-out` writes a Chrome
// trace-event JSON of the run's phase spans (Perfetto-loadable);
// `--metrics-out` writes the metrics registry as JSON or, with
// `--metrics-format prom`, Prometheus text; `--ledger-out` appends one
// wide-event record per analyzed app to a JSONL run ledger that the
// `report` subcommand aggregates and diffs; `--explain <substr>` records
// fact provenance during the solve and prints the derivation tree of
// every flow fact at nodes whose label contains <substr> (single-app
// mode only). `--no-times` also suppresses wall-clock instruments from
// the metrics export. In batch mode each task records into its own
// thread-confined sink/registry; the driver merges them in input order,
// so telemetry is deterministic across every -j value (timestamps aside).
//
// Exit codes: 0 = complete run, 1 = degraded run (input diagnostics, or a
// solution whose fidelity is not Complete — unknown-source degradation and
// budget truncation both count; docs/ROBUSTNESS.md), 2 = internal error
// (and usage errors). In batch mode the exit code is the maximum over the
// per-app codes, so "some apps degraded" (1) is distinguishable from "all
// complete" (0) at every -j value.
//
//===----------------------------------------------------------------------===//

#include "analysis/AppStats.h"
#include "analysis/GuiAnalysis.h"
#include "analysis/Incremental.h"
#include "analysis/SolutionCache.h"
#include "android/Manifest.h"
#include "corpus/AppBundle.h"
#include "corpus/FleetReport.h"
#include "dex/DexLite.h"
#include "guimodel/GuiModel.h"
#include "guimodel/JsonExport.h"
#include "guimodel/Lint.h"
#include "layout/Layout.h"
#include "parser/Parser.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "support/WideEvent.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
namespace fs = std::filesystem;

namespace {

bool readFile(const fs::path &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printUsage(std::ostream &OS) {
  OS << "usage: gator_cli <dir> [--dot <file>] [--tuples] "
        "[--hierarchy] [--atg] [--solution] "
        "[--sequences <ActivityClass>] [--reach] [--json <file>] "
        "[--lint] [--batch] [-j <n>] [--solve-jobs <n>] "
        "[--max-seconds <s>] [--max-work <n>] "
        "[--max-nodes <n>] [--max-edges <n>] [--trace-out <file>] "
        "[--metrics-out <file>] [--metrics-format json|prom] "
        "[--ledger-out <file>] "
        "[--explain <substr>] [--diag-format text|json] "
        "[--no-unknown-sources] [--unknown-fanout <n>] "
        "[--cache-dir <dir>] [--incremental-edit <dir2>] [--help]\n"
        "       gator_cli report <ledger> [--report-format json|text]\n"
        "       gator_cli report --diff <old> <new> [--threshold <pct>] "
        "[--report-format json|text]\n"
        "  --batch        analyze every immediate subdirectory of <dir> "
        "as one app\n"
        "  -j, --jobs <n> batch worker threads; 0 = hardware concurrency "
        "(default: 1,\n"
        "                 or $GATOR_JOBS); output is byte-identical for "
        "every value\n"
        "  --solve-jobs <n>\n"
        "                 worker threads inside one solve "
        "(docs/PARALLEL.md); 0 =\n"
        "                 hardware concurrency (default: 1); dumps, "
        "digests, and exit\n"
        "                 codes are byte-identical for every value; "
        "clamped to 1 per\n"
        "                 task when batch -j > 1\n"
        "  --max-seconds  wall-clock budget; in batch mode one deadline "
        "shared by the\n"
        "                 whole batch (per-app caps below stay per-app)\n"
        "  --no-times     omit the wall-clock time line and the "
        "wall-clock metrics\n"
        "                 (for byte-exact comparison; see the determinism "
        "harness)\n"
        "  --trace-out    write Chrome trace-event JSON of the run's "
        "phase spans\n"
        "  --metrics-out  write the metrics registry (JSON, or "
        "Prometheus text with\n"
        "                 --metrics-format prom)\n"
        "  --ledger-out   write a JSONL run ledger: a header line, then "
        "one wide-event\n"
        "                 record per analyzed app in input order "
        "(byte-identical for\n"
        "                 every -j / --solve-jobs value under --no-times); "
        "aggregate or\n"
        "                 diff ledgers with `gator_cli report`\n"
        "  --explain      record provenance and print the derivation "
        "tree of every\n"
        "                 flow fact at nodes whose label contains "
        "<substr>\n"
        "                 (single-app mode only)\n"
        "  --diag-format  print diagnostics as text (default) or one "
        "JSON document\n"
        "  --no-unknown-sources\n"
        "                 drop tagged unknown-source modeling of "
        "reflection, dynamic\n"
        "                 ids, and missing layouts (docs/ROBUSTNESS.md); "
        "such sites\n"
        "                 are then silently unresolved\n"
        "  --unknown-fanout <n>\n"
        "                 cap on views an unknown id may match at "
        "FindView sites\n"
        "                 (0 = uncapped; default 64)\n"
        "  --cache-dir <dir>\n"
        "                 content-addressed solution cache "
        "(docs/INCREMENTAL.md):\n"
        "                 warm hits replay a prior run's output and "
        "metrics without\n"
        "                 re-analyzing; corrupt entries degrade to a "
        "full solve\n"
        "  --incremental-edit <dir2>\n"
        "                 treat <dir2> as an edited copy of <dir>: solve "
        "<dir>, apply\n"
        "                 the edits through the incremental re-solver, "
        "and verify the\n"
        "                 result against a from-scratch solve "
        "(single-app mode only)\n";
}

int usage() {
  printUsage(std::cerr);
  return 2;
}

struct CliConfig {
  std::string DotFile;
  bool WantTuples = false, WantHierarchy = false, WantAtg = false;
  bool WantSolution = false;
  bool WantReach = false;
  std::string SequencesFrom;
  std::string JsonFile;
  bool WantLint = false;
  bool Batch = false;
  /// Suppresses the wall-clock "time:" line — the one output line that
  /// differs between any two runs — and the Seconds-unit instruments of
  /// the metrics export. With it, batch output is literally
  /// byte-identical across runs and across every -j value; the
  /// determinism harness compares with this on.
  bool NoTimes = false;
  std::string TraceFile;   ///< --trace-out: Chrome trace-event JSON
  std::string MetricsFile; ///< --metrics-out
  bool MetricsProm = false; ///< --metrics-format prom
  std::string ExplainQuery; ///< --explain: node-label substring
  bool DiagJson = false;    ///< --diag-format json
  std::string CacheDir; ///< --cache-dir: content-addressed solution cache
  std::string EditDir;  ///< --incremental-edit: edited copy of the app
  std::string LedgerFile; ///< --ledger-out: JSONL run ledger
  /// Where per-app stats are recorded when --metrics-out is given. The
  /// batch driver points each task's copy at a thread-confined registry.
  support::MetricsRegistry *Metrics = nullptr;
  /// When non-null, runOneAppUnguarded fills the cacheable outcome
  /// (stats, precision row, flowset histogram) after a completed
  /// analysis; the cache wrapper adds exit code and captured text.
  analysis::CachedAnalysis *CacheCapture = nullptr;
  /// When non-null (--ledger-out), the run fills this app's wide-event
  /// record: counters from the completed analysis (or replayed from a
  /// cache hit), the cache flag from the cache wrapper; identity and the
  /// exit code are stamped by the driver. Null = ledger off = no cost.
  support::WideEvent *Ledger = nullptr;
  analysis::AnalysisOptions Options;
};

/// Analyzes one application directory end to end. Fail-soft: parse
/// diagnostics do not abort the run — the analysis still executes and its
/// solution carries a fidelity marker. Returns 0 (clean), 1 (input
/// diagnostics), or 2 (internal error).
/// \p Out and \p Err receive what a serial run would write to stdout and
/// stderr. The parallel batch driver passes per-task string buffers and
/// merges them in input order, which is what makes batch output
/// byte-identical for every job count.
int runOneAppUnguarded(const std::string &InputDir, const CliConfig &Cfg,
                       std::ostream &Out, std::ostream &Err) {
  corpus::AppBundle App;
  App.Android.install(App.Program);

  bool Ok = true;
  bool Finalized = false;
  std::optional<android::Manifest> Manifest;
  {
  support::TraceSpan ParseSpan(Cfg.Options.Trace, "parse");

  // Gather inputs in sorted order for deterministic diagnostics.
  std::vector<fs::path> AliteFiles, DexFiles, XmlFiles;
  fs::path ManifestFile;
  std::error_code EC;
  for (const auto &Entry : fs::recursive_directory_iterator(InputDir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".alite")
      AliteFiles.push_back(Entry.path());
    else if (Entry.path().extension() == ".dexlite")
      DexFiles.push_back(Entry.path());
    else if (Entry.path().filename() == "AndroidManifest.xml")
      ManifestFile = Entry.path();
    else if (Entry.path().extension() == ".xml")
      XmlFiles.push_back(Entry.path());
  }
  if (EC) {
    Err << "error: cannot read directory '" << InputDir
              << "': " << EC.message() << "\n";
    return 1;
  }
  std::sort(AliteFiles.begin(), AliteFiles.end());
  std::sort(DexFiles.begin(), DexFiles.end());
  std::sort(XmlFiles.begin(), XmlFiles.end());
  if (AliteFiles.empty() && DexFiles.empty()) {
    Err << "error: no .alite or .dexlite files under '" << InputDir
              << "'\n";
    return 1;
  }

  ParseSpan.arg("files",
                AliteFiles.size() + DexFiles.size() + XmlFiles.size());
  for (const fs::path &Path : AliteFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      Err << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= parser::parseAlite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : DexFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      Err << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= dex::parseDexLite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : XmlFiles) {
    std::string Text;
    if (!readFile(Path, Text)) {
      Err << "error: cannot read " << Path << "\n";
      return 1;
    }
    Ok &= layout::readLayoutXml(*App.Layouts, Path.stem().string(), Text,
                                App.Diags) != nullptr;
  }
  Finalized = App.finalize();
  Ok &= Finalized;

  // Manifest (optional): validates declared activities and provides the
  // default start point for --sequences.
  if (!ManifestFile.empty()) {
    std::string Text;
    if (!readFile(ManifestFile, Text)) {
      Err << "error: cannot read " << ManifestFile << "\n";
      return 1;
    }
    Manifest = android::parseManifest(Text, ManifestFile.string(), App.Diags);
    if (Manifest)
      for (const android::ManifestActivity &A : Manifest->Activities)
        if (!App.Program.findClass(A.ClassName))
          App.Diags.warning("manifest declares unknown activity '" +
                            A.ClassName + "'");
  }
  } // end of the "parse" span

  if (Cfg.DiagJson)
    App.Diags.printJson(Err);
  else
    App.Diags.print(Err);
  // An unresolved program has no coherent hierarchy to analyze; anything
  // short of that proceeds fail-soft, with diagnostics reflected in the
  // exit code and the fidelity marker.
  if (!Finalized)
    return 1;
  bool HadInputErrors = !Ok || App.Diags.hasErrors();

  auto Result = analysis::GuiAnalysis::run(App.Program, *App.Layouts,
                                           App.Android, Cfg.Options,
                                           App.Diags);
  if (!Result) {
    if (Cfg.DiagJson)
      App.Diags.printJson(Err);
    else
      App.Diags.print(Err);
    return 2; // the facade contract is "always a result"
  }

  if (Cfg.Metrics || Cfg.CacheCapture || Cfg.Ledger) {
    analysis::AppStats Stats = analysis::collectAppStats(
        fs::path(InputDir).filename().string(), App.Program, *Result);
    if (Cfg.Metrics)
      analysis::recordAppMetrics(*Cfg.Metrics, Stats, Result->Sol.get());
    if (Cfg.Ledger)
      analysis::fillWideEvent(*Cfg.Ledger, Stats);
    if (Cfg.CacheCapture) {
      Cfg.CacheCapture->Stats = std::move(Stats);
      Cfg.CacheCapture->Precision = Result->metrics();
      analysis::captureFlowsetHistogram(
          *Result->Sol, Cfg.CacheCapture->FlowHistCounts,
          Cfg.CacheCapture->FlowHistSum, Cfg.CacheCapture->FlowHistCount);
    }
  }

  Out << "classes: " << App.Program.appClassCount()
            << "  methods: " << App.Program.appMethodCount()
            << "  layouts: " << App.Resources.layoutCount()
            << "  view ids: " << App.Resources.viewIdCount() << "\n";
  Result->Graph->dumpStats(Out);
  auto M = Result->metrics();
  Out << "precision: receivers=" << M.AvgReceivers;
  if (M.AvgParameters)
    Out << " parameters=" << *M.AvgParameters;
  if (M.AvgResults)
    Out << " results=" << *M.AvgResults;
  if (M.AvgListeners)
    Out << " listeners=" << *M.AvgListeners;
  Out << "\n";
  if (!Cfg.NoTimes)
    Out << "time: build=" << Result->BuildSeconds * 1000
        << "ms solve=" << Result->SolveSeconds * 1000 << "ms\n";
  Out << "fidelity: " << analysis::fidelityName(Result->Sol->fidelity());
  if (Result->Sol->fidelity() == analysis::Fidelity::TruncatedBudget)
    Out << " (budget: "
              << support::budgetReasonName(Result->Sol->truncationReason())
              << ")";
  if (!Result->Sol->unresolvedOps().empty())
    Out << " unresolved-ops=" << Result->Sol->unresolvedOps().size();
  size_t UnknownSources =
      Result->Graph->nodesOfKind(graph::NodeKind::UnknownView).size() +
      Result->Graph->nodesOfKind(graph::NodeKind::UnknownId).size();
  if (UnknownSources)
    Out << " unknown-sources=" << UnknownSources;
  Out << "\n";

  if (!Cfg.ExplainQuery.empty()) {
    Out << "\nexplain '" << Cfg.ExplainQuery << "':\n";
    const analysis::ProvenanceRecorder *Prov = Result->Provenance.get();
    if (!Prov) {
      Out << "(provenance was not recorded for this run)\n";
    } else {
      const graph::ConstraintGraph &G = *Result->Graph;
      constexpr unsigned MaxNodes = 8;
      unsigned Matched = 0;
      for (graph::NodeId N = 0, E = static_cast<graph::NodeId>(G.size());
           N != E; ++N) {
        std::string Label = G.label(N);
        if (Label.find(Cfg.ExplainQuery) == std::string::npos)
          continue;
        const analysis::FlowSet &Vals = Result->Sol->valuesAt(N);
        if (Vals.empty())
          continue;
        ++Matched;
        if (Matched > MaxNodes)
          continue;
        Out << "node " << Label << ":\n";
        for (graph::NodeId V : Vals) {
          analysis::ProvenanceRecorder::FactId F = Prov->flowFact(N, V);
          if (F != analysis::ProvenanceRecorder::NoFact)
            Prov->printDerivation(Out, F, G);
        }
      }
      if (Matched > MaxNodes)
        Out << "(" << Matched - MaxNodes << " more matching nodes elided)\n";
      if (Matched == 0)
        Out << "(no node with flow facts matches '" << Cfg.ExplainQuery
            << "')\n";
    }
  }

  if (Cfg.WantSolution) {
    Out << "\nper-operation solution:\n";
    Result->Sol->dump(Out, Cfg.Options.TrackViewIds,
                      Cfg.Options.TrackHierarchy,
                      Cfg.Options.FindView3ChildOnly,
                      Cfg.Options.UnknownFanoutBudget);
  }
  if (Cfg.WantTuples) {
    Out << "\n(activity, view, event, handler) tuples:\n";
    guimodel::printHandlerTuples(Out, *Result,
                                 guimodel::extractHandlerTuples(*Result));
  }
  if (Cfg.WantHierarchy) {
    Out << "\nview hierarchies:\n";
    guimodel::printViewHierarchies(Out, *Result);
  }
  if (Cfg.WantAtg) {
    Out << "\nactivity transition graph:\n";
    guimodel::printTransitionsDot(
        Out, guimodel::buildActivityTransitionGraph(*Result));
  }
  std::string SequencesFrom = Cfg.SequencesFrom;
  if (Manifest) {
    Out << "manifest: package=" << Manifest->Package;
    if (auto Launcher = Manifest->launcherActivity())
      Out << " launcher=" << *Launcher;
    Out << "\n";
    if (SequencesFrom.empty())
      if (auto Launcher = Manifest->launcherActivity())
        SequencesFrom = *Launcher;
  }

  if (!SequencesFrom.empty()) {
    const ir::ClassDecl *Start = App.Program.findClass(SequencesFrom);
    if (!Start) {
      Err << "error: unknown activity class '" << SequencesFrom
                << "'\n";
      return 1;
    }
    Out << "\nevent sequences from " << SequencesFrom
              << " (length <= 5):\n";
    guimodel::printEventSequences(
        Out, *Result,
        guimodel::enumerateEventSequences(*Result, Start, 5, 64));
  }
  if (Cfg.WantReach) {
    Out << "\nEditText view-reach report:\n";
    guimodel::printViewReach(Out, *Result,
                             guimodel::computeViewReach(*Result));
  }
  if (Cfg.WantLint) {
    Out << "\nlint findings:\n";
    guimodel::printLintFindings(Out,
                                guimodel::runLint(*Result, *App.Layouts));
  }
  if (!Cfg.JsonFile.empty()) {
    std::ofstream Json(Cfg.JsonFile);
    if (!Json) {
      Err << "error: cannot write " << Cfg.JsonFile << "\n";
      return 1;
    }
    guimodel::writeAnalysisJson(Json, *Result);
    Out << "analysis JSON written to " << Cfg.JsonFile << "\n";
  }
  if (!Cfg.DotFile.empty()) {
    std::ofstream Dot(Cfg.DotFile);
    if (!Dot) {
      Err << "error: cannot write " << Cfg.DotFile << "\n";
      return 1;
    }
    Result->Graph->dumpDot(Dot);
    Out << "constraint graph written to " << Cfg.DotFile << "\n";
  }
  // Degraded-but-sound runs exit 1 like input diagnostics do: the contract
  // is "0 means every fact is exact". Unknown-source degradation and budget
  // truncation both leave the solution usable, so nothing above aborted.
  bool Degraded =
      Result->Sol->fidelity() != analysis::Fidelity::Complete;
  return (HadInputErrors || Degraded) ? 1 : 0;
}

/// Crash isolation: a C++ exception escaping one app's analysis is an
/// internal error (exit 2) for that app, not a process abort — in batch
/// mode the remaining apps still run.
int runOneApp(const std::string &InputDir, const CliConfig &Cfg,
              std::ostream &Out, std::ostream &Err) {
  try {
    return runOneAppUnguarded(InputDir, Cfg, Out, Err);
  } catch (const std::exception &E) {
    Err << "internal error analyzing '" << InputDir
        << "': " << E.what() << "\n";
    return 2;
  } catch (...) {
    Err << "internal error analyzing '" << InputDir << "'\n";
    return 2;
  }
}

/// The cache key of one CLI app run: the analysis content key (input
/// files + canonical options) folded with every flag that shapes the
/// captured output text. Two invocations share an entry only when they
/// would print the same bytes.
support::Hash128 cliCacheKey(const std::string &Dir, const CliConfig &Cfg) {
  const support::Hash128 Base = analysis::cacheKeyFor(Dir, Cfg.Options);
  support::ContentHasher H;
  H.field("gator-cli-key", "v1");
  H.u64("base.hi", Base.Hi);
  H.u64("base.lo", Base.Lo);
  H.boolean("tuples", Cfg.WantTuples);
  H.boolean("hierarchy", Cfg.WantHierarchy);
  H.boolean("atg", Cfg.WantAtg);
  H.boolean("solution", Cfg.WantSolution);
  H.boolean("reach", Cfg.WantReach);
  H.boolean("lint", Cfg.WantLint);
  H.boolean("no-times", Cfg.NoTimes);
  H.boolean("diag-json", Cfg.DiagJson);
  H.field("sequences", Cfg.SequencesFrom);
  H.field("explain", Cfg.ExplainQuery);
  return H.digest();
}

/// runOneApp behind the solution cache. A hit replays the captured
/// stdout/stderr text, exit code, and metrics contribution without
/// parsing or solving anything; a miss runs cold, captures, and stores.
/// A corrupt on-disk entry degrades to a cold run with a stderr warning —
/// stdout and the exit code are identical to an uncached run.
int runOneAppCached(const std::string &InputDir, const CliConfig &Cfg,
                    analysis::SolutionCache *Cache, std::ostream &Out,
                    std::ostream &Err) {
  if (!Cache)
    return runOneApp(InputDir, Cfg, Out, Err);
  const support::Hash128 Key = cliCacheKey(InputDir, Cfg);
  analysis::CachedAnalysis Entry;
  const analysis::SolutionCache::Outcome Found = Cache->lookup(Key, Entry);
  if (Found == analysis::SolutionCache::Outcome::Hit) {
    Out << Entry.OutText;
    Err << Entry.ErrText;
    if (Cfg.Metrics)
      analysis::replayAppMetrics(*Cfg.Metrics, Entry);
    if (Cfg.Ledger) {
      // Replay the ledger record from the cached stats — same counters
      // the cold run would have produced, marked as a hit.
      analysis::fillWideEvent(*Cfg.Ledger, Entry.Stats);
      Cfg.Ledger->Cache = "hit";
    }
    return Entry.ExitCode;
  }
  if (Found == analysis::SolutionCache::Outcome::Corrupt)
    Err << "warning: corrupt cache entry for '" << InputDir
        << "' ignored; re-analyzing\n";
  if (Cfg.Ledger)
    Cfg.Ledger->Cache = "miss";

  std::ostringstream CapOut, CapErr;
  analysis::CachedAnalysis Fresh;
  CliConfig RunCfg = Cfg;
  RunCfg.CacheCapture = &Fresh;
  const int Code = runOneApp(InputDir, RunCfg, CapOut, CapErr);
  Fresh.ExitCode = Code;
  Fresh.OutText = CapOut.str();
  Fresh.ErrText = CapErr.str();
  Out << Fresh.OutText;
  Err << Fresh.ErrText;
  // FlowHistCounts is filled (even if all-zero buckets) exactly when the
  // analysis completed; early-exit error paths stay uncached.
  if (!Fresh.FlowHistCounts.empty())
    Cache->store(Key, Fresh);
  return Code;
}

/// Loads one app directory into \p App for the incremental-edit path:
/// the same file census as runOneAppUnguarded, but demanding a clean
/// parse (diagnostics go to stderr; any error fails the load).
bool loadBundle(const std::string &Dir, corpus::AppBundle &App) {
  App.Android.install(App.Program);
  std::vector<fs::path> AliteFiles, DexFiles, XmlFiles;
  std::error_code EC;
  for (const auto &Entry : fs::recursive_directory_iterator(Dir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".alite")
      AliteFiles.push_back(Entry.path());
    else if (Entry.path().extension() == ".dexlite")
      DexFiles.push_back(Entry.path());
    else if (Entry.path().filename() != "AndroidManifest.xml" &&
             Entry.path().extension() == ".xml")
      XmlFiles.push_back(Entry.path());
  }
  if (EC) {
    std::cerr << "error: cannot read directory '" << Dir
              << "': " << EC.message() << "\n";
    return false;
  }
  std::sort(AliteFiles.begin(), AliteFiles.end());
  std::sort(DexFiles.begin(), DexFiles.end());
  std::sort(XmlFiles.begin(), XmlFiles.end());
  if (AliteFiles.empty() && DexFiles.empty()) {
    std::cerr << "error: no .alite or .dexlite files under '" << Dir << "'\n";
    return false;
  }
  bool Ok = true;
  std::string Text;
  for (const fs::path &Path : AliteFiles) {
    if (!readFile(Path, Text))
      return false;
    Ok &= parser::parseAlite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : DexFiles) {
    if (!readFile(Path, Text))
      return false;
    Ok &= dex::parseDexLite(Text, Path.string(), App.Program, App.Diags);
  }
  for (const fs::path &Path : XmlFiles) {
    if (!readFile(Path, Text))
      return false;
    Ok &= layout::readLayoutXml(*App.Layouts, Path.stem().string(), Text,
                                App.Diags) != nullptr;
  }
  Ok &= App.finalize();
  App.Diags.print(std::cerr);
  return Ok && !App.Diags.hasErrors();
}

/// --incremental-edit: solve the base app, apply the edited copy's
/// method/layout differences through the DRed incremental session
/// (docs/INCREMENTAL.md), then differentially verify the result against a
/// from-scratch solve of the edited program. Unsupported edit shapes
/// (class/method/field set changes, include-target layout edits) fall
/// back to a plain full solve of the edited app.
int runIncrementalEdit(const std::string &BaseDir, const std::string &EditDir,
                       const CliConfig &Cfg) {
  corpus::AppBundle Base, Edited;
  if (!loadBundle(BaseDir, Base) || !loadBundle(EditDir, Edited)) {
    std::cerr << "error: --incremental-edit requires cleanly parsing base "
                 "and edited apps\n";
    return 2;
  }
  analysis::EditDiff Diff = analysis::diffBundles(
      Base.Program, Edited.Program, *Base.Layouts, *Edited.Layouts);
  if (!Diff.Unsupported.empty()) {
    for (const std::string &Reason : Diff.Unsupported)
      std::cout << "unsupported edit: " << Reason << "\n";
    std::cout << "fallback: full solve of the edited app\n";
    return runOneApp(EditDir, Cfg, std::cout, std::cerr);
  }
  std::cout << "edit diff: " << Diff.Methods.size() << " method(s), "
            << Diff.Layouts.size() << " layout(s)\n";

  analysis::IncrementalAnalysis Inc(Base.Program, *Base.Layouts, Base.Android,
                                    Cfg.Options, Base.Diags);
  Inc.solveInitial();

  unsigned long IncPropagations = 0;
  size_t Retracted = 0;
  bool Applied = true;
  for (auto &[BaseMethod, EditMethod] : Diff.Methods) {
    if (!analysis::graftMethodBody(*BaseMethod, *EditMethod) ||
        !Inc.reanalyzeMethod(*BaseMethod)) {
      Applied = false;
      break;
    }
    IncPropagations += Inc.lastStats().Propagations;
    Retracted += Inc.lastFactsRetracted();
  }
  if (Applied)
    for (const std::string &Name : Diff.Layouts) {
      const layout::LayoutDef *Def = Edited.Layouts->findByName(Name);
      if (!Def || !Def->root() ||
          !Inc.reanalyzeLayout(Name, Def->root()->clone())) {
        Applied = false;
        break;
      }
      IncPropagations += Inc.lastStats().Propagations;
      Retracted += Inc.lastFactsRetracted();
    }
  if (!Applied) {
    std::cout << "fallback: full solve of the edited app\n";
    return runOneApp(EditDir, Cfg, std::cout, std::cerr);
  }

  // Differential check: a from-scratch solve over the same (now grafted)
  // program and layout objects must reach the same fixed point.
  analysis::AnalysisOptions ScratchOptions = Cfg.Options;
  ScratchOptions.RecordProvenance = false;
  auto Scratch = analysis::GuiAnalysis::run(Base.Program, *Base.Layouts,
                                            Base.Android, ScratchOptions,
                                            Base.Diags);
  if (!Scratch)
    return 2;
  const std::string IncDigest = analysis::solutionDigest(Inc.solution());
  const std::string ScratchDigest = analysis::solutionDigest(*Scratch->Sol);
  const bool Match = IncDigest == ScratchDigest;
  std::cout << "facts retracted: " << Retracted << "\n"
            << "incremental propagations: " << IncPropagations
            << "  scratch propagations: " << Scratch->Stats.Propagations
            << "\n"
            << "incremental matches scratch: " << (Match ? "yes" : "no")
            << "\n";
  if (!Match) {
    // Line-level digest diff, capped — enough to localize a divergence.
    auto Split = [](const std::string &Text) {
      std::vector<std::string> Lines;
      std::istringstream SS(Text);
      for (std::string Line; std::getline(SS, Line);)
        Lines.push_back(Line);
      return Lines;
    };
    const std::vector<std::string> A = Split(IncDigest), B = Split(ScratchDigest);
    unsigned Shown = 0;
    for (const std::string &L : A)
      if (!std::binary_search(B.begin(), B.end(), L) && Shown++ < 16)
        std::cout << "  only-incremental: " << L << "\n";
    for (const std::string &L : B)
      if (!std::binary_search(A.begin(), A.end(), L) && Shown++ < 32)
        std::cout << "  only-scratch: " << L << "\n";
  }
  return Match ? 0 : 1;
}

/// Parses a non-negative number for a --max-* flag; false on garbage.
bool parseCount(const std::string &Text, unsigned long &Out) {
  if (Text.empty() ||
      !std::all_of(Text.begin(), Text.end(), [](unsigned char C) {
        return std::isdigit(C);
      }))
    return false;
  try {
    Out = std::stoul(Text);
  } catch (const std::exception &) {
    return false;
  }
  return true;
}

/// Writes the --trace-out / --metrics-out files (a no-op for whichever
/// was not requested). Returns false on an I/O failure.
bool writeTelemetry(const CliConfig &Cfg, const support::TraceSink &Trace,
                    const support::MetricsRegistry &Metrics) {
  if (!Cfg.TraceFile.empty()) {
    std::ofstream OS(Cfg.TraceFile);
    if (!OS) {
      std::cerr << "error: cannot write " << Cfg.TraceFile << "\n";
      return false;
    }
    Trace.writeJson(OS);
  }
  if (!Cfg.MetricsFile.empty()) {
    std::ofstream OS(Cfg.MetricsFile);
    if (!OS) {
      std::cerr << "error: cannot write " << Cfg.MetricsFile << "\n";
      return false;
    }
    if (Cfg.MetricsProm)
      Metrics.writePrometheus(OS, !Cfg.NoTimes);
    else
      Metrics.writeJson(OS, !Cfg.NoTimes);
  }
  return true;
}

/// Writes the --ledger-out file (a no-op when the flag was not given).
/// The header stamps the canonical options digest and the --no-times
/// flag, so `report --diff` can refuse ledgers measured under different
/// analysis semantics. Returns false on an I/O failure.
bool writeLedgerFile(const CliConfig &Cfg,
                     const std::vector<support::WideEvent> &Events) {
  if (Cfg.LedgerFile.empty())
    return true;
  std::ofstream OS(Cfg.LedgerFile);
  if (!OS) {
    std::cerr << "error: cannot write " << Cfg.LedgerFile << "\n";
    return false;
  }
  support::LedgerHeader H;
  H.OptionsDigest = analysis::hashAnalysisOptions(Cfg.Options).hex();
  H.NoTimes = Cfg.NoTimes;
  support::writeLedger(OS, H, Events);
  return true;
}

/// `gator_cli report`: aggregate one ledger into a corpus health report,
/// or diff two ledgers of the same configuration. Exit codes: 0 = report
/// rendered / diff empty, 1 = diff non-empty, 2 = unreadable input,
/// incomparable ledgers, or a usage error — scriptable as "did this run
/// regress against the baseline?".
int runReportMode(int argc, char **argv) {
  bool Diff = false;
  bool Json = false;
  double ThresholdPct = 0;
  std::vector<std::string> Paths;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Inline;
    bool HasInline = false;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-') {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg.resize(Eq);
        HasInline = true;
      }
    }
    auto NextValue = [&](std::string &Out) {
      if (HasInline) {
        Out = Inline;
        return true;
      }
      if (++I >= argc)
        return false;
      Out = argv[I];
      return true;
    };
    std::string Val;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (Arg == "--diff") {
      Diff = true;
    } else if (Arg == "--report-format") {
      if (!NextValue(Val))
        return usage();
      if (Val == "json") {
        Json = true;
      } else if (Val == "text") {
        Json = false;
      } else {
        std::cerr << "error: unknown report format '" << Val
                  << "' (expected json or text)\n";
        return 2;
      }
    } else if (Arg == "--threshold") {
      if (!NextValue(Val))
        return usage();
      try {
        ThresholdPct = std::stod(Val);
      } catch (const std::exception &) {
        return usage();
      }
      if (ThresholdPct < 0)
        return usage();
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.size() != (Diff ? 2u : 1u))
    return usage();

  std::string Error;
  if (!Diff) {
    support::Ledger L;
    if (!support::readLedgerFile(Paths[0], L, Error)) {
      std::cerr << "error: cannot read ledger '" << Paths[0]
                << "': " << Error << "\n";
      return 2;
    }
    const corpus::FleetReport R = corpus::buildFleetReport(L);
    if (Json)
      corpus::writeFleetReportJson(std::cout, R);
    else
      corpus::writeFleetReportText(std::cout, R);
    return 0;
  }

  support::Ledger OldLedger, NewLedger;
  if (!support::readLedgerFile(Paths[0], OldLedger, Error)) {
    std::cerr << "error: cannot read ledger '" << Paths[0] << "': " << Error
              << "\n";
    return 2;
  }
  if (!support::readLedgerFile(Paths[1], NewLedger, Error)) {
    std::cerr << "error: cannot read ledger '" << Paths[1] << "': " << Error
              << "\n";
    return 2;
  }
  const corpus::LedgerDiff D =
      corpus::diffLedgers(OldLedger, NewLedger, ThresholdPct);
  if (Json)
    corpus::writeLedgerDiffJson(std::cout, D);
  else
    corpus::writeLedgerDiffText(std::cout, D);
  if (!D.Incomparable.empty())
    return 2;
  return D.empty() ? 0 : 1;
}

/// Parses a jobs knob. Accepts 0 (hardware concurrency) through
/// support::MaxReasonableJobs; anything else — negative, non-numeric,
/// absurdly large — is rejected with a diagnostic, never silently
/// clamped.
bool parseJobs(const std::string &Text, const char *Origin, unsigned &Jobs) {
  unsigned long N = 0;
  if (!parseCount(Text, N) || N > support::MaxReasonableJobs) {
    std::cerr << "error: invalid jobs value '" << Text << "' from " << Origin
              << " (expected 0.." << support::MaxReasonableJobs
              << "; 0 = hardware concurrency)\n";
    return false;
  }
  Jobs = static_cast<unsigned>(N);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  if (std::string(argv[1]) == "report")
    return runReportMode(argc, argv);

  std::string InputDir;
  CliConfig Cfg;
  bool JobsFromFlag = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // `--flag=value` is equivalent to `--flag value`.
    std::string Inline;
    bool HasInline = false;
    if (Arg.size() > 2 && Arg[0] == '-' && Arg[1] == '-') {
      size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg.resize(Eq);
        HasInline = true;
      }
    }
    auto NextValue = [&](std::string &Out) {
      if (HasInline) {
        Out = Inline;
        return true;
      }
      if (++I >= argc)
        return false;
      Out = argv[I];
      return true;
    };
    std::string Val;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else if (Arg == "-j" || Arg == "--jobs") {
      if (!NextValue(Val))
        return usage();
      if (!parseJobs(Val, "the -j flag", Cfg.Options.Jobs))
        return 2;
      JobsFromFlag = true;
    } else if (Arg == "--solve-jobs") {
      if (!NextValue(Val))
        return usage();
      if (!parseJobs(Val, "the --solve-jobs flag", Cfg.Options.SolveJobs))
        return 2;
    } else if (Arg == "--dot") {
      if (!NextValue(Cfg.DotFile))
        return usage();
    } else if (Arg == "--tuples") {
      Cfg.WantTuples = true;
    } else if (Arg == "--hierarchy") {
      Cfg.WantHierarchy = true;
    } else if (Arg == "--atg") {
      Cfg.WantAtg = true;
    } else if (Arg == "--solution") {
      Cfg.WantSolution = true;
    } else if (Arg == "--sequences") {
      if (!NextValue(Cfg.SequencesFrom))
        return usage();
    } else if (Arg == "--reach") {
      Cfg.WantReach = true;
    } else if (Arg == "--json") {
      if (!NextValue(Cfg.JsonFile))
        return usage();
    } else if (Arg == "--trace-out") {
      if (!NextValue(Cfg.TraceFile))
        return usage();
    } else if (Arg == "--metrics-out") {
      if (!NextValue(Cfg.MetricsFile))
        return usage();
    } else if (Arg == "--ledger-out") {
      if (!NextValue(Cfg.LedgerFile) || Cfg.LedgerFile.empty())
        return usage();
    } else if (Arg == "--metrics-format") {
      if (!NextValue(Val))
        return usage();
      if (Val == "prom" || Val == "prometheus") {
        Cfg.MetricsProm = true;
      } else if (Val == "json") {
        Cfg.MetricsProm = false;
      } else {
        std::cerr << "error: unknown metrics format '" << Val
                  << "' (expected json or prom)\n";
        return 2;
      }
    } else if (Arg == "--explain") {
      if (!NextValue(Cfg.ExplainQuery) || Cfg.ExplainQuery.empty())
        return usage();
    } else if (Arg == "--diag-format") {
      if (!NextValue(Val))
        return usage();
      if (Val == "json") {
        Cfg.DiagJson = true;
      } else if (Val == "text") {
        Cfg.DiagJson = false;
      } else {
        std::cerr << "error: unknown diagnostics format '" << Val
                  << "' (expected text or json)\n";
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      if (!NextValue(Cfg.CacheDir) || Cfg.CacheDir.empty())
        return usage();
    } else if (Arg == "--incremental-edit") {
      if (!NextValue(Cfg.EditDir) || Cfg.EditDir.empty())
        return usage();
    } else if (Arg == "--lint") {
      Cfg.WantLint = true;
    } else if (Arg == "--no-times") {
      Cfg.NoTimes = true;
    } else if (Arg == "--batch") {
      Cfg.Batch = true;
    } else if (Arg == "--max-seconds") {
      if (!NextValue(Val))
        return usage();
      try {
        Cfg.Options.Budget.MaxWallSeconds = std::stod(Val);
      } catch (const std::exception &) {
        return usage();
      }
      if (Cfg.Options.Budget.MaxWallSeconds < 0)
        return usage();
    } else if (Arg == "--max-work") {
      if (!NextValue(Val) ||
          !parseCount(Val, Cfg.Options.Budget.MaxWorkItems))
        return usage();
    } else if (Arg == "--max-nodes") {
      unsigned long N = 0;
      if (!NextValue(Val) || !parseCount(Val, N))
        return usage();
      Cfg.Options.Budget.MaxGraphNodes = N;
    } else if (Arg == "--no-unknown-sources") {
      Cfg.Options.ModelUnknownSources = false;
    } else if (Arg == "--unknown-fanout") {
      unsigned long N = 0;
      if (!NextValue(Val) || !parseCount(Val, N))
        return usage();
      Cfg.Options.UnknownFanoutBudget = static_cast<unsigned>(N);
    } else if (Arg == "--max-edges") {
      unsigned long N = 0;
      if (!NextValue(Val) || !parseCount(Val, N))
        return usage();
      Cfg.Options.Budget.MaxGraphEdges = N;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      InputDir = Arg;
    }
  }
  if (InputDir.empty())
    return usage();

  if (!JobsFromFlag)
    if (const char *Env = std::getenv("GATOR_JOBS"))
      if (!parseJobs(Env, "the GATOR_JOBS environment variable",
                     Cfg.Options.Jobs))
        return 2;

  if (!Cfg.ExplainQuery.empty()) {
    if (Cfg.Batch) {
      std::cerr << "error: --explain works on a single app and cannot be "
                   "combined with --batch\n";
      return 2;
    }
    Cfg.Options.RecordProvenance = true;
  }

  // Invocation-wide telemetry (docs/OBSERVABILITY.md). In single-app mode
  // the analysis records straight into these; in batch mode each task
  // records into thread-confined instances merged below in input order.
  const bool WantTrace = !Cfg.TraceFile.empty();
  const bool WantMetrics = !Cfg.MetricsFile.empty();
  support::TraceSink Trace;
  support::MetricsRegistry Metrics;

  if (!Cfg.EditDir.empty()) {
    if (Cfg.Batch) {
      std::cerr << "error: --incremental-edit works on a single app and "
                   "cannot be combined with --batch\n";
      return 2;
    }
    if (!Cfg.LedgerFile.empty()) {
      // The edit session analyzes two program states; there is no single
      // per-app record that describes it.
      std::cerr << "error: --ledger-out cannot be combined with "
                   "--incremental-edit\n";
      return 2;
    }
    if (WantTrace)
      Cfg.Options.Trace = &Trace;
    if (WantMetrics)
      Cfg.Metrics = &Metrics;
    int Code = runIncrementalEdit(InputDir, Cfg.EditDir, Cfg);
    if (!writeTelemetry(Cfg, Trace, Metrics))
      return 2;
    return Code;
  }

  // The solution cache (docs/INCREMENTAL.md). Runs whose outcome can
  // depend on timing (wall-clock budgets) or that write per-app artifact
  // files are never cached — the flag is ignored with a note rather than
  // serving a result that could differ from the cold run.
  std::unique_ptr<analysis::SolutionCache> Cache;
  if (!Cfg.CacheDir.empty()) {
    if (!analysis::cacheEligible(Cfg.Options) || !Cfg.JsonFile.empty() ||
        !Cfg.DotFile.empty())
      std::cerr << "note: --cache-dir ignored (wall-clock budget or per-app "
                   "artifact files make runs uncacheable)\n";
    else
      Cache = std::make_unique<analysis::SolutionCache>(Cfg.CacheDir);
  }

  if (!Cfg.Batch) {
    if (WantTrace)
      Cfg.Options.Trace = &Trace;
    if (WantMetrics)
      Cfg.Metrics = &Metrics;
    support::WideEvent Event;
    if (!Cfg.LedgerFile.empty())
      Cfg.Ledger = &Event;
    int Code = runOneAppCached(InputDir, Cfg, Cache.get(), std::cout,
                               std::cerr);
    if (Cache && WantMetrics)
      Cache->recordMetrics(Metrics);
    if (Cfg.Ledger) {
      Event.App = fs::path(InputDir).filename().string();
      Event.ContentKey = analysis::hashAppDir(InputDir).hex();
      Event.ExitCode = Code;
      if (!writeLedgerFile(Cfg, {Event}))
        return 2;
    }
    if (!writeTelemetry(Cfg, Trace, Metrics))
      return 2;
    return Code;
  }

  unsigned Jobs = support::resolveJobs(Cfg.Options.Jobs);
  if (Jobs > 1 && (!Cfg.JsonFile.empty() || !Cfg.DotFile.empty())) {
    // Every app would race on the same output file; there is no sensible
    // merged artifact, so reject rather than corrupt.
    std::cerr << "error: --json/--dot write one fixed file per app and "
                 "cannot be combined with --batch -j > 1\n";
    return 2;
  }

  // Batch mode: every immediate subdirectory is one app; the process exit
  // code is the worst per-app code.
  std::vector<fs::path> AppDirs;
  std::error_code EC;
  for (const auto &Entry : fs::directory_iterator(InputDir, EC))
    if (Entry.is_directory())
      AppDirs.push_back(Entry.path());
  if (EC) {
    std::cerr << "error: cannot read directory '" << InputDir
              << "': " << EC.message() << "\n";
    return 1;
  }
  if (AppDirs.empty()) {
    std::cerr << "error: no app subdirectories under '" << InputDir << "'\n";
    return 1;
  }
  std::sort(AppDirs.begin(), AppDirs.end());

  // One wall-clock deadline for the whole batch, per-app caps per task
  // (docs/ROBUSTNESS.md, "Batch deadline semantics").
  CliConfig TaskCfg = Cfg;
  TaskCfg.Options.Budget.SharedDeadline =
      support::makeSharedDeadline(Cfg.Options.Budget.MaxWallSeconds);
  // App-level parallelism wins: a pool of solves each spinning up its own
  // intra-solve pool would oversubscribe the machine, so batch workers run
  // their solves serially (results are identical either way).
  if (Jobs > 1)
    TaskCfg.Options.SolveJobs = 1;

  // Fan one thread-confined task per app over the pool; each task writes
  // into its own buffers, and the merge below emits them in input order,
  // so stdout and stderr are byte-identical for every -j value.
  struct AppRecord {
    std::string OutText, ErrText;
    int Code = 0;
    std::unique_ptr<support::TraceSink> Trace;
    support::MetricsRegistry Metrics;
    support::WideEvent Event; ///< --ledger-out record (unused otherwise)
  };
  const bool WantLedger = !Cfg.LedgerFile.empty();
  std::vector<AppRecord> Records = support::parallelMap<AppRecord>(
      Cfg.Options.Jobs, AppDirs.size(), [&](size_t I) {
        AppRecord R;
        std::ostringstream Out, Err;
        CliConfig AppCfg = TaskCfg;
        if (WantTrace) {
          R.Trace = std::make_unique<support::TraceSink>();
          AppCfg.Options.Trace = R.Trace.get();
        }
        if (WantMetrics)
          AppCfg.Metrics = &R.Metrics;
        if (WantLedger)
          AppCfg.Ledger = &R.Event;
        {
          support::TraceSpan AppSpan(AppCfg.Options.Trace, "analyze-app");
          AppSpan.arg("index", I);
          R.Code = runOneAppCached(AppDirs[I].string(), AppCfg, Cache.get(),
                                   Out, Err);
        }
        if (WantLedger) {
          R.Event.Index = I;
          R.Event.App = AppDirs[I].filename().string();
          R.Event.ContentKey = analysis::hashAppDir(AppDirs[I].string()).hex();
          R.Event.ExitCode = R.Code;
        }
        R.OutText = Out.str();
        R.ErrText = Err.str();
        return R;
      });

  // Ordered merge: stdout/stderr, trace lanes (tid = 1 + app ordinal),
  // and metrics registries all fold in input order, so every output of a
  // batch run is independent of -j (timestamps aside).
  int Worst = 0;
  for (size_t I = 0; I < Records.size(); ++I) {
    std::cout << "=== app: " << AppDirs[I].filename().string() << " ===\n"
              << Records[I].OutText << "=== exit: " << Records[I].Code
              << " ===\n";
    std::cerr << Records[I].ErrText;
    if (Records[I].Trace)
      Trace.append(std::move(*Records[I].Trace),
                   static_cast<uint32_t>(I + 1));
    if (WantMetrics)
      Metrics.mergeFrom(Records[I].Metrics);
    Worst = std::max(Worst, Records[I].Code);
  }
  if (Cache && WantMetrics)
    Cache->recordMetrics(Metrics);
  if (WantLedger) {
    // Same ordered merge as stdout/metrics: events fold in input order,
    // so the ledger is byte-identical at every -j value.
    std::vector<support::WideEvent> Events;
    Events.reserve(Records.size());
    for (AppRecord &R : Records)
      Events.push_back(std::move(R.Event));
    if (!writeLedgerFile(Cfg, Events))
      Worst = std::max(Worst, 2);
  }
  if (!writeTelemetry(Cfg, Trace, Metrics))
    Worst = std::max(Worst, 2);
  return Worst;
}
