//===- FlowSet.h - Hybrid flowsTo set with a delta span ---------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-node flowsTo set used by the solvers. Two properties drive the
/// design (docs/DELTA_SOLVER.md):
///
///  1. *Hybrid representation.* Most flowsTo sets in real apps stay tiny
///     (a handful of views), so elements live in an insertion-ordered
///     vector and membership is a linear scan. Once a set outgrows
///     `SmallLimit`, a hash index is built beside the vector and takes
///     over membership queries; the vector remains the canonical element
///     storage, so iteration is always cache-friendly and deterministic
///     (insertion order) in both regimes.
///
///  2. *Committed/delta split.* The sets are monotone (the solvers only
///     add), so "the values that arrived since this node was last
///     propagated" is exactly the vector suffix `[deltaBegin(), size())`.
///     Difference propagation reads that suffix and calls `commit()`;
///     nothing is ever copied or removed.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_FLOWSET_H
#define GATOR_ANALYSIS_FLOWSET_H

#include "graph/ConstraintGraph.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

namespace gator {
namespace analysis {

class FlowSet {
public:
  using value_type = graph::NodeId;
  using const_iterator = std::vector<graph::NodeId>::const_iterator;

  /// Largest size served by the linear-scan small representation.
  static constexpr size_t SmallLimit = 16;

  FlowSet() = default;
  FlowSet(FlowSet &&) = default;
  FlowSet &operator=(FlowSet &&) = default;
  // The hash index lives behind a unique_ptr (it exists only for promoted
  // sets, keeping sizeof(FlowSet) small for the per-node table), so copies
  // must clone it explicitly.
  FlowSet(const FlowSet &Other)
      : Elements(Other.Elements), DeltaStart(Other.DeltaStart) {
    if (Other.Index)
      Index = std::make_unique<std::unordered_set<graph::NodeId>>(*Other.Index);
  }
  FlowSet &operator=(const FlowSet &Other) {
    if (this != &Other) {
      Elements = Other.Elements;
      DeltaStart = Other.DeltaStart;
      Index.reset();
      if (Other.Index)
        Index =
            std::make_unique<std::unordered_set<graph::NodeId>>(*Other.Index);
    }
    return *this;
  }

  /// Adds \p V; returns true when the set grew.
  bool insert(graph::NodeId V) {
    if (Index) {
      if (!Index->insert(V).second)
        return false;
      Elements.push_back(V);
      return true;
    }
    if (std::find(Elements.begin(), Elements.end(), V) != Elements.end())
      return false;
    Elements.push_back(V);
    if (Elements.size() > SmallLimit) {
      Index = std::make_unique<std::unordered_set<graph::NodeId>>(
          Elements.begin(), Elements.end());
    }
    return true;
  }

  bool contains(graph::NodeId V) const {
    if (Index)
      return Index->count(V) != 0;
    return std::find(Elements.begin(), Elements.end(), V) != Elements.end();
  }

  /// std::unordered_set-compatible membership query (0 or 1).
  size_t count(graph::NodeId V) const { return contains(V) ? 1 : 0; }

  size_t size() const { return Elements.size(); }
  bool empty() const { return Elements.empty(); }

  /// Iteration covers all elements in insertion order.
  const_iterator begin() const { return Elements.begin(); }
  const_iterator end() const { return Elements.end(); }
  const std::vector<graph::NodeId> &values() const { return Elements; }

  //===--------------------------------------------------------------------===//
  // Delta protocol (difference propagation)
  //===--------------------------------------------------------------------===//

  /// First index of the uncommitted suffix: elements in
  /// [deltaBegin(), size()) arrived since the last commit().
  size_t deltaBegin() const { return DeltaStart; }

  /// True when uncommitted elements exist.
  bool hasDelta() const { return DeltaStart < Elements.size(); }

  /// Marks elements below \p UpTo as committed (already pushed to all
  /// current flow successors).
  void commit(size_t UpTo) { DeltaStart = static_cast<uint32_t>(UpTo); }

  /// True once the set left the small linear-scan representation.
  bool promoted() const { return Index != nullptr; }

private:
  /// All elements in insertion order (monotone: never shrinks).
  std::vector<graph::NodeId> Elements;
  /// Membership index, allocated lazily once the set outgrows SmallLimit.
  /// Behind a pointer so unpromoted sets (the common case) stay at 40
  /// bytes: the per-node table is value-initialized on every solve.
  std::unique_ptr<std::unordered_set<graph::NodeId>> Index;
  /// Start of the uncommitted suffix of Elements.
  uint32_t DeltaStart = 0;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_FLOWSET_H
