# Telemetry export validation (docs/OBSERVABILITY.md): --trace-out must
# produce a Chrome trace-event document whose every event carries the
# name/ph/ts/pid/tid fields (the Perfetto-loadability contract), and
# --metrics-out must produce valid JSON with the expected gator_*
# instruments. Invoked by ctest with -DCLI=<gator_cli> -DAPP=<app dir>
# -DWORK=<scratch dir>. Validation needs python3; when absent, only the
# exit codes are checked.

file(MAKE_DIRECTORY "${WORK}")

execute_process(
  COMMAND ${CLI} ${APP}
          --trace-out=${WORK}/trace.json
          --metrics-out=${WORK}/metrics.json
  RESULT_VARIABLE run_code
  OUTPUT_QUIET)
if(NOT run_code EQUAL 0)
  message(FATAL_ERROR "gator_cli failed: ${run_code}")
endif()

find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(STATUS "python3 not found; skipping JSON validation")
  return()
endif()

file(WRITE "${WORK}/validate_trace.py" "
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc['traceEvents']
assert events, 'trace has no events'
for e in events:
    for field in ('name', 'ph', 'ts', 'pid', 'tid'):
        assert field in e, 'event missing %s: %r' % (field, e)
    assert e['ph'] in ('X', 'C', 'i'), 'unexpected phase %r' % e['ph']
    if e['ph'] == 'X':
        assert 'dur' in e, 'complete span missing dur: %r' % e
names = {e['name'] for e in events}
for span in ('parse', 'graph-build', 'solve', 'solver.fixpoint'):
    assert span in names, 'missing phase span %r (have %s)' % (span, names)
print('trace OK: %d events' % len(events))
")
execute_process(
  COMMAND ${PYTHON3} ${WORK}/validate_trace.py ${WORK}/trace.json
  RESULT_VARIABLE trace_ok)
if(NOT trace_ok EQUAL 0)
  message(FATAL_ERROR "trace validation failed")
endif()

file(WRITE "${WORK}/validate_metrics.py" "
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = doc['metrics']
assert metrics, 'metrics document is empty'
names = {m['name'] for m in metrics}
for expected in ('gator_apps_total', 'gator_graph_nodes_total',
                 'gator_solver_propagations_total', 'gator_flowset_size'):
    assert expected in names, 'missing instrument %r' % expected
hist = next(m for m in metrics if m['name'] == 'gator_flowset_size')
assert hist['type'] == 'histogram' and hist['buckets']
print('metrics OK: %d instruments' % len(metrics))
")
execute_process(
  COMMAND ${PYTHON3} ${WORK}/validate_metrics.py ${WORK}/metrics.json
  RESULT_VARIABLE metrics_ok)
if(NOT metrics_ok EQUAL 0)
  message(FATAL_ERROR "metrics validation failed")
endif()
