//===- solver_delta_test.cpp - Delta vs. naive propagation ------*- C++ -*-===//
//
// The difference-propagation solver core (docs/DELTA_SOLVER.md) must be a
// pure performance transformation: with AnalysisOptions::DeltaPropagation
// off, the solver falls back to the naive reference mode (full-set
// re-propagation, eager op re-enqueue), and both modes must compute the
// identical least fixed point on every app and under every option combo.
// Also covers the FlowSet representation (small/promoted regimes, delta
// spans, deep copies) and solver re-solve hygiene.
//
//===----------------------------------------------------------------------===//

#include "analysis/FlowSet.h"
#include "analysis/SolutionChecker.h"
#include "analysis/Solver.h"
#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"

#include "DifferentialHelpers.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::test;

namespace {

AnalysisOptions naive(AnalysisOptions Options = {}) {
  Options.DeltaPropagation = false;
  return Options;
}

//===----------------------------------------------------------------------===//
// Corpus differential: delta == naive on every paper-corpus app
//===----------------------------------------------------------------------===//

class DeltaCorpusDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(DeltaCorpusDifferential, DeltaMatchesNaive) {
  const AppSpec &Spec = paperCorpus()[GetParam()];

  GeneratedApp App1 = generateApp(Spec);
  auto Delta = runAnalysis(*App1.Bundle);

  GeneratedApp App2 = generateApp(Spec);
  auto Naive = runAnalysis(*App2.Bundle, naive());

  expectSameSolution(*Delta, *Naive, Spec.Name);

  // Both reach a closed fixed point.
  EXPECT_TRUE(checkSolutionClosure(*Delta).empty()) << Spec.Name;
  EXPECT_TRUE(checkSolutionClosure(*Naive).empty()) << Spec.Name;

  // Counter sanity: commits only exist in delta mode. (ValuesPushed is
  // NOT compared: batched structure rounds can attempt a few redundant
  // inserts the eager mode avoids, and vice versa — only the resulting
  // sets are the invariant.)
  EXPECT_GT(Delta->Stats.DeltaCommits, 0u) << Spec.Name;
  EXPECT_EQ(Naive->Stats.DeltaCommits, 0u) << Spec.Name;
  EXPECT_GT(Delta->Stats.ValuesPushed, 0u) << Spec.Name;
  EXPECT_GT(Naive->Stats.ValuesPushed, 0u) << Spec.Name;
  EXPECT_FALSE(Delta->Stats.HitWorkLimit) << Spec.Name;
  EXPECT_FALSE(Naive->Stats.HitWorkLimit) << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, DeltaCorpusDifferential,
                         ::testing::Range<size_t>(0, 20),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paperCorpus()[Info.param].Name;
                         });

//===----------------------------------------------------------------------===//
// Options matrix: the equivalence holds under every option combination
//===----------------------------------------------------------------------===//

/// One bit per option; 5 options = 32 combinations (DeltaPropagation
/// itself is the variable under test, so it is not part of the index).
AnalysisOptions optionsFromIndex(unsigned Index) {
  AnalysisOptions Options;
  Options.TrackViewIds = (Index & 1) != 0;
  Options.TrackHierarchy = (Index & 2) != 0;
  Options.FindView3ChildOnly = (Index & 4) != 0;
  Options.ModelListenerCallbacks = (Index & 8) != 0;
  Options.DeclaredTypeFilter = (Index & 16) != 0;
  return Options;
}

class DeltaOptionsMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeltaOptionsMatrix, DeltaMatchesNaiveOnConnectBot) {
  AnalysisOptions Options = optionsFromIndex(GetParam());

  auto App1 = buildConnectBotExample();
  ASSERT_TRUE(App1 && !App1->Diags.hasErrors());
  auto Delta = runAnalysis(*App1, Options);

  auto App2 = buildConnectBotExample();
  auto Naive = runAnalysis(*App2, naive(Options));

  expectSameSolution(*Delta, *Naive,
                     "combo " + std::to_string(GetParam()));
}

TEST_P(DeltaOptionsMatrix, DeltaMatchesNaiveOnExtensionOps) {
  // Fragments + adapters + xml onClick: the structure-sensitive ops whose
  // firing discipline differs most between the two modes.
  const char *Source = R"(
class RowAdapter extends android.widget.BaseAdapter {
  method getView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.view.View;
    var lid: int;
    lid := @layout/row;
    v := inflater.inflate(lid);
    return v;
  }
}
class HeaderFragment extends android.app.Fragment {
  method onCreateView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.widget.Button;
    v := new android.widget.Button;
    return v;
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var lvid: int;
    var lv: android.widget.ListView;
    var ad: RowAdapter;
    var fm: android.app.FragmentManager;
    var tx: android.app.FragmentTransaction;
    var fg: HeaderFragment;
    var cid: int;
    lid := @layout/main;
    this.setContentView(lid);
    lvid := @id/list;
    lv := this.findViewById(lvid);
    ad := new RowAdapter;
    lv.setAdapter(ad);
    fm := this.getFragmentManager();
    tx := fm.beginTransaction();
    fg := new HeaderFragment;
    cid := @id/root;
    tx.add(cid, fg);
  }
  method onTap(v: android.view.View) { }
}
)";
  const std::vector<std::pair<std::string, std::string>> Layouts = {
      {"main", R"(
<LinearLayout android:id="@+id/root">
  <TextView android:onClick="onTap" />
  <ListView android:id="@+id/list" />
</LinearLayout>
)"},
      {"row", "<TextView android:id=\"@+id/row_text\"/>"}};

  AnalysisOptions Options = optionsFromIndex(GetParam());

  auto App1 = makeBundle(Source, Layouts);
  auto Delta = runAnalysis(*App1, Options);

  auto App2 = makeBundle(Source, Layouts);
  auto Naive = runAnalysis(*App2, naive(Options));

  expectSameSolution(*Delta, *Naive,
                     "ext combo " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllCombos, DeltaOptionsMatrix,
                         ::testing::Range(0u, 32u));

//===----------------------------------------------------------------------===//
// Re-solve hygiene: registerOpUses starts from a clean slate
//===----------------------------------------------------------------------===//

TEST(SolverReuse, SecondSolveIsStable) {
  // Calling solve() twice on the same Solver must leave the saturated
  // solution untouched: registerOpUses and the per-node tables may not
  // accumulate stale state across solves. (A *fresh* Solver on an
  // already-solved graph is a different contract: its InflatedAt memo is
  // empty, so it re-mints ViewInfl trees per inflation site by design.)
  auto App = buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  auto R = runAnalysis(*App);
  ASSERT_TRUE(R);

  AnalysisOptions Options;
  Solver Again(*R->Graph, *R->Sol, *App->Layouts, App->Android, Options,
               App->Diags);
  SolverStats Stats1 = Again.solve();
  EXPECT_FALSE(Stats1.HitWorkLimit);

  auto Fingerprint1 = fingerprint(*R);
  EdgeCounts Counts1 = edgeCounts(*R);

  SolverStats Stats2 = Again.solve();
  EXPECT_FALSE(Stats2.HitWorkLimit);

  EdgeCounts Counts2 = edgeCounts(*R);
  EXPECT_EQ(Counts1.Nodes, Counts2.Nodes);
  EXPECT_EQ(Counts1.Flow, Counts2.Flow);
  EXPECT_EQ(Counts1.ParentChild, Counts2.ParentChild);
  EXPECT_EQ(Counts1.ViewInfl, Counts2.ViewInfl);
  EXPECT_EQ(Fingerprint1, fingerprint(*R));
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

//===----------------------------------------------------------------------===//
// FlowSet representation
//===----------------------------------------------------------------------===//

TEST(FlowSetTest, SmallRegimeDedupAndOrder) {
  support::Arena A;
  FlowSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(A, 7));
  EXPECT_TRUE(S.insert(A, 3));
  EXPECT_FALSE(S.insert(A, 7)); // duplicate
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
  EXPECT_FALSE(S.promoted());
  // Insertion order is preserved.
  std::vector<NodeId> Got(S.begin(), S.end());
  EXPECT_EQ(Got, (std::vector<NodeId>{7, 3}));
}

TEST(FlowSetTest, PromotionAtSmallLimit) {
  support::Arena A;
  FlowSet S;
  for (NodeId V = 0; V < FlowSet::SmallLimit; ++V)
    EXPECT_TRUE(S.insert(A, V));
  EXPECT_FALSE(S.promoted()) << "promotion only past SmallLimit";
  EXPECT_TRUE(S.insert(A, FlowSet::SmallLimit));
  EXPECT_TRUE(S.promoted());
  EXPECT_EQ(S.size(), FlowSet::SmallLimit + 1);
  // Dedup and order still hold in the promoted regime.
  EXPECT_FALSE(S.insert(A, 0));
  EXPECT_TRUE(S.insert(A, 1000));
  EXPECT_TRUE(S.contains(1000));
  std::vector<NodeId> Got(S.begin(), S.end());
  ASSERT_EQ(Got.size(), FlowSet::SmallLimit + 2);
  EXPECT_EQ(Got.front(), 0u);
  EXPECT_EQ(Got.back(), 1000u);
}

TEST(FlowSetTest, DeltaSpanLifecycle) {
  support::Arena A;
  FlowSet S;
  EXPECT_FALSE(S.hasDelta());
  S.insert(A, 1);
  S.insert(A, 2);
  EXPECT_TRUE(S.hasDelta());
  EXPECT_EQ(S.deltaBegin(), 0u);

  S.commit(S.size());
  EXPECT_FALSE(S.hasDelta());
  EXPECT_EQ(S.deltaBegin(), 2u);

  S.insert(A, 3);
  EXPECT_TRUE(S.hasDelta());
  // The uncommitted suffix is exactly the values since the last commit.
  std::vector<NodeId> DeltaVals(S.begin() + S.deltaBegin(), S.end());
  EXPECT_EQ(DeltaVals, (std::vector<NodeId>{3}));
  S.commit(S.size());
  EXPECT_FALSE(S.hasDelta());
}

TEST(FlowSetTest, CloneIsDeepInBothRegimes) {
  support::Arena A;
  FlowSet Small;
  Small.insert(A, 1);
  Small.insert(A, 2);
  FlowSet SmallCopy = Small.clone(A);
  Small.insert(A, 3);
  EXPECT_EQ(SmallCopy.size(), 2u);
  EXPECT_FALSE(SmallCopy.contains(3));

  FlowSet Big;
  for (NodeId V = 0; V <= FlowSet::SmallLimit; ++V)
    Big.insert(A, V);
  ASSERT_TRUE(Big.promoted());
  FlowSet BigCopy = Big.clone(A);
  EXPECT_TRUE(BigCopy.promoted());
  Big.insert(A, 500);
  EXPECT_FALSE(BigCopy.contains(500));
  EXPECT_FALSE(BigCopy.insert(A, 3)) << "cloned index must dedup";
  EXPECT_TRUE(BigCopy.insert(A, 501));
  EXPECT_TRUE(BigCopy.contains(501));

  Big = SmallCopy.clone(A); // move-assign a clone over a promoted set
  EXPECT_FALSE(Big.promoted());
  EXPECT_EQ(Big.size(), 2u);
}

} // namespace
