//===- fault_injection_test.cpp - Fail-soft robustness harness --*- C++ -*-===//
//
// Deterministic fault-injection sweep over the analysis pipeline
// (docs/ROBUSTNESS.md). Every test enforces the same contract: no input
// and no budget may crash the pipeline; the result is always an
// internally consistent Solution whose fidelity marker says how much to
// trust it.
//
//  - degenerate layouts (empty <merge/>) degrade, identically in both
//    solver engines;
//  - work/node/edge budgets and cooperative cancellation truncate, in
//    both DeltaPropagation modes, and SolutionChecker accepts the
//    partial solution;
//  - a forced budget trip swept over cut points 0..N exercises arbitrary
//    partial-solution states;
//  - seeded (SplitMix64) truncation and bit-flip corruption of the
//    sample_full_app inputs (ALite, DexLite, layout XML, manifest) must
//    surface as diagnostics, never as crashes.
//
//===----------------------------------------------------------------------===//

#include "analysis/PhasedSolver.h"
#include "analysis/SolutionCache.h"
#include "analysis/SolutionChecker.h"
#include "android/Manifest.h"
#include "corpus/Corpus.h"
#include "dex/DexLite.h"
#include "support/FaultInjection.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::support;
using namespace gator::test;

namespace {

/// An activity that inflates an empty <merge/> layout: the degenerate
/// input of the Solver "layout with no root" regression.
const char *EmptyMergeSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/empty;
    this.setContentView(lid);
  }
}
)";

const std::vector<std::pair<std::string, std::string>> EmptyMergeLayouts = {
    {"empty", "<merge/>"}};

void expectEmptyMergeDegradation(corpus::AppBundle &App,
                                 const AnalysisResult &R) {
  EXPECT_EQ(R.Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_EQ(R.Sol->unresolvedOps().size(), 1u);
  EXPECT_GE(App.Diags.warningCount(), 1u);
  bool SawWarning = false;
  for (const Diagnostic &D : App.Diags.diagnostics())
    SawWarning |= D.Message.find("empty <merge/>") != std::string::npos;
  EXPECT_TRUE(SawWarning) << "expected an empty-merge diagnostic";
  // The skipped site minted nothing: no inflated views anywhere.
  for (NodeId Id = 0; Id < R.Graph->size(); ++Id)
    EXPECT_NE(R.Graph->node(Id).Kind, NodeKind::ViewInfl);
  EXPECT_TRUE(checkSolutionClosure(R).empty());
}

TEST(EmptyMergeTest, FusedEngineSkipsSiteWithDiagnostic) {
  auto App = makeBundle(EmptyMergeSource, EmptyMergeLayouts);
  auto R = runAnalysis(*App);
  ASSERT_TRUE(R);
  expectEmptyMergeDegradation(*App, *R);
}

TEST(EmptyMergeTest, PhasedEngineSkipsSiteWithDiagnostic) {
  auto App = makeBundle(EmptyMergeSource, EmptyMergeLayouts);
  auto R = runPhasedAnalysis(App->Program, *App->Layouts, App->Android,
                             AnalysisOptions(), App->Diags);
  ASSERT_TRUE(R);
  expectEmptyMergeDegradation(*App, *R);
}

TEST(EmptyMergeTest, HealthyLayoutsStillResolveAlongside) {
  // A degenerate layout must not poison sibling sites: the good layout
  // inflates normally while the empty merge is skipped.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var good: int;
    var bad: int;
    good := @layout/main;
    this.setContentView(good);
    bad := @layout/empty;
    this.setContentView(bad);
  }
}
)",
                        {{"main", "<LinearLayout/>"}, {"empty", "<merge/>"}});
  auto R = runAnalysis(*App);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_EQ(R->Sol->unresolvedOps().size(), 1u);
  unsigned InflViews = 0;
  for (NodeId Id = 0; Id < R->Graph->size(); ++Id)
    InflViews += R->Graph->node(Id).Kind == NodeKind::ViewInfl;
  EXPECT_EQ(InflViews, 1u);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

//===----------------------------------------------------------------------===//
// Budget trips
//===----------------------------------------------------------------------===//

AnalysisOptions withMode(bool Delta, AnalysisOptions Options = {}) {
  Options.DeltaPropagation = Delta;
  return Options;
}

class BudgetTrip : public ::testing::TestWithParam<bool> {
protected:
  bool delta() const { return GetParam(); }
};

TEST_P(BudgetTrip, WorkBudgetMarksTruncated) {
  GeneratedApp App = generateApp(paperCorpus()[0]);
  AnalysisOptions Options = withMode(delta());
  Options.Budget.MaxWorkItems = 8;
  auto R = runAnalysis(*App.Bundle, Options);
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->Stats.HitWorkLimit);
  EXPECT_EQ(R->Stats.BudgetTripped, BudgetReason::WorkItems);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
  EXPECT_EQ(R->Sol->truncationReason(), BudgetReason::WorkItems);
  EXPECT_LE(R->Stats.WorkCharged, 8ul);
  EXPECT_FALSE(R->Sol->unresolvedOps().empty());
  EXPECT_TRUE(checkSolutionClosure(*R).empty())
      << "checker must accept the truncated solution";
}

TEST_P(BudgetTrip, NodeCapMarksTruncated) {
  GeneratedApp App = generateApp(paperCorpus()[0]);
  AnalysisOptions Options = withMode(delta());
  Options.Budget.MaxGraphNodes = 4; // far below any built graph
  auto R = runAnalysis(*App.Bundle, Options);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
  EXPECT_EQ(R->Sol->truncationReason(), BudgetReason::GraphNodes);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST_P(BudgetTrip, EdgeCapMarksTruncated) {
  GeneratedApp App = generateApp(paperCorpus()[0]);
  AnalysisOptions Options = withMode(delta());
  Options.Budget.MaxGraphEdges = 1;
  auto R = runAnalysis(*App.Bundle, Options);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
  EXPECT_EQ(R->Sol->truncationReason(), BudgetReason::GraphEdges);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST_P(BudgetTrip, CancellationMarksTruncated) {
  GeneratedApp App = generateApp(paperCorpus()[0]);
  std::atomic<bool> Cancel{true};
  AnalysisOptions Options = withMode(delta());
  Options.Budget.CancelFlag = &Cancel;
  auto R = runAnalysis(*App.Bundle, Options);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
  EXPECT_EQ(R->Sol->truncationReason(), BudgetReason::Cancelled);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST_P(BudgetTrip, GenerousBudgetStaysComplete) {
  GeneratedApp App = generateApp(paperCorpus()[0]);
  AnalysisOptions Options = withMode(delta());
  Options.Budget.MaxWorkItems = 50'000'000;
  auto R = runAnalysis(*App.Bundle, Options);
  ASSERT_TRUE(R);
  EXPECT_FALSE(R->Stats.HitWorkLimit);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::Complete);
  EXPECT_TRUE(R->Sol->unresolvedOps().empty());
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, BudgetTrip, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "Delta" : "Naive";
                         });

//===----------------------------------------------------------------------===//
// Forced budget trips: cut the solver at every early step
//===----------------------------------------------------------------------===//

TEST(ForcedTripSweep, EveryCutPointYieldsConsistentSolution) {
  for (bool Delta : {true, false}) {
    for (unsigned long Step = 0; Step <= 64; Step += Delta ? 1 : 4) {
      ScopedForcedBudgetTrip Trip(Step);
      GeneratedApp App = generateApp(paperCorpus()[0]);
      auto R = runAnalysis(*App.Bundle, withMode(Delta));
      ASSERT_TRUE(R);
      EXPECT_LE(R->Stats.WorkCharged, Step);
      EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget)
          << "mode=" << (Delta ? "delta" : "naive") << " step=" << Step;
      EXPECT_TRUE(checkSolutionClosure(*R).empty())
          << "mode=" << (Delta ? "delta" : "naive") << " step=" << Step;
    }
  }
}

TEST(ForcedTripSweep, DisarmRestoresCompleteRuns) {
  armForcedBudgetTrip(0);
  disarmForcedBudgetTrip();
  EXPECT_FALSE(forcedBudgetTripStep().has_value());
  GeneratedApp App = generateApp(paperCorpus()[0]);
  auto R = runAnalysis(*App.Bundle);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::Complete);
}

//===----------------------------------------------------------------------===//
// Corpus budget sweep: both engines' fused modes over every paper app
//===----------------------------------------------------------------------===//

class CorpusBudgetSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusBudgetSweep, TruncatedSolutionsStayConsistent) {
  const AppSpec &Spec = paperCorpus()[GetParam()];
  for (bool Delta : {true, false}) {
    for (unsigned long Work : {1ul, 16ul, 256ul}) {
      GeneratedApp App = generateApp(Spec);
      AnalysisOptions Options = withMode(Delta);
      Options.Budget.MaxWorkItems = Work;
      auto R = runAnalysis(*App.Bundle, Options);
      ASSERT_TRUE(R);
      if (R->Stats.HitWorkLimit)
        EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
      else
        EXPECT_EQ(R->Sol->fidelity(), Fidelity::Complete);
      EXPECT_TRUE(checkSolutionClosure(*R).empty())
          << Spec.Name << " mode=" << (Delta ? "delta" : "naive")
          << " work=" << Work;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperCorpus, CorpusBudgetSweep, ::testing::Range<size_t>(0, 20),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return paperCorpus()[Info.param].Name;
    });

//===----------------------------------------------------------------------===//
// Hostile-fleet sweep: corpus hostile-shape knobs through the fidelity /
// exit-code contract (docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//

TEST(HostileFleetSweep, HostileShapesDegradePredictably) {
  // A small fleet with every hostile rate engaged. The contract swept
  // here is exactly what gator_cli maps to exit codes: an app that drew
  // a hostile shape analyzes as DegradedInput (exit 1), a clean app as
  // Complete (exit 0), and nothing crashes or fails the checker.
  FleetSpec Fleet;
  Fleet.Apps = 40;
  Fleet.ReflectivePercent = 35;
  Fleet.DynamicIdPercent = 35;
  Fleet.MissingLayoutPercent = 35;
  std::vector<AppSpec> Specs = makeFleet(Fleet);

  unsigned Degraded = 0, Complete = 0;
  for (bool Delta : {true, false}) {
    for (const AppSpec &Spec : Specs) {
      bool Hostile = Spec.ReflectiveViewsPerActivity ||
                     Spec.DynamicFindsPerActivity ||
                     Spec.MissingLayoutRefsPerActivity;
      GeneratedApp App = generateApp(Spec);
      auto R = runAnalysis(*App.Bundle, withMode(Delta));
      ASSERT_TRUE(R) << Spec.Name;
      EXPECT_EQ(R->Sol->fidelity(),
                Hostile ? Fidelity::DegradedInput : Fidelity::Complete)
          << Spec.Name << " mode=" << (Delta ? "delta" : "naive");
      EXPECT_TRUE(checkSolutionClosure(*R).empty())
          << Spec.Name << " mode=" << (Delta ? "delta" : "naive");
      ++(Hostile ? Degraded : Complete);
    }
  }
  // The sweep only means something if both buckets are populated.
  EXPECT_GT(Degraded, 0u);
  EXPECT_GT(Complete, 0u);
}

TEST(HostileFleetSweep, HostileShapesComposeWithBudgets) {
  // Hostile shapes and budget trips interact: a degraded app that also
  // trips a budget reports TruncatedBudget (markDegraded never downgrades
  // it), and the checker accepts every combination.
  FleetSpec Fleet;
  Fleet.Apps = 8;
  Fleet.ReflectivePercent = 100;
  Fleet.DynamicIdPercent = 100;
  Fleet.MissingLayoutPercent = 100;
  for (const AppSpec &Spec : makeFleet(Fleet)) {
    for (unsigned long Work : {4ul, 64ul}) {
      GeneratedApp App = generateApp(Spec);
      AnalysisOptions Options;
      Options.Budget.MaxWorkItems = Work;
      auto R = runAnalysis(*App.Bundle, Options);
      ASSERT_TRUE(R) << Spec.Name;
      EXPECT_EQ(R->Sol->fidelity(), R->Stats.HitWorkLimit
                                        ? Fidelity::TruncatedBudget
                                        : Fidelity::DegradedInput)
          << Spec.Name << " work=" << Work;
      EXPECT_TRUE(checkSolutionClosure(*R).empty())
          << Spec.Name << " work=" << Work;
    }
  }
}

//===----------------------------------------------------------------------===//
// Seeded input-mutation sweep over examples/sample_full_app
//===----------------------------------------------------------------------===//

std::string readFileOrFail(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::string sampleAppPath(const std::string &File) {
  return std::string(GATOR_SOURCE_DIR) + "/examples/sample_full_app/" + File;
}

enum class InputKind { Alite, DexLite, LayoutXml, ManifestXml };

struct SampleInput {
  const char *File;
  InputKind Kind;
};

const SampleInput SampleInputs[] = {
    {"app.alite", InputKind::Alite},
    {"rows.dexlite", InputKind::DexLite},
    {"home.xml", InputKind::LayoutXml},
    {"results.xml", InputKind::LayoutXml},
    {"row.xml", InputKind::LayoutXml},
    {"AndroidManifest.xml", InputKind::ManifestXml},
};

/// Feeds one (possibly mutated) input through the full pipeline: parse,
/// finalize, analyze. The contract under test is crash-freedom plus
/// consistency, not acceptance — a mutation may happen to stay legal.
void runPipelineOnMutatedInput(const SampleInput &Input,
                               const std::string &Text, uint64_t Seed) {
  SCOPED_TRACE(std::string(Input.File) + " seed=" + std::to_string(Seed));
  corpus::AppBundle App;
  App.Android.install(App.Program);
  bool Ok = true;
  switch (Input.Kind) {
  case InputKind::Alite:
    Ok = parser::parseAlite(Text, Input.File, App.Program, App.Diags);
    break;
  case InputKind::DexLite:
    Ok = dex::parseDexLite(Text, Input.File, App.Program, App.Diags);
    break;
  case InputKind::LayoutXml:
    Ok = layout::readLayoutXml(*App.Layouts, "mutated", Text, App.Diags) !=
         nullptr;
    break;
  case InputKind::ManifestXml:
    Ok = android::parseManifest(Text, Input.File, App.Diags).has_value();
    break;
  }
  if (!Ok || App.Diags.hasErrors()) {
    // Rejected input must say why.
    EXPECT_TRUE(App.Diags.hasErrors());
    return;
  }
  if (!App.finalize())
    return; // degraded but diagnosed; not analyzable
  auto R = GuiAnalysis::run(App.Program, *App.Layouts, App.Android,
                            AnalysisOptions(), App.Diags);
  ASSERT_TRUE(R) << "pipeline must be fail-soft";
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST(MutationSweep, TruncatedInputsDiagnoseNotCrash) {
  for (const SampleInput &Input : SampleInputs) {
    std::string Original = readFileOrFail(sampleAppPath(Input.File));
    for (uint64_t Seed = 0; Seed < 24; ++Seed)
      runPipelineOnMutatedInput(Input, truncateInput(Original, Seed), Seed);
  }
}

TEST(MutationSweep, CorruptedInputsDiagnoseNotCrash) {
  for (const SampleInput &Input : SampleInputs) {
    std::string Original = readFileOrFail(sampleAppPath(Input.File));
    for (uint64_t Seed = 0; Seed < 24; ++Seed)
      runPipelineOnMutatedInput(Input, corruptInput(Original, Seed), Seed);
  }
}

TEST(MutationSweep, MutatorsAreDeterministic) {
  std::string Original = readFileOrFail(sampleAppPath("app.alite"));
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    EXPECT_EQ(truncateInput(Original, Seed), truncateInput(Original, Seed));
    EXPECT_EQ(corruptInput(Original, Seed), corruptInput(Original, Seed));
  }
}

//===----------------------------------------------------------------------===//
// Cache-artifact poisoning (docs/INCREMENTAL.md): the same seeded
// mutators, aimed at GSC1 solution-cache entries. The contract extends
// the pipeline's fail-soft rule to the cache tier — a poisoned artifact
// is a counted Corrupt outcome (a miss), never a crash and never a
// fabricated analysis result.
//===----------------------------------------------------------------------===//

std::string sampleCacheArtifact() {
  CachedAnalysis E;
  E.ExitCode = 0;
  E.OutText = "app CachedApp: ok\n";
  E.Stats.Name = "CachedApp";
  E.Stats.GraphNodes = 64;
  E.FlowHistCounts.assign(12, 1);
  E.FlowHistSum = 12;
  E.FlowHistCount = 12;
  std::string Bytes;
  SolutionCache::serialize(E, Bytes);
  return Bytes;
}

TEST(CacheMutationSweep, PoisonedArtifactsNeverDeserialize) {
  std::string Artifact = sampleCacheArtifact();
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    CachedAnalysis Out;
    EXPECT_FALSE(
        SolutionCache::deserialize(truncateInput(Artifact, Seed), Out))
        << "truncation seed " << Seed;
    EXPECT_FALSE(
        SolutionCache::deserialize(corruptInput(Artifact, Seed), Out))
        << "corruption seed " << Seed;
  }
}

TEST(CacheMutationSweep, PoisonedDiskEntriesAreCountedMisses) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "gator_fault_cache_sweep";
  fs::remove_all(Dir);

  support::Hash128 Key;
  Key.Hi = 0xabcdef;
  Key.Lo = 0x123456;
  std::string Artifact = sampleCacheArtifact();
  uint64_t Corrupt = 0;
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    for (const std::string &Poison :
         {truncateInput(Artifact, Seed), corruptInput(Artifact, Seed)}) {
      SolutionCache Cache(Dir.string());
      std::ofstream OutF(Dir / (Key.hex() + ".gsc"),
                         std::ios::binary | std::ios::trunc);
      OutF.write(Poison.data(), static_cast<std::streamsize>(Poison.size()));
      OutF.close();
      CachedAnalysis Out;
      EXPECT_EQ(Cache.lookup(Key, Out), SolutionCache::Outcome::Corrupt);
      EXPECT_EQ(Cache.corruptEntries(), 1u);
      EXPECT_EQ(Cache.hits(), 0u);
      ++Corrupt;
    }
  }
  EXPECT_EQ(Corrupt, 32u);
  fs::remove_all(Dir);
}

} // namespace
