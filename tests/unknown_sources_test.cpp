//===- unknown_sources_test.cpp - Unknown-source modeling -------*- C++ -*-===//
//
// Hostile-input resilience (docs/ROBUSTNESS.md): the analysis models
// statically unresolvable sites — reflective construction, non-constant
// (dynamic) find ids, references to missing layout resources — as tagged
// UnknownView/UnknownId nodes instead of dropping them. These tests pin
// the contract:
//
//  - each hostile shape mints an unknown node with the right degradation
//    reason and marks the solution DegradedInput;
//  - clean inputs are untouched: zero unknown nodes, Complete fidelity,
//    and a solution identical with modeling on or off;
//  - `--no-unknown-sources` restores the silent-drop behavior;
//  - an unknown id at a FindView site conservatively yields the
//    receiver's view set, capped deterministically by UnknownFanoutBudget;
//  - provenance tags every approximate fact and --explain's derivation
//    printer names the reason and the site;
//  - all engines (fused delta, fused naive, phased) agree on degraded
//    apps, and SolutionChecker accepts their solutions.
//
//===----------------------------------------------------------------------===//

#include "analysis/PhasedSolver.h"
#include "analysis/Provenance.h"
#include "analysis/SolutionChecker.h"
#include "corpus/Corpus.h"

#include "DifferentialHelpers.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::test;

namespace {

const std::vector<std::pair<std::string, std::string>> MainLayout = {
    {"main", R"(<LinearLayout android:id="@+id/root">
                  <Button android:id="@+id/go"/>
                  <TextView android:id="@+id/title"/>
                </LinearLayout>)"}};

/// Reflective construction: `classof(C).newInstance()` attached under the
/// inflated root.
const char *ReflectiveSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var rid: int;
    var cont: android.widget.LinearLayout;
    var cc: java.lang.Class;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    rid := @id/root;
    cont := this.findViewById(rid);
    cc := classof android.widget.Button;
    v := cc.newInstance();
    cont.addView(v);
  }
}
)";

/// Dynamic id: the find's id operand comes from getIdentifier, a run-time
/// resource lookup no static analysis resolves.
const char *DynamicIdSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var did: int;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    did := this.getIdentifier();
    v := this.findViewById(did);
  }
}
)";

/// Missing layout: setContentView of a resource no layout file defines.
const char *MissingLayoutSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/nonexistent;
    this.setContentView(lid);
  }
}
)";

/// Clean control: same shape as DynamicIdSource but with a constant id.
const char *CleanSource = R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var gid: int;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    gid := @id/go;
    v := this.findViewById(gid);
  }
}
)";

size_t unknownNodeCount(const AnalysisResult &R) {
  return R.Graph->nodesOfKind(NodeKind::UnknownView).size() +
         R.Graph->nodesOfKind(NodeKind::UnknownId).size();
}

bool hasUnknownWithReason(const AnalysisResult &R, NodeKind K,
                          UnknownReason Reason) {
  for (NodeId N : R.Graph->nodesOfKind(K))
    if (R.Graph->node(N).Unknown == Reason)
      return true;
  return false;
}

std::string dumpSolution(const AnalysisResult &R,
                         const AnalysisOptions &Options) {
  std::ostringstream OS;
  R.Sol->dump(OS, Options.TrackViewIds, Options.TrackHierarchy,
              Options.FindView3ChildOnly, Options.UnknownFanoutBudget);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Tagging and degradation
//===----------------------------------------------------------------------===//

TEST(UnknownSources, ReflectiveNewMintsTaggedViewAndDegrades) {
  auto App = makeBundle(ReflectiveSource, MainLayout);
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownView,
                                   UnknownReason::ReflectiveNew));

  // The unknown view reaches the result variable and, through addView,
  // hangs under the container's views as a child.
  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  bool SawUnknown = false;
  for (NodeId Val : R->Sol->viewsAt(V))
    SawUnknown |= R->Graph->node(Val).Kind == NodeKind::UnknownView;
  EXPECT_TRUE(SawUnknown);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST(UnknownSources, DynamicIdYieldsReceiverViewSet) {
  auto App = makeBundle(DynamicIdSource, MainLayout);
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownId,
                                   UnknownReason::DynamicId));

  // Conservative fan-out: the find resolves to every view of the
  // activity's layout (3 layout nodes), not to nothing.
  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  EXPECT_GE(R->Sol->viewsAt(V).size(), 3u);
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST(UnknownSources, MissingLayoutMintsUnknownRootAndDegrades) {
  auto App = makeBundle(MissingLayoutSource);
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownId,
                                   UnknownReason::MissingLayout));
  // Inflate2 over the unknown id minted a stand-in root under the
  // activity, so downstream hierarchy clients see a window, not nothing.
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownView,
                                   UnknownReason::MissingLayout));
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

TEST(UnknownSources, UnresolvedClassNewMintsUnknown) {
  // `new` of a class with no declaration anywhere (hostile/obfuscated
  // input): modeled as an unknown view rather than silently dropped.
  const char *Source = R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.view.View;
    v := new com.missing.Widget();
  }
}
)";
  auto App = makeBundle(Source);
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownView,
                                   UnknownReason::UnknownClass));
  EXPECT_TRUE(checkSolutionClosure(*R).empty());
}

//===----------------------------------------------------------------------===//
// Clean inputs are untouched
//===----------------------------------------------------------------------===//

TEST(UnknownSources, CleanInputMintsNothingAndMatchesDisabledMode) {
  AnalysisOptions On;
  AnalysisOptions Off;
  Off.ModelUnknownSources = false;

  auto App1 = makeBundle(CleanSource, MainLayout);
  auto R1 = runAnalysis(*App1, On);
  auto App2 = makeBundle(CleanSource, MainLayout);
  auto R2 = runAnalysis(*App2, Off);

  EXPECT_EQ(unknownNodeCount(*R1), 0u);
  EXPECT_EQ(R1->Sol->fidelity(), Fidelity::Complete);
  expectSameSolution(*R1, *R2, "clean input, modeling on vs off");
  EXPECT_EQ(dumpSolution(*R1, On), dumpSolution(*R2, Off));
}

TEST(UnknownSources, DisabledModeDropsHostileSitesSilently) {
  AnalysisOptions Off;
  Off.ModelUnknownSources = false;
  for (const char *Source :
       {ReflectiveSource, DynamicIdSource, MissingLayoutSource}) {
    auto App = makeBundle(Source, MainLayout);
    auto R = runAnalysis(*App, Off);
    EXPECT_EQ(unknownNodeCount(*R), 0u);
    EXPECT_EQ(R->Sol->fidelity(), Fidelity::Complete);
    EXPECT_TRUE(checkSolutionClosure(*R).empty());
  }
}

//===----------------------------------------------------------------------===//
// Fan-out budget
//===----------------------------------------------------------------------===//

TEST(UnknownSources, FanoutBudgetCapsDeterministically) {
  AnalysisOptions Capped;
  Capped.UnknownFanoutBudget = 2;
  auto App1 = makeBundle(DynamicIdSource, MainLayout);
  auto R1 = runAnalysis(*App1, Capped);
  NodeId V1 = varNode(*App1, *R1, "A", "onCreate", 0, "v");
  EXPECT_LE(R1->Sol->viewsAt(V1).size(), 2u);
  EXPECT_GE(R1->Sol->viewsAt(V1).size(), 1u);

  // Re-running the identical input yields the identical capped solution.
  auto App2 = makeBundle(DynamicIdSource, MainLayout);
  auto R2 = runAnalysis(*App2, Capped);
  EXPECT_EQ(dumpSolution(*R1, Capped), dumpSolution(*R2, Capped));

  // Budget 0 = uncapped: at least the three layout views.
  AnalysisOptions Uncapped;
  Uncapped.UnknownFanoutBudget = 0;
  auto App3 = makeBundle(DynamicIdSource, MainLayout);
  auto R3 = runAnalysis(*App3, Uncapped);
  NodeId V3 = varNode(*App3, *R3, "A", "onCreate", 0, "v");
  EXPECT_GE(R3->Sol->viewsAt(V3).size(), 3u);
}

//===----------------------------------------------------------------------===//
// Provenance: approximate facts carry their reason
//===----------------------------------------------------------------------===//

TEST(UnknownSources, ExplainNamesTheDegradationReason) {
  AnalysisOptions Options;
  Options.RecordProvenance = true;
  auto App = makeBundle(DynamicIdSource, MainLayout);
  auto R = runAnalysis(*App, Options);
  ASSERT_NE(R->Provenance, nullptr);
  EXPECT_GT(R->Provenance->approxFactCount(), 0u);

  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  std::ostringstream OS;
  for (NodeId Val : R->Sol->valuesAt(V)) {
    auto F = R->Provenance->flowFact(V, Val);
    if (F != ProvenanceRecorder::NoFact)
      R->Provenance->printDerivation(OS, F, *R->Graph);
  }
  EXPECT_NE(OS.str().find("[approx]"), std::string::npos) << OS.str();
  EXPECT_NE(OS.str().find("approx: non-constant id at A.onCreate"),
            std::string::npos)
      << OS.str();
}

//===----------------------------------------------------------------------===//
// Engine agreement on degraded apps
//===----------------------------------------------------------------------===//

TEST(UnknownSources, AllEnginesAgreeOnDegradedApps) {
  // Budget 0 (uncapped) keeps the comparison exact: the cap is a sorted
  // prefix whose membership can differ across engines only in the order
  // views were discovered, which the uncapped set folds away.
  for (const char *Source :
       {ReflectiveSource, DynamicIdSource, MissingLayoutSource}) {
    AnalysisOptions Delta;
    Delta.UnknownFanoutBudget = 0;
    AnalysisOptions Naive = Delta;
    Naive.DeltaPropagation = false;

    auto App1 = makeBundle(Source, MainLayout);
    auto RDelta = runAnalysis(*App1, Delta);
    auto App2 = makeBundle(Source, MainLayout);
    auto RNaive = runAnalysis(*App2, Naive);
    auto App3 = makeBundle(Source, MainLayout);
    auto RPhased = runPhasedAnalysis(App3->Program, *App3->Layouts,
                                     App3->Android, Delta, App3->Diags);
    ASSERT_NE(RPhased, nullptr);

    EXPECT_EQ(RDelta->Sol->fidelity(), Fidelity::DegradedInput);
    expectSameSolution(*RDelta, *RNaive, "delta vs naive (degraded)");
    expectSameSolution(*RDelta, *RPhased, "fused vs phased (degraded)");
    EXPECT_EQ(RPhased->Sol->fidelity(), Fidelity::DegradedInput);
    EXPECT_TRUE(checkSolutionClosure(*RPhased).empty());
  }
}

//===----------------------------------------------------------------------===//
// Corpus hostile knobs
//===----------------------------------------------------------------------===//

TEST(UnknownSources, HostileCorpusKnobsDegradeGeneratedApps) {
  AppSpec Spec;
  Spec.Name = "Hostile";
  Spec.Activities = 2;
  Spec.FillerClasses = 2;
  Spec.ReflectiveViewsPerActivity = 1;
  Spec.DynamicFindsPerActivity = 1;
  Spec.MissingLayoutRefsPerActivity = 1;
  GeneratedApp App = generateApp(Spec);
  auto R = runAnalysis(*App.Bundle);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::DegradedInput);
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownView,
                                   UnknownReason::ReflectiveNew));
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownId,
                                   UnknownReason::DynamicId));
  EXPECT_TRUE(hasUnknownWithReason(*R, NodeKind::UnknownId,
                                   UnknownReason::MissingLayout));
  EXPECT_TRUE(checkSolutionClosure(*R).empty());

  // The same spec without hostile knobs stays Complete: degradation is
  // attributable to the hostile shapes alone.
  AppSpec Clean = Spec;
  Clean.ReflectiveViewsPerActivity = 0;
  Clean.DynamicFindsPerActivity = 0;
  Clean.MissingLayoutRefsPerActivity = 0;
  GeneratedApp CleanApp = generateApp(Clean);
  auto RClean = runAnalysis(*CleanApp.Bundle);
  EXPECT_EQ(RClean->Sol->fidelity(), Fidelity::Complete);
  EXPECT_EQ(unknownNodeCount(*RClean), 0u);
}

TEST(UnknownSources, CleanFleetIdenticalWithHostileKnobsAtZero) {
  // The hostile draws are guarded on the rate, so a default FleetSpec
  // produces exactly the specs it produced before the knobs existed.
  FleetSpec Clean;
  Clean.Apps = 32;
  std::vector<AppSpec> A = makeFleet(Clean);
  FleetSpec Zeroed;
  Zeroed.Apps = 32;
  Zeroed.ReflectivePercent = 0;
  Zeroed.DynamicIdPercent = 0;
  Zeroed.MissingLayoutPercent = 0;
  std::vector<AppSpec> B = makeFleet(Zeroed);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Seed, B[I].Seed);
    EXPECT_EQ(A[I].ReflectiveViewsPerActivity, 0u);
    EXPECT_EQ(A[I].DynamicFindsPerActivity, 0u);
    EXPECT_EQ(A[I].MissingLayoutRefsPerActivity, 0u);
    EXPECT_EQ(A[I].ViewsPerLayout, B[I].ViewsPerLayout);
    EXPECT_EQ(A[I].UseFlipper, B[I].UseFlipper);
    EXPECT_EQ(A[I].UseDialog, B[I].UseDialog);
  }
}

} // namespace
