//===- Solution.h - Analysis results and queries ----------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computed flowsTo relation, the operation-site table, and the query
/// API over them (including the four precision metrics of Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_SOLUTION_H
#define GATOR_ANALYSIS_SOLUTION_H

#include "analysis/FlowSet.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "support/Budget.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gator {
namespace analysis {

/// How trustworthy a Solution is (docs/ROBUSTNESS.md). Ordered by
/// precedence: a budget trip outranks input degradation outranks clean.
enum class Fidelity : uint8_t {
  Complete,        ///< full fixed point over well-formed input
  DegradedInput,   ///< recoverable invariants fired / degenerate input
                   ///< skipped; the solution is consistent but may be
                   ///< missing facts the skipped constraints implied
  TruncatedBudget, ///< a resource budget stopped the solver early; the
                   ///< solution is a consistent under-approximation
};

/// Human-readable label ("complete", "degraded-input", ...).
const char *fidelityName(Fidelity F);

/// One occurrence of an Android operation with the variable nodes playing
/// each role. Roles not applicable to the op kind are InvalidNode.
struct OpSite {
  graph::NodeId OpNode = graph::InvalidNode;
  android::OpSpec Spec;
  /// The enclosing application method.
  const ir::MethodDecl *Method = nullptr;
  /// Receiver variable node (view / activity / inflater / intent).
  graph::NodeId Recv = graph::InvalidNode;
  /// Integer layout-id / view-id argument variable node.
  graph::NodeId IdArg = graph::InvalidNode;
  /// Value argument node: child view (AddView), listener (SetListener),
  /// intent (StartActivity), class constant (SetIntentClass).
  graph::NodeId ValArg = graph::InvalidNode;
  /// inflate(id, parent): the parent ViewGroup argument.
  graph::NodeId AttachParent = graph::InvalidNode;
  /// Result variable node (FindView*, Inflate1).
  graph::NodeId Out = graph::InvalidNode;
  /// The op's statement disappeared in an edit-scale re-analysis
  /// (docs/INCREMENTAL.md). Dead sites keep their slot — op indices are
  /// stable memo keys (InflatedAt, FragmentWired) — but the solvers and
  /// every query skip them.
  bool Dead = false;
};

/// The fixed-point solution: flowsTo sets plus graph-resident relationship
/// edges, with Table 2 metrics.
class Solution {
public:
  Solution(const graph::ConstraintGraph &G, const android::AndroidModel &AM)
      : G(G), AM(AM) {}

  //===--------------------------------------------------------------------===//
  // Raw state (populated by the solver)
  //===--------------------------------------------------------------------===//

  std::vector<FlowSet> &flowsToSets() { return FlowsTo; }
  const std::vector<FlowSet> &flowsToSets() const { return FlowsTo; }

  /// The arena backing every FlowSet's element storage (docs/MEMORY.md):
  /// solvers pass it to FlowSet::insert, and the whole solution's set
  /// volume is released as slabs with the Solution.
  support::Arena &setArena() { return SetArena; }
  /// Set-storage footprint, for AppStats::ArenaBytes accounting.
  const support::Arena &setArena() const { return SetArena; }
  std::vector<OpSite> &opSites() { return Ops; }
  const std::vector<OpSite> &opSites() const { return Ops; }

  //===--------------------------------------------------------------------===//
  // Fidelity (docs/ROBUSTNESS.md)
  //===--------------------------------------------------------------------===//

  Fidelity fidelity() const { return Fid; }
  bool isComplete() const { return Fid == Fidelity::Complete; }

  /// Why the budget tripped (None unless fidelity is TruncatedBudget).
  support::BudgetReason truncationReason() const { return TruncReason; }

  /// Marks the solution truncated by a budget (highest precedence).
  void markTruncated(support::BudgetReason Reason) {
    Fid = Fidelity::TruncatedBudget;
    TruncReason = Reason;
  }

  /// Marks the solution degraded by malformed/degenerate input; does not
  /// downgrade an existing TruncatedBudget marker.
  void markDegraded() {
    if (Fid == Fidelity::Complete)
      Fid = Fidelity::DegradedInput;
  }

  /// Records an operation site whose rule was skipped or left unfinished
  /// (degraded inflation, budget cut). Deduplicated, kept sorted.
  void noteUnresolvedOp(uint32_t OpIndex);

  /// Sorted indices into ops() of unresolved operation sites.
  const std::vector<uint32_t> &unresolvedOps() const { return Unresolved; }

  /// Drops unresolved-op entries whose site died in an edit-scale
  /// re-analysis (docs/INCREMENTAL.md). Fidelity stays as-is: downgrade
  /// marks are sticky-conservative across incremental re-solves.
  void pruneUnresolvedDeadOps();

  //===--------------------------------------------------------------------===//
  // flowsTo queries
  //===--------------------------------------------------------------------===//

  /// Values reaching node \p N (empty for unseeded nodes).
  const FlowSet &valuesAt(graph::NodeId N) const;

  /// Views (ViewAlloc/ViewInfl nodes) among the values reaching \p N.
  std::vector<graph::NodeId> viewsAt(graph::NodeId N) const;

  /// Values at \p N whose class implements a listener interface, plus any
  /// value reaching the listener position regardless (the declared type of
  /// the set-listener argument is authoritative per Section 3.2).
  std::vector<graph::NodeId> listenerValuesAt(graph::NodeId N) const;

  const std::vector<OpSite> &ops() const { return Ops; }

  /// Op sites of one kind.
  std::vector<const OpSite *> opsOfKind(android::OpKind Kind) const;

  //===--------------------------------------------------------------------===//
  // Operation-resolution queries (recomputed over the final state)
  //===--------------------------------------------------------------------===//

  /// Views flowing into the receiver role of \p Op.
  std::vector<graph::NodeId> receiversOf(const OpSite &Op) const;

  /// Views flowing into the child/parameter role of an AddView op (for
  /// AddView1 this is the view argument).
  std::vector<graph::NodeId> parametersOf(const OpSite &Op) const;

  /// Views an operation with an output (FindView1/2/3, Inflate1) resolves
  /// to, re-evaluating its rule over the final state. Options mirror the
  /// solver's (supplied because ablations change resolution).
  /// \p UnknownFanoutBudget caps what an unknown id may yield
  /// (docs/ROBUSTNESS.md); pass the solver's value for self-consistency.
  std::vector<graph::NodeId> resultsOf(const OpSite &Op, bool TrackViewIds,
                                       bool TrackHierarchy,
                                       bool ChildOnlyRefinement,
                                       unsigned UnknownFanoutBudget = 64) const;

  /// Listener values flowing into a SetListener op.
  std::vector<graph::NodeId> listenersAtOp(const OpSite &Op) const;

  //===--------------------------------------------------------------------===//
  // Table 2 precision metrics
  //===--------------------------------------------------------------------===//

  struct PrecisionMetrics {
    /// Mean |receiver views| over op nodes with a view receiver (FindView1,
    /// FindView3, AddView2, SetId, SetListener) that are reached by >= 1
    /// view.
    double AvgReceivers = 0.0;
    /// Mean |parameter views| over AddView1/AddView2 nodes; absent when
    /// the app has no such node (the paper prints "-").
    std::optional<double> AvgParameters;
    /// Mean |result views| over FindView1/2/3 nodes.
    std::optional<double> AvgResults;
    /// Mean |associated listeners| over (SetListener op, receiver view)
    /// pairs.
    std::optional<double> AvgListeners;
  };

  PrecisionMetrics computeMetrics(bool TrackViewIds = true,
                                  bool TrackHierarchy = true,
                                  bool ChildOnlyRefinement = true,
                                  unsigned UnknownFanoutBudget = 64) const;

  const graph::ConstraintGraph &constraintGraph() const { return G; }
  const android::AndroidModel &androidModel() const { return AM; }

  /// Prints every operation site with its resolved receiver / parameter /
  /// result / listener sets, one op per line ("FindView2_10 @ A.onCreate/0
  /// recv{act:A} -> {Button~infl#4[ok]}").
  void dump(std::ostream &OS, bool TrackViewIds = true,
            bool TrackHierarchy = true, bool ChildOnlyRefinement = true,
            unsigned UnknownFanoutBudget = 64) const;

private:
  const graph::ConstraintGraph &G;
  const android::AndroidModel &AM;
  /// Owns all FlowSet element storage; declared before FlowsTo so slabs
  /// outlive the tables pointing at them.
  support::Arena SetArena;
  std::vector<FlowSet> FlowsTo;
  std::vector<OpSite> Ops;
  FlowSet Empty;
  Fidelity Fid = Fidelity::Complete;
  support::BudgetReason TruncReason = support::BudgetReason::None;
  std::vector<uint32_t> Unresolved;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_SOLUTION_H
