# Empty dependencies file for gui_model.
# This may be replaced when dependencies are built.
