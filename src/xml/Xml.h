//===- Xml.h - Minimal XML parser -------------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free XML reader covering the subset used by Android
/// layout resources: a prolog, comments, nested elements, attributes with
/// single- or double-quoted values, and self-closing tags. Character data
/// between elements is preserved per node but unused by the layout reader.
///
/// The original system read binary AXML resources out of APKs; textual XML
/// carries the same (viewClass, viewId, children) information the analysis
/// consumes (DESIGN.md, substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_XML_XML_H
#define GATOR_XML_XML_H

#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gator {
namespace xml {

/// One name="value" attribute.
struct XmlAttr {
  std::string Name;
  std::string Value;
};

/// An XML element.
class XmlNode {
public:
  XmlNode(std::string Tag, SourceLocation Loc)
      : Tag(std::move(Tag)), Loc(std::move(Loc)) {}

  const std::string &tag() const { return Tag; }
  const SourceLocation &loc() const { return Loc; }

  const std::vector<XmlAttr> &attrs() const { return Attrs; }
  void addAttr(std::string Name, std::string Value) {
    Attrs.push_back(XmlAttr{std::move(Name), std::move(Value)});
  }

  /// Returns the value of the attribute named \p Name, or null.
  const std::string *findAttr(std::string_view Name) const;

  const std::vector<std::unique_ptr<XmlNode>> &children() const {
    return Children;
  }
  XmlNode *addChild(std::unique_ptr<XmlNode> Child) {
    Children.push_back(std::move(Child));
    return Children.back().get();
  }

  /// Concatenated character data directly inside this element.
  const std::string &text() const { return Text; }
  void appendText(std::string_view Chunk) { Text.append(Chunk); }

private:
  std::string Tag;
  SourceLocation Loc;
  std::vector<XmlAttr> Attrs;
  std::vector<std::unique_ptr<XmlNode>> Children;
  std::string Text;
};

/// Parses \p Input as one XML document and returns its root element, or
/// null after reporting errors to \p Diags. \p FileName seeds diagnostics.
std::unique_ptr<XmlNode> parseXml(std::string_view Input,
                                  const std::string &FileName,
                                  DiagnosticEngine &Diags);

} // namespace xml
} // namespace gator

#endif // GATOR_XML_XML_H
