//===- connectbot_figures.cpp - Figures 1, 3, and 4 walkthrough -*- C++ -*-===//
//
// Reproduces the paper's running example end to end:
//  - Figure 1: the ConnectBot-derived program (printed in ALite syntax);
//  - Figures 3 and 4: the constraint graph, emitted as Graphviz DOT
//    (flow edges solid, relationship edges dashed) to
//    connectbot_constraints.dot;
//  - the Section 2 narrative, verified against the computed solution.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "corpus/ConnectBot.h"

#include <fstream>
#include <iostream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;

namespace {

void showVar(const AnalysisResult &Result, const ir::Program &P,
             const char *ClassName, const char *Method, unsigned Arity,
             const char *Var, const char *Note) {
  const ir::MethodDecl *M =
      P.findClass(ClassName)->findOwnMethod(Method, Arity);
  NodeId N = Result.Graph->getVarNode(M, M->findVar(Var));
  std::cout << "  " << ClassName << "." << Method << " :: " << Var << " = {";
  bool First = true;
  for (NodeId V : Result.Sol->viewsAt(N)) {
    std::cout << (First ? "" : ", ") << Result.Graph->label(V);
    First = false;
  }
  std::cout << "}   // " << Note << "\n";
}

} // namespace

int main() {
  auto App = corpus::buildConnectBotExample();
  if (!App || App->Diags.hasErrors()) {
    if (App)
      App->Diags.print(std::cerr);
    return 1;
  }

  std::cout << "=== Figure 1 (ALite syntax) ===\n"
            << corpus::connectBotAliteSource() << "\n";

  auto Result = GuiAnalysis::run(App->Program, *App->Layouts, App->Android,
                                 AnalysisOptions(), App->Diags);
  if (!Result) {
    App->Diags.print(std::cerr);
    return 1;
  }

  std::cout << "=== Section 2 narrative, checked against the solution ===\n";
  showVar(*Result, App->Program, "ConsoleActivity", "onCreate", 0, "e",
          "line 10: the flipper looked up from act_console");
  showVar(*Result, App->Program, "ConsoleActivity", "onCreate", 0, "g",
          "line 13: the ESC button ImageView");
  showVar(*Result, App->Program, "ConsoleActivity", "findTerminalView", 1,
          "c", "line 5: current child of the flipper (item_terminal root)");
  showVar(*Result, App->Program, "ConsoleActivity", "findTerminalView", 1,
          "d", "line 6: the TerminalView allocated at line 21");
  showVar(*Result, App->Program, "EscapeButtonListener", "onClick", 1, "r",
          "callback parameter: the view the click landed on");
  showVar(*Result, App->Program, "EscapeButtonListener", "onClick", 1, "v",
          "line 33: the terminal the ESC key goes to");

  std::cout << "\n=== constraint graph summary ===\n";
  Result->Graph->dumpStats(std::cout);

  const char *DotPath = "connectbot_constraints.dot";
  std::ofstream Dot(DotPath);
  Result->Graph->dumpDot(Dot, /*IncludeVarNodes=*/true);
  std::cout << "\nFigures 3/4 equivalent written to " << DotPath
            << " (render with: dot -Tsvg " << DotPath << ")\n";
  return 0;
}
