//===- AndroidModel.h - Android platform model ------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative model of the Android platform. Following Section 3.1 of
/// the paper, platform method *bodies* are never analyzed; instead this
/// model (1) installs bodiless platform class declarations into the
/// Program, (2) classifies application call sites into the operation kinds
/// of Section 3.2 (Ops.h), (3) registers the listener interfaces and the
/// signatures of their event-handler callbacks, and (4) names the activity
/// lifecycle callbacks invoked implicitly by the framework.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANDROID_ANDROIDMODEL_H
#define GATOR_ANDROID_ANDROIDMODEL_H

#include "android/Ops.h"
#include "ir/Ir.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gator {
namespace android {

/// Well-known platform class names.
namespace names {
inline constexpr const char *Object = "java.lang.Object";
inline constexpr const char *ClassClass = "java.lang.Class";
inline constexpr const char *Context = "android.content.Context";
inline constexpr const char *Intent = "android.content.Intent";
inline constexpr const char *Activity = "android.app.Activity";
inline constexpr const char *Dialog = "android.app.Dialog";
inline constexpr const char *View = "android.view.View";
inline constexpr const char *ViewGroup = "android.view.ViewGroup";
inline constexpr const char *LayoutInflater = "android.view.LayoutInflater";
inline constexpr const char *List = "java.util.List";
inline constexpr const char *Fragment = "android.app.Fragment";
inline constexpr const char *FragmentManager = "android.app.FragmentManager";
inline constexpr const char *FragmentTransaction =
    "android.app.FragmentTransaction";
} // namespace names

/// One event-handler callback declared by a listener interface.
struct HandlerSig {
  std::string MethodName; ///< e.g. "onClick"
  unsigned Arity;         ///< parameter count
  /// Index of the parameter that receives the view the event fired on, or
  /// -1 when the callback has no view parameter.
  int ViewParamIndex;
};

/// One listener interface and how it is registered.
struct ListenerSpec {
  std::string InterfaceName;    ///< e.g. "android.view.View.OnClickListener"
  std::string RegisterMethod;   ///< e.g. "setOnClickListener"
  EventKind Event;
  std::vector<HandlerSig> Handlers;
};

/// The classification of one call site.
struct OpSpec {
  OpKind Kind;
  /// For SetListener: which listener registration this is.
  const ListenerSpec *Listener = nullptr;
  /// For FindView3: restrict results to direct children (e.g.
  /// getCurrentView(), getChildAt()) instead of all descendants.
  bool ChildOnly = false;
  /// For Inflate1 with the two-argument inflate(id, parent) variant: the
  /// argument index of the parent ViewGroup the inflated root attaches to
  /// (-1 when absent).
  int AttachParentArgIndex = -1;
};

/// Installs and queries the platform model.
class AndroidModel {
public:
  /// Installs all platform classes (hierarchy anchors, widgets, listener
  /// interfaces, inflater, intent) into \p P. Call before parsing/building
  /// application classes so app code can extend them. Idempotent per
  /// Program: classes already present are left untouched.
  void install(ir::Program &P);

  /// Binds the model to a resolved Program; caches anchor ClassDecls.
  /// Returns false (and reports) if the platform classes are missing.
  bool bind(const ir::Program &P, DiagnosticEngine &Diags);

  const ir::Program &program() const { return *P; }

  // Class category queries (Section 3.1). All require bind().

  /// True for application classes that are (transitive) subclasses of
  /// android.app.Activity.
  bool isActivityClass(const ir::ClassDecl *C) const;
  /// Activity or Dialog: classes whose instances own a view hierarchy root.
  bool isWindowClass(const ir::ClassDecl *C) const;
  /// True for subclasses of android.view.View (including platform widgets).
  bool isViewClass(const ir::ClassDecl *C) const;
  bool isViewGroupClass(const ir::ClassDecl *C) const;
  /// True for classes implementing at least one registered listener
  /// interface. The paper's Section 4.1 notes any object can be a listener
  /// (even activities and views); this query is purely structural.
  bool isListenerClass(const ir::ClassDecl *C) const;

  /// All application (non-platform) activity classes.
  std::vector<const ir::ClassDecl *> appActivityClasses() const;

  /// Classifies an Invoke statement inside \p Enclosing. Returns nullopt
  /// for ordinary (non-Android-operation) calls.
  std::optional<OpSpec> classifyInvoke(const ir::MethodDecl &Enclosing,
                                       const ir::Stmt &S) const;

  /// True if \p MethodName is an Android lifecycle / framework callback
  /// invoked implicitly on activities (Section 3.2, "Effects of
  /// callbacks"). The model uses the documented lifecycle list plus the
  /// conservative "on*" prefix convention.
  static bool isLifecycleCallbackName(const std::string &MethodName);

  /// The listener specs known to the model.
  const std::vector<ListenerSpec> &listenerSpecs() const { return Specs; }

  /// The spec for a listener interface name, or null.
  const ListenerSpec *findListenerSpec(const std::string &InterfaceName) const;

  /// All listener interfaces implemented by \p C (walking supertypes).
  std::vector<const ListenerSpec *>
  listenerSpecsOf(const ir::ClassDecl *C) const;

  /// Resolves a view class name as spelled in a layout file: tries the
  /// exact name, then android.widget.X / android.view.X / android.webkit.X.
  const ir::ClassDecl *resolveLayoutClassName(const std::string &Name) const;

  /// The java.util.List platform interface, whose `add`/`get` calls the
  /// analysis models field-based through the artificial `elements` field
  /// (views stored in collections remain trackable).
  const ir::ClassDecl *listClass() const { return ListClass; }
  /// The artificial List.elements field, or null.
  const ir::FieldDecl *listElementsField() const;

private:
  void buildSpecs();
  const ir::ClassDecl *anchor(const char *Name) const;

  const ir::Program *P = nullptr;
  std::vector<ListenerSpec> Specs;
  std::unordered_multimap<std::string, const ListenerSpec *> SpecByRegister;
  std::unordered_map<std::string, const ListenerSpec *> SpecByInterface;

  /// resolveLayoutClassName memo, keyed by the spelled name. The model is
  /// bound to one resolved program, so entries never go stale; misses are
  /// cached too (as null) to spare the repeated prefix probing.
  mutable std::unordered_map<std::string, const ir::ClassDecl *>
      LayoutClassCache;

  const ir::ClassDecl *ActivityClass = nullptr;
  const ir::ClassDecl *DialogClass = nullptr;
  const ir::ClassDecl *ViewClass = nullptr;
  const ir::ClassDecl *ViewGroupClass = nullptr;
  const ir::ClassDecl *InflaterClass = nullptr;
  const ir::ClassDecl *ContextClass = nullptr;
  const ir::ClassDecl *IntentClass = nullptr;
  const ir::ClassDecl *ListClass = nullptr;
  const ir::ClassDecl *FragmentTxClass = nullptr;
};

} // namespace android
} // namespace gator

#endif // GATOR_ANDROID_ANDROIDMODEL_H
