//===- Check.h - Recoverable invariant checks -------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GATOR_CHECK: the recoverable replacement for `assert()` on invariants
/// that malformed *input* can violate (docs/ROBUSTNESS.md). A plain
/// assert is undefined behavior in Release builds; GATOR_CHECK instead
/// reports through the DiagnosticEngine (when one is reachable) and
/// evaluates to the condition, so the caller can degrade — skip the op,
/// drop the edge — and the pipeline keeps its fail-soft contract.
///
/// Usage:
/// \code
///   if (!GATOR_CHECK(From < Nodes.size(), Diags, "dangling node id"))
///     return false; // drop the edge instead of indexing out of bounds
/// \endcode
///
/// The second argument is a `DiagnosticEngine *` and may be null; every
/// failure additionally bumps a process-wide counter so test harnesses
/// can assert no invariant fired even where no engine was wired.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_CHECK_H
#define GATOR_SUPPORT_CHECK_H

namespace gator {

class DiagnosticEngine;

namespace support {

/// Reports one failed recoverable invariant: a warning-severity
/// diagnostic on \p Diags (when non-null) plus the process-wide counter.
/// Always returns false so it composes as `(Cond) || checkFailed(...)`.
bool checkFailed(DiagnosticEngine *Diags, const char *Condition,
                 const char *File, int Line, const char *Message);

/// Total GATOR_CHECK failures in this process (monotone; never reset).
unsigned long checkFailureTotal();

} // namespace support
} // namespace gator

/// Evaluates to \p Cond; on failure reports through \p DiagsPtr (a
/// possibly-null DiagnosticEngine*) and returns false so the caller can
/// degrade instead of hitting undefined behavior.
#define GATOR_CHECK(Cond, DiagsPtr, Msg)                                       \
  ((Cond) || ::gator::support::checkFailed((DiagsPtr), #Cond, __FILE__,        \
                                           __LINE__, (Msg)))

#endif // GATOR_SUPPORT_CHECK_H
