file(REMOVE_RECURSE
  "libgator_support.a"
)
