//===- bench_stress.cpp - Headroom beyond the paper's corpus ----*- C++ -*-===//
//
// The paper's largest app (Astrid) has ~5.8k methods and analyzes in
// ~5s on 2013 hardware. This bench demonstrates headroom: a synthetic
// app several times larger than anything in Table 1 (hundreds of
// activities, >10k methods, >50k constraint-graph nodes) analyzed end to
// end, with the Table 2 metrics printed for sanity.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "corpus/Corpus.h"
#include "support/Timer.h"

#include <cstdio>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

namespace {

AppSpec stressSpec(unsigned Activities, unsigned Fillers) {
  AppSpec Spec;
  Spec.Name = "Stress";
  Spec.Seed = 1;
  Spec.Activities = Activities;
  Spec.FillerClasses = Fillers;
  Spec.MethodsPerFillerClass = 5;
  Spec.ViewsPerLayout = 15;
  Spec.IdsPerLayout = 8;
  Spec.DirectFindsPerActivity = 4;
  Spec.ListenersPerActivity = 2;
  Spec.ProgViewsPerActivity = 2;
  Spec.InflateItemsPerActivity = 2;
  Spec.SharedFindsPerActivity = 2;
  Spec.SharedHelperUsers = Activities / 5;
  Spec.UseFlipper = true;
  return Spec;
}

void runScale(unsigned Activities, unsigned Fillers) {
  Timer Gen;
  GeneratedApp App = generateApp(stressSpec(Activities, Fillers));
  double GenSec = Gen.seconds();
  if (App.Bundle->Diags.hasErrors()) {
    std::fprintf(stderr, "generation failed\n");
    std::exit(1);
  }

  Timer T;
  auto R = GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                            App.Bundle->Android, AnalysisOptions(),
                            App.Bundle->Diags);
  if (!R || R->Stats.HitWorkLimit) {
    std::fprintf(stderr, "analysis failed\n");
    std::exit(1);
  }
  auto M = R->metrics();
  std::printf("%4u activities %6u methods: gen %.2fs, analyze %.3fs "
              "(%zu nodes, %lu propagations), receivers=%.2f results=%.2f\n",
              Activities, App.Bundle->Program.appMethodCount(), GenSec,
              T.seconds(), R->Graph->size(), R->Stats.Propagations,
              M.AvgReceivers, M.AvgResults.value_or(0.0));
}

} // namespace

int main() {
  std::printf("Stress: analysis cost far beyond the paper's corpus scale\n");
  std::printf("(paper's largest app: ~5.8k methods, ~5s on 2013 hardware)\n\n");
  runScale(20, 500);
  runScale(50, 1000);
  runScale(100, 2000);
  runScale(200, 4000);
  return 0;
}
