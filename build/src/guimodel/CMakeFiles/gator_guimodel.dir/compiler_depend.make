# Empty compiler generated dependencies file for gator_guimodel.
# This may be replaced when dependencies are built.
