# Determinism harness for the parallel batch driver (docs/PARALLEL.md):
# `gator_cli --batch --no-times` must produce byte-identical stdout and
# stderr, and the same exit code, at every -j value. Invoked by ctest with
# -DCLI=<gator_cli> -DDIR=<batch input dir>. Pass -DEXPECT_CODE=<n> to
# additionally pin the (identical) exit code itself — the hostile-batch
# test uses this to assert "some apps degraded" is exit 1, not 0 or 2
# (docs/ROBUSTNESS.md exit-code contract).

set(jobs_values 1 2 4 8)
set(reference_out "")
set(reference_err "")
set(reference_code "")

foreach(jobs ${jobs_values})
  execute_process(
    COMMAND ${CLI} --batch --no-times -j ${jobs} ${DIR}
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err
    RESULT_VARIABLE run_code)
  if(jobs EQUAL 1)
    set(reference_out "${run_out}")
    set(reference_err "${run_err}")
    set(reference_code "${run_code}")
  else()
    if(NOT run_out STREQUAL reference_out)
      message(FATAL_ERROR "stdout differs between -j 1 and -j ${jobs}")
    endif()
    if(NOT run_err STREQUAL reference_err)
      message(FATAL_ERROR "stderr differs between -j 1 and -j ${jobs}")
    endif()
    if(NOT run_code EQUAL reference_code)
      message(FATAL_ERROR
        "exit code differs between -j 1 (${reference_code}) and "
        "-j ${jobs} (${run_code})")
    endif()
  endif()
endforeach()

if(DEFINED EXPECT_CODE)
  if(NOT reference_code EQUAL ${EXPECT_CODE})
    message(FATAL_ERROR
      "batch exit code is ${reference_code}, expected ${EXPECT_CODE}\n"
      "--- stdout ---\n${reference_out}\n--- stderr ---\n${reference_err}")
  endif()
endif()

message(STATUS "batch output byte-identical at -j ${jobs_values} "
               "(exit ${reference_code})")
