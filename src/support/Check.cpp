//===- Check.cpp - Recoverable invariant checks -----------------*- C++ -*-===//

#include "support/Check.h"

#include "support/Diagnostics.h"

#include <atomic>
#include <string>

using namespace gator;

namespace {
std::atomic<unsigned long> TotalCheckFailures{0};
} // namespace

bool gator::support::checkFailed(DiagnosticEngine *Diags,
                                 const char *Condition, const char *File,
                                 int Line, const char *Message) {
  TotalCheckFailures.fetch_add(1, std::memory_order_relaxed);
  if (Diags) {
    std::string Text = "recoverable invariant violated: ";
    Text += Message;
    Text += " [";
    Text += Condition;
    Text += " at ";
    // Strip the directory: the file:line is for maintainers, not users.
    const char *Base = File;
    for (const char *P = File; *P; ++P)
      if (*P == '/' || *P == '\\')
        Base = P + 1;
    Text += Base;
    Text += ':';
    Text += std::to_string(Line);
    Text += ']';
    Diags->noteCheckFailure(std::move(Text));
  }
  return false;
}

unsigned long gator::support::checkFailureTotal() {
  return TotalCheckFailures.load(std::memory_order_relaxed);
}
