//===- solver_test.cpp - Per-rule analysis tests ----------------*- C++ -*-===//
//
// Targeted tests for each semantic rule of Section 3.2 and each inference
// rule of Section 4.2, on minimal ALite programs.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "corpus/ConnectBot.h"

#include <gtest/gtest.h>

#include <set>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::test;

namespace {

const char *SimpleLayout = R"(
<LinearLayout android:id="@+id/root">
  <Button android:id="@+id/ok" />
  <TextView android:id="@+id/title" />
</LinearLayout>
)";

TEST(SolverTest, LifecycleSeedsActivityIntoThis) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() { }
  method notACallback() { }
}
)");
  auto R = runAnalysis(*App);
  NodeId ThisOnCreate = varNode(*App, *R, "A", "onCreate", 0, "this");
  EXPECT_EQ(R->Sol->valuesAt(ThisOnCreate).size(), 1u);
  NodeId ThisOther = varNode(*App, *R, "A", "notACallback", 0, "this");
  EXPECT_TRUE(R->Sol->valuesAt(ThisOther).empty());
}

TEST(SolverTest, Inflate2AssociatesRootWithActivity) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId Act = R->Graph->getActivityNode(App->Program.findClass("A"));
  ASSERT_EQ(R->Graph->roots(Act).size(), 1u);
  NodeId Root = R->Graph->roots(Act).front();
  EXPECT_EQ(R->Graph->node(Root).Klass->name(),
            "android.widget.LinearLayout");
  // The whole tree was minted: root + 2 children.
  EXPECT_EQ(R->Graph->descendantsOf(Root).size(), 3u);
  EXPECT_EQ(R->Stats.InflationCount, 1u);
}

TEST(SolverTest, Inflate1ReturnsRootAndMintsFreshNodesPerSite) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var infl: android.view.LayoutInflater;
    var lid: int;
    var v1: android.view.View;
    var v2: android.view.View;
    infl := this.getLayoutInflater();
    lid := @layout/main;
    v1 := infl.inflate(lid);
    v2 := infl.inflate(lid);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId V1 = varNode(*App, *R, "A", "onCreate", 0, "v1");
  NodeId V2 = varNode(*App, *R, "A", "onCreate", 0, "v2");
  auto Views1 = R->Sol->viewsAt(V1);
  auto Views2 = R->Sol->viewsAt(V2);
  ASSERT_EQ(Views1.size(), 1u);
  ASSERT_EQ(Views2.size(), 1u);
  // Section 4.1: a fresh set of nodes per inflation site.
  EXPECT_NE(Views1.front(), Views2.front());
  EXPECT_EQ(R->Stats.InflationCount, 2u);
  // 2 sites x 3 layout nodes.
  EXPECT_EQ(R->Graph->nodesOfKind(NodeKind::ViewInfl).size(), 6u);
}

TEST(SolverTest, InflateWithParentAttaches) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var infl: android.view.LayoutInflater;
    var mainId: int;
    var itemId: int;
    var cont: android.widget.LinearLayout;
    var contId: int;
    var item: android.view.View;
    mainId := @layout/main;
    this.setContentView(mainId);
    contId := @id/root;
    cont := this.findViewById(contId);
    infl := this.getLayoutInflater();
    itemId := @layout/item;
    item := infl.inflate(itemId, cont);
  }
}
)",
                        {{"main", SimpleLayout},
                         {"item", "<TextView android:id=\"@+id/detail\"/>"}});
  auto R = runAnalysis(*App);
  // The inflated item root became a child of the main layout root.
  NodeId Act = R->Graph->getActivityNode(App->Program.findClass("A"));
  NodeId Root = R->Graph->roots(Act).front();
  EXPECT_EQ(R->Graph->descendantsOf(Root).size(), 4u); // 3 + attached item
}

TEST(SolverTest, AddView1SetsProgrammaticRoot) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.LinearLayout;
    v := new android.widget.LinearLayout;
    this.setContentView(v);
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId Act = R->Graph->getActivityNode(App->Program.findClass("A"));
  ASSERT_EQ(R->Graph->roots(Act).size(), 1u);
  EXPECT_EQ(R->Graph->node(R->Graph->roots(Act).front()).Kind,
            NodeKind::ViewAlloc);
}

TEST(SolverTest, AddView2AndSetIdEnableFindView) {
  // Programmatic view with setId, attached with addView, then found by id
  // through the activity hierarchy (the Figure 1 addNewTerminalView
  // pattern, distilled).
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var cont: android.widget.LinearLayout;
    var contId: int;
    var b: android.widget.Button;
    var bid: int;
    var found: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    contId := @id/root;
    cont := this.findViewById(contId);
    b := new android.widget.Button;
    bid := @id/dynamic_button;
    b.setId(bid);
    cont.addView(b);
    found := this.findViewById(bid);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId Found = varNode(*App, *R, "A", "onCreate", 0, "found");
  auto Views = R->Sol->viewsAt(Found);
  ASSERT_EQ(Views.size(), 1u);
  EXPECT_EQ(R->Graph->node(Views.front()).Kind, NodeKind::ViewAlloc);
  EXPECT_EQ(R->Graph->node(Views.front()).Klass->name(),
            "android.widget.Button");
}

TEST(SolverTest, SetListenerAssociatesAndWiresCallback) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var okId: int;
    var ok: android.view.View;
    var l1: L;
    var l2: L;
    lid := @layout/main;
    this.setContentView(lid);
    okId := @id/ok;
    ok := this.findViewById(okId);
    l1 := new L;
    l2 := new L;
    ok.setOnClickListener(l1);
    ok.setOnClickListener(l2);
  }
}
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId Ok = varNode(*App, *R, "A", "onCreate", 0, "ok");
  auto Views = R->Sol->viewsAt(Ok);
  ASSERT_EQ(Views.size(), 1u);
  EXPECT_EQ(R->Graph->listeners(Views.front()).size(), 2u);

  // Callback wiring: both listener objects reach onClick's `this`, and
  // the button reaches the view parameter.
  NodeId ThisH = varNode(*App, *R, "L", "onClick", 1, "this");
  EXPECT_EQ(R->Sol->valuesAt(ThisH).size(), 2u);
  NodeId Param = varNode(*App, *R, "L", "onClick", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, ListenerCallbackCanBeDisabled) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    var l: L;
    v := new android.widget.Button;
    l := new L;
    v.setOnClickListener(l);
  }
}
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
)");
  AnalysisOptions Options;
  Options.ModelListenerCallbacks = false;
  auto R = runAnalysis(*App, Options);
  NodeId Param = varNode(*App, *R, "L", "onClick", 1, "v");
  EXPECT_TRUE(R->Sol->valuesAt(Param).empty());
  // The association edge itself is still recorded.
  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  EXPECT_EQ(R->Graph->listeners(R->Sol->viewsAt(V).front()).size(), 1u);
}

TEST(SolverTest, DialogFindView) {
  auto App = makeBundle(R"(
class MyDialog extends android.app.Dialog {
  method setup() {
    var lid: int;
    var tid: int;
    var t: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    tid := @id/title;
    t := this.findViewById(tid);
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var d: MyDialog;
    d := new MyDialog;
    d.setup();
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId T = varNode(*App, *R, "MyDialog", "setup", 0, "t");
  EXPECT_EQ(viewClassesAt(*R, T),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, FindView3DescendantVsChildOnly) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var fid: int;
    var fl: android.widget.ViewFlipper;
    var cur: android.view.View;
    var foc: android.view.View;
    lid := @layout/flip;
    this.setContentView(lid);
    fid := @id/flipper;
    fl := this.findViewById(fid);
    cur := fl.getCurrentView();
    foc := fl.findFocus();
  }
}
)",
                        {{"flip", R"(
<LinearLayout>
  <ViewFlipper android:id="@+id/flipper">
    <FrameLayout android:id="@+id/page1">
      <TextView android:id="@+id/deep" />
    </FrameLayout>
    <FrameLayout android:id="@+id/page2" />
  </ViewFlipper>
</LinearLayout>
)"}});
  auto R = runAnalysis(*App);
  // getCurrentView: direct children only (the two FrameLayout pages).
  NodeId Cur = varNode(*App, *R, "A", "onCreate", 0, "cur");
  EXPECT_EQ(R->Sol->viewsAt(Cur).size(), 2u);
  // findFocus: any descendant (pages + deep text + the flipper itself).
  NodeId Foc = varNode(*App, *R, "A", "onCreate", 0, "foc");
  EXPECT_EQ(R->Sol->viewsAt(Foc).size(), 4u);

  // With the refinement disabled, getCurrentView behaves like findFocus.
  AnalysisOptions NoRefine;
  NoRefine.FindView3ChildOnly = false;
  auto R2 = runAnalysis(*App, NoRefine);
  NodeId Cur2 = varNode(*App, *R2, "A", "onCreate", 0, "cur");
  EXPECT_EQ(R2->Sol->viewsAt(Cur2).size(), 4u);
}

TEST(SolverTest, ViewsFlowThroughInstanceFields) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  field cached: android.view.View;
  method onCreate() {
    var lid: int;
    var okId: int;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    okId := @id/ok;
    v := this.findViewById(okId);
    this.cached := v;
  }
  method onResume() {
    var w: android.view.View;
    w := this.cached;
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId W = varNode(*App, *R, "A", "onResume", 0, "w");
  EXPECT_EQ(viewClassesAt(*R, W),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, ViewsFlowThroughStaticFields) {
  auto App = makeBundle(R"(
class Holder { field static instance: android.view.View; }
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    v := new android.widget.Button;
    static Holder.instance := v;
  }
  method onResume() {
    var w: android.view.View;
    w := static Holder.instance;
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId W = varNode(*App, *R, "A", "onResume", 0, "w");
  EXPECT_EQ(viewClassesAt(*R, W),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, InterproceduralParamsAndReturns) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.Button;
    var w: android.view.View;
    v := new android.widget.Button;
    w := this.pass(v);
  }
  method pass(p: android.view.View): android.view.View {
    var r: android.view.View;
    r := p;
    return r;
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId W = varNode(*App, *R, "A", "onCreate", 0, "w");
  EXPECT_EQ(viewClassesAt(*R, W),
            std::vector<std::string>{"android.widget.Button"});
  NodeId P = varNode(*App, *R, "A", "pass", 1, "p");
  EXPECT_EQ(viewClassesAt(*R, P),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, ViewAsListenerGeneralCase) {
  // Section 4.1: "In general, any object could be a listener, including
  // activities and views ... our implementation handles the general
  // case."
  auto App = makeBundle(R"(
class ClickableView extends android.view.View
    implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
class A extends android.app.Activity {
  method onCreate() {
    var cv: ClickableView;
    cv := new ClickableView;
    cv.setOnClickListener(cv);
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId CV = varNode(*App, *R, "A", "onCreate", 0, "cv");
  auto Views = R->Sol->viewsAt(CV);
  ASSERT_EQ(Views.size(), 1u);
  ASSERT_EQ(R->Graph->listeners(Views.front()).size(), 1u);
  EXPECT_EQ(R->Graph->listeners(Views.front()).front(), Views.front());
  // The callback receives the view both as `this` and as the parameter.
  NodeId Param = varNode(*App, *R, "ClickableView", "onClick", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"ClickableView"});
}

TEST(SolverTest, ActivityAsListener) {
  auto App = makeBundle(R"(
class A extends android.app.Activity
    implements android.view.View.OnClickListener {
  method onCreate() {
    var v: android.widget.Button;
    var me: A;
    v := new android.widget.Button;
    me := this;
    v.setOnClickListener(me);
  }
  method onClick(v: android.view.View) { }
}
)");
  auto R = runAnalysis(*App);
  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  auto Views = R->Sol->viewsAt(V);
  ASSERT_EQ(Views.size(), 1u);
  ASSERT_EQ(R->Graph->listeners(Views.front()).size(), 1u);
  EXPECT_EQ(R->Graph->node(R->Graph->listeners(Views.front()).front()).Kind,
            NodeKind::Activity);
  NodeId Param = varNode(*App, *R, "A", "onClick", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, FlowInsensitivityOrderDoesNotMatter) {
  // The find-view happens *before* the setId/addView statements; the
  // flow-insensitive solution still resolves it (monotone fixed point).
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var contId: int;
    var cont: android.widget.LinearLayout;
    var did: int;
    var found: android.view.View;
    var b: android.widget.Button;
    lid := @layout/main;
    this.setContentView(lid);
    did := @id/late_id;
    found := this.findViewById(did);
    contId := @id/root;
    cont := this.findViewById(contId);
    b := new android.widget.Button;
    b.setId(did);
    cont.addView(b);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId Found = varNode(*App, *R, "A", "onCreate", 0, "found");
  EXPECT_EQ(viewClassesAt(*R, Found),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, UnknownLayoutReferenceWarns) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/never_registered;
    this.setContentView(lid);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  ASSERT_TRUE(R);
  // Graph construction reports the dangling @layout reference.
  EXPECT_GE(App->Diags.warningCount(), 1u);
  EXPECT_EQ(App->Diags.errorCount(), 0u);
}

TEST(SolverTest, UnmatchedFindViewYieldsEmptySet) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var ghost: int;
    var v: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    ghost := @id/no_such_widget;
    v := this.findViewById(ghost);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  EXPECT_TRUE(R->Sol->viewsAt(V).empty());
}

TEST(SolverTest, DroppedResultsAreFine) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var okId: int;
    lid := @layout/main;
    this.setContentView(lid);
    okId := @id/ok;
    this.findViewById(okId);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  EXPECT_FALSE(R->Stats.HitWorkLimit);
  EXPECT_EQ(R->Sol->opsOfKind(android::OpKind::FindView2).size(), 1u);
}

TEST(SolverTest, ViewsFlowThroughCollections) {
  // Views stored in a java.util.List remain trackable through the
  // artificial field-based `elements` model.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lst: java.util.ArrayList;
    var v: android.widget.Button;
    var i: int;
    var got: android.view.View;
    lst := new java.util.ArrayList;
    v := new android.widget.Button;
    lst.add(v);
    got := lst.get(i);
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId Got = varNode(*App, *R, "A", "onCreate", 0, "got");
  EXPECT_EQ(viewClassesAt(*R, Got),
            std::vector<std::string>{"android.widget.Button"});
}

TEST(SolverTest, CollectionRemoveReturnsElements) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lst: java.util.List;
    var v: android.widget.TextView;
    var i: int;
    var out: android.view.View;
    lst := new java.util.LinkedList;
    v := new android.widget.TextView;
    lst.add(v);
    out := lst.remove(i);
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId Out = varNode(*App, *R, "A", "onCreate", 0, "out");
  EXPECT_EQ(viewClassesAt(*R, Out),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, MultiCallbackListenerWiresAllHandlers) {
  // OnSeekBarChangeListener declares three callbacks; each receives the
  // registered view.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var sb: android.widget.SeekBar;
    var l: SeekL;
    sb := new android.widget.SeekBar;
    l := new SeekL;
    sb.setOnSeekBarChangeListener(l);
  }
}
class SeekL implements android.widget.SeekBar.OnSeekBarChangeListener {
  method onProgressChanged(v: android.view.View) { }
  method onStartTrackingTouch(v: android.view.View) { }
  method onStopTrackingTouch(v: android.view.View) { }
}
)");
  auto R = runAnalysis(*App);
  for (const char *Handler :
       {"onProgressChanged", "onStartTrackingTouch", "onStopTrackingTouch"}) {
    NodeId Param = varNode(*App, *R, "SeekL", Handler, 1, "v");
    EXPECT_EQ(viewClassesAt(*R, Param),
              std::vector<std::string>{"android.widget.SeekBar"})
        << Handler;
  }
}

TEST(SolverTest, XmlOnClickHandlerWired) {
  // `android:onClick="onHelp"` in the layout invokes A.onHelp(View) when
  // the button is clicked; the solver wires the association and callback.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
  method onHelp(v: android.view.View) {
    var x: android.view.View;
    x := v;
  }
}
)",
                        {{"main", R"(
<LinearLayout>
  <Button android:id="@+id/help" android:onClick="onHelp" />
</LinearLayout>
)"}});
  auto R = runAnalysis(*App);
  EXPECT_EQ(App->Diags.warningCount(), 0u);
  // The handler's view parameter receives the button; `this` the activity.
  NodeId Param = varNode(*App, *R, "A", "onHelp", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"android.widget.Button"});
  NodeId ThisH = varNode(*App, *R, "A", "onHelp", 1, "this");
  ASSERT_EQ(R->Sol->valuesAt(ThisH).size(), 1u);
  EXPECT_EQ(R->Graph->node(*R->Sol->valuesAt(ThisH).begin()).Kind,
            NodeKind::Activity);
  // The view's listener is the activity itself.
  NodeId Act = R->Graph->getActivityNode(App->Program.findClass("A"));
  NodeId Root = R->Graph->roots(Act).front();
  NodeId Button = R->Graph->children(Root).front();
  ASSERT_EQ(R->Graph->listeners(Button).size(), 1u);
  EXPECT_EQ(R->Graph->listeners(Button).front(), Act);
}

TEST(SolverTest, XmlOnClickMissingHandlerWarns) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
}
)",
                        {{"main", R"(
<LinearLayout>
  <Button android:onClick="noSuchMethod" />
</LinearLayout>
)"}});
  auto R = runAnalysis(*App);
  ASSERT_TRUE(R);
  EXPECT_EQ(App->Diags.warningCount(), 1u);
}

TEST(SolverTest, XmlOnClickCanBeDisabled) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    lid := @layout/main;
    this.setContentView(lid);
  }
  method onHelp(v: android.view.View) { }
}
)",
                        {{"main",
                          "<LinearLayout><Button android:onClick=\"onHelp\"/>"
                          "</LinearLayout>"}});
  AnalysisOptions Options;
  Options.ModelXmlOnClickHandlers = false;
  auto R = runAnalysis(*App, Options);
  NodeId Param = varNode(*App, *R, "A", "onHelp", 1, "v");
  EXPECT_TRUE(R->Sol->valuesAt(Param).empty());
}

TEST(SolverTest, DialogLifecycleSeedsAllocation) {
  auto App = makeBundle(R"(
class MyDialog extends android.app.Dialog {
  method onCreate() {
    var lid: int;
    var t: android.view.View;
    var tid: int;
    lid := @layout/main;
    this.setContentView(lid);
    tid := @id/title;
    t := this.findViewById(tid);
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var d: MyDialog;
    d := new MyDialog;
    d.show();
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  // Without any explicit call to MyDialog.onCreate, the framework model
  // invokes it on the allocation, so the dialog's find resolves.
  NodeId T = varNode(*App, *R, "MyDialog", "onCreate", 0, "t");
  EXPECT_EQ(viewClassesAt(*R, T),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, DeclaredTypeFilterPrunesIncompatibleViews) {
  // Both a Button and a TextView flow into `v`; the ImageView-typed `w`
  // keeps neither under type filtering, and `t` keeps only the TextView.
  const char *Source = R"(
class A extends android.app.Activity {
  method onCreate() {
    var b: android.widget.Button;
    var x: android.widget.TextView;
    var v: android.view.View;
    var t: android.widget.TextView;
    var w: android.widget.ImageView;
    b := new android.widget.Button;
    x := new android.widget.TextView;
    v := b;
    v := x;
    t := v;
    w := v;
  }
}
)";
  {
    auto App = makeBundle(Source);
    auto R = runAnalysis(*App); // default: no filtering
    EXPECT_EQ(R->Sol->viewsAt(varNode(*App, *R, "A", "onCreate", 0, "w"))
                  .size(),
              2u);
  }
  {
    auto App = makeBundle(Source);
    AnalysisOptions Options;
    Options.DeclaredTypeFilter = true;
    auto R = runAnalysis(*App, Options);
    // Button is a TextView subtype in the model; TextView stays, and so
    // does Button (Button <: TextView). ImageView is unrelated to both.
    EXPECT_EQ(viewClassesAt(*R, varNode(*App, *R, "A", "onCreate", 0, "t")),
              (std::vector<std::string>{"android.widget.Button",
                                        "android.widget.TextView"}));
    EXPECT_TRUE(
        R->Sol->viewsAt(varNode(*App, *R, "A", "onCreate", 0, "w")).empty());
  }
}

TEST(SolverTest, FragmentViewAttachesUnderContainer) {
  // Extension (fragments): tx.add(containerId, fragment) makes the view
  // returned by fragment.onCreateView a child of the container, so an
  // activity-wide find reaches into fragment content.
  auto App = makeBundle(R"(
class MyFragment extends android.app.Fragment {
  method onCreateView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.view.View;
    var lid: int;
    lid := @layout/frag;
    v := inflater.inflate(lid);
    return v;
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var fm: android.app.FragmentManager;
    var tx: android.app.FragmentTransaction;
    var f: MyFragment;
    var cid: int;
    var fid: int;
    var found: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    fm := this.getFragmentManager();
    tx := fm.beginTransaction();
    f := new MyFragment;
    cid := @id/root;
    tx.add(cid, f);
    tx.commit();
    fid := @id/frag_text;
    found := this.findViewById(fid);
  }
}
)",
                        {{"main", SimpleLayout},
                         {"frag", "<TextView android:id=\"@+id/frag_text\"/>"}});
  auto R = runAnalysis(*App);
  // The fragment factory's `this` receives the allocation.
  NodeId ThisF = varNode(*App, *R, "MyFragment", "onCreateView", 1, "this");
  EXPECT_EQ(R->Sol->valuesAt(ThisF).size(), 1u);
  // The activity-wide find sees the fragment's TextView.
  NodeId Found = varNode(*App, *R, "A", "onCreate", 0, "found");
  EXPECT_EQ(viewClassesAt(*R, Found),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, FragmentReplaceAlsoModeled) {
  auto App = makeBundle(R"(
class F extends android.app.Fragment {
  method onCreateView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.widget.Button;
    v := new android.widget.Button;
    return v;
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var fm: android.app.FragmentManager;
    var tx: android.app.FragmentTransaction;
    var f: F;
    var cid: int;
    lid := @layout/main;
    this.setContentView(lid);
    fm := this.getFragmentManager();
    tx := fm.beginTransaction();
    f := new F;
    cid := @id/root;
    tx.replace(cid, f);
  }
}
)",
                        {{"main", SimpleLayout}});
  auto R = runAnalysis(*App);
  // The programmatic Button hangs under the container with id root.
  NodeId Act = R->Graph->getActivityNode(App->Program.findClass("A"));
  NodeId Root = R->Graph->roots(Act).front();
  bool HasButton = false;
  for (NodeId D : R->Graph->descendantsOf(Root))
    if (R->Graph->node(D).Kind == NodeKind::ViewAlloc)
      HasButton = true;
  EXPECT_TRUE(HasButton);
}

TEST(SolverTest, SameLayoutInflatedAtTwoSitesMintsFreshTrees) {
  // Two activities share one layout; each inflation site mints its own
  // view nodes, so finds stay per-activity precise (Section 4.1's
  // "fresh set of graph nodes ... at each inflation site").
  auto App = makeBundle(R"(
class A1 extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    lid := @layout/shared;
    this.setContentView(lid);
    bid := @id/ok;
    b := this.findViewById(bid);
  }
}
class A2 extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    lid := @layout/shared;
    this.setContentView(lid);
    bid := @id/ok;
    b := this.findViewById(bid);
  }
}
)",
                        {{"shared", SimpleLayout}});
  auto R = runAnalysis(*App);
  NodeId B1 = varNode(*App, *R, "A1", "onCreate", 0, "b");
  NodeId B2 = varNode(*App, *R, "A2", "onCreate", 0, "b");
  auto V1 = R->Sol->viewsAt(B1);
  auto V2 = R->Sol->viewsAt(B2);
  ASSERT_EQ(V1.size(), 1u);
  ASSERT_EQ(V2.size(), 1u);
  EXPECT_NE(V1.front(), V2.front()) << "sites must not share view nodes";
}

TEST(SolverTest, IncludedLayoutsParticipateInFindView) {
  // A titlebar included via <include> is searchable through the includer.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var tid: int;
    var t: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    tid := @id/bar_text;
    t := this.findViewById(tid);
  }
}
)",
                        {{"titlebar", R"(
<RelativeLayout android:id="@+id/bar">
  <TextView android:id="@+id/bar_text" />
</RelativeLayout>
)"},
                         {"main", R"(
<LinearLayout>
  <include layout="@layout/titlebar" />
  <Button android:id="@+id/ok" />
</LinearLayout>
)"}});
  auto R = runAnalysis(*App);
  NodeId T = varNode(*App, *R, "A", "onCreate", 0, "t");
  EXPECT_EQ(viewClassesAt(*R, T),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, ListenerSubclassHandlersDispatchCorrectly) {
  // The registered listener is a subclass inheriting onClick from a base
  // listener class; callback wiring must dispatch to the inherited body.
  auto App = makeBundle(R"(
class BaseListener implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) {
    var x: android.view.View;
    x := v;
  }
}
class SubListener extends BaseListener {
}
class A extends android.app.Activity {
  method onCreate() {
    var b: android.widget.Button;
    var l: SubListener;
    b := new android.widget.Button;
    l := new SubListener;
    b.setOnClickListener(l);
  }
}
)");
  auto R = runAnalysis(*App);
  // The inherited handler's parameter receives the button, and its `this`
  // holds the SubListener allocation.
  NodeId Param = varNode(*App, *R, "BaseListener", "onClick", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, Param),
            std::vector<std::string>{"android.widget.Button"});
  NodeId ThisH = varNode(*App, *R, "BaseListener", "onClick", 1, "this");
  ASSERT_EQ(R->Sol->valuesAt(ThisH).size(), 1u);
  EXPECT_EQ(R->Graph->node(*R->Sol->valuesAt(ThisH).begin()).Klass->name(),
            "SubListener");
}

TEST(SolverTest, InterfaceTypedListenerVariable) {
  // The listener flows through an interface-typed variable; registration
  // still associates the concrete allocation.
  auto App = makeBundle(R"(
class L implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) { }
}
class A extends android.app.Activity {
  method onCreate() {
    var b: android.widget.Button;
    var l: L;
    var iface: android.view.View.OnClickListener;
    b := new android.widget.Button;
    l := new L;
    iface := l;
    b.setOnClickListener(iface);
  }
}
)");
  auto R = runAnalysis(*App);
  NodeId B = varNode(*App, *R, "A", "onCreate", 0, "b");
  auto Views = R->Sol->viewsAt(B);
  ASSERT_EQ(Views.size(), 1u);
  ASSERT_EQ(R->Graph->listeners(Views.front()).size(), 1u);
  EXPECT_EQ(
      R->Graph->node(R->Graph->listeners(Views.front()).front()).Klass->name(),
      "L");
}

TEST(SolverTest, AdapterItemViewsBecomeListChildren) {
  // listView.setAdapter(adapter): the adapter's getView result hangs
  // under the list, so activity-wide finds reach row content.
  auto App = makeBundle(R"(
class RowAdapter extends android.widget.BaseAdapter {
  method getView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.view.View;
    var lid: int;
    lid := @layout/row;
    v := inflater.inflate(lid);
    return v;
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var lvid: int;
    var lv: android.widget.ListView;
    var ad: RowAdapter;
    var rid: int;
    var found: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    lvid := @id/list;
    lv := this.findViewById(lvid);
    ad := new RowAdapter;
    lv.setAdapter(ad);
    rid := @id/row_text;
    found := this.findViewById(rid);
  }
}
)",
                        {{"main",
                          "<LinearLayout><ListView android:id=\"@+id/list\"/>"
                          "</LinearLayout>"},
                         {"row", "<TextView android:id=\"@+id/row_text\"/>"}});
  auto R = runAnalysis(*App);
  // The adapter factory's `this` receives the allocation.
  NodeId ThisA = varNode(*App, *R, "RowAdapter", "getView", 1, "this");
  EXPECT_EQ(R->Sol->valuesAt(ThisA).size(), 1u);
  // The row content is found through the activity hierarchy.
  NodeId Found = varNode(*App, *R, "A", "onCreate", 0, "found");
  EXPECT_EQ(viewClassesAt(*R, Found),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(SolverTest, TextWatcherHandlersReachableWithoutViewParam) {
  // TextWatcher callbacks carry no view parameter; the watcher object
  // still reaches the handlers' `this` via the implicit callback.
  auto App = makeBundle(R"(
class Watcher implements android.text.TextWatcher {
  method beforeTextChanged() { }
  method onTextChanged() { }
  method afterTextChanged() { }
}
class A extends android.app.Activity {
  method onCreate() {
    var t: android.widget.EditText;
    var w: Watcher;
    t := new android.widget.EditText;
    w := new Watcher;
    t.addTextChangedListener(w);
  }
}
)");
  auto R = runAnalysis(*App);
  for (const char *Handler :
       {"beforeTextChanged", "onTextChanged", "afterTextChanged"}) {
    NodeId ThisH = varNode(*App, *R, "Watcher", Handler, 0, "this");
    EXPECT_EQ(R->Sol->valuesAt(ThisH).size(), 1u) << Handler;
  }
  // The EditText is associated with the watcher.
  NodeId T = varNode(*App, *R, "A", "onCreate", 0, "t");
  ASSERT_EQ(R->Sol->viewsAt(T).size(), 1u);
  EXPECT_EQ(R->Graph->listeners(R->Sol->viewsAt(T).front()).size(), 1u);
}

TEST(SolverTest, SameNamedRegistrationsDisambiguatedByArgType) {
  // CompoundButton and RadioGroup both declare
  // setOnCheckedChangeListener, with different listener interfaces; the
  // classifier must pick by the argument's declared type.
  auto App = makeBundle(R"(
class BoxL implements android.widget.CompoundButton.OnCheckedChangeListener {
  method onCheckedChanged(v: android.view.View) { }
}
class GroupL implements android.widget.RadioGroup.OnCheckedChangeListener {
  method onCheckedChanged(v: android.view.View) { }
}
class A extends android.app.Activity {
  method onCreate() {
    var cb: android.widget.CheckBox;
    var rg: android.widget.RadioGroup;
    var bl: BoxL;
    var gl: GroupL;
    cb := new android.widget.CheckBox;
    rg := new android.widget.RadioGroup;
    bl := new BoxL;
    gl := new GroupL;
    cb.setOnCheckedChangeListener(bl);
    rg.setOnCheckedChangeListener(gl);
  }
}
)");
  auto R = runAnalysis(*App);
  auto Ops = R->Sol->opsOfKind(android::OpKind::SetListener);
  ASSERT_EQ(Ops.size(), 2u);
  std::set<std::string> Interfaces;
  for (const auto *Op : Ops)
    Interfaces.insert(Op->Spec.Listener->InterfaceName);
  EXPECT_EQ(Interfaces,
            (std::set<std::string>{
                "android.widget.CompoundButton.OnCheckedChangeListener",
                "android.widget.RadioGroup.OnCheckedChangeListener"}));
  // Both handlers receive their widgets.
  NodeId BoxParam = varNode(*App, *R, "BoxL", "onCheckedChanged", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, BoxParam),
            std::vector<std::string>{"android.widget.CheckBox"});
  NodeId GroupParam = varNode(*App, *R, "GroupL", "onCheckedChanged", 1, "v");
  EXPECT_EQ(viewClassesAt(*R, GroupParam),
            std::vector<std::string>{"android.widget.RadioGroup"});
}

TEST(SolverTest, MetricsAbsentWithoutOps) {
  auto App = makeBundle("class A { method m() { } }");
  auto R = runAnalysis(*App);
  auto M = R->metrics();
  EXPECT_EQ(M.AvgReceivers, 0.0);
  EXPECT_FALSE(M.AvgParameters.has_value());
  EXPECT_FALSE(M.AvgResults.has_value());
  EXPECT_FALSE(M.AvgListeners.has_value());
}

TEST(SolverTest, StatsArePopulated) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  auto R = runAnalysis(*App);
  EXPECT_GT(R->Stats.Propagations, 0ul);
  EXPECT_GT(R->Stats.OpFirings, 0ul);
  EXPECT_EQ(R->Stats.InflationCount, 2ul);
  EXPECT_FALSE(R->Stats.HitWorkLimit);
  EXPECT_GE(R->BuildSeconds, 0.0);
  EXPECT_GE(R->SolveSeconds, 0.0);
}

} // namespace
