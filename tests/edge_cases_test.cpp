//===- edge_cases_test.cpp - Remaining edge and failure paths ---*- C++ -*-===//

#include "analysis/AppStats.h"
#include "corpus/ConnectBot.h"
#include "dex/DexLite.h"
#include "parser/Parser.h"
#include "xml/Xml.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::test;

namespace {

//===----------------------------------------------------------------------===//
// Solver limits and degenerate inputs
//===----------------------------------------------------------------------===//

TEST(EdgeCaseTest, WorkLimitStopsSolverGracefully) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  AnalysisOptions Options;
  Options.Budget.MaxWorkItems = 3; // absurdly small
  auto R = analysis::GuiAnalysis::run(App->Program, *App->Layouts,
                                      App->Android, Options, App->Diags);
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->Stats.HitWorkLimit);
  EXPECT_EQ(R->Stats.BudgetTripped, support::BudgetReason::WorkItems);
  EXPECT_EQ(R->Sol->fidelity(), Fidelity::TruncatedBudget);
  EXPECT_GE(App->Diags.warningCount(), 1u);
}

TEST(EdgeCaseTest, EmptyProgramAnalyzes) {
  auto App = std::make_unique<corpus::AppBundle>();
  App->Android.install(App->Program);
  ASSERT_TRUE(App->finalize());
  auto R = runAnalysis(*App);
  EXPECT_EQ(R->Sol->ops().size(), 0u);
  EXPECT_EQ(R->Stats.InflationCount, 0u);
}

TEST(EdgeCaseTest, ActivityWithoutLayoutAnalyzes) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var bid: int;
    var b: android.view.View;
    bid := @id/never_inflated;
    b := this.findViewById(bid);
  }
}
)");
  auto R = runAnalysis(*App);
  graph::NodeId B = varNode(*App, *R, "A", "onCreate", 0, "b");
  EXPECT_TRUE(R->Sol->viewsAt(B).empty());
}

TEST(EdgeCaseTest, RecursiveHelperTerminates) {
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.view.View;
    v := this.spin(v);
  }
  method spin(p: android.view.View): android.view.View {
    var r: android.view.View;
    r := this.spin(p);
    return r;
  }
}
)");
  auto R = runAnalysis(*App);
  EXPECT_FALSE(R->Stats.HitWorkLimit);
}

TEST(EdgeCaseTest, SelfReferentialAddViewIgnored) {
  // v.addView(v) must not create a self parent-child edge.
  auto App = makeBundle(R"(
class A extends android.app.Activity {
  method onCreate() {
    var v: android.widget.LinearLayout;
    v := new android.widget.LinearLayout;
    v.addView(v);
  }
}
)");
  auto R = runAnalysis(*App);
  graph::NodeId V = varNode(*App, *R, "A", "onCreate", 0, "v");
  auto Views = R->Sol->viewsAt(V);
  ASSERT_EQ(Views.size(), 1u);
  EXPECT_TRUE(R->Graph->children(Views.front()).empty());
}

TEST(EdgeCaseTest, MutualAddViewCycleTerminates) {
  // a.addView(b); b.addView(a): a structural cycle the descendants walk
  // and the hierarchy printer must both survive.
  auto App = makeBundle(R"(
class X extends android.app.Activity {
  method onCreate() {
    var a: android.widget.LinearLayout;
    var b: android.widget.LinearLayout;
    a := new android.widget.LinearLayout;
    b := new android.widget.LinearLayout;
    a.addView(b);
    b.addView(a);
  }
}
)");
  auto R = runAnalysis(*App);
  graph::NodeId A = varNode(*App, *R, "X", "onCreate", 0, "a");
  auto Views = R->Sol->viewsAt(A);
  ASSERT_EQ(Views.size(), 1u);
  EXPECT_EQ(R->Graph->descendantsOf(Views.front()).size(), 2u);
}

//===----------------------------------------------------------------------===//
// AppStats printing
//===----------------------------------------------------------------------===//

TEST(EdgeCaseTest, AppStatsRowsFormat) {
  auto App = corpus::buildConnectBotExample();
  auto R = runAnalysis(*App);
  AppStats Stats = collectAppStats("ConnectBot", App->Program, *R);
  EXPECT_EQ(Stats.InflViews, 6u);
  EXPECT_EQ(Stats.AllocViews, 1u);
  EXPECT_EQ(Stats.Listeners, 1u);
  EXPECT_EQ(Stats.OpFindView, 4u);
  EXPECT_EQ(Stats.OpAddView, 2u);

  std::ostringstream OS;
  printAppStatsHeader(OS);
  printAppStatsRow(OS, Stats);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("ConnectBot"), std::string::npos);
  EXPECT_NE(Text.find("2/5"), std::string::npos);  // ids L/V
  EXPECT_NE(Text.find("6/1"), std::string::npos);  // views I/A
}

//===----------------------------------------------------------------------===//
// Frontend robustness: no crashes on garbage input
//===----------------------------------------------------------------------===//

std::string garbageString(uint32_t Seed, size_t Length) {
  static const char Alphabet[] =
      "abcXYZ019 .,:;(){}<>=@/#\"'\n\t$-_*&\\";
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<size_t> Pick(0, sizeof(Alphabet) - 2);
  std::string Out;
  for (size_t I = 0; I < Length; ++I)
    Out.push_back(Alphabet[Pick(Rng)]);
  return Out;
}

class FrontendFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FrontendFuzz, AliteParserNeverCrashes) {
  ir::Program P;
  DiagnosticEngine Diags;
  parser::parseAlite(garbageString(GetParam(), 512), "fuzz.alite", P, Diags);
  // Any outcome is fine as long as there is no crash and every failure is
  // reported through the diagnostics engine.
  SUCCEED();
}

TEST_P(FrontendFuzz, DexParserNeverCrashes) {
  ir::Program P;
  DiagnosticEngine Diags;
  dex::parseDexLite(garbageString(GetParam() + 1000, 512), "fuzz.dexlite", P,
                    Diags);
  SUCCEED();
}

TEST_P(FrontendFuzz, XmlParserNeverCrashes) {
  DiagnosticEngine Diags;
  xml::parseXml(garbageString(GetParam() + 2000, 512), "fuzz.xml", Diags);
  SUCCEED();
}

TEST_P(FrontendFuzz, MutilatedAliteReportsErrors) {
  // Take valid source and truncate it at a pseudo-random point: the
  // parser must fail cleanly (diagnostics, no crash) or succeed on a
  // still-valid prefix.
  std::string Valid = corpus::connectBotAliteSource();
  std::mt19937 Rng(GetParam());
  size_t Cut = std::uniform_int_distribution<size_t>(1, Valid.size() - 1)(Rng);
  ir::Program P;
  DiagnosticEngine Diags;
  android::AndroidModel AM;
  AM.install(P);
  bool Ok = parser::parseAlite(Valid.substr(0, Cut), "cut.alite", P, Diags);
  if (!Ok) {
    EXPECT_TRUE(Diags.hasErrors());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzz, ::testing::Range(0u, 25u));

} // namespace
