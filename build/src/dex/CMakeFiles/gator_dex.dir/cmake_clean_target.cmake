file(REMOVE_RECURSE
  "libgator_dex.a"
)
