//===- bench_scalability.cpp - Cost scaling ---------------------*- C++ -*-===//
//
// Google-benchmark suite measuring how analysis cost scales with
// application size, supporting the paper's claim that "even for the
// larger programs, the analysis time is very practical" (Section 5).
// Sweeps the number of activities (each adding a layout, find-view,
// listener, and programmatic-view traffic) and the filler-code volume,
// and times the pipeline phases separately.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "analysis/PhasedSolver.h"
#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"

#include <benchmark/benchmark.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

namespace {

AppSpec sweepSpec(unsigned Activities, unsigned FillerClasses) {
  AppSpec Spec;
  Spec.Name = "Sweep";
  Spec.Seed = 7;
  Spec.Activities = Activities;
  Spec.FillerClasses = FillerClasses;
  Spec.MethodsPerFillerClass = 5;
  Spec.ViewsPerLayout = 12;
  Spec.IdsPerLayout = 7;
  Spec.DirectFindsPerActivity = 3;
  Spec.ListenersPerActivity = 2;
  Spec.ProgViewsPerActivity = 1;
  Spec.InflateItemsPerActivity = 1;
  return Spec;
}

/// Full pipeline (generation excluded) vs. number of activities.
void BM_AnalyzeByActivities(benchmark::State &State) {
  unsigned Activities = static_cast<unsigned>(State.range(0));
  GeneratedApp App = generateApp(sweepSpec(Activities, 50));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Result =
        GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                         App.Bundle->Android, AnalysisOptions(), Diags);
    benchmark::DoNotOptimize(Result);
  }
  State.SetComplexityN(Activities);
}
BENCHMARK(BM_AnalyzeByActivities)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// Full pipeline vs. non-GUI code volume (the analysis should be barely
/// sensitive to it: op-free code only contributes propagation edges).
void BM_AnalyzeByFillerClasses(benchmark::State &State) {
  unsigned Fillers = static_cast<unsigned>(State.range(0));
  GeneratedApp App = generateApp(sweepSpec(6, Fillers));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Result =
        GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                         App.Bundle->Android, AnalysisOptions(), Diags);
    benchmark::DoNotOptimize(Result);
  }
  State.SetComplexityN(Fillers);
}
BENCHMARK(BM_AnalyzeByFillerClasses)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

/// App generation cost (corpus infrastructure, not the analysis).
void BM_GenerateApp(benchmark::State &State) {
  AppSpec Spec = sweepSpec(static_cast<unsigned>(State.range(0)), 100);
  for (auto _ : State) {
    GeneratedApp App = generateApp(Spec);
    benchmark::DoNotOptimize(App.Bundle);
  }
}
BENCHMARK(BM_GenerateApp)->Arg(4)->Arg(16);

/// Fused worklist solver vs. the literal phased pipeline — same solution
/// (differential tests prove it), different engines.
void BM_FusedSolver(benchmark::State &State) {
  GeneratedApp App = generateApp(sweepSpec(16, 200));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Result =
        GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                         App.Bundle->Android, AnalysisOptions(), Diags);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_FusedSolver);

void BM_PhasedSolver(benchmark::State &State) {
  GeneratedApp App = generateApp(sweepSpec(16, 200));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Result = runPhasedAnalysis(App.Bundle->Program,
                                    *App.Bundle->Layouts,
                                    App.Bundle->Android, AnalysisOptions(),
                                    Diags);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_PhasedSolver);

/// Frontend micro-benchmark: lex+parse+lower the ConnectBot example.
void BM_ParseConnectBot(benchmark::State &State) {
  const char *Source = connectBotAliteSource();
  for (auto _ : State) {
    ir::Program P;
    DiagnosticEngine Diags;
    android::AndroidModel AM;
    AM.install(P);
    bool Ok = parser::parseAlite(Source, "connectbot.alite", P, Diags);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_ParseConnectBot);

} // namespace

BENCHMARK_MAIN();
