//===- property_test.cpp - Cross-corpus invariants --------------*- C++ -*-===//
//
// Parameterized property tests over the whole 20-app corpus:
//  - soundness: the analysis solution contains every ground-truth fact;
//  - ablation monotonicity: removing an analysis ingredient only grows
//    find-view result sets (the ingredients are refinements, never
//    sources of unsoundness);
//  - determinism: two runs produce identical metrics;
//  - well-formedness: parent-child edges connect views, ids attach to
//    views, roots hang off activities/dialogs.
//
//===----------------------------------------------------------------------===//

#include "analysis/SolutionChecker.h"
#include "corpus/Corpus.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::test;

namespace {

class CorpusProperty : public ::testing::TestWithParam<size_t> {
protected:
  const AppSpec &spec() const { return paperCorpus()[GetParam()]; }
};

TEST_P(CorpusProperty, GenerationAndAnalysisSucceed) {
  GeneratedApp App = generateApp(spec());
  ASSERT_FALSE(App.Bundle->Diags.hasErrors());
  auto R = runAnalysis(*App.Bundle);
  ASSERT_TRUE(R);
  EXPECT_FALSE(R->Stats.HitWorkLimit);
  EXPECT_EQ(App.Bundle->Diags.errorCount(), 0u);
}

TEST_P(CorpusProperty, SolutionIsSoundForGroundTruth) {
  GeneratedApp App = generateApp(spec());
  auto R = runAnalysis(*App.Bundle);
  for (const FindViewExpectation &E : App.Finds) {
    NodeId N = varNode(*App.Bundle, *R, E.ClassName, E.MethodName, 0,
                       E.OutVar);
    bool Found = false;
    for (NodeId V : R->Sol->viewsAt(N)) {
      const Node &Info = R->Graph->node(V);
      if (Info.Kind == NodeKind::ViewInfl && Info.LNode &&
          Info.LNode->viewIdName() == E.ViewIdName)
        Found = true;
    }
    EXPECT_TRUE(Found) << spec().Name << ": " << E.ClassName
                       << "::" << E.OutVar << " should see view id '"
                       << E.ViewIdName << "'";
  }
}

TEST_P(CorpusProperty, DirectFindsAreExact) {
  GeneratedApp App = generateApp(spec());
  auto R = runAnalysis(*App.Bundle);
  for (const FindViewExpectation &E : App.Finds) {
    if (E.ViaSharedHelper)
      continue;
    NodeId N = varNode(*App.Bundle, *R, E.ClassName, E.MethodName, 0,
                       E.OutVar);
    EXPECT_EQ(R->Sol->viewsAt(N).size(), E.ExpectedMatches)
        << spec().Name << ": " << E.ClassName << "::" << E.OutVar;
  }
}

TEST_P(CorpusProperty, AblationsOnlyGrowResultSets) {
  GeneratedApp App = generateApp(spec());
  auto Full = runAnalysis(*App.Bundle);

  for (int Which = 0; Which < 2; ++Which) {
    AnalysisOptions Ablated;
    if (Which == 0)
      Ablated.TrackViewIds = false;
    else
      Ablated.TrackHierarchy = false;
    GeneratedApp App2 = generateApp(spec());
    auto Coarse = runAnalysis(*App2.Bundle, Ablated);

    auto FullM = Full->metrics();
    auto CoarseM = Coarse->metrics();
    EXPECT_GE(CoarseM.AvgReceivers + 1e-9, FullM.AvgReceivers)
        << spec().Name << " ablation " << Which;
    if (FullM.AvgResults && CoarseM.AvgResults) {
      EXPECT_GE(*CoarseM.AvgResults + 1e-9, *FullM.AvgResults)
          << spec().Name << " ablation " << Which;
    }
  }
}

TEST_P(CorpusProperty, DeterministicMetrics) {
  GeneratedApp A = generateApp(spec());
  GeneratedApp B = generateApp(spec());
  auto RA = runAnalysis(*A.Bundle);
  auto RB = runAnalysis(*B.Bundle);
  auto MA = RA->metrics();
  auto MB = RB->metrics();
  EXPECT_DOUBLE_EQ(MA.AvgReceivers, MB.AvgReceivers);
  EXPECT_EQ(MA.AvgResults.has_value(), MB.AvgResults.has_value());
  if (MA.AvgResults) {
    EXPECT_DOUBLE_EQ(*MA.AvgResults, *MB.AvgResults);
  }
  EXPECT_EQ(RA->Graph->size(), RB->Graph->size());
  EXPECT_EQ(RA->Stats.InflationCount, RB->Stats.InflationCount);
}

TEST_P(CorpusProperty, StructuralEdgesAreWellFormed) {
  GeneratedApp App = generateApp(spec());
  auto R = runAnalysis(*App.Bundle);
  const ConstraintGraph &G = *R->Graph;
  for (NodeId Id = 0; Id < G.size(); ++Id) {
    for (NodeId Child : G.children(Id)) {
      EXPECT_TRUE(isViewNodeKind(G.node(Id).Kind));
      EXPECT_TRUE(isViewNodeKind(G.node(Child).Kind));
    }
    for (NodeId IdNode : G.viewIds(Id)) {
      EXPECT_TRUE(isViewNodeKind(G.node(Id).Kind));
      EXPECT_EQ(G.node(IdNode).Kind, NodeKind::ViewId);
    }
    for (NodeId Root : G.roots(Id)) {
      NodeKind K = G.node(Id).Kind;
      EXPECT_TRUE(K == NodeKind::Activity || K == NodeKind::Alloc);
      EXPECT_TRUE(isViewNodeKind(G.node(Root).Kind));
    }
    for (NodeId L : G.listeners(Id))
      EXPECT_TRUE(isValueNodeKind(G.node(L).Kind));
  }
}

TEST_P(CorpusProperty, SolutionIsAClosedFixedPoint) {
  // The solver's result must satisfy every Section 4.2 inference rule as
  // a closure property (nothing left to fire).
  GeneratedApp App = generateApp(spec());
  auto R = runAnalysis(*App.Bundle);
  std::vector<std::string> Violations = checkSolutionClosure(*R);
  for (const std::string &V : Violations)
    ADD_FAILURE() << spec().Name << ": " << V;

  // Also under the type filter and without the child-only refinement.
  for (int Variant = 0; Variant < 2; ++Variant) {
    AnalysisOptions Options;
    if (Variant == 0)
      Options.DeclaredTypeFilter = true;
    else
      Options.FindView3ChildOnly = false;
    GeneratedApp App2 = generateApp(spec());
    auto R2 = runAnalysis(*App2.Bundle, Options);
    EXPECT_TRUE(checkSolutionClosure(*R2).empty())
        << spec().Name << " variant " << Variant;
  }
}

TEST_P(CorpusProperty, EveryInflationBelongsToARegisteredLayout) {
  GeneratedApp App = generateApp(spec());
  auto R = runAnalysis(*App.Bundle);
  const ConstraintGraph &G = *R->Graph;
  for (NodeId V : G.nodesOfKind(NodeKind::ViewInfl)) {
    EXPECT_NE(G.node(V).LNode, nullptr);
    EXPECT_NE(G.node(V).InflateSite, InvalidNode);
    EXPECT_EQ(G.node(G.node(V).InflateSite).Kind, NodeKind::Op);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, CorpusProperty,
                         ::testing::Range<size_t>(0, 20),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paperCorpus()[Info.param].Name;
                         });

} // namespace
