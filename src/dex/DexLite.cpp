//===- DexLite.cpp - Dalvik-style bytecode frontend -------------*- C++ -*-===//

#include "dex/DexLite.h"

#include "support/Check.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace gator;
using namespace gator::dex;
using namespace gator::ir;

namespace {

//===----------------------------------------------------------------------===//
// Raw (unresolved) representation
//===----------------------------------------------------------------------===//

enum class InstrKind {
  Move,
  ConstNull,
  ConstLayout,
  ConstId,
  ConstClass,
  NewInstance,
  IGet,
  IPut,
  SGet,
  SPut,
  Invoke,
  MoveResult,
  ReturnVoid,
  Return,
};

struct RawInstr {
  InstrKind Kind;
  SourceLocation Loc;
  std::string A;                 ///< first register / name operand
  std::string B;                 ///< second register operand
  std::string Name;              ///< field / method / class / resource name
  std::vector<std::string> Regs; ///< invoke register list (Regs[0] = recv)
};

struct RawMethod {
  std::string Name;
  std::vector<std::string> ParamTypes;
  std::string RetType;
  bool IsStatic = false;
  SourceLocation Loc;
  std::vector<RawInstr> Instrs;
  /// Count from a '.registers N' directive; -1 when not declared.
  long DeclaredRegs = -1;
};

/// The dex format caps both the '.registers' count and register indexes
/// at 16 bits; anything larger in the text is a corrupt/oversized length
/// field and is rejected rather than trusted.
constexpr long MaxRegisterCount = 65535;

struct RawField {
  std::string Name;
  std::string Type;
  bool IsStatic = false;
};

struct RawClass {
  std::string Name;
  std::string Super;
  std::vector<std::string> Interfaces;
  bool IsInterface = false;
  SourceLocation Loc;
  std::vector<RawField> Fields;
  std::vector<RawMethod> Methods;
};

//===----------------------------------------------------------------------===//
// Line tokenizer
//===----------------------------------------------------------------------===//

/// Splits one line into tokens: names (letters/digits/._$<>), and the
/// punctuation ( ) { } , treated as single-character tokens. `#` starts a
/// comment.
std::vector<std::string> tokenizeLine(const std::string &Line) {
  std::vector<std::string> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    char C = Line[I];
    if (C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '(' || C == ')' || C == '{' || C == '}' || C == ',') {
      Tokens.push_back(std::string(1, C));
      ++I;
      continue;
    }
    std::string Tok;
    while (I < Line.size()) {
      char D = Line[I];
      if (std::isalnum(static_cast<unsigned char>(D)) || D == '.' ||
          D == '_' || D == '$' || D == '<' || D == '>' || D == '-') {
        Tok.push_back(D);
        ++I;
      } else {
        break;
      }
    }
    if (Tok.empty()) {
      // Unknown character: emit it so the parser reports a clean error.
      Tok.push_back(C);
      ++I;
    }
    Tokens.push_back(std::move(Tok));
  }
  return Tokens;
}

bool splitLastDot(const std::string &QName, std::string &Prefix,
                  std::string &Last) {
  size_t Pos = QName.rfind('.');
  if (Pos == std::string::npos || Pos + 1 >= QName.size())
    return false;
  Prefix = QName.substr(0, Pos);
  Last = QName.substr(Pos + 1);
  return true;
}

//===----------------------------------------------------------------------===//
// Parser: text -> RawClass list
//===----------------------------------------------------------------------===//

class DexParser {
public:
  DexParser(std::string_view Input, std::string FileName,
            DiagnosticEngine &Diags)
      : Input(Input), FileName(std::move(FileName)), Diags(Diags) {}

  bool run(std::vector<RawClass> &Out) {
    std::istringstream Stream{std::string(Input)};
    std::string Line;
    unsigned LineNo = 0;
    while (std::getline(Stream, Line)) {
      ++LineNo;
      Loc = SourceLocation(FileName, LineNo, 1);
      std::vector<std::string> Tokens = tokenizeLine(Line);
      if (Tokens.empty())
        continue;
      parseLine(Tokens, Out);
    }
    if (CurMethod)
      error("missing '.end method' at end of input");
    else if (CurClass)
      error("missing '.end class' at end of input");
    if (CurClass && !Diags.hasErrors())
      Out.push_back(std::move(*CurClass));
    return Ok && !Diags.hasErrors();
  }

private:
  void error(const std::string &Message) {
    Diags.error(Loc, Message);
    Ok = false;
  }

  bool isRegister(const std::string &Tok) const {
    return Tok.size() >= 2 && (Tok[0] == 'v' || Tok[0] == 'p') &&
           std::all_of(Tok.begin() + 1, Tok.end(), [](char C) {
             return std::isdigit(static_cast<unsigned char>(C));
           });
  }

  /// Expects Tokens[I] to be a register; reports otherwise. The index must
  /// fit the 16-bit dex limit and, when the method declared '.registers N',
  /// a vX index must lie below N.
  bool takeReg(const std::vector<std::string> &Tokens, size_t &I,
               std::string &Out) {
    if (I >= Tokens.size() || !isRegister(Tokens[I])) {
      error("expected register operand");
      return false;
    }
    const std::string &Tok = Tokens[I];
    // isRegister guarantees all digits after the v/p prefix; the length
    // guard keeps stol well away from overflow.
    long Index = Tok.size() - 1 > 6 ? MaxRegisterCount + 1
                                    : std::stol(Tok.substr(1));
    if (Index > MaxRegisterCount) {
      error("register '" + Tok + "' exceeds the dex index limit of " +
            std::to_string(MaxRegisterCount));
      return false;
    }
    if (CurMethod && CurMethod->DeclaredRegs >= 0 && Tok[0] == 'v' &&
        Index >= CurMethod->DeclaredRegs) {
      error("register '" + Tok + "' outside the declared '.registers " +
            std::to_string(CurMethod->DeclaredRegs) + "' range");
      return false;
    }
    Out = Tokens[I++];
    return true;
  }

  bool takeComma(const std::vector<std::string> &Tokens, size_t &I) {
    if (I >= Tokens.size() || Tokens[I] != ",") {
      error("expected ','");
      return false;
    }
    ++I;
    return true;
  }

  static bool isNameToken(const std::string &Tok) {
    if (Tok.empty())
      return false;
    char C = Tok[0];
    return std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
           C == '$' || C == '<';
  }

  bool takeName(const std::vector<std::string> &Tokens, size_t &I,
                std::string &Out) {
    if (I >= Tokens.size() || isRegister(Tokens[I]) ||
        !isNameToken(Tokens[I])) {
      error("expected name operand");
      return false;
    }
    Out = Tokens[I++];
    return true;
  }

  void parseLine(const std::vector<std::string> &Tokens,
                 std::vector<RawClass> &Out) {
    const std::string &Head = Tokens[0];

    if (Head == ".class" || Head == ".interface") {
      if (CurClass) {
        error("'.class' inside another class (missing '.end class'?)");
        return;
      }
      CurClass.emplace();
      CurClass->IsInterface = Head == ".interface";
      CurClass->Loc = Loc;
      size_t I = 1;
      if (!takeName(Tokens, I, CurClass->Name))
        return;
      if (I < Tokens.size() && Tokens[I] == "extends") {
        ++I;
        if (!takeName(Tokens, I, CurClass->Super))
          return;
      }
      if (I < Tokens.size() && Tokens[I] == "implements") {
        ++I;
        std::string Iface;
        if (!takeName(Tokens, I, Iface))
          return;
        CurClass->Interfaces.push_back(Iface);
        while (I < Tokens.size() && Tokens[I] == ",") {
          ++I;
          if (!takeName(Tokens, I, Iface))
            return;
          CurClass->Interfaces.push_back(Iface);
        }
      }
      return;
    }

    if (Head == ".end") {
      if (Tokens.size() < 2) {
        error("expected 'method' or 'class' after '.end'");
        return;
      }
      if (Tokens[1] == "method") {
        if (!CurMethod) {
          error("'.end method' outside a method");
          return;
        }
        CurClass->Methods.push_back(std::move(*CurMethod));
        CurMethod.reset();
        return;
      }
      if (Tokens[1] == "class") {
        if (CurMethod) {
          error("'.end class' inside a method");
          return;
        }
        if (!CurClass) {
          error("'.end class' outside a class");
          return;
        }
        Out.push_back(std::move(*CurClass));
        CurClass.reset();
        return;
      }
      error("unknown '.end' directive");
      return;
    }

    if (!CurClass) {
      error("'" + Head + "' outside a class");
      return;
    }

    if (Head == ".field") {
      RawField Field;
      size_t I = 1;
      if (I < Tokens.size() && Tokens[I] == "static") {
        Field.IsStatic = true;
        ++I;
      }
      if (!takeName(Tokens, I, Field.Name) ||
          !takeName(Tokens, I, Field.Type))
        return;
      CurClass->Fields.push_back(std::move(Field));
      return;
    }

    if (Head == ".method") {
      if (CurMethod) {
        error("'.method' inside another method");
        return;
      }
      CurMethod.emplace();
      CurMethod->Loc = Loc;
      size_t I = 1;
      if (I < Tokens.size() && Tokens[I] == "static") {
        CurMethod->IsStatic = true;
        ++I;
      }
      if (!takeName(Tokens, I, CurMethod->Name))
        return;
      if (I >= Tokens.size() || Tokens[I] != "(") {
        error("expected '(' after method name");
        return;
      }
      ++I;
      if (I < Tokens.size() && Tokens[I] != ")") {
        std::string Ty;
        if (!takeName(Tokens, I, Ty))
          return;
        CurMethod->ParamTypes.push_back(Ty);
        while (I < Tokens.size() && Tokens[I] == ",") {
          ++I;
          if (!takeName(Tokens, I, Ty))
            return;
          CurMethod->ParamTypes.push_back(Ty);
        }
      }
      if (I >= Tokens.size() || Tokens[I] != ")") {
        error("expected ')' in method signature");
        return;
      }
      ++I;
      if (I < Tokens.size())
        CurMethod->RetType = Tokens[I];
      else
        CurMethod->RetType = VoidTypeName;
      return;
    }

    if (Head == ".registers") {
      if (!CurMethod) {
        error("'.registers' outside a method");
        return;
      }
      if (Tokens.size() < 2) {
        error("'.registers' missing a count");
        return;
      }
      const std::string &Count = Tokens[1];
      bool Numeric = !Count.empty() &&
                     std::all_of(Count.begin(), Count.end(), [](char C) {
                       return std::isdigit(static_cast<unsigned char>(C));
                     });
      if (!Numeric) {
        error("'.registers' count '" + Count + "' is not a number");
        return;
      }
      long N = Count.size() > 6 ? MaxRegisterCount + 1 : std::stol(Count);
      if (N > MaxRegisterCount) {
        error("'.registers' count '" + Count +
              "' exceeds the dex limit of " +
              std::to_string(MaxRegisterCount));
        return;
      }
      if (CurMethod->DeclaredRegs >= 0) {
        error("duplicate '.registers' directive");
        return;
      }
      CurMethod->DeclaredRegs = N;
      return;
    }

    if (!CurMethod) {
      error("instruction outside a method");
      return;
    }
    parseInstruction(Tokens);
  }

  void parseInstruction(const std::vector<std::string> &Tokens) {
    RawInstr Instr;
    Instr.Loc = Loc;
    const std::string &Mnemonic = Tokens[0];
    size_t I = 1;

    auto push = [&] { CurMethod->Instrs.push_back(std::move(Instr)); };

    if (Mnemonic == "move") {
      Instr.Kind = InstrKind::Move;
      if (takeReg(Tokens, I, Instr.A) && takeComma(Tokens, I) &&
          takeReg(Tokens, I, Instr.B))
        push();
      return;
    }
    if (Mnemonic == "const-null") {
      Instr.Kind = InstrKind::ConstNull;
      if (takeReg(Tokens, I, Instr.A))
        push();
      return;
    }
    if (Mnemonic == "const-layout" || Mnemonic == "const-id" ||
        Mnemonic == "const-class" || Mnemonic == "new-instance") {
      Instr.Kind = Mnemonic == "const-layout" ? InstrKind::ConstLayout
                   : Mnemonic == "const-id"   ? InstrKind::ConstId
                   : Mnemonic == "const-class" ? InstrKind::ConstClass
                                               : InstrKind::NewInstance;
      if (takeReg(Tokens, I, Instr.A) && takeComma(Tokens, I) &&
          takeName(Tokens, I, Instr.Name))
        push();
      return;
    }
    if (Mnemonic == "iget" || Mnemonic == "iput") {
      Instr.Kind = Mnemonic == "iget" ? InstrKind::IGet : InstrKind::IPut;
      if (takeReg(Tokens, I, Instr.A) && takeComma(Tokens, I) &&
          takeReg(Tokens, I, Instr.B) && takeComma(Tokens, I) &&
          takeName(Tokens, I, Instr.Name))
        push();
      return;
    }
    if (Mnemonic == "sget" || Mnemonic == "sput") {
      Instr.Kind = Mnemonic == "sget" ? InstrKind::SGet : InstrKind::SPut;
      if (takeReg(Tokens, I, Instr.A) && takeComma(Tokens, I) &&
          takeName(Tokens, I, Instr.Name))
        push();
      return;
    }
    if (Mnemonic == "invoke") {
      Instr.Kind = InstrKind::Invoke;
      if (I >= Tokens.size() || Tokens[I] != "{") {
        error("expected '{' after 'invoke'");
        return;
      }
      ++I;
      std::string Reg;
      if (!takeReg(Tokens, I, Reg))
        return;
      Instr.Regs.push_back(Reg);
      while (I < Tokens.size() && Tokens[I] == ",") {
        ++I;
        if (!takeReg(Tokens, I, Reg))
          return;
        Instr.Regs.push_back(Reg);
      }
      if (I >= Tokens.size() || Tokens[I] != "}") {
        error("expected '}' in invoke register list");
        return;
      }
      ++I;
      if (!takeComma(Tokens, I) || !takeName(Tokens, I, Instr.Name))
        return;
      push();
      return;
    }
    if (Mnemonic == "move-result") {
      Instr.Kind = InstrKind::MoveResult;
      if (takeReg(Tokens, I, Instr.A))
        push();
      return;
    }
    if (Mnemonic == "return-void") {
      Instr.Kind = InstrKind::ReturnVoid;
      push();
      return;
    }
    if (Mnemonic == "return") {
      Instr.Kind = InstrKind::Return;
      if (takeReg(Tokens, I, Instr.A))
        push();
      return;
    }
    error("unknown instruction '" + Mnemonic + "'");
  }

  std::string_view Input;
  std::string FileName;
  DiagnosticEngine &Diags;
  SourceLocation Loc;
  std::optional<RawClass> CurClass;
  std::optional<RawMethod> CurMethod;
  bool Ok = true;
};

//===----------------------------------------------------------------------===//
// Lowering: RawClass -> IR with register type inference
//===----------------------------------------------------------------------===//

class Lowerer {
public:
  Lowerer(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run(const std::vector<RawClass> &Classes) {
    // Phase A: declare every class with fields and method signatures so
    // lowering can resolve cross references (including forward ones).
    std::vector<std::pair<const RawClass *, ClassDecl *>> Declared;
    for (const RawClass &RC : Classes) {
      ClassDecl *C = P.addClass(RC.Name, RC.IsInterface,
                                /*IsPlatform=*/false, &Diags);
      if (!C) {
        Ok = false;
        continue;
      }
      if (!RC.Super.empty())
        C->setSuperName(RC.Super);
      for (const std::string &Iface : RC.Interfaces)
        C->addInterfaceName(Iface);
      for (const RawField &F : RC.Fields)
        C->addField(F.Name, F.Type, F.IsStatic);
      for (const RawMethod &RM : RC.Methods) {
        MethodDecl *M = C->addMethod(RM.Name, RM.RetType, RM.IsStatic);
        for (size_t I = 0; I < RM.ParamTypes.size(); ++I)
          M->addParam("p" + std::to_string(I + (RM.IsStatic ? 0 : 1)),
                      RM.ParamTypes[I]);
      }
      Declared.push_back({&RC, C});
    }

    // Type inference needs supertype walks (field/method lookup through
    // `extends`), so link the hierarchy before lowering bodies. This means
    // a DexLite buffer must not reference classes of a buffer parsed
    // later; platform classes and earlier buffers are fine.
    if (!P.resolve(Diags))
      return false;

    // Phase B: lower method bodies with register typing.
    for (auto &[RC, C] : Declared)
      for (const RawMethod &RM : RC->Methods)
        lowerMethod(*C, RM);
    return Ok && !Diags.hasErrors();
  }

private:
  void error(const SourceLocation &Loc, const std::string &Message) {
    Diags.error(Loc, Message);
    Ok = false;
  }

  const ClassDecl *classOf(const std::string &TypeName) const {
    if (TypeName.empty() || isPrimitiveTypeName(TypeName))
      return nullptr;
    return P.findClass(TypeName);
  }

  /// One register binding: the inferred type and the IR variable holding
  /// the register's current value.
  struct Binding {
    std::string TypeName;
    VarId Var = InvalidVar;
  };

  void lowerMethod(ClassDecl &C, const RawMethod &RM) {
    MethodDecl *M = C.findOwnMethod(
        RM.Name, static_cast<unsigned>(RM.ParamTypes.size()));
    if (!GATOR_CHECK(M != nullptr, &Diags,
                     "method vanished between declaration and lowering; "
                     "body skipped")) {
      Ok = false;
      return;
    }
    if (RM.Instrs.empty()) {
      M->setAbstract(true);
      return;
    }

    std::unordered_map<std::string, Binding> Regs;
    std::unordered_map<std::string, unsigned> SplitCount;

    // Parameter registers: p0 = this (instance), then the formals.
    if (!RM.IsStatic)
      Regs["p0"] = Binding{C.name(), M->thisVar()};
    for (size_t I = 0; I < RM.ParamTypes.size(); ++I) {
      std::string Reg = "p" + std::to_string(I + (RM.IsStatic ? 0 : 1));
      Regs[Reg] =
          Binding{RM.ParamTypes[I], M->paramVar(static_cast<unsigned>(I))};
    }

    // Binds (or re-binds) a register at a type, splitting into a fresh IR
    // variable when the type changes.
    auto define = [&](const std::string &Reg,
                      const std::string &TypeName) -> VarId {
      auto It = Regs.find(Reg);
      if (It != Regs.end() && It->second.TypeName == TypeName)
        return It->second.Var;
      std::string VarName = Reg;
      unsigned &Count = SplitCount[Reg];
      if (Count > 0 || It != Regs.end())
        VarName += "$" + std::to_string(++Count);
      VarId V = M->addLocal(VarName, TypeName);
      Regs[Reg] = Binding{TypeName, V};
      return V;
    };

    auto use = [&](const std::string &Reg,
                   const SourceLocation &Loc) -> std::optional<Binding> {
      auto It = Regs.find(Reg);
      if (It == Regs.end()) {
        error(Loc, "use of unassigned register " + Reg + " in " +
                       M->qualifiedName());
        return std::nullopt;
      }
      return It->second;
    };

    // The invoke whose result the next move-result binds.
    struct PendingResult {
      size_t StmtIndex;
      std::string RetType;
    };
    std::optional<PendingResult> Pending;

    for (const RawInstr &Instr : RM.Instrs) {
      if (Instr.Kind != InstrKind::MoveResult)
        Pending.reset();

      switch (Instr.Kind) {
      case InstrKind::Move: {
        auto Src = use(Instr.B, Instr.Loc);
        if (!Src)
          break;
        Stmt S;
        S.Kind = StmtKind::AssignVar;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, Src->TypeName);
        S.Base = Src->Var;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::ConstNull: {
        // Keep the existing binding's type when present (null is
        // assignable to anything); otherwise bind as Object.
        auto It = Regs.find(Instr.A);
        std::string Ty =
            It != Regs.end() ? It->second.TypeName : ObjectClassName;
        Stmt S;
        S.Kind = StmtKind::AssignNull;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, Ty);
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::ConstLayout:
      case InstrKind::ConstId: {
        Stmt S;
        S.Kind = Instr.Kind == InstrKind::ConstLayout
                     ? StmtKind::AssignLayoutId
                     : StmtKind::AssignViewId;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, IntTypeName);
        S.ResourceName = Instr.Name;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::ConstClass: {
        Stmt S;
        S.Kind = StmtKind::AssignClassConst;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, "java.lang.Class");
        S.ClassName = Instr.Name;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::NewInstance: {
        Stmt S;
        S.Kind = StmtKind::AssignNew;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, Instr.Name);
        S.ClassName = Instr.Name;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::IGet: {
        auto Base = use(Instr.B, Instr.Loc);
        if (!Base)
          break;
        std::string FieldType = ObjectClassName;
        if (const ClassDecl *BC = classOf(Base->TypeName)) {
          if (const FieldDecl *F = BC->findField(Instr.Name))
            FieldType = F->typeName();
          else
            Diags.warning(Instr.Loc, "unknown field '" + Instr.Name +
                                         "' on type '" + Base->TypeName +
                                         "'; inferring java.lang.Object");
        }
        Stmt S;
        S.Kind = StmtKind::LoadField;
        S.Loc = Instr.Loc;
        S.Lhs = define(Instr.A, FieldType);
        S.Base = Base->Var;
        S.FieldName = Instr.Name;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::IPut: {
        auto Val = use(Instr.A, Instr.Loc);
        auto Base = use(Instr.B, Instr.Loc);
        if (!Val || !Base)
          break;
        Stmt S;
        S.Kind = StmtKind::StoreField;
        S.Loc = Instr.Loc;
        S.Base = Base->Var;
        S.FieldName = Instr.Name;
        S.Rhs = Val->Var;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::SGet:
      case InstrKind::SPut: {
        std::string ClassName, FieldName;
        if (!splitLastDot(Instr.Name, ClassName, FieldName)) {
          error(Instr.Loc, "static access needs 'Class.field'");
          break;
        }
        if (Instr.Kind == InstrKind::SGet) {
          std::string FieldType = ObjectClassName;
          if (const ClassDecl *SC = P.findClass(ClassName))
            if (const FieldDecl *F = SC->findField(FieldName))
              FieldType = F->typeName();
          Stmt S;
          S.Kind = StmtKind::LoadStaticField;
          S.Loc = Instr.Loc;
          S.Lhs = define(Instr.A, FieldType);
          S.ClassName = ClassName;
          S.FieldName = FieldName;
          M->body().push_back(std::move(S));
        } else {
          auto Val = use(Instr.A, Instr.Loc);
          if (!Val)
            break;
          Stmt S;
          S.Kind = StmtKind::StoreStaticField;
          S.Loc = Instr.Loc;
          S.ClassName = ClassName;
          S.FieldName = FieldName;
          S.Rhs = Val->Var;
          M->body().push_back(std::move(S));
        }
        break;
      }
      case InstrKind::Invoke: {
        auto Recv = use(Instr.Regs[0], Instr.Loc);
        if (!Recv)
          break;
        Stmt S;
        S.Kind = StmtKind::Invoke;
        S.Loc = Instr.Loc;
        S.Base = Recv->Var;
        S.MethodName = Instr.Name;
        bool ArgsOk = true;
        for (size_t I = 1; I < Instr.Regs.size(); ++I) {
          auto Arg = use(Instr.Regs[I], Instr.Loc);
          if (!Arg) {
            ArgsOk = false;
            break;
          }
          S.Args.push_back(Arg->Var);
        }
        if (!ArgsOk)
          break;

        // Infer the result type for a following move-result.
        std::string RetType = ObjectClassName;
        if (const ClassDecl *RC = classOf(Recv->TypeName))
          if (const MethodDecl *Callee = RC->findMethod(
                  Instr.Name, static_cast<unsigned>(S.Args.size())))
            RetType = Callee->returnTypeName();

        M->body().push_back(std::move(S));
        Pending = PendingResult{M->body().size() - 1, RetType};
        break;
      }
      case InstrKind::MoveResult: {
        if (!Pending) {
          error(Instr.Loc, "move-result without preceding invoke");
          break;
        }
        VarId Dst = define(Instr.A, Pending->RetType);
        M->body()[Pending->StmtIndex].Lhs = Dst;
        Pending.reset();
        break;
      }
      case InstrKind::ReturnVoid: {
        Stmt S;
        S.Kind = StmtKind::Return;
        S.Loc = Instr.Loc;
        M->body().push_back(std::move(S));
        break;
      }
      case InstrKind::Return: {
        auto Val = use(Instr.A, Instr.Loc);
        if (!Val)
          break;
        Stmt S;
        S.Kind = StmtKind::Return;
        S.Loc = Instr.Loc;
        S.Lhs = Val->Var;
        M->body().push_back(std::move(S));
        break;
      }
      }
    }
  }

  Program &P;
  DiagnosticEngine &Diags;
  bool Ok = true;
};

} // namespace

bool gator::dex::parseDexLite(std::string_view Input,
                              const std::string &FileName,
                              ir::Program &Program,
                              DiagnosticEngine &Diags) {
  std::vector<RawClass> Classes;
  DexParser Parser(Input, FileName, Diags);
  if (!Parser.run(Classes))
    return false;
  return Lowerer(Program, Diags).run(Classes);
}
