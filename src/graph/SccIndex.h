//===- SccIndex.h - Flow-graph SCC condensation -----------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SCC condensation of the constraint graph's value-flow topology, and a
/// topological stratification of the condensed DAG (docs/PARALLEL.md).
/// The parallel solve engine uses it as its scheduling index: work for
/// one round is grouped by stratum so each classification wave touches a
/// topologically coherent slice of the graph, tiny SCCs are batched into
/// one grain, and the SCC/strata shape is exported as solver telemetry.
///
/// The index is advisory, never semantic: the engine's replay commits in
/// exact serial order regardless of how the strata were scheduled, so a
/// stale (but accepted) stratification can cost locality, not correctness.
/// That is what makes the cheap incremental maintenance below sound — an
/// edge consistent with the current layering is accepted without any
/// recomputation, and anything else just marks the index for a full
/// recondensation at the solver's next synchronization point.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_GRAPH_SCCINDEX_H
#define GATOR_GRAPH_SCCINDEX_H

#include "graph/ConstraintGraph.h"
#include "support/Arena.h"

#include <cstdint>

namespace gator {
namespace graph {

/// Tarjan condensation over flow edges, with per-SCC topological strata.
///
/// Op nodes never carry propagated values (the solver skips them as flow
/// successors), so edges into an Op node are ignored: every Op node is a
/// trivial singleton of stratum 0 and the condensation describes exactly
/// the value-flow topology the delta drain walks.
class SccIndex {
public:
  /// Full (re)condensation: iterative Tarjan over the flow successors of
  /// every current node, then a longest-path layering of the condensed
  /// DAG (stratum(S) = 1 + max over predecessor SCCs, sources at 0).
  /// Counted as a recondensation after the first build.
  void build(const ConstraintGraph &G);

  bool built() const { return EverBuilt; }

  /// Extends the node tables for nodes minted after the last build. Fresh
  /// nodes become singleton SCCs at stratum 0 until an edge says more.
  void ensure(size_t NodeCount);

  /// Records a new flow edge. Returns true when the edge is consistent
  /// with the current condensation (same SCC, or strictly increasing
  /// stratum — a DAG edge the existing layering already orders); false
  /// marks the index dirty for a full recondensation. A target not seen
  /// by the last build is lifted to stratum(From) + 1, which keeps pure
  /// fan-out growth (listener-callback wiring into freshly minted nodes)
  /// incremental.
  bool noteEdge(NodeId From, NodeId To);

  /// True when noteEdge saw an order-violating edge since the last build.
  bool dirty() const { return Dirty; }

  /// Churn policy: rebuild when dirty, or when more than ~25% new flow
  /// edges arrived since the last build (a heavily grown graph deserves a
  /// fresh layering even if every edge happened to be accepted).
  bool needsRebuild(size_t CurrentFlowEdges) const {
    return Dirty || (built() && CurrentFlowEdges > EdgesAtBuild +
                                    EdgesAtBuild / 4 + 16);
  }

  uint32_t sccOf(NodeId N) const { return NodeScc[N]; }
  uint32_t stratumOf(NodeId N) const { return NodeStratum[N]; }

  uint32_t sccCount() const { return NumSccs; }
  uint32_t strataCount() const { return NumStrata; }
  /// Size-histogram summary: singletons, small (2..8), large (9+), max.
  uint32_t singletonSccs() const { return Singletons; }
  uint32_t smallSccs() const { return Small; }
  uint32_t largeSccs() const { return Large; }
  uint32_t maxSccSize() const { return MaxSize; }

  unsigned long recondensations() const { return Recondensations; }
  unsigned long incrementalAccepts() const { return IncrementalAccepts; }

private:
  /// Backs the per-node tables; reset() on every build keeps the largest
  /// slab, so steady-state recondensation allocates nothing.
  support::Arena Mem;
  support::ArenaVector<uint32_t> NodeScc;
  support::ArenaVector<uint32_t> NodeStratum;
  /// 1 when the node was the source of an accepted noteEdge; a fresh sink
  /// may be lifted to a later stratum only while this stays 0 (raising a
  /// node with successors could reorder it past them).
  support::ArenaVector<uint8_t> NodeHasSucc;
  /// Nodes below this count were covered by the last build(); stratum 0
  /// means "topological source" for them, not "provisional".
  size_t StableNodeCount = 0;

  uint32_t NumSccs = 0;
  uint32_t NumStrata = 0;
  uint32_t Singletons = 0;
  uint32_t Small = 0;
  uint32_t Large = 0;
  uint32_t MaxSize = 0;
  size_t EdgesAtBuild = 0;
  bool Dirty = false;
  bool EverBuilt = false;

  unsigned long Recondensations = 0;
  unsigned long IncrementalAccepts = 0;
};

} // namespace graph
} // namespace gator

#endif // GATOR_GRAPH_SCCINDEX_H
