//===- Baseline.h - Plain reference analysis without GUI model --*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison point motivating the paper: a traditional
/// control-flow/context-insensitive, field-based reference analysis for the
/// plain-Java sublanguage (Section 4: "A similar problem for the
/// plain-Java language JLite can be solved using standard existing
/// techniques"), applied *as-is* to Android code. It does not model layout
/// inflation, activity lifecycles, view hierarchies, ids, or listener
/// callbacks — exactly the gaps Section 1 lists when explaining why
/// "existing reference analyses cannot be applied directly to Android".
///
/// Two treatments of unmodeled platform calls are provided:
///  - Unmodeled: platform calls produce no values and trigger no
///    callbacks. Unsound for Android (inflated views and framework-driven
///    control flow simply do not exist in the solution).
///  - SummaryObjects: each platform call returning a reference type mints
///    one opaque per-site summary object of the declared return type.
///    Sound-ish but useless for GUI reasoning: every findViewById result
///    is a distinct opaque blob unrelated to any layout.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_BASELINE_BASELINE_H
#define GATOR_BASELINE_BASELINE_H

#include "android/AndroidModel.h"
#include "hier/ClassHierarchy.h"
#include "ir/Ir.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gator {
namespace baseline {

enum class PlatformCallTreatment {
  Unmodeled,      ///< platform calls return nothing
  SummaryObjects, ///< one opaque object per platform call site
};

struct BaselineOptions {
  PlatformCallTreatment Treatment = PlatformCallTreatment::Unmodeled;
  /// Treat every method as entry (seed `this` of every method with its
  /// class's possible allocations)? The plain analysis has no notion of
  /// framework entry points; with false, only main-like flow exists.
  bool SeedAllMethods = false;
};

/// Comparison measurements against the GUI analysis.
struct BaselineResult {
  /// Number of find-view call sites (findViewById and friends).
  unsigned FindViewSites = 0;
  /// ... of which the baseline assigns any value at all to the result.
  unsigned FindViewSitesWithValues = 0;
  /// ... of which the baseline relates the result to a layout-declared
  /// view (always 0: the baseline cannot, by construction).
  unsigned FindViewSitesResolvedToLayoutViews = 0;
  /// Number of set-listener call sites.
  unsigned SetListenerSites = 0;
  /// ... of which both the view and the listener operand have a known
  /// value. Even then the baseline has no association semantics: it never
  /// connects the view to the handler or triggers the callback.
  unsigned SetListenerSitesWithOperands = 0;
  /// Handler methods (listener-interface implementations) whose `this`
  /// receives at least one object — i.e. event-handling code the analysis
  /// knows can run. The GUI analysis seeds these via SETLISTENER.
  unsigned HandlersReached = 0;
  unsigned HandlersTotal = 0;
  /// Total points-to facts (var/field node, value) computed.
  unsigned long TotalFacts = 0;
};

/// Runs the baseline analysis.
BaselineResult runBaseline(const ir::Program &P,
                           const android::AndroidModel &AM,
                           const BaselineOptions &Options,
                           DiagnosticEngine &Diags);

} // namespace baseline
} // namespace gator

#endif // GATOR_BASELINE_BASELINE_H
