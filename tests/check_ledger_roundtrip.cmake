# Run-ledger round trip (docs/OBSERVABILITY.md, "Run ledger & reports"):
# a batch run's --ledger-out document must be byte-identical at every
# -j and --solve-jobs value (written under --no-times, which suppresses
# the volatile fields), `gator_cli report` must render it in both
# formats, a ledger self-diff must be empty (exit 0), a diff against a
# run with different analysis options must be refused (exit 2), and a
# warm --cache-dir pass must stamp its records "hit" while staying
# field-identical to the cold pass. Invoked by ctest with
# -DCLI=<gator_cli> -DDIR=<batch input dir> -DWORK=<scratch dir>.

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

# --- 1. byte-identity across -j and --solve-jobs ----------------------------
foreach(jobs 1 2 4 8)
  execute_process(
    COMMAND ${CLI} --batch --no-times -j ${jobs} ${DIR}
            --ledger-out=${WORK}/ledger_j${jobs}.jsonl
    RESULT_VARIABLE run_code
    OUTPUT_QUIET ERROR_QUIET)
  if(run_code GREATER 1)
    message(FATAL_ERROR "gator_cli --batch -j ${jobs} failed: ${run_code}")
  endif()
endforeach()
foreach(jobs 2 4 8)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK}/ledger_j1.jsonl ${WORK}/ledger_j${jobs}.jsonl
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "ledger differs between -j 1 and -j ${jobs}")
  endif()
endforeach()
execute_process(
  COMMAND ${CLI} --batch --no-times --solve-jobs 4 ${DIR}
          --ledger-out=${WORK}/ledger_sj4.jsonl
  RESULT_VARIABLE run_code
  OUTPUT_QUIET ERROR_QUIET)
if(run_code GREATER 1)
  message(FATAL_ERROR "gator_cli --solve-jobs 4 failed: ${run_code}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/ledger_j1.jsonl ${WORK}/ledger_sj4.jsonl
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "ledger differs between --solve-jobs 1 and 4")
endif()

# --- 2. report renders in both formats --------------------------------------
execute_process(
  COMMAND ${CLI} report ${WORK}/ledger_j1.jsonl
  RESULT_VARIABLE report_code
  OUTPUT_VARIABLE report_text)
if(NOT report_code EQUAL 0)
  message(FATAL_ERROR "report (text) failed: ${report_code}")
endif()
string(FIND "${report_text}" "fleet report" found)
if(found EQUAL -1)
  message(FATAL_ERROR "text report missing its headline:\n${report_text}")
endif()
execute_process(
  COMMAND ${CLI} report ${WORK}/ledger_j1.jsonl --report-format json
  RESULT_VARIABLE report_code
  OUTPUT_FILE ${WORK}/report.json)
if(NOT report_code EQUAL 0)
  message(FATAL_ERROR "report (json) failed: ${report_code}")
endif()

# --- 3. self-diff is empty; option skew is refused --------------------------
execute_process(
  COMMAND ${CLI} report --diff
          ${WORK}/ledger_j1.jsonl ${WORK}/ledger_j4.jsonl
  RESULT_VARIABLE diff_code
  OUTPUT_VARIABLE diff_text)
if(NOT diff_code EQUAL 0)
  message(FATAL_ERROR
    "self-diff exited ${diff_code} (expected 0):\n${diff_text}")
endif()
string(FIND "${diff_text}" "no differences" found)
if(found EQUAL -1)
  message(FATAL_ERROR "self-diff output unexpected:\n${diff_text}")
endif()

execute_process(
  COMMAND ${CLI} --batch --no-times --no-unknown-sources ${DIR}
          --ledger-out=${WORK}/ledger_other.jsonl
  RESULT_VARIABLE run_code
  OUTPUT_QUIET ERROR_QUIET)
if(run_code GREATER 1)
  message(FATAL_ERROR "option-skew run failed: ${run_code}")
endif()
execute_process(
  COMMAND ${CLI} report --diff
          ${WORK}/ledger_j1.jsonl ${WORK}/ledger_other.jsonl
  RESULT_VARIABLE diff_code
  OUTPUT_QUIET ERROR_QUIET)
if(NOT diff_code EQUAL 2)
  message(FATAL_ERROR
    "diff of differently-optioned ledgers exited ${diff_code} (expected 2)")
endif()

# --- 4. warm cache passes stamp hits, stay field-identical ------------------
execute_process(
  COMMAND ${CLI} --batch --no-times --cache-dir ${WORK}/cache ${DIR}
          --ledger-out=${WORK}/ledger_cold.jsonl
  RESULT_VARIABLE run_code
  OUTPUT_QUIET ERROR_QUIET)
if(run_code GREATER 1)
  message(FATAL_ERROR "cold cache run failed: ${run_code}")
endif()
execute_process(
  COMMAND ${CLI} --batch --no-times --cache-dir ${WORK}/cache ${DIR}
          --ledger-out=${WORK}/ledger_warm.jsonl
  RESULT_VARIABLE run_code
  OUTPUT_QUIET ERROR_QUIET)
if(run_code GREATER 1)
  message(FATAL_ERROR "warm cache run failed: ${run_code}")
endif()
file(READ ${WORK}/ledger_cold.jsonl cold_text)
file(READ ${WORK}/ledger_warm.jsonl warm_text)
string(FIND "${cold_text}" "\"cache\":\"miss\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "cold ledger carries no miss records")
endif()
string(FIND "${warm_text}" "\"cache\":\"hit\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "warm ledger carries no hit records")
endif()
string(FIND "${warm_text}" "\"cache\":\"miss\"" found)
if(NOT found EQUAL -1)
  message(FATAL_ERROR "warm ledger still carries miss records")
endif()
# miss -> hit is not a regression: the cold-vs-warm diff must be empty.
execute_process(
  COMMAND ${CLI} report --diff
          ${WORK}/ledger_cold.jsonl ${WORK}/ledger_warm.jsonl
  RESULT_VARIABLE diff_code
  OUTPUT_QUIET ERROR_QUIET)
if(NOT diff_code EQUAL 0)
  message(FATAL_ERROR
    "cold-vs-warm diff exited ${diff_code} (expected 0)")
endif()

# --- 5. JSON report schema (python3, when present) --------------------------
find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(STATUS "python3 not found; skipping report schema validation")
  return()
endif()
file(WRITE "${WORK}/validate_report.py" "
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['report_format'] == 1, doc['report_format']
ledger = doc['ledger']
for key in ('ledger_format', 'tool', 'options_digest', 'no_times'):
    assert key in ledger, 'ledger header missing %s' % key
assert doc['apps'] > 0
for key in ('degraded', 'generation_failures', 'cache', 'by_fidelity',
            'by_exit_code', 'unknown_by_reason', 'fields', 'outliers'):
    assert key in doc, 'report missing %s' % key
for f in doc['fields']:
    for key in ('field', 'count', 'sum', 'p50', 'p90', 'p99', 'max'):
        assert key in f, 'field summary missing %s: %r' % (key, f)
    assert f['count'] == doc['apps']
names = {f['field'] for f in doc['fields']}
assert 'propagations' in names and 'arena_bytes' in names
assert 'solve_seconds' not in names, 'volatile field in a no-times report'
for dim in doc['outliers']:
    assert dim['top'], 'empty outlier dimension %r' % dim['dimension']
    vals = [row['value'] for row in dim['top']]
    assert vals == sorted(vals, reverse=True), 'outliers not ranked'
print('report OK: %d apps, %d fields' % (doc['apps'], len(doc['fields'])))
")
execute_process(
  COMMAND ${PYTHON3} ${WORK}/validate_report.py ${WORK}/report.json
  RESULT_VARIABLE schema_ok
  OUTPUT_VARIABLE schema_out
  ERROR_VARIABLE schema_err)
if(NOT schema_ok EQUAL 0)
  message(FATAL_ERROR "report schema validation failed:\n${schema_err}")
endif()

message(STATUS "run ledger byte-identical at every -j/--solve-jobs; "
               "reports and diffs behave")
