# Empty compiler generated dependencies file for gator_parser.
# This may be replaced when dependencies are built.
