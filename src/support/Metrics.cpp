//===- Metrics.cpp - Typed metrics registry ---------------------*- C++ -*-===//

#include "support/Metrics.h"

#include "support/Json.h"

#include <algorithm>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace gator;
using namespace gator::support;

uint64_t gator::support::currentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(Usage.ru_maxrss); // bytes on Darwin
#else
  return static_cast<uint64_t>(Usage.ru_maxrss) * 1024; // KiB on Linux
#endif
#else
  return 0;
#endif
}

void Histogram::merge(const Histogram &Other) {
  if (Other.Bounds != Bounds) {
    // Mismatched shapes would corrupt buckets; fold only the scalar
    // moments so the total count stays honest.
    Sum += Other.Sum;
    Count += Other.Count;
    return;
  }
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  Sum += Other.Sum;
  Count += Other.Count;
}

double Histogram::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  const double Rank = Q * static_cast<double>(Count);
  uint64_t Cum = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    const double Prev = static_cast<double>(Cum);
    Cum += Counts[I];
    if (static_cast<double>(Cum) < Rank)
      continue;
    if (I >= Bounds.size()) // +Inf bucket: clamp to the last finite bound
      return Bounds.empty() ? 0 : static_cast<double>(Bounds.back());
    const double Upper = static_cast<double>(Bounds[I]);
    if (Counts[I] == 0) // only reachable at Rank == 0
      return Upper;
    const double Lower = I == 0 ? 0.0 : static_cast<double>(Bounds[I - 1]);
    return Lower + (Upper - Lower) * (Rank - Prev) /
                       static_cast<double>(Counts[I]);
  }
  return Bounds.empty() ? 0 : static_cast<double>(Bounds.back());
}

bool Histogram::addRaw(const std::vector<uint64_t> &RawCounts, uint64_t RawSum,
                       uint64_t RawCount) {
  if (RawCounts.size() != Counts.size())
    return false;
  for (size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += RawCounts[I];
  Sum += RawSum;
  Count += RawCount;
  return true;
}

MetricsRegistry::Instrument &
MetricsRegistry::intern(const std::string &Name, const std::string &Help,
                        Kind K, MetricUnit Unit, const std::string &LabelKey,
                        const std::string &LabelValue) {
  std::string Key = Name;
  Key.push_back('\0');
  Key += LabelValue;
  auto [It, Inserted] = Index.try_emplace(Key, Instruments.size());
  if (Inserted) {
    Instrument I;
    I.Name = Name;
    I.Help = Help;
    I.LabelKey = LabelKey;
    I.LabelValue = LabelValue;
    I.K = K;
    I.Unit = Unit;
    Instruments.push_back(std::move(I));
  }
  return Instruments[It->second];
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help, MetricUnit Unit,
                                  const std::string &LabelKey,
                                  const std::string &LabelValue) {
  return intern(Name, Help, Kind::Counter, Unit, LabelKey, LabelValue).C;
}

Gauge &MetricsRegistry::gauge(const std::string &Name, const std::string &Help,
                              Gauge::Merge Merge, MetricUnit Unit) {
  Instrument &I =
      intern(Name, Help, Kind::Gauge, Unit, std::string(), std::string());
  I.GaugeMerge = Merge;
  return I.G;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::string &Help,
                                      const std::vector<uint64_t> &Bounds) {
  Instrument &I = intern(Name, Help, Kind::Histogram, MetricUnit::None,
                         std::string(), std::string());
  if (I.H.bounds().empty() && !Bounds.empty())
    I.H = Histogram(Bounds);
  return I.H;
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  for (const Instrument &O : Other.Instruments) {
    Instrument &I = intern(O.Name, O.Help, O.K, O.Unit, O.LabelKey,
                           O.LabelValue);
    I.GaugeMerge = O.GaugeMerge;
    switch (O.K) {
    case Kind::Counter:
      I.C.add(O.C.value());
      break;
    case Kind::Gauge:
      switch (O.GaugeMerge) {
      case Gauge::Merge::Max:
        I.G.setMax(O.G.value());
        break;
      case Gauge::Merge::Sum:
        I.G.add(O.G.value());
        break;
      case Gauge::Merge::Last:
        I.G.set(O.G.value());
        break;
      }
      break;
    case Kind::Histogram:
      if (I.H.bounds().empty())
        I.H = Histogram(O.H.bounds());
      I.H.merge(O.H);
      break;
    }
  }
}

std::vector<size_t> MetricsRegistry::sortedIndices(bool IncludeTimes) const {
  std::vector<size_t> Order;
  Order.reserve(Instruments.size());
  for (size_t I = 0; I < Instruments.size(); ++I)
    if (IncludeTimes || (Instruments[I].Unit != MetricUnit::Seconds &&
                         Instruments[I].Unit != MetricUnit::BytesVolatile))
      Order.push_back(I);
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const Instrument &IA = Instruments[A], &IB = Instruments[B];
    if (IA.Name != IB.Name)
      return IA.Name < IB.Name;
    return IA.LabelValue < IB.LabelValue;
  });
  return Order;
}

namespace {

/// Fixed-precision double rendering so exported documents are
/// byte-deterministic across platforms and locales.
std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

const char *kindName(bool IsCounter, bool IsHistogram) {
  return IsHistogram ? "histogram" : (IsCounter ? "counter" : "gauge");
}

} // namespace

void MetricsRegistry::writeJson(std::ostream &OS, bool IncludeTimes) const {
  JsonWriter W(OS);
  W.beginObject();
  W.key("metrics");
  W.beginArray();
  for (size_t Idx : sortedIndices(IncludeTimes)) {
    const Instrument &I = Instruments[Idx];
    W.beginObject();
    W.field("name", I.Name);
    if (!I.LabelKey.empty()) {
      W.key("labels");
      W.beginObject();
      W.field(I.LabelKey, I.LabelValue);
      W.endObject();
    }
    W.field("type", kindName(I.K == Kind::Counter, I.K == Kind::Histogram));
    W.field("help", I.Help);
    switch (I.K) {
    case Kind::Counter:
      W.field("value", static_cast<unsigned long long>(I.C.value()));
      break;
    case Kind::Gauge:
      // Seconds gauges are real-valued (fixed-precision for byte-stable
      // output); count-valued gauges are integral.
      W.key("value");
      if (I.Unit == MetricUnit::Seconds)
        W.rawNumber(formatDouble(I.G.value()));
      else
        W.value(static_cast<long long>(I.G.value()));
      break;
    case Kind::Histogram: {
      W.key("buckets");
      W.beginArray();
      const auto &Bounds = I.H.bounds();
      const auto &Counts = I.H.bucketCounts();
      uint64_t Cum = 0;
      for (size_t B = 0; B < Counts.size(); ++B) {
        Cum += Counts[B];
        W.beginObject();
        if (B < Bounds.size())
          W.field("le", static_cast<unsigned long long>(Bounds[B]));
        else
          W.field("le", "+Inf");
        W.field("count", static_cast<unsigned long long>(Cum));
        W.endObject();
      }
      W.endArray();
      W.field("sum", static_cast<unsigned long long>(I.H.sum()));
      W.field("count", static_cast<unsigned long long>(I.H.count()));
      break;
    }
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

void MetricsRegistry::writePrometheus(std::ostream &OS,
                                      bool IncludeTimes) const {
  std::string LastHeader;
  for (size_t Idx : sortedIndices(IncludeTimes)) {
    const Instrument &I = Instruments[Idx];
    // Labeled series of one metric share a single HELP/TYPE header.
    if (I.Name != LastHeader) {
      OS << "# HELP " << I.Name << ' ' << I.Help << '\n';
      OS << "# TYPE " << I.Name << ' '
         << kindName(I.K == Kind::Counter, I.K == Kind::Histogram) << '\n';
      LastHeader = I.Name;
    }
    std::string Label;
    if (!I.LabelKey.empty())
      Label = "{" + I.LabelKey + "=\"" + I.LabelValue + "\"}";
    switch (I.K) {
    case Kind::Counter:
      OS << I.Name << Label << ' ' << I.C.value() << '\n';
      break;
    case Kind::Gauge:
      if (I.Unit == MetricUnit::Seconds)
        OS << I.Name << Label << ' ' << formatDouble(I.G.value()) << '\n';
      else
        OS << I.Name << Label << ' '
           << static_cast<long long>(I.G.value()) << '\n';
      break;
    case Kind::Histogram: {
      const auto &Bounds = I.H.bounds();
      const auto &Counts = I.H.bucketCounts();
      uint64_t Cum = 0;
      for (size_t B = 0; B < Counts.size(); ++B) {
        Cum += Counts[B];
        OS << I.Name << "_bucket{le=\"";
        if (B < Bounds.size())
          OS << Bounds[B];
        else
          OS << "+Inf";
        OS << "\"} " << Cum << '\n';
      }
      OS << I.Name << "_sum " << I.H.sum() << '\n';
      OS << I.Name << "_count " << I.H.count() << '\n';
      // Derived quantile gauges (docs/OBSERVABILITY.md): interpolated
      // from the fixed buckets, rendered only when the histogram saw
      // observations so an idle export stays its historical shape.
      if (I.H.count() > 0) {
        static const struct {
          const char *Suffix;
          double Q;
        } Quantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
        for (const auto &QS : Quantiles) {
          const std::string QName = I.Name + QS.Suffix;
          OS << "# HELP " << QName << ' ' << I.Help
             << " (quantile estimate from fixed buckets)" << '\n';
          OS << "# TYPE " << QName << " gauge" << '\n';
          OS << QName << ' ' << formatDouble(I.H.quantile(QS.Q)) << '\n';
        }
        LastHeader.clear(); // the next instrument re-emits its header
      }
      break;
    }
    }
  }
}
