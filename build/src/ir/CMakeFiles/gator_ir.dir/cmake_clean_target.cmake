file(REMOVE_RECURSE
  "libgator_ir.a"
)
