file(REMOVE_RECURSE
  "CMakeFiles/gator_graph.dir/ConstraintGraph.cpp.o"
  "CMakeFiles/gator_graph.dir/ConstraintGraph.cpp.o.d"
  "libgator_graph.a"
  "libgator_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
