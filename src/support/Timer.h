//===- Timer.h - Wall-clock timing helper -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by the benchmark harness to report
/// per-phase analysis times (Table 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_TIMER_H
#define GATOR_SUPPORT_TIMER_H

#include <chrono>

namespace gator {

/// Measures elapsed wall-clock time from construction or the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace gator

#endif // GATOR_SUPPORT_TIMER_H
