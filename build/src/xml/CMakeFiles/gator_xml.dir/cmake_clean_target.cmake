file(REMOVE_RECURSE
  "libgator_xml.a"
)
