//===- ConnectBot.h - The paper's Figure 1 running example ------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the running example of Section 2 (Figure 1), derived from
/// ConnectBot: ConsoleActivity with the act_console / item_terminal
/// layouts, the programmatically created TerminalView, and the
/// EscapeButtonListener click handler. The ALite source and the two layout
/// XML files are embedded as text and go through the real frontends.
///
/// Two deliberate deviations from the figure:
///  - The helper method (Figure 1 lines 3-7) is named `findTerminalView`
///    instead of overriding `findViewById`, so that lines 10/13 remain
///    platform find-view operations on the activity (which is how Section
///    2's text describes them: "Such calls use a view id to search ... the
///    hierarchy associated with the activity").
///  - The programmatic TerminalView gets a fresh id `terminal_view`
///    instead of reusing `console_flip` (line 22). Reusing the id would —
///    under any flow-insensitive static matching — make the activity-wide
///    search at line 10 alias the flipper with the terminal, which is
///    inconsistent with the 1.00-across-the-board ConnectBot precision the
///    paper's Table 2 reports.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_CORPUS_CONNECTBOT_H
#define GATOR_CORPUS_CONNECTBOT_H

#include "corpus/AppBundle.h"

#include <memory>

namespace gator {
namespace corpus {

/// The embedded ALite source of the example (exposed for tests/examples).
const char *connectBotAliteSource();
/// The embedded act_console layout XML.
const char *connectBotActConsoleXml();
/// The embedded item_terminal layout XML.
const char *connectBotItemTerminalXml();

/// Parses and finalizes the example; returns null (with diagnostics in the
/// bundle) on failure.
std::unique_ptr<AppBundle> buildConnectBotExample();

} // namespace corpus
} // namespace gator

#endif // GATOR_CORPUS_CONNECTBOT_H
