//===- manifest_test.cpp - AndroidManifest reader tests ---------*- C++ -*-===//

#include "android/Manifest.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::android;

namespace {

const char *FullManifest = R"(
<manifest package="com.example.app">
  <application>
    <activity android:name=".MainActivity">
      <intent-filter>
        <action android:name="android.intent.action.MAIN" />
        <category android:name="android.intent.category.LAUNCHER" />
      </intent-filter>
    </activity>
    <activity android:name="com.example.app.DetailActivity" />
    <activity android:name=".SettingsActivity">
      <intent-filter>
        <action android:name="android.intent.action.VIEW" />
      </intent-filter>
    </activity>
  </application>
</manifest>
)";

TEST(ManifestTest, ParsesActivitiesAndLauncher) {
  DiagnosticEngine Diags;
  auto M = parseManifest(FullManifest, "AndroidManifest.xml", Diags);
  ASSERT_TRUE(M.has_value());
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(M->Package, "com.example.app");
  ASSERT_EQ(M->Activities.size(), 3u);
  EXPECT_EQ(M->Activities[0].ClassName, "com.example.app.MainActivity");
  EXPECT_TRUE(M->Activities[0].IsLauncher);
  EXPECT_EQ(M->Activities[1].ClassName, "com.example.app.DetailActivity");
  EXPECT_FALSE(M->Activities[1].IsLauncher);
  // VIEW-only intent filter is not a launcher.
  EXPECT_FALSE(M->Activities[2].IsLauncher);
  ASSERT_TRUE(M->launcherActivity().has_value());
  EXPECT_EQ(*M->launcherActivity(), "com.example.app.MainActivity");
}

TEST(ManifestTest, RelativeNamesNeedPackage) {
  DiagnosticEngine Diags;
  auto M = parseManifest(R"(
<manifest>
  <application>
    <activity android:name="Absolute" />
  </application>
</manifest>
)",
                         "m.xml", Diags);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Activities[0].ClassName, "Absolute");
  EXPECT_FALSE(M->launcherActivity().has_value());
}

TEST(ManifestTest, WrongRootIsError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseManifest("<application/>", "m.xml", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ManifestTest, MissingApplicationIsError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseManifest("<manifest package=\"p\"/>", "m.xml", Diags).has_value());
}

TEST(ManifestTest, ActivityWithoutNameWarns) {
  DiagnosticEngine Diags;
  auto M = parseManifest(R"(
<manifest package="p">
  <application>
    <activity />
  </application>
</manifest>
)",
                         "m.xml", Diags);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(M->Activities.empty());
  EXPECT_EQ(Diags.warningCount(), 1u);
}

TEST(ManifestTest, MalformedXmlIsError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseManifest("<manifest><application>", "m.xml", Diags)
                   .has_value());
}

} // namespace
