file(REMOVE_RECURSE
  "libgator_android.a"
)
