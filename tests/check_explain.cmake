# End-to-end provenance check (docs/OBSERVABILITY.md): `gator_cli
# --explain` on the full sample app must print a derivation tree for the
# resolved FindView fact of the go button — the FindView conclusion, its
# inflation premise, and a Seed axiom at the bottom. Invoked by ctest
# with -DCLI=<gator_cli> -DAPP=<sample_full_app dir>.

execute_process(
  COMMAND ${CLI} ${APP} --explain go@HomeActivity
  OUTPUT_VARIABLE run_out
  RESULT_VARIABLE run_code)
if(NOT run_code EQUAL 0)
  message(FATAL_ERROR "gator_cli --explain failed: ${run_code}")
endif()

foreach(needle
    "explain 'go@HomeActivity':"
    "flowsTo(go@HomeActivity.onCreate/0, Button~infl"
    "[FindView]"
    "[Inflate]"
    "[Seed]"
    "hasId(Button~infl")
  string(FIND "${run_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "--explain output is missing \"${needle}\":\n${run_out}")
  endif()
endforeach()

message(STATUS "--explain printed the FindView derivation tree")
