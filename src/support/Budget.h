//===- Budget.h - Resource budgets for fail-soft analysis -------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for the analysis pipeline (docs/ROBUSTNESS.md). A
/// BudgetPolicy bundles every limit a caller may impose — work items,
/// wall-clock deadline, graph size caps, cooperative cancellation — and a
/// BudgetTracker enforces one policy over one run with a hot path cheap
/// enough for the solver's inner loop (a decrement and branch; the clock
/// and the caps are consulted only at slice refills and checkpoints).
///
/// Exhaustion is sticky and carries a reason; the solver translates it
/// into a TruncatedBudget fidelity marker on the Solution rather than
/// aborting, so a tripped budget still yields a usable partial result.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_BUDGET_H
#define GATOR_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>

namespace gator {
namespace support {

/// Why a budget tripped (None while within every limit).
enum class BudgetReason : unsigned char {
  None,
  WorkItems,  ///< the work-item budget ran out
  Deadline,   ///< the wall-clock deadline passed
  GraphNodes, ///< the constraint graph outgrew the node cap
  GraphEdges, ///< the constraint graph outgrew the edge cap
  Cancelled,  ///< the caller's cancellation flag was raised
};

/// Human-readable label ("work-items", "deadline", ...).
const char *budgetReasonName(BudgetReason Reason);

/// The batch-wide deadline for \p MaxWallSeconds from now, or nullopt when
/// the knob is off. Drivers compute this once before fanning a batch out
/// and store it in every task's BudgetPolicy::SharedDeadline.
std::optional<std::chrono::steady_clock::time_point>
makeSharedDeadline(double MaxWallSeconds);

/// The limits one analysis run must respect. Zero (or null) means
/// unlimited for every knob.
struct BudgetPolicy {
  /// Maximum solver work items (worklist pops / sweep visits). The
  /// historical MaxWorkItems safety valve, generalized. 0 = unlimited.
  unsigned long MaxWorkItems = 50'000'000;

  /// Wall-clock deadline in seconds from tracker construction; checked
  /// at slice refills and checkpoints, never per work item. <= 0 = none.
  double MaxWallSeconds = 0.0;

  /// Absolute wall-clock deadline shared by every tracker in a batch
  /// (docs/PARALLEL.md). Computed once before the fan-out so all tasks
  /// race the same clock regardless of start order or job count; takes
  /// precedence over MaxWallSeconds. Per-task limits (work items, graph
  /// caps) are NOT shared — each task gets a fresh allowance
  /// (docs/ROBUSTNESS.md, "Batch deadline semantics").
  std::optional<std::chrono::steady_clock::time_point> SharedDeadline;

  /// Constraint-graph size caps, checked at checkpoints (op firings,
  /// structure rounds, phase boundaries). 0 = unlimited.
  size_t MaxGraphNodes = 0;
  size_t MaxGraphEdges = 0;

  /// Cooperative cancellation: when non-null and set, the run winds down
  /// at the next checkpoint/refill with BudgetReason::Cancelled.
  const std::atomic<bool> *CancelFlag = nullptr;
};

/// Enforces one BudgetPolicy over one run. Work items are charged through
/// an inline slice countdown; every SliceInterval items (or sooner when
/// the work budget is nearly spent) the slow path commits the slice and
/// consults the clock and the cancellation flag.
class BudgetTracker {
public:
  explicit BudgetTracker(const BudgetPolicy &Policy);

  /// Charges one work item. Returns false once the budget is exhausted;
  /// the failing item (and everything after it) must not run.
  bool charge() {
    if (FastRemaining != 0) {
      --FastRemaining;
      return true;
    }
    return refillSlice();
  }

  /// Deadline / cancellation / graph-cap check for phase boundaries and
  /// op firings. Does not charge work. Returns false once exhausted.
  bool checkpoint(size_t GraphNodes, size_t GraphEdges);

  bool exhausted() const {
    return Reason.load(std::memory_order_relaxed) != BudgetReason::None;
  }
  BudgetReason reason() const {
    return Reason.load(std::memory_order_relaxed);
  }

  /// Work items successfully charged so far.
  unsigned long workCharged() const {
    return Committed + (SliceSize - FastRemaining);
  }

  /// Manually trips the budget (e.g. an enclosing pipeline or another
  /// thread cancelling this task). Idempotent; the first reason wins.
  /// Safe to call from any thread — Reason is atomic, and the owning
  /// thread observes the trip at its next charge slow path or checkpoint
  /// (everything else in the tracker stays thread-confined).
  void trip(BudgetReason R) {
    BudgetReason Expected = BudgetReason::None;
    Reason.compare_exchange_strong(Expected, R, std::memory_order_relaxed);
  }

private:
  /// Items handed out per slice; bounds how stale the clock check gets.
  static constexpr unsigned long SliceInterval = 1024;

  bool refillSlice();
  bool overDeadlineOrCancelled();

  BudgetPolicy Policy;
  std::atomic<BudgetReason> Reason{BudgetReason::None};
  unsigned long FastRemaining = 0; ///< charges left in the current slice
  unsigned long SliceSize = 0;     ///< size the current slice started at
  unsigned long Committed = 0;     ///< work from fully-drained slices
  std::chrono::steady_clock::time_point Deadline;
  bool HasDeadline = false;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_BUDGET_H
