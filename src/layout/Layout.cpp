//===- Layout.cpp - Layout definitions and registry -------------*- C++ -*-===//

#include "layout/Layout.h"

#include "xml/Xml.h"

#include <algorithm>

using namespace gator;
using namespace gator::layout;

//===----------------------------------------------------------------------===//
// LayoutNode
//===----------------------------------------------------------------------===//

std::unique_ptr<LayoutNode> LayoutNode::clone() const {
  auto Copy = std::make_unique<LayoutNode>(ViewClassName, ViewIdName, Loc);
  Copy->IncludeLayoutName = IncludeLayoutName;
  Copy->OnClickHandlerName = OnClickHandlerName;
  Copy->Merge = Merge;
  for (const auto &Child : Children)
    Copy->addChild(Child->clone());
  return Copy;
}

unsigned LayoutNode::subtreeSize() const {
  unsigned Count = isMerge() ? 0 : 1;
  for (const auto &Child : Children)
    Count += Child->subtreeSize();
  return Count;
}

//===----------------------------------------------------------------------===//
// LayoutRegistry
//===----------------------------------------------------------------------===//

LayoutDef *LayoutRegistry::add(const std::string &Name,
                               std::unique_ptr<LayoutNode> Root,
                               DiagnosticEngine &Diags) {
  if (ByName.count(Name)) {
    Diags.error("duplicate layout '" + Name + "'");
    return nullptr;
  }
  if (!Root) {
    Diags.error("layout '" + Name + "' has no root");
    return nullptr;
  }
  ResourceId Id = Resources.internLayoutId(Name);
  Defs.push_back(std::make_unique<LayoutDef>(Name, Id, std::move(Root)));
  LayoutDef *Def = Defs.back().get();
  ByName.emplace(Name, Def);
  return Def;
}

LayoutDef *LayoutRegistry::findByName(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : It->second;
}

LayoutDef *LayoutRegistry::findById(ResourceId Id) const {
  std::optional<std::string> Name = Resources.layoutName(Id);
  if (!Name)
    return nullptr;
  return findByName(*Name);
}

bool LayoutRegistry::resolveIncludesIn(LayoutDef &Def, LayoutNode &Node,
                                       std::vector<std::string> &Stack,
                                       DiagnosticEngine &Diags) {
  // Recurse first over the current children; include expansion below
  // installs already-resolved subtrees.
  for (const auto &Child : Node.children())
    if (!resolveIncludesIn(Def, *Child, Stack, Diags))
      return false;

  // Expand include placeholders among the children.
  std::vector<std::unique_ptr<LayoutNode>> OldChildren = Node.takeChildren();
  for (auto &Child : OldChildren) {
    if (!Child->isInclude()) {
      Node.addChild(std::move(Child));
      continue;
    }
    const std::string Target = Child->includeLayoutName();
    if (std::find(Stack.begin(), Stack.end(), Target) != Stack.end()) {
      Diags.error(Child->loc(), "include cycle through layout '" + Target +
                                    "' in layout '" + Def.name() + "'");
      return false;
    }
    LayoutDef *TargetDef = findByName(Target);
    if (!TargetDef) {
      Diags.error(Child->loc(), "include of unknown layout '" + Target +
                                    "' in layout '" + Def.name() + "'");
      return false;
    }
    IncludeTargets.insert(Target);
    Stack.push_back(Target);
    bool Ok = resolveIncludesIn(*TargetDef, *TargetDef->root(), Stack, Diags);
    Stack.pop_back();
    if (!Ok)
      return false;

    std::unique_ptr<LayoutNode> Copy = TargetDef->root()->clone();
    if (Copy->isMerge()) {
      // <merge>: splice the included children directly.
      for (auto &Spliced : Copy->takeChildren())
        Node.addChild(std::move(Spliced));
    } else {
      // The includer may override the included root's id.
      if (Child->hasViewId())
        Copy->setViewIdName(Child->viewIdName());
      Node.addChild(std::move(Copy));
    }
  }
  return true;
}

bool LayoutRegistry::resolveIncludes(DiagnosticEngine &Diags) {
  for (const auto &Def : Defs) {
    std::vector<std::string> Stack{Def->name()};

    // A root-level include placeholder is replaced by the target tree.
    // Chains of root includes are followed with cycle detection.
    while (Def->root()->isInclude()) {
      const std::string Target = Def->root()->includeLayoutName();
      if (std::find(Stack.begin(), Stack.end(), Target) != Stack.end()) {
        Diags.error(Def->root()->loc(),
                    "include cycle through layout '" + Target + "'");
        return false;
      }
      IncludeTargets.insert(Target);
      Stack.push_back(Target);
      LayoutDef *TargetDef = findByName(Target);
      if (!TargetDef) {
        Diags.error(Def->root()->loc(),
                    "include of unknown layout '" + Target + "'");
        return false;
      }
      std::string OverrideId = Def->root()->viewIdName();
      std::unique_ptr<LayoutNode> Copy = TargetDef->root()->clone();
      if (!OverrideId.empty() && !Copy->isMerge())
        Copy->setViewIdName(OverrideId);
      Def->setRoot(std::move(Copy));
    }

    if (!resolveIncludesIn(*Def, *Def->root(), Stack, Diags))
      return false;
  }

  // Intern every view id appearing in any resolved layout.
  for (const auto &Def : Defs) {
    std::vector<const LayoutNode *> Work{Def->root()};
    while (!Work.empty()) {
      const LayoutNode *N = Work.back();
      Work.pop_back();
      if (N->hasViewId())
        Resources.internViewId(N->viewIdName());
      for (const auto &Child : N->children())
        Work.push_back(Child.get());
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// XML conversion
//===----------------------------------------------------------------------===//

namespace {

/// Extracts "name" out of "@+id/name" or "@id/name"; "" otherwise.
std::string parseIdRef(const std::string &Value) {
  std::string_view V = Value;
  if (V.rfind("@+id/", 0) == 0)
    return std::string(V.substr(5));
  if (V.rfind("@id/", 0) == 0)
    return std::string(V.substr(4));
  return std::string();
}

/// Extracts "name" out of "@layout/name"; "" otherwise.
std::string parseLayoutRef(const std::string &Value) {
  std::string_view V = Value;
  if (V.rfind("@layout/", 0) == 0)
    return std::string(V.substr(8));
  return std::string();
}

std::unique_ptr<LayoutNode> convert(const xml::XmlNode &Elem,
                                    DiagnosticEngine &Diags) {
  std::string IdName;
  if (const std::string *IdAttr = Elem.findAttr("android:id")) {
    IdName = parseIdRef(*IdAttr);
    if (IdName.empty())
      Diags.warning(Elem.loc(),
                    "unrecognized android:id value '" + *IdAttr + "'");
  }

  if (Elem.tag() == "include") {
    const std::string *LayoutAttr = Elem.findAttr("layout");
    std::string Target = LayoutAttr ? parseLayoutRef(*LayoutAttr) : "";
    if (Target.empty()) {
      Diags.error(Elem.loc(), "<include> requires layout=\"@layout/name\"");
      return nullptr;
    }
    auto Node = std::make_unique<LayoutNode>("", IdName, Elem.loc());
    Node->setIncludeLayoutName(Target);
    return Node;
  }

  std::string ClassName = Elem.tag();
  bool IsMerge = ClassName == "merge";
  if (IsMerge)
    ClassName = "";

  auto Node = std::make_unique<LayoutNode>(ClassName, IdName, Elem.loc());
  Node->setMerge(IsMerge);
  if (const std::string *OnClick = Elem.findAttr("android:onClick"))
    Node->setOnClickHandlerName(*OnClick);
  for (const auto &Child : Elem.children()) {
    std::unique_ptr<LayoutNode> ChildNode = convert(*Child, Diags);
    if (!ChildNode)
      return nullptr;
    Node->addChild(std::move(ChildNode));
  }
  return Node;
}

} // namespace

std::unique_ptr<LayoutNode> gator::layout::layoutFromXml(
    const xml::XmlNode &Doc, DiagnosticEngine &Diags) {
  return convert(Doc, Diags);
}

LayoutDef *gator::layout::readLayoutXml(LayoutRegistry &Registry,
                                        const std::string &Name,
                                        std::string_view XmlText,
                                        DiagnosticEngine &Diags) {
  std::unique_ptr<xml::XmlNode> Doc =
      xml::parseXml(XmlText, Name + ".xml", Diags);
  if (!Doc)
    return nullptr;
  std::unique_ptr<LayoutNode> Root = layoutFromXml(*Doc, Diags);
  if (!Root)
    return nullptr;
  return Registry.add(Name, std::move(Root), Diags);
}
