//===- AppBundle.h - A complete analyzable application ----------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles everything one analysis run needs: the ALite program (with the
/// platform model installed), the layout registry with its resource table,
/// and a bound AndroidModel. Produced by the ConnectBot example builder
/// and by the synthetic corpus generator.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_CORPUS_APPBUNDLE_H
#define GATOR_CORPUS_APPBUNDLE_H

#include "android/AndroidModel.h"
#include "ir/Ir.h"
#include "layout/Layout.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace gator {
namespace corpus {

/// One ready-to-analyze application.
class AppBundle {
public:
  AppBundle()
      : Layouts(std::make_unique<layout::LayoutRegistry>(Resources)) {}

  std::string Name;
  ir::Program Program;
  layout::ResourceTable Resources;
  std::unique_ptr<layout::LayoutRegistry> Layouts;
  android::AndroidModel Android;
  DiagnosticEngine Diags;

  /// Resolves the program, resolves layout includes, and binds the Android
  /// model. Returns false (check Diags) on error.
  bool finalize() {
    if (!Program.resolve(Diags))
      return false;
    if (!Layouts->resolveIncludes(Diags))
      return false;
    return Android.bind(Program, Diags);
  }

  AppBundle(const AppBundle &) = delete;
  AppBundle &operator=(const AppBundle &) = delete;
};

} // namespace corpus
} // namespace gator

#endif // GATOR_CORPUS_APPBUNDLE_H
