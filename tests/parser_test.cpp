//===- parser_test.cpp - ALite parser unit tests ----------------*- C++ -*-===//

#include "ir/Ir.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::ir;
using namespace gator::parser;

namespace {

/// Parses source expecting success; returns the Program.
std::unique_ptr<Program> parseOk(const std::string &Source) {
  auto P = std::make_unique<Program>();
  DiagnosticEngine Diags;
  bool Ok = parseAlite(Source, "t.alite", *P, Diags);
  if (!Ok || Diags.hasErrors()) {
    std::ostringstream OS;
    Diags.print(OS);
    ADD_FAILURE() << "parse failed:\n" << OS.str();
  }
  return P;
}

/// Parses source expecting at least one error.
void parseBad(const std::string &Source) {
  Program P;
  DiagnosticEngine Diags;
  bool Ok = parseAlite(Source, "t.alite", P, Diags);
  EXPECT_TRUE(!Ok || Diags.hasErrors()) << "expected parse error";
}

TEST(ParserTest, EmptyClass) {
  auto P = parseOk("class A { }");
  ASSERT_NE(P->findClass("A"), nullptr);
  EXPECT_FALSE(P->findClass("A")->isInterface());
}

TEST(ParserTest, QualifiedClassNamesAndHeritage) {
  auto P = parseOk("interface pkg.I { }\n"
                   "class pkg.sub.A extends pkg.B implements pkg.I, pkg.J "
                   "{ }");
  ClassDecl *A = P->findClass("pkg.sub.A");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->superName(), "pkg.B");
  ASSERT_EQ(A->interfaceNames().size(), 2u);
  EXPECT_EQ(A->interfaceNames()[0], "pkg.I");
  EXPECT_EQ(A->interfaceNames()[1], "pkg.J");
  EXPECT_TRUE(P->findClass("pkg.I")->isInterface());
}

TEST(ParserTest, PlatformModifier) {
  auto P = parseOk("platform class android.x.Y { }");
  EXPECT_TRUE(P->findClass("android.x.Y")->isPlatform());
}

TEST(ParserTest, FieldsStaticAndInstance) {
  auto P = parseOk("class A { field f: A; field static g: int; }");
  ClassDecl *A = P->findClass("A");
  ASSERT_NE(A->findOwnField("f"), nullptr);
  EXPECT_FALSE(A->findOwnField("f")->isStatic());
  ASSERT_NE(A->findOwnField("g"), nullptr);
  EXPECT_TRUE(A->findOwnField("g")->isStatic());
  EXPECT_EQ(A->findOwnField("g")->typeName(), "int");
}

TEST(ParserTest, AbstractMethodViaSemicolon) {
  auto P = parseOk("interface I { method h(v: I): I; }");
  const MethodDecl *H = P->findClass("I")->findOwnMethod("h", 1);
  ASSERT_NE(H, nullptr);
  EXPECT_TRUE(H->isAbstract());
  EXPECT_EQ(H->returnTypeName(), "I");
}

TEST(ParserTest, AllStatementForms) {
  auto P = parseOk(R"(
class A {
  field f: A;
  field static s: A;
  method m(p: A): A {
    var x: A;
    var i: int;
    x := p;
    x := new A;
    x := null;
    x := this.f;
    this.f := x;
    x := static A.s;
    static A.s := x;
    i := @layout/main;
    i := @id/button;
    x := classof A;
    x := p.m(x);
    p.m(x);
    return x;
  }
}
)");
  const MethodDecl *M = P->findClass("A")->findOwnMethod("m", 1);
  ASSERT_NE(M, nullptr);
  const auto &Body = M->body();
  ASSERT_EQ(Body.size(), 13u);
  EXPECT_EQ(Body[0].Kind, StmtKind::AssignVar);
  EXPECT_EQ(Body[1].Kind, StmtKind::AssignNew);
  EXPECT_EQ(Body[2].Kind, StmtKind::AssignNull);
  EXPECT_EQ(Body[3].Kind, StmtKind::LoadField);
  EXPECT_EQ(Body[3].FieldName, "f");
  EXPECT_EQ(Body[4].Kind, StmtKind::StoreField);
  EXPECT_EQ(Body[5].Kind, StmtKind::LoadStaticField);
  EXPECT_EQ(Body[5].ClassName, "A");
  EXPECT_EQ(Body[5].FieldName, "s");
  EXPECT_EQ(Body[6].Kind, StmtKind::StoreStaticField);
  EXPECT_EQ(Body[7].Kind, StmtKind::AssignLayoutId);
  EXPECT_EQ(Body[7].ResourceName, "main");
  EXPECT_EQ(Body[8].Kind, StmtKind::AssignViewId);
  EXPECT_EQ(Body[8].ResourceName, "button");
  EXPECT_EQ(Body[9].Kind, StmtKind::AssignClassConst);
  EXPECT_EQ(Body[10].Kind, StmtKind::Invoke);
  EXPECT_NE(Body[10].Lhs, InvalidVar);
  EXPECT_EQ(Body[11].Kind, StmtKind::Invoke);
  EXPECT_EQ(Body[11].Lhs, InvalidVar);
  EXPECT_EQ(Body[12].Kind, StmtKind::Return);
}

TEST(ParserTest, QualifiedStaticAccessSplitsAtLastDot) {
  auto P = parseOk(R"(
class a.b.C { field static s: a.b.C; }
class D {
  method m() {
    var x: a.b.C;
    x := static a.b.C.s;
    static a.b.C.s := x;
  }
}
)");
  const MethodDecl *M = P->findClass("D")->findOwnMethod("m", 0);
  const auto &Body = M->body();
  ASSERT_EQ(Body.size(), 2u);
  EXPECT_EQ(Body[0].ClassName, "a.b.C");
  EXPECT_EQ(Body[0].FieldName, "s");
  EXPECT_EQ(Body[1].ClassName, "a.b.C");
}

TEST(ParserTest, ConstructorArgumentsLowerToInitCall) {
  auto P = parseOk(R"(
class A {
  method init(q: A) { }
  method m() {
    var x: A;
    x := new A(this);
  }
}
)");
  const MethodDecl *M = P->findClass("A")->findOwnMethod("m", 0);
  const auto &Body = M->body();
  ASSERT_EQ(Body.size(), 2u);
  EXPECT_EQ(Body[0].Kind, StmtKind::AssignNew);
  EXPECT_EQ(Body[1].Kind, StmtKind::Invoke);
  EXPECT_EQ(Body[1].MethodName, "init");
  ASSERT_EQ(Body[1].Args.size(), 1u);
}

TEST(ParserTest, EmptyConstructorParensNoInitCall) {
  auto P = parseOk(R"(
class A {
  method m() {
    var x: A;
    x := new A();
  }
}
)");
  EXPECT_EQ(P->findClass("A")->findOwnMethod("m", 0)->body().size(), 1u);
}

TEST(ParserTest, UseOfUndeclaredVariableIsError) {
  parseBad("class A { method m() { x := null; } }");
}

TEST(ParserTest, RedeclarationIsError) {
  parseBad("class A { method m() { var x: A; var x: A; } }");
}

TEST(ParserTest, DuplicateClassIsError) {
  parseBad("class A { } class A { }");
}

TEST(ParserTest, MissingSemicolonIsError) {
  parseBad("class A { method m() { var x: A } }");
}

TEST(ParserTest, RecoversAndReportsMultipleErrors) {
  Program P;
  DiagnosticEngine Diags;
  parseAlite(R"(
class A { method m() { x := null; y := null; } }
class B { }
)",
             "t.alite", P, Diags);
  EXPECT_GE(Diags.errorCount(), 2u); // both bad statements reported
  EXPECT_NE(P.findClass("B"), nullptr); // recovery reached class B
}

TEST(ParserTest, MultipleBuffersAccumulateIntoOneProgram) {
  Program P;
  DiagnosticEngine Diags;
  ASSERT_TRUE(parseAlite("class A { }", "a.alite", P, Diags));
  ASSERT_TRUE(parseAlite("class B extends A { }", "b.alite", P, Diags));
  ASSERT_TRUE(P.resolve(Diags));
  EXPECT_EQ(P.findClass("B")->superClass(), P.findClass("A"));
}

TEST(ParserTest, ParametersAreTyped) {
  auto P = parseOk("class A { method m(a: int, b: x.Y) { } }");
  const MethodDecl *M = P->findClass("A")->findOwnMethod("m", 2);
  EXPECT_EQ(M->var(M->paramVar(0)).TypeName, "int");
  EXPECT_EQ(M->var(M->paramVar(1)).TypeName, "x.Y");
}

} // namespace
