//===- quickstart.cpp - Minimal end-to-end use of the library ---*- C++ -*-===//
//
// Build a tiny Android app in ALite text, give it a layout, run the GUI
// reference analysis, and query the solution. Mirrors the "typical use"
// sketch in analysis/GuiAnalysis.h.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "corpus/AppBundle.h"
#include "layout/Layout.h"
#include "parser/Parser.h"

#include <iostream>

using namespace gator;

int main() {
  // 1. An application: one activity, one button, one click listener.
  const char *Source = R"alite(
class MainActivity extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    var l: GreetListener;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/hello_button;
    b := this.findViewById(bid);
    l := new GreetListener;
    b.setOnClickListener(l);
  }
}

class GreetListener implements android.view.View.OnClickListener {
  method onClick(v: android.view.View) {
    var w: android.view.View;
    w := v;
  }
}
)alite";

  const char *LayoutXml = R"xml(
<LinearLayout android:id="@+id/root">
  <TextView android:id="@+id/greeting" />
  <Button android:id="@+id/hello_button" />
</LinearLayout>
)xml";

  // 2. Assemble the bundle: platform model, program, layout.
  corpus::AppBundle App;
  App.Android.install(App.Program);
  if (!parser::parseAlite(Source, "main.alite", App.Program, App.Diags) ||
      !layout::readLayoutXml(*App.Layouts, "main", LayoutXml, App.Diags) ||
      !App.finalize()) {
    App.Diags.print(std::cerr);
    return 1;
  }

  // 3. Run the analysis.
  auto Result = analysis::GuiAnalysis::run(
      App.Program, *App.Layouts, App.Android, analysis::AnalysisOptions(),
      App.Diags);
  if (!Result) {
    App.Diags.print(std::cerr);
    return 1;
  }

  // 4. Query the solution: what does the find-view resolve to, and which
  // listener handles clicks on it?
  const ir::MethodDecl *OnCreate =
      App.Program.findClass("MainActivity")->findOwnMethod("onCreate", 0);
  graph::NodeId BVar =
      Result->Graph->getVarNode(OnCreate, OnCreate->findVar("b"));

  std::cout << "views flowing to variable 'b':\n";
  for (graph::NodeId V : Result->Sol->viewsAt(BVar)) {
    std::cout << "  " << Result->Graph->label(V) << "\n";
    for (graph::NodeId L : Result->Graph->listeners(V))
      std::cout << "    handled by: " << Result->Graph->label(L) << "\n";
  }

  auto M = Result->metrics();
  std::cout << "precision: receivers=" << M.AvgReceivers
            << " results=" << M.AvgResults.value_or(0) << "\n";
  std::cout << "analysis time: build=" << Result->BuildSeconds * 1000
            << "ms solve=" << Result->SolveSeconds * 1000 << "ms\n";
  return 0;
}
