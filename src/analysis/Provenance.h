//===- Provenance.h - Derivation recording for solver facts -----*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in provenance for the fixed point (docs/OBSERVABILITY.md): when
/// AnalysisOptions::RecordProvenance is set, both solver engines stamp
/// every committed flowsTo fact and every relationship (`=>`) edge with
/// the semantic rule that produced it plus the premise facts the rule
/// consumed. The recorded derivations form an acyclic DAG (a premise is
/// always recorded before its conclusion), which `gator_cli --explain`
/// prints as a derivation tree — the machine-checkable analogue of the
/// paper's Section 5 case study, which manually explains *why* APV's
/// Barcode views flow where they do.
///
/// Depth is maintained per fact as 1 + max(premise depths); when a later
/// rule re-derives a known fact more shallowly, the shallower derivation
/// replaces the recorded one, so printDerivation() emits the shortest
/// derivation the solve encountered.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_PROVENANCE_H
#define GATOR_ANALYSIS_PROVENANCE_H

#include "graph/ConstraintGraph.h"

#include <array>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace gator {
namespace analysis {

/// The semantic rule that produced a fact.
enum class DerivRule : uint8_t {
  Seed,             ///< a value node flows to itself (Section 4.3 seeding)
  FlowEdge,         ///< propagation along a flow edge n -> n'
  Inflate,          ///< INFLATE1/2 minted a view / its layout structure
  InflateAttach,    ///< inflate(id, parent) attached the root to a parent
  AddView1,         ///< ADDVIEW1 root association
  AddView2,         ///< ADDVIEW2 parent-child edge
  SetId,            ///< SETID id association
  SetListener,      ///< SETLISTENER listener association
  ListenerCallback, ///< callback wiring y.n(x) of a listener registration
  XmlOnClick,       ///< android:onClick layout-declared handler sweep
  FindView,         ///< FINDVIEW1/2/3 resolution into the result variable
  FragmentAdd,      ///< fragment onCreateView wiring / container attach
  SetAdapter,       ///< adapter getView wiring / item attach
  External,         ///< recorded without a known producer (defensive)
  UnknownSource,    ///< an unknown-source node seeded this fact
                    ///< (docs/ROBUSTNESS.md); the fact is approximate
};

/// Printable rule name ("FlowEdge", "FindView", ...).
const char *derivRuleName(DerivRule Rule);

/// What a recorded fact asserts.
enum class FactKind : uint8_t {
  Flow,        ///< flowsTo(A, value B)
  ParentChild, ///< A => B in the view hierarchy
  HasId,       ///< view A => view-id B
  Root,        ///< window A => root view B
  Listener,    ///< view A => listener B
  RootsLayout, ///< view A is the root of an instance of layout-id B
  FlowLink,    ///< solver-added flow edge A -> B (mid-solve wiring:
               ///< listener callbacks, xml handlers, fragment/adapter
               ///< factories) — IDB graph structure the retraction
               ///< closure must physically remove (docs/INCREMENTAL.md)
};

inline constexpr size_t NumFactKinds =
    static_cast<size_t>(FactKind::FlowLink) + 1;

const char *factKindName(FactKind Kind);

/// Records fact derivations during one solve. Thread-confined like the
/// solution it annotates.
class ProvenanceRecorder {
public:
  using FactId = uint32_t;
  static constexpr FactId NoFact = ~0u;

  struct Fact {
    FactKind Kind;
    graph::NodeId A = graph::InvalidNode;
    graph::NodeId B = graph::InvalidNode;
  };

  struct Derivation {
    DerivRule Rule = DerivRule::External;
    std::array<FactId, 3> Premises{NoFact, NoFact, NoFact};
    uint32_t Depth = 1;
    /// True when this fact rests on an unknown source: its rule is
    /// UnknownSource, either endpoint is an unknown node, or any premise
    /// is itself approximate. printDerivation flags such facts and names
    /// the degradation reason at the unknown-source leaves.
    bool Approx = false;
  };

  /// Records (or shallows) the derivation of flowsTo(\p Target, \p Value).
  /// Premise slots may be NoFact.
  void recordFlow(graph::NodeId Target, graph::NodeId Value, DerivRule Rule,
                  FactId P0 = NoFact, FactId P1 = NoFact, FactId P2 = NoFact) {
    record(FactKind::Flow, Target, Value, Rule, P0, P1, P2);
  }

  /// Records (or shallows) the derivation of a relationship edge.
  void recordEdge(FactKind Kind, graph::NodeId From, graph::NodeId To,
                  DerivRule Rule, FactId P0 = NoFact, FactId P1 = NoFact,
                  FactId P2 = NoFact) {
    record(Kind, From, To, Rule, P0, P1, P2);
  }

  /// Existing fact lookup; NoFact when the fact was never recorded (e.g.
  /// filtered inserts). Safe to pass straight into a premise slot.
  FactId flowFact(graph::NodeId Target, graph::NodeId Value) const {
    return find(FactKind::Flow, Target, Value);
  }
  FactId edgeFact(FactKind Kind, graph::NodeId From, graph::NodeId To) const {
    return find(Kind, From, To);
  }

  const Fact &fact(FactId Id) const { return Facts[Id]; }
  const Derivation &derivation(FactId Id) const { return Derivs[Id]; }
  size_t factCount() const { return Facts.size(); }

  /// Retracts \p Id (delete-and-rederive, docs/INCREMENTAL.md): the fact
  /// no longer holds, find() stops returning it, and a later record() of
  /// the same (kind, A, B) mints a fresh FactId. The Fact/Derivation slots
  /// stay readable (old premise ids embedded in live derivations must not
  /// dangle) but are flagged dead. Idempotent.
  void retract(FactId Id) {
    if (Id >= Facts.size())
      return;
    if (Dead.size() < Facts.size())
      Dead.resize(Facts.size(), false);
    if (Dead[Id])
      return;
    Dead[Id] = true;
    if (Derivs[Id].Approx)
      --ApproxFacts;
    const Fact &F = Facts[Id];
    auto &Map = IndexByKind[static_cast<size_t>(F.Kind)];
    auto It = Map.find(key(F.A, F.B));
    // Only unlink if the index still points at *this* fact: the key may
    // already map to a re-recorded successor.
    if (It != Map.end() && It->second == Id)
      Map.erase(It);
  }

  /// True when \p Id has been retracted.
  bool isDead(FactId Id) const { return Id < Dead.size() && Dead[Id]; }

  /// Binds the graph used to classify unknown-node endpoints when
  /// computing Derivation::Approx. Optional; without it only the rule and
  /// premise flags feed the classification.
  void bindGraph(const graph::ConstraintGraph *Graph) { G = Graph; }

  /// Number of recorded facts flagged approximate.
  size_t approxFactCount() const { return ApproxFacts; }

  /// Deepest recorded derivation (1 for axioms; 0 when empty).
  uint32_t maxDepth() const { return MaxDepth; }

  /// Prints the derivation tree rooted at \p Id, one fact per line with
  /// two-space indentation, labeling nodes through \p G. Re-derived
  /// subtrees print once; later occurrences are elided with "(see above)".
  /// Depth is capped at \p MaxPrintDepth.
  void printDerivation(std::ostream &OS, FactId Id,
                       const graph::ConstraintGraph &G,
                       unsigned MaxPrintDepth = 16) const;

private:
  void record(FactKind Kind, graph::NodeId A, graph::NodeId B, DerivRule Rule,
              FactId P0, FactId P1, FactId P2);
  FactId find(FactKind Kind, graph::NodeId A, graph::NodeId B) const;

  static uint64_t key(graph::NodeId A, graph::NodeId B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  }

  /// Per-kind fact index; NodeId pairs do not collide across kinds.
  std::array<std::unordered_map<uint64_t, FactId>, NumFactKinds> IndexByKind;
  std::vector<Fact> Facts;
  std::vector<Derivation> Derivs;
  /// Retracted facts (grown lazily; short of Facts.size() means "alive").
  std::vector<bool> Dead;
  uint32_t MaxDepth = 0;
  size_t ApproxFacts = 0;
  const graph::ConstraintGraph *G = nullptr;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_PROVENANCE_H
