# Prometheus export of the parallel intra-solve engine (docs/PARALLEL.md):
# a --solve-jobs run whose engine engaged must export the SCC condensation
# and barrier counters, and a serial run must not (its export stays the
# historical document). Invoked by ctest with -DCLI=<gator_cli>
# -DAPP=<app dir> -DWORK=<scratch dir>. CI greps the same names.

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

execute_process(
  COMMAND ${CLI} --no-times --solve-jobs 2
          --metrics-out ${WORK}/par.prom --metrics-format prom ${APP}
  OUTPUT_QUIET ERROR_VARIABLE run_err RESULT_VARIABLE run_code)
if(NOT run_code EQUAL 0)
  message(FATAL_ERROR "parallel run failed (${run_code}):\n${run_err}")
endif()
file(READ ${WORK}/par.prom par_doc)

foreach(series
    gator_scc_count
    gator_scc_max_size
    gator_scc_strata
    gator_scc_recondensations_total
    gator_solve_barrier_waves_total
    gator_solve_barrier_stalls_total)
  string(FIND "${par_doc}" "${series}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "parallel export is missing the ${series} series:\n${par_doc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CLI} --no-times
          --metrics-out ${WORK}/ser.prom --metrics-format prom ${APP}
  OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE run_code)
if(NOT run_code EQUAL 0)
  message(FATAL_ERROR "serial run failed (${run_code})")
endif()
file(READ ${WORK}/ser.prom ser_doc)
string(FIND "${ser_doc}" "gator_scc_count" found)
if(NOT found EQUAL -1)
  message(FATAL_ERROR "serial export unexpectedly carries SCC series")
endif()

message(STATUS "solve-jobs metrics series present in the parallel export")
