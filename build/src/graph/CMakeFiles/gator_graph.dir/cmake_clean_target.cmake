file(REMOVE_RECURSE
  "libgator_graph.a"
)
