//===- LayoutWriter.cpp - Layout tree to XML serialization ------*- C++ -*-===//

#include "layout/LayoutWriter.h"

#include <sstream>

using namespace gator;
using namespace gator::layout;

void gator::layout::writeLayoutXml(const LayoutNode &Node, std::ostream &OS,
                                   unsigned Indent) {
  std::string Pad(Indent * 2, ' ');

  std::string Tag;
  if (Node.isInclude())
    Tag = "include";
  else if (Node.isMerge())
    Tag = "merge";
  else
    Tag = Node.viewClassName();

  OS << Pad << '<' << Tag;
  if (Node.isInclude())
    OS << " layout=\"@layout/" << Node.includeLayoutName() << '"';
  if (Node.hasViewId())
    OS << " android:id=\"@+id/" << Node.viewIdName() << '"';
  if (Node.hasOnClickHandler())
    OS << " android:onClick=\"" << Node.onClickHandlerName() << '"';

  if (Node.children().empty()) {
    OS << " />\n";
    return;
  }
  OS << ">\n";
  for (const auto &Child : Node.children())
    writeLayoutXml(*Child, OS, Indent + 1);
  OS << Pad << "</" << Tag << ">\n";
}

std::string gator::layout::layoutToXml(const LayoutDef &Def) {
  std::ostringstream OS;
  writeLayoutXml(*Def.root(), OS);
  return OS.str();
}
