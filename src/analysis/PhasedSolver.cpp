//===- PhasedSolver.cpp - The paper's literal 3-phase pipeline --*- C++ -*-===//

#include "analysis/PhasedSolver.h"

#include "analysis/GraphBuilder.h"
#include "hier/ClassHierarchy.h"
#include "support/Budget.h"
#include "support/Check.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <unordered_map>
#include <unordered_set>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;
using namespace gator::ir;

namespace {

/// Round-based (sweep-to-fixpoint) solver engine — deliberately a
/// different evaluation strategy from Solver.h's fine-grained worklist,
/// so the differential tests exercise two independent engines.
class PhasedEngine {
public:
  PhasedEngine(ConstraintGraph &G, Solution &Sol,
               const layout::LayoutRegistry &Layouts, const AndroidModel &AM,
               const AnalysisOptions &Options, DiagnosticEngine &Diags,
               ProvenanceRecorder *Prov)
      : G(G), Sol(Sol), Layouts(Layouts), AM(AM), Options(Options),
        Diags(Diags), Tracker(Options.Budget), Prov(Prov) {}

  PhasedStats run() {
    reconstructMinted();
    seed();
    {
      support::TraceSpan S(Options.Trace, "phased.reachability");
      phaseReachability();
      S.arg("steps", Stats.ReachabilitySteps);
    }
    if (!Tracker.exhausted()) {
      support::TraceSpan S(Options.Trace, "phased.inflation");
      phaseInflation();
      S.arg("inflations", Stats.Inflations);
    }
    if (!Tracker.exhausted()) {
      support::TraceSpan S(Options.Trace, "phased.propagation");
      phasePropagation();
      S.arg("rounds", Stats.PropagationRounds);
    }
    if (Tracker.exhausted()) {
      // Round-based evaluation has no per-op settled/pending distinction,
      // so every op site is conservatively recorded as unresolved.
      for (size_t I = 0, E = Sol.opSites().size(); I < E; ++I)
        Sol.noteUnresolvedOp(static_cast<uint32_t>(I));
      Sol.markTruncated(Tracker.reason());
      Diags.warning(std::string("solver budget exhausted (") +
                    support::budgetReasonName(Tracker.reason()) +
                    "); solution is a partial under-approximation");
    }
    return Stats;
  }

private:
  std::vector<FlowSet> &sets() {
    auto &S = Sol.flowsToSets();
    if (S.size() < G.size())
      S.resize(G.size());
    return S;
  }

  bool typeCompatible(NodeId N, NodeId Value) const {
    if (!Options.DeclaredTypeFilter)
      return true;
    const Node &Target = G.node(N);
    const ir::Program &P = AM.program();
    const ClassDecl *DeclType = nullptr;
    if (Target.Kind == NodeKind::Var) {
      const std::string &T = Target.Method->var(Target.Var).TypeName;
      if (T.empty() || isPrimitiveTypeName(T))
        return true;
      DeclType = P.findClass(T);
    } else if (Target.Kind == NodeKind::Field) {
      const std::string &T = Target.Field->typeName();
      if (T.empty() || isPrimitiveTypeName(T))
        return true;
      DeclType = P.findClass(T);
    } else {
      return true;
    }
    if (!DeclType || DeclType->name() == ObjectClassName)
      return true;
    const Node &Val = G.node(Value);
    switch (Val.Kind) {
    case NodeKind::Alloc:
    case NodeKind::ViewAlloc:
    case NodeKind::ViewInfl:
    case NodeKind::Activity:
      break;
    default:
      return true;
    }
    if (!Val.Klass)
      return true;
    return P.isSubtypeOf(Val.Klass, DeclType) ||
           P.isSubtypeOf(DeclType, Val.Klass);
  }

  bool insert(NodeId N, NodeId Value) {
    if (N == InvalidNode || !typeCompatible(N, Value))
      return false;
    if (!sets()[N].insert(Sol.setArena(), Value))
      return false;
    if (Prov)
      Prov->recordFlow(N, Value, PRule, PPrem[0], PPrem[1], PPrem[2]);
    return true;
  }

  // Provenance context staging, mirroring Solver::provCtx/provEdge: the
  // recording sites set the producing rule and premises just before the
  // insert they explain. Single predicted branch when provenance is off.
  using FactId = ProvenanceRecorder::FactId;
  void provCtx(DerivRule Rule, FactId P0 = ProvenanceRecorder::NoFact,
               FactId P1 = ProvenanceRecorder::NoFact) {
    if (!Prov)
      return;
    PRule = Rule;
    PPrem[0] = P0;
    PPrem[1] = P1;
    PPrem[2] = ProvenanceRecorder::NoFact;
  }
  void provEdge(FactKind Kind, NodeId From, NodeId To, DerivRule Rule,
                FactId P0 = ProvenanceRecorder::NoFact,
                FactId P1 = ProvenanceRecorder::NoFact) {
    if (Prov)
      Prov->recordEdge(Kind, From, To, Rule, P0, P1);
  }
  FactId provFlow(NodeId Target, NodeId Value) const {
    return Prov ? Prov->flowFact(Target, Value) : ProvenanceRecorder::NoFact;
  }

  /// The (inflate-site, layout) memo is engine-local, but a warm re-run
  /// over an edit-scale-retracted graph (docs/INCREMENTAL.md) must not
  /// re-mint ViewInfl subtrees that survived retraction. Surviving roots
  /// are recoverable from graph state alone: every minted root carries its
  /// InflateSite and a RootsLayout edge to the layout id that produced it.
  /// On a cold run the graph has no minted roots yet, so this is a no-op.
  /// (InvalidNode entries for skipped degenerate sites are not
  /// reconstructible; those sites re-diagnose on a warm run.)
  void reconstructMinted() {
    for (NodeKind K : {NodeKind::ViewInfl, NodeKind::UnknownView})
      for (NodeId V : G.nodesOfKind(K)) {
        const Node &N = G.node(V);
        if (N.Retired || N.InflateSite == InvalidNode)
          continue;
        for (NodeId L : G.rootsOfLayouts(V))
          Minted.emplace((static_cast<uint64_t>(N.InflateSite) << 32) | L, V);
      }
  }

  void seed() {
    provCtx(DerivRule::Seed);
    for (NodeId Id = 0; Id < G.size(); ++Id) {
      const Node &N = G.node(Id);
      // Retired nodes are orphans of an edit-scale retraction
      // (docs/INCREMENTAL.md); their minting site no longer exists.
      if (!isValueNodeKind(N.Kind) || N.Retired)
        continue;
      if (Prov)
        provCtx(N.Kind == NodeKind::UnknownView || N.Kind == NodeKind::UnknownId
                    ? DerivRule::UnknownSource
                    : DerivRule::Seed);
      insert(Id, Id);
    }
  }

  /// One full sweep over all flow edges; returns whether anything grew.
  /// \p ViewsToo controls whether view values move (phase R excludes
  /// them, matching the paper's "relationships that do not depend on
  /// operation nodes").
  bool sweepFlowEdges(bool ViewsToo) {
    bool Changed = false;
    for (NodeId N = 0; N < G.size(); ++N) {
      if (G.node(N).Kind == NodeKind::Op)
        continue;
      auto &S = sets();
      if (S[N].empty())
        continue;
      if (!Tracker.charge())
        return Changed;
      std::vector<NodeId> Values(S[N].begin(), S[N].end());
      for (NodeId Succ : G.flowSuccessors(N)) {
        if (G.node(Succ).Kind == NodeKind::Op)
          continue;
        for (NodeId V : Values) {
          if (!ViewsToo && isViewNodeKind(G.node(V).Kind))
            continue;
          if (Prov)
            provCtx(DerivRule::FlowEdge, Prov->flowFact(N, V));
          Changed |= insert(Succ, V);
        }
      }
    }
    return Changed;
  }

  void phaseReachability() {
    while (!Tracker.exhausted() && sweepFlowEdges(/*ViewsToo=*/false))
      ++Stats.ReachabilitySteps;
  }

  //===--------------------------------------------------------------------===//
  // Phase I: inflation
  //===--------------------------------------------------------------------===//

  NodeId inflate(const OpSite &Op, size_t OpIndex, NodeId LayoutIdNode) {
    uint64_t Key = (static_cast<uint64_t>(Op.OpNode) << 32) | LayoutIdNode;
    auto It = Minted.find(Key);
    if (It != Minted.end())
      return It->second;

    const layout::LayoutDef *Def =
        Layouts.findById(G.node(LayoutIdNode).Res);
    if (!Def) {
      Diags.warning(G.node(Op.OpNode).Loc,
                    "inflation of unknown layout id; site skipped");
      Minted.emplace(Key, InvalidNode);
      return InvalidNode;
    }

    // Mirrors Solver::inflateAt's degenerate-layout handling so both
    // engines stay differentially equivalent on degraded input.
    const layout::LayoutNode *RootDef = Def->root();
    bool EmptyMerge = RootDef && RootDef->viewClassName().empty() &&
                      RootDef->children().empty();
    if (!GATOR_CHECK(RootDef != nullptr, &Diags,
                     "layout definition with no root node; site skipped") ||
        EmptyMerge) {
      if (EmptyMerge)
        Diags.warning(G.node(Op.OpNode).Loc,
                      "layout '" + Def->name() +
                          "' is an empty <merge/> with no inflatable root; "
                          "site skipped");
      Sol.markDegraded();
      Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
      Minted.emplace(Key, InvalidNode);
      return InvalidNode;
    }
    ++Stats.Inflations;

    FactId IdFact = provFlow(Op.IdArg, LayoutIdNode);
    const ClassDecl *ViewBase = AM.program().findClass(names::View);
    const ClassDecl *GroupBase = AM.program().findClass(names::ViewGroup);

    // Recursive tree construction (vs. the fused solver's explicit stack).
    auto Build = [&](auto &&Self, const layout::LayoutNode &LNode)
        -> NodeId {
      const ClassDecl *Klass =
          LNode.viewClassName().empty()
              ? GroupBase
              : AM.resolveLayoutClassName(LNode.viewClassName());
      if (!Klass) {
        Diags.warning(LNode.loc(),
                      "unknown view class '" + LNode.viewClassName() +
                          "' in layout '" + Def->name() +
                          "'; modeled as android.view.View");
        Klass = ViewBase;
      }
      NodeId ViewNode = G.makeViewInflNode(Klass, &LNode, Op.OpNode);
      provCtx(DerivRule::Inflate, IdFact);
      insert(ViewNode, ViewNode);
      if (LNode.hasViewId()) {
        layout::ResourceId VId =
            Layouts.resources().lookupViewId(LNode.viewIdName());
        if (VId != layout::InvalidResourceId) {
          size_t NodesBefore = G.size();
          NodeId IdNode = G.getViewIdNode(VId);
          if (IdNode >= NodesBefore) {
            // An id name first interned by an edit-scale layout
            // re-analysis has no pre-built node, so the seed phase never
            // saw it; seed the fresh node here or its value set stays
            // empty.
            provCtx(DerivRule::Seed);
            insert(IdNode, IdNode);
            provCtx(DerivRule::Inflate, IdFact);
          }
          G.addHasIdEdge(ViewNode, IdNode);
          provEdge(FactKind::HasId, ViewNode, IdNode, DerivRule::Inflate,
                   IdFact);
        }
      }
      for (const auto &Child : LNode.children()) {
        NodeId ChildNode = Self(Self, *Child);
        G.addParentChildEdge(ViewNode, ChildNode);
        provEdge(FactKind::ParentChild, ViewNode, ChildNode,
                 DerivRule::Inflate, IdFact);
      }
      return ViewNode;
    };

    NodeId Root = Build(Build, *RootDef);
    G.addRootsLayoutEdge(Root, LayoutIdNode);
    provEdge(FactKind::RootsLayout, Root, LayoutIdNode, DerivRule::Inflate,
             IdFact);
    Minted.emplace(Key, Root);
    return Root;
  }

  bool fireInflate(const OpSite &Op, size_t OpIndex) {
    bool Changed = false;
    for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
      if (G.node(IdVal).Kind != NodeKind::LayoutId)
        continue;
      size_t Before = Minted.size();
      NodeId Root = inflate(Op, OpIndex, IdVal);
      Changed |= Minted.size() != Before;
      if (Root == InvalidNode)
        continue;
      if (Op.Spec.Kind == OpKind::Inflate1) {
        provCtx(DerivRule::Inflate, provFlow(Op.IdArg, IdVal),
                provFlow(Root, Root));
        Changed |= insert(Op.Out, Root);
        if (Op.AttachParent != InvalidNode)
          for (NodeId P : Sol.viewsAt(Op.AttachParent))
            if (G.addParentChildEdge(P, Root)) {
              provEdge(FactKind::ParentChild, P, Root,
                       DerivRule::InflateAttach, provFlow(Op.AttachParent, P),
                       provFlow(Root, Root));
              Changed = true;
            }
      } else {
        for (NodeId W : Sol.valuesAt(Op.Recv)) {
          NodeKind K = G.node(W).Kind;
          if (K == NodeKind::Activity || K == NodeKind::Alloc)
            if (G.addRootEdge(W, Root)) {
              provEdge(FactKind::Root, W, Root, DerivRule::Inflate,
                       provFlow(Op.Recv, W), provFlow(Op.IdArg, IdVal));
              Changed = true;
            }
        }
      }
    }

    // Unknown-source ids: mirror Solver::fireInflate's tagged unknown root
    // per (site, id) so both engines agree on degraded apps
    // (docs/ROBUSTNESS.md).
    std::vector<NodeId> UnknownIds;
    for (NodeId IdVal : Sol.valuesAt(Op.IdArg))
      if (G.node(IdVal).Kind == NodeKind::UnknownId)
        UnknownIds.push_back(IdVal);
    for (NodeId U : UnknownIds) {
      uint64_t Key = (static_cast<uint64_t>(Op.OpNode) << 32) | U;
      auto It = Minted.find(Key);
      NodeId Root;
      if (It != Minted.end()) {
        Root = It->second;
      } else {
        Root = G.makeUnknownViewNode(G.node(U).Unknown, Op.Method,
                                     G.node(Op.OpNode).Loc, Op.OpNode);
        Minted.emplace(Key, Root);
        if (Prov)
          provCtx(DerivRule::UnknownSource, provFlow(Op.IdArg, U));
        insert(Root, Root);
        G.addRootsLayoutEdge(Root, U);
        provEdge(FactKind::RootsLayout, Root, U, DerivRule::UnknownSource,
                 provFlow(Op.IdArg, U));
        Sol.markDegraded();
        Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
        Changed = true;
      }
      if (Root == InvalidNode)
        continue;
      if (Op.Spec.Kind == OpKind::Inflate1) {
        provCtx(DerivRule::UnknownSource, provFlow(Op.IdArg, U),
                provFlow(Root, Root));
        Changed |= insert(Op.Out, Root);
        if (Op.AttachParent != InvalidNode)
          for (NodeId P : Sol.viewsAt(Op.AttachParent))
            if (P != Root && G.addParentChildEdge(P, Root)) {
              provEdge(FactKind::ParentChild, P, Root,
                       DerivRule::UnknownSource, provFlow(Op.AttachParent, P),
                       provFlow(Root, Root));
              Changed = true;
            }
      } else {
        for (NodeId W : Sol.valuesAt(Op.Recv)) {
          NodeKind K = G.node(W).Kind;
          if (K == NodeKind::Activity || K == NodeKind::Alloc)
            if (G.addRootEdge(W, Root)) {
              provEdge(FactKind::Root, W, Root, DerivRule::UnknownSource,
                       provFlow(Op.Recv, W), provFlow(Op.IdArg, U));
              Changed = true;
            }
        }
      }
    }
    return Changed;
  }

  void phaseInflation() {
    const auto &Ops = Sol.opSites();
    for (size_t I = 0, E = Ops.size(); I < E; ++I) {
      const OpSite &Op = Ops[I];
      if (Op.Dead || (Op.Spec.Kind != OpKind::Inflate1 &&
                      Op.Spec.Kind != OpKind::Inflate2))
        continue;
      if (!Tracker.charge())
        break;
      fireInflate(Op, I);
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase P: view propagation + operation rules to a global fixed point
  //===--------------------------------------------------------------------===//

  /// Independent FindView evaluation (the fused solver shares
  /// Solution::resultsOf; this one re-derives the rule).
  bool fireFindView(const OpSite &Op) {
    if (Op.Out == InvalidNode)
      return false;

    std::vector<NodeId> Under;
    if (Op.Spec.Kind == OpKind::FindView2) {
      for (NodeId W : Sol.valuesAt(Op.Recv))
        for (NodeId Root : G.roots(W))
          Under.push_back(Root);
    } else {
      Under = Sol.viewsAt(Op.Recv);
    }

    std::vector<NodeId> Candidates;
    if (!Options.TrackHierarchy) {
      for (NodeId V = 0; V < G.size(); ++V)
        if (isViewNodeKind(G.node(V).Kind))
          Candidates.push_back(V);
    } else if (Op.Spec.Kind == OpKind::FindView3 && Op.Spec.ChildOnly &&
               Options.FindView3ChildOnly) {
      for (NodeId Root : Under)
        for (NodeId C : G.children(Root))
          Candidates.push_back(C);
    } else {
      for (NodeId Root : Under)
        for (NodeId D : G.descendantsOf(Root))
          Candidates.push_back(D);
    }

    bool Changed = false;
    bool Filter = Options.TrackViewIds &&
                  (Op.Spec.Kind == OpKind::FindView1 ||
                   Op.Spec.Kind == OpKind::FindView2);
    // Unknown-source handling mirrors Solution::resultsOf so the two
    // engines agree on degraded apps (docs/ROBUSTNESS.md); gated on the
    // graph actually holding unknown nodes so clean inputs pay nothing.
    bool HaveUnknown = !G.nodesOfKind(NodeKind::UnknownView).empty() ||
                       !G.nodesOfKind(NodeKind::UnknownId).empty();
    if (Filter) {
      std::unordered_set<NodeId> Wanted;
      NodeId UnknownIdAtArg = InvalidNode;
      for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
        if (G.node(IdVal).Kind == NodeKind::ViewId)
          Wanted.insert(IdVal);
        else if (HaveUnknown && G.node(IdVal).Kind == NodeKind::UnknownId &&
                 UnknownIdAtArg == InvalidNode)
          UnknownIdAtArg = IdVal;
      }
      for (NodeId Cand : Candidates)
        for (NodeId IdNode : G.viewIds(Cand))
          if (Wanted.count(IdNode)) {
            if (Prov)
              provCtx(DerivRule::FindView, provFlow(Cand, Cand),
                      Prov->edgeFact(FactKind::HasId, Cand, IdNode));
            Changed |= insert(Op.Out, Cand);
          }
      if (UnknownIdAtArg != InvalidNode) {
        // A non-constant id makes every candidate a sound match, capped
        // by the deterministic fanout budget (first N of the sorted
        // candidate universe, like Solution::resultsOf::appendCapped).
        // The unknown-id flow is cited as a premise so --explain's
        // derivation tree reaches the reason-carrying node.
        Sol.markDegraded();
        Sol.noteUnresolvedOp(
            static_cast<uint32_t>(&Op - Sol.opSites().data()));
        std::vector<NodeId> Universe = Candidates;
        std::sort(Universe.begin(), Universe.end());
        Universe.erase(std::unique(Universe.begin(), Universe.end()),
                       Universe.end());
        size_t N = Options.UnknownFanoutBudget
                       ? std::min<size_t>(Universe.size(),
                                          Options.UnknownFanoutBudget)
                       : Universe.size();
        for (size_t I = 0; I < N; ++I) {
          provCtx(DerivRule::UnknownSource, provFlow(Universe[I], Universe[I]),
                  provFlow(Op.IdArg, UnknownIdAtArg));
          Changed |= insert(Op.Out, Universe[I]);
        }
      } else if (HaveUnknown) {
        // A view carrying an unknown id may match any constant lookup,
        // and an unknown view matches any lookup it reaches.
        for (NodeId Cand : Candidates) {
          bool Match = G.node(Cand).Kind == NodeKind::UnknownView;
          if (!Match)
            for (NodeId IdNode : G.viewIds(Cand))
              if (G.node(IdNode).Kind == NodeKind::UnknownId) {
                Match = true;
                break;
              }
          if (Match) {
            provCtx(DerivRule::UnknownSource, provFlow(Cand, Cand));
            Changed |= insert(Op.Out, Cand);
          }
        }
      }
    } else {
      for (NodeId Cand : Candidates) {
        provCtx(DerivRule::FindView, provFlow(Cand, Cand));
        Changed |= insert(Op.Out, Cand);
      }
    }
    return Changed;
  }

  bool wireHandler(NodeId View, NodeId ListenerValue,
                   const ListenerSpec &Spec) {
    const ClassDecl *LClass = G.node(ListenerValue).Klass;
    if (!LClass || LClass->isPlatform())
      return false;
    FactId LFact =
        Prov ? Prov->edgeFact(FactKind::Listener, View, ListenerValue)
             : ProvenanceRecorder::NoFact;
    if (Prov)
      provCtx(DerivRule::ListenerCallback, LFact);
    bool Changed = false;
    for (const HandlerSig &Sig : Spec.Handlers) {
      const MethodDecl *Handler =
          hier::ClassHierarchy::dispatch(LClass, Sig.MethodName, Sig.Arity);
      if (!Handler || Handler->owner()->isPlatform())
        continue;
      NodeId ThisNode = G.getVarNode(Handler, Handler->thisVar());
      Changed |= G.addFlowEdge(ListenerValue, ThisNode);
      provEdge(FactKind::FlowLink, ListenerValue, ThisNode,
               DerivRule::ListenerCallback, LFact);
      Changed |= insert(ThisNode, ListenerValue);
      if (Sig.ViewParamIndex >= 0 &&
          static_cast<unsigned>(Sig.ViewParamIndex) < Handler->paramCount())
        Changed |= insert(
            G.getVarNode(Handler, Handler->paramVar(
                                      static_cast<unsigned>(Sig.ViewParamIndex))),
            View);
    }
    return Changed;
  }

  bool fireOp(size_t OpIndex) {
    const OpSite &Op = Sol.opSites()[OpIndex];
    if (Op.Dead)
      return false; // edit-scale tombstone (docs/INCREMENTAL.md)
    switch (Op.Spec.Kind) {
    case OpKind::Inflate1:
    case OpKind::Inflate2:
      return fireInflate(Op, OpIndex);
    case OpKind::AddView1: {
      bool Changed = false;
      for (NodeId W : Sol.valuesAt(Op.Recv)) {
        NodeKind K = G.node(W).Kind;
        if (K != NodeKind::Activity && K != NodeKind::Alloc)
          continue;
        for (NodeId V : Sol.viewsAt(Op.ValArg))
          if (G.addRootEdge(W, V)) {
            provEdge(FactKind::Root, W, V, DerivRule::AddView1,
                     provFlow(Op.Recv, W), provFlow(Op.ValArg, V));
            Changed = true;
          }
      }
      return Changed;
    }
    case OpKind::AddView2: {
      bool Changed = false;
      for (NodeId P : Sol.viewsAt(Op.Recv))
        for (NodeId C : Sol.viewsAt(Op.ValArg))
          if (P != C && G.addParentChildEdge(P, C)) {
            provEdge(FactKind::ParentChild, P, C, DerivRule::AddView2,
                     provFlow(Op.Recv, P), provFlow(Op.ValArg, C));
            Changed = true;
          }
      return Changed;
    }
    case OpKind::SetId: {
      bool Changed = false;
      for (NodeId V : Sol.viewsAt(Op.Recv))
        for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
          NodeKind K = G.node(IdVal).Kind;
          if (K == NodeKind::ViewId || K == NodeKind::UnknownId)
            if (G.addHasIdEdge(V, IdVal)) {
              provEdge(FactKind::HasId, V, IdVal,
                       K == NodeKind::UnknownId ? DerivRule::UnknownSource
                                                : DerivRule::SetId,
                       provFlow(Op.Recv, V), provFlow(Op.IdArg, IdVal));
              Changed = true;
            }
        }
      return Changed;
    }
    case OpKind::SetListener: {
      if (!GATOR_CHECK(Op.Spec.Listener != nullptr, &Diags,
                       "set-listener op without listener spec; site skipped")) {
        Sol.markDegraded();
        Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
        return false;
      }
      bool Changed = false;
      for (NodeId V : Sol.viewsAt(Op.Recv))
        for (NodeId L : Sol.listenerValuesAt(Op.ValArg)) {
          bool New = G.addListenerEdge(V, L);
          Changed |= New;
          if (New) {
            provEdge(FactKind::Listener, V, L, DerivRule::SetListener,
                     provFlow(Op.Recv, V), provFlow(Op.ValArg, L));
            if (Options.ModelListenerCallbacks)
              Changed |= wireHandler(V, L, *Op.Spec.Listener);
          }
        }
      return Changed;
    }
    case OpKind::FindView1:
    case OpKind::FindView2:
    case OpKind::FindView3:
      return fireFindView(Op);
    case OpKind::FragmentAdd:
      return fireFragmentAdd(Op);
    case OpKind::SetAdapter:
      return fireSetAdapter(Op);
    case OpKind::StartActivity:
    case OpKind::SetIntentClass:
      return false;
    }
    return false;
  }

  bool fireFragmentAdd(const OpSite &Op) {
    bool Changed = false;
    std::vector<NodeId> FragmentRoots;
    for (NodeId F : Sol.valuesAt(Op.ValArg)) {
      if (G.node(F).Kind != NodeKind::Alloc)
        continue;
      const ClassDecl *FClass = G.node(F).Klass;
      const MethodDecl *Factory =
          FClass ? hier::ClassHierarchy::dispatch(FClass, "onCreateView", 1)
                 : nullptr;
      if (!Factory || Factory->owner()->isPlatform())
        continue;
      NodeId ThisNode = G.getVarNode(Factory, Factory->thisVar());
      Changed |= G.addFlowEdge(F, ThisNode);
      provEdge(FactKind::FlowLink, F, ThisNode, DerivRule::FragmentAdd,
               provFlow(Op.ValArg, F));
      provCtx(DerivRule::FragmentAdd, provFlow(Op.ValArg, F));
      Changed |= insert(ThisNode, F);
      for (const Stmt &Ret : Factory->body())
        if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
          for (NodeId V : Sol.viewsAt(G.getVarNode(Factory, Ret.Lhs)))
            FragmentRoots.push_back(V);
    }
    if (FragmentRoots.empty())
      return Changed;
    std::unordered_set<NodeId> Wanted;
    for (NodeId IdVal : Sol.valuesAt(Op.IdArg))
      if (G.node(IdVal).Kind == NodeKind::ViewId)
        Wanted.insert(IdVal);
    for (NodeId Container = 0; Container < G.size(); ++Container) {
      if (!isViewNodeKind(G.node(Container).Kind))
        continue;
      bool Matches = false;
      for (NodeId IdNode : G.viewIds(Container))
        if (Wanted.count(IdNode))
          Matches = true;
      if (!Matches)
        continue;
      for (NodeId Root : FragmentRoots)
        if (Container != Root && G.addParentChildEdge(Container, Root)) {
          provEdge(FactKind::ParentChild, Container, Root,
                   DerivRule::FragmentAdd, provFlow(Root, Root));
          Changed = true;
        }
    }
    return Changed;
  }

  bool fireSetAdapter(const OpSite &Op) {
    bool Changed = false;
    for (NodeId A : Sol.valuesAt(Op.ValArg)) {
      if (G.node(A).Kind != NodeKind::Alloc)
        continue;
      const ClassDecl *AClass = G.node(A).Klass;
      const MethodDecl *Factory =
          AClass ? hier::ClassHierarchy::dispatch(AClass, "getView", 1)
                 : nullptr;
      if (!Factory || Factory->owner()->isPlatform())
        continue;
      NodeId ThisNode = G.getVarNode(Factory, Factory->thisVar());
      Changed |= G.addFlowEdge(A, ThisNode);
      provEdge(FactKind::FlowLink, A, ThisNode, DerivRule::SetAdapter,
               provFlow(Op.ValArg, A));
      provCtx(DerivRule::SetAdapter, provFlow(Op.ValArg, A));
      Changed |= insert(ThisNode, A);
      for (const Stmt &Ret : Factory->body()) {
        if (Ret.Kind != StmtKind::Return || Ret.Lhs == InvalidVar)
          continue;
        for (NodeId Item : Sol.viewsAt(G.getVarNode(Factory, Ret.Lhs)))
          for (NodeId ListView : Sol.viewsAt(Op.Recv))
            if (ListView != Item && G.addParentChildEdge(ListView, Item)) {
              provEdge(FactKind::ParentChild, ListView, Item,
                       DerivRule::SetAdapter, provFlow(Op.Recv, ListView),
                       provFlow(Item, Item));
              Changed = true;
            }
      }
    }
    return Changed;
  }

  bool sweepXmlOnClick() {
    if (!Options.ModelXmlOnClickHandlers)
      return false;
    bool Changed = false;
    for (NodeId Holder : G.rootHolders()) {
      const ClassDecl *HolderClass = G.node(Holder).Klass;
      for (NodeId Root : G.roots(Holder))
        for (NodeId V : G.descendantsOf(Root)) {
          const Node &ViewNode = G.node(V);
          if (ViewNode.Kind != NodeKind::ViewInfl || !ViewNode.LNode ||
              !ViewNode.LNode->hasOnClickHandler())
            continue;
          if (!G.addListenerEdge(V, Holder))
            continue;
          Changed = true;
          provEdge(FactKind::Listener, V, Holder, DerivRule::XmlOnClick,
                   provFlow(V, V));
          if (!HolderClass || HolderClass->isPlatform())
            continue;
          const MethodDecl *Handler = hier::ClassHierarchy::dispatch(
              HolderClass, ViewNode.LNode->onClickHandlerName(), 1);
          if (!Handler || Handler->owner()->isPlatform()) {
            Diags.warning(ViewNode.LNode->loc(),
                          "android:onClick handler '" +
                              ViewNode.LNode->onClickHandlerName() +
                              "' not found on class '" +
                              (HolderClass ? HolderClass->name()
                                           : std::string("?")) +
                              "'");
            continue;
          }
          NodeId ThisNode = G.getVarNode(Handler, Handler->thisVar());
          Changed |= G.addFlowEdge(Holder, ThisNode);
          if (Prov) {
            FactId LFact = Prov->edgeFact(FactKind::Listener, V, Holder);
            provEdge(FactKind::FlowLink, Holder, ThisNode,
                     DerivRule::XmlOnClick, LFact);
            provCtx(DerivRule::XmlOnClick, LFact);
          }
          Changed |= insert(ThisNode, Holder);
          Changed |= insert(G.getVarNode(Handler, Handler->paramVar(0)), V);
        }
    }
    return Changed;
  }

  void phasePropagation() {
    bool Changed = true;
    while (Changed) {
      if (!Tracker.checkpoint(G.size(), G.flowEdgeCount() +
                                            G.parentChildEdgeCount()))
        break;
      ++Stats.PropagationRounds;
      Changed = false;
      while (sweepFlowEdges(/*ViewsToo=*/true))
        Changed = true;
      for (size_t I = 0, E = Sol.opSites().size(); I < E; ++I) {
        if (!Tracker.charge())
          break;
        Changed |= fireOp(I);
      }
      Changed |= sweepXmlOnClick();
      if (Tracker.exhausted())
        break;
    }
  }

  ConstraintGraph &G;
  Solution &Sol;
  const layout::LayoutRegistry &Layouts;
  const AndroidModel &AM;
  const AnalysisOptions &Options;
  DiagnosticEngine &Diags;
  support::BudgetTracker Tracker;
  std::unordered_map<uint64_t, NodeId> Minted;
  PhasedStats Stats;

  ProvenanceRecorder *Prov = nullptr;
  DerivRule PRule = DerivRule::External;
  FactId PPrem[3] = {ProvenanceRecorder::NoFact, ProvenanceRecorder::NoFact,
                     ProvenanceRecorder::NoFact};
};

} // namespace

PhasedStats gator::analysis::solvePhased(ConstraintGraph &G, Solution &Sol,
                                         const layout::LayoutRegistry &Layouts,
                                         const AndroidModel &AM,
                                         const AnalysisOptions &Options,
                                         DiagnosticEngine &Diags,
                                         ProvenanceRecorder *Prov) {
  return PhasedEngine(G, Sol, Layouts, AM, Options, Diags, Prov).run();
}

std::unique_ptr<AnalysisResult> gator::analysis::runPhasedAnalysis(
    const ir::Program &P, layout::LayoutRegistry &Layouts,
    const AndroidModel &AM, const AnalysisOptions &Options,
    DiagnosticEngine &Diags) {
  auto Result = std::make_unique<AnalysisResult>();
  Result->Options = Options;
  Result->Graph = std::make_unique<ConstraintGraph>();
  Result->Sol = std::make_unique<Solution>(*Result->Graph, AM);

  Timer BuildTimer;
  Result->Graph->setDiagnostics(&Diags);
  {
    support::TraceSpan BuildSpan(Options.Trace, "graph-build");
    hier::ClassHierarchy CH(P, &Diags);
    GraphBuilder Builder(P, Layouts, AM, CH, Diags);
    Builder.setTrace(Options.Trace);
    Builder.setModelUnknownSources(Options.ModelUnknownSources);
    if (!Builder.build(*Result->Graph, Result->Sol->opSites()))
      Result->Sol->markDegraded();
    BuildSpan.arg("nodes", Result->Graph->size());
  }
  Result->BuildSeconds = BuildTimer.seconds();

  if (Options.RecordProvenance) {
    Result->Provenance = std::make_unique<ProvenanceRecorder>();
    Result->Provenance->bindGraph(Result->Graph.get());
  }

  Timer SolveTimer;
  {
    support::TraceSpan SolveSpan(Options.Trace, "solve");
    solvePhased(*Result->Graph, *Result->Sol, Layouts, AM, Options, Diags,
                Result->Provenance.get());
  }
  Result->SolveSeconds = SolveTimer.seconds();
  // Unknown-source nodes mean conservative approximations of hostile
  // input: the solution is usable but must not claim completeness.
  if (!Result->Graph->nodesOfKind(NodeKind::UnknownView).empty() ||
      !Result->Graph->nodesOfKind(NodeKind::UnknownId).empty())
    Result->Sol->markDegraded();
  return Result;
}
