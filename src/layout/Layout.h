//===- Layout.h - Layout definitions and registry ---------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout model of Section 3.2.1: a layout definition is a rooted tree
/// of nodes (viewClass, viewId), and a layout edge is a parent-child
/// relationship between such nodes. Layouts are read from XML (see
/// LayoutReader) or built programmatically; `<include>` and `<merge>` are
/// resolved into flattened trees before the analysis consumes them.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_LAYOUT_LAYOUT_H
#define GATOR_LAYOUT_LAYOUT_H

#include "layout/ResourceTable.h"
#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace gator {
namespace xml {
class XmlNode;
} // namespace xml

namespace layout {

/// One node (v, id) of a layout definition tree.
class LayoutNode {
public:
  LayoutNode(std::string ViewClassName, std::string ViewIdName,
             SourceLocation Loc = SourceLocation())
      : ViewClassName(std::move(ViewClassName)),
        ViewIdName(std::move(ViewIdName)), Loc(std::move(Loc)) {}

  /// The view class spelled in the layout. Simple names ("ImageView") are
  /// resolved against the platform model during analysis.
  const std::string &viewClassName() const { return ViewClassName; }

  /// The node's view id name, or "" when the node has no id (the paper's
  /// special value `no_id`).
  const std::string &viewIdName() const { return ViewIdName; }
  bool hasViewId() const { return !ViewIdName.empty(); }
  void setViewIdName(std::string Name) {
    ViewIdName = std::move(Name);
    ResolvedViewIdRes = InvalidResourceId;
  }

  /// Memoized result of resolving viewIdName() against the owning
  /// registry's ResourceTable. Only successful lookups are cached (name ->
  /// id bindings are append-only, so a valid id never goes stale);
  /// InvalidResourceId means "not resolved yet — look it up".
  ResourceId resolvedViewIdRes() const { return ResolvedViewIdRes; }
  void setResolvedViewIdRes(ResourceId Res) const { ResolvedViewIdRes = Res; }

  const SourceLocation &loc() const { return Loc; }

  const std::vector<std::unique_ptr<LayoutNode>> &children() const {
    return Children;
  }
  LayoutNode *addChild(std::unique_ptr<LayoutNode> Child) {
    Children.push_back(std::move(Child));
    return Children.back().get();
  }
  /// Transfers ownership of all children out of this node.
  std::vector<std::unique_ptr<LayoutNode>> takeChildren() {
    return std::move(Children);
  }

  /// For an unresolved `<include layout="@layout/x"/>` node: the included
  /// layout's name ("" otherwise).
  const std::string &includeLayoutName() const { return IncludeLayoutName; }
  bool isInclude() const { return !IncludeLayoutName.empty(); }
  void setIncludeLayoutName(std::string Name) {
    IncludeLayoutName = std::move(Name);
  }
  void clearInclude() { IncludeLayoutName.clear(); }

  /// True for a `<merge>` root, whose children splice into the includer.
  bool isMerge() const { return Merge; }
  void setMerge(bool Value) { Merge = Value; }

  /// The `android:onClick` attribute value: the name of a one-argument
  /// method on the owning activity invoked when this view is clicked
  /// ("" when absent).
  const std::string &onClickHandlerName() const { return OnClickHandlerName; }
  bool hasOnClickHandler() const { return !OnClickHandlerName.empty(); }
  void setOnClickHandlerName(std::string Name) {
    OnClickHandlerName = std::move(Name);
  }

  /// Deep copy of this subtree.
  std::unique_ptr<LayoutNode> clone() const;

  /// Number of nodes in this subtree (excluding include placeholders'
  /// targets; includes the node itself unless it is a merge root).
  unsigned subtreeSize() const;

private:
  std::string ViewClassName;
  std::string ViewIdName;
  mutable ResourceId ResolvedViewIdRes = InvalidResourceId;
  SourceLocation Loc;
  std::vector<std::unique_ptr<LayoutNode>> Children;
  std::string IncludeLayoutName;
  std::string OnClickHandlerName;
  bool Merge = false;
};

/// A named layout definition: the tree rooted at Root.
class LayoutDef {
public:
  LayoutDef(std::string Name, ResourceId Id, std::unique_ptr<LayoutNode> Root)
      : Name(std::move(Name)), Id(Id), Root(std::move(Root)) {}

  const std::string &name() const { return Name; }
  ResourceId id() const { return Id; }
  LayoutNode *root() { return Root.get(); }
  const LayoutNode *root() const { return Root.get(); }
  void setRoot(std::unique_ptr<LayoutNode> NewRoot) {
    Root = std::move(NewRoot);
  }

private:
  std::string Name;
  ResourceId Id;
  std::unique_ptr<LayoutNode> Root;
};

/// All layout definitions of an application, addressable by name or by
/// R.layout integer id.
class LayoutRegistry {
public:
  explicit LayoutRegistry(ResourceTable &Resources) : Resources(Resources) {}

  ResourceTable &resources() { return Resources; }
  const ResourceTable &resources() const { return Resources; }

  /// Registers a layout tree under \p Name; interns the layout id. Returns
  /// null and reports if the name is already registered.
  LayoutDef *add(const std::string &Name, std::unique_ptr<LayoutNode> Root,
                 DiagnosticEngine &Diags);

  LayoutDef *findByName(const std::string &Name) const;
  LayoutDef *findById(ResourceId Id) const;

  const std::vector<std::unique_ptr<LayoutDef>> &layouts() const {
    return Defs;
  }

  /// Replaces every `<include>` placeholder with a deep copy of the target
  /// layout's tree (splicing `<merge>` roots) and interns every view id.
  /// Detects include cycles. Returns false on error.
  bool resolveIncludes(DiagnosticEngine &Diags);

  /// Names of layouts that were the target of at least one `<include>`
  /// (populated by resolveIncludes). Such layouts are "used" even when
  /// no code inflates them directly.
  const std::unordered_set<std::string> &includedLayouts() const {
    return IncludeTargets;
  }

private:
  bool resolveIncludesIn(LayoutDef &Def, LayoutNode &Node,
                         std::vector<std::string> &Stack,
                         DiagnosticEngine &Diags);

  ResourceTable &Resources;
  std::vector<std::unique_ptr<LayoutDef>> Defs;
  std::unordered_map<std::string, LayoutDef *> ByName;
  std::unordered_set<std::string> IncludeTargets;
};

/// Converts a parsed layout XML document into a LayoutNode tree.
///
/// Conventions (the textual counterparts of Android's resource format):
///  - element tag = view class name (simple or qualified);
///  - `android:id="@+id/name"` or `"@id/name"` assigns a view id;
///  - `<include layout="@layout/name"/>` yields an include placeholder,
///    optionally overriding the target root's id via its own android:id;
///  - `<merge>` as document root marks a splice-on-include tree.
std::unique_ptr<LayoutNode> layoutFromXml(const xml::XmlNode &Doc,
                                          DiagnosticEngine &Diags);

/// Parses layout XML text and registers it in \p Registry under \p Name.
/// Returns the new LayoutDef, or null on error.
LayoutDef *readLayoutXml(LayoutRegistry &Registry, const std::string &Name,
                         std::string_view XmlText, DiagnosticEngine &Diags);

} // namespace layout
} // namespace gator

#endif // GATOR_LAYOUT_LAYOUT_H
