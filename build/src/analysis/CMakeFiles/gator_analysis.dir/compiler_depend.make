# Empty compiler generated dependencies file for gator_analysis.
# This may be replaced when dependencies are built.
