//===- hier_test.cpp - Class hierarchy / CHA unit tests ---------*- C++ -*-===//

#include "hier/ClassHierarchy.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace gator;
using namespace gator::hier;
using namespace gator::ir;

namespace {

class HierTest : public ::testing::Test {
protected:
  //   I (interface)       A
  //    |                 / |
  //    +--------------- B  C
  //                     |
  //                     D
  // A.m concrete; B overrides m; D inherits B.m; C inherits A.m.
  void SetUp() override {
    ProgramBuilder Builder(P, Diags);
    Builder.makeInterface("I").decl()->addMethod("h", "void");
    ClassBuilder A = Builder.makeClass("A");
    {
      MethodBuilder M = A.method("m", "void");
      M.local("x", "A");
      M.assignNull("x");
    }
    ClassBuilder B = Builder.makeClass("B");
    B.extends("A").implements("I");
    {
      MethodBuilder M = B.method("m", "void");
      M.local("x", "B");
      M.assignNull("x");
    }
    {
      MethodBuilder H = B.method("h", "void");
      H.local("x", "B");
      H.assignNull("x");
    }
    Builder.makeClass("C").extends("A");
    Builder.makeClass("D").extends("B");
    ASSERT_TRUE(Builder.finish());
    CH = std::make_unique<ClassHierarchy>(P);
  }

  std::vector<std::string> subtypeNames(const char *Name) {
    std::vector<std::string> Result;
    for (const ClassDecl *C : CH->subtypesOf(P.findClass(Name)))
      Result.push_back(C->name());
    std::sort(Result.begin(), Result.end());
    return Result;
  }

  std::vector<std::string> targets(const char *Recv, const char *Method) {
    std::vector<std::string> Result;
    for (const MethodDecl *M :
         CH->resolveVirtualCall(P.findClass(Recv), Method, 0))
      Result.push_back(M->owner()->name());
    std::sort(Result.begin(), Result.end());
    return Result;
  }

  Program P;
  DiagnosticEngine Diags;
  std::unique_ptr<ClassHierarchy> CH;
};

TEST_F(HierTest, SubtypesIncludeSelfAndTransitive) {
  EXPECT_EQ(subtypeNames("A"), (std::vector<std::string>{"A", "B", "C", "D"}));
  EXPECT_EQ(subtypeNames("B"), (std::vector<std::string>{"B", "D"}));
  EXPECT_EQ(subtypeNames("D"), (std::vector<std::string>{"D"}));
}

TEST_F(HierTest, InterfaceSubtypesAreImplementors) {
  EXPECT_EQ(subtypeNames("I"), (std::vector<std::string>{"B", "D", "I"}));
}

TEST_F(HierTest, ChaCollectsAllOverrides) {
  // Call through A: A.m (for A, C) and B.m (for B, D), deduplicated.
  EXPECT_EQ(targets("A", "m"), (std::vector<std::string>{"A", "B"}));
}

TEST_F(HierTest, ChaThroughExactType) {
  EXPECT_EQ(targets("C", "m"), (std::vector<std::string>{"A"}));
  EXPECT_EQ(targets("D", "m"), (std::vector<std::string>{"B"}));
}

TEST_F(HierTest, ChaThroughInterface) {
  // I.h dispatches to B.h (inherited by D; same body, deduplicated).
  EXPECT_EQ(targets("I", "h"), (std::vector<std::string>{"B"}));
}

TEST_F(HierTest, ExactDispatchSkipsAbstract) {
  EXPECT_EQ(ClassHierarchy::dispatch(P.findClass("I"), "h", 0), nullptr);
  const MethodDecl *M = ClassHierarchy::dispatch(P.findClass("D"), "m", 0);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->owner()->name(), "B");
}

TEST_F(HierTest, UnknownMethodResolvesToNothing) {
  EXPECT_TRUE(targets("A", "ghost").empty());
}

TEST_F(HierTest, ArityDistinguishesOverloads) {
  EXPECT_TRUE(CH->resolveVirtualCall(P.findClass("A"), "m", 2).empty());
}

} // namespace
