# Empty compiler generated dependencies file for gator_baseline.
# This may be replaced when dependencies are built.
