//===- Hash.h - Shared hashing primitives -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one home for the project's hashing primitives (docs/INCREMENTAL.md).
/// Before this header existed, FNV-1a and the Fibonacci multiply-shift
/// spread were re-implemented inline in StringInterner, FlatIdMap, and the
/// graph key packers; they now all delegate here, and the content-addressed
/// solution cache builds its 128-bit keys on the same primitives.
///
///  - fnv1a64(): the classic 64-bit FNV-1a byte loop. Identifiers and
///    source units are short-to-medium byte strings, so the simple loop
///    beats fancier mixers at these sizes.
///  - fibonacciSlot(): multiply-shift spreading for power-of-2 open
///    addressing; FNV low bits correlate on short common-suffix names and
///    packed ids share low-bit structure, so every probe multiplies first.
///  - Hash128 / ContentHasher: a streaming 128-bit content key built from
///    two independent FNV-1a lanes (distinct offset bases, the second lane
///    additionally pre-mixed per chunk). 64 bits is not enough for a
///    content-addressed cache that must never alias two different apps;
///    two decorrelated 64-bit lanes give a practical 128-bit key without
///    pulling in a new dependency.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_HASH_H
#define GATOR_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gator {
namespace support {

/// FNV-1a offset basis / prime (64-bit variant).
inline constexpr uint64_t Fnv1aOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t Fnv1aPrime = 1099511628211ULL;

/// The golden-ratio multiplier used by every Fibonacci multiply-shift
/// spread in the project (interner slots, FlatIdMap probing).
inline constexpr uint64_t GoldenGamma = 0x9e3779b97f4a7c15ULL;

/// One FNV-1a step over a single byte.
inline constexpr uint64_t fnv1a64Step(uint64_t H, unsigned char C) {
  return (H ^ C) * Fnv1aPrime;
}

/// FNV-1a over \p Text, continuing from \p Seed (defaults to the standard
/// offset basis, so `fnv1a64(text)` is the classic hash).
inline constexpr uint64_t fnv1a64(std::string_view Text,
                                  uint64_t Seed = Fnv1aOffsetBasis) {
  uint64_t H = Seed;
  for (unsigned char C : Text)
    H = fnv1a64Step(H, C);
  return H;
}

/// Maps \p Hash into a power-of-2 slot table of size `Mask + 1`.
/// Multiply-shift before masking: the raw low bits of FNV (and of packed
/// integer keys) correlate, the golden-ratio product's high bits do not.
inline constexpr size_t fibonacciSlot(uint64_t Hash, size_t Mask) {
  return static_cast<size_t>((Hash * GoldenGamma) >> 32) & Mask;
}

/// A 128-bit content key as two 64-bit lanes.
struct Hash128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Hash128 &O) const { return Hi == O.Hi && Lo == O.Lo; }
  bool operator!=(const Hash128 &O) const { return !(*this == O); }

  /// 32 lowercase hex digits; doubles as the on-disk cache file stem.
  std::string hex() const {
    static const char Digits[] = "0123456789abcdef";
    std::string S(32, '0');
    uint64_t Parts[2] = {Hi, Lo};
    for (int P = 0; P < 2; ++P)
      for (int I = 0; I < 16; ++I)
        S[P * 16 + I] = Digits[(Parts[P] >> (60 - 4 * I)) & 0xF];
    return S;
  }
};

/// Streaming 128-bit hasher. Feed it tagged chunks; the tag bytes make the
/// encoding prefix-free enough that ("ab","c") and ("a","bc") produce
/// different keys (each chunk is framed by its length).
class ContentHasher {
public:
  ContentHasher() = default;

  /// Mixes a length-framed byte chunk into both lanes.
  ContentHasher &update(std::string_view Bytes) {
    mixU64(Bytes.size());
    for (unsigned char C : Bytes) {
      A = fnv1a64Step(A, C);
      B = fnv1a64Step(B, C);
    }
    // Decorrelate the lanes between chunks: lane B absorbs a rotated,
    // golden-mixed copy of lane A so the two lanes never track each other
    // even though both run the same byte loop.
    B ^= (A * GoldenGamma);
    B = (B << 27) | (B >> 37);
    return *this;
  }

  /// Convenience: a named field. The label keeps reordered field writes
  /// from colliding.
  ContentHasher &field(std::string_view Label, std::string_view Value) {
    update(Label);
    update(Value);
    return *this;
  }

  ContentHasher &u64(uint64_t V) {
    mixU64(V);
    return *this;
  }

  ContentHasher &u64(std::string_view Label, uint64_t V) {
    update(Label);
    mixU64(V);
    return *this;
  }

  ContentHasher &f64(std::string_view Label, double V) {
    // Bit-pattern hashing; -0.0 vs 0.0 producing distinct keys is fine for
    // a cache (worst case: one redundant miss).
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    return u64(Label, Bits);
  }

  ContentHasher &boolean(std::string_view Label, bool V) {
    return u64(Label, V ? 1 : 0);
  }

  Hash128 digest() const {
    // Final avalanche so short inputs still touch every output bit.
    uint64_t Hi = A, Lo = B;
    Hi ^= Hi >> 33;
    Hi *= GoldenGamma;
    Hi ^= Hi >> 29;
    Lo ^= Hi;
    Lo *= Fnv1aPrime;
    Lo ^= Lo >> 32;
    return {Hi, Lo};
  }

private:
  void mixU64(uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      unsigned char C = static_cast<unsigned char>(V >> (I * 8));
      A = fnv1a64Step(A, C);
      B = fnv1a64Step(B, C);
    }
  }

  /// Lane seeds: the standard offset basis and an independently chosen
  /// second basis (the standard basis advanced over "gator/2") so the two
  /// lanes disagree from the first byte on.
  uint64_t A = Fnv1aOffsetBasis;
  uint64_t B = fnv1a64("gator/2");
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_HASH_H
