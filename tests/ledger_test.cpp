//===- ledger_test.cpp - Run ledger, fleet reports, and diffs -------------===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
// The run-ledger stack (docs/OBSERVABILITY.md, "Run ledger & reports"):
// the JSON DOM parser, wide-event JSONL round-trips, fleet-report
// aggregation and outlier ranking, ledger diffs, and the composition
// contract — a hostile fleet's ledger is field-identical at every job
// count, cold or warm, with the cache and fidelity flags telling the
// truth.
//
//===----------------------------------------------------------------------===//

#include "analysis/SolutionCache.h"
#include "corpus/BatchRunner.h"
#include "corpus/FleetReport.h"
#include "support/JsonParse.h"
#include "support/Metrics.h"
#include "support/WideEvent.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace gator;
using namespace gator::support;
using namespace gator::corpus;

//===----------------------------------------------------------------------===//
// JsonValue parser
//===----------------------------------------------------------------------===//

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(Text, V, Error)) << Error;
  return V;
}

std::string parseErr(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse(Text, V, Error)) << "parsed: " << Text;
  return Error;
}

} // namespace

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseOk("-3.5").asNumber(), -3.5);
  EXPECT_DOUBLE_EQ(parseOk("1e3").asNumber(), 1000.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
  EXPECT_EQ(parseOk("  7  ").asU64(), 7u);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  EXPECT_EQ(parseOk("\"a\\nb\"").asString(), "a\nb");
  EXPECT_EQ(parseOk("\"q\\\"q\"").asString(), "q\"q");
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9"); // é in UTF-8
  EXPECT_EQ(parseOk("\"\\\\\\/\"").asString(), "\\/");
}

TEST(JsonParseTest, ObjectMembersKeepDocumentOrder) {
  JsonValue V = parseOk("{\"z\": 1, \"a\": [true, null], \"m\": {\"k\": 2}}");
  ASSERT_TRUE(V.isObject());
  ASSERT_EQ(V.members().size(), 3u);
  EXPECT_EQ(V.members()[0].first, "z");
  EXPECT_EQ(V.members()[1].first, "a");
  EXPECT_EQ(V.members()[2].first, "m");
  ASSERT_NE(V.find("a"), nullptr);
  ASSERT_EQ(V.find("a")->array().size(), 2u);
  EXPECT_TRUE(V.find("a")->array()[0].asBool());
  EXPECT_EQ(V.find("m")->u64Or("k", 0), 2u);
  EXPECT_EQ(V.find("missing"), nullptr);
  EXPECT_EQ(V.u64Or("z", 9), 1u);
  EXPECT_EQ(V.u64Or("nope", 9), 9u);
  EXPECT_EQ(V.stringOr("nope", "d"), "d");
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_NE(parseErr("{").find("offset"), std::string::npos);
  parseErr("\"unterminated");
  parseErr("{\"a\": 1,}");
  parseErr("[1 2]");
  parseErr("tru");
  parseErr("1 trailing");
  parseErr("");
  // Depth guard: 70 nested arrays exceed the 64-level limit.
  std::string Deep(70, '[');
  Deep += std::string(70, ']');
  EXPECT_NE(parseErr(Deep).find("nesting too deep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// WideEvent JSONL round-trip
//===----------------------------------------------------------------------===//

namespace {

WideEvent sampleEvent() {
  WideEvent E;
  E.Index = 3;
  E.App = "App3";
  E.ContentKey = "0123456789abcdef0123456789abcdef";
  E.ExitCode = 1;
  E.Fidelity = "degraded-input";
  E.Cache = "hit";
  E.Classes = 12;
  E.Methods = 40;
  E.GraphNodes = 500;
  E.FlowEdges = 900;
  E.Propagations = 12345;
  E.PeakSetSize = 7;
  E.UnknownViews = 2;
  E.UnknownByReason.emplace_back("reflective_new", 2);
  E.UnknownByReason.emplace_back("dynamic_id", 1);
  E.ArenaBytes = 65536;
  E.BuildSeconds = 0.25;
  E.SolveSeconds = 1.5;
  E.SccCount = 9;
  E.BarrierWaves = 4;
  return E;
}

std::string ledgerText(const LedgerHeader &H,
                       const std::vector<WideEvent> &Events) {
  std::ostringstream OS;
  writeLedger(OS, H, Events);
  return OS.str();
}

} // namespace

TEST(WideEventTest, RoundTripsThroughJsonl) {
  LedgerHeader H;
  H.OptionsDigest = "ffff0000ffff0000ffff0000ffff0000";
  const std::string Text = ledgerText(H, {sampleEvent()});

  Ledger L;
  std::string Error;
  ASSERT_TRUE(readLedger(Text, L, Error)) << Error;
  EXPECT_EQ(L.Header.Format, LedgerHeader::FormatVersion);
  EXPECT_EQ(L.Header.OptionsDigest, H.OptionsDigest);
  EXPECT_EQ(L.Header.Apps, 1u);
  EXPECT_FALSE(L.Header.NoTimes);
  ASSERT_EQ(L.Events.size(), 1u);
  const WideEvent &E = L.Events[0];
  EXPECT_EQ(E.Index, 3u);
  EXPECT_EQ(E.App, "App3");
  EXPECT_EQ(E.ContentKey, "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(E.ExitCode, 1);
  EXPECT_EQ(E.Fidelity, "degraded-input");
  EXPECT_EQ(E.Cache, "hit");
  EXPECT_EQ(E.Propagations, 12345u);
  EXPECT_EQ(E.unknownTotal(), 3u);
  ASSERT_EQ(E.UnknownByReason.size(), 2u);
  EXPECT_EQ(E.UnknownByReason[0].first, "reflective_new");
  EXPECT_EQ(E.UnknownByReason[1].second, 1u);
  EXPECT_DOUBLE_EQ(E.SolveSeconds, 1.5);
  EXPECT_EQ(E.SccCount, 9u);

  // Re-serialization is byte-stable: write(read(write(E))) == write(E).
  EXPECT_EQ(ledgerText(L.Header, L.Events), Text);
}

TEST(WideEventTest, NoTimesSuppressesVolatileFields) {
  LedgerHeader H;
  H.NoTimes = true;
  const std::string Text = ledgerText(H, {sampleEvent()});
  EXPECT_EQ(Text.find("solve_seconds"), std::string::npos);
  EXPECT_EQ(Text.find("build_seconds"), std::string::npos);
  EXPECT_EQ(Text.find("peak_rss_bytes"), std::string::npos);
  EXPECT_EQ(Text.find("scc_count"), std::string::npos);
  EXPECT_EQ(Text.find("barrier_waves"), std::string::npos);
  EXPECT_NE(Text.find("propagations"), std::string::npos);

  Ledger L;
  std::string Error;
  ASSERT_TRUE(readLedger(Text, L, Error)) << Error;
  EXPECT_TRUE(L.Header.NoTimes);
  ASSERT_EQ(L.Events.size(), 1u);
  EXPECT_DOUBLE_EQ(L.Events[0].SolveSeconds, 0.0);
  EXPECT_EQ(L.Events[0].SccCount, 0u);
  EXPECT_EQ(L.Events[0].Propagations, 12345u);
}

TEST(WideEventTest, ReadLedgerRefusesBadHeaders) {
  Ledger L;
  std::string Error;
  EXPECT_FALSE(readLedger("", L, Error));
  EXPECT_FALSE(readLedger("{\"index\":0,\"app\":\"x\"}", L, Error));
  // Version skew must refuse, not mis-parse.
  EXPECT_FALSE(readLedger(
      "{\"ledger_format\":99,\"tool\":\"gator-cpp\",\"options_digest\":\"a\","
      "\"no_times\":false,\"apps\":0}",
      L, Error));
  EXPECT_NE(Error.find("format"), std::string::npos);
  // Blank lines are tolerated.
  LedgerHeader H;
  EXPECT_TRUE(readLedger(ledgerText(H, {}) + "\n\n", L, Error)) << Error;
  EXPECT_TRUE(L.Events.empty());
}

//===----------------------------------------------------------------------===//
// Histogram quantiles
//===----------------------------------------------------------------------===//

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  Histogram H({10, 20});
  H.observe(5);  // bucket (0, 10]
  H.observe(15); // bucket (10, 20]
  H.observe(15);
  H.observe(99); // +Inf bucket
  // p50: rank 2 lands in the second bucket, halfway through its 2 counts.
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 15.0);
  // p99: rank 3.96 lands in the +Inf bucket, clamped to the last bound.
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 20.0);
  // p25: rank 1 is exactly the first bucket's cumulative count — the
  // bucket's upper bound.
  EXPECT_DOUBLE_EQ(H.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.0), 0.0); // rank 0: the lower edge
  EXPECT_DOUBLE_EQ(Histogram({10}).quantile(0.5), 0.0); // empty
}

//===----------------------------------------------------------------------===//
// FleetReport aggregation
//===----------------------------------------------------------------------===//

namespace {

/// A five-app ledger with one degraded app, one cache miss, and spread-out
/// propagation counts for percentile/outlier checks.
Ledger syntheticLedger() {
  Ledger L;
  L.Header.OptionsDigest = "aaaa0000aaaa0000aaaa0000aaaa0000";
  L.Header.NoTimes = true;
  for (uint64_t I = 0; I < 5; ++I) {
    WideEvent E;
    E.Index = I;
    E.App = "App" + std::to_string(I);
    E.ContentKey = std::string(31, 'b') + static_cast<char>('0' + I);
    E.Propagations = (I + 1) * 100; // 100..500
    E.PeakSetSize = 4;              // constant: outlier ties
    E.Cache = I == 2 ? "miss" : "hit";
    if (I == 4) {
      E.Fidelity = "degraded-input";
      E.ExitCode = 1;
      E.UnknownByReason.emplace_back("dynamic_id", 3);
    }
    L.Events.push_back(std::move(E));
  }
  L.Header.Apps = L.Events.size();
  return L;
}

const FieldSummary *findSummary(const FleetReport &R,
                                const std::string &Name) {
  for (const FieldSummary &F : R.Fields)
    if (F.Field == Name)
      return &F;
  return nullptr;
}

} // namespace

TEST(FleetReportTest, AggregatesCountsAndPercentiles) {
  const FleetReport R = buildFleetReport(syntheticLedger());
  EXPECT_EQ(R.Apps, 5u);
  EXPECT_EQ(R.Degraded, 1u);
  EXPECT_EQ(R.CacheHits, 4u);
  EXPECT_EQ(R.CacheMisses, 1u);
  EXPECT_EQ(R.CacheOff, 0u);
  ASSERT_EQ(R.ByFidelity.size(), 2u);
  EXPECT_EQ(R.ByFidelity[0].first, "complete");
  EXPECT_EQ(R.ByFidelity[0].second, 4u);
  ASSERT_EQ(R.UnknownByReason.size(), 1u);
  EXPECT_EQ(R.UnknownByReason[0].first, "dynamic_id");
  EXPECT_EQ(R.UnknownByReason[0].second, 3u);

  const FieldSummary *P = findSummary(R, "propagations");
  ASSERT_NE(P, nullptr);
  EXPECT_DOUBLE_EQ(P->Sum, 1500.0);
  // Nearest-rank percentiles over {100..500}: exact data values, never
  // interpolations.
  EXPECT_DOUBLE_EQ(P->P50, 300.0);
  EXPECT_DOUBLE_EQ(P->P90, 500.0);
  EXPECT_DOUBLE_EQ(P->Max, 500.0);
  // Volatile fields are absent from a --no-times ledger's report.
  EXPECT_EQ(findSummary(R, "solve_seconds"), nullptr);
}

TEST(FleetReportTest, OutliersRankByValueThenIndex) {
  const FleetReport R = buildFleetReport(syntheticLedger());
  const FleetReport::Dimension *Props = nullptr, *Peaks = nullptr;
  for (const FleetReport::Dimension &D : R.Outliers) {
    if (D.Name == "propagations")
      Props = &D;
    if (D.Name == "peak_set_size")
      Peaks = &D;
  }
  ASSERT_NE(Props, nullptr);
  ASSERT_EQ(Props->Top.size(), 5u);
  EXPECT_EQ(Props->Top[0].App, "App4"); // 500 first
  EXPECT_DOUBLE_EQ(Props->Top[0].Value, 500.0);
  EXPECT_EQ(Props->Top[4].App, "App0");
  // All-equal dimension: ties break toward the lower input index.
  ASSERT_NE(Peaks, nullptr);
  EXPECT_EQ(Peaks->Top[0].Index, 0u);
  EXPECT_EQ(Peaks->Top[1].Index, 1u);
}

TEST(FleetReportTest, RendersDeterministically) {
  const Ledger L = syntheticLedger();
  std::ostringstream A, B;
  writeFleetReportJson(A, buildFleetReport(L));
  writeFleetReportJson(B, buildFleetReport(L));
  EXPECT_EQ(A.str(), B.str());
  EXPECT_NE(A.str().find("\"report_format\":1"), std::string::npos);
  EXPECT_NE(A.str().find("\"options_digest\""), std::string::npos);

  // The JSON report re-parses with our own parser (schema smoke test).
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(JsonValue::parse(A.str(), V, Error)) << Error;
  EXPECT_EQ(V.u64Or("apps", 0), 5u);
  ASSERT_NE(V.find("fields"), nullptr);
  EXPECT_FALSE(V.find("fields")->array().empty());
}

//===----------------------------------------------------------------------===//
// Ledger diffs
//===----------------------------------------------------------------------===//

TEST(LedgerDiffTest, SelfDiffIsEmpty) {
  const Ledger L = syntheticLedger();
  const LedgerDiff D = diffLedgers(L, L);
  EXPECT_TRUE(D.empty());
  std::ostringstream OS;
  writeLedgerDiffText(OS, D);
  EXPECT_NE(OS.str().find("no differences"), std::string::npos);
}

TEST(LedgerDiffTest, FlagsRegressionsAndRespectsThreshold) {
  const Ledger Old = syntheticLedger();
  Ledger New = syntheticLedger();
  New.Events[0].Fidelity = "truncated-budget"; // newly degraded
  New.Events[1].Cache = "miss";                // newly cache-missed
  New.Events[2].Propagations += 400;           // 300 -> 700
  New.Events[3].Propagations += 10;            // 400 -> 410 (2.5%)
  // Volatile fields must never flag.
  New.Events[3].SolveSeconds = 123.0;

  const LedgerDiff Any = diffLedgers(Old, New, /*ThresholdPct=*/0);
  ASSERT_EQ(Any.Apps.size(), 4u);
  EXPECT_TRUE(Any.Apps[0].NewlyDegraded);
  EXPECT_EQ(Any.Apps[0].NewFidelity, "truncated-budget");
  EXPECT_TRUE(Any.Apps[1].NewlyCacheMissed);
  ASSERT_EQ(Any.Apps[2].Counters.size(), 1u);
  EXPECT_EQ(Any.Apps[2].Counters[0].Field, "propagations");
  EXPECT_DOUBLE_EQ(Any.Apps[2].Counters[0].New, 700.0);

  // At 50% the small counter drift drops out; the flags survive.
  const LedgerDiff Thresh = diffLedgers(Old, New, /*ThresholdPct=*/50);
  ASSERT_EQ(Thresh.Apps.size(), 3u);
  for (const AppDelta &A : Thresh.Apps)
    for (const FieldDelta &C : A.Counters)
      EXPECT_EQ(C.Field, "propagations");
}

TEST(LedgerDiffTest, TracksMembershipByContentKey) {
  const Ledger Old = syntheticLedger();
  Ledger New = syntheticLedger();
  New.Events.erase(New.Events.begin()); // App0 vanished
  WideEvent Fresh;
  Fresh.Index = 9;
  Fresh.App = "AppNew";
  Fresh.ContentKey = std::string(32, 'f');
  New.Events.push_back(std::move(Fresh));

  const LedgerDiff D = diffLedgers(Old, New);
  ASSERT_EQ(D.OnlyInOld.size(), 1u);
  EXPECT_NE(D.OnlyInOld[0].find("App0"), std::string::npos);
  ASSERT_EQ(D.OnlyInNew.size(), 1u);
  EXPECT_NE(D.OnlyInNew[0].find("AppNew"), std::string::npos);
  EXPECT_FALSE(D.empty());
}

TEST(LedgerDiffTest, RefusesIncomparableLedgers) {
  const Ledger Old = syntheticLedger();
  Ledger New = syntheticLedger();
  New.Header.OptionsDigest = "cccc0000cccc0000cccc0000cccc0000";
  const LedgerDiff D = diffLedgers(Old, New);
  EXPECT_FALSE(D.Incomparable.empty());
  EXPECT_FALSE(D.empty());
  EXPECT_TRUE(D.Apps.empty());
  std::ostringstream OS;
  writeLedgerDiffText(OS, D);
  EXPECT_NE(OS.str().find("diff refused"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Composition: hostile fleet x cache x jobs x solve-jobs
//===----------------------------------------------------------------------===//

namespace {

/// A small hostile fleet: every fourth app draws a reflective
/// constructor, a dynamic find id, or a missing layout, so the ledger
/// carries both complete and degraded records.
std::vector<AppSpec> hostileFleet() {
  FleetSpec FS;
  FS.Apps = 16;
  FS.ReflectivePercent = 25;
  FS.DynamicIdPercent = 25;
  FS.MissingLayoutPercent = 25;
  return makeFleet(FS);
}

std::string noTimesLedgerText(const support::Ledger &L) {
  support::LedgerHeader H = L.Header;
  H.NoTimes = true;
  std::ostringstream OS;
  writeLedger(OS, H, L.Events);
  return OS.str();
}

} // namespace

TEST(LedgerCompositionTest, HostileFleetLedgerIdenticalAtEveryJobCount) {
  const std::vector<AppSpec> Specs = hostileFleet();

  // Cold reference at the all-serial point.
  analysis::AnalysisOptions Ref;
  std::vector<BatchAppResult> RefBatch =
      analyzeCorpus(Specs, Ref, nullptr, /*KeepArtifacts=*/false);
  const support::Ledger RefLedger =
      fleetLedger(Specs, Ref, RefBatch, /*CacheEnabled=*/false,
                  /*NoTimes=*/true);
  const std::string RefText = noTimesLedgerText(RefLedger);

  size_t Degraded = 0;
  for (const support::WideEvent &E : RefLedger.Events) {
    EXPECT_EQ(E.Cache, "off");
    if (E.Fidelity != "complete") {
      ++Degraded;
      EXPECT_EQ(E.ExitCode, 1);
      EXPECT_GT(E.unknownTotal(), 0u);
    } else {
      EXPECT_EQ(E.ExitCode, 0);
    }
  }
  EXPECT_GT(Degraded, 0u);
  EXPECT_LT(Degraded, RefLedger.Events.size());

  // Every (batch jobs, solve jobs) combination reproduces the reference
  // text byte for byte — the determinism contract of the ledger.
  for (unsigned Jobs : {1u, 4u})
    for (unsigned SolveJobs : {1u, 4u}) {
      analysis::AnalysisOptions Options;
      Options.Jobs = Jobs;
      Options.SolveJobs = SolveJobs;
      std::vector<BatchAppResult> Batch =
          analyzeCorpus(Specs, Options, nullptr, /*KeepArtifacts=*/false);
      const support::Ledger L = fleetLedger(Specs, Options, Batch,
                                            /*CacheEnabled=*/false,
                                            /*NoTimes=*/true);
      EXPECT_EQ(noTimesLedgerText(L), RefText)
          << "jobs=" << Jobs << " solve-jobs=" << SolveJobs;
    }
}

TEST(LedgerCompositionTest, WarmCacheLedgerMatchesColdWithHitFlags) {
  const std::vector<AppSpec> Specs = hostileFleet();
  analysis::AnalysisOptions Options;
  analysis::SolutionCache Cache("", Specs.size() + 8);

  std::vector<BatchAppResult> Cold = analyzeCorpus(
      Specs, Options, nullptr, /*KeepArtifacts=*/false, &Cache);
  const support::Ledger ColdLedger =
      fleetLedger(Specs, Options, Cold, /*CacheEnabled=*/true,
                  /*NoTimes=*/true);
  for (const support::WideEvent &E : ColdLedger.Events)
    EXPECT_EQ(E.Cache, "miss");

  // Warm passes at every job combination replay hits whose ledgers are
  // byte-identical to each other and field-identical to the cold pass.
  std::string WarmText;
  for (unsigned Jobs : {1u, 4u})
    for (unsigned SolveJobs : {1u, 4u}) {
      analysis::AnalysisOptions WarmOptions;
      WarmOptions.Jobs = Jobs;
      WarmOptions.SolveJobs = SolveJobs;
      std::vector<BatchAppResult> Warm = analyzeCorpus(
          Specs, WarmOptions, nullptr, /*KeepArtifacts=*/false, &Cache);
      const support::Ledger L = fleetLedger(Specs, WarmOptions, Warm,
                                            /*CacheEnabled=*/true,
                                            /*NoTimes=*/true);
      for (const support::WideEvent &E : L.Events)
        EXPECT_EQ(E.Cache, "hit") << E.App;
      const std::string Text = noTimesLedgerText(L);
      if (WarmText.empty())
        WarmText = Text;
      else
        EXPECT_EQ(Text, WarmText)
            << "jobs=" << Jobs << " solve-jobs=" << SolveJobs;

      // Cold-vs-warm diff: only the cache flag moved (miss -> hit is not
      // a regression), so the diff must be empty.
      const LedgerDiff D = diffLedgers(ColdLedger, L);
      EXPECT_TRUE(D.empty());
    }
}
