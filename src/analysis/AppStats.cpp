//===- AppStats.cpp - Table 1 style application statistics ------*- C++ -*-===//

#include "analysis/AppStats.h"

#include "support/Metrics.h"
#include "support/WideEvent.h"

#include <algorithm>
#include <iomanip>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;

AppStats gator::analysis::collectAppStats(const std::string &Name,
                                          const ir::Program &P,
                                          const AnalysisResult &Result) {
  AppStats Stats;
  Stats.Name = Name;
  Stats.Classes = P.appClassCount();
  Stats.Methods = P.appMethodCount();

  const ConstraintGraph &G = *Result.Graph;
  const AndroidModel &AM = Result.Sol->androidModel();
  for (NodeId Id = 0; Id < G.size(); ++Id) {
    const Node &N = G.node(Id);
    switch (N.Kind) {
    case NodeKind::LayoutId:
      ++Stats.LayoutIds;
      break;
    case NodeKind::ViewId:
      ++Stats.ViewIds;
      break;
    case NodeKind::ViewInfl:
      ++Stats.InflViews;
      break;
    case NodeKind::ViewAlloc:
      ++Stats.AllocViews;
      if (AM.isListenerClass(N.Klass))
        ++Stats.Listeners; // views can be listeners (general case)
      break;
    case NodeKind::Alloc:
      if (AM.isListenerClass(N.Klass))
        ++Stats.Listeners;
      break;
    case NodeKind::Activity:
      if (AM.isListenerClass(N.Klass))
        ++Stats.Listeners;
      break;
    case NodeKind::UnknownView:
      ++Stats.UnknownViews;
      ++Stats.UnknownByReason[static_cast<size_t>(N.Unknown)];
      break;
    case NodeKind::UnknownId:
      ++Stats.UnknownIds;
      ++Stats.UnknownByReason[static_cast<size_t>(N.Unknown)];
      break;
    case NodeKind::Op:
      switch (N.Op) {
      case OpKind::Inflate1:
      case OpKind::Inflate2:
        ++Stats.OpInflate;
        break;
      case OpKind::FindView1:
      case OpKind::FindView2:
      case OpKind::FindView3:
        ++Stats.OpFindView;
        break;
      case OpKind::AddView1:
      case OpKind::AddView2:
        ++Stats.OpAddView;
        break;
      case OpKind::SetListener:
        ++Stats.OpSetListener;
        break;
      case OpKind::SetId:
        ++Stats.OpSetId;
        break;
      default:
        break;
      }
      break;
    default:
      break;
    }
  }

  Stats.Propagations = Result.Stats.Propagations;
  Stats.OpFirings = Result.Stats.OpFirings;
  Stats.ValuesPushed = Result.Stats.ValuesPushed;
  Stats.DedupHits = Result.Stats.DedupHits;
  Stats.PeakSetSize = Result.Stats.PeakSetSize;
  Stats.PromotedSets = Result.Stats.PromotedSets;
  Stats.DescCacheHits = Result.Stats.DescCacheHits;
  Stats.DescCacheMisses = Result.Stats.DescCacheMisses;
  Stats.HierarchyRevisions = Result.Stats.HierarchyRevisions;
  Stats.SccCount = Result.Stats.SccCount;
  Stats.SccMaxSize = Result.Stats.SccMaxSize;
  Stats.SccStrata = Result.Stats.SccStrata;
  Stats.SccRecondensations = Result.Stats.SccRecondensations;
  Stats.ParallelRounds = Result.Stats.ParallelRounds;
  Stats.BarrierWaves = Result.Stats.BarrierWaves;
  Stats.BarrierStalls = Result.Stats.BarrierStalls;
  Stats.SolutionFidelity = Result.Sol->fidelity();
  Stats.UnresolvedOps = Result.Sol->unresolvedOps().size();
  Stats.WorkCharged = Result.Stats.WorkCharged;

  Stats.GraphNodes = G.size();
  Stats.FlowEdges = G.flowEdgeCount();
  Stats.ParentChildEdges = G.parentChildEdgeCount();
  Stats.PeakVarWorklist = Result.Stats.PeakVarWorklist;
  Stats.PeakOpWorklist = Result.Stats.PeakOpWorklist;
  for (size_t K = 0; K < NumOpKinds; ++K)
    Stats.FiringsByKind[K] = Result.Stats.FiringsByKind[K];

  // Per-kind resolution outcomes: a site resolved when its result (or,
  // for structural ops, its receiver) received at least one value.
  const Solution &Sol = *Result.Sol;
  for (const OpSite &Op : Sol.opSites()) {
    size_t K = static_cast<size_t>(Op.Spec.Kind);
    ++Stats.SitesByKind[K];
    NodeId Probe = Op.Out != InvalidNode ? Op.Out : Op.Recv;
    if (!Sol.valuesAt(Probe).empty())
      ++Stats.ResolvedSitesByKind[K];
  }

  Stats.BuildSeconds = Result.BuildSeconds;
  Stats.SolveSeconds = Result.SolveSeconds;

  Stats.ArenaBytes = P.declArena().bytesAllocated() +
                     G.edgeArena().bytesAllocated() +
                     Sol.setArena().bytesAllocated();
  Stats.PeakRssBytes = support::currentPeakRssBytes();
  return Stats;
}

AppStats
gator::analysis::aggregateAppStats(const std::string &Name,
                                   const std::vector<AppStats> &PerApp) {
  AppStats Total;
  Total.Name = Name;
  for (const AppStats &S : PerApp) {
    Total.Classes += S.Classes;
    Total.Methods += S.Methods;
    Total.LayoutIds += S.LayoutIds;
    Total.ViewIds += S.ViewIds;
    Total.InflViews += S.InflViews;
    Total.AllocViews += S.AllocViews;
    Total.Listeners += S.Listeners;
    Total.OpInflate += S.OpInflate;
    Total.OpFindView += S.OpFindView;
    Total.OpAddView += S.OpAddView;
    Total.OpSetListener += S.OpSetListener;
    Total.OpSetId += S.OpSetId;
    Total.Propagations += S.Propagations;
    Total.OpFirings += S.OpFirings;
    Total.ValuesPushed += S.ValuesPushed;
    Total.DedupHits += S.DedupHits;
    Total.PeakSetSize = std::max(Total.PeakSetSize, S.PeakSetSize);
    Total.PromotedSets += S.PromotedSets;
    Total.DescCacheHits += S.DescCacheHits;
    Total.DescCacheMisses += S.DescCacheMisses;
    Total.HierarchyRevisions += S.HierarchyRevisions;
    // SCC shape numbers are point measurements of one app's graph:
    // max-merged like the peaks; the round/barrier tallies are volumes.
    Total.SccCount = std::max(Total.SccCount, S.SccCount);
    Total.SccMaxSize = std::max(Total.SccMaxSize, S.SccMaxSize);
    Total.SccStrata = std::max(Total.SccStrata, S.SccStrata);
    Total.SccRecondensations += S.SccRecondensations;
    Total.ParallelRounds += S.ParallelRounds;
    Total.BarrierWaves += S.BarrierWaves;
    Total.BarrierStalls += S.BarrierStalls;
    // Fidelity degrades monotonically along the enum; the worst app wins.
    if (S.SolutionFidelity > Total.SolutionFidelity)
      Total.SolutionFidelity = S.SolutionFidelity;
    Total.UnresolvedOps += S.UnresolvedOps;
    Total.WorkCharged += S.WorkCharged;
    Total.UnknownViews += S.UnknownViews;
    Total.UnknownIds += S.UnknownIds;
    for (size_t R = 0; R < graph::NumUnknownReasons; ++R)
      Total.UnknownByReason[R] += S.UnknownByReason[R];

    Total.GraphNodes += S.GraphNodes;
    Total.FlowEdges += S.FlowEdges;
    Total.ParentChildEdges += S.ParentChildEdges;
    // Peaks are point measurements like PeakSetSize: max, never sum.
    Total.PeakVarWorklist = std::max(Total.PeakVarWorklist,
                                     S.PeakVarWorklist);
    Total.PeakOpWorklist = std::max(Total.PeakOpWorklist, S.PeakOpWorklist);
    for (size_t K = 0; K < android::NumOpKinds; ++K) {
      Total.FiringsByKind[K] += S.FiringsByKind[K];
      Total.SitesByKind[K] += S.SitesByKind[K];
      Total.ResolvedSitesByKind[K] += S.ResolvedSitesByKind[K];
    }
    Total.BuildSeconds += S.BuildSeconds;
    Total.SolveSeconds += S.SolveSeconds;
    // Footprints, not volumes: slabs are dropped between apps, so the
    // batch-wide number is the largest single-app footprint.
    Total.ArenaBytes = std::max(Total.ArenaBytes, S.ArenaBytes);
    Total.PeakRssBytes = std::max(Total.PeakRssBytes, S.PeakRssBytes);
  }
  return Total;
}

void gator::analysis::recordAppMetrics(support::MetricsRegistry &Metrics,
                                       const AppStats &Stats,
                                       const Solution *Sol) {
  using support::Gauge;
  using support::MetricUnit;

  Metrics.counter("gator_apps_total", "Applications analyzed").inc();
  Metrics
      .counter("gator_graph_nodes_total", "Constraint-graph nodes built")
      .add(Stats.GraphNodes);
  Metrics.counter("gator_flow_edges_total", "Flow edges in the graph")
      .add(Stats.FlowEdges);
  Metrics
      .counter("gator_parent_child_edges_total",
               "Parent-child hierarchy edges")
      .add(Stats.ParentChildEdges);
  Metrics
      .counter("gator_solver_propagations_total", "Worklist value pops")
      .add(Stats.Propagations);
  Metrics.counter("gator_solver_op_firings_total", "Operation-rule firings")
      .add(Stats.OpFirings);
  Metrics
      .counter("gator_solver_values_pushed_total",
               "flowsTo insertion attempts")
      .add(Stats.ValuesPushed);
  Metrics
      .counter("gator_solver_dedup_hits_total",
               "Insertion attempts finding the value present")
      .add(Stats.DedupHits);
  Metrics
      .counter("gator_solver_hierarchy_revisions_total",
               "Structure-edge invalidations")
      .add(Stats.HierarchyRevisions);
  Metrics
      .counter("gator_solver_unresolved_ops_total",
               "Op sites left unresolved by budget exhaustion")
      .add(Stats.UnresolvedOps);
  Metrics
      .counter("gator_budget_work_charged_total",
               "Work items charged against the budget")
      .add(Stats.WorkCharged);

  // Unknown-source modeling (docs/ROBUSTNESS.md). The total is always
  // emitted — a zero confirms clean input rather than a missing series —
  // and the per-kind breakdown is labeled by degradation reason.
  Metrics
      .counter("gator_unknown_sources_total",
               "Tagged unknown-source nodes (reflection, dynamic ids, "
               "missing resources)")
      .add(Stats.UnknownViews + Stats.UnknownIds);
  for (size_t R = 1; R < graph::NumUnknownReasons; ++R)
    if (Stats.UnknownByReason[R])
      Metrics
          .counter("gator_unknown_sources_by_reason_total",
                   "Tagged unknown-source nodes per degradation reason",
                   MetricUnit::None, "reason",
                   graph::unknownReasonSlug(
                       static_cast<graph::UnknownReason>(R)))
          .add(Stats.UnknownByReason[R]);

  // Parallel intra-solve telemetry (docs/PARALLEL.md): emitted only when
  // the stratified engine actually engaged, so serial runs export the
  // exact document they always did.
  if (Stats.ParallelRounds) {
    Metrics
        .gauge("gator_scc_count",
               "Flow-graph SCCs at the last condensation (max across apps)")
        .setMax(static_cast<double>(Stats.SccCount));
    Metrics
        .gauge("gator_scc_max_size",
               "Largest flow-graph SCC observed (max across apps)")
        .setMax(static_cast<double>(Stats.SccMaxSize));
    Metrics
        .gauge("gator_scc_strata",
               "Topological strata of the condensed flow DAG (max across "
               "apps)")
        .setMax(static_cast<double>(Stats.SccStrata));
    Metrics
        .counter("gator_scc_recondensations_total",
                 "Full SCC rebuilds forced by structural churn")
        .add(Stats.SccRecondensations);
    Metrics
        .counter("gator_solve_barrier_waves_total",
                 "Stratified classification waves dispatched")
        .add(Stats.BarrierWaves);
    Metrics
        .counter("gator_solve_barrier_stalls_total",
                 "Waves too narrow to feed every solve worker")
        .add(Stats.BarrierStalls);
  }

  Metrics
      .gauge("gator_solver_peak_set_size",
             "Largest flowsTo set observed (max across apps)")
      .setMax(static_cast<double>(Stats.PeakSetSize));
  Metrics
      .gauge("gator_solver_peak_var_worklist",
             "Deepest value worklist observed (max across apps)")
      .setMax(static_cast<double>(Stats.PeakVarWorklist));
  Metrics
      .gauge("gator_solver_peak_op_worklist",
             "Deepest op worklist observed (max across apps)")
      .setMax(static_cast<double>(Stats.PeakOpWorklist));

  Metrics
      .gauge("gator_arena_bytes_per_app",
             "Largest single-app arena footprint (IR + graph + flow sets)",
             Gauge::Merge::Max, MetricUnit::Bytes)
      .setMax(static_cast<double>(Stats.ArenaBytes));
  if (Stats.PeakRssBytes)
    Metrics
        .gauge("gator_peak_rss_bytes",
               "Process peak resident set size (high-water mark)",
               Gauge::Merge::Max, MetricUnit::BytesVolatile)
        .setMax(static_cast<double>(Stats.PeakRssBytes));

  Metrics
      .gauge("gator_phase_build_seconds", "Graph construction wall-clock",
             Gauge::Merge::Sum, MetricUnit::Seconds)
      .add(Stats.BuildSeconds);
  Metrics
      .gauge("gator_phase_solve_seconds", "Fixpoint wall-clock",
             Gauge::Merge::Sum, MetricUnit::Seconds)
      .add(Stats.SolveSeconds);

  for (size_t K = 0; K < android::NumOpKinds; ++K) {
    const char *Kind = android::opKindName(static_cast<android::OpKind>(K));
    if (Stats.FiringsByKind[K])
      Metrics
          .counter("gator_op_firings_total", "Rule firings per op kind",
                   MetricUnit::None, "kind", Kind)
          .add(Stats.FiringsByKind[K]);
    if (Stats.SitesByKind[K]) {
      Metrics
          .counter("gator_op_sites_total", "Op sites per op kind",
                   MetricUnit::None, "kind", Kind)
          .add(Stats.SitesByKind[K]);
      Metrics
          .counter("gator_op_sites_resolved_total",
                   "Op sites whose result or receiver received values",
                   MetricUnit::None, "kind", Kind)
          .add(Stats.ResolvedSitesByKind[K]);
    }
  }

  if (Sol) {
    support::Histogram &H = Metrics.histogram(
        "gator_flowset_size", "Sizes of nonempty flowsTo sets",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
    for (const FlowSet &Set : Sol->flowsToSets())
      if (!Set.empty())
        H.observe(Set.size());
  }
}

void gator::analysis::printAppStatsHeader(std::ostream &OS) {
  OS << std::left << std::setw(16) << "app" << std::right << std::setw(8)
     << "classes" << std::setw(9) << "methods" << std::setw(10) << "ids(L/V)"
     << std::setw(12) << "views(I/A)" << std::setw(10) << "listeners"
     << std::setw(9) << "Inflate" << std::setw(10) << "FindView"
     << std::setw(9) << "AddView" << std::setw(13) << "SetListener" << '\n';
}

void gator::analysis::printAppStatsRow(std::ostream &OS,
                                       const AppStats &S) {
  std::string Ids = std::to_string(S.LayoutIds) + "/" +
                    std::to_string(S.ViewIds);
  std::string Views = std::to_string(S.InflViews) + "/" +
                      std::to_string(S.AllocViews);
  OS << std::left << std::setw(16) << S.Name << std::right << std::setw(8)
     << S.Classes << std::setw(9) << S.Methods << std::setw(10) << Ids
     << std::setw(12) << Views << std::setw(10) << S.Listeners << std::setw(9)
     << S.OpInflate << std::setw(10) << S.OpFindView << std::setw(9)
     << S.OpAddView << std::setw(13) << S.OpSetListener << '\n';
}

void gator::analysis::printSolverStatsHeader(std::ostream &OS) {
  OS << std::left << std::setw(16) << "app" << std::right << std::setw(10)
     << "propagate" << std::setw(9) << "opFire" << std::setw(10) << "pushed"
     << std::setw(9) << "dedup" << std::setw(9) << "peakSet" << std::setw(10)
     << "promoted" << std::setw(10) << "descHit" << std::setw(10)
     << "descMiss" << std::setw(9) << "hierRev" << std::setw(18)
     << "fidelity" << std::setw(11) << "unresolved" << '\n';
}

void gator::analysis::printSolverStatsRow(std::ostream &OS,
                                          const AppStats &S) {
  OS << std::left << std::setw(16) << S.Name << std::right << std::setw(10)
     << S.Propagations << std::setw(9) << S.OpFirings << std::setw(10)
     << S.ValuesPushed << std::setw(9) << S.DedupHits << std::setw(9)
     << S.PeakSetSize << std::setw(10) << S.PromotedSets << std::setw(10)
     << S.DescCacheHits << std::setw(10) << S.DescCacheMisses << std::setw(9)
     << S.HierarchyRevisions << std::setw(18)
     << fidelityName(S.SolutionFidelity) << std::setw(11) << S.UnresolvedOps
     << '\n';
}

void gator::analysis::fillWideEvent(support::WideEvent &Event,
                                    const AppStats &Stats) {
  Event.App = Stats.Name;
  Event.Fidelity = fidelityName(Stats.SolutionFidelity);
  Event.Classes = Stats.Classes;
  Event.Methods = Stats.Methods;
  Event.LayoutIds = Stats.LayoutIds;
  Event.ViewIds = Stats.ViewIds;
  Event.InflViews = Stats.InflViews;
  Event.AllocViews = Stats.AllocViews;
  Event.Listeners = Stats.Listeners;
  Event.GraphNodes = Stats.GraphNodes;
  Event.FlowEdges = Stats.FlowEdges;
  Event.ParentChildEdges = Stats.ParentChildEdges;
  Event.Propagations = Stats.Propagations;
  Event.OpFirings = Stats.OpFirings;
  Event.ValuesPushed = Stats.ValuesPushed;
  Event.DedupHits = Stats.DedupHits;
  Event.PeakSetSize = Stats.PeakSetSize;
  Event.UnresolvedOps = Stats.UnresolvedOps;
  Event.WorkCharged = Stats.WorkCharged;
  Event.UnknownViews = Stats.UnknownViews;
  Event.UnknownIds = Stats.UnknownIds;
  Event.UnknownByReason.clear();
  for (size_t R = 1; R < graph::NumUnknownReasons; ++R)
    if (Stats.UnknownByReason[R])
      Event.UnknownByReason.emplace_back(
          graph::unknownReasonSlug(static_cast<graph::UnknownReason>(R)),
          Stats.UnknownByReason[R]);
  Event.ArenaBytes = Stats.ArenaBytes;
  Event.BuildSeconds = Stats.BuildSeconds;
  Event.SolveSeconds = Stats.SolveSeconds;
  Event.PeakRssBytes = Stats.PeakRssBytes;
  Event.SccCount = Stats.SccCount;
  Event.SccStrata = Stats.SccStrata;
  Event.BarrierWaves = Stats.BarrierWaves;
  Event.ParallelRounds = Stats.ParallelRounds;
}
