# Empty compiler generated dependencies file for connectbot_test.
# This may be replaced when dependencies are built.
