file(REMOVE_RECURSE
  "libgator_hier.a"
)
