file(REMOVE_RECURSE
  "CMakeFiles/gator_dex.dir/DexLite.cpp.o"
  "CMakeFiles/gator_dex.dir/DexLite.cpp.o.d"
  "libgator_dex.a"
  "libgator_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
