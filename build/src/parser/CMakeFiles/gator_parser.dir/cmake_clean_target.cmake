file(REMOVE_RECURSE
  "libgator_parser.a"
)
