file(REMOVE_RECURSE
  "CMakeFiles/gator_guimodel.dir/GuiModel.cpp.o"
  "CMakeFiles/gator_guimodel.dir/GuiModel.cpp.o.d"
  "CMakeFiles/gator_guimodel.dir/JsonExport.cpp.o"
  "CMakeFiles/gator_guimodel.dir/JsonExport.cpp.o.d"
  "CMakeFiles/gator_guimodel.dir/Lint.cpp.o"
  "CMakeFiles/gator_guimodel.dir/Lint.cpp.o.d"
  "libgator_guimodel.a"
  "libgator_guimodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_guimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
