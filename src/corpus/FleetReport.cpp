//===- FleetReport.cpp - Corpus health reports from run ledgers -*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "corpus/FleetReport.h"

#include "analysis/SolutionCache.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>
#include <unordered_map>

using namespace gator;
using namespace gator::corpus;

namespace {

/// Deterministic numeric token: integral values render as integers,
/// fractional ones at fixed %.6f — the same value always renders the same
/// byte sequence, independent of locale or stream state.
std::string formatValue(double V) {
  if (std::isfinite(V) && std::floor(V) == V && std::fabs(V) < 9e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

/// Nearest-rank percentile over an ascending-sorted vector: the smallest
/// element with at least ceil(q * n) elements at or below it. Exact data
/// values only — a report should list numbers that occurred, not
/// interpolated ones.
double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  double Rank = std::ceil(Q * static_cast<double>(Sorted.size()));
  size_t I = Rank <= 1 ? 0 : static_cast<size_t>(Rank) - 1;
  if (I >= Sorted.size())
    I = Sorted.size() - 1;
  return Sorted[I];
}

void bump(std::map<std::string, uint64_t> &M, const std::string &Key,
          uint64_t By = 1) {
  M[Key] += By;
}

std::vector<std::pair<std::string, uint64_t>>
sortedPairs(const std::map<std::string, uint64_t> &M) {
  return {M.begin(), M.end()};
}

/// Ranks every event on \p Get: value descending, index ascending on
/// ties. Returns the top ReportTopK rows.
std::vector<OutlierApp>
topApps(const std::vector<support::WideEvent> &Events,
        double (*Get)(const support::WideEvent &)) {
  std::vector<OutlierApp> Rows;
  Rows.reserve(Events.size());
  for (const support::WideEvent &E : Events)
    Rows.push_back({E.Index, E.App, E.ContentKey, Get(E)});
  std::sort(Rows.begin(), Rows.end(),
            [](const OutlierApp &A, const OutlierApp &B) {
              if (A.Value != B.Value)
                return A.Value > B.Value;
              return A.Index < B.Index;
            });
  if (Rows.size() > ReportTopK)
    Rows.resize(ReportTopK);
  return Rows;
}

const support::WideEventField *findField(const char *Name) {
  for (const support::WideEventField &F :
       support::wideEventNumericFields())
    if (std::string_view(F.Name) == Name)
      return &F;
  return nullptr;
}

} // namespace

FleetReport corpus::buildFleetReport(const support::Ledger &L) {
  FleetReport R;
  R.Header = L.Header;
  R.Apps = L.Events.size();

  std::map<std::string, uint64_t> Fid, Exit, Reasons;
  for (const support::WideEvent &E : L.Events) {
    bump(Fid, E.Fidelity);
    bump(Exit, std::to_string(E.ExitCode));
    if (E.Fidelity != "complete")
      ++R.Degraded;
    if (E.GenerationFailed)
      ++R.GenerationFailures;
    if (E.Cache == "hit")
      ++R.CacheHits;
    else if (E.Cache == "miss")
      ++R.CacheMisses;
    else
      ++R.CacheOff;
    for (const auto &Reason : E.UnknownByReason)
      bump(Reasons, Reason.first, Reason.second);
  }
  R.ByFidelity = sortedPairs(Fid);
  R.ByExitCode = sortedPairs(Exit);
  R.UnknownByReason = sortedPairs(Reasons);

  for (const support::WideEventField &F :
       support::wideEventNumericFields()) {
    if (F.Volatile && L.Header.NoTimes)
      continue; // the field was never written; zeros would be fiction
    FieldSummary S;
    S.Field = F.Name;
    S.Volatile = F.Volatile;
    std::vector<double> Values;
    Values.reserve(L.Events.size());
    for (const support::WideEvent &E : L.Events) {
      double V = F.Get(E);
      Values.push_back(V);
      S.Sum += V;
    }
    std::sort(Values.begin(), Values.end());
    S.Count = Values.size();
    S.P50 = percentile(Values, 0.50);
    S.P90 = percentile(Values, 0.90);
    S.P99 = percentile(Values, 0.99);
    S.Max = Values.empty() ? 0 : Values.back();
    R.Fields.push_back(std::move(S));
  }

  // Ranked dimensions: the paper-facing health questions. "slowest" only
  // exists when the ledger carries times.
  static const char *const Dimensions[] = {
      "solve_seconds", "propagations", "peak_set_size",
      "flow_edges",    "arena_bytes",  "unknown_total",
  };
  for (const char *Name : Dimensions) {
    const support::WideEventField *F = findField(Name);
    if (!F || (F->Volatile && L.Header.NoTimes))
      continue;
    R.Outliers.push_back({Name, topApps(L.Events, F->Get)});
  }
  return R;
}

void corpus::writeFleetReportJson(std::ostream &OS, const FleetReport &R) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("report_format", FleetReport::FormatVersion);
  W.key("ledger");
  W.beginObject();
  W.field("ledger_format", R.Header.Format);
  W.field("tool", R.Header.Tool);
  W.field("options_digest", R.Header.OptionsDigest);
  W.field("no_times", R.Header.NoTimes);
  W.endObject();
  W.field("apps", R.Apps);
  W.field("degraded", R.Degraded);
  W.field("generation_failures", R.GenerationFailures);
  W.key("cache");
  W.beginObject();
  W.field("hits", R.CacheHits);
  W.field("misses", R.CacheMisses);
  W.field("off", R.CacheOff);
  W.endObject();
  auto Breakdown = [&W](const char *Key,
                        const std::vector<std::pair<std::string, uint64_t>>
                            &Pairs) {
    W.key(Key);
    W.beginObject();
    for (const auto &P : Pairs)
      W.field(P.first, P.second);
    W.endObject();
  };
  Breakdown("by_fidelity", R.ByFidelity);
  Breakdown("by_exit_code", R.ByExitCode);
  Breakdown("unknown_by_reason", R.UnknownByReason);
  W.key("fields");
  W.beginArray();
  for (const FieldSummary &S : R.Fields) {
    W.beginObject();
    W.field("field", S.Field);
    W.field("volatile", S.Volatile);
    W.field("count", S.Count);
    W.key("sum");
    W.rawNumber(formatValue(S.Sum));
    W.key("p50");
    W.rawNumber(formatValue(S.P50));
    W.key("p90");
    W.rawNumber(formatValue(S.P90));
    W.key("p99");
    W.rawNumber(formatValue(S.P99));
    W.key("max");
    W.rawNumber(formatValue(S.Max));
    W.endObject();
  }
  W.endArray();
  W.key("outliers");
  W.beginArray();
  for (const FleetReport::Dimension &D : R.Outliers) {
    W.beginObject();
    W.field("dimension", D.Name);
    W.key("top");
    W.beginArray();
    for (const OutlierApp &A : D.Top) {
      W.beginObject();
      W.field("index", A.Index);
      W.field("app", A.App);
      W.field("content_key", A.ContentKey);
      W.key("value");
      W.rawNumber(formatValue(A.Value));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

void corpus::writeFleetReportText(std::ostream &OS, const FleetReport &R) {
  OS << "fleet report (report_format " << FleetReport::FormatVersion
     << ", ledger_format " << R.Header.Format << ", options "
     << R.Header.OptionsDigest
     << (R.Header.NoTimes ? ", no-times" : "") << ")\n";
  OS << "apps " << R.Apps << "  degraded " << R.Degraded
     << "  generation-failures " << R.GenerationFailures << "  cache "
     << R.CacheHits << " hit / " << R.CacheMisses << " miss / "
     << R.CacheOff << " off\n";
  auto Breakdown = [&OS](const char *Title,
                         const std::vector<std::pair<std::string, uint64_t>>
                             &Pairs) {
    if (Pairs.empty())
      return;
    OS << Title << ":";
    for (const auto &P : Pairs)
      OS << "  " << P.first << "=" << P.second;
    OS << '\n';
  };
  Breakdown("fidelity", R.ByFidelity);
  Breakdown("exit codes", R.ByExitCode);
  Breakdown("unknown sources", R.UnknownByReason);
  OS << '\n'
     << std::left << std::setw(20) << "field" << std::right
     << std::setw(14) << "sum" << std::setw(12) << "p50" << std::setw(12)
     << "p90" << std::setw(12) << "p99" << std::setw(14) << "max" << '\n';
  for (const FieldSummary &S : R.Fields)
    OS << std::left << std::setw(20) << S.Field << std::right
       << std::setw(14) << formatValue(S.Sum) << std::setw(12)
       << formatValue(S.P50) << std::setw(12) << formatValue(S.P90)
       << std::setw(12) << formatValue(S.P99) << std::setw(14)
       << formatValue(S.Max) << '\n';
  for (const FleetReport::Dimension &D : R.Outliers) {
    OS << '\n' << "top " << D.Name << ":\n";
    for (size_t I = 0; I < D.Top.size(); ++I)
      OS << "  " << (I + 1) << ". " << D.Top[I].App << " (app "
         << D.Top[I].Index << ")  " << formatValue(D.Top[I].Value) << '\n';
  }
}

LedgerDiff corpus::diffLedgers(const support::Ledger &Old,
                               const support::Ledger &New,
                               double ThresholdPct) {
  LedgerDiff D;
  D.ThresholdPct = ThresholdPct;
  if (Old.Header.Format != New.Header.Format) {
    D.Incomparable = "ledger_format mismatch";
    return D;
  }
  if (Old.Header.OptionsDigest != New.Header.OptionsDigest) {
    D.Incomparable =
        "options digest mismatch (" + Old.Header.OptionsDigest + " vs " +
        New.Header.OptionsDigest + "): runs analyzed under different "
        "options are not comparable";
    return D;
  }

  // First occurrence wins on duplicate keys; later duplicates are
  // ignored symmetrically on both sides.
  std::unordered_map<std::string, const support::WideEvent *> OldByKey;
  for (const support::WideEvent &E : Old.Events)
    OldByKey.emplace(E.ContentKey, &E);
  std::unordered_map<std::string, const support::WideEvent *> NewByKey;
  for (const support::WideEvent &E : New.Events)
    NewByKey.emplace(E.ContentKey, &E);

  for (const support::WideEvent &E : Old.Events)
    if (OldByKey.at(E.ContentKey) == &E && !NewByKey.count(E.ContentKey))
      D.OnlyInOld.push_back(E.App + " (" + E.ContentKey + ")");
  for (const support::WideEvent &E : New.Events) {
    if (NewByKey.at(E.ContentKey) != &E)
      continue; // a duplicate; the first occurrence already compared
    auto It = OldByKey.find(E.ContentKey);
    if (It == OldByKey.end()) {
      D.OnlyInNew.push_back(E.App + " (" + E.ContentKey + ")");
      continue;
    }
    const support::WideEvent &O = *It->second;
    AppDelta A;
    A.ContentKey = E.ContentKey;
    A.App = E.App;
    A.OldFidelity = O.Fidelity;
    A.NewFidelity = E.Fidelity;
    A.NewlyDegraded = O.Fidelity == "complete" && E.Fidelity != "complete";
    A.NewlyCacheMissed = O.Cache == "hit" && E.Cache == "miss";
    for (const support::WideEventField &F :
         support::wideEventNumericFields()) {
      if (F.Volatile)
        continue; // wall-clock and scheduling never count as regressions
      double OldV = F.Get(O), NewV = F.Get(E);
      double Allowed = ThresholdPct / 100.0 * std::max(std::fabs(OldV), 1.0);
      if (std::fabs(NewV - OldV) > Allowed)
        A.Counters.push_back({F.Name, OldV, NewV});
    }
    if (A.NewlyDegraded || A.NewlyCacheMissed || !A.Counters.empty())
      D.Apps.push_back(std::move(A));
  }
  return D;
}

void corpus::writeLedgerDiffJson(std::ostream &OS, const LedgerDiff &D) {
  JsonWriter W(OS);
  W.beginObject();
  W.field("report_format", FleetReport::FormatVersion);
  W.field("empty", D.empty());
  if (!D.Incomparable.empty())
    W.field("incomparable", D.Incomparable);
  W.key("threshold_pct");
  W.rawNumber(formatValue(D.ThresholdPct));
  auto List = [&W](const char *Key, const std::vector<std::string> &V) {
    W.key(Key);
    W.beginArray();
    for (const std::string &S : V)
      W.value(S);
    W.endArray();
  };
  List("only_in_old", D.OnlyInOld);
  List("only_in_new", D.OnlyInNew);
  W.key("apps");
  W.beginArray();
  for (const AppDelta &A : D.Apps) {
    W.beginObject();
    W.field("app", A.App);
    W.field("content_key", A.ContentKey);
    W.field("newly_degraded", A.NewlyDegraded);
    W.field("newly_cache_missed", A.NewlyCacheMissed);
    W.field("old_fidelity", A.OldFidelity);
    W.field("new_fidelity", A.NewFidelity);
    W.key("counters");
    W.beginArray();
    for (const FieldDelta &C : A.Counters) {
      W.beginObject();
      W.field("field", C.Field);
      W.key("old");
      W.rawNumber(formatValue(C.Old));
      W.key("new");
      W.rawNumber(formatValue(C.New));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

void corpus::writeLedgerDiffText(std::ostream &OS, const LedgerDiff &D) {
  if (!D.Incomparable.empty()) {
    OS << "diff refused: " << D.Incomparable << '\n';
    return;
  }
  if (D.empty()) {
    OS << "no differences\n";
    return;
  }
  for (const std::string &S : D.OnlyInOld)
    OS << "- only in old: " << S << '\n';
  for (const std::string &S : D.OnlyInNew)
    OS << "+ only in new: " << S << '\n';
  for (const AppDelta &A : D.Apps) {
    OS << A.App << " (" << A.ContentKey << ")";
    if (A.NewlyDegraded)
      OS << "  NEWLY-DEGRADED " << A.OldFidelity << " -> "
         << A.NewFidelity;
    if (A.NewlyCacheMissed)
      OS << "  NEWLY-CACHE-MISSED";
    OS << '\n';
    for (const FieldDelta &C : A.Counters)
      OS << "    " << C.Field << ": " << formatValue(C.Old) << " -> "
         << formatValue(C.New) << '\n';
  }
}

support::Ledger corpus::fleetLedger(const std::vector<AppSpec> &Specs,
                                    const analysis::AnalysisOptions &Options,
                                    const std::vector<BatchAppResult>
                                        &Records,
                                    bool CacheEnabled, bool NoTimes) {
  support::Ledger L;
  L.Header.OptionsDigest = analysis::hashAnalysisOptions(Options).hex();
  L.Header.NoTimes = NoTimes;
  L.Header.Apps = Records.size();
  L.Events.reserve(Records.size());
  for (const BatchAppResult &R : Records) {
    support::WideEvent E;
    analysis::fillWideEvent(E, R.Stats);
    E.Index = R.Index;
    E.App = R.Name;
    if (R.Index < Specs.size())
      E.ContentKey = hashAppSpec(Specs[R.Index]).hex();
    E.GenerationFailed = R.GenerationFailed;
    // The per-app CLI exit contract (docs/ROBUSTNESS.md): diagnostics or
    // a non-complete solution report 1; a batch's own code is the max.
    E.ExitCode =
        (R.GenerationFailed ||
         R.Stats.SolutionFidelity != analysis::Fidelity::Complete)
            ? 1
            : 0;
    E.Cache = CacheEnabled ? (R.CacheHit ? "hit" : "miss") : "off";
    L.Events.push_back(std::move(E));
  }
  return L;
}
