//===- Ir.cpp - ALite IR implementation -----------------------*- C++ -*-===//

#include "ir/Ir.h"

#include <algorithm>
#include <sstream>

using namespace gator;
using namespace gator::ir;

bool gator::ir::isPrimitiveTypeName(const std::string &Name) {
  return Name == IntTypeName || Name == VoidTypeName;
}

//===----------------------------------------------------------------------===//
// FieldDecl
//===----------------------------------------------------------------------===//

std::string FieldDecl::qualifiedName() const {
  return Owner->name() + "." + Name;
}

//===----------------------------------------------------------------------===//
// MethodDecl
//===----------------------------------------------------------------------===//

std::string MethodDecl::qualifiedName() const {
  std::ostringstream OS;
  OS << Owner->name() << '.' << Name << '/' << NumParams;
  return OS.str();
}

VarId MethodDecl::addParam(std::string Name, std::string TypeName) {
  assert(Vars.size() == (IsStatic ? 0u : 1u) + NumParams &&
         "parameters must be added before locals");
  Variable Param;
  Param.Name = std::move(Name);
  Param.TypeName = std::move(TypeName);
  Param.IsParam = true;
  Vars.push_back(std::move(Param));
  ++NumParams;
  return static_cast<VarId>(Vars.size() - 1);
}

VarId MethodDecl::addLocal(std::string Name, std::string TypeName) {
  Variable Local;
  Local.Name = std::move(Name);
  Local.TypeName = std::move(TypeName);
  Vars.push_back(std::move(Local));
  return static_cast<VarId>(Vars.size() - 1);
}

VarId MethodDecl::findVar(const std::string &Name) const {
  for (size_t I = 0; I < Vars.size(); ++I)
    if (Vars[I].Name == Name)
      return static_cast<VarId>(I);
  return InvalidVar;
}

//===----------------------------------------------------------------------===//
// ClassDecl
//===----------------------------------------------------------------------===//

FieldDecl *ClassDecl::addField(std::string Name, std::string TypeName,
                               bool IsStatic) {
  support::Arena &A = OwnerProgram->DeclArena;
  FieldDecl *F =
      A.create<FieldDecl>(std::move(Name), std::move(TypeName), IsStatic,
                          this, OwnerProgram->NextFieldId++);
  OwnerProgram->Names.intern(F->name());
  Fields.push_back(A, F);
  return F;
}

MethodDecl *ClassDecl::addMethod(std::string Name, std::string ReturnTypeName,
                                 bool IsStatic) {
  ++OwnerProgram->StructureEpoch;
  support::Arena &A = OwnerProgram->DeclArena;
  MethodDecl *M =
      A.create<MethodDecl>(std::move(Name), std::move(ReturnTypeName),
                           IsStatic, this, OwnerProgram->NextMethodId++);
  OwnerProgram->Names.intern(M->name());
  Methods.push_back(A, M);
  if (!IsStatic)
    M->Vars[0].TypeName = this->Name; // `this` has the declaring class type.
  if (IsInterface)
    M->setAbstract(true);
  return M;
}

FieldDecl *ClassDecl::findOwnField(const std::string &Name) const {
  for (FieldDecl *F : Fields)
    if (F->name() == Name)
      return F;
  return nullptr;
}

FieldDecl *ClassDecl::findField(const std::string &Name) const {
  for (const ClassDecl *C = this; C; C = C->Super)
    if (FieldDecl *F = C->findOwnField(Name))
      return F;
  return nullptr;
}

MethodDecl *ClassDecl::findOwnMethod(const std::string &Name,
                                     unsigned Arity) const {
  for (MethodDecl *M : Methods)
    if (M->paramCount() == Arity && M->name() == Name)
      return M;
  return nullptr;
}

MethodDecl *ClassDecl::findMethod(const std::string &Name,
                                  unsigned Arity) const {
  // Every declared method name is interned at addMethod() time, so a name
  // the interner has never seen cannot resolve anywhere in the program —
  // the miss costs one read-only hash probe and touches no class.
  Symbol Sym = OwnerProgram->Names.lookup(Name);
  if (!Sym.isValid())
    return nullptr;
  if (MethodLookupEpoch != OwnerProgram->structureEpoch()) {
    MethodLookupCache.clear();
    MethodLookupEpoch = OwnerProgram->structureEpoch();
  }
  uint64_t Key = support::packSymbolKey(Sym.rawIndex(), Arity);
  if (MethodDecl *const *Hit = MethodLookupCache.get(Key))
    return *Hit;
  MethodDecl *M = findMethodUncached(Name, Arity);
  MethodLookupCache.set(Key, M);
  return M;
}

MethodDecl *ClassDecl::findMethodUncached(const std::string &Name,
                                          unsigned Arity) const {
  for (const ClassDecl *C = this; C; C = C->Super)
    if (MethodDecl *M = C->findOwnMethod(Name, Arity))
      return M;
  // Interface default/abstract declarations: search implemented interfaces
  // transitively so dispatch through an interface-typed receiver works.
  for (const ClassDecl *I : Interfaces)
    if (MethodDecl *M = I->findMethod(Name, Arity))
      return M;
  if (Super)
    for (const ClassDecl *I : Super->Interfaces)
      if (MethodDecl *M = I->findMethod(Name, Arity))
        return M;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

ClassDecl *Program::addClass(std::string Name, bool IsInterface,
                             bool IsPlatform, DiagnosticEngine *Diags) {
  Symbol Sym = Names.intern(Name);
  if (ByName.contains(Sym.rawIndex())) {
    if (Diags)
      Diags->error("duplicate class name '" + Name + "'");
    return nullptr;
  }
  ClassDecl *C = DeclArena.create<ClassDecl>(std::move(Name), IsInterface,
                                             IsPlatform, this, NextClassId++);
  Classes.push_back(DeclArena, C);
  ByName.set(Sym.rawIndex(), C);
  Resolved = false;
  return C;
}

ClassDecl *Program::findClass(const std::string &Name) const {
  Symbol Sym = Names.lookup(Name);
  if (!Sym.isValid())
    return nullptr;
  ClassDecl *const *Hit = ByName.get(Sym.rawIndex());
  return Hit ? *Hit : nullptr;
}

bool Program::resolve(DiagnosticEngine &Diags) {
  ++StructureEpoch; // Super/interface links are about to change.
  bool Ok = true;
  for (ClassDecl *C : Classes) {
    C->Super = nullptr;
    C->Interfaces.clear();

    if (!C->SuperName.empty()) {
      ClassDecl *Super = findClass(C->SuperName);
      if (!Super) {
        Diags.error("class '" + C->name() + "' extends unknown class '" +
                    C->SuperName + "'");
        Ok = false;
      } else {
        C->Super = Super;
      }
    } else if (!C->isInterface() && C->name() != ObjectClassName) {
      // Implicit java.lang.Object superclass when present in the program.
      C->Super = findClass(ObjectClassName);
    }

    for (const std::string &IName : C->InterfaceNames) {
      ClassDecl *Iface = findClass(IName);
      if (!Iface) {
        Diags.error("class '" + C->name() + "' implements unknown interface '" +
                    IName + "'");
        Ok = false;
        continue;
      }
      if (!Iface->isInterface()) {
        Diags.error("class '" + C->name() + "' implements non-interface '" +
                    IName + "'");
        Ok = false;
        continue;
      }
      C->Interfaces.push_back(Iface);
    }
  }

  // Reject inheritance cycles: walk each chain with a step bound.
  for (const ClassDecl *C : Classes) {
    const ClassDecl *Walk = C;
    size_t Steps = 0;
    while (Walk && Steps <= Classes.size()) {
      Walk = Walk->Super;
      ++Steps;
    }
    if (Walk) {
      Diags.error("inheritance cycle involving class '" + C->name() + "'");
      Ok = false;
      break;
    }
  }

  Resolved = Ok;
  return Ok;
}

bool Program::isSubtypeOf(const ClassDecl *Klass,
                          const ClassDecl *Ancestor) const {
  assert(Resolved && "Program::resolve() must run first");
  if (!Klass || !Ancestor)
    return false;
  for (const ClassDecl *C = Klass; C; C = C->superClass()) {
    if (C == Ancestor)
      return true;
    for (const ClassDecl *I : C->interfaces())
      if (isSubtypeOf(I, Ancestor))
        return true;
  }
  return false;
}

unsigned Program::appClassCount() const {
  unsigned Count = 0;
  for (const ClassDecl *C : Classes)
    if (!C->isPlatform())
      ++Count;
  return Count;
}

unsigned Program::appMethodCount() const {
  unsigned Count = 0;
  for (const ClassDecl *C : Classes) {
    if (C->isPlatform())
      continue;
    for (const MethodDecl *M : C->methods())
      if (!M->isAbstract())
        ++Count;
  }
  return Count;
}
