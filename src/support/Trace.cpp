//===- Trace.cpp - Structured span/event tracing ----------------*- C++ -*-===//

#include "support/Trace.h"

#include "support/Json.h"

using namespace gator;
using namespace gator::support;

void TraceSink::append(TraceSink &&Child, uint32_t Tid) {
  Events.reserve(Events.size() + Child.Events.size());
  for (Event &E : Child.Events) {
    E.Tid = Tid;
    Events.push_back(std::move(E));
  }
  Child.Events.clear();
}

void TraceSink::writeJson(std::ostream &OS) const {
  JsonWriter W(OS);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const Event &E : Events) {
    W.beginObject();
    W.field("name", E.Name);
    W.field("ph", std::string(1, E.Ph));
    W.field("ts", static_cast<unsigned long long>(E.TsMicros));
    if (E.Ph == 'X')
      W.field("dur", static_cast<unsigned long long>(E.DurMicros));
    if (E.Ph == 'i')
      W.field("s", "t"); // instant scope: thread
    W.field("pid", 1);
    W.field("tid", E.Tid);
    if (!E.Args.empty()) {
      W.key("args");
      W.beginObject();
      for (const auto &[Key, Value] : E.Args)
        W.field(Key, static_cast<unsigned long long>(Value));
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.field("displayTimeUnit", "ms");
  W.endObject();
  OS << '\n';
}
