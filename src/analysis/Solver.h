//===- Solver.h - Fixed-point constraint solver -----------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-point computation of Section 4.3. The paper describes three
/// phases (op-free reachability, inflation processing, view propagation);
/// this solver fuses them into one monotone worklist computation with
/// identical semantics: value propagation along flow edges, and operation
/// rules (Section 4.2) that fire whenever their inputs grow or the
/// hierarchy/id structure changes, possibly adding new relationship edges,
/// new inflated-view nodes, and new flow facts.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_SOLVER_H
#define GATOR_ANALYSIS_SOLVER_H

#include "analysis/Options.h"
#include "analysis/Provenance.h"
#include "analysis/Solution.h"
#include "android/AndroidModel.h"
#include "android/Ops.h"
#include "graph/ConstraintGraph.h"
#include "graph/SccIndex.h"
#include "hier/ClassHierarchy.h"
#include "layout/Layout.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gator {
namespace analysis {

/// Statistics of one solver run.
struct SolverStats {
  unsigned long Propagations = 0; ///< worklist pops for value propagation
  unsigned long OpFirings = 0;    ///< operation-rule evaluations
  unsigned long InflationCount = 0; ///< (site, layout) inflations performed

  // Difference-propagation counters (docs/DELTA_SOLVER.md).
  unsigned long ValuesPushed = 0; ///< (target, value) insertion attempts
  unsigned long DedupHits = 0;    ///< attempts finding the value present
  unsigned long DeltaCommits = 0; ///< nonempty delta spans committed
  unsigned long StructureRounds = 0; ///< quiescent structure re-fire rounds
  unsigned long PeakSetSize = 0;  ///< largest flowsTo set observed
  unsigned long PromotedSets = 0; ///< sets that outgrew the small repr
  unsigned long DescCacheHits = 0;   ///< descendantsOf cache hits
  unsigned long DescCacheMisses = 0; ///< descendantsOf recomputes
  unsigned long HierarchyRevisions = 0; ///< structure-edge invalidations

  // Observability counters (docs/OBSERVABILITY.md).
  unsigned long PeakVarWorklist = 0; ///< deepest value worklist observed
  unsigned long PeakOpWorklist = 0;  ///< deepest op worklist observed
  /// Rule evaluations per operation kind, indexed by OpKind.
  unsigned long FiringsByKind[android::NumOpKinds] = {};

  // Parallel intra-solve counters (docs/PARALLEL.md). The SCC shape and
  // the trusted/fallback split are functions of the (deterministic) solve
  // schedule, so they are identical for every SolveJobs > 1; barrier
  // counters additionally depend on the resolved worker count (wave
  // coalescing targets Workers x grain), never on thread timing.
  unsigned long SccCount = 0;      ///< SCCs in the last flow condensation
  unsigned long SccMaxSize = 0;    ///< largest SCC (nodes)
  unsigned long SccSingletons = 0; ///< size-1 SCCs
  unsigned long SccSmall = 0;      ///< SCCs of 2..8 nodes
  unsigned long SccLarge = 0;      ///< SCCs of 9+ nodes
  unsigned long SccStrata = 0;     ///< topological strata of the condensation
  unsigned long SccRecondensations = 0;    ///< full rebuilds after the first
  unsigned long SccIncrementalAccepts = 0; ///< mid-solve edges absorbed
  unsigned long ParallelRounds = 0;     ///< worklist rounds classified off-thread
  unsigned long ParallelClassified = 0; ///< pushes with a precomputed verdict
  unsigned long TrustedAppends = 0;     ///< verdict-driven blind inserts
  unsigned long TrustedDups = 0;        ///< verdict-driven dedup skips
  unsigned long DirtyFallbacks = 0;     ///< pushes replayed without a verdict
  unsigned long BarrierWaves = 0;       ///< stratum waves dispatched
  unsigned long BarrierStalls = 0;      ///< waves too narrow to feed every worker
  unsigned long DescPrewarmed = 0;      ///< descendants lists computed off-thread

  /// Work items successfully charged against the budget.
  unsigned long WorkCharged = 0;

  /// True when any budget limit stopped the solver early (kept under the
  /// historical name; BudgetTripped carries the specific reason).
  bool HitWorkLimit = false;
  support::BudgetReason BudgetTripped = support::BudgetReason::None;
};

/// Runs the fixed point over an already-built constraint graph.
class Solver {
public:
  Solver(graph::ConstraintGraph &G, Solution &Sol,
         const layout::LayoutRegistry &Layouts,
         const android::AndroidModel &AM, const AnalysisOptions &Options,
         DiagnosticEngine &Diags)
      : G(G), Sol(Sol), Layouts(Layouts), AM(AM), Options(Options),
        Diags(Diags) {}

  SolverStats solve();

  /// Re-derives after a delete-and-rederive retraction
  /// (docs/INCREMENTAL.md). \p Touched lists the nodes whose flowsTo sets
  /// the closure shrank; their surviving values were already marked
  /// all-delta by FlowSet::eraseValues. Re-registers op uses (skipping
  /// dead sites), re-seeds value nodes (skipping retired ones), pulls
  /// every flow predecessor's full set into the touched nodes — committed
  /// values never re-propagate on their own — and runs the normal fixpoint
  /// to quiescence, reaching the same least fixed point as a from-scratch
  /// solve over the edited graph.
  SolverStats resolveIncremental(const std::vector<graph::NodeId> &Touched);

  /// Memo hygiene for the retraction closure (docs/INCREMENTAL.md): the
  /// (op index, node) keyed memos must drop entries whose op died, whose
  /// layout was edited, or whose wired value lost its reaching fact, or a
  /// later re-solve would skip re-inflating / re-wiring. Over-forgetting
  /// is safe — the rules re-fire idempotently.
  void forgetOpMemos(uint32_t OpIndex);
  void forgetLayoutMemos(graph::NodeId LayoutIdNode);
  void forgetWiredValue(graph::NodeId Value);
  /// Drops exactly one inflation memo entry — for a minted subtree the
  /// closure retired while its op and layout both survive. (Dropping the
  /// op's or layout's whole memo row would re-mint duplicates of subtrees
  /// that did survive.)
  void forgetInflation(uint32_t OpIndex, graph::NodeId Low) {
    InflatedAt.erase((static_cast<uint64_t>(OpIndex) << 32) | Low);
  }

  /// Attaches a derivation recorder (docs/OBSERVABILITY.md). Null (the
  /// default) disables recording; non-null makes every committed flowsTo
  /// fact and relationship edge carry its producing rule and premises.
  /// The recorder must outlive the solver.
  void setProvenance(ProvenanceRecorder *P) { Prov = P; }

private:
  using NodeId = graph::NodeId;
  using FactId = ProvenanceRecorder::FactId;

  void seedValueNodes();
  void registerOpUses();

  /// The shared worklist loop: drains values/ops with budget checkpoints,
  /// runs batched structure rounds, and collects final telemetry. solve()
  /// and resolveIncremental() differ only in how they seed it.
  SolverStats runFixpoint();

  /// Keeps the per-node tables (flowsTo sets, worklist marks, op-use
  /// lists) sized to the graph. Hot path: one size compare — OpUses is
  /// only ever resized together with the others, so it serves as the
  /// staleness sentinel; growSets() does the actual (rare) resizing.
  void ensureSets() {
    if (OpUses.size() != G.size())
      growSets();
  }
  void growSets();

  /// Inserts \p Value into node \p N's set; enqueues propagation and
  /// dependent ops when the set grew.
  void addValue(NodeId N, NodeId Value);

  /// Declared-type filtering (AnalysisOptions::DeclaredTypeFilter): false
  /// when \p Value is a class-bearing value cast-incompatible with node
  /// \p N's declared type.
  bool typeCompatible(NodeId N, NodeId Value) const;

  void propagate(NodeId N);
  void fireOp(size_t OpIndex);

  void fireInflate(OpSite &Op);
  void fireAddView1(OpSite &Op);
  void fireAddView2(OpSite &Op);
  void fireSetId(OpSite &Op);
  void fireSetListener(OpSite &Op);
  void fireFindView(OpSite &Op);
  void fireFragmentAdd(size_t OpIndex);
  void fireSetAdapter(size_t OpIndex);

  /// Inflates the layout with id node \p LayoutIdNode at site \p OpIndex
  /// (memoized); returns the root view node or InvalidNode.
  NodeId inflateAt(size_t OpIndex, NodeId LayoutIdNode);

  /// Wires the implicit handler callback `y.n(x)` for a new (view,
  /// listener) association (Section 3.2, "Effects of callbacks").
  void wireListenerCallback(NodeId View, NodeId ListenerValue,
                            const android::ListenerSpec &Spec);

  /// Models `android:onClick="name"` attributes: every view carrying the
  /// attribute inside some window's hierarchy gets the window value as a
  /// click listener, with the named activity method as handler. Runs when
  /// the hierarchy structure has grown.
  void sweepXmlOnClickHandlers();

  void noteStructureChange();
  void enqueueOp(size_t OpIndex);

  //===--------------------------------------------------------------------===//
  // Parallel intra-solve engine (docs/PARALLEL.md, "Inside one solve")
  //===--------------------------------------------------------------------===//
  //
  // SolveJobs > 1 runs the delta drain as precompute + exact serial replay:
  // when the value worklist is deep enough, the whole worklist is
  // snapshotted, the pushes every snapshot node will make (its delta x its
  // non-Op flow successors, in exact serial order) are enumerated, and a
  // thread pool — targets grouped into SCC-stratum waves with a barrier
  // per wave — simulates each target's ordered push sequence against its
  // frozen set, writing one New/Dup verdict byte per push into a slot that
  // is a pure function of serial position. The serial thread then replays
  // the exact FIFO schedule, consuming verdicts instead of re-scanning
  // set membership: Dup skips, New appends blindly (FlowSet::insertNew).
  // A target that takes any non-simulated insert (a late-arriving delta
  // suffix) is round-dirty and falls back to plain addValue, so trusted
  // verdicts are consumed only while the replayed state still equals the
  // simulated state. Commit order, worklist evolution, node minting,
  // provenance, and budget trip points are therefore byte-identical to
  // SolveJobs=1 by construction.

  /// Builds the worklist snapshot, enumerates per-target push lists, and
  /// dispatches stratum waves of membership simulation over the pool.
  void classifyRound();
  /// Simulates one target's ordered push sequence, writing verdicts.
  /// Called from pool workers; touches only frozen state plus disjoint
  /// Verdicts slots.
  void simulateTarget(NodeId Target);
  /// The replay twin of propagate() for a snapshot node: same pops, same
  /// commits, same push order, with snapshot-prefix pushes resolved from
  /// the verdict buffer while the target is round-clean.
  void propagateSnapshot(NodeId N, uint32_t SnapPos);
  /// At a structure round, computes stale root descendants lists on the
  /// pool (per-worker scratch, exact serial DFS order) and seeds the
  /// graph's cache before the XML sweep / FindView re-fires read them.
  void prewarmDescendants();
  /// G.addFlowEdge plus SCC-index maintenance for the mid-solve edge-add
  /// sites (listener callbacks, XML handlers, fragment/adapter wiring).
  bool solverAddFlowEdge(NodeId From, NodeId To);
  void ensureSolvePool();

  graph::ConstraintGraph &G;
  Solution &Sol;
  const layout::LayoutRegistry &Layouts;
  const android::AndroidModel &AM;
  const AnalysisOptions &Options;
  DiagnosticEngine &Diags;

  std::deque<NodeId> VarWorklist;
  std::vector<bool> InVarWorklist;

  /// Scratch buffer for propagate(): the values being pushed must be
  /// copied out (addValue may grow the set vector), but the buffer itself
  /// is reused across visits to avoid one allocation per worklist pop.
  std::vector<NodeId> PropScratch;

  /// android.view.View / android.view.ViewGroup, resolved once per solve
  /// (inflateAt needs them per minted subtree).
  const ir::ClassDecl *ViewBaseClass = nullptr;
  const ir::ClassDecl *GroupBaseClass = nullptr;

  std::deque<size_t> OpWorklist;
  std::vector<bool> InOpWorklist;

  /// Registers \p OpIndex as a consumer of node \p N's set (deduplicated:
  /// aliased roles enqueue an op once per value arrival).
  void addOpUse(NodeId N, size_t OpIndex);

  /// Op indices depending on each variable node's set, indexed by node id
  /// (sized alongside the flowsTo sets by ensureSets).
  std::vector<std::vector<uint32_t>> OpUses;

  /// Ops to re-fire on hierarchy/id/root structure growth.
  std::vector<size_t> StructureSensitiveOps;

  /// (op index, layout-id node) -> inflated root.
  std::unordered_map<uint64_t, NodeId> InflatedAt;

  /// (FragmentAdd op index, fragment value) pairs whose onCreateView
  /// callback is already wired.
  std::unordered_set<uint64_t> FragmentWired;

  SolverStats Stats;
  /// Set by structure growth; triggers the XML onClick sweep when the
  /// worklists drain.
  bool StructureDirty = false;

  /// Snapshot classification engages only when a round is deep enough to
  /// amortize the pool round-trip; shallower rounds replay pure serial.
  static constexpr size_t SnapshotMinWorklist = 24;
  /// Targets per simulation chunk / roots per prewarm chunk.
  static constexpr size_t ClassifyGrain = 8;
  static constexpr size_t PrewarmGrain = 4;

  /// True when this run uses the parallel engine: SolveJobs resolves to
  /// more than one worker, delta propagation is on (the naive reference
  /// mode stays the serial oracle), and DeclaredTypeFilter is off (its
  /// class-hierarchy probes touch shared memo tables and would make
  /// simulation reads racy).
  bool ParEligible = false;
  unsigned SolveWorkers = 1;
  /// Lazily created at the first classification or prewarm; persists
  /// across rounds and solve() calls so one solve pays one pool spawn.
  std::unique_ptr<support::ThreadPool> SolvePool;
  std::unique_ptr<graph::SccIndex> Scc;

  /// Snapshot state. A node's membership in the live snapshot is
  /// epoch-stamped (SnapEpochArr[N] == SnapEpoch), consumed at its first
  /// pop; SnapRemaining counts unconsumed snapshot nodes, so 0 means "no
  /// snapshot active" and the next deep round may classify again.
  std::vector<NodeId> SnapNodes;      ///< snapshot worklist, FIFO order
  std::vector<uint32_t> SnapDelta;    ///< delta length per snapshot node
  std::vector<uint32_t> SnapByteOff;  ///< first verdict slot per node
  std::vector<uint32_t> SnapPosArr;   ///< NodeId -> snapshot position
  std::vector<uint32_t> SnapEpochArr; ///< NodeId -> stamping epoch
  uint32_t SnapEpoch = 0;
  size_t SnapRemaining = 0;
  /// One byte per simulated push: 0 = new, 1 = duplicate. Workers write
  /// disjoint slots (each target is simulated by exactly one worker and
  /// slot positions are a pure function of serial push order), which is
  /// the deterministic outbox merge: the buffer IS the merged result.
  std::vector<uint8_t> Verdicts;
  /// NodeId -> epoch of the last non-simulated insert; verdicts for a
  /// target stamped with the current epoch are stale and skipped.
  std::vector<uint32_t> RoundDirtyEpoch;

  /// Classification scratch (reused across rounds). ClsCount/ClsStart/
  /// ClsCursor are dense NodeId-indexed tables cleared by walking
  /// ClsTargets, so a round costs O(touched), not O(graph).
  struct PushEntry {
    uint32_t Pos; ///< verdict slot (global serial push position)
    NodeId Val;
  };
  std::vector<NodeId> ClsTargets;
  std::vector<NodeId> ClsSorted; ///< targets ordered by SCC stratum
  std::vector<uint32_t> ClsCount;
  std::vector<uint32_t> ClsStart;
  std::vector<uint32_t> ClsCursor;
  std::vector<PushEntry> ClsEntries;

  /// Derivation recorder; null when provenance is off. Recording sites
  /// stage the producing rule and premises in PRule/PPrem before calling
  /// addValue (only when Prov is non-null, so the staging itself is
  /// behind the same null check as the recording).
  ProvenanceRecorder *Prov = nullptr;
  DerivRule PRule = DerivRule::External;
  FactId PPrem[3] = {ProvenanceRecorder::NoFact, ProvenanceRecorder::NoFact,
                     ProvenanceRecorder::NoFact};

  /// Stages the provenance context for subsequent addValue calls. No-op
  /// (after one predicted branch) when provenance is off.
  void provCtx(DerivRule Rule, FactId P0 = ProvenanceRecorder::NoFact,
               FactId P1 = ProvenanceRecorder::NoFact,
               FactId P2 = ProvenanceRecorder::NoFact) {
    if (!Prov)
      return;
    PRule = Rule;
    PPrem[0] = P0;
    PPrem[1] = P1;
    PPrem[2] = P2;
  }
  /// Records a relationship edge's derivation when provenance is on.
  void provEdge(FactKind Kind, NodeId From, NodeId To, DerivRule Rule,
                FactId P0 = ProvenanceRecorder::NoFact,
                FactId P1 = ProvenanceRecorder::NoFact) {
    if (Prov)
      Prov->recordEdge(Kind, From, To, Rule, P0, P1);
  }
  /// Records a solver-added flow edge From -> To as a FlowLink fact: IDB
  /// graph structure (listener-callback, xml-handler, fragment/adapter
  /// wiring) the retraction closure must physically remove when its
  /// premise dies (docs/INCREMENTAL.md).
  void provLink(NodeId From, NodeId To, DerivRule Rule,
                FactId P0 = ProvenanceRecorder::NoFact) {
    if (Prov)
      Prov->recordEdge(FactKind::FlowLink, From, To, Rule, P0);
  }
  /// flowFact lookup that is safe when provenance is off.
  FactId provFlow(NodeId Target, NodeId Value) const {
    return Prov ? Prov->flowFact(Target, Value) : ProvenanceRecorder::NoFact;
  }
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_SOLVER_H
