//===- export_corpus.cpp - Write the 20-app corpus to disk ------*- C++ -*-===//
//
// Serializes every corpus application to ALite text plus layout XML under
// an output directory, one subdirectory per app:
//
//   export_corpus [-j <n>] <outdir>
//   gator_cli <outdir>/XBMC --solution    # analyze any exported app
//
// `-j N` exports apps on N worker threads (0 = hardware concurrency);
// apps write into disjoint subdirectories and per-app console text is
// merged in corpus order, so the output is identical for every -j.
//
// Exercises both serialization directions of the frontend (the printer
// round-trips with the parser; the layout writer with the layout reader).
//
// Apps are exported in crash isolation: a failure in one app (generation
// diagnostics, I/O, or an escaped exception) is reported and the remaining
// apps still export. Exit codes follow the gator_cli contract — 0 clean,
// 1 diagnostics/I/O failures, 2 internal errors — taking the maximum over
// all apps.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "layout/LayoutWriter.h"
#include "parser/Printer.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace gator;
namespace fs = std::filesystem;

namespace {

/// Parses a non-negative number; false on garbage.
bool parseCount(const std::string &Text, unsigned long &Out) {
  if (Text.empty() ||
      !std::all_of(Text.begin(), Text.end(),
                   [](unsigned char C) { return std::isdigit(C); }))
    return false;
  try {
    Out = std::stoul(Text);
  } catch (const std::exception &) {
    return false;
  }
  return true;
}

/// Exports one corpus app; returns 0/1 per the exit-code contract.
/// \p Log and \p Err buffer the task's stdout/stderr text; the driver
/// merges them in corpus order so output is identical for every -j.
int exportOneApp(const corpus::AppSpec &Spec, const fs::path &OutDir,
                 std::ostream &Log, std::ostream &Err) {
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  if (App.Bundle->Diags.hasErrors()) {
    App.Bundle->Diags.print(Err);
    return 1;
  }

  fs::path AppDir = OutDir / Spec.Name;
  std::error_code EC;
  fs::create_directories(AppDir, EC);
  if (EC) {
    Err << "error: cannot create " << AppDir << ": " << EC.message()
              << "\n";
    return 1;
  }

  {
    std::ofstream Out(AppDir / "app.alite");
    if (!Out) {
      Err << "error: cannot write app.alite for " << Spec.Name << "\n";
      return 1;
    }
    parser::printProgram(App.Bundle->Program, Out);
  }
  for (const auto &Def : App.Bundle->Layouts->layouts()) {
    std::ofstream Out(AppDir / (Def->name() + ".xml"));
    Out << layout::layoutToXml(*Def);
  }
  {
    // Manifest: every activity declared, Activity0 as the launcher.
    std::ofstream Out(AppDir / "AndroidManifest.xml");
    Out << "<manifest package=\"corpus." << Spec.Name << "\">\n"
        << "  <application>\n";
    for (unsigned I = 0; I < Spec.Activities; ++I) {
      Out << "    <activity android:name=\"" << Spec.Name << "Activity"
          << I << "\"";
      if (I == 0)
        Out << ">\n"
            << "      <intent-filter>\n"
            << "        <action android:name=\"android.intent.action."
               "MAIN\" />\n"
            << "        <category android:name=\"android.intent.category."
               "LAUNCHER\" />\n"
            << "      </intent-filter>\n"
            << "    </activity>\n";
      else
        Out << " />\n";
    }
    Out << "  </application>\n</manifest>\n";
  }
  Log << Spec.Name << ": "
      << App.Bundle->Program.appClassCount() << " classes, "
      << App.Bundle->Layouts->layouts().size() << " layouts -> "
      << AppDir.string() << "\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  fs::path OutDir;
  unsigned Jobs = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-j" || Arg == "--jobs") {
      unsigned long N = 0;
      if (++I >= argc || !parseCount(argv[I], N) ||
          N > support::MaxReasonableJobs) {
        std::cerr << "error: invalid jobs value (expected 0.."
                  << support::MaxReasonableJobs
                  << "; 0 = hardware concurrency)\n";
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (OutDir.empty() && (Arg.empty() || Arg[0] != '-')) {
      OutDir = Arg;
    } else {
      std::cerr << "usage: export_corpus [-j <n>] <outdir>\n";
      return 2;
    }
  }
  if (OutDir.empty()) {
    std::cerr << "usage: export_corpus [-j <n>] <outdir>\n";
    return 2;
  }

  // Each task exports into its own app subdirectory, so the fan-out is
  // write-disjoint; per-task text is merged in corpus order below.
  const std::vector<corpus::AppSpec> &Specs = corpus::paperCorpus();
  struct ExportRecord {
    std::string LogText, ErrText;
    int Code = 0;
  };
  std::vector<ExportRecord> Records =
      support::parallelMap<ExportRecord>(Jobs, Specs.size(), [&](size_t I) {
        ExportRecord R;
        std::ostringstream Log, Err;
        try {
          R.Code = exportOneApp(Specs[I], OutDir, Log, Err);
        } catch (const std::exception &E) {
          Err << "internal error exporting '" << Specs[I].Name
              << "': " << E.what() << "\n";
          R.Code = 2;
        } catch (...) {
          Err << "internal error exporting '" << Specs[I].Name << "'\n";
          R.Code = 2;
        }
        R.LogText = Log.str();
        R.ErrText = Err.str();
        return R;
      });

  int Worst = 0;
  std::vector<std::string> Failed;
  for (size_t I = 0; I < Records.size(); ++I) {
    std::cout << Records[I].LogText;
    std::cerr << Records[I].ErrText;
    if (Records[I].Code != 0)
      Failed.push_back(Specs[I].Name);
    Worst = std::max(Worst, Records[I].Code);
  }
  if (!Failed.empty()) {
    std::cerr << "failed apps (" << Failed.size() << "):";
    for (const std::string &Name : Failed)
      std::cerr << " " << Name;
    std::cerr << "\n";
  }
  return Worst;
}
