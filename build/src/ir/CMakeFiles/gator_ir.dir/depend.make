# Empty dependencies file for gator_ir.
# This may be replaced when dependencies are built.
