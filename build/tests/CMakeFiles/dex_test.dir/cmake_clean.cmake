file(REMOVE_RECURSE
  "CMakeFiles/dex_test.dir/dex_test.cpp.o"
  "CMakeFiles/dex_test.dir/dex_test.cpp.o.d"
  "dex_test"
  "dex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
