//===- DexLite.h - Dalvik-style bytecode frontend ---------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A register-based bytecode frontend in the style of Dalvik/smali. The
/// original system consumed real Android apps through Soot's Dalvik
/// frontend; DexLite reproduces the essential difficulty of that path —
/// *registers are untyped* — and solves it the way bytecode frontends do:
/// per-method forward type inference over the register file, with a fresh
/// typed IR variable minted whenever a register is re-bound at a
/// different type (register splitting).
///
/// Syntax (one directive or instruction per line; `#` comments):
///
///   .class <qname> [extends <qname>] [implements <qname>[, <qname>]*]
///   .interface <qname> [extends <qname>]
///   .field [static] <name> <type>
///   .method [static] <name>(<type>[, <type>]*) <rettype>
///     .registers <N>                       # locals v0..v(N-1)
///     <instructions>
///   .end method
///   .end class
///
/// Instructions (vX = local register, pX = parameter register, p0 = this
/// for instance methods):
///
///   move vA, vB              # vA := vB
///   const-null vA
///   const-layout vA, <name>  # vA := @layout/name
///   const-id vA, <name>      # vA := @id/name
///   const-class vA, <class>  # vA := classof C
///   new-instance vA, <class>
///   iget vA, vB, <field>     # vA := vB.<field>
///   iput vA, vB, <field>     # vB.<field> := vA   (Dalvik operand order)
///   sget vA, <class>.<field>
///   sput vA, <class>.<field>
///   invoke {vRecv[, vArg]*}, <method>
///   move-result vA           # binds the preceding invoke's result
///   return-void
///   return vA
///
/// Untyped registers: a register's static type at each program point is
/// inferred forward from constants, allocations, field/method signatures,
/// and copies; each rebinding at a new type starts a fresh IR variable
/// (`v3$1`, `v3$2`, ...). This is precisely the information Soot's
/// typed-Jimple construction recovers from dex files.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_DEX_DEXLITE_H
#define GATOR_DEX_DEXLITE_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace gator {
namespace dex {

/// Parses DexLite text and lowers it into \p Program (which should already
/// contain the platform model). Returns true when no errors occurred.
/// Lowering resolves field/method signatures against *all* classes in the
/// buffer plus the Program, so forward references are fine.
bool parseDexLite(std::string_view Input, const std::string &FileName,
                  ir::Program &Program, DiagnosticEngine &Diags);

} // namespace dex
} // namespace gator

#endif // GATOR_DEX_DEXLITE_H
