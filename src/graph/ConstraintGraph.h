//===- ConstraintGraph.h - The GUI constraint graph -------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint graph of Section 4.1. Nodes represent variables, fields,
/// allocations, inflated views, activities, layout/view ids, class
/// constants, and Android operation occurrences. Two edge families exist:
///
///  - flow edges `n -> n'` constrain value flow (assignments, parameter
///    passing, returns, id-constant loads, operation outputs);
///  - relationship edges `n => n'` record structural facts computed by the
///    analysis: parent-child between views, view=>viewId, view=>listener,
///    activity=>rootView, view=>layoutId (inflation origin), and
///    view=>inflateOp (inflation site).
///
/// The graph is mutable during solving: operation rules add both edge
/// families (e.g. AddView2 adds parent-child edges; SetListener adds
/// listener associations plus callback flow edges).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_GRAPH_CONSTRAINTGRAPH_H
#define GATOR_GRAPH_CONSTRAINTGRAPH_H

#include "android/AndroidModel.h"
#include "ir/Ir.h"
#include "layout/Layout.h"
#include "support/Arena.h"
#include "support/FlatMap.h"

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

namespace gator {

class DiagnosticEngine;

namespace graph {

using NodeId = uint32_t;
inline constexpr NodeId InvalidNode = ~0u;

/// An adjacency list whose storage lives in the graph's arena
/// (docs/MEMORY.md): 16 bytes per source node, contiguous element
/// storage, dropped with the graph as whole slabs.
using NodeList = support::ArenaVector<NodeId>;

enum class NodeKind {
  Var,        ///< a local variable of one method
  Field,      ///< one FieldDecl (the analysis is field-based)
  Alloc,      ///< `new C` for a non-view class (listeners live here)
  ViewAlloc,  ///< `new C` for a view class (paper: ViewAlloc ⊆ Alloc)
  ViewInfl,   ///< a view minted by inflating one layout node at one site
  Activity,   ///< the framework-created instance(s) of an activity class
  LayoutId,   ///< an R.layout integer constant
  ViewId,     ///< an R.id integer constant
  ClassConst, ///< `classof C` (activity-transition-graph client)
  Op,         ///< one occurrence of an Android operation (Section 3.2)
  UnknownView, ///< a view from an unknown source (docs/ROBUSTNESS.md)
  UnknownId,   ///< an id constant the frontends could not resolve
};

inline constexpr size_t NumNodeKinds =
    static_cast<size_t>(NodeKind::UnknownId) + 1;

const char *nodeKindName(NodeKind Kind);

/// Why an UnknownView/UnknownId node exists: the degradation-reason
/// taxonomy of the incomplete-information layer (docs/ROBUSTNESS.md).
/// Ordering is part of the output contract (--explain, metrics labels).
enum class UnknownReason : uint8_t {
  None,          ///< not an unknown node
  ReflectiveNew, ///< view constructed reflectively (newInstance-style)
  UnknownClass,  ///< `new C` / layout class the program cannot resolve
  DynamicId,     ///< non-constant id (e.g. Resources.getIdentifier)
  MissingLayout, ///< layout/resource reference that resolves to nothing
};

inline constexpr size_t NumUnknownReasons =
    static_cast<size_t>(UnknownReason::MissingLayout) + 1;

/// Short reason phrase used in --explain output and node labels, e.g.
/// "non-constant id" for DynamicId.
const char *unknownReasonPhrase(UnknownReason Reason);
/// Stable metric-label slug, e.g. "dynamic_id".
const char *unknownReasonSlug(UnknownReason Reason);

/// Payload of one graph node; which members are meaningful depends on Kind.
struct Node {
  NodeKind Kind;

  /// Var: the owning method; Alloc/ViewAlloc: the allocating method.
  const ir::MethodDecl *Method = nullptr;
  /// Var: the variable index.
  ir::VarId Var = ir::InvalidVar;
  /// Alloc/ViewAlloc: index of the `new` statement within Method's body
  /// (site identity).
  int32_t StmtIndex = -1;

  /// Field: the field.
  const ir::FieldDecl *Field = nullptr;

  /// Alloc/ViewAlloc/ViewInfl/Activity/ClassConst: the class.
  const ir::ClassDecl *Klass = nullptr;

  /// ViewInfl: the layout node this view was minted from, and the Op node
  /// of the inflation site ("a fresh set of graph nodes is introduced at
  /// each inflation site", Section 4.1).
  const layout::LayoutNode *LNode = nullptr;
  NodeId InflateSite = InvalidNode;

  /// LayoutId/ViewId: the integer resource id.
  layout::ResourceId Res = layout::InvalidResourceId;

  /// Op: operation kind and, for SetListener, the listener registration.
  android::OpKind Op = android::OpKind::Inflate1;
  const android::ListenerSpec *Listener = nullptr;
  /// Op(FindView3): child-only refinement.
  bool ChildOnly = false;

  /// UnknownView/UnknownId: why this unknown-source node was minted.
  /// Method (when non-null) and Loc name the hostile site.
  UnknownReason Unknown = UnknownReason::None;

  /// Retraction left this node orphaned (docs/INCREMENTAL.md): the minting
  /// site no longer exists after an edit-scale re-analysis. Node ids are
  /// never reused, so retired shells stay in the table but are skipped by
  /// value seeding, solution queries, and dumps.
  bool Retired = false;

  /// Site location (ops, allocs) for labels and debugging.
  SourceLocation Loc;
};

/// True for node kinds whose identity is a *value* propagated by flowsTo
/// (views, activities, ids, ordinary allocations, class constants).
bool isValueNodeKind(NodeKind Kind);
/// True for nodes representing views (ViewAlloc or ViewInfl).
bool isViewNodeKind(NodeKind Kind);

/// The constraint graph.
class ConstraintGraph {
public:
  //===--------------------------------------------------------------------===//
  // Node creation (memoized factories)
  //===--------------------------------------------------------------------===//

  /// Pre-sizes the node table and flow-edge dedup structures. \p NodeHint
  /// and \p EdgeHint are estimates (typically from the program's variable
  /// and statement counts); growth past them stays correct, just slower.
  void reserve(size_t NodeHint, size_t EdgeHint);

  NodeId getVarNode(const ir::MethodDecl *M, ir::VarId V);
  NodeId getFieldNode(const ir::FieldDecl *F);
  NodeId getAllocNode(const ir::MethodDecl *M, int32_t StmtIndex,
                      const ir::ClassDecl *Klass, bool IsView,
                      SourceLocation Loc);
  NodeId getActivityNode(const ir::ClassDecl *Klass);
  NodeId getLayoutIdNode(layout::ResourceId Res);
  NodeId getViewIdNode(layout::ResourceId Res);
  NodeId getClassConstNode(const ir::ClassDecl *Klass);

  /// Operation nodes are not memoized: one per call-site occurrence.
  NodeId makeOpNode(android::OpKind Kind, SourceLocation Loc,
                    const android::ListenerSpec *Listener = nullptr,
                    bool ChildOnly = false);

  /// Mints a fresh inflated-view node for \p LNode inflated at \p Site.
  NodeId makeViewInflNode(const ir::ClassDecl *Klass,
                          const layout::LayoutNode *LNode, NodeId Site);

  /// Mints an unknown-source node (docs/ROBUSTNESS.md): one per hostile
  /// site, unmemoized, so every node carries the site (\p Method, \p Loc)
  /// that made it approximate. \p Reason must not be UnknownReason::None.
  /// \p Site, when valid, marks the inflate Op node that minted this
  /// unknown root (mirrors ViewInfl::InflateSite for resultsOf).
  NodeId makeUnknownViewNode(UnknownReason Reason, const ir::MethodDecl *M,
                             SourceLocation Loc, NodeId Site = InvalidNode);
  NodeId makeUnknownIdNode(UnknownReason Reason, const ir::MethodDecl *M,
                           SourceLocation Loc);

  //===--------------------------------------------------------------------===//
  // Node access
  //===--------------------------------------------------------------------===//

  const Node &node(NodeId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// All node ids of a given kind, in creation order (maintained
  /// incrementally; O(1) per query).
  const NodeList &nodesOfKind(NodeKind Kind) const {
    return KindIndex[static_cast<size_t>(Kind)];
  }

  /// Human-readable label (e.g. "ViewFlipper@act_console", "FindView1:13").
  std::string label(NodeId Id) const;

  //===--------------------------------------------------------------------===//
  // Retraction (edit-scale incremental re-solve, docs/INCREMENTAL.md)
  //===--------------------------------------------------------------------===//

  /// Marks \p Id as retired: the minting site disappeared in an edit-scale
  /// re-analysis. Seeding, queries, and dumps skip retired nodes; the slot
  /// itself is never reused (fact and memo keys embedding the id stay
  /// unambiguous).
  void retireNode(NodeId Id) { Nodes[Id].Retired = true; }
  bool isRetired(NodeId Id) const { return Nodes[Id].Retired; }

  /// Severs a retired ViewInfl node's pointer into its layout tree. Layout
  /// edits free the old LayoutNode tree, so retired views must not keep
  /// dangling LNode pointers (label() and the XML-handler sweep both
  /// tolerate a null LNode).
  void neutralizeViewInflNode(NodeId Id) {
    Nodes[Id].LNode = nullptr;
    Nodes[Id].Retired = true;
  }

  /// Edge removal for the delete-and-rederive closure. All removers are
  /// tolerant — removing an absent edge returns false and changes nothing —
  /// so the retraction plan may over-approximate the edges to delete.
  bool removeFlowEdge(NodeId From, NodeId To);
  bool removeParentChildEdge(NodeId Parent, NodeId Child);
  bool removeHasIdEdge(NodeId View, NodeId ViewIdNode);
  bool removeRootEdge(NodeId Activity, NodeId View);
  bool removeListenerEdge(NodeId View, NodeId ListenerValue);
  bool removeRootsLayoutEdge(NodeId View, NodeId LayoutIdNode);

  //===--------------------------------------------------------------------===//
  // Recoverable invariants (docs/ROBUSTNESS.md)
  //===--------------------------------------------------------------------===//

  /// Routes recoverable-invariant reports (edge drops on dangling ids or
  /// kind mismatches) through \p D. Not owned; null silences reporting but
  /// malformed edges are still dropped and counted.
  void setDiagnostics(DiagnosticEngine *D) { Diags = D; }

  /// Edges rejected because a recoverable invariant failed.
  unsigned long droppedInvariants() const { return DroppedInvariants; }

  //===--------------------------------------------------------------------===//
  // Flow edges (->)
  //===--------------------------------------------------------------------===//

  /// Adds n -> n'; returns true if the edge is new.
  bool addFlowEdge(NodeId From, NodeId To);

  const NodeList &flowSuccessors(NodeId Id) const { return FlowSucc[Id]; }

  size_t flowEdgeCount() const { return NumFlowEdges; }

  //===--------------------------------------------------------------------===//
  // Relationship edges (=>)
  //===--------------------------------------------------------------------===//

  /// view1 => view2 parent-child. Returns true if new.
  bool addParentChildEdge(NodeId Parent, NodeId Child);
  /// view => viewId association (INFLATE, SETID). Returns true if new.
  bool addHasIdEdge(NodeId View, NodeId ViewIdNode);
  /// activity => rootView (INFLATE2, ADDVIEW1). Returns true if new.
  bool addRootEdge(NodeId Activity, NodeId View);
  /// view => listener (SETLISTENER). Returns true if new.
  bool addListenerEdge(NodeId View, NodeId ListenerValue);
  /// view => layoutId: the view is the root of an instance of this layout.
  bool addRootsLayoutEdge(NodeId View, NodeId LayoutIdNode);

  /// All nodes holding at least one hierarchy root (activity nodes plus
  /// dialog/other allocations targeted by INFLATE2/ADDVIEW1).
  std::vector<NodeId> rootHolders() const;

  const NodeList &children(NodeId View) const;
  const NodeList &viewIds(NodeId View) const;
  const NodeList &roots(NodeId Activity) const;
  const NodeList &listeners(NodeId View) const;
  const NodeList &rootsOfLayouts(NodeId View) const;

  /// Reverse of viewIds(): the views carrying \p ViewIdNode (maintained
  /// incrementally by addHasIdEdge).
  const NodeList &viewsWithId(NodeId ViewIdNode) const;

  size_t parentChildEdgeCount() const { return NumParentChild; }

  /// The arena backing every adjacency list, exposed read-only so batch
  /// drivers can account per-app memory (docs/MEMORY.md).
  const support::Arena &edgeArena() const { return EdgeArena; }

  /// All views reachable from \p View through parent-child edges,
  /// including \p View itself (the reflexive-transitive closure used by
  /// FindView rules; the receiver itself is included because
  /// findViewById(id) may match the receiver in Android).
  ///
  /// Memoized per view with generation-stamped invalidation: the cached
  /// BFS result stays valid until addParentChildEdge/addRootEdge bumps the
  /// hierarchy revision. The returned reference is stable across further
  /// descendantsOf calls, but a hierarchy mutation may invalidate its
  /// *contents* on the next query for the same view — don't hold it across
  /// structure growth.
  const std::vector<NodeId> &descendantsOf(NodeId View) const;

  /// The cached descendants of \p View, or null when the cache entry is
  /// absent or stale for the current hierarchy revision. Never recomputes
  /// and never counts a hit or miss — a pure probe.
  const std::vector<NodeId> *descendantsCurrent(NodeId View) const;

  /// Computes the descendants of \p View into \p Out using caller-owned
  /// scratch, touching no cache state — safe to run from worker threads
  /// against a graph no one is mutating (the parallel solver's structure-
  /// round pre-warm, docs/PARALLEL.md). The traversal order is exactly
  /// descendantsOf's DFS, so a seeded result is byte-identical to a lazily
  /// computed one. \p SeenStamp is resized as needed; pass \p SeenGen by
  /// reference so consecutive calls reuse the stamp vector without
  /// clearing it.
  void computeDescendantsInto(NodeId View, std::vector<NodeId> &Out,
                              std::vector<uint32_t> &SeenStamp,
                              uint32_t &SeenGen) const;

  /// Installs \p Views as the cached descendants of \p View at the current
  /// hierarchy revision. Counts neither a hit nor a miss (seeding is
  /// accounted separately by the caller); a later descendantsOf on the
  /// same view then counts a plain hit.
  void seedDescendants(NodeId View, std::vector<NodeId> &&Views) const;

  /// Monotone counter bumped by every new parent-child or root edge; a
  /// cheap "has the hierarchy changed since I looked" probe.
  uint64_t hierarchyRevision() const { return HierarchyRev; }

  /// Descendants-cache telemetry (hits, recomputes).
  unsigned long descendantsCacheHits() const { return DescCacheHits; }
  unsigned long descendantsCacheMisses() const { return DescCacheMisses; }

  //===--------------------------------------------------------------------===//
  // Output
  //===--------------------------------------------------------------------===//

  /// Writes the graph in Graphviz DOT format. Flow edges solid,
  /// relationship edges dashed with labels.
  void dumpDot(std::ostream &OS, bool IncludeVarNodes = true) const;

  /// Summary statistics line (node/edge counts by kind).
  void dumpStats(std::ostream &OS) const;

private:
  NodeId push(Node N);

  static uint64_t edgeKey(NodeId From, NodeId To) {
    return (static_cast<uint64_t>(From) << 32) | To;
  }

  /// Relationship adjacency, keyed densely by source NodeId. Dedup is
  /// hybrid like flow edges: a source's list is linear-scanned while
  /// small; past SmallFlowDegree its edges migrate into the Spill set.
  struct AssocEdges {
    std::vector<NodeList> Lists;
    support::FlatIdMap<uint8_t> Spill;
  };

  bool addAssocEdge(AssocEdges &E, NodeId From, NodeId To);
  bool removeAssocEdge(AssocEdges &E, NodeId From, NodeId To);
  const NodeList &assocList(const AssocEdges &E, NodeId From) const {
    if (From >= E.Lists.size())
      return EmptyList;
    return E.Lists[From];
  }

  /// Inserts \p Key into \p Set; true if it was absent. FlatIdMap used
  /// as a set (the value byte is a placeholder).
  static bool insertEdgeKey(support::FlatIdMap<uint8_t> &Set, uint64_t Key) {
    size_t Before = Set.size();
    Set.getOrInsert(Key, 1);
    return Set.size() != Before;
  }

  /// Owns all adjacency-list storage below. Declared before every
  /// NodeList member so arena slabs outlive the tables pointing at them.
  support::Arena EdgeArena;

  std::vector<Node> Nodes;
  /// Node ids per NodeKind, in creation order.
  std::vector<NodeList> KindIndex = std::vector<NodeList>(NumNodeKinds);

  std::vector<NodeList> FlowSucc;
  /// Flow-edge dedup is hybrid: nodes with few successors scan their
  /// FlowSucc list; once a node's out-degree passes SmallFlowDegree its
  /// edges migrate into the FlowEdges set (high-degree sources like field
  /// nodes stay O(1) per probe without paying a hash insert per edge of
  /// every low-degree node).
  static constexpr size_t SmallFlowDegree = 8;
  support::FlatIdMap<uint8_t> FlowEdges;
  size_t NumFlowEdges = 0;

  AssocEdges ChildEdges;
  size_t NumParentChild = 0;
  AssocEdges HasIdEdges;
  /// Reverse id index: ViewId node -> views carrying it (deduped by
  /// HasIdEdges, so a plain dense table suffices).
  std::vector<NodeList> ViewsByIdTable;
  AssocEdges RootEdges;
  AssocEdges ListenerEdges;
  AssocEdges RootsLayoutEdges;

  /// Per-method variable-node tables, indexed by MethodDecl::globalId()
  /// then VarId — two array indexes per lookup, no hashing (these are the
  /// hottest intern calls in graph construction). The inner vector is
  /// sized to the method's variable count on first touch, InvalidNode
  /// marking absent entries.
  std::vector<NodeList> VarNodes;
  /// Field nodes indexed by FieldDecl::globalId(); InvalidNode when absent.
  std::vector<NodeId> FieldNodes;
  /// Alloc sites keyed by packed (method globalId, stmt index).
  support::FlatIdMap<NodeId> AllocNodes;
  /// Keyed by ClassDecl::globalId().
  support::FlatIdMap<NodeId> ActivityNodes;
  /// Dense id->node tables indexed by (Res - base); resource ids are
  /// interned sequentially from ResourceTable's fixed bases. Ids outside
  /// the dense window land in the overflow maps.
  std::vector<NodeId> LayoutIdNodes;
  std::vector<NodeId> ViewIdNodes;
  support::FlatIdMap<NodeId> LayoutIdOverflow;
  support::FlatIdMap<NodeId> ViewIdOverflow;

  NodeId getIdNode(std::vector<NodeId> &Dense,
                   support::FlatIdMap<NodeId> &Overflow,
                   layout::ResourceId Base, NodeKind Kind,
                   layout::ResourceId Res);
  /// Keyed by ClassDecl::globalId().
  support::FlatIdMap<NodeId> ClassConstNodes;

  /// Memoized descendantsOf results, valid while Rev == HierarchyRev.
  /// Entries live in DescStore (a deque: descendantsOf hands out stable
  /// `const std::vector<NodeId> &` references, and deque growth never
  /// relocates existing elements); DescCacheIndex maps a view's NodeId to
  /// its slot. The index is a FlatIdMap (docs/MEMORY.md PR 6 pattern) —
  /// open-addressed, no per-node heap allocation, cheap to probe on the
  /// hot FindView path.
  struct DescCacheEntry {
    uint64_t Rev = 0; // 0 is never a live revision
    std::vector<NodeId> Views;
  };
  mutable support::FlatIdMap<uint32_t> DescCacheIndex;
  mutable std::deque<DescCacheEntry> DescStore;
  DescCacheEntry &descCacheSlot(NodeId View) const;
  uint64_t HierarchyRev = 1;
  mutable unsigned long DescCacheHits = 0;
  mutable unsigned long DescCacheMisses = 0;
  /// Generation-stamped visited marks for the descendantsOf BFS: node N is
  /// visited in the current traversal iff DescSeenStamp[N] == DescSeenGen.
  /// Avoids one hash-set allocation per recompute.
  mutable std::vector<uint32_t> DescSeenStamp;
  mutable uint32_t DescSeenGen = 0;

  NodeList EmptyList;

  DiagnosticEngine *Diags = nullptr;
  unsigned long DroppedInvariants = 0;
};

} // namespace graph
} // namespace gator

#endif // GATOR_GRAPH_CONSTRAINTGRAPH_H
